package kleb_test

import (
	"fmt"
	"log"

	"kleb"
)

// The basic flow: pick a workload, pick events, collect a time series.
func ExampleCollect() {
	report, err := kleb.Collect(kleb.CollectOptions{
		Workload: kleb.Synthetic(100_000_000, 64<<10, 0),
		Events:   []kleb.Event{kleb.Instructions, kleb.Loads},
		Period:   kleb.Millisecond,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instructions:", report.Totals[kleb.Instructions])
	fmt.Println("loads:", report.Totals[kleb.Loads])
	// Output:
	// instructions: 100000000
	// loads: 25000000
}

// Comparing K-LEB against a baseline tool on the same workload and seed.
func ExampleCollect_baselineTool() {
	run := func(tool kleb.ToolKind) uint64 {
		report, err := kleb.Collect(kleb.CollectOptions{
			Workload: kleb.Synthetic(50_000_000, 64<<10, 0),
			Events:   []kleb.Event{kleb.Instructions},
			Period:   10 * kleb.Millisecond,
			Tool:     tool,
			Seed:     2,
		})
		if err != nil {
			log.Fatal(err)
		}
		return report.Totals[kleb.Instructions]
	}
	fmt.Println("counts agree:", run(kleb.ToolKLEB) == run(kleb.ToolPerfStat))
	// Output:
	// counts agree: true
}

// Online anomaly detection over a collected stream (the paper's §IV-C
// future work).
func ExampleReport_Detect() {
	events := []kleb.Event{kleb.LLCReferences, kleb.LLCMisses, kleb.Instructions}
	report, err := kleb.Collect(kleb.CollectOptions{
		Workload: kleb.Meltdown().Attack(),
		Events:   events,
		Period:   100 * kleb.Microsecond,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	detector, err := kleb.NewLLCRatioDetector(events)
	if err != nil {
		log.Fatal(err)
	}
	detection := report.Detect(detector)
	fmt.Println("attack detected:", detection.Flagged > 0)
	// Output:
	// attack detected: true
}
