package kleb_test

import (
	"bytes"
	"strings"
	"testing"

	"kleb"
)

func TestCompareRacesToolsAgainstOneBaseline(t *testing.T) {
	opts := kleb.CollectOptions{
		Workload: kleb.Synthetic(100_000_000, 1<<20, 0.02),
		Events:   []kleb.Event{kleb.Instructions, kleb.LLCMisses},
		Period:   kleb.Millisecond,
	}
	rows, err := kleb.Compare(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("expected all five tools, got %d rows", len(rows))
	}
	byTool := map[kleb.ToolKind]kleb.CompareRow{}
	for _, row := range rows {
		byTool[row.Tool] = row
	}
	// LiMiT needs its kernel patch; the default Nehalem machine reports it
	// unsupported without failing the other tools.
	if row := byTool[kleb.ToolLiMiT]; row.Unsupported == "" || row.Report != nil {
		t.Errorf("LiMiT on stock kernel should be unsupported, got %+v", row)
	}
	for _, kind := range []kleb.ToolKind{kleb.ToolKLEB, kleb.ToolPerfStat, kleb.ToolPerfRecord, kleb.ToolPAPI} {
		row := byTool[kind]
		if row.Report == nil {
			t.Fatalf("%s: no report (unsupported: %q)", kind, row.Unsupported)
		}
		if row.Report.BaselineElapsed <= 0 {
			t.Errorf("%s: missing shared baseline", kind)
		}
		if row.Report.Totals[kleb.Instructions] == 0 {
			t.Errorf("%s: no instruction count", kind)
		}
	}
	// The same call with a single worker must be bit-identical.
	serialOpts := opts
	serialOpts.Workers = 1
	serial, err := kleb.Compare(serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i].Unsupported != serial[i].Unsupported {
			t.Errorf("row %d: unsupported diverged across worker counts", i)
		}
		if rows[i].Report == nil || serial[i].Report == nil {
			continue
		}
		if rows[i].Report.Elapsed != serial[i].Report.Elapsed ||
			len(rows[i].Report.Samples) != len(serial[i].Report.Samples) {
			t.Errorf("row %d (%s): results diverged across worker counts", i, rows[i].Tool)
		}
	}
}

func TestCollectQuickstart(t *testing.T) {
	report, err := kleb.Collect(kleb.CollectOptions{
		Workload: kleb.Synthetic(100_000_000, 1<<20, 0.02),
		Events:   []kleb.Event{kleb.Instructions, kleb.LLCMisses},
		Period:   kleb.Millisecond,
		Baseline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Tool != kleb.ToolKLEB {
		t.Errorf("default tool: %s", report.Tool)
	}
	if report.Totals[kleb.Instructions] != 100_000_000 {
		t.Errorf("instructions %d", report.Totals[kleb.Instructions])
	}
	if len(report.Samples) == 0 {
		t.Error("no samples")
	}
	if report.OverheadPct <= 0 || report.OverheadPct > 10 {
		t.Errorf("overhead %.2f%% implausible", report.OverheadPct)
	}
	if report.MPKI() <= 0 {
		t.Error("MPKI should be positive for a 1MB footprint")
	}
	if s := report.Sparkline(kleb.Instructions, 20); len([]rune(s)) != 20 {
		t.Errorf("sparkline width: %q", s)
	}
}

func TestCollectValidation(t *testing.T) {
	if _, err := kleb.Collect(kleb.CollectOptions{}); err == nil {
		t.Error("missing workload should fail")
	}
	w := kleb.Synthetic(1000, 4096, 0)
	if _, err := kleb.Collect(kleb.CollectOptions{Workload: w, Machine: "z80"}); err == nil {
		t.Error("unknown machine should fail")
	}
	if _, err := kleb.Collect(kleb.CollectOptions{
		Workload: w, Tool: "strace",
		Events: []kleb.Event{kleb.Instructions},
	}); err == nil {
		t.Error("unknown tool should fail")
	}
	if _, err := kleb.Collect(kleb.CollectOptions{Workload: w}); err == nil {
		t.Error("missing events should fail")
	}
}

func TestCollectCSV(t *testing.T) {
	report, err := kleb.Collect(kleb.CollectOptions{
		Workload: kleb.Synthetic(50_000_000, 64<<10, 0),
		Events:   []kleb.Event{kleb.Instructions, kleb.Loads},
		Period:   kleb.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(report.Samples)+1 {
		t.Errorf("csv rows %d for %d samples", len(lines), len(report.Samples))
	}
	if !strings.HasPrefix(lines[0], "time_us,INST_RETIRED") {
		t.Errorf("header %q", lines[0])
	}
}

func TestCollectGFLOPS(t *testing.T) {
	report, err := kleb.Collect(kleb.CollectOptions{
		Workload: kleb.Linpack(2000), // small, fast
		Events:   []kleb.Event{kleb.ArithMuls},
		Period:   10 * kleb.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.GFLOPS <= 0 {
		t.Error("LINPACK should report a rate")
	}
}

func TestCollectWithBaselineTools(t *testing.T) {
	w := kleb.TripleLoopMatmul()
	for _, tool := range []kleb.ToolKind{kleb.ToolPerfStat, kleb.ToolPerfRecord} {
		report, err := kleb.Collect(kleb.CollectOptions{
			Workload: w,
			Events:   []kleb.Event{kleb.Instructions, kleb.LLCMisses},
			Tool:     tool,
		})
		if err != nil {
			t.Fatalf("%s: %v", tool, err)
		}
		if report.Totals[kleb.Instructions] == 0 {
			t.Errorf("%s: no instruction count", tool)
		}
	}
	// LiMiT needs the legacy machine.
	if _, err := kleb.Collect(kleb.CollectOptions{
		Workload: w,
		Events:   []kleb.Event{kleb.Instructions},
		Tool:     kleb.ToolLiMiT,
	}); err == nil {
		t.Error("LiMiT on the default machine should fail")
	}
	if _, err := kleb.Collect(kleb.CollectOptions{
		Workload: w,
		Machine:  kleb.LegacyLiMiT,
		Events:   []kleb.Event{kleb.Instructions},
		Tool:     kleb.ToolLiMiT,
	}); err != nil {
		t.Errorf("LiMiT on the patched machine: %v", err)
	}
}

func TestContainerWorkloads(t *testing.T) {
	names := kleb.ContainerImages()
	if len(names) != 9 {
		t.Fatalf("images: %d", len(names))
	}
	if _, err := kleb.Container("not-an-image"); err == nil {
		t.Error("unknown image should fail")
	}
	w, err := kleb.Container("nginx")
	if err != nil {
		t.Fatal(err)
	}
	report, err := kleb.Collect(kleb.CollectOptions{
		Workload: w,
		Events:   []kleb.Event{kleb.LLCMisses, kleb.Instructions},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.MPKI() <= 10 {
		t.Errorf("nginx should classify memory-intensive, MPKI %.2f", report.MPKI())
	}
}

func TestEventByName(t *testing.T) {
	ev, ok := kleb.EventByName("LLC_MISSES")
	if !ok || ev != kleb.LLCMisses {
		t.Error("lookup failed")
	}
}

func TestMeltdownWorkloadsDiffer(t *testing.T) {
	study := kleb.Meltdown()
	events := []kleb.Event{kleb.LLCReferences, kleb.LLCMisses, kleb.Instructions}
	victim, err := kleb.Collect(kleb.CollectOptions{
		Workload: study.Victim(), Events: events, Period: 100 * kleb.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	attack, err := kleb.Collect(kleb.CollectOptions{
		Workload: study.Attack(), Events: events, Period: 100 * kleb.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if victim.Elapsed >= 10*kleb.Millisecond {
		t.Errorf("victim must finish in under 10ms, took %v", victim.Elapsed)
	}
	if attack.Totals[kleb.LLCReferences] <= victim.Totals[kleb.LLCReferences] {
		t.Error("the attack must raise LLC references")
	}
	if attack.MPKI() <= victim.MPKI() {
		t.Error("the attack must raise MPKI")
	}
	if len(attack.Samples) <= len(victim.Samples) {
		t.Error("the attack run should produce more samples")
	}
}

func TestDeterministicCollect(t *testing.T) {
	opts := kleb.CollectOptions{
		Workload: kleb.Synthetic(50_000_000, 512<<10, 0.1),
		Events:   []kleb.Event{kleb.Instructions},
		Seed:     77,
	}
	a, err := kleb.Collect(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := kleb.Collect(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || len(a.Samples) != len(b.Samples) {
		t.Error("same options+seed must replay identically")
	}
}

func TestHeartbleedDetectionViaFacade(t *testing.T) {
	study := kleb.Heartbleed()
	events := []kleb.Event{kleb.LLCReferences, kleb.LLCMisses, kleb.Instructions}
	attack, err := kleb.Collect(kleb.CollectOptions{
		Workload: study.Attack(),
		Events:   events,
		Period:   100 * kleb.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, err := kleb.Collect(kleb.CollectOptions{
		Workload: study.Server(),
		Events:   events,
		Period:   100 * kleb.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if attack.Elapsed <= server.Elapsed {
		t.Error("the over-read burst should lengthen the run")
	}
	det, err := kleb.NewCUSUMDetector(events, kleb.LLCMisses)
	if err != nil {
		t.Fatal(err)
	}
	rep := attack.Detect(det)
	if rep.Flagged == 0 {
		t.Error("facade detection pipeline missed the over-read burst")
	}
}

func TestPowerEstimationViaFacade(t *testing.T) {
	report, err := kleb.Collect(kleb.CollectOptions{
		Workload: kleb.DgemmMatmul(),
		Events:   []kleb.Event{kleb.Instructions, kleb.LLCMisses, kleb.FloatingPointOps},
		Period:   kleb.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	est, err := report.EstimatePower(kleb.DefaultPowerModel())
	if err != nil {
		t.Fatal(err)
	}
	if est.MeanWatts <= 0 || est.EnergyJoules <= 0 {
		t.Errorf("degenerate estimate: %+v", est)
	}
	// An unmodelable event set errors cleanly.
	bad, err := kleb.Collect(kleb.CollectOptions{
		Workload: kleb.Synthetic(10_000_000, 4096, 0),
		Events:   []kleb.Event{kleb.Branches},
		Period:   kleb.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.EstimatePower(kleb.DefaultPowerModel()); err == nil {
		t.Error("unmodeled events should be rejected")
	}
}

func TestInterferenceFacade(t *testing.T) {
	cells, err := kleb.Interference([]string{"ruby", "mysql"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var soloSeen, pairSeen bool
	for _, c := range cells {
		if c.Neighbour == "" {
			soloSeen = true
			if c.Slowdown != 1 {
				t.Errorf("solo slowdown %.2f", c.Slowdown)
			}
		} else {
			pairSeen = true
			if c.Slowdown < 0.9 {
				t.Errorf("implausible speedup: %+v", c)
			}
		}
	}
	if !soloSeen || !pairSeen {
		t.Error("matrix incomplete")
	}
	if _, err := kleb.Interference([]string{"no-such-image"}, 1); err == nil {
		t.Error("unknown image should fail")
	}
}

func TestEventPortabilityAcrossMachines(t *testing.T) {
	// §VI: event availability is per-microarchitecture. ARITH.MUL exists
	// on Nehalem but not on Cascade Lake; monitoring it there must fail
	// loudly, not silently count zeros.
	w := kleb.Synthetic(10_000_000, 64<<10, 0)
	if _, err := kleb.Collect(kleb.CollectOptions{
		Workload: w,
		Events:   []kleb.Event{kleb.ArithMuls},
		Machine:  kleb.Nehalem,
	}); err != nil {
		t.Errorf("ARITH.MUL on Nehalem: %v", err)
	}
	if _, err := kleb.Collect(kleb.CollectOptions{
		Workload: w,
		Events:   []kleb.Event{kleb.ArithMuls},
		Machine:  kleb.CascadeLake,
	}); err == nil {
		t.Error("ARITH.MUL on Cascade Lake should be rejected")
	}
}

func TestControllerLogExposedInReport(t *testing.T) {
	report, err := kleb.Collect(kleb.CollectOptions{
		Workload: kleb.Synthetic(60_000_000, 64<<10, 0),
		Events:   []kleb.Event{kleb.Instructions},
		Period:   kleb.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.ControllerLog) == 0 {
		t.Fatal("controller log missing from the report")
	}
	if !strings.HasPrefix(string(report.ControllerLog), "time_us,INST_RETIRED") {
		t.Errorf("log header: %q", string(report.ControllerLog[:40]))
	}
	// Row count matches the collected series (plus the header line).
	rows := strings.Count(strings.TrimSpace(string(report.ControllerLog)), "\n")
	if rows != len(report.Samples) {
		t.Errorf("log rows %d, samples %d", rows, len(report.Samples))
	}
}
