module kleb

go 1.22
