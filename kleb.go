// Package kleb is a faithful, fully simulated reproduction of K-LEB
// (Kernel — Lineage of Event Behavior), the kernel-module performance
// counter monitor of Woralert, Bruska, Liu & Yan, "High Frequency
// Performance Monitoring via Architectural Event Measurement" (IISWC 2020).
//
// Everything the paper's system touches is implemented in this module: a
// register-level PMU, a cache/branch/CPU core model, a Linux-like kernel
// (scheduler, HRTimers, kprobes, loadable modules, a perf_events
// subsystem), the K-LEB module and controller, and the four baseline tools
// (perf stat, perf record, PAPI, LiMiT). See DESIGN.md for the inventory
// and EXPERIMENTS.md for the reproduced tables and figures.
//
// This root package is the stable entry point for downstream users: pick a
// machine, pick a workload, collect a high-frequency hardware event time
// series, and analyze it.
//
//	report, err := kleb.Collect(kleb.CollectOptions{
//	    Workload: kleb.Meltdown().Attack(),
//	    Events:   []kleb.Event{kleb.LLCReferences, kleb.LLCMisses, kleb.Instructions},
//	    Period:   100 * kleb.Microsecond,
//	})
package kleb

import (
	"fmt"
	"io"

	"kleb/internal/anomaly"
	"kleb/internal/experiments"
	"kleb/internal/isa"
	"kleb/internal/kernel"
	klebcore "kleb/internal/kleb"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/pmu"
	"kleb/internal/power"
	"kleb/internal/session"
	"kleb/internal/telemetry"
	"kleb/internal/tools/limit"
	"kleb/internal/tools/papi"
	"kleb/internal/tools/perfrecord"
	"kleb/internal/tools/perfstat"
	"kleb/internal/trace"
	"kleb/internal/workload"
)

// Event identifies a hardware event.
type Event = isa.Event

// The monitorable hardware events.
const (
	Instructions     = isa.EvInstructions
	Cycles           = isa.EvCycles
	RefCycles        = isa.EvRefCycles
	Loads            = isa.EvLoads
	Stores           = isa.EvStores
	Branches         = isa.EvBranches
	BranchMisses     = isa.EvBranchMisses
	LLCReferences    = isa.EvLLCRefs
	LLCMisses        = isa.EvLLCMisses
	L1DMisses        = isa.EvL1DMisses
	L2Misses         = isa.EvL2Misses
	ArithMuls        = isa.EvMulOps
	FloatingPointOps = isa.EvFPOps
	CacheFlushes     = isa.EvCacheFlushes
	DTLBMisses       = isa.EvDTLBMisses
	StallCycles      = isa.EvStallCycles
	// MemoryReads / MemoryWrites are uncore (IMC) events: socket-wide DRAM
	// CAS command counts. Only K-LEB and perf stat can collect them.
	MemoryReads  = isa.EvCASReads
	MemoryWrites = isa.EvCASWrites
)

// EventByName resolves a mnemonic such as "LLC_MISSES".
func EventByName(name string) (Event, bool) { return isa.EventByName(name) }

// Encoding is an architectural event encoding (event select + umask +
// modifier flags), the hardware-level vocabulary behind the Event classes.
type Encoding = pmu.Encoding

// ParseRawEvent parses perf's raw event syntax "rUUEE" (umask UU, event
// select EE, both hex) into an Encoding, e.g. "r412e" = LLC misses.
func ParseRawEvent(s string) (Encoding, error) {
	enc, ok := pmu.ParseRawEncoding(s)
	if !ok {
		return Encoding{}, fmt.Errorf("kleb: %q is not a raw event (syntax rUUEE, hex umask and event select)", s)
	}
	return enc, nil
}

// WriteEventTable renders the machine's architectural event table — every
// event the PMU decodes, its encoding, and which counters can host it.
func WriteEventTable(w io.Writer, m MachineKind) error {
	prof, err := profileFor(m)
	if err != nil {
		return err
	}
	prof.Events.Render(w)
	return nil
}

// Time and Duration are instants/spans of virtual time in nanoseconds.
type (
	Time     = ktime.Time
	Duration = ktime.Duration
)

// Duration units.
const (
	Nanosecond  = ktime.Nanosecond
	Microsecond = ktime.Microsecond
	Millisecond = ktime.Millisecond
	Second      = ktime.Second
)

// MachineKind selects a simulated hardware profile.
type MachineKind string

// The available machines (the paper's two testbeds plus the LiMiT box).
const (
	// Nehalem is the Intel Core i7-920 @ 2.67GHz local testbed.
	Nehalem MachineKind = "nehalem"
	// CascadeLake is the AWS Xeon Platinum 8259CL validation machine.
	CascadeLake MachineKind = "cascadelake"
	// LegacyLiMiT is the Ubuntu 12.04 / 2.6.32 machine with the LiMiT
	// kernel patch applied.
	LegacyLiMiT MachineKind = "limit-legacy"
)

func profileFor(k MachineKind) (machine.Profile, error) {
	switch k {
	case Nehalem, "":
		return machine.Nehalem(), nil
	case CascadeLake:
		return machine.CascadeLake(), nil
	case LegacyLiMiT:
		return machine.LiMiTKernel(), nil
	}
	return machine.Profile{}, fmt.Errorf("kleb: unknown machine %q", k)
}

// ToolKind selects a collection mechanism. The default is K-LEB itself; the
// baselines exist for head-to-head comparisons.
type ToolKind string

// The five tools.
const (
	ToolKLEB       ToolKind = "kleb"
	ToolPerfStat   ToolKind = "perf-stat"
	ToolPerfRecord ToolKind = "perf-record"
	ToolPAPI       ToolKind = "papi"
	ToolLiMiT      ToolKind = "limit"
)

func newTool(k ToolKind) (monitor.Tool, error) {
	switch k {
	case ToolKLEB, "":
		return klebcore.New(), nil
	case ToolPerfStat:
		return perfstat.New(), nil
	case ToolPerfRecord:
		return perfrecord.New(), nil
	case ToolPAPI:
		return papi.New(), nil
	case ToolLiMiT:
		return limit.New(), nil
	}
	return nil, fmt.Errorf("kleb: unknown tool %q", k)
}

// Workload is a monitored program. Obtain one from the constructors below.
type Workload struct {
	name    string
	factory func() kernel.Program
	flops   uint64
}

// Name returns the workload's name.
func (w Workload) Name() string { return w.name }

// Flops returns the nominal floating point operation count (0 when the
// workload has no meaningful flop count).
func (w Workload) Flops() uint64 { return w.flops }

func scriptWorkload(s workload.Script, flops uint64) Workload {
	return Workload{
		name:    s.Name,
		factory: func() kernel.Program { return s.Program() },
		flops:   flops,
	}
}

// Linpack returns the LINPACK benchmark workload for problem size n
// (0 selects the paper's 5000).
func Linpack(n uint64) Workload {
	if n == 0 {
		n = 5000
	}
	lp := workload.NewLinpack(n)
	return scriptWorkload(lp.Script(), lp.Flops())
}

// TripleLoopMatmul returns the naive matrix multiplication workload of the
// paper's overhead study (~2 s).
func TripleLoopMatmul() Workload {
	m := workload.NewTripleLoopMatmul()
	return scriptWorkload(m.Script(), m.Flops())
}

// DgemmMatmul returns the MKL-dgemm-style workload (<100 ms).
func DgemmMatmul() Workload {
	m := workload.NewDgemmMatmul()
	return scriptWorkload(m.Script(), m.Flops())
}

// Container returns the Docker engine launching the named container image
// (see ContainerImages for the available names). Monitoring it exercises
// K-LEB's process lineage tracking: the counts come from the container
// child.
func Container(image string) (Workload, error) {
	img, ok := workload.ImageByName(image)
	if !ok {
		return Workload{}, fmt.Errorf("kleb: unknown container image %q", image)
	}
	return Workload{
		name:    "docker-" + image,
		factory: func() kernel.Program { return workload.DockerRun(img) },
	}, nil
}

// ContainerImages lists the modeled Docker Hub image names.
func ContainerImages() []string {
	var names []string
	for _, img := range workload.Images() {
		names = append(names, img.Name)
	}
	return names
}

// MeltdownStudy builds the side-channel case study's workloads.
type MeltdownStudy struct{ m workload.Meltdown }

// Meltdown returns the study with the paper's configuration.
func Meltdown() MeltdownStudy { return MeltdownStudy{m: workload.NewMeltdown()} }

// Victim is the plain secret-printing program (<10 ms).
func (s MeltdownStudy) Victim() Workload { return scriptWorkload(s.m.VictimScript(), 0) }

// Attack is the same program with the Flush+Reload exploit attached.
func (s MeltdownStudy) Attack() Workload { return scriptWorkload(s.m.AttackScript(), 0) }

// HeartbleedStudy builds the data-only-exploit case study's workloads
// (after Torres & Liu, the paper's reference [26]): a TLS server answering
// heartbeats, with an attack variant whose malicious requests each leak
// ~64KB of adjacent heap.
type HeartbleedStudy struct{ h workload.Heartbleed }

// Heartbleed returns the study with the standard configuration.
func Heartbleed() HeartbleedStudy { return HeartbleedStudy{h: workload.NewHeartbleed()} }

// Server is the benign request stream.
func (s HeartbleedStudy) Server() Workload { return scriptWorkload(s.h.ServerScript(), 0) }

// Attack is the same stream with a mid-run burst of malicious heartbeats.
func (s HeartbleedStudy) Attack() Workload { return scriptWorkload(s.h.AttackScript(), 0) }

// Synthetic builds a single-phase workload with the given instruction
// budget, memory footprint in bytes, and random-access fraction.
func Synthetic(instr, footprint uint64, randomFrac float64) Workload {
	s := workload.Synthetic{
		TotalInstr: instr,
		Footprint:  footprint,
		RandomFrac: randomFrac,
	}.Script()
	return scriptWorkload(s, 0)
}

// Serve builds the request-serving cloud workload (the taillat study's
// target): a three-tier service with processor-sharing replicas, hedged
// requests, and an open-loop arrival stream, coupled to the machine through
// its instruction capacity. seed drives the workload's traffic; the run's
// Seed drives everything else, so equal option sets replay bit-identically.
// Per-run serving statistics are on the program, not the Report; use the
// taillat experiment for the full tail-latency comparison.
func Serve(seed uint64) Workload {
	sv := workload.NewServe()
	return Workload{
		name:    sv.Name,
		factory: func() kernel.Program { return sv.Program(seed) },
	}
}

// CollectOptions configures one monitored run.
type CollectOptions struct {
	// Machine selects the hardware profile (default Nehalem).
	Machine MachineKind
	// Seed makes runs reproducible; equal seeds replay bit-identically.
	Seed uint64
	// Workload is the program to monitor (required).
	Workload Workload
	// Events are the hardware events to collect (required; at most four
	// beyond the fixed instructions/cycles/ref-cycles counters for K-LEB).
	Events []Event
	// RawEvents requests additional events by architectural encoding (perf's
	// rUUEE syntax, see ParseRawEvent). Each encoding is resolved against the
	// machine's event table at attach time and appended to Events; an
	// encoding the machine does not expose is an error.
	RawEvents []Encoding
	// Period is the sampling interval; K-LEB sustains 100µs, user-timer
	// tools bottom out at 10ms (default 10ms).
	Period Duration
	// IncludeKernel also counts ring-0 execution.
	IncludeKernel bool
	// Tool selects the collection mechanism (default K-LEB).
	Tool ToolKind
	// Baseline additionally runs the workload unmonitored on the same seed
	// and reports the monitoring overhead.
	Baseline bool
	// OSNoise adds a background noise daemon.
	OSNoise bool
	// Strace, when non-nil, receives an strace-style line for every
	// syscall any simulated process makes during the run.
	Strace io.Writer
	// DumpState, when non-nil, receives a /proc-style dump of the kernel's
	// final state (process table, modules, devices) after the run.
	DumpState io.Writer
	// Trace, when non-nil, receives the monitored run's event trace as
	// Chrome trace-event JSON (loadable in Perfetto or chrome://tracing):
	// context switches, HRTimer arm/fire (with per-fire jitter), kprobes,
	// syscalls, PMIs, module ioctls, K-LEB ring activity and session
	// lifecycle stages, all stamped with virtual time. Byte-identical for
	// the same options at any Workers value.
	Trace io.Writer
	// Metrics, when non-nil, receives the monitored run's aggregated
	// metrics in Prometheus text exposition format, including the timer
	// jitter and PMI latency histograms. Deterministic like Trace.
	Metrics io.Writer
	// ControllerLog overrides where the K-LEB controller writes its CSV
	// sample log in the simulated filesystem ("" = /var/log/kleb.csv).
	// Only meaningful for ToolKLEB.
	ControllerLog string
	// Workers sizes the scheduler pool used when the call needs several
	// runs (Baseline, Compare); 0 means GOMAXPROCS. Results are identical
	// for every worker count.
	Workers int
}

// Report is the outcome of Collect.
type Report struct {
	// Tool and Events describe the collection.
	Tool   ToolKind
	Events []Event
	// Samples is the periodic time series (per-event deltas).
	Samples []monitor.Sample
	// Totals are whole-run counts as reported by the tool.
	Totals map[Event]uint64
	// Estimated marks totals derived by sampling/multiplexing estimation.
	Estimated bool
	// Scale is the per-event enabled/running extrapolation factor a
	// multiplexing tool applied (1.0 = exact count); nil for tools that
	// never multiplex.
	Scale map[Event]float64
	// Elapsed is the workload's execution time; GFLOPS is derived from the
	// workload's nominal flop count when it has one.
	Elapsed Duration
	GFLOPS  float64
	// BaselineElapsed and OverheadPct are set when Baseline was requested.
	BaselineElapsed Duration
	OverheadPct     float64
	// DroppedSamples counts buffer-full safety stops.
	DroppedSamples uint64
	// ControllerLog is the raw CSV log the K-LEB controller wrote to the
	// simulated filesystem during the run (nil for other tools). It parses
	// with the same format WriteCSV produces.
	ControllerLog []byte
}

// SeriesFor extracts one event's per-sample delta series.
func (r *Report) SeriesFor(ev Event) []uint64 {
	res := monitor.Result{Events: r.Events, Samples: r.Samples}
	return res.SeriesFor(ev)
}

// MPKI returns LLC misses per kilo-instruction for the whole run; both
// events must have been collected.
func (r *Report) MPKI() float64 {
	return trace.MPKI(r.Totals[LLCMisses], r.Totals[Instructions])
}

// WriteCSV renders the sample series in the controller's log format.
func (r *Report) WriteCSV(w io.Writer) error {
	return trace.WriteCSV(w, r.Events, r.Samples)
}

// Sparkline renders one event's series as a unicode bar chart.
func (r *Report) Sparkline(ev Event, width int) string {
	return trace.Sparkline(r.SeriesFor(ev), width)
}

// Detector is an online anomaly detector over the collected sample stream
// (see the internal/anomaly package): the paper's motivating application
// for 100µs sampling.
type Detector = anomaly.Detector

// DetectionReport summarizes a detector pass.
type DetectionReport = anomaly.Report

// NewMPKIDetector returns a detector flagging windows whose LLC
// misses-per-kilo-instruction exceed a learned baseline. The report must
// have collected LLCMisses and Instructions.
func NewMPKIDetector(events []Event) (Detector, error) {
	return anomaly.NewMPKIDetector(events)
}

// NewLLCRatioDetector returns a detector flagging windows whose LLC
// miss/reference ratio looks like a Flush+Reload probe. The report must
// have collected LLCMisses and LLCReferences.
func NewLLCRatioDetector(events []Event) (Detector, error) {
	return anomaly.NewRatioDetector(events)
}

// NewCUSUMDetector returns a cumulative-sum change detector over one
// event's per-window rate — it catches sustained shifts (e.g. a data-only
// exploit's extra load traffic) too gentle for threshold rules.
func NewCUSUMDetector(events []Event, ev Event) (Detector, error) {
	return anomaly.NewCUSUMDetector(events, ev)
}

// PowerModel estimates dynamic power from collected samples (the paper's
// cited power-estimation use case, reference [12]).
type PowerModel = power.Model

// PowerEstimate is a power trace with its integral.
type PowerEstimate = power.Estimate

// DefaultPowerModel returns Nehalem-class per-event energy weights.
func DefaultPowerModel() PowerModel { return power.DefaultModel() }

// EstimatePower evaluates a power model over the report's sample stream.
func (r *Report) EstimatePower(m PowerModel) (*PowerEstimate, error) {
	return m.FromSamples(r.Events, r.Samples)
}

// Detect runs a detector over the report's sample stream in capture order,
// as the controller would during live monitoring.
func (r *Report) Detect(d Detector) DetectionReport {
	return anomaly.Scan(d, r.Samples)
}

// InterferenceCell reports how one container behaves next to a neighbour
// on the other core of a shared-LLC socket.
type InterferenceCell struct {
	// Image ran on core 0, Neighbour on core 1 ("" = ran alone).
	Image, Neighbour string
	// Runtime is the image's execution time; Slowdown is Runtime over the
	// image's solo runtime on the same socket.
	Runtime  Duration
	Slowdown float64
}

// Interference measures the pairwise slowdown of container images running
// concurrently on two cores of one socket (private L1/L2, shared LLC) —
// the co-location study behind the paper's §IV-B scheduling discussion.
// The returned cells include a solo baseline (Neighbour == "") and both
// directions of every pairing.
func Interference(images []string, seed uint64) ([]InterferenceCell, error) {
	res, err := experiments.RunColocate(experiments.ColocateConfig{Images: images, Seed: seed})
	if err != nil {
		return nil, err
	}
	out := make([]InterferenceCell, 0, len(res.Cells))
	for _, c := range res.Cells {
		out = append(out, InterferenceCell{
			Image: c.Image, Neighbour: c.Neighbour,
			Runtime: c.Runtime, Slowdown: c.Slowdown,
		})
	}
	return out, nil
}

// monitoredSpec builds the session spec for one monitored run of the
// workload; the strace hook attaches only here, never to baselines.
func monitoredSpec(opts CollectOptions, prof machine.Profile, kind ToolKind, period Duration) session.Spec {
	spec := session.Spec{
		Profile:    prof,
		Seed:       opts.Seed,
		TargetName: opts.Workload.name,
		NewTarget:  opts.Workload.factory,
		NewTool: func() (monitor.Tool, error) {
			t, err := newTool(kind)
			if err == nil && opts.ControllerLog != "" {
				if kt, ok := t.(*klebcore.Tool); ok {
					kt.LogPath = opts.ControllerLog
				}
			}
			return t, err
		},
		Config: monitor.Config{
			Events:        opts.Events,
			Raw:           opts.RawEvents,
			Period:        period,
			ExcludeKernel: !opts.IncludeKernel,
		},
		Noise: opts.OSNoise,
	}
	if opts.Strace != nil {
		spec.OnBoot = func(m *machine.Machine) { m.Kernel().TraceSyscalls(opts.Strace) }
	}
	return spec
}

// reportFrom converts a finished session run into the public Report.
func reportFrom(opts CollectOptions, kind ToolKind, run *session.Result) *Report {
	report := &Report{
		Tool:           kind,
		Events:         run.Result.Events,
		Samples:        run.Result.Samples,
		Totals:         run.Result.Totals,
		Estimated:      run.Result.Estimated,
		Scale:          run.Result.Scale,
		Elapsed:        run.Elapsed,
		DroppedSamples: run.Result.Dropped,
	}
	logPath := opts.ControllerLog
	if logPath == "" {
		logPath = klebcore.DefaultLogPath
	}
	if log, ok := run.Machine.Kernel().FS().ReadFile(logPath); ok {
		report.ControllerLog = log
	}
	if report.Tool == "" {
		report.Tool = ToolKLEB
	}
	if opts.Workload.flops > 0 && run.Elapsed > 0 {
		report.GFLOPS = float64(opts.Workload.flops) / 1e9 / run.Elapsed.Seconds()
	}
	return report
}

// Collect boots the machine, runs the workload under the selected tool and
// returns the collected data. With Baseline set, the monitored and
// unmonitored runs execute as one scheduler batch.
func Collect(opts CollectOptions) (*Report, error) {
	if opts.Workload.factory == nil {
		return nil, fmt.Errorf("kleb: CollectOptions.Workload is required")
	}
	prof, err := profileFor(opts.Machine)
	if err != nil {
		return nil, err
	}
	if _, err := newTool(opts.Tool); err != nil {
		return nil, err
	}
	period := opts.Period
	if period == 0 {
		period = 10 * Millisecond
	}
	specs := []session.Spec{monitoredSpec(opts, prof, opts.Tool, period)}
	var sink *telemetry.Sink
	if opts.Trace != nil || opts.Metrics != nil {
		if opts.Trace != nil {
			sink = telemetry.New()
		} else {
			sink = telemetry.MetricsOnly()
		}
		specs[0].Telemetry = sink
	}
	if opts.Baseline {
		specs = append(specs, session.Spec{
			Profile:    prof,
			Seed:       opts.Seed,
			TargetName: opts.Workload.name,
			NewTarget:  opts.Workload.factory,
			Noise:      opts.OSNoise,
		})
	}
	outs := session.Scheduler{Workers: opts.Workers}.Run(specs)
	if err := session.FirstErr(outs); err != nil {
		return nil, err
	}
	run := outs[0].Run
	if opts.DumpState != nil {
		run.Machine.Kernel().DumpState(opts.DumpState)
	}
	report := reportFrom(opts, opts.Tool, run)
	if opts.Baseline {
		base := outs[1].Run
		report.BaselineElapsed = base.Elapsed
		report.OverheadPct = trace.OverheadPct(base.Elapsed.Seconds(), run.Elapsed.Seconds())
	}
	if opts.Trace != nil {
		if err := sink.WriteChromeTrace(opts.Trace); err != nil {
			return nil, fmt.Errorf("kleb: writing trace: %w", err)
		}
	}
	if opts.Metrics != nil {
		if err := sink.WritePrometheus(opts.Metrics); err != nil {
			return nil, fmt.Errorf("kleb: writing metrics: %w", err)
		}
	}
	return report, nil
}

// CompareRow is one tool's outcome in a Compare call.
type CompareRow struct {
	Tool ToolKind
	// Unsupported explains why the tool cannot run on the selected machine
	// (e.g. LiMiT needs its kernel patch); the Report is nil then.
	Unsupported string
	// Report is the tool's collection, with BaselineElapsed/OverheadPct
	// filled in against the shared unmonitored baseline.
	Report *Report
}

// Compare runs the same workload under several tools (default: all five)
// plus one unmonitored baseline, as a single scheduler batch, and reports
// each tool's collection and overhead side by side. Tools the selected
// machine cannot host come back with Unsupported set rather than failing
// the batch.
func Compare(opts CollectOptions, tools ...ToolKind) ([]CompareRow, error) {
	if opts.Workload.factory == nil {
		return nil, fmt.Errorf("kleb: CollectOptions.Workload is required")
	}
	if len(tools) == 0 {
		tools = []ToolKind{ToolKLEB, ToolPerfStat, ToolPerfRecord, ToolPAPI, ToolLiMiT}
	}
	// Several runs would interleave on shared strace/trace/metrics writers;
	// per-run debug taps only make sense on Collect.
	opts.Strace = nil
	opts.DumpState = nil
	opts.Trace = nil
	opts.Metrics = nil
	prof, err := profileFor(opts.Machine)
	if err != nil {
		return nil, err
	}
	for _, kind := range tools {
		if _, err := newTool(kind); err != nil {
			return nil, err
		}
	}
	period := opts.Period
	if period == 0 {
		period = 10 * Millisecond
	}
	specs := make([]session.Spec, 0, len(tools)+1)
	for _, kind := range tools {
		specs = append(specs, monitoredSpec(opts, prof, kind, period))
	}
	specs = append(specs, session.Spec{
		Profile:    prof,
		Seed:       opts.Seed,
		TargetName: opts.Workload.name,
		NewTarget:  opts.Workload.factory,
		Noise:      opts.OSNoise,
	})
	outs := session.Scheduler{Workers: opts.Workers}.Run(specs)
	baseOut := outs[len(tools)]
	if baseOut.Err != nil {
		return nil, baseOut.Err
	}
	base := baseOut.Run
	rows := make([]CompareRow, len(tools))
	for i, kind := range tools {
		rows[i].Tool = kind
		if kind == "" {
			rows[i].Tool = ToolKLEB
		}
		if outs[i].Err != nil {
			rows[i].Unsupported = outs[i].Err.Error()
			continue
		}
		report := reportFrom(opts, kind, outs[i].Run)
		report.BaselineElapsed = base.Elapsed
		report.OverheadPct = trace.OverheadPct(base.Elapsed.Seconds(), outs[i].Run.Elapsed.Seconds())
		rows[i].Report = report
	}
	return rows, nil
}
