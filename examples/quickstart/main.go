// Quickstart: collect a high-frequency hardware event time series from a
// workload with K-LEB and print a summary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kleb"
)

func main() {
	// A synthetic program: 500M instructions over a 4MB working set with a
	// little pointer chasing.
	workload := kleb.Synthetic(500_000_000, 4<<20, 0.05)

	report, err := kleb.Collect(kleb.CollectOptions{
		Workload: workload,
		Events: []kleb.Event{
			kleb.Instructions,
			kleb.LLCMisses,
			kleb.Loads,
			kleb.Branches,
		},
		Period:   kleb.Millisecond, // 1ms — 10× faster than perf can go
		Baseline: true,             // also measure monitoring overhead
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %v, %d samples at 1ms, overhead %.2f%%\n",
		report.Elapsed, len(report.Samples), report.OverheadPct)
	fmt.Printf("MPKI (LLC misses per kilo-instruction): %.2f\n", report.MPKI())
	fmt.Println("\nwhole-run totals:")
	for _, ev := range report.Events {
		fmt.Printf("  %-24s %14d\n", ev, report.Totals[ev])
	}
	fmt.Println("\ntime series:")
	for _, ev := range report.Events {
		fmt.Printf("  %-24s |%s|\n", ev, report.Sparkline(ev, 60))
	}
}
