// LINPACK case study (paper §IV-A): monitor the LINPACK benchmark binary
// without any source access, observe its phase behaviour in the
// multiplication/load/store event series, and report GFLOPS with the
// monitoring overhead K-LEB imposes.
//
//	go run ./examples/linpack
package main

import (
	"fmt"
	"log"

	"kleb"
)

func main() {
	lp := kleb.Linpack(5000) // the paper's problem size

	report, err := kleb.Collect(kleb.CollectOptions{
		Workload: lp,
		Events: []kleb.Event{
			kleb.ArithMuls,
			kleb.Loads,
			kleb.Stores,
		},
		Period:   10 * kleb.Millisecond, // long run: 10ms is plenty
		Baseline: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LINPACK N=5000: %.2f GFLOPS under K-LEB (overhead %.2f%%)\n",
		report.GFLOPS, report.OverheadPct)
	fmt.Printf("%d samples over %v\n\n", len(report.Samples), report.Elapsed)

	// The phase structure of Fig 4: a flat start (kernel-mode init), a
	// LOAD/STORE burst (matrix setup), then repeating load→multiply→store
	// solve cycles.
	fmt.Println("phase behaviour (each column sums a slice of the run):")
	for _, ev := range report.Events {
		fmt.Printf("  %-26s |%s|\n", ev, report.Sparkline(ev, 72))
	}
}
