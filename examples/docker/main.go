// Docker case study (paper §IV-B): profile container workloads natively —
// K-LEB attaches to the Docker engine process and follows the container
// child through fork-probe lineage tracking — then classify each image as
// computation- or memory-intensive by its LLC MPKI (threshold 10, after
// Muralidhara et al.).
//
//	go run ./examples/docker
package main

import (
	"fmt"
	"log"

	"kleb"
)

func main() {
	fmt.Println("image      elapsed        MPKI   classification")
	for _, image := range kleb.ContainerImages() {
		w, err := kleb.Container(image)
		if err != nil {
			log.Fatal(err)
		}
		report, err := kleb.Collect(kleb.CollectOptions{
			Workload: w,
			Events:   []kleb.Event{kleb.LLCMisses, kleb.Instructions},
			Period:   10 * kleb.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		mpki := report.MPKI()
		class := "computation-intensive"
		if mpki > 10 {
			class = "memory-intensive"
		}
		fmt.Printf("%-10s %-12v %7.2f   %s\n", image, report.Elapsed, mpki, class)
	}
	fmt.Println("\nA scheduler can co-locate computation-intensive containers with")
	fmt.Println("memory-intensive ones on the same core using exactly these counts.")
}
