// Dynamic power estimation (paper reference [12], Liu et al.): evaluate a
// per-event energy model over a K-LEB sample stream. The sampling rate is
// the whole story — at 1ms the power trace resolves LINPACK's load/compute/
// store phases into watts; a 10ms tool sees one blurred average per
// scheduler quantum.
//
//	go run ./examples/power
package main

import (
	"fmt"
	"log"

	"kleb"
)

func main() {
	events := []kleb.Event{
		kleb.Instructions,
		kleb.FloatingPointOps,
		kleb.L2Misses,
		kleb.LLCMisses,
	}
	report, err := kleb.Collect(kleb.CollectOptions{
		Workload: kleb.Linpack(5000),
		Events:   events,
		Period:   kleb.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	est, err := report.EstimatePower(kleb.DefaultPowerModel())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LINPACK N=5000 under K-LEB @1ms: %d power samples over %v\n",
		len(est.Series), report.Elapsed)
	fmt.Printf("mean %.1f W   peak %.1f W   energy %.2f J\n",
		est.MeanWatts, est.PeakWatts, est.EnergyJoules)

	// Render the power trace as a sparkline (dynamic part only).
	watts := make([]uint64, len(est.Series))
	for i, p := range est.Series {
		d := p.Watts - kleb.DefaultPowerModel().StaticWatts
		if d > 0 {
			watts[i] = uint64(d * 1000)
		}
	}
	fmt.Println("\ndynamic power over time (phases visible as wattage swings):")
	fmt.Printf("  |%s|\n", sparkline(watts, 72))
}

// sparkline mirrors the trace package's renderer for the example's output.
func sparkline(series []uint64, width int) string {
	levels := []rune(" ▁▂▃▄▅▆▇█")
	if len(series) == 0 {
		return ""
	}
	if width > len(series) {
		width = len(series)
	}
	buckets := make([]uint64, width)
	counts := make([]uint64, width)
	for i, v := range series {
		b := i * width / len(series)
		buckets[b] += v
		counts[b]++
	}
	var max uint64
	for i := range buckets {
		if counts[i] > 0 {
			buckets[i] /= counts[i]
		}
		if buckets[i] > max {
			max = buckets[i]
		}
	}
	out := make([]rune, width)
	for i, v := range buckets {
		idx := 0
		if max > 0 {
			idx = int(v * uint64(len(levels)-1) / max)
		}
		out[i] = levels[idx]
	}
	return string(out)
}
