// Meltdown case study (paper §IV-C): the victim program finishes in under
// 10ms, so a 10ms-resolution tool sees at most one sample — but K-LEB's
// 100µs series localizes the Flush+Reload attack window through its LLC
// reference/miss storm and the MPKI jump.
//
//	go run ./examples/meltdown
package main

import (
	"fmt"
	"log"

	"kleb"
)

func main() {
	study := kleb.Meltdown()
	events := []kleb.Event{kleb.LLCReferences, kleb.LLCMisses, kleb.Instructions}

	run := func(name string, w kleb.Workload) *kleb.Report {
		report, err := kleb.Collect(kleb.CollectOptions{
			Workload: w,
			Events:   events,
			Period:   100 * kleb.Microsecond, // the headline 100µs rate
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s elapsed %-12v samples %-5d LLC refs %-9d misses %-9d MPKI %.2f\n",
			name, report.Elapsed, len(report.Samples),
			report.Totals[kleb.LLCReferences], report.Totals[kleb.LLCMisses], report.MPKI())
		return report
	}

	fmt.Println("K-LEB @100µs — victim with and without the Meltdown exploit:")
	victim := run("victim", study.Victim())
	attack := run("victim+meltdown", study.Attack())

	fmt.Println("\nLLC miss series (the attack window is visible in time):")
	fmt.Printf("  %-18s |%s|\n", "victim", victim.Sparkline(kleb.LLCMisses, 60))
	fmt.Printf("  %-18s |%s|\n", "victim+meltdown", attack.Sparkline(kleb.LLCMisses, 60))

	// A trivial online detector: flag any 1ms window whose MPKI exceeds a
	// threshold — only possible because the sampling is fast enough to
	// give many windows within a <20ms program.
	const threshold = 3.0
	flagged := 0
	instr := attack.SeriesFor(kleb.Instructions)
	misses := attack.SeriesFor(kleb.LLCMisses)
	for i := range misses {
		if instr[i] > 0 && float64(misses[i])/(float64(instr[i])/1000) > threshold*victim.MPKI() {
			flagged++
		}
	}
	fmt.Printf("\nwindows with MPKI > %.0f× victim baseline: %d of %d\n",
		threshold, flagged, len(misses))
	if flagged > 0 {
		fmt.Println("=> attack detected while the program was still running")
	}

	// The same victim seen by a 10ms tool: one data point, no time series.
	tenMs := victim.Elapsed.Seconds() / 0.010
	fmt.Printf("\nfor comparison, a 10ms tool would get %.1f samples of the victim\n", tenMs)
}
