// Contention-aware placement (paper §IV-B): classify containers online
// with K-LEB's MPKI counts, then validate the placement rule on a two-core,
// shared-LLC socket — containers whose classes both stress the LLC
// interfere when run concurrently; mixing classes is nearly free. This is
// the scheduling application (Torres et al., Arteaga et al.) that the
// paper positions K-LEB as the enabler for.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	"kleb"
)

func main() {
	images := []string{"ruby", "mysql", "apache"}

	// Step 1 — classify each container online with K-LEB (Fig 5's flow).
	fmt.Println("step 1: online MPKI classification via K-LEB")
	for _, image := range images {
		w, err := kleb.Container(image)
		if err != nil {
			log.Fatal(err)
		}
		report, err := kleb.Collect(kleb.CollectOptions{
			Workload: w,
			Events:   []kleb.Event{kleb.LLCMisses, kleb.Instructions},
			Period:   10 * kleb.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		class := "computation-intensive"
		if report.MPKI() > 10 {
			class = "memory-intensive"
		}
		fmt.Printf("  %-8s MPKI %6.2f -> %s\n", image, report.MPKI(), class)
	}

	// Step 2 — measure what those classes mean for co-location.
	fmt.Println("\nstep 2: pairwise interference on a 2-core shared-LLC socket")
	cells, err := kleb.Interference(images, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cells {
		if c.Neighbour == "" {
			continue
		}
		verdict := "fine"
		if c.Slowdown > 1.25 {
			verdict = "BAD PAIRING"
		} else if c.Slowdown > 1.1 {
			verdict = "costly"
		}
		fmt.Printf("  %-8s next to %-8s %5.2fx  %s\n", c.Image, c.Neighbour, c.Slowdown, verdict)
	}

	fmt.Println("\nplacement rule: keep LLC-hungry containers apart; pair them with")
	fmt.Println("computation-intensive neighbours — decided from K-LEB's live counts.")
}
