// Online attack detection — the application the paper names as K-LEB's
// purpose (§IV-C) and leaves as future work, implemented here: an LLC
// miss/reference ratio detector runs over the 100µs sample stream and flags
// the Flush+Reload covert channel while the victim program is still
// executing. The same detector at perf's 10ms resolution would have zero
// complete windows to judge before the program exits.
//
//	go run ./examples/detector
package main

import (
	"fmt"
	"log"

	"kleb"
)

func main() {
	study := kleb.Meltdown()
	events := []kleb.Event{kleb.LLCReferences, kleb.LLCMisses, kleb.Instructions}

	collect := func(w kleb.Workload) *kleb.Report {
		r, err := kleb.Collect(kleb.CollectOptions{
			Workload: w,
			Events:   events,
			Period:   100 * kleb.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	detector, err := kleb.NewLLCRatioDetector(events)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("LLC miss/ref ratio detector over K-LEB 100µs streams")
	fmt.Println()
	for _, run := range []struct {
		name string
		w    kleb.Workload
	}{
		{"victim (clean)", study.Victim()},
		{"victim+meltdown", study.Attack()},
	} {
		report := collect(run.w)
		detection := report.Detect(detector)
		detector.Reset()

		fmt.Printf("%-18s %3d windows, %3d flagged (%.0f%%)",
			run.name, len(detection.Verdicts), detection.Flagged,
			100*detection.FlagFraction())
		if detection.Flagged > 0 {
			fmt.Printf(" — first flag at t=%v, program exits at t=%v",
				detection.FirstFlag, report.Elapsed)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("The attack is flagged mid-flight: high-frequency sampling turns")
	fmt.Println("post-mortem profiling into online detection.")
}
