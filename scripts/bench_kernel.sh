#!/usr/bin/env bash
# bench_kernel.sh — the scheduler fast-path regression gate, runnable
# locally and in CI:
#
#   bench_kernel.sh          check mode: smoke-run the in-package kernel and
#                            PMU benchmarks (one iteration each, catching
#                            bit-rot), then re-measure the fast path and fail
#                            if any ns/op figure regresses more than the
#                            bound recorded in the committed BENCH_kernel.json
#                            (or if the zero-alloc steady state is lost).
#   bench_kernel.sh update   rewrite BENCH_kernel.json with fresh numbers
#                            from this host (commit the result).
#
# Exits non-zero on the first failing stage. Run from anywhere inside the
# repository.
set -euo pipefail

cd "$(git rev-parse --show-toplevel 2>/dev/null || dirname "$0")/."

mode="${1:-check}"
case "$mode" in
update)
    go run ./cmd/experiments -json BENCH_kernel.json kernel-bench
    echo "bench_kernel: wrote BENCH_kernel.json"
    ;;
check)
    echo "==> kernel/pmu benchmark smoke (1 iteration)"
    go test ./internal/kernel ./internal/pmu -run 'NONE' -bench . -benchtime 1x >/dev/null

    echo "==> kernel fast-path gate vs BENCH_kernel.json"
    go run ./cmd/experiments -json /tmp/BENCH_kernel.json \
        -baseline BENCH_kernel.json kernel-bench

    echo "bench_kernel: OK"
    ;;
*)
    echo "usage: bench_kernel.sh [check|update]" >&2
    exit 2
    ;;
esac
