#!/usr/bin/env bash
# smoke_klebd.sh — boot a small klebd fleet, validate every HTTP endpoint
# with the daemon's own scrape prober (no curl, no grep on expositions),
# and assert a clean SIGTERM drain:
#
#   1. build klebd and start it on an ephemeral port
#   2. wait for the listen line, extract the URL
#   3. `klebd scrape URL` — /healthz ok, /metrics passes the strict
#      exposition lint with the klebd_* self section present, /trace is
#      well-formed Chrome-trace JSON, /fleetz decodes with a balanced
#      period-conservation ledger
#   4. SIGTERM, then require exit 0 and the drain summary on stdout
#
# Runs locally and as CI's smoke job. Exits non-zero on the first failure.
set -euo pipefail

cd "$(git rev-parse --show-toplevel 2>/dev/null || dirname "$0")/."

bin=$(mktemp -d)/klebd
out=$(mktemp)
trap 'rm -rf "$(dirname "$bin")" "$out"; kill "$pid" 2>/dev/null || true' EXIT

echo "==> build"
go build -o "$bin" ./cmd/klebd

echo "==> boot (ephemeral port, background fault rate, cluster nodes)"
"$bin" -listen 127.0.0.1:0 -nodes 8 -shards 4 -fault-every 5 -cluster-every 6 >"$out" 2>&1 &
pid=$!

url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's|^klebd: .* serving \(http://[^ ]*\) .*$|\1|p' "$out")
    [[ -n "$url" ]] && break
    kill -0 "$pid" 2>/dev/null || { echo "klebd died at boot:" >&2; cat "$out" >&2; exit 1; }
    sleep 0.1
done
[[ -n "$url" ]] || { echo "klebd never printed its listen URL:" >&2; cat "$out" >&2; exit 1; }
echo "    $url"

echo "==> scrape"
"$bin" scrape "$url"

echo "==> drain (SIGTERM)"
kill -TERM "$pid"
if ! wait "$pid"; then
    echo "klebd exited non-zero after SIGTERM:" >&2
    cat "$out" >&2
    exit 1
fi
if ! grep -q "^klebd: drained:" "$out"; then
    echo "drain summary missing from klebd output:" >&2
    cat "$out" >&2
    exit 1
fi
if ! grep -q "balanced: true" "$out"; then
    echo "drained fleet did not report a balanced ledger:" >&2
    cat "$out" >&2
    exit 1
fi
sed -n 's/^klebd: /    /p' "$out"
echo "smoke_klebd: OK"
