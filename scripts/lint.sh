#!/usr/bin/env bash
# lint.sh — the repository's static gate, runnable locally and in CI:
#
#   1. gofmt       every tracked Go file must be gofmt-clean
#   2. go vet      the standard analyzer suite
#   3. klebvet     the simulator's determinism/telemetry analyzers,
#                  driven through go vet's -vettool protocol
#   3b. klebvet standalone — the full ten-analyzer suite including the
#                  whole-program passes (detertaint, hotalloc,
#                  ledgerguard), timed against a 60s budget and writing
#                  klebvet-findings.json (CI uploads it as an artifact)
#   4. go generate the generated PMU event tables must match the
#                  checked-in spec (events.spec is the source of truth)
#   5. bench smoke the kernel/PMU micro-benchmarks compile and survive one
#                  iteration (the full regression gate runs in CI through
#                  scripts/bench_kernel.sh)
#   6. chaos smoke one seeded fault plan runs end to end and satisfies the
#                  period-conservation invariant (the full 32-plan sweep
#                  runs in CI's chaos job)
#   7. klebd smoke the fleet daemon boots, serves lint-clean expositions,
#                  and drains cleanly on SIGTERM (scripts/smoke_klebd.sh,
#                  also CI's klebd-smoke job)
#   8. taillat smoke one-trial serve-workload run satisfies the tail-latency
#                  invariants (conservation, monotone percentiles, K-LEB's
#                  Δp99 strictly under perf stat's and PAPI's; the 3-trial
#                  golden check runs in CI's chaos job)
#
# Exits non-zero on the first failing stage. Run from anywhere inside
# the repository.
set -euo pipefail

cd "$(git rev-parse --show-toplevel 2>/dev/null || dirname "$0")/."

echo "==> gofmt"
# Testdata under internal/analysis is excluded: analyzer fixtures are
# allowed any formatting their test cases need.
unformatted=$(gofmt -l . | grep -v '/testdata/' || true)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> klebvet (go vet -vettool)"
klebvet_bin=$(mktemp -d)/klebvet
trap 'rm -rf "$(dirname "$klebvet_bin")"' EXIT
go build -o "$klebvet_bin" ./cmd/klebvet
go vet -vettool="$klebvet_bin" ./...

echo "==> klebvet standalone (whole-program suite, 60s budget)"
# The per-package vettool pass above cannot run the whole-program
# analyzers; this stage runs everything in one process, emits the
# machine-readable findings file, and enforces the interprocedural
# engine's own latency budget so it never quietly becomes too slow to
# keep in the gate.
klebvet_start=$SECONDS
"$klebvet_bin" -json ./... > klebvet-findings.json
klebvet_elapsed=$((SECONDS - klebvet_start))
echo "    klebvet standalone took ${klebvet_elapsed}s ($(grep -c '"analyzer"' klebvet-findings.json || true) findings)"
if (( klebvet_elapsed > 60 )); then
    echo "klebvet: standalone suite took ${klebvet_elapsed}s, budget is 60s" >&2
    exit 1
fi

echo "==> generated event tables up to date"
(cd internal/pmu && go run ./gen -spec events.spec -out events_gen.go -check)

echo "==> kernel bench smoke (1 iteration)"
go test ./internal/kernel ./internal/pmu -run 'NONE' -bench . -benchtime 1x >/dev/null

echo "==> chaos smoke (1 fault plan)"
go run ./cmd/experiments -seeds 1 chaos >/dev/null

echo "==> klebd smoke (boot, scrape, drain)"
./scripts/smoke_klebd.sh >/dev/null

echo "==> taillat smoke (1 trial)"
go run ./cmd/experiments -trials 1 taillat >/dev/null

echo "lint: OK"
