package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"kleb/internal/fleet"
)

// liveFleet boots a small daemon-mode fleet behind an httptest server and
// waits until at least one round has folded.
func liveFleet(t *testing.T) (*fleet.Fleet, *httptest.Server) {
	t.Helper()
	f := fleet.New(fleet.Config{Nodes: 4, Shards: 2, Seed: 9, TargetInstr: 200_000})
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	t.Cleanup(func() {
		srv.Close()
		f.Stop()
		_ = f.Wait()
	})
	for f.Status().Watermark < 1 {
		runtime.Gosched()
	}
	return f, srv
}

// TestScrapeValidatesLiveDaemon: the scrape subcommand accepts a healthy
// daemon and reports every endpoint.
func TestScrapeValidatesLiveDaemon(t *testing.T) {
	_, srv := liveFleet(t)
	var out bytes.Buffer
	if err := runScrape(srv.URL+"/", &out); err != nil { // trailing slash tolerated
		t.Fatalf("scrape of healthy daemon failed: %v", err)
	}
	for _, want := range []string{"healthz: ok", "lint clean", "trace:", "ledger balanced"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("scrape output missing %q:\n%s", want, out.String())
		}
	}
}

// TestScrapeRejectsDrainingDaemon: once a drain begins, /healthz turns 503
// and the probe fails — load balancers and CI both see the daemon as gone.
func TestScrapeRejectsDrainingDaemon(t *testing.T) {
	f, srv := liveFleet(t)
	f.Stop()
	if err := runScrape(srv.URL, io.Discard); err == nil {
		t.Fatal("scrape accepted a draining daemon")
	} else if !strings.Contains(err.Error(), "503") {
		t.Fatalf("want a 503 healthz failure, got: %v", err)
	}
}

// TestScrapeRejectsMalformedExposition: a server emitting a gauge with a
// counter suffix must fail the lint, not pass silently.
func TestScrapeRejectsMalformedExposition(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("# HELP bad_total x\n# TYPE bad_total gauge\nbad_total 1\n"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	err := runScrape(srv.URL, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "lint") {
		t.Fatalf("want an exposition lint failure, got: %v", err)
	}
}

// TestResolveProfile covers the -machine flag mapping.
func TestResolveProfile(t *testing.T) {
	for _, name := range []string{"nehalem", "cascadelake"} {
		p, err := resolveProfile(name)
		if err != nil || p.Name == "" {
			t.Errorf("resolveProfile(%q) = %v, %v", name, p.Name, err)
		}
	}
	if _, err := resolveProfile("itanium"); err == nil {
		t.Error("resolveProfile accepted an unknown machine")
	}
}
