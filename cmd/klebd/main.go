// Command klebd is the live fleet-monitoring daemon: it runs K-LEB across
// a simulated fleet of machines, sharded over long-lived workers, and
// serves the aggregate over HTTP while the fleet streams.
//
// Endpoints:
//
//	/metrics  Prometheus text exposition (deterministic kleb_* fleet
//	          section + klebd_* self-telemetry section)
//	/trace    rolling Chrome-trace window of recent fleet events
//	/healthz  liveness; 503 "draining" once a SIGTERM drain begins
//	/fleetz   operational JSON (shard lag, ledger totals, ingest rates)
//
// Examples:
//
//	klebd -nodes 10000 -shards 8 -listen :9570
//	klebd -nodes 64 -rounds 5 -fault-every 7     # bounded run, then serve
//	klebd scrape http://127.0.0.1:9570           # validate a live daemon
//
// SIGTERM or SIGINT starts a graceful drain: shards finish their current
// round, every fully delivered round folds into the aggregate, the final
// fleet summary prints, and the daemon exits 0.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kleb/internal/fleet"
	"kleb/internal/ktime"
	"kleb/internal/machine"
)

func main() {
	var (
		listenFlag  = flag.String("listen", "127.0.0.1:9570", "HTTP listen address (use :0 for an ephemeral port)")
		nodesFlag   = flag.Int("nodes", 16, "simulated machines in the fleet")
		shardsFlag  = flag.Int("shards", 4, "shard workers (aggregate is byte-identical at any value)")
		seedFlag    = flag.Uint64("seed", 1, "fleet seed (equal seeds replay identically at any shard count)")
		roundsFlag  = flag.Uint64("rounds", 0, "monitoring rounds per node (0 = run until SIGTERM)")
		periodFlag  = flag.Duration("period", time.Millisecond, "per-node K-LEB sampling period (virtual time)")
		limitFlag   = flag.Duration("limit", 50*time.Millisecond, "per-node run cap (virtual time)")
		instrFlag   = flag.Uint64("instr", 2_000_000, "per-node workload size, instructions per round")
		retainFlag  = flag.Int("retention", 1<<14, "trace ring capacity served by /trace, events")
		maxLeadFlag = flag.Int("max-lead", 4, "rounds a shard may run ahead of the fold watermark")
		faultFlag   = flag.Int("fault-every", 0, "inject a seeded fault plan into every Nth node round (0 = off)")
		clusterFlag = flag.Int("cluster-every", 0, "make every Nth node a 2-core cluster (0 = off)")
		machineFlag = flag.String("machine", "nehalem", "machine profile: nehalem | cascadelake")
	)
	flag.Parse()

	// `klebd scrape URL` probes a running daemon's endpoints and validates
	// what they serve; the CI smoke job uses it in place of curl.
	if flag.Arg(0) == "scrape" {
		if flag.Arg(1) == "" {
			fatal(fmt.Errorf("usage: klebd scrape http://host:port"))
		}
		if err := runScrape(flag.Arg(1), os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	prof, err := resolveProfile(*machineFlag)
	if err != nil {
		fatal(err)
	}
	f := fleet.New(fleet.Config{
		Nodes:        *nodesFlag,
		Shards:       *shardsFlag,
		Seed:         *seedFlag,
		Rounds:       *roundsFlag,
		Period:       ktime.Duration(periodFlag.Nanoseconds()),
		Limit:        ktime.Duration(limitFlag.Nanoseconds()),
		TargetInstr:  *instrFlag,
		Retention:    *retainFlag,
		MaxLead:      *maxLeadFlag,
		FaultEvery:   *faultFlag,
		ClusterEvery: *clusterFlag,
		Profile:      prof,
	})

	// Listen before Start so `-listen 127.0.0.1:0` can print the real port
	// and a scraper can attach from the first fold onward.
	ln, err := net.Listen("tcp", *listenFlag)
	if err != nil {
		fatal(err)
	}
	cfg := f.Config()
	fmt.Printf("klebd: %d nodes over %d shards, seed %d; serving http://%s (/metrics /trace /healthz /fleetz)\n",
		cfg.Nodes, cfg.Shards, cfg.Seed, ln.Addr())

	if err := f.Start(); err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: f.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.Serve(ln) }()
	fleetDone := make(chan error, 1)
	go func() { fleetDone <- f.Wait() }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	var runErr error
	select {
	case sig := <-sigs:
		fmt.Printf("klebd: %v; draining (shards finish their round, delivered rounds fold)\n", sig)
		f.Stop()
		runErr = <-fleetDone
	case runErr = <-fleetDone:
		if runErr == nil && cfg.Rounds > 0 {
			// Bounded run complete: keep serving the final aggregate until
			// the operator is done with it.
			fmt.Printf("klebd: %d rounds complete; serving final aggregate until SIGTERM\n", cfg.Rounds)
			sig := <-sigs
			fmt.Printf("klebd: %v; shutting down\n", sig)
			f.Stop()
		}
	case err := <-httpErr:
		f.Stop()
		<-fleetDone
		fatal(fmt.Errorf("http server: %w", err))
	}

	_ = srv.Close() // aggregate is final; no reason to linger on open scrapes
	st := f.Status()
	fmt.Printf("klebd: drained: %d rounds folded, %d node rounds (%d degraded, %d faulted), %d samples ingested\n",
		st.Watermark, st.NodeRounds, st.DegradedRounds, st.FaultedRounds, st.SamplesIngested)
	if st.LedgerFires > 0 {
		fmt.Printf("klebd: ledger: fires %d = captured %d + dropped %d + lost %d (balanced: %v)\n",
			st.LedgerFires, st.LedgerCaptured, st.LedgerDropped, st.LedgerLost, st.LedgerBalanced)
	}
	if runErr != nil {
		fatal(runErr)
	}
}

// resolveProfile maps a -machine name to its profile.
func resolveProfile(name string) (machine.Profile, error) {
	switch name {
	case "nehalem":
		return machine.Nehalem(), nil
	case "cascadelake":
		return machine.CascadeLake(), nil
	}
	return machine.Profile{}, fmt.Errorf("unknown machine %q (nehalem | cascadelake)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "klebd:", err)
	os.Exit(1)
}
