package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"kleb/internal/fleet"
	"kleb/internal/telemetry"
)

// scrapeClient bounds every probe; a daemon that cannot answer a scrape in
// seconds has failed the check.
var scrapeClient = &http.Client{Timeout: 10 * time.Second}

// runScrape probes a running klebd and validates everything it serves:
// /healthz answers ok, /metrics passes the strict exposition lint and
// carries both the fleet and self sections, /trace is well-formed
// Chrome-trace JSON, and /fleetz decodes with a balanced ledger. One
// summary line per endpoint goes to out; the first violation aborts with
// an error. This is the CI smoke probe — no curl, no grep.
func runScrape(base string, out io.Writer) error {
	base = strings.TrimRight(base, "/")

	body, err := fetch(base + "/healthz")
	if err != nil {
		return err
	}
	if !strings.Contains(body, "ok") {
		return fmt.Errorf("/healthz: unexpected body %q", body)
	}
	fmt.Fprintln(out, "healthz: ok")

	body, err = fetch(base + "/metrics")
	if err != nil {
		return err
	}
	if err := telemetry.LintExposition(strings.NewReader(body)); err != nil {
		return fmt.Errorf("/metrics: exposition lint: %w", err)
	}
	families := strings.Count(body, "# TYPE ")
	if !strings.Contains(body, "klebd_scrapes_total") {
		return fmt.Errorf("/metrics: missing klebd_* self-telemetry section")
	}
	fmt.Fprintf(out, "metrics: %d families, lint clean\n", families)

	body, err = fetch(base + "/trace")
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		return fmt.Errorf("/trace: invalid JSON: %w", err)
	}
	fmt.Fprintf(out, "trace: %d events in window\n", len(doc.TraceEvents))

	body, err = fetch(base + "/fleetz")
	if err != nil {
		return err
	}
	var st fleet.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		return fmt.Errorf("/fleetz: invalid JSON: %w", err)
	}
	if st.LedgerFires > 0 && !st.LedgerBalanced {
		return fmt.Errorf("/fleetz: ledger unbalanced: fires %d != %d + %d + %d",
			st.LedgerFires, st.LedgerCaptured, st.LedgerDropped, st.LedgerLost)
	}
	fmt.Fprintf(out, "fleetz: watermark %d, %d node rounds, ledger balanced\n",
		st.Watermark, st.NodeRounds)
	return nil
}

// fetch GETs one URL and returns the body; any non-200 status is an error.
func fetch(url string) (string, error) {
	resp, err := scrapeClient.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("%s: read: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}
