package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildOnce builds the klebvet binary one time for all tests.
var buildOnce struct {
	sync.Once
	bin string
	err error
}

func klebvetBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "klebvet-test-*")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "klebvet")
		cmd := exec.Command("go", "build", "-o", bin, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildOnce.err = err
			t.Logf("go build: %s", out)
			return
		}
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatalf("building klebvet: %v", buildOnce.err)
	}
	return buildOnce.bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestStandaloneCleanTree runs the full suite over the repository: the
// tree must be free of findings (real ones are fixed, intentional ones
// carry //klebvet:allow comments).
func TestStandaloneCleanTree(t *testing.T) {
	bin := klebvetBinary(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("klebvet ./... failed: %v\n%s", err, out)
	}
	if len(bytes.TrimSpace(out)) != 0 {
		t.Fatalf("klebvet ./... produced output on a clean tree:\n%s", out)
	}
}

// TestStandaloneFindsViolations rebuilds the fireDue map-order bug and a
// wall-clock read in a scratch module and checks both are reported.
func TestStandaloneFindsViolations(t *testing.T) {
	bin := klebvetBinary(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

import "time"

type proc struct{ pid int }

// fireDue reintroduces the PR 2 bug: wakeups collected in map order.
func fireDue(procs map[int]*proc) []*proc {
	var woken []*proc
	for _, p := range procs {
		woken = append(woken, p)
	}
	return woken
}

func main() {
	_ = fireDue(nil)
	_ = time.Now()
}
`)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("klebvet succeeded on a buggy module; output:\n%s", out)
	}
	for _, want := range []string{
		"append to woken inside range over map",
		"time.Now",
		"klebvet/maporder",
		"klebvet/walltime",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSelectedAnalyzerOnly checks analyzer flags narrow the suite.
func TestSelectedAnalyzerOnly(t *testing.T) {
	bin := klebvetBinary(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

import "time"

func main() {
	_ = time.Now()
}
`)
	cmd := exec.Command(bin, "-maporder", "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("klebvet -maporder should ignore walltime findings: %v\n%s", err, out)
	}
}

// TestGoVetVettool drives klebvet through cmd/go's vet-tool protocol
// end to end on a real package.
func TestGoVetVettool(t *testing.T) {
	bin := klebvetBinary(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./internal/ktime", "./internal/telemetry")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}

// TestGoVetVettoolFindsViolations checks diagnostics surface through
// cmd/go as vet errors.
func TestGoVetVettoolFindsViolations(t *testing.T) {
	bin := klebvetBinary(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

import "math/rand"

func main() {
	_ = rand.Intn(10)
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded on a buggy module; output:\n%s", out)
	}
	if !strings.Contains(string(out), "math/rand.Intn") {
		t.Errorf("output missing seededrand finding:\n%s", out)
	}
}

func TestVersionAndFlagsProtocol(t *testing.T) {
	bin := klebvetBinary(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[0] != "klebvet" || fields[1] != "version" {
		t.Errorf("-V=full output %q does not match cmd/go's expected shape", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	for _, name := range []string{"walltime", "seededrand", "maporder", "emitguard", "lockdiscipline"} {
		if !strings.Contains(string(out), `"Name": "`+name+`"`) {
			t.Errorf("-flags output missing analyzer %q:\n%s", name, out)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
