package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"runtime"

	"kleb/internal/analysis"
	"kleb/internal/analysis/load"
)

// vetConfig mirrors the JSON unit file cmd/go hands a -vettool for each
// package (the same schema x/tools' unitchecker consumes). Fields the
// suite does not need are still declared so decoding stays strict about
// shape without DisallowUnknownFields.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	ModulePath                string
	ModuleVersion             string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package described by a cmd/go unit config.
// The vetx facts file is written unconditionally — cmd/go treats its
// absence as tool failure even though klebvet exchanges no facts.
func unitcheck(cfgFile string, enabled []*analysis.Analyzer) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "klebvet: %v\n", err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("klebvet facts v1\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "klebvet: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || skipPackage(cfg.ImportPath) || len(cfg.GoFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return typecheckFailed(cfg, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	conf := types.Config{
		Importer:  cfg.importer(fset),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailed(cfg, err)
	}

	exit := 0
	for _, a := range enabled {
		diags, err := analysis.Run(a, fset, files, tpkg, info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "klebvet: %s: %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
		for _, d := range diags {
			exit = 2
			fmt.Fprintf(os.Stderr, "%s: %s (klebvet/%s)\n", fset.Position(d.Pos), d.Message, a.Name)
		}
	}
	return exit
}

func readVetConfig(cfgFile string) (*vetConfig, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}
	return &cfg, nil
}

// typecheckFailed handles parse/typecheck errors under the protocol:
// cmd/go sets SucceedOnTypecheckFailure when `go vet` itself will
// report the compile error, so the tool must stay quiet and succeed.
func typecheckFailed(cfg *vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	fmt.Fprintf(os.Stderr, "klebvet: %s: %v\n", cfg.ImportPath, err)
	return 1
}

// importer resolves this unit's imports: source paths map through
// ImportMap to canonical paths, whose export data files are listed in
// PackageFile. Transitive imports reached while reading export data
// resolve the same way.
func (cfg *vetConfig) importer(fset *token.FileSet) types.Importer {
	return load.ExportImporter(fset, func(path string) (string, bool) {
		if actual, ok := cfg.ImportMap[path]; ok {
			path = actual
		}
		file, ok := cfg.PackageFile[path]
		return file, ok
	})
}
