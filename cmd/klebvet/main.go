// Command klebvet is the simulator's static-analysis gate: it runs the
// seven internal/analysis analyzers (walltime, seededrand, maporder,
// emitguard, lockdiscipline, droppederr, httpguard) over Go packages and
// reports determinism and telemetry invariant violations.
//
// Two modes share one binary:
//
//	klebvet [-walltime] [-maporder] ... [packages]
//
// runs standalone over the named package patterns (default ./...),
// loading dependencies from compiler export data so it works offline.
// With no analyzer flags the whole suite runs.
//
//	go vet -vettool=$(which klebvet) ./...
//
// drives the same analyzers through cmd/go's vet-tool protocol: cmd/go
// invokes the tool once per package with a JSON *.cfg file and caches
// results keyed on the tool's -V=full fingerprint.
//
// Findings go to stderr as file:line:col: message; the exit status is
// nonzero when anything is reported. Per-line suppressions use
// //klebvet:allow <analyzer> comments (see internal/analysis).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"kleb/internal/analysis"
	"kleb/internal/analysis/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go probes `tool -V=full` before anything else; answer without
	// engaging the flag package so unknown future probes stay cheap.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full") {
		return printVersion(os.Stdout)
	}

	fs := flag.NewFlagSet("klebvet", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: klebvet [analyzer flags] [package patterns | unit.cfg]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  -%s\n        %s\n", a.Name, a.Doc)
		}
	}
	selected := make(map[string]*bool)
	for _, a := range analysis.All() {
		selected[a.Name] = fs.Bool(a.Name, false, a.Doc)
	}
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go protocol)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *printFlags {
		return printFlagDefs(os.Stdout)
	}

	enabled := enabledAnalyzers(selected)
	rest := fs.Args()

	// cmd/go's unit protocol: a single argument naming a JSON config.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0], enabled)
	}
	return standalone(rest, enabled)
}

// enabledAnalyzers returns the analyzers whose flags are set, or the
// whole suite when none are.
func enabledAnalyzers(selected map[string]*bool) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *selected[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return analysis.All()
	}
	return out
}

// skipPackage reports whether an import path is exempt from the suite:
// the examples/ tree is pedagogical host-facing code, and testdata
// packages are analyzer fixtures that contain violations on purpose.
func skipPackage(importPath string) bool {
	for _, seg := range strings.Split(importPath, "/") {
		if seg == "examples" || seg == "testdata" {
			return true
		}
	}
	return false
}

// standalone loads the package patterns from source (plus export data
// for dependencies) and runs the suite, printing findings to stderr.
func standalone(patterns []string, enabled []*analysis.Analyzer) int {
	pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "klebvet: %v\n", err)
		return 1
	}
	found := false
	for _, pkg := range pkgs {
		if skipPackage(pkg.ImportPath) {
			continue
		}
		for _, a := range enabled {
			diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				fmt.Fprintf(os.Stderr, "klebvet: %s: %s: %v\n", a.Name, pkg.ImportPath, err)
				return 1
			}
			for _, d := range diags {
				found = true
				fmt.Fprintf(os.Stderr, "%s: %s (klebvet/%s)\n", pkg.Fset.Position(d.Pos), d.Message, a.Name)
			}
		}
	}
	if found {
		return 2
	}
	return 0
}

// printVersion writes the fingerprint line cmd/go hashes into its build
// cache key. The format mirrors x/tools' unitchecker so cached vet
// results are invalidated whenever the klebvet binary changes.
func printVersion(w io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "klebvet: %v\n", err)
		return 1
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "klebvet: %v\n", err)
		return 1
	}
	sum := sha256.Sum256(data)
	fmt.Fprintf(w, "klebvet version devel comments-go-here buildID=%02x\n", sum)
	return 0
}

// printFlagDefs answers cmd/go's `-flags` probe: a JSON array of the
// flags the tool accepts, so `go vet -vettool=klebvet -maporder` can be
// validated before any package is analyzed.
func printFlagDefs(w io.Writer) int {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var defs []flagDef
	for _, a := range analysis.All() {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		fmt.Fprintf(os.Stderr, "klebvet: %v\n", err)
		return 1
	}
	fmt.Fprintf(w, "%s\n", data)
	return 0
}
