// Command klebvet is the simulator's static-analysis gate: it runs the
// ten internal/analysis analyzers — seven per-package (walltime,
// seededrand, maporder, emitguard, lockdiscipline, droppederr,
// httpguard) and three whole-program (detertaint, hotalloc,
// ledgerguard) — over Go packages and reports determinism, telemetry
// and ledger invariant violations.
//
// Two modes share one binary:
//
//	klebvet [-walltime] [-maporder] ... [-json] [packages]
//
// runs standalone over the named package patterns (default ./...),
// loading dependencies from compiler export data so it works offline.
// With no analyzer flags the whole suite runs: the per-package analyzers
// over each package, then the whole-program analyzers over one Program
// built from every loaded package (dependency-ordered, shared type
// identity — see internal/analysis/program.go). With -json the findings
// are additionally written to stdout as a JSON array with stable field
// order (file, line, col, analyzer, message) for baseline/ratchet
// tooling.
//
//	go vet -vettool=$(which klebvet) ./...
//
// drives the per-package analyzers through cmd/go's vet-tool protocol:
// cmd/go invokes the tool once per package with a JSON *.cfg file and
// caches results keyed on the tool's -V=full fingerprint. The
// whole-program analyzers need every package at once, so they run only
// in standalone mode (scripts/lint.sh runs both).
//
// Findings go to stderr as file:line:col: message; the exit status is
// nonzero when anything is reported. Per-line suppressions use
// //klebvet:allow <analyzer> comments (see internal/analysis).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"kleb/internal/analysis"
	"kleb/internal/analysis/load"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go probes `tool -V=full` before anything else; answer without
	// engaging the flag package so unknown future probes stay cheap.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full") {
		return printVersion(os.Stdout)
	}

	fs := flag.NewFlagSet("klebvet", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: klebvet [analyzer flags] [package patterns | unit.cfg]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  -%s\n        %s\n", a.Name, a.Doc)
		}
	}
	selected := make(map[string]*bool)
	for _, a := range analysis.All() {
		selected[a.Name] = fs.Bool(a.Name, false, a.Doc)
	}
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go protocol)")
	jsonOut := fs.Bool("json", false, "write findings to stdout as a JSON array (standalone mode)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *printFlags {
		return printFlagDefs(os.Stdout)
	}

	enabled := enabledAnalyzers(selected)
	rest := fs.Args()

	// cmd/go's unit protocol: a single argument naming a JSON config.
	// Only the per-package analyzers fit its one-package-at-a-time shape;
	// the whole-program ones run in standalone mode.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		var unit []*analysis.Analyzer
		for _, a := range enabled {
			if a.Run != nil {
				unit = append(unit, a)
			}
		}
		return unitcheck(rest[0], unit)
	}
	return standalone(rest, enabled, *jsonOut)
}

// enabledAnalyzers returns the analyzers whose flags are set, or the
// whole suite when none are.
func enabledAnalyzers(selected map[string]*bool) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *selected[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return analysis.All()
	}
	return out
}

// skipPackage reports whether an import path is exempt from the suite:
// the examples/ tree is pedagogical host-facing code, and testdata
// packages are analyzer fixtures that contain violations on purpose.
func skipPackage(importPath string) bool {
	for _, seg := range strings.Split(importPath, "/") {
		if seg == "examples" || seg == "testdata" {
			return true
		}
	}
	return false
}

// finding is one diagnostic in the -json output. The field order is the
// stable contract baseline/ratchet tooling keys on.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// standalone loads the package patterns from source (plus export data
// for dependencies) and runs the suite: per-package analyzers over each
// package, then whole-program analyzers over one Program built from
// every non-exempt package. Findings print to stderr (and, with -json,
// to stdout as a JSON array sorted by position).
func standalone(patterns []string, enabled []*analysis.Analyzer, jsonOut bool) int {
	pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "klebvet: %v\n", err)
		return 1
	}
	findings := []finding{}
	collect := func(fset *token.FileSet, a *analysis.Analyzer, diags []analysis.Diagnostic) {
		for _, d := range diags {
			p := fset.Position(d.Pos)
			findings = append(findings, finding{
				File:     p.Filename,
				Line:     p.Line,
				Col:      p.Column,
				Analyzer: a.Name,
				Message:  d.Message,
			})
		}
	}
	var analyzed []*load.Package
	for _, pkg := range pkgs {
		if skipPackage(pkg.ImportPath) {
			continue
		}
		analyzed = append(analyzed, pkg)
		for _, a := range enabled {
			if a.Run == nil {
				continue
			}
			diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				fmt.Fprintf(os.Stderr, "klebvet: %s: %s: %v\n", a.Name, pkg.ImportPath, err)
				return 1
			}
			collect(pkg.Fset, a, diags)
		}
	}

	var whole []*analysis.Analyzer
	for _, a := range enabled {
		if a.RunProgram != nil {
			whole = append(whole, a)
		}
	}
	if len(whole) > 0 && len(analyzed) > 0 {
		fset := analyzed[0].Fset // load.Packages shares one FileSet
		var srcs []*analysis.SourcePackage
		for _, pkg := range analyzed {
			srcs = append(srcs, &analysis.SourcePackage{
				ImportPath: pkg.ImportPath,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
			})
		}
		prog, err := analysis.BuildProgram(fset, srcs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "klebvet: building program: %v\n", err)
			return 1
		}
		for _, a := range whole {
			diags, err := analysis.RunProgram(a, prog)
			if err != nil {
				fmt.Fprintf(os.Stderr, "klebvet: %s: %v\n", a.Name, err)
				return 1
			}
			collect(fset, a, diags)
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (klebvet/%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
	}
	if jsonOut {
		data, err := json.MarshalIndent(findings, "", "\t")
		if err != nil {
			fmt.Fprintf(os.Stderr, "klebvet: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stdout, "%s\n", data)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// printVersion writes the fingerprint line cmd/go hashes into its build
// cache key. The format mirrors x/tools' unitchecker so cached vet
// results are invalidated whenever the klebvet binary changes.
func printVersion(w io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "klebvet: %v\n", err)
		return 1
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "klebvet: %v\n", err)
		return 1
	}
	sum := sha256.Sum256(data)
	fmt.Fprintf(w, "klebvet version devel comments-go-here buildID=%02x\n", sum)
	return 0
}

// printFlagDefs answers cmd/go's `-flags` probe: a JSON array of the
// flags the tool accepts, so `go vet -vettool=klebvet -maporder` can be
// validated before any package is analyzed.
func printFlagDefs(w io.Writer) int {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var defs []flagDef
	for _, a := range analysis.All() {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		fmt.Fprintf(os.Stderr, "klebvet: %v\n", err)
		return 1
	}
	fmt.Fprintf(w, "%s\n", data)
	return 0
}
