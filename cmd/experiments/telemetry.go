package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"kleb"
	"kleb/internal/ktime"
	"kleb/internal/session"
	"kleb/internal/telemetry"
)

// setupBatchTelemetry installs the process-wide batch sink the -trace and
// -metrics flags ask for, aggregating every experiment's runs. The batch
// registry merges commutatively, so the exported metrics are identical at
// any -workers value; the trace additionally records one run-completion
// event per Spec in batch order. Metrics-only requests skip the event
// ring entirely. Reports whether an export is due after the run.
func setupBatchTelemetry(tracePath, metricsPath string) bool {
	switch {
	case tracePath != "":
		session.SetBatchTelemetry(telemetry.New())
	case metricsPath != "":
		session.SetBatchTelemetry(telemetry.MetricsOnly())
	default:
		return false
	}
	return true
}

// exportBatchTelemetry writes the process-wide batch sink's trace and/or
// metrics to the requested files after a run.
func exportBatchTelemetry(tracePath, metricsPath string) error {
	sink := session.BatchTelemetry()
	if sink == nil {
		return nil
	}
	write := func(path string, render func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			_ = f.Close() // the render failure is the error worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote telemetry to %s\n", path)
		return nil
	}
	if err := write(tracePath, sink.WriteChromeTrace); err != nil {
		return err
	}
	return write(metricsPath, sink.WritePrometheus)
}

// nilEmitBoundNs is the CI bound on the disabled-path emit cost: one
// branch-on-nil must stay in low single-digit nanoseconds; 25ns leaves
// generous headroom for slow shared runners while still catching an
// accidental allocation or lock on the path.
const nilEmitBoundNs = 25.0

// enabledEmitBoundNs bounds the enabled-path emit cost. klebd folds every
// node run's counters through this path (~8.5ns/op observed), so a
// regression here multiplies across the whole fleet's ingest; 50ns keeps
// slow-runner headroom while catching an accidental allocation or
// per-event lock.
const enabledEmitBoundNs = 50.0

// telemetryBench is the BENCH_telemetry.json shape.
type telemetryBench struct {
	// Per-call cost of one emit on a nil (disabled) sink and on a live one.
	NilEmitNsPerOp     float64 `json:"nil_emit_ns_per_op"`
	EnabledEmitNsPerOp float64 `json:"enabled_emit_ns_per_op"`
	// Wall time of the same Collect run with telemetry off and on.
	CollectDisabledSeconds float64 `json:"collect_disabled_seconds"`
	CollectEnabledSeconds  float64 `json:"collect_enabled_seconds"`
	CollectOverheadPct     float64 `json:"collect_overhead_pct"`
	// TraceBytes is the size of the Chrome trace the enabled run exported.
	TraceBytes          int     `json:"trace_bytes"`
	BoundNsPerOp        float64 `json:"nil_emit_bound_ns_per_op"`
	EnabledBoundNsPerOp float64 `json:"enabled_emit_bound_ns_per_op"`
}

// emitLoop drives the hottest emit call site n times against s (which may
// be nil — the disabled shape every instrumented layer compiles to).
func emitLoop(s *telemetry.Sink, n int) time.Duration {
	t0 := time.Now() //klebvet:allow walltime -- measures real emit cost on the host
	for i := 0; i < n; i++ {
		s.CtxSwitch(ktime.Time(i), 1, 2)
	}
	return time.Since(t0) //klebvet:allow walltime -- measures real emit cost on the host
}

// writeTelemetryBench measures the observability layer's cost — the
// disabled-path per-call price, the enabled per-call price, and the
// end-to-end wall-time delta of a real Collect — writes the numbers as
// JSON, and fails (non-zero exit) if the disabled path exceeds its bound.
func writeTelemetryBench(path string, seed uint64) error {
	if path == "" {
		path = "BENCH_telemetry.json"
	}
	const calls = 50_000_000
	var bench telemetryBench
	bench.BoundNsPerOp = nilEmitBoundNs
	bench.EnabledBoundNsPerOp = enabledEmitBoundNs

	// Warm up, then time the nil (disabled) path and the enabled path.
	emitLoop(nil, calls/10)
	bench.NilEmitNsPerOp = float64(emitLoop(nil, calls).Nanoseconds()) / calls
	live := telemetry.New()
	emitLoop(live, calls/10)
	bench.EnabledEmitNsPerOp = float64(emitLoop(live, calls).Nanoseconds()) / calls

	// One real monitored run, telemetry off vs. on.
	collect := func(withTelemetry bool) (float64, int, error) {
		opts := kleb.CollectOptions{
			Workload: kleb.Synthetic(200_000_000, 1<<20, 0.02),
			Events:   []kleb.Event{kleb.Instructions, kleb.LLCMisses},
			Period:   100 * kleb.Microsecond,
			Seed:     seed,
		}
		var trace, metrics discard
		if withTelemetry {
			opts.Trace = &trace
			opts.Metrics = &metrics
		}
		t0 := time.Now() //klebvet:allow walltime -- wall-clock overhead measurement is the experiment
		_, err := kleb.Collect(opts)
		return time.Since(t0).Seconds(), trace.n, err //klebvet:allow walltime -- wall-clock overhead measurement is the experiment
	}
	var err error
	if bench.CollectDisabledSeconds, _, err = collect(false); err != nil {
		return err
	}
	if bench.CollectEnabledSeconds, bench.TraceBytes, err = collect(true); err != nil {
		return err
	}
	if bench.CollectDisabledSeconds > 0 {
		bench.CollectOverheadPct = (bench.CollectEnabledSeconds - bench.CollectDisabledSeconds) /
			bench.CollectDisabledSeconds * 100
	}

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("telemetry bench: nil emit %.2f ns/op (bound %.0f), enabled emit %.2f ns/op, collect %+.1f%%\n",
		bench.NilEmitNsPerOp, nilEmitBoundNs, bench.EnabledEmitNsPerOp, bench.CollectOverheadPct)
	if bench.NilEmitNsPerOp > nilEmitBoundNs {
		return fmt.Errorf("disabled-path emit cost %.2f ns/op exceeds the %.0f ns bound",
			bench.NilEmitNsPerOp, nilEmitBoundNs)
	}
	if bench.EnabledEmitNsPerOp > enabledEmitBoundNs {
		return fmt.Errorf("enabled-path emit cost %.2f ns/op exceeds the %.0f ns bound",
			bench.EnabledEmitNsPerOp, enabledEmitBoundNs)
	}
	return nil
}

// discard counts bytes written to it.
type discard struct{ n int }

func (d *discard) Write(p []byte) (int, error) {
	d.n += len(p)
	return len(p), nil
}
