// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the index):
//
//	experiments table1   — Table I: LINPACK GFLOPS across tools
//	experiments table2   — Table II: triple-loop matmul overhead
//	experiments table3   — Table III: MKL dgemm overhead (LiMiT n/a)
//	experiments fig4     — LINPACK phase time series via K-LEB
//	experiments fig5     — Docker image MPKI on both machines
//	experiments fig6     — Meltdown vs non-Meltdown counts
//	experiments fig7     — Meltdown 100µs time series
//	experiments fig8     — normalized execution-time box plots
//	experiments fig9     — cross-tool count accuracy
//	experiments timers   — user-timer vs HRTimer granularity (§II-C/§III)
//	experiments sweep    — overhead vs sampling rate (§V/§VI)
//	experiments buffers  — ring-size ablation of the safety mechanism
//	experiments drains   — controller drain-cadence ablation
//	experiments colocate — shared-LLC co-location interference matrix
//	experiments suite    — characterization fingerprints of the synthetic suite
//	experiments placement — 4-container placement study (§IV-B's rule, measured)
//	experiments contention — online cross-core contention detection
//	experiments multiplex — perf stat scaled estimates vs exact K-LEB counts
//	                       as the event mix outgrows the counters (§II-B)
//	experiments taillat  — monitoring overhead as tail latency: the 3-tier
//	                       serve workload bare and under each tool, exact
//	                       p50/p99/p999 (exits non-zero if K-LEB's p99
//	                       effect is not strictly below perf stat's/PAPI's)
//	experiments events   — print each machine's architectural event table
//	experiments chaos    — fault-plan chaos sweep (-seeds plans; exits non-zero
//	                       if any run hangs or loses samples unaccounted)
//	experiments all      — everything above (chaos excluded: it is a CI gate,
//	                       not a paper artifact)
//
// Every experiment fans its independent simulated runs over a worker pool
// (-workers, default GOMAXPROCS); results are bit-identical for any pool
// size. With -md FILE, the paper-facing tables and figures are additionally
// rendered as a Markdown report (the regenerable EXPERIMENTS record); the
// pseudo-command "md-only" writes the report and exits. With -json FILE,
// the pseudo-command "bench" times a representative experiment set serially
// and at -workers and writes the wall times and speedups as JSON. The
// pseudo-command "kernel-bench" micro-benchmarks the scheduler's event
// queue and execute loop and writes BENCH_kernel.json; with -baseline FILE
// it additionally fails on a >25% ns/op regression (the CI gate driven by
// scripts/bench_kernel.sh). The -cpuprofile / -memprofile flags capture
// host pprof profiles of any command.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"kleb/internal/experiments"
	"kleb/internal/pmu"
	"kleb/internal/prof"
	"kleb/internal/report"
	"kleb/internal/session"
	"kleb/internal/workload"
)

// stopProfiles flushes any active -cpuprofile / -memprofile capture; fail
// calls it so profiles survive error exits too.
var stopProfiles = func() error { return nil }

// fail reports a fatal error and exits, flushing profiles first.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format, args...)
	_ = stopProfiles() // best-effort flush on the way out
	os.Exit(1)
}

func main() {
	var (
		trials   = flag.Int("trials", 0, "override trial count (0 = per-experiment default)")
		rounds   = flag.Int("rounds", 25, "meltdown averaging rounds")
		seed     = flag.Uint64("seed", 1, "base simulation seed")
		workers  = flag.Int("workers", 0, "scheduler pool size for each experiment's runs (0 = GOMAXPROCS)")
		seeds    = flag.Int("seeds", 32, "with the chaos command: how many fault plans to sweep")
		mdPath   = flag.String("md", "", "also write a Markdown report of the paper-facing results to this file")
		jsPath   = flag.String("json", "", "with the bench/telemetry-bench commands: write the JSON here")
		trPath   = flag.String("trace", "", "write batch-level telemetry as Chrome trace-event JSON to this file")
		mtPath   = flag.String("metrics", "", "write batch-level telemetry as Prometheus text to this file")
		basePath = flag.String("baseline", "", "with kernel-bench: compare against this BENCH_kernel.json and fail on regression")
		cpuProf  = flag.String("cpuprofile", "", "write a host CPU profile (pprof) to this file")
		memProf  = flag.String("memprofile", "", "write a host heap profile (pprof) to this file on exit")
		legacy   = flag.Bool("legacy-exec", false, "run workloads through the per-step legacy interpreter instead of compiled block streams (differential testing; artifacts are byte-identical)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [flags] <table1|table2|table3|fig4|fig5|fig6|fig7|fig8|fig9|timers|sweep|buffers|drains|colocate|suite|placement|contention|multiplex|taillat|events|chaos|all|md-only|bench|telemetry-bench|kernel-bench>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	workload.SetLegacyExec(*legacy)
	stop, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fail("experiments: %v\n", err)
	}
	stopProfiles = stop
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: profile: %v\n", err)
		}
	}()
	cmd := flag.Arg(0)
	if cmd == "bench" {
		if err := writeBench(*jsPath, *trials, *rounds, *seed, *workers); err != nil {
			fail("experiments bench: %v\n", err)
		}
		return
	}
	if cmd == "telemetry-bench" {
		if err := writeTelemetryBench(*jsPath, *seed); err != nil {
			fail("experiments telemetry-bench: %v\n", err)
		}
		return
	}
	if cmd == "kernel-bench" {
		if err := writeKernelBench(*jsPath, *basePath, *seed); err != nil {
			fail("experiments kernel-bench: %v\n", err)
		}
		return
	}
	if setupBatchTelemetry(*trPath, *mtPath) {
		defer func() {
			if err := exportBatchTelemetry(*trPath, *mtPath); err != nil {
				fail("experiments: telemetry export: %v\n", err)
			}
		}()
	}
	if *mdPath != "" {
		if err := writeMarkdownReport(*mdPath, *trials, *rounds, *seed, *workers); err != nil {
			fail("experiments: markdown report: %v\n", err)
		}
		fmt.Printf("wrote Markdown report to %s\n", *mdPath)
		if cmd == "md-only" {
			return
		}
	}
	run := func(name string) {
		if err := dispatch(name, *trials, *rounds, *seed, *workers, *seeds); err != nil {
			fail("experiments %s: %v\n", name, err)
		}
	}
	if cmd == "all" {
		for _, name := range []string{"table1", "table2", "table3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "timers", "sweep", "buffers", "drains", "colocate", "suite", "placement", "contention", "multiplex", "taillat"} {
			run(name)
			fmt.Println()
		}
		return
	}
	run(cmd)
}

func dispatch(name string, trials, rounds int, seed uint64, workers, seeds int) error {
	w := os.Stdout
	switch name {
	case "table1", "fig4":
		res, err := experiments.RunLinpack(experiments.LinpackConfig{Trials: trials, Seed: seed, Workers: workers})
		if err != nil {
			return err
		}
		res.Render(w)
	case "table2":
		res, err := experiments.RunOverhead(experiments.OverheadConfig{
			Workload: experiments.WorkloadTriple, Trials: trials, Seed: seed, Workers: workers,
		})
		if err != nil {
			return err
		}
		res.Render(w)
	case "table3":
		res, err := experiments.RunOverhead(experiments.OverheadConfig{
			Workload: experiments.WorkloadDgemm, Trials: trials, Seed: seed,
			StockKernelOnly: true, Workers: workers,
		})
		if err != nil {
			return err
		}
		res.Render(w)
	case "fig5":
		res, err := experiments.RunDocker(experiments.DockerConfig{Seed: seed, BothMachines: true, Workers: workers})
		if err != nil {
			return err
		}
		res.Render(w)
	case "fig6", "fig7":
		res, err := experiments.RunMeltdown(experiments.MeltdownConfig{Rounds: rounds, Seed: seed, Workers: workers})
		if err != nil {
			return err
		}
		res.Render(w)
	case "fig8":
		res, err := experiments.RunOverhead(experiments.OverheadConfig{
			Workload: experiments.WorkloadTriple, Trials: trials, Seed: seed, Workers: workers,
		})
		if err != nil {
			return err
		}
		res.RenderBoxes(w)
	case "fig9":
		res, err := experiments.RunAccuracy(experiments.AccuracyConfig{Seed: seed, Workers: workers})
		if err != nil {
			return err
		}
		res.Render(w)
	case "timers":
		res, err := experiments.RunTimers(seed, workers)
		if err != nil {
			return err
		}
		res.Render(w)
	case "sweep":
		res, err := experiments.RunSweep(experiments.SweepConfig{Seed: seed, Workers: workers})
		if err != nil {
			return err
		}
		res.Render(w)
	case "buffers":
		res, err := experiments.RunBufferAblation(experiments.BufferAblationConfig{Seed: seed, Workers: workers})
		if err != nil {
			return err
		}
		res.Render(w)
	case "drains":
		res, err := experiments.RunDrainAblation(experiments.DrainAblationConfig{Seed: seed, Workers: workers})
		if err != nil {
			return err
		}
		res.Render(w)
	case "colocate":
		res, err := experiments.RunColocate(experiments.ColocateConfig{Seed: seed, Workers: workers})
		if err != nil {
			return err
		}
		res.Render(w)
	case "suite":
		res, err := experiments.RunCharacterize(experiments.CharacterizeConfig{Seed: seed, Workers: workers})
		if err != nil {
			return err
		}
		res.Render(w)
	case "placement":
		res, err := experiments.RunPlacement(seed, workers)
		if err != nil {
			return err
		}
		res.Render(w)
	case "contention":
		res, err := experiments.RunContention(seed)
		if err != nil {
			return err
		}
		res.Render(w)
	case "multiplex":
		res, err := experiments.RunMultiplex(experiments.MultiplexConfig{Seed: seed, Workers: workers})
		if err != nil {
			return err
		}
		res.Render(w)
		// Like chaos, the sweep doubles as a gate on the multiplexing model.
		return res.Check()
	case "taillat":
		res, err := experiments.RunTailLat(experiments.TailLatConfig{Trials: trials, Seed: seed, Workers: workers})
		if err != nil {
			return err
		}
		res.Render(w)
		// The study gates the overhead ordering: K-LEB's p99 inflation must
		// stay strictly below perf stat's and PAPI's.
		return res.Check()
	case "events":
		for i, arch := range pmu.Arches() {
			if i > 0 {
				fmt.Fprintln(w)
			}
			pmu.MustTable(arch).Render(w)
		}
	case "chaos":
		res, err := experiments.RunChaos(experiments.ChaosConfig{
			Seeds: seeds, BaseSeed: seed, Workers: workers,
		})
		if err != nil {
			return err
		}
		res.Render(w)
		// The sweep is a gate: a violated invariant fails the command.
		return res.Check()
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// benchRow is one experiment's serial-vs-parallel timing.
type benchRow struct {
	Name            string  `json:"name"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
}

// writeBench times a representative experiment set with a one-worker pool
// and again at the requested pool size, then writes the comparison as JSON
// (speedup scales with real cores; results are identical either way).
func writeBench(path string, trials, rounds int, seed uint64, workers int) error {
	if path == "" {
		path = "BENCH_experiments.json"
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cases := []string{"table2", "fig6", "sweep", "suite"}
	// Speedup tracks real cores: on a single-CPU host the pool can only
	// interleave, so the ratio hovers around 1× regardless of -workers.
	out := struct {
		Workers int        `json:"workers"`
		CPUs    int        `json:"cpus"`
		Rows    []benchRow `json:"experiments"`
	}{Workers: workers, CPUs: runtime.NumCPU()}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer devnull.Close()
	stdout := os.Stdout
	os.Stdout = devnull
	defer func() { os.Stdout = stdout }()
	for _, name := range cases {
		t0 := time.Now() //klebvet:allow walltime -- host-side benchmark harness timing
		if err := dispatch(name, trials, rounds, seed, 1, 0); err != nil {
			return err
		}
		serial := time.Since(t0).Seconds() //klebvet:allow walltime -- host-side benchmark harness timing
		t0 = time.Now()                    //klebvet:allow walltime -- host-side benchmark harness timing
		if err := dispatch(name, trials, rounds, seed, workers, 0); err != nil {
			return err
		}
		parallel := time.Since(t0).Seconds() //klebvet:allow walltime -- host-side benchmark harness timing
		row := benchRow{Name: name, SerialSeconds: serial, ParallelSeconds: parallel}
		if parallel > 0 {
			row.Speedup = serial / parallel
		}
		out.Rows = append(out.Rows, row)
		fmt.Fprintf(os.Stderr, "bench %-8s serial %6.2fs  %d-worker %6.2fs  speedup %.2fx\n",
			name, serial, workers, parallel, row.Speedup)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeMarkdownReport runs the paper-facing experiments and renders them as
// one Markdown document.
func writeMarkdownReport(path string, trials, rounds int, seed uint64, workers int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := report.New(f)

	lp, err := experiments.RunLinpack(experiments.LinpackConfig{Trials: trials, Seed: seed, Workers: workers})
	if err != nil {
		return err
	}
	r.TableI(lp)
	r.Fig4(lp)

	t2, err := experiments.RunOverhead(experiments.OverheadConfig{
		Workload: experiments.WorkloadTriple, Trials: trials, Seed: seed, Workers: workers,
	})
	if err != nil {
		return err
	}
	r.TableII(t2)
	r.Fig8(t2)

	t3, err := experiments.RunOverhead(experiments.OverheadConfig{
		Workload: experiments.WorkloadDgemm, Trials: trials, Seed: seed, StockKernelOnly: true, Workers: workers,
	})
	if err != nil {
		return err
	}
	r.TableIII(t3)

	dk, err := experiments.RunDocker(experiments.DockerConfig{Seed: seed, BothMachines: true, Workers: workers})
	if err != nil {
		return err
	}
	r.Fig5(dk)

	md, err := experiments.RunMeltdown(experiments.MeltdownConfig{Rounds: rounds, Seed: seed, Workers: workers})
	if err != nil {
		return err
	}
	r.Fig6and7(md)

	ac, err := experiments.RunAccuracy(experiments.AccuracyConfig{Seed: seed, Workers: workers})
	if err != nil {
		return err
	}
	r.Fig9(ac)

	tm, err := experiments.RunTimers(seed, workers)
	if err != nil {
		return err
	}
	r.Timers(tm)

	sw, err := experiments.RunSweep(experiments.SweepConfig{Seed: seed, Workers: workers})
	if err != nil {
		return err
	}
	r.Sweep(sw)

	mx, err := experiments.RunMultiplex(experiments.MultiplexConfig{Seed: seed, Workers: workers})
	if err != nil {
		return err
	}
	r.Multiplex(mx)

	tl, err := experiments.RunTailLat(experiments.TailLatConfig{Trials: trials, Seed: seed, Workers: workers})
	if err != nil {
		return err
	}
	r.TailLatency(tl)
	// Batch telemetry summary (present only when -trace/-metrics installed a
	// process-wide sink before this report ran).
	r.Telemetry(session.BatchTelemetry())
	return r.Err()
}
