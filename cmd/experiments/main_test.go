package main

import (
	"strings"
	"testing"
)

func TestDispatchRejectsUnknownExperiment(t *testing.T) {
	err := dispatch("fig99", 0, 0, 1, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("got %v", err)
	}
}
