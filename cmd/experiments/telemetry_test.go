package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kleb/internal/ktime"
	"kleb/internal/session"
)

// resetBatchTelemetry uninstalls the process-wide sink after a test so
// the flag-plumbing tests cannot leak state into each other.
func resetBatchTelemetry(t *testing.T) {
	t.Helper()
	t.Cleanup(func() { session.SetBatchTelemetry(nil) })
}

func TestSetupBatchTelemetryFlagPlumbing(t *testing.T) {
	resetBatchTelemetry(t)

	if setupBatchTelemetry("", "") {
		t.Error("no flags should install no sink")
	}
	if s := session.BatchTelemetry(); s != nil {
		t.Errorf("sink installed without flags: %v", s)
	}

	// -metrics alone: a metrics-only sink (no event ring to pay for).
	if !setupBatchTelemetry("", "m.txt") {
		t.Fatal("-metrics should install a sink")
	}
	s := session.BatchTelemetry()
	if s == nil {
		t.Fatal("-metrics installed no sink")
	}
	s.CtxSwitch(ktime.Time(1), 0, 1)
	if got := len(s.Events()); got != 0 {
		t.Errorf("-metrics sink recorded %d trace events, want 0 (metrics-only)", got)
	}

	// -trace (with or without -metrics): a recording sink.
	if !setupBatchTelemetry("t.json", "m.txt") {
		t.Fatal("-trace should install a sink")
	}
	s = session.BatchTelemetry()
	s.CtxSwitch(ktime.Time(1), 0, 1)
	if got := len(s.Events()); got != 1 {
		t.Errorf("-trace sink recorded %d trace events, want 1", got)
	}
}

// TestExportBatchTelemetryWritesArtifacts drives the export path end to
// end: install the sink the flags imply, feed it through the batch
// scheduler, and check both artifact files are written and well-formed.
func TestExportBatchTelemetryWritesArtifacts(t *testing.T) {
	resetBatchTelemetry(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.txt")

	if !setupBatchTelemetry(tracePath, metricsPath) {
		t.Fatal("setupBatchTelemetry installed no sink")
	}
	sink := session.BatchTelemetry()
	sink.CtxSwitch(ktime.Time(10), 0, 1)
	sink.Kprobe(ktime.Time(20), "switch", 1)
	sink.Stage(ktime.Time(30), "boot", ktime.Duration(30))
	sink.RunDone(0, 0, false)

	if err := exportBatchTelemetry(tracePath, metricsPath); err != nil {
		t.Fatalf("exportBatchTelemetry: %v", err)
	}

	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace artifact: %v", err)
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace artifact is not valid trace-event JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("trace artifact has no events")
	}

	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics artifact: %v", err)
	}
	for _, want := range []string{
		"# TYPE kleb_ctx_switches_total counter",
		"kleb_ctx_switches_total 1",
		`kleb_kprobe_hits_total{point="switch"} 1`,
		`kleb_stage_ns_total{stage="boot"} 30`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics artifact missing %q:\n%s", want, metrics)
		}
	}
}

// TestExportBatchTelemetryMetricsOnly checks the -metrics-only shape
// writes no trace file and a valid exposition.
func TestExportBatchTelemetryMetricsOnly(t *testing.T) {
	resetBatchTelemetry(t)
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.txt")

	if !setupBatchTelemetry("", metricsPath) {
		t.Fatal("setupBatchTelemetry installed no sink")
	}
	session.BatchTelemetry().SyscallEnter(ktime.Time(5), "write", 1)
	if err := exportBatchTelemetry("", metricsPath); err != nil {
		t.Fatalf("exportBatchTelemetry: %v", err)
	}
	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics artifact: %v", err)
	}
	if !strings.Contains(string(metrics), `kleb_syscalls_total{name="write"} 1`) {
		t.Errorf("metrics artifact missing syscall count:\n%s", metrics)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 1 {
		t.Errorf("expected only the metrics artifact in %s, found %d files", dir, len(entries))
	}
}

// TestExportBatchTelemetryNoSink checks the export is a no-op when no
// batch sink was installed (no -trace/-metrics flags).
func TestExportBatchTelemetryNoSink(t *testing.T) {
	resetBatchTelemetry(t)
	session.SetBatchTelemetry(nil)
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	if err := exportBatchTelemetry(path, ""); err != nil {
		t.Fatalf("exportBatchTelemetry without a sink: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("export without a sink created %s", path)
	}
}
