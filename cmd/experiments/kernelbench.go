package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"kleb/internal/cache"
	"kleb/internal/cpu"
	"kleb/internal/experiments"
	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/pmu"
)

// This file implements the kernel-bench pseudo-command: the regression
// gate on the scheduler's event-driven fast path. It re-measures the same
// shapes as the internal/kernel micro-benchmarks (sleeper storm, steady
// execute loop, timer churn) through the public kernel API, adds the PMU
// counter feed and the process-table walk, and times a scaled-down
// table2 end to end. scripts/bench_kernel.sh drives it in CI against the
// committed BENCH_kernel.json the same way the telemetry-bench 25 ns/op
// bound is enforced.

// kernelRegressionBoundPct is how much any ns/op figure may exceed its
// committed baseline before the gate fails. 25% absorbs shared-runner
// noise on sub-microsecond benchmarks while still catching a reintroduced
// O(P) scan or per-event allocation, which cost integer multiples.
const kernelRegressionBoundPct = 25.0

// kernelBench is the BENCH_kernel.json shape. The ns/op fields are gated
// against the committed baseline; the wall-clock field is informational
// (host-dependent) and the allocs fields are hard zero gates.
type kernelBench struct {
	// One sleep→wake cycle across 64 sleeping processes: the unified
	// event queue's headline number (O(P) scans made this the table2
	// bottleneck before the event heap).
	SleeperStormNsPerOp     float64 `json:"sleeper_storm_ns_per_op"`
	SleeperStormAllocsPerOp float64 `json:"sleeper_storm_allocs_per_op"`
	// One instruction block through the steady-state execute loop; must
	// not allocate at all.
	SteadyNsPerOp     float64 `json:"steady_ns_per_op"`
	SteadyAllocsPerOp float64 `json:"steady_allocs_per_op"`
	// One HR timer arm→fire→re-arm cycle with eight periodic timers live.
	TimerChurnNsPerOp float64 `json:"timer_churn_ns_per_op"`
	// One AddCounts call with two programmable plus one fixed counter
	// active (the K-LEB monitoring shape) through the active-mask cache.
	CounterFeedNsPerOp float64 `json:"counter_feed_ns_per_op"`
	// One pid-ordered walk of a 384-entry process table (the doExit
	// waiter scan and the Processes snapshot both take this shape).
	ProcTableNsPerOp float64 `json:"proc_table_ns_per_op"`
	// One block through the batched compiled-stream path (a BlockStream
	// whose stable memo replays collapse into run-length priced units) —
	// the amortized per-block cost the table2 win rests on. Must not
	// allocate.
	BlockExecuteNsPerOp     float64 `json:"block_execute_ns_per_op"`
	BlockExecuteAllocsPerOp float64 `json:"block_execute_allocs_per_op"`
	// One block of a steady phase mixing compute, memory and branchy
	// blocks in runs of 64: blends stable replays with the run-boundary
	// Next calls and memo re-probes a real compiled phase incurs.
	SteadyPhaseNsPerOp float64 `json:"steady_phase_ns_per_op"`
	// Wall time of table2 scaled to 3 trials, serial. Gated at twice the
	// ns/op bound (wall clock on shared runners is noisier than
	// nanobenchmarks) so the batched-execution win stays locked in.
	Table2ScaledSeconds float64 `json:"table2_scaled_seconds"`
	RegressionBoundPct  float64 `json:"regression_bound_pct"`
}

// benchEventTable mirrors the kernel test rig's PMU event table.
func benchEventTable() *pmu.EventTable {
	return pmu.TableFromClasses("bench", map[pmu.Encoding]isa.Event{
		{EventSel: 0x2E, Umask: 0x41}: isa.EvLLCMisses,
		{EventSel: 0x2E, Umask: 0x4F}: isa.EvLLCRefs,
		{EventSel: 0x0B, Umask: 0x01}: isa.EvLoads,
		{EventSel: 0x0B, Umask: 0x02}: isa.EvStores,
	})
}

// benchKernel builds the same machine the internal/kernel benchmarks use:
// a 2 GHz core with a three-level hierarchy and a noise-free cost model,
// so ns/op figures are comparable between `go test -bench` and this gate.
func benchKernel(seed uint64) *kernel.Kernel {
	cfg := cpu.Config{
		Freq:              ktime.MHz(2000),
		BaseCPI:           0.5,
		BranchMissPenalty: 15,
		FlushCycles:       50,
		Hierarchy: cache.HierarchyConfig{
			L1D:              cache.Config{Name: "L1D", Size: 32 << 10, LineSize: 64, Ways: 8, LatencyCycles: 4},
			L2:               cache.Config{Name: "L2", Size: 256 << 10, LineSize: 64, Ways: 8, LatencyCycles: 10},
			LLC:              cache.Config{Name: "LLC", Size: 4 << 20, LineSize: 64, Ways: 16, LatencyCycles: 38},
			MemLatencyCycles: 200,
		},
		MaxSimAccesses: 256,
	}
	core := cpu.New(cfg, pmu.New(benchEventTable()), ktime.NewRand(seed))
	costs := kernel.DefaultCosts()
	costs.NoiseRel = 0
	costs.TimerJitterRel = 0
	costs.RunNoiseRel = 0
	return kernel.New(core, costs, ktime.NewRand(seed), kernel.Options{})
}

// benchBlock is the benchmarks' standard user instruction block.
func benchBlock(instr uint64) isa.Block {
	return isa.Block{
		Instr: instr, Loads: instr / 4, Stores: instr / 10, Branches: instr / 10,
		Mem:  isa.MemPattern{Base: 0xA000_0000, Footprint: 32 << 10, Stride: 8},
		Priv: isa.User,
	}
}

// benchSleeperStorm drives 64 processes through repeated 100µs HR sleeps;
// one op is one sleep→wake cycle.
func benchSleeperStorm(b *testing.B) {
	const sleepers = 64
	k := benchKernel(1)
	iters := b.N/sleepers + 1
	var sleep kernel.Op = kernel.OpSleep{D: 100 * ktime.Microsecond, HR: true}
	for i := 0; i < sleepers; i++ {
		count := 0
		k.Spawn(fmt.Sprintf("sleeper%02d", i), kernel.ProgramFunc(func(k *kernel.Kernel, p *kernel.Process) kernel.Op {
			count++
			if count > iters {
				return kernel.OpExit{}
			}
			return sleep
		}))
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
}

// benchSteady measures the pure execute loop: one compute-bound process,
// no timers, no sleepers.
func benchSteady(b *testing.B) {
	k := benchKernel(3)
	n := 0
	var op kernel.Op = kernel.OpExec{Block: benchBlock(10_000)}
	k.Spawn("spin", kernel.ProgramFunc(func(k *kernel.Kernel, p *kernel.Process) kernel.Op {
		n++
		if n > b.N {
			return kernel.OpExit{}
		}
		return op
	}))
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
}

// benchTimerChurn prices the HR timer arm→fire→re-arm cycle with eight
// periodic timers live; one op is one firing.
func benchTimerChurn(b *testing.B) {
	k := benchKernel(2)
	fired := 0
	for i := 0; i < 8; i++ {
		k.StartHRTimer(10*ktime.Microsecond, 100*ktime.Microsecond, func(k *kernel.Kernel, t *kernel.HRTimer) bool {
			fired++
			return fired < b.N
		})
	}
	k.Spawn("spin", kernel.ProgramFunc(func(k *kernel.Kernel, p *kernel.Process) kernel.Op {
		if fired >= b.N {
			return kernel.OpExit{}
		}
		return kernel.OpExec{Block: benchBlock(50_000)}
	}))
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
}

// benchStream is the smallest BlockStream program: it emits left copies of
// one block, announcing the remaining run length so the kernel's executeRun
// can batch stable memo replays (mirrors the internal/kernel bench rig).
type benchStream struct {
	block isa.Block
	left  uint64
}

func (s *benchStream) Next(k *kernel.Kernel, p *kernel.Process) kernel.Op {
	if s.left == 0 {
		return kernel.OpExit{}
	}
	s.left--
	return kernel.OpExec{Block: s.block}
}

func (s *benchStream) PeekRun() (isa.Block, uint64) { return s.block, s.left }
func (s *benchStream) ConsumeRun(n uint64)          { s.left -= n }

// benchBlockExecute prices one block through the batched compiled-stream
// path; one op is one block, amortized over run-length batches.
func benchBlockExecute(b *testing.B) {
	k := benchKernel(6)
	k.Spawn("stream", &benchStream{block: benchBlock(10_000), left: uint64(b.N)})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
}

// phaseStream cycles a block mix in runs of runLen — the shape of a
// compiled multi-phase workload.
type phaseStream struct {
	blocks []isa.Block
	runLen uint64
	total  uint64
	left   uint64
	bi     int
}

func (s *phaseStream) Next(k *kernel.Kernel, p *kernel.Process) kernel.Op {
	if s.total == 0 {
		return kernel.OpExit{}
	}
	if s.left == 0 {
		s.bi = (s.bi + 1) % len(s.blocks)
		s.left = s.runLen
	}
	s.left--
	s.total--
	return kernel.OpExec{Block: s.blocks[s.bi]}
}

func (s *phaseStream) PeekRun() (isa.Block, uint64) {
	n := s.left
	if n > s.total {
		n = s.total
	}
	return s.blocks[s.bi], n
}

func (s *phaseStream) ConsumeRun(n uint64) {
	s.left -= n
	s.total -= n
}

// benchSteadyPhase prices one block of a steady phase with a realistic mix:
// compute-bound, memory-bound and branchy blocks alternating in runs of 64.
func benchSteadyPhase(b *testing.B) {
	compute := benchBlock(10_000)
	memory := benchBlock(10_000)
	memory.Loads = 5_000
	memory.Mem = isa.MemPattern{Base: 0xB000_0000, Footprint: 8 << 20, Stride: 64, RandomFrac: 1}
	branchy := benchBlock(10_000)
	branchy.Branches = 2_000
	k := benchKernel(7)
	k.Spawn("phase", &phaseStream{
		blocks: []isa.Block{compute, memory, branchy},
		runLen: 64,
		total:  uint64(b.N),
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
}

// benchCounterFeed prices one AddCounts with the K-LEB monitoring shape
// active: two programmable counters plus one fixed counter.
func benchCounterFeed(b *testing.B) {
	p := pmu.New(benchEventTable())
	for _, w := range []struct {
		msr uint32
		val uint64
	}{
		{pmu.MSRPerfEvtSel0, pmu.Encoding{EventSel: 0x2E, Umask: 0x41}.Sel(pmu.SelUsr | pmu.SelEn)},
		{pmu.MSRPerfEvtSel0 + 1, pmu.Encoding{EventSel: 0x0B, Umask: 0x01}.Sel(pmu.SelUsr | pmu.SelEn)},
		{pmu.MSRFixedCtrCtrl, pmu.FixedUsr},
		{pmu.MSRGlobalCtrl, 1 | 1<<1 | 1<<32},
	} {
		if err := p.WriteMSR(w.msr, w.val); err != nil {
			b.Fatal(err)
		}
	}
	var c isa.Counts
	c[isa.EvLLCMisses] = 17
	c[isa.EvLoads] = 250
	c[isa.EvInstructions] = 1000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddCounts(c, isa.User)
	}
}

// benchProcTable prices one pid-ordered walk of a 384-entry process table,
// 256 exited and 128 live — the shape doExit's waiter scan and the
// Processes snapshot share.
func benchProcTable(b *testing.B) {
	k := benchKernel(4)
	for i := 0; i < 256; i++ {
		k.Spawn(fmt.Sprintf("done%03d", i), kernel.ProgramFunc(func(k *kernel.Kernel, p *kernel.Process) kernel.Op {
			return kernel.OpExit{}
		}))
	}
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		k.Spawn(fmt.Sprintf("live%03d", i), kernel.ProgramFunc(func(k *kernel.Kernel, p *kernel.Process) kernel.Op {
			return kernel.OpExit{}
		}))
	}
	exited := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exited = 0
		for _, p := range k.Processes() {
			if p.Exited() {
				exited++
			}
		}
	}
	if exited != 256 {
		b.Fatalf("exited = %d, want 256", exited)
	}
}

// runBench runs fn under the testing harness and returns its result, or an
// error if the benchmark body failed. It keeps the fastest of three runs:
// the batched fast path prices in hundreds of nanoseconds or less, where a
// single descheduling on a shared runner shows up as a double-digit
// percentage — the minimum is the stable estimate of the code's true cost.
func runBench(name string, fn func(b *testing.B)) (testing.BenchmarkResult, error) {
	var res testing.BenchmarkResult
	for try := 0; try < 3; try++ {
		r := testing.Benchmark(fn)
		if try == 0 || (r.N > 0 && r.NsPerOp() < res.NsPerOp()) {
			res = r
		}
	}
	if res.N == 0 {
		return res, fmt.Errorf("benchmark %s failed", name)
	}
	fmt.Fprintf(os.Stderr, "kernel-bench %-14s %10.1f ns/op  %d allocs/op\n",
		name, float64(res.NsPerOp()), res.AllocsPerOp())
	return res, nil
}

// writeKernelBench measures the scheduler fast path, writes the numbers to
// path as JSON, and fails on any steady-state allocation or — when
// basePath names a committed baseline — on a >25% ns/op regression.
func writeKernelBench(path, basePath string, seed uint64) error {
	if path == "" {
		path = "BENCH_kernel.json"
	}
	var bench kernelBench
	bench.RegressionBoundPct = kernelRegressionBoundPct

	storm, err := runBench("sleeper-storm", benchSleeperStorm)
	if err != nil {
		return err
	}
	bench.SleeperStormNsPerOp = float64(storm.NsPerOp())
	bench.SleeperStormAllocsPerOp = float64(storm.AllocsPerOp())
	steady, err := runBench("steady", benchSteady)
	if err != nil {
		return err
	}
	bench.SteadyNsPerOp = float64(steady.NsPerOp())
	bench.SteadyAllocsPerOp = float64(steady.AllocsPerOp())
	churn, err := runBench("timer-churn", benchTimerChurn)
	if err != nil {
		return err
	}
	bench.TimerChurnNsPerOp = float64(churn.NsPerOp())
	feed, err := runBench("counter-feed", benchCounterFeed)
	if err != nil {
		return err
	}
	bench.CounterFeedNsPerOp = float64(feed.NsPerOp())
	table, err := runBench("proc-table", benchProcTable)
	if err != nil {
		return err
	}
	bench.ProcTableNsPerOp = float64(table.NsPerOp())
	blockExec, err := runBench("block-execute", benchBlockExecute)
	if err != nil {
		return err
	}
	// Batched replays amortize to under a nanosecond per block; keep the
	// fractional part or the figure would round to 0 and escape the gate.
	bench.BlockExecuteNsPerOp = float64(blockExec.T.Nanoseconds()) / float64(blockExec.N)
	bench.BlockExecuteAllocsPerOp = float64(blockExec.AllocsPerOp())
	phase, err := runBench("steady-phase", benchSteadyPhase)
	if err != nil {
		return err
	}
	bench.SteadyPhaseNsPerOp = float64(phase.NsPerOp())

	t0 := time.Now() //klebvet:allow walltime -- host-side benchmark harness timing
	if _, err := experiments.RunOverhead(experiments.OverheadConfig{
		Workload: experiments.WorkloadTriple, Trials: 3, Seed: seed, Workers: 1,
	}); err != nil {
		return err
	}
	bench.Table2ScaledSeconds = time.Since(t0).Seconds() //klebvet:allow walltime -- host-side benchmark harness timing
	fmt.Fprintf(os.Stderr, "kernel-bench table2(3 trials) %.2fs serial\n", bench.Table2ScaledSeconds)

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("kernel bench: sleeper storm %.1f ns/op (%.0f allocs), steady %.1f ns/op (%.0f allocs), wrote %s\n",
		bench.SleeperStormNsPerOp, bench.SleeperStormAllocsPerOp,
		bench.SteadyNsPerOp, bench.SteadyAllocsPerOp, path)

	// Hard gates, baseline or not: the fast path must not allocate.
	if bench.SleeperStormAllocsPerOp != 0 || bench.SteadyAllocsPerOp != 0 || bench.BlockExecuteAllocsPerOp != 0 {
		return fmt.Errorf("scheduler fast path allocates (sleeper storm %.0f, steady %.0f, block execute %.0f allocs/op), want 0",
			bench.SleeperStormAllocsPerOp, bench.SteadyAllocsPerOp, bench.BlockExecuteAllocsPerOp)
	}
	if basePath == "" {
		return nil
	}
	return compareKernelBench(bench, basePath)
}

// compareKernelBench fails if any gated ns/op figure exceeds the committed
// baseline by more than the baseline's regression bound.
func compareKernelBench(bench kernelBench, basePath string) error {
	data, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	var base kernelBench
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %v", basePath, err)
	}
	bound := base.RegressionBoundPct
	if bound <= 0 {
		bound = kernelRegressionBoundPct
	}
	gated := []struct {
		name      string
		got, base float64
		bound     float64
	}{
		{"sleeper_storm_ns_per_op", bench.SleeperStormNsPerOp, base.SleeperStormNsPerOp, bound},
		{"steady_ns_per_op", bench.SteadyNsPerOp, base.SteadyNsPerOp, bound},
		{"timer_churn_ns_per_op", bench.TimerChurnNsPerOp, base.TimerChurnNsPerOp, bound},
		{"counter_feed_ns_per_op", bench.CounterFeedNsPerOp, base.CounterFeedNsPerOp, bound},
		{"proc_table_ns_per_op", bench.ProcTableNsPerOp, base.ProcTableNsPerOp, bound},
		{"block_execute_ns_per_op", bench.BlockExecuteNsPerOp, base.BlockExecuteNsPerOp, bound},
		{"steady_phase_ns_per_op", bench.SteadyPhaseNsPerOp, base.SteadyPhaseNsPerOp, bound},
		// The table2 ratchet: end-to-end wall clock is noisier than a
		// nanobenchmark, so it gets twice the bound — still tight enough
		// that losing the batched-execution win (a >4× slowdown) fails.
		{"table2_scaled_seconds", bench.Table2ScaledSeconds, base.Table2ScaledSeconds, 2 * bound},
	}
	var failed []string
	for _, g := range gated {
		if g.base <= 0 {
			continue // baseline predates this metric
		}
		limit := g.base * (1 + g.bound/100)
		pct := (g.got - g.base) / g.base * 100
		fmt.Fprintf(os.Stderr, "kernel-bench gate %-26s %10.1f vs baseline %10.1f (%+.1f%%, bound +%.0f%%)\n",
			g.name, g.got, g.base, pct, g.bound)
		if g.got > limit {
			failed = append(failed, fmt.Sprintf("%s regressed %.1f%% (%.1f -> %.1f)",
				g.name, pct, g.base, g.got))
		}
	}
	if len(failed) > 0 {
		for _, f := range failed {
			fmt.Fprintln(os.Stderr, "kernel-bench FAIL:", f)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond the %.0f%% bound vs %s", len(failed), bound, basePath)
	}
	return nil
}
