// Command kleb is the user-facing controller CLI: run a workload on a
// simulated machine under a monitoring tool and write the collected
// hardware event time series as CSV.
//
// Examples:
//
//	kleb -workload linpack -events ARITH.MUL,MEM_INST_RETIRED.LOADS,MEM_INST_RETIRED.STORES -period 10ms
//	kleb -workload meltdown-attack -period 100us -events LLC_REFERENCES,LLC_MISSES,INST_RETIRED
//	kleb -workload docker:nginx -events LLC_MISSES,INST_RETIRED -baseline
//	kleb -events INST_RETIRED,r412e,UNC_M_CAS_COUNT.RD   # raw perf-style encodings mix in
//	kleb -machine cascadelake events                     # print the machine's event table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kleb"
	"kleb/internal/prof"
)

// stopProfiles flushes any active -cpuprofile / -memprofile capture; fatal
// exits call it so profiles survive error paths too.
var stopProfiles = func() error { return nil }

func main() {
	var (
		workloadName = flag.String("workload", "quickstart", "workload: linpack[:N] | matmul | dgemm | docker:IMAGE | meltdown-victim | meltdown-attack | serve | quickstart")
		eventsFlag   = flag.String("events", "INST_RETIRED,LLC_MISSES,MEM_INST_RETIRED.LOADS,MEM_INST_RETIRED.STORES", "comma-separated event list (names or raw rUUEE encodings)")
		periodFlag   = flag.Duration("period", 10*time.Millisecond, "sampling period (K-LEB sustains 100µs)")
		toolFlag     = flag.String("tool", "kleb", "tool: kleb | perf-stat | perf-record | papi | limit")
		machineFlag  = flag.String("machine", "nehalem", "machine: nehalem | cascadelake | limit-legacy")
		seedFlag     = flag.Uint64("seed", 1, "simulation seed (equal seeds replay identically)")
		baseline     = flag.Bool("baseline", false, "also run unmonitored and report overhead")
		workersFlag  = flag.Int("workers", 0, "scheduler pool for multi-run calls like -baseline (0 = GOMAXPROCS)")
		kernelToo    = flag.Bool("kernel", false, "count kernel-mode execution too")
		outFlag      = flag.String("o", "", "write sample CSV to this file (default: summary only)")
		straceFlag   = flag.Bool("strace", false, "trace every simulated syscall to stderr")
		psFlag       = flag.Bool("ps", false, "dump the simulated kernel's final state to stderr")
		traceFlag    = flag.String("trace", "", "write the run's Chrome trace-event JSON here (open in Perfetto)")
		metricsFlag  = flag.String("metrics", "", "write the run's metrics in Prometheus text format here")
		ctlLogFlag   = flag.String("ctl-log", "", "controller CSV log path inside the simulated FS (default /var/log/kleb.csv)")
		cpuProfile   = flag.String("cpuprofile", "", "write a host CPU profile (pprof) to this file")
		memProfile   = flag.String("memprofile", "", "write a host heap profile (pprof) to this file on exit")
	)
	flag.Parse()

	// `kleb events` prints the selected machine's architectural event table
	// and exits; all monitoring flags except -machine are ignored.
	if flag.Arg(0) == "events" {
		if err := kleb.WriteEventTable(os.Stdout, kleb.MachineKind(*machineFlag)); err != nil {
			fatal(err)
		}
		return
	}

	stop, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "kleb: profile:", err)
		}
	}()

	w, err := resolveWorkload(*workloadName, *seedFlag)
	if err != nil {
		fatal(err)
	}
	var events []kleb.Event
	var rawEvents []kleb.Encoding
	for _, name := range strings.Split(*eventsFlag, ",") {
		name = strings.TrimSpace(name)
		if ev, ok := kleb.EventByName(name); ok {
			events = append(events, ev)
			continue
		}
		// Not a known mnemonic: try perf's raw rUUEE syntax before giving up.
		if enc, err := kleb.ParseRawEvent(name); err == nil {
			rawEvents = append(rawEvents, enc)
			continue
		}
		fatal(fmt.Errorf("unknown event %q (names: `kleb events`; raw syntax: rUUEE)", name))
	}

	opts := kleb.CollectOptions{
		Machine:       kleb.MachineKind(*machineFlag),
		Seed:          *seedFlag,
		Workload:      w,
		Events:        events,
		RawEvents:     rawEvents,
		Period:        kleb.Duration(periodFlag.Nanoseconds()),
		Tool:          kleb.ToolKind(*toolFlag),
		Baseline:      *baseline,
		IncludeKernel: *kernelToo,
		Workers:       *workersFlag,
	}
	if *straceFlag {
		opts.Strace = os.Stderr
	}
	if *psFlag {
		opts.DumpState = os.Stderr
	}
	opts.ControllerLog = *ctlLogFlag
	var traceFile, metricsFile *os.File
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		traceFile = f
		opts.Trace = f
	}
	if *metricsFlag != "" {
		f, err := os.Create(*metricsFlag)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		metricsFile = f
		opts.Metrics = f
	}
	report, err := kleb.Collect(opts)
	if err != nil {
		fatal(err)
	}
	if traceFile != nil {
		fmt.Printf("wrote trace to %s (load in https://ui.perfetto.dev)\n", *traceFlag)
	}
	if metricsFile != nil {
		fmt.Printf("wrote metrics to %s\n", *metricsFlag)
	}

	fmt.Printf("workload  %s on %s under %s\n", w.Name(), *machineFlag, *toolFlag)
	fmt.Printf("elapsed   %v (%d samples at %v)\n", report.Elapsed, len(report.Samples), *periodFlag)
	if report.GFLOPS > 0 {
		fmt.Printf("rate      %.2f GFLOPS\n", report.GFLOPS)
	}
	if *baseline {
		fmt.Printf("baseline  %v  -> overhead %.2f%%\n", report.BaselineElapsed, report.OverheadPct)
	}
	if report.DroppedSamples > 0 {
		fmt.Printf("dropped   %d sampling periods (buffer-full safety stop)\n", report.DroppedSamples)
	}
	fmt.Println("totals:")
	for _, ev := range report.Events {
		suffix := ""
		if report.Estimated {
			suffix = " (estimated)"
			if s := report.Scale[ev]; s > 1 {
				suffix = fmt.Sprintf(" (estimated, scaled x%.2f)", s)
			}
		}
		fmt.Printf("  %-28s %15d%s\n", ev, report.Totals[ev], suffix)
	}
	if len(report.Samples) > 1 {
		fmt.Println("series:")
		for _, ev := range report.Events {
			fmt.Printf("  %-28s |%s|\n", ev, report.Sparkline(ev, 64))
		}
	}
	if *outFlag != "" {
		f, err := os.Create(*outFlag)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := report.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d samples to %s\n", len(report.Samples), *outFlag)
	}
}

func resolveWorkload(name string, seed uint64) (kleb.Workload, error) {
	switch {
	case name == "quickstart":
		return kleb.Synthetic(500_000_000, 1<<20, 0.02), nil
	case name == "linpack":
		return kleb.Linpack(0), nil
	case strings.HasPrefix(name, "linpack:"):
		var n uint64
		if _, err := fmt.Sscanf(name, "linpack:%d", &n); err != nil {
			return kleb.Workload{}, fmt.Errorf("bad linpack size in %q", name)
		}
		return kleb.Linpack(n), nil
	case name == "matmul":
		return kleb.TripleLoopMatmul(), nil
	case name == "dgemm":
		return kleb.DgemmMatmul(), nil
	case strings.HasPrefix(name, "docker:"):
		return kleb.Container(strings.TrimPrefix(name, "docker:"))
	case name == "meltdown-victim":
		return kleb.Meltdown().Victim(), nil
	case name == "meltdown-attack":
		return kleb.Meltdown().Attack(), nil
	case name == "serve":
		return kleb.Serve(seed), nil
	}
	return kleb.Workload{}, fmt.Errorf("unknown workload %q (images: %s)",
		name, strings.Join(kleb.ContainerImages(), ", "))
}

func fatal(err error) {
	_ = stopProfiles() // best-effort flush on the way out
	fmt.Fprintln(os.Stderr, "kleb:", err)
	os.Exit(1)
}
