package main

import (
	"strings"
	"testing"
)

func TestResolveWorkload(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"quickstart", "synthetic"},
		{"linpack", "linpack"},
		{"linpack:2000", "linpack"},
		{"matmul", "matmul-triple"},
		{"dgemm", "matmul-dgemm"},
		{"docker:nginx", "docker-nginx"},
		{"meltdown-victim", "victim"},
		{"meltdown-attack", "victim+meltdown"},
		{"serve", "serve"},
	}
	for _, c := range cases {
		w, err := resolveWorkload(c.in, 1)
		if err != nil {
			t.Errorf("%s: %v", c.in, err)
			continue
		}
		if w.Name() != c.want {
			t.Errorf("%s resolved to %q, want %q", c.in, w.Name(), c.want)
		}
	}
}

func TestResolveWorkloadErrors(t *testing.T) {
	for _, in := range []string{"nope", "docker:nope", "linpack:abc"} {
		if _, err := resolveWorkload(in, 1); err == nil {
			t.Errorf("%s should not resolve", in)
		}
	}
	// Unknown workload errors list the available container images.
	_, err := resolveWorkload("nope", 1)
	if err == nil || !strings.Contains(err.Error(), "nginx") {
		t.Errorf("error should enumerate images: %v", err)
	}
}
