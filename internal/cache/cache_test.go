package cache

import (
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{Name: "test", Size: 4096, LineSize: 64, Ways: 2, LatencyCycles: 4}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []Config{
		{Name: "zero-size", Size: 0, LineSize: 64, Ways: 2},
		{Name: "zero-ways", Size: 4096, LineSize: 64, Ways: 0},
		{Name: "odd-line", Size: 4096, LineSize: 48, Ways: 2},
		{Name: "indivisible", Size: 4000, LineSize: 64, Ways: 2},
		{Name: "non-pow2-sets", Size: 64 * 3 * 64, LineSize: 64, Ways: 64},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q should be invalid", c.Name)
		}
	}
}

func TestSetsGeometry(t *testing.T) {
	c := smallConfig()
	if got := c.Sets(); got != 32 {
		t.Errorf("Sets: got %d, want 32", got)
	}
	if (Config{}).Sets() != 0 {
		t.Error("zero config should have zero sets")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New should panic on invalid geometry")
		}
	}()
	New(Config{Size: 1, LineSize: 3, Ways: 1})
}

func TestHitAfterMiss(t *testing.T) {
	c := New(smallConfig())
	if c.Access(0x1000) {
		t.Error("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(0x1038) {
		t.Error("same line (different offset) should hit")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache: three addresses mapping to the same set evict the least
	// recently used.
	c := New(smallConfig())
	setStride := uint64(32 * 64) // sets*lineSize: same set index
	a, b, x := uint64(0), setStride, 2*setStride
	c.Access(a) // miss; set = {a}
	c.Access(b) // miss; set = {a,b}
	c.Access(a) // hit; a most recent
	c.Access(x) // miss; evicts b (LRU)
	if !c.Access(a) {
		t.Error("a should still be resident")
	}
	if c.Access(b) {
		t.Error("b should have been evicted")
	}
}

func TestContainsDoesNotDisturb(t *testing.T) {
	c := New(smallConfig())
	c.Access(0x40)
	before := c.Stats()
	if !c.Contains(0x40) || c.Contains(0x4040) {
		t.Error("Contains wrong")
	}
	if c.Stats() != before {
		t.Error("Contains must not touch statistics")
	}
}

func TestFlush(t *testing.T) {
	c := New(smallConfig())
	c.Access(0x80)
	if !c.Flush(0x80) {
		t.Error("flush of resident line should report eviction")
	}
	if c.Contains(0x80) {
		t.Error("line still resident after flush")
	}
	if c.Flush(0x80) {
		t.Error("flush of absent line should report false")
	}
	if c.Stats().Flushes != 2 {
		t.Errorf("flush count: %d", c.Stats().Flushes)
	}
}

func TestEvictFraction(t *testing.T) {
	c := New(smallConfig())
	for i := uint64(0); i < 64; i++ {
		c.Access(i * 64)
	}
	if occ := c.Occupancy(); occ != 1.0 {
		t.Fatalf("cache should be full, occupancy %f", occ)
	}
	c.EvictFraction(0.5)
	if occ := c.Occupancy(); occ < 0.4 || occ > 0.6 {
		t.Errorf("after 50%% eviction occupancy %f", occ)
	}
	c.EvictFraction(1.0)
	if c.Occupancy() != 0 {
		t.Error("full eviction left lines")
	}
	c.EvictFraction(0) // no-op
	c.EvictFraction(-1)
}

func TestResetStats(t *testing.T) {
	c := New(smallConfig())
	c.Access(0)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("ResetStats did not clear")
	}
	if !c.Contains(0) {
		t.Error("ResetStats must not clear contents")
	}
}

func TestMissRatio(t *testing.T) {
	if (Stats{}).MissRatio() != 0 {
		t.Error("empty stats ratio should be 0")
	}
	s := Stats{Accesses: 10, Misses: 3}
	if s.MissRatio() != 0.3 {
		t.Errorf("ratio %f", s.MissRatio())
	}
}

// Property: a working set that fits the cache, accessed twice sequentially,
// misses at most once per line.
func TestResidentSetHitsOnSecondSweep(t *testing.T) {
	prop := func(linesByte uint8) bool {
		lines := uint64(linesByte)%64 + 1 // ≤ 64 lines = full small cache
		c := New(smallConfig())
		for sweep := 0; sweep < 2; sweep++ {
			for i := uint64(0); i < lines; i++ {
				c.Access(i * 64)
			}
		}
		return c.Stats().Misses == lines
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyFillAndLatency(t *testing.T) {
	h := NewHierarchy(HierarchyConfig{
		L1D:              Config{Name: "L1D", Size: 1 << 12, LineSize: 64, Ways: 2, LatencyCycles: 4},
		L2:               Config{Name: "L2", Size: 1 << 14, LineSize: 64, Ways: 4, LatencyCycles: 10},
		LLC:              Config{Name: "LLC", Size: 1 << 16, LineSize: 64, Ways: 8, LatencyCycles: 30},
		MemLatencyCycles: 100,
	})
	r := h.Access(0x100)
	if r.L1Hit || r.L2Hit || r.LLCHit {
		t.Error("cold access should miss everywhere")
	}
	if r.Cycles != 4+10+30+100 {
		t.Errorf("cold latency %d", r.Cycles)
	}
	r = h.Access(0x100)
	if !r.L1Hit || r.Cycles != 4 {
		t.Errorf("warm access should hit L1 at 4 cycles: %+v", r)
	}
	// Evict from L1 only: next access hits L2.
	h.L1D().Flush(0x100)
	r = h.Access(0x100)
	if r.L1Hit || !r.L2Hit || r.Cycles != 14 {
		t.Errorf("L2 hit expected: %+v", r)
	}
}

func TestHierarchyFlushReachesAllLevels(t *testing.T) {
	h := NewHierarchy(HierarchyConfig{
		L1D:              Config{Name: "L1D", Size: 1 << 12, LineSize: 64, Ways: 2, LatencyCycles: 4},
		L2:               Config{Name: "L2", Size: 1 << 14, LineSize: 64, Ways: 4, LatencyCycles: 10},
		LLC:              Config{Name: "LLC", Size: 1 << 16, LineSize: 64, Ways: 8, LatencyCycles: 30},
		MemLatencyCycles: 100,
	})
	h.Access(0x200)
	if !h.Flush(0x200) {
		t.Error("flush should find line in LLC")
	}
	r := h.Access(0x200)
	if r.L1Hit || r.L2Hit || r.LLCHit {
		t.Error("flushed line should miss everywhere")
	}
}

func TestHierarchyPollute(t *testing.T) {
	h := NewHierarchy(HierarchyConfig{
		L1D:              Config{Name: "L1D", Size: 1 << 12, LineSize: 64, Ways: 2, LatencyCycles: 4},
		L2:               Config{Name: "L2", Size: 1 << 14, LineSize: 64, Ways: 4, LatencyCycles: 10},
		LLC:              Config{Name: "LLC", Size: 1 << 16, LineSize: 64, Ways: 8, LatencyCycles: 30},
		MemLatencyCycles: 100,
	})
	for i := uint64(0); i < 64; i++ {
		h.Access(i * 64)
	}
	h.Pollute(1, 0, 0)
	if h.L1D().Occupancy() != 0 {
		t.Error("L1 should be emptied")
	}
	if h.LLC().Occupancy() == 0 {
		t.Error("LLC should be untouched")
	}
	h.ResetStats()
	if h.L1D().Stats() != (Stats{}) || h.LLC().Stats() != (Stats{}) {
		t.Error("ResetStats incomplete")
	}
}
