// Package cache implements the set-associative cache hierarchy that
// generates the memory-side hardware events (L1D misses, LLC references,
// LLC misses) for the simulated CPU.
//
// The model is deliberately simple — physically indexed, true-LRU,
// write-allocate, no prefetcher — because the reproduction targets the
// *relative* behaviour the paper relies on: small footprints hit in cache
// (compute-intensive, MPKI < 1), large or random footprints miss in the LLC
// (memory-intensive, MPKI > 10), and Flush+Reload storms produce abnormal
// LLC reference/miss ratios.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	// Name identifies the level in stats output ("L1D", "L2", "LLC").
	Name string
	// Size is the capacity in bytes.
	Size uint64
	// LineSize is the cache line size in bytes (power of two).
	LineSize uint64
	// Ways is the associativity.
	Ways int
	// LatencyCycles is the hit latency charged by the CPU's CPI model.
	LatencyCycles uint64
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() uint64 {
	if c.LineSize == 0 || c.Ways == 0 {
		return 0
	}
	return c.Size / (c.LineSize * uint64(c.Ways))
}

// Validate checks the geometry for internal consistency.
func (c Config) Validate() error {
	if c.Size == 0 || c.LineSize == 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: size, line size and ways must be positive", c.Name)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size %d is not a power of two", c.Name, c.LineSize)
	}
	if c.Size%(c.LineSize*uint64(c.Ways)) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by line*ways", c.Name, c.Size)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, sets)
	}
	return nil
}

// Stats accumulates per-level access statistics.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
	Flushes  uint64
}

// MissRatio returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a single set-associative level with true LRU replacement.
// A line is identified by its tag; age counters implement LRU exactly
// (small associativities make the O(ways) scan cheap).
type Cache struct {
	cfg      Config
	sets     uint64
	lineBits uint
	setMask  uint64
	tags     []uint64 // sets*ways entries; 0 means invalid
	ages     []uint64 // LRU stamp per way
	stamp    uint64
	stats    Stats
	gen      uint64 // mutation generation, see Gen
}

// New builds a cache from cfg. It panics on invalid geometry: profiles are
// static data fixed at compile time, so a bad one is a programming error.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		setMask: sets - 1,
		tags:    make([]uint64, sets*uint64(cfg.Ways)),
		ages:    make([]uint64, sets*uint64(cfg.Ways)),
	}
	for lb := cfg.LineSize; lb > 1; lb >>= 1 {
		c.lineBits++
	}
	return c
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the statistics without disturbing cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	line := addr >> c.lineBits
	return line & c.setMask, line | 1<<63 // high bit marks valid
}

// Gen returns the cache's mutation generation: a counter bumped by every
// state-changing operation (Access, an evicting Flush, EvictFraction). Two
// equal Gen readings bracket a window in which the cache contents were
// untouched; the CPU's memo layer uses this on the shared LLC to detect
// interleaved accesses from sibling cores and fall back to measurement.
func (c *Cache) Gen() uint64 { return c.gen }

// State is a deep copy of one cache's mutable state, captured by Save and
// applied by Restore. A State value is reusable across Save calls — the
// backing slices are recycled — so a long-lived probe can snapshot without
// allocating. The CPU's memo layer brackets its canonical block
// measurements with a Save/Restore pair to keep them side-effect-free (see
// internal/cpu/memo.go).
type State struct {
	tags, ages []uint64
	stamp      uint64
	stats      Stats
	gen        uint64
}

// Save captures the cache's complete mutable state into s.
func (c *Cache) Save(s *State) {
	s.tags = append(s.tags[:0], c.tags...) //klebvet:allow hotalloc -- grows only on the first Save into a State; the CPU's long-lived snapshots reuse the backing array on every later probe
	s.ages = append(s.ages[:0], c.ages...) //klebvet:allow hotalloc -- same recycled backing array as tags above
	s.stamp = c.stamp
	s.stats = c.stats
	s.gen = c.gen
}

// Restore rewinds the cache to a state captured by Save on the same cache.
func (c *Cache) Restore(s *State) {
	copy(c.tags, s.tags)
	copy(c.ages, s.ages)
	c.stamp = s.stamp
	c.stats = s.stats
	c.gen = s.gen
}

// Access looks up addr, filling the line on a miss. It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * uint64(c.cfg.Ways)
	c.stamp++
	c.gen++
	c.stats.Accesses++
	victim := base
	oldest := ^uint64(0)
	for i := base; i < base+uint64(c.cfg.Ways); i++ {
		if c.tags[i] == tag {
			c.ages[i] = c.stamp
			c.stats.Hits++
			return true
		}
		if c.ages[i] < oldest {
			oldest = c.ages[i]
			victim = i
		}
	}
	c.stats.Misses++
	c.tags[victim] = tag
	c.ages[victim] = c.stamp
	return false
}

// Contains reports whether addr's line is resident, without touching LRU
// state or statistics. Used by tests and by the attack model's probe phase.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * uint64(c.cfg.Ways)
	for i := base; i < base+uint64(c.cfg.Ways); i++ {
		if c.tags[i] == tag {
			return true
		}
	}
	return false
}

// Flush evicts addr's line if present (CLFLUSH semantics) and returns
// whether a line was actually evicted.
func (c *Cache) Flush(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * uint64(c.cfg.Ways)
	c.stats.Flushes++
	for i := base; i < base+uint64(c.cfg.Ways); i++ {
		if c.tags[i] == tag {
			c.tags[i] = 0
			c.ages[i] = 0
			c.gen++
			return true
		}
	}
	return false
}

// EvictFraction invalidates approximately frac of all resident lines,
// choosing deterministically by position. The kernel uses it to model the
// cache pollution a context switch or interrupt handler inflicts on the
// running process's working set.
func (c *Cache) EvictFraction(frac float64) {
	if frac <= 0 {
		return
	}
	c.gen++
	if frac >= 1 {
		for i := range c.tags {
			c.tags[i] = 0
			c.ages[i] = 0
		}
		return
	}
	step := int(1 / frac)
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(c.tags); i += step {
		c.tags[i] = 0
		c.ages[i] = 0
	}
}

// Occupancy returns the fraction of lines currently valid.
func (c *Cache) Occupancy() float64 {
	n := 0
	for _, t := range c.tags {
		if t != 0 {
			n++
		}
	}
	return float64(n) / float64(len(c.tags))
}
