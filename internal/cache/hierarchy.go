package cache

// HierarchyConfig describes a three-level data cache hierarchy plus the
// memory latency behind it.
type HierarchyConfig struct {
	L1D, L2, LLC Config
	// MemLatencyCycles is the DRAM access latency charged on an LLC miss.
	MemLatencyCycles uint64
}

// AccessResult reports how deep a single access travelled.
type AccessResult struct {
	L1Hit, L2Hit, LLCHit bool
	// Cycles is the total latency of the access under the simple serial
	// lookup model.
	Cycles uint64
}

// Hierarchy is an inclusive three-level hierarchy. Lookups proceed L1→L2→LLC
// and fill all levels on the way back, which is what the LLC event counters
// on Nehalem-era parts effectively observe: LLC_REFERENCES are L2 misses
// arriving at the LLC, LLC_MISSES are those that continue to memory.
type Hierarchy struct {
	cfg HierarchyConfig
	l1d *Cache
	l2  *Cache
	llc *Cache
}

// NewHierarchy builds the three levels from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return NewHierarchyShared(cfg, nil)
}

// NewHierarchyShared builds per-core L1/L2 levels in front of an externally
// provided last-level cache. Multiple cores' hierarchies constructed around
// the same LLC contend for its capacity — the substrate for co-location
// studies. A nil llc allocates a private one from cfg.
func NewHierarchyShared(cfg HierarchyConfig, llc *Cache) *Hierarchy {
	if llc == nil {
		llc = New(cfg.LLC)
	} else {
		cfg.LLC = llc.Config()
	}
	return &Hierarchy{
		cfg: cfg,
		l1d: New(cfg.L1D),
		l2:  New(cfg.L2),
		llc: llc,
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// L1D returns the first-level data cache.
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L2 returns the mid-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// LLC returns the last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.llc }

// Access performs one data access at addr and returns where it hit and the
// latency incurred.
func (h *Hierarchy) Access(addr uint64) AccessResult {
	var r AccessResult
	r.Cycles = h.cfg.L1D.LatencyCycles
	if h.l1d.Access(addr) {
		r.L1Hit = true
		return r
	}
	r.Cycles += h.cfg.L2.LatencyCycles
	if h.l2.Access(addr) {
		r.L2Hit = true
		return r
	}
	r.Cycles += h.cfg.LLC.LatencyCycles
	if h.llc.Access(addr) {
		r.LLCHit = true
		return r
	}
	r.Cycles += h.cfg.MemLatencyCycles
	return r
}

// Flush evicts addr's line from every level (CLFLUSH reaches the point of
// coherence). It returns true if the line was present in the LLC.
func (h *Hierarchy) Flush(addr uint64) bool {
	h.l1d.Flush(addr)
	h.l2.Flush(addr)
	return h.llc.Flush(addr)
}

// Pollute models the cache damage done by foreign execution (a context
// switch to another process, or a long interrupt handler): the inner levels
// lose a large share of their contents, the LLC a smaller one.
func (h *Hierarchy) Pollute(l1Frac, l2Frac, llcFrac float64) {
	h.l1d.EvictFraction(l1Frac)
	h.l2.EvictFraction(l2Frac)
	h.llc.EvictFraction(llcFrac)
}

// ResetStats clears all per-level statistics.
func (h *Hierarchy) ResetStats() {
	h.l1d.ResetStats()
	h.l2.ResetStats()
	h.llc.ResetStats()
}
