package cache

import "testing"

// FuzzCacheOps drives a small cache with an arbitrary operation stream and
// checks structural invariants that must hold for any input: statistics
// account for every access, lookups after a fill hit, flushes evict, and
// occupancy stays within [0, 1].
func FuzzCacheOps(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0xC3, 0x04})
	f.Add([]byte("flush and reload and flush again"))
	f.Fuzz(func(t *testing.T, ops []byte) {
		c := New(Config{Name: "fuzz", Size: 4096, LineSize: 64, Ways: 2, LatencyCycles: 1})
		for i, op := range ops {
			addr := uint64(op) * 64 % 8192 // within two cache-fulls of lines
			switch i % 3 {
			case 0:
				c.Access(addr)
				if !c.Contains(addr) {
					t.Fatalf("line absent immediately after access (addr %#x)", addr)
				}
			case 1:
				c.Flush(addr)
				if c.Contains(addr) {
					t.Fatalf("line present immediately after flush (addr %#x)", addr)
				}
			case 2:
				c.EvictFraction(float64(op) / 512) // up to 50%
			}
			if occ := c.Occupancy(); occ < 0 || occ > 1 {
				t.Fatalf("occupancy %f out of range", occ)
			}
		}
		s := c.Stats()
		if s.Hits+s.Misses != s.Accesses {
			t.Fatalf("stats do not add up: %+v", s)
		}
	})
}

// FuzzHierarchyInclusive checks that any access pattern leaves the
// hierarchy responding consistently: a repeated access directly after a
// miss must hit L1, and flushes remove the line from every level.
func FuzzHierarchyInclusive(f *testing.F) {
	f.Add([]byte{1, 2, 3, 250, 251})
	f.Fuzz(func(t *testing.T, addrs []byte) {
		h := NewHierarchy(HierarchyConfig{
			L1D:              Config{Name: "L1D", Size: 1 << 12, LineSize: 64, Ways: 2, LatencyCycles: 4},
			L2:               Config{Name: "L2", Size: 1 << 14, LineSize: 64, Ways: 4, LatencyCycles: 10},
			LLC:              Config{Name: "LLC", Size: 1 << 16, LineSize: 64, Ways: 8, LatencyCycles: 30},
			MemLatencyCycles: 100,
		})
		for _, b := range addrs {
			addr := uint64(b) * 64
			h.Access(addr)
			r := h.Access(addr)
			if !r.L1Hit {
				t.Fatalf("back-to-back access missed L1 (addr %#x)", addr)
			}
			h.Flush(addr)
			if h.L1D().Contains(addr) || h.L2().Contains(addr) || h.LLC().Contains(addr) {
				t.Fatalf("flush left residue (addr %#x)", addr)
			}
		}
	})
}
