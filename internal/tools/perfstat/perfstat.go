// Package perfstat models `perf stat -I <interval> -p <pid>`: a separate
// user-space process built on the kernel's perf_events subsystem that
// counts the requested events for the target and prints a snapshot every
// interval.
//
// Its costs are exactly the ones the paper attributes to it: the interval
// loop runs on a user-space (jiffy-granularity) timer, so it cannot sample
// faster than 10ms; every interval pays wakeup context switches, one
// expensive read syscall per event, and user-space formatting; and with
// more programmable events than hardware counters the kernel time-
// multiplexes, making the reported counts scaled estimates.
package perfstat

import (
	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/tools/common"
)

// FormatInstr is the per-interval user-space formatting work (instruction
// count); calibrated against the paper's Table II (see DESIGN.md §1).
const FormatInstr = 250_000

// StartupInstr models fork/exec plus option and event parsing at launch.
const StartupInstr = 3_000_000

// Tool is the perf stat baseline.
type Tool struct {
	cfg     monitor.Config
	period  ktime.Duration // effective (jiffy-clamped) interval
	proc    *perfProc
	multi   bool
	events  []isa.Event
	samples []monitor.Sample
	totals  map[isa.Event]uint64
	scales  map[isa.Event]float64
}

var _ monitor.Tool = (*Tool)(nil)

// New returns an unattached perf stat tool.
func New() *Tool { return &Tool{} }

// Name implements monitor.Tool.
func (t *Tool) Name() string { return "perf-stat" }

// EffectivePeriod returns the interval actually used after the user-timer
// granularity clamp.
func (t *Tool) EffectivePeriod() ktime.Duration { return t.period }

// Attach implements monitor.Tool: spawn the perf process.
func (t *Tool) Attach(m *machine.Machine, target *kernel.Process, _ kernel.Program, cfg monitor.Config) error {
	t.cfg = cfg
	t.events = cfg.Events
	t.totals = make(map[isa.Event]uint64)
	t.scales = make(map[isa.Event]float64)
	jiffy := m.Kernel().Costs().Jiffy
	t.period = cfg.Period
	if t.period < jiffy {
		// User-space timers cannot fire faster than the jiffy rate; perf
		// silently degrades to 10ms, which is the paper's §II-C point.
		t.period = jiffy
	}
	t.multi = len(cfg.ProgrammableEvents()) > 4
	t.proc = &perfProc{tool: t, target: target}
	m.Kernel().Spawn("perf-stat", t.proc)
	return nil
}

// ResumesTarget implements monitor.TargetResumer: perf forks/execs the
// target itself, with counters enabled on exec.
func (t *Tool) ResumesTarget() bool { return true }

// Collect implements monitor.Tool.
func (t *Tool) Collect() monitor.Result {
	res := monitor.Result{
		Tool:      t.Name(),
		Events:    t.events,
		Samples:   t.samples,
		Totals:    t.totals,
		Estimated: t.multi,
	}
	if t.multi {
		res.Scale = t.scales
	}
	return res
}

// perfProc is the perf process's program.
type perfProc struct {
	tool   *Tool
	target *kernel.Process

	state   int
	events  []*kernel.PerfEvent
	opened  int
	execed  bool
	tracker common.DeltaTracker
	reads   []uint64
	readIdx int
	queue   []kernel.Op
}

const (
	stStartup = iota
	stOpen
	stLoop
	stRead
	stFormat
	stFinal
	stClose
)

// Next implements kernel.Program.
func (pp *perfProc) Next(k *kernel.Kernel, p *kernel.Process) kernel.Op {
	if len(pp.queue) > 0 {
		op := pp.queue[0]
		pp.queue = pp.queue[1:]
		return op
	}
	switch pp.state {
	case stStartup:
		pp.state = stOpen
		return common.FormatOp(StartupInstr)
	case stOpen:
		if pp.opened < len(pp.tool.events) {
			ev := pp.tool.events[pp.opened]
			pp.opened++
			return kernel.OpSyscall{Name: "perf_event_open", Fn: func(k *kernel.Kernel, p *kernel.Process) any {
				pe, err := k.Perf().Open(pp.target.PID(), kernel.EventSpec{
					Event:         ev,
					ExcludeKernel: pp.tool.cfg.ExcludeKernel,
				})
				if err != nil {
					return err
				}
				pp.events = append(pp.events, pe)
				return nil
			}}
		}
		if !pp.execed {
			// fork/exec the target with counters enabled on exec.
			pp.execed = true
			return kernel.OpSyscall{Name: "execve", Fn: func(k *kernel.Kernel, p *kernel.Process) any {
				k.Resume(pp.target)
				return nil
			}}
		}
		pp.state = stLoop
		fallthrough
	case stLoop:
		if pp.target.Exited() {
			pp.state = stFinal
			pp.readIdx = 0
			return pp.Next(k, p)
		}
		pp.state = stRead
		pp.reads = pp.reads[:0]
		pp.readIdx = 0
		// Absolute-interval semantics (setitimer): wake at the next
		// multiple of the interval, not interval-from-now, so per-interval
		// work does not stretch the cadence.
		period := uint64(pp.tool.period)
		next := (uint64(k.Now())/period + 1) * period
		return kernel.OpSleep{Until: ktime.Time(next)}
	case stRead:
		if pp.readIdx < len(pp.events) {
			pe := pp.events[pp.readIdx]
			pp.readIdx++
			return kernel.OpSyscall{Name: "read", Fn: func(k *kernel.Kernel, p *kernel.Process) any {
				v, _ := scaledRead(k, pe)
				pp.reads = append(pp.reads, v)
				return nil
			}}
		}
		pp.state = stFormat
		fallthrough
	case stFormat:
		pp.tool.samples = append(pp.tool.samples,
			pp.tracker.Sample(k.Now(), append([]uint64(nil), pp.reads...)))
		pp.state = stLoop
		return common.FormatOp(FormatInstr)
	case stFinal:
		// Final read of every counter for whole-run totals.
		if pp.readIdx < len(pp.events) {
			pe := pp.events[pp.readIdx]
			idx := pp.readIdx
			pp.readIdx++
			return kernel.OpSyscall{Name: "read", Fn: func(k *kernel.Kernel, p *kernel.Process) any {
				v, scale := scaledRead(k, pe)
				pp.tool.totals[pp.tool.events[idx]] = v
				pp.tool.scales[pp.tool.events[idx]] = scale
				return nil
			}}
		}
		pp.state = stClose
		fallthrough
	case stClose:
		if len(pp.events) > 0 {
			pe := pp.events[len(pp.events)-1]
			pp.events = pp.events[:len(pp.events)-1]
			return kernel.OpSyscall{Name: "close", Fn: func(k *kernel.Kernel, p *kernel.Process) any {
				k.Perf().Close(pe)
				return nil
			}}
		}
		return kernel.OpExit{}
	}
	return kernel.OpExit{}
}

// scaledRead performs the perf_events read and applies the enabled/running
// multiplexing scaling user-space perf applies, also reporting the factor
// (1.0 = the event held its counter whenever the context ran, exact count).
func scaledRead(k *kernel.Kernel, pe *kernel.PerfEvent) (uint64, float64) {
	v, enabled, running := k.Perf().Read(pe)
	if running == 0 || enabled == running {
		return v, 1.0
	}
	scale := float64(enabled) / float64(running)
	return uint64(float64(v) * scale), scale
}
