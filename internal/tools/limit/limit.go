// Package limit models LiMiT (Demme & Sethumadhavan, ISCA'11): a kernel
// patch that virtualizes the performance counters per process and allows
// user-space RDPMC, so instrumented programs read counters without any
// system call. That removes PAPI's syscall cost — LiMiT's measured edge in
// Table II — but the approach requires a patched (here: legacy) kernel:
// Attach refuses to run on a stock kernel, which is why the paper's
// Table III has no LiMiT entry for the MKL machine.
package limit

import (
	"fmt"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/pmu"
	"kleb/internal/tools/common"
	"kleb/internal/workload"
)

// DefaultPoints matches PAPI's strategic point count.
const DefaultPoints = 200

// LogWriteCost and LogFormatInstr are the same harness logging costs PAPI
// pays; LiMiT only saves the counter-read syscalls.
const LogWriteCost = 430 * ktime.Microsecond

// RdpmcInstr is the user-side cost of the four-RDPMC read sequence.
const RdpmcInstr = 400

// Tool is the LiMiT baseline.
type Tool struct {
	// Points overrides the strategic point count (0 = default).
	Points int

	cfg     monitor.Config
	events  []isa.Event
	machine *machine.Machine
	target  *kernel.Process
	tracker common.DeltaTracker
	samples []monitor.Sample
	totals  []uint64
	// saved holds the target's virtualized counter values while it is
	// scheduled out (the patch's per-process counter save/restore).
	saved    []uint64
	enabled  bool
	hookID   kernel.ProbeID
	fixedIdx []int // fixed counter index per event, or -1 for programmable
	progIdx  []int // programmable counter index per event, or -1
}

var _ monitor.Tool = (*Tool)(nil)

// New returns an unattached LiMiT tool.
func New() *Tool { return &Tool{} }

// Name implements monitor.Tool.
func (t *Tool) Name() string { return "limit" }

// Attach implements monitor.Tool.
func (t *Tool) Attach(m *machine.Machine, target *kernel.Process, prog kernel.Program, cfg monitor.Config) error {
	if !m.Kernel().LiMiTPatched() {
		return fmt.Errorf("limit: kernel is not LiMiT-patched (unsupported OS and kernel version)")
	}
	sp, ok := prog.(workload.Instrumentable)
	if !ok {
		return fmt.Errorf("limit: target %q is not instrumentable: LiMiT requires source code access", target.Name())
	}
	if n := len(cfg.ProgrammableEvents()); n > pmu.NumProgrammable {
		return fmt.Errorf("limit: %d programmable events exceed the %d hardware counters", n, pmu.NumProgrammable)
	}
	// LiMiT virtualizes the core counters via rdpmc from user space; the
	// uncore PMU has no rdpmc path and is socket-wide, not per-process.
	if unc := cfg.UncoreEvents(); len(unc) > 0 {
		return fmt.Errorf("limit: uncore event %v is not readable via rdpmc", unc[0])
	}
	t.cfg = cfg
	t.events = cfg.Events
	t.machine = m
	t.target = target
	t.totals = make([]uint64, len(cfg.Events))
	t.saved = make([]uint64, len(cfg.Events))
	t.planCounters()
	t.program()
	// The patch's switch path virtualizes the counters for the target.
	t.hookID = m.Kernel().RegisterBuiltinSwitchHook(t.onSwitch)

	points := t.Points
	if points <= 0 {
		points = DefaultPoints
	}
	every := sp.Script().TotalInstr() / uint64(points)
	if every == 0 {
		every = 1
	}
	sp.Instrument(nil, every, t.strategicPoint)
	return nil
}

// planCounters assigns events to fixed or programmable counters.
func (t *Tool) planCounters() {
	t.fixedIdx = make([]int, len(t.events))
	t.progIdx = make([]int, len(t.events))
	next := 0
	for i, ev := range t.events {
		t.fixedIdx[i], t.progIdx[i] = -1, -1
		switch ev {
		case isa.EvInstructions:
			t.fixedIdx[i] = 0
		case isa.EvCycles:
			t.fixedIdx[i] = 1
		case isa.EvRefCycles:
			t.fixedIdx[i] = 2
		default:
			t.progIdx[i] = next
			next++
		}
	}
}

// program writes the event selections once at attach (the patched kernel
// sets this up when the instrumented program calls the LiMiT init).
func (t *Tool) program() {
	pm := t.machine.Core().PMU()
	table := pm.Table()
	flags := uint64(pmu.SelUsr)
	if !t.cfg.ExcludeKernel {
		flags |= pmu.SelOS
	}
	for i, ev := range t.events {
		if t.progIdx[i] < 0 {
			continue
		}
		enc, ok := table.EncodingFor(ev)
		if !ok {
			continue
		}
		wrmsr(pm, pmu.MSRPerfEvtSel0+uint32(t.progIdx[i]), enc.Sel(flags|pmu.SelEn))
		wrmsr(pm, pmu.MSRPmc0+uint32(t.progIdx[i]), 0)
	}
	var fixedCtrl uint64
	for i := range t.events {
		if t.fixedIdx[i] < 0 {
			continue
		}
		nib := uint64(pmu.FixedUsr)
		if !t.cfg.ExcludeKernel {
			nib |= pmu.FixedOS
		}
		fixedCtrl |= nib << uint(4*t.fixedIdx[i])
		wrmsr(pm, pmu.MSRFixedCtr0+uint32(t.fixedIdx[i]), 0)
	}
	wrmsr(pm, pmu.MSRFixedCtrCtrl, fixedCtrl)
	wrmsr(pm, pmu.MSRGlobalCtrl, 0)
}

func (t *Tool) enableMask() uint64 {
	var mask uint64
	for i := range t.events {
		if t.progIdx[i] >= 0 {
			mask |= 1 << uint(t.progIdx[i])
		}
		if t.fixedIdx[i] >= 0 {
			mask |= 1 << uint(32+t.fixedIdx[i])
		}
	}
	return mask
}

// onSwitch is the patch's counter virtualization: save and disable on
// switch-out of the target, restore and enable on switch-in.
func (t *Tool) onSwitch(k *kernel.Kernel, prev, next *kernel.Process) {
	pm := k.Core().PMU()
	if prev == t.target {
		for i := range t.events {
			t.saved[i] = t.read(pm, i)
		}
		wrmsr(pm, pmu.MSRGlobalCtrl, 0)
		t.enabled = false
		k.ChargeKernel(ktime.Duration(len(t.events)+1) * k.Costs().MSRAccess)
	}
	if next == t.target {
		for i := range t.events {
			t.write(pm, i, t.saved[i])
		}
		wrmsr(pm, pmu.MSRGlobalCtrl, t.enableMask())
		t.enabled = true
		k.ChargeKernel(ktime.Duration(len(t.events)+1) * k.Costs().MSRAccess)
	}
}

func (t *Tool) read(pm *pmu.PMU, i int) uint64 {
	if t.fixedIdx[i] >= 0 {
		v, _ := pm.ReadMSR(pmu.MSRFixedCtr0 + uint32(t.fixedIdx[i]))
		return v
	}
	v, _ := pm.ReadMSR(pmu.MSRPmc0 + uint32(t.progIdx[i]))
	return v
}

func (t *Tool) write(pm *pmu.PMU, i int, v uint64) {
	if t.fixedIdx[i] >= 0 {
		wrmsr(pm, pmu.MSRFixedCtr0+uint32(t.fixedIdx[i]), v)
		return
	}
	wrmsr(pm, pmu.MSRPmc0+uint32(t.progIdx[i]), v)
}

// strategicPoint reads the counters with RDPMC — no syscall — then logs.
func (t *Tool) strategicPoint(k *kernel.Kernel, p *kernel.Process) []kernel.Op {
	pm := k.Core().PMU()
	values := make([]uint64, len(t.events))
	for i := range t.events {
		if t.fixedIdx[i] >= 0 {
			values[i], _ = pm.RDPMC(uint32(t.fixedIdx[i]) | 1<<30)
		} else {
			values[i], _ = pm.RDPMC(uint32(t.progIdx[i]))
		}
	}
	t.samples = append(t.samples, t.tracker.Sample(k.Now(), values))
	copy(t.totals, values)
	return []kernel.Op{
		common.LogPointOp(RdpmcInstr),
		common.WriteOp(LogWriteCost),
	}
}

// Collect implements monitor.Tool.
func (t *Tool) Collect() monitor.Result {
	res := monitor.Result{
		Tool:    t.Name(),
		Events:  t.events,
		Samples: t.samples,
		Totals:  make(map[isa.Event]uint64, len(t.events)),
	}
	for i, ev := range t.events {
		res.Totals[ev] = t.totals[i]
	}
	return res
}

func wrmsr(pm *pmu.PMU, addr uint32, val uint64) {
	if err := pm.WriteMSR(addr, val); err != nil {
		panic(err)
	}
}
