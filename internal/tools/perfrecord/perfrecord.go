// Package perfrecord models `perf record -F <freq> -p <pid>`: sampling
// mode. The kernel arms each event's counter to overflow after a period,
// the resulting PMI captures a sample record into a buffer, and the
// frequency feedback loop retunes the period toward the requested rate. A
// user-space perf process wakes occasionally to flush the buffer to
// perf.data.
//
// Counts reconstructed from samples are estimates (sums of elapsed
// periods): cheap to collect, but carrying the quantization error the
// paper's Fig 9 measures at under 0.15% versus K-LEB.
package perfrecord

import (
	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/tools/common"
)

// DrainInterval is how often the perf process flushes its mmap buffer.
const DrainInterval = 100 * ktime.Millisecond

// DrainWriteCost is the kernel-side cost of one perf.data flush.
const DrainWriteCost = 260 * ktime.Microsecond

// StartupInstr models fork/exec and event setup at launch.
const StartupInstr = 3_000_000

// Tool is the perf record baseline.
type Tool struct {
	cfg    monitor.Config
	freq   uint64
	events []isa.Event
	proc   *recProc
}

var _ monitor.Tool = (*Tool)(nil)

// New returns an unattached perf record tool.
func New() *Tool { return &Tool{} }

// Name implements monitor.Tool.
func (t *Tool) Name() string { return "perf-record" }

// Attach implements monitor.Tool. cfg.Period is translated to perf's -F
// frequency (samples per second of target runtime).
func (t *Tool) Attach(m *machine.Machine, target *kernel.Process, _ kernel.Program, cfg monitor.Config) error {
	t.cfg = cfg
	t.events = cfg.Events
	t.freq = uint64(ktime.Second / cfg.Period)
	if t.freq == 0 {
		t.freq = 1
	}
	t.proc = &recProc{tool: t, target: target}
	m.Kernel().Spawn("perf-record", t.proc)
	return nil
}

// ResumesTarget implements monitor.TargetResumer: perf forks/execs the
// target itself, with counters enabled on exec.
func (t *Tool) ResumesTarget() bool { return true }

// Collect implements monitor.Tool. Totals are sampling estimates; the
// sample series is per-event and not row-aligned, so Samples stays empty
// (perf record's output is a profile, not an interval table).
func (t *Tool) Collect() monitor.Result {
	res := monitor.Result{
		Tool:      t.Name(),
		Events:    t.events,
		Totals:    make(map[isa.Event]uint64, len(t.events)),
		Estimated: true,
	}
	for i, pe := range t.proc.events {
		res.Totals[t.events[i]] = pe.SampledCount()
	}
	return res
}

// FinalPeriod returns the sampling period of ev's last sample — the
// quantization bound on its count estimate (at most one final period of
// events goes unreported). Zero if the event took no samples.
func (t *Tool) FinalPeriod(ev isa.Event) uint64 {
	for i, pe := range t.proc.events {
		if t.events[i] != ev {
			continue
		}
		ss := pe.Samples()
		if len(ss) == 0 {
			return 0
		}
		return ss[len(ss)-1].Period
	}
	return 0
}

// SampleCount returns the total number of PMI samples taken (all events).
func (t *Tool) SampleCount() int {
	n := 0
	for _, pe := range t.proc.events {
		n += len(pe.Samples())
	}
	return n
}

// recProc is the perf record process's program.
type recProc struct {
	tool   *Tool
	target *kernel.Process

	state      int
	opened     int
	execed     bool
	closed     int
	finalFlush bool
	events     []*kernel.PerfEvent
	flushed    int
}

const (
	stStartup = iota
	stOpen
	stLoop
	stFlush
	stClose
)

// Next implements kernel.Program.
func (rp *recProc) Next(k *kernel.Kernel, p *kernel.Process) kernel.Op {
	switch rp.state {
	case stStartup:
		rp.state = stOpen
		return common.FormatOp(StartupInstr)
	case stOpen:
		if rp.opened < len(rp.tool.events) {
			ev := rp.tool.events[rp.opened]
			rp.opened++
			return kernel.OpSyscall{Name: "perf_event_open", Fn: func(k *kernel.Kernel, p *kernel.Process) any {
				pe, err := k.Perf().Open(rp.target.PID(), kernel.EventSpec{
					Event:         ev,
					ExcludeKernel: rp.tool.cfg.ExcludeKernel,
					SampleFreq:    rp.tool.freq,
				})
				if err != nil {
					return err
				}
				rp.events = append(rp.events, pe)
				return nil
			}}
		}
		if !rp.execed {
			rp.execed = true
			return kernel.OpSyscall{Name: "execve", Fn: func(k *kernel.Kernel, p *kernel.Process) any {
				k.Resume(rp.target)
				return nil
			}}
		}
		rp.state = stLoop
		fallthrough
	case stLoop:
		if rp.target.Exited() {
			rp.state = stClose
			return rp.Next(k, p)
		}
		rp.state = stFlush
		return kernel.OpSleep{D: DrainInterval}
	case stFlush:
		rp.state = stLoop
		n := rp.tool.SampleCount()
		newSamples := n - rp.flushed
		rp.flushed = n
		if newSamples == 0 {
			return rp.Next(k, p)
		}
		return common.WriteOp(DrainWriteCost + ktime.Duration(newSamples)*500*ktime.Nanosecond)
	case stClose:
		if rp.closed < len(rp.events) {
			pe := rp.events[rp.closed]
			rp.closed++
			return kernel.OpSyscall{Name: "close", Fn: func(k *kernel.Kernel, p *kernel.Process) any {
				k.Perf().Close(pe)
				return nil
			}}
		}
		if !rp.finalFlush {
			rp.finalFlush = true
			n := rp.tool.SampleCount() - rp.flushed
			if n > 0 {
				return common.WriteOp(DrainWriteCost + ktime.Duration(n)*500*ktime.Nanosecond)
			}
		}
		return kernel.OpExit{}
	}
	return kernel.OpExit{}
}
