// Package tools_test exercises the four baseline monitors head to head on
// the shared harness; the per-tool behaviours (timer clamping, sampling
// estimation, instrumentation requirements, kernel-patch requirements) each
// get focused coverage.
package tools_test

import (
	"strings"
	"testing"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/tools/limit"
	"kleb/internal/tools/papi"
	"kleb/internal/tools/perfrecord"
	"kleb/internal/tools/perfstat"
	"kleb/internal/workload"
)

func quietProfile() machine.Profile {
	p := machine.Nehalem()
	p.Costs.NoiseRel = 0
	p.Costs.TimerJitterRel = 0
	p.Costs.RunNoiseRel = 0
	return p
}

func quietLimitProfile() machine.Profile {
	p := machine.LiMiTKernel()
	p.Costs.NoiseRel = 0
	p.Costs.TimerJitterRel = 0
	p.Costs.RunNoiseRel = 0
	return p
}

func script(instr uint64) workload.Script {
	return workload.Synthetic{
		Name:       "target",
		TotalInstr: instr,
		BlockInstr: 200_000,
		Footprint:  256 << 10,
	}.Script()
}

func run(t *testing.T, prof machine.Profile, s workload.Script, tool monitor.Tool, cfg monitor.Config) *session.Result {
	t.Helper()
	spec := session.Spec{
		Profile:   prof,
		Seed:      11,
		NewTarget: func() kernel.Program { return s.Program() },
		Config:    cfg,
	}
	if tool != nil {
		spec.NewTool = session.Use(tool)
	}
	res, err := session.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func stdEvents() []isa.Event {
	return []isa.Event{isa.EvInstructions, isa.EvLoads, isa.EvStores, isa.EvBranches}
}

// --- perf stat ---

func TestPerfStatClampsSubJiffyPeriods(t *testing.T) {
	tool := perfstat.New()
	s := script(400_000_000)
	res := run(t, quietProfile(), s, tool, monitor.Config{
		Events: stdEvents(), Period: 100 * ktime.Microsecond, ExcludeKernel: true,
	})
	if tool.EffectivePeriod() != 10*ktime.Millisecond {
		t.Errorf("requested 100µs must clamp to the 10ms jiffy, got %v", tool.EffectivePeriod())
	}
	// Sample count reflects the clamped rate, not the request.
	want := int(res.Elapsed / (10 * ktime.Millisecond))
	if got := len(res.Result.Samples); got > want+2 {
		t.Errorf("got %d samples — sampled faster than the jiffy allows (≈%d)", got, want)
	}
}

func TestPerfStatCountsExactly(t *testing.T) {
	s := script(300_000_000)
	res := run(t, quietProfile(), s, perfstat.New(), monitor.Config{
		Events: stdEvents(), Period: 10 * ktime.Millisecond, ExcludeKernel: true,
	})
	if got := res.Result.Totals[isa.EvInstructions]; got != s.TotalInstr() {
		t.Errorf("instructions %d != %d", got, s.TotalInstr())
	}
	if res.Result.Estimated {
		t.Error("4 programmable events fit the PMU: no multiplexing, no estimate")
	}
}

func TestPerfStatMultiplexedEstimates(t *testing.T) {
	s := script(600_000_000)
	events := []isa.Event{isa.EvLoads, isa.EvStores, isa.EvBranches, isa.EvLLCMisses, isa.EvBranchMisses}
	res := run(t, quietProfile(), s, perfstat.New(), monitor.Config{
		Events: events, Period: 10 * ktime.Millisecond, ExcludeKernel: true,
	})
	if !res.Result.Estimated {
		t.Fatal("5 programmable events must multiplex")
	}
	wantLoads := s.TotalInstr() * s.Phases[0].LoadsPerK / 1000
	got := float64(res.Result.Totals[isa.EvLoads])
	off := (got - float64(wantLoads)) / float64(wantLoads)
	if off < -0.15 || off > 0.15 {
		t.Errorf("multiplexed loads estimate off %.1f%%", off*100)
	}
}

func TestPerfStatIntervalCadence(t *testing.T) {
	s := script(500_000_000)
	res := run(t, quietProfile(), s, perfstat.New(), monitor.Config{
		Events: stdEvents(), Period: 10 * ktime.Millisecond, ExcludeKernel: true,
	})
	ss := res.Result.Samples
	if len(ss) < 5 {
		t.Fatalf("too few samples: %d", len(ss))
	}
	for i := 1; i < len(ss); i++ {
		gap := ss[i].Time.Sub(ss[i-1].Time)
		if gap < 9*ktime.Millisecond || gap > 11*ktime.Millisecond {
			t.Errorf("interval %d: %v (setitimer cadence should not drift)", i, gap)
		}
	}
}

// --- perf record ---

func TestPerfRecordEstimatesWithinOnePercent(t *testing.T) {
	s := script(800_000_000)
	tool := perfrecord.New()
	res := run(t, quietProfile(), s, tool, monitor.Config{
		Events: stdEvents(), Period: 10 * ktime.Millisecond, ExcludeKernel: true,
	})
	if !res.Result.Estimated {
		t.Error("perf record totals are sampling estimates")
	}
	truth := s.TotalInstr()
	got := res.Result.Totals[isa.EvInstructions]
	if got > truth+truth/1000 {
		t.Errorf("sampled instruction estimate %d overcounts truth %d", got, truth)
	}
	// The estimate is the sum of sampled periods: the residue accumulated
	// since the last overflow is invisible, so the undercount is bounded by
	// one final period (frequency mode's adapted period on a short run).
	if floor := truth - 11*tool.FinalPeriod(isa.EvInstructions)/10; got < floor {
		t.Errorf("sampled instruction estimate %d undercounts truth %d by more than the final period %d",
			got, truth, tool.FinalPeriod(isa.EvInstructions))
	}
	if tool.SampleCount() == 0 {
		t.Fatal("no samples")
	}
}

func TestPerfRecordSampleRateTracksFrequency(t *testing.T) {
	s := script(800_000_000)
	tool := perfrecord.New()
	res := run(t, quietProfile(), s, tool, monitor.Config{
		Events: []isa.Event{isa.EvInstructions}, Period: 10 * ktime.Millisecond, ExcludeKernel: true,
	})
	want := res.Elapsed.Seconds() * 100 // -F 100 for a 10ms period
	got := float64(tool.SampleCount())
	if got < want/2 || got > want*2 {
		t.Errorf("sample count %v, want ≈%.0f", got, want)
	}
}

func TestPerfRecordCheaperThanPerfStat(t *testing.T) {
	s := script(600_000_000)
	base := run(t, quietProfile(), s, nil, monitor.Config{})
	cfg := monitor.Config{Events: stdEvents(), Period: 10 * ktime.Millisecond, ExcludeKernel: true}
	rec := run(t, quietProfile(), s, perfrecord.New(), cfg)
	stat := run(t, quietProfile(), s, perfstat.New(), cfg)
	recOv := float64(rec.Elapsed) - float64(base.Elapsed)
	statOv := float64(stat.Elapsed) - float64(base.Elapsed)
	if recOv >= statOv {
		t.Errorf("perf record (%.0fns) should cost less than perf stat (%.0fns)", recOv, statOv)
	}
}

// --- PAPI ---

func TestPAPIRequiresSource(t *testing.T) {
	tool := papi.New()
	m := machine.Boot(quietProfile(), 1)
	blob := kernel.ProgramFunc(func(*kernel.Kernel, *kernel.Process) kernel.Op { return kernel.OpExit{} })
	target := m.Kernel().SpawnStopped("blob", blob)
	err := tool.Attach(m, target, blob, monitor.Config{Events: stdEvents(), Period: ktime.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "source") {
		t.Errorf("PAPI must demand source access: %v", err)
	}
}

func TestPAPICountsAndPointCadence(t *testing.T) {
	s := script(400_000_000)
	tool := papi.New()
	tool.Points = 20
	res := run(t, quietProfile(), s, tool, monitor.Config{
		Events: stdEvents(), Period: 10 * ktime.Millisecond, ExcludeKernel: true,
	})
	n := len(res.Result.Samples)
	if n < 18 || n > 23 {
		t.Errorf("strategic points: got %d samples, want ≈21", n)
	}
	truth := s.TotalInstr()
	got := res.Result.Totals[isa.EvInstructions]
	// PAPI counts precisely, but its own instrumentation work is part of
	// the process — totals land slightly above the raw workload.
	if got < truth || float64(got) > 1.01*float64(truth) {
		t.Errorf("PAPI totals %d vs workload %d", got, truth)
	}
}

func TestPAPIEventSetLimit(t *testing.T) {
	s := script(1_000_000)
	tool := papi.New()
	m := machine.Boot(quietProfile(), 2)
	prog := s.Program()
	target := m.Kernel().SpawnStopped("t", prog)
	err := tool.Attach(m, target, prog, monitor.Config{
		Events: []isa.Event{isa.EvLoads, isa.EvStores, isa.EvBranches, isa.EvLLCMisses, isa.EvBranchMisses},
		Period: ktime.Millisecond,
	})
	if err == nil {
		t.Error("5 programmable events should exceed PAPI's event set")
	}
}

// --- LiMiT ---

func TestLiMiTRequiresPatchedKernel(t *testing.T) {
	s := script(1_000_000)
	tool := limit.New()
	m := machine.Boot(quietProfile(), 3) // stock kernel
	prog := s.Program()
	target := m.Kernel().SpawnStopped("t", prog)
	err := tool.Attach(m, target, prog, monitor.Config{Events: stdEvents(), Period: ktime.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "patch") {
		t.Errorf("LiMiT on a stock kernel must fail: %v", err)
	}
}

func TestLiMiTCountsOnPatchedKernel(t *testing.T) {
	s := script(400_000_000)
	tool := limit.New()
	tool.Points = 20
	res := run(t, quietLimitProfile(), s, tool, monitor.Config{
		Events: stdEvents(), Period: 10 * ktime.Millisecond, ExcludeKernel: true,
	})
	truth := s.TotalInstr()
	got := res.Result.Totals[isa.EvInstructions]
	if got < truth || float64(got) > 1.01*float64(truth) {
		t.Errorf("LiMiT totals %d vs workload %d", got, truth)
	}
	if len(res.Result.Samples) < 18 {
		t.Errorf("samples: %d", len(res.Result.Samples))
	}
}

func TestLiMiTCheaperThanPAPI(t *testing.T) {
	// The whole point of LiMiT: same instrumentation, no syscalls.
	s := script(600_000_000)
	cfg := monitor.Config{Events: stdEvents(), Period: 10 * ktime.Millisecond, ExcludeKernel: true}

	basePatched := run(t, quietLimitProfile(), s, nil, monitor.Config{})
	lt := limit.New()
	lt.Points = 50
	lres := run(t, quietLimitProfile(), s, lt, cfg)

	baseStock := run(t, quietProfile(), s, nil, monitor.Config{})
	pt := papi.New()
	pt.Points = 50
	pres := run(t, quietProfile(), s, pt, cfg)

	limitOv := float64(lres.Elapsed) - float64(basePatched.Elapsed)
	papiOv := float64(pres.Elapsed) - float64(baseStock.Elapsed)
	if limitOv >= papiOv {
		t.Errorf("LiMiT (%.0fns) should beat PAPI (%.0fns)", limitOv, papiOv)
	}
}

func TestLiMiTIsolatesCountsFromOtherProcesses(t *testing.T) {
	// The patch virtualizes counters per process: with OS noise running,
	// totals still match the target.
	s := script(200_000_000)
	tool := limit.New()
	tool.Points = 10
	res, err := session.Run(session.Spec{
		Profile:   quietLimitProfile(),
		Seed:      12,
		NewTarget: func() kernel.Program { return s.Program() },
		NewTool:   session.Use(tool),
		Config:    monitor.Config{Events: stdEvents(), Period: 10 * ktime.Millisecond, ExcludeKernel: true},
		Noise:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := s.TotalInstr()
	got := res.Result.Totals[isa.EvInstructions]
	if got < truth || float64(got) > 1.02*float64(truth) {
		t.Errorf("counter virtualization leaked: %d vs %d", got, truth)
	}
}
