// Package common holds the small pieces the baseline tools share: log
// formatting/writing cost ops and sample bookkeeping.
package common

import (
	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/workload"
)

// FormatOp models user-space formatting of n event values into a text log
// line (what perf stat's interval printing and PAPI/LiMiT harness logging
// spend their time on).
func FormatOp(instr uint64) kernel.Op {
	return kernel.OpExec{Block: isa.Block{
		Instr:    instr,
		Loads:    instr / 3,
		Stores:   instr / 8,
		Branches: instr / 9,
		Mem: isa.MemPattern{
			Base:      workload.ToolRegion(),
			Footprint: 384 << 10,
			Stride:    8,
		},
		Priv: isa.User,
	}}
}

// LogPointOp models the user-side work of one instrumented log point: a
// snprintf of a handful of counter values. It is deliberately tiny in
// *instructions* — the point's cost lives in the kernel side of the write
// (WriteOp) — so the instrumentation's own counted footprint stays in the
// sub-0.3% band the paper reports for cross-tool count agreement.
func LogPointOp(extraInstr uint64) kernel.Op {
	instr := 2_000 + extraInstr
	return kernel.OpExec{Block: isa.Block{
		Instr:    instr,
		Loads:    instr / 4,
		Stores:   instr / 10,
		Branches: instr / 10,
		Mem: isa.MemPattern{
			Base:      workload.ToolRegion(),
			Footprint: 64 << 10,
			Stride:    8,
		},
		Priv: isa.User,
	}}
}

// WriteOp models the write(2) flushing a log buffer: the kernel-side cost
// dominates (VFS, page cache copy).
func WriteOp(kernelCost ktime.Duration) kernel.Op {
	return kernel.OpSyscall{Name: "write", Fn: func(k *kernel.Kernel, p *kernel.Process) any {
		k.ChargeKernel(kernelCost)
		return nil
	}}
}

// DeltaTracker turns successive absolute counter readings into per-sample
// deltas for the monitor.Sample series.
type DeltaTracker struct {
	last []uint64
	init bool
}

// Sample converts absolute values into a delta sample at time t.
func (d *DeltaTracker) Sample(t ktime.Time, values []uint64) monitor.Sample {
	deltas := make([]uint64, len(values))
	if d.init {
		for i, v := range values {
			if i < len(d.last) && v >= d.last[i] {
				deltas[i] = v - d.last[i]
			}
		}
	} else {
		copy(deltas, values)
	}
	d.last = append(d.last[:0], values...)
	d.init = true
	return monitor.Sample{Time: t, Deltas: deltas}
}

// Last returns the most recent absolute values seen.
func (d *DeltaTracker) Last() []uint64 { return d.last }
