package common

import (
	"testing"
	"testing/quick"

	"kleb/internal/kernel"
	"kleb/internal/ktime"
)

func TestDeltaTrackerFirstSampleIsAbsolute(t *testing.T) {
	var d DeltaTracker
	s := d.Sample(100, []uint64{10, 20})
	if s.Time != 100 || s.Deltas[0] != 10 || s.Deltas[1] != 20 {
		t.Errorf("first sample: %+v", s)
	}
}

func TestDeltaTrackerDeltas(t *testing.T) {
	var d DeltaTracker
	d.Sample(1, []uint64{100, 1000})
	s := d.Sample(2, []uint64{150, 1700})
	if s.Deltas[0] != 50 || s.Deltas[1] != 700 {
		t.Errorf("deltas: %v", s.Deltas)
	}
	// A counter that went backwards (reprogramming glitch) clamps to zero
	// rather than underflowing.
	s = d.Sample(3, []uint64{100, 1800})
	if s.Deltas[0] != 0 || s.Deltas[1] != 100 {
		t.Errorf("clamped deltas: %v", s.Deltas)
	}
	if d.Last()[0] != 100 {
		t.Errorf("Last: %v", d.Last())
	}
}

// Property: for monotone counter streams, the deltas always re-sum to the
// final absolute values.
func TestDeltaTrackerSumsBack(t *testing.T) {
	prop := func(increments []uint8) bool {
		var d DeltaTracker
		var abs uint64
		var sum uint64
		for i, inc := range increments {
			abs += uint64(inc)
			s := d.Sample(ktime.Time(i+1), []uint64{abs})
			sum += s.Deltas[0]
		}
		return sum == abs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFormatOpShape(t *testing.T) {
	op := FormatOp(90_000)
	ex, ok := op.(kernel.OpExec)
	if !ok {
		t.Fatalf("FormatOp should be an exec op, got %T", op)
	}
	b := ex.Block
	if b.Instr != 90_000 || b.Loads == 0 || b.Mem.Footprint == 0 {
		t.Errorf("format block: %+v", b)
	}
	if b.MemOps() > b.Instr {
		t.Error("more memory ops than instructions")
	}
}

func TestLogPointOpIsTiny(t *testing.T) {
	op := LogPointOp(400)
	ex := op.(kernel.OpExec)
	// The point of LogPointOp: its counted footprint must stay negligible
	// so instrumentation does not perturb Fig 9's count agreement.
	if ex.Block.Instr > 5_000 {
		t.Errorf("log point retires %d instructions; too heavy", ex.Block.Instr)
	}
}

func TestWriteOpIsASyscall(t *testing.T) {
	op := WriteOp(100 * ktime.Microsecond)
	sc, ok := op.(kernel.OpSyscall)
	if !ok {
		t.Fatalf("WriteOp should be a syscall, got %T", op)
	}
	if sc.Name != "write" {
		t.Errorf("syscall name %q", sc.Name)
	}
}
