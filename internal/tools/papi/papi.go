// Package papi models PAPI-C instrumentation: the monitored program's
// source is modified to initialize the PAPI library and to read an event
// set at strategic points. Every read of every event is a system call into
// the kernel's counter subsystem — the expensive path the paper (and the
// LiMiT work before it) identifies as PAPI's overhead problem — and the
// library's hardware-detection initialization is a fixed startup cost that
// dominates short workloads (Table III's 21.4%).
package papi

import (
	"fmt"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/tools/common"
	"kleb/internal/workload"
)

// DefaultPoints is how many strategic read points the instrumentation
// inserts when the caller does not choose (the paper matches the timer
// tools' sample counts).
const DefaultPoints = 200

// InitInstr is PAPI_library_init's work (component discovery, hardware
// tables); calibrated against Table III.
const InitInstr = 10_000_000

// LogWriteCost is the kernel-side log flush per strategic point.
const LogWriteCost = 330 * ktime.Microsecond

// Tool is the PAPI baseline. It requires source instrumentation: Attach
// fails unless the target program exposes the instrumentation seam.
type Tool struct {
	// Points overrides the number of strategic read points (0 = default).
	Points int

	cfg     monitor.Config
	events  []isa.Event
	pes     []*kernel.PerfEvent
	tracker common.DeltaTracker
	samples []monitor.Sample
	totals  []uint64
}

var _ monitor.Tool = (*Tool)(nil)

// New returns an unattached PAPI tool.
func New() *Tool { return &Tool{} }

// Name implements monitor.Tool.
func (t *Tool) Name() string { return "papi" }

// Attach implements monitor.Tool by instrumenting the target's program.
func (t *Tool) Attach(m *machine.Machine, target *kernel.Process, prog kernel.Program, cfg monitor.Config) error {
	sp, ok := prog.(workload.Instrumentable)
	if !ok {
		return fmt.Errorf("papi: target %q is not instrumentable: PAPI requires source code access", target.Name())
	}
	if n := len(cfg.ProgrammableEvents()); n > 4 {
		return fmt.Errorf("papi: event set of %d programmable events exceeds the %d hardware counters", n, 4)
	}
	// Classic PAPI presets cover the core PMU only; uncore access needs the
	// papi-libpfm4 component stack this baseline does not model.
	if unc := cfg.UncoreEvents(); len(unc) > 0 {
		return fmt.Errorf("papi: uncore event %v has no PAPI preset", unc[0])
	}
	t.cfg = cfg
	t.events = cfg.Events
	t.totals = make([]uint64, len(cfg.Events))
	points := t.Points
	if points <= 0 {
		points = DefaultPoints
	}
	every := sp.Script().TotalInstr() / uint64(points)
	if every == 0 {
		every = 1
	}

	// PAPI_library_init + PAPI_create_eventset + PAPI_start at the top of
	// main: library setup work, then one perf_event_open per event.
	prelude := []kernel.Op{common.FormatOp(InitInstr)}
	for _, ev := range cfg.Events {
		ev := ev
		prelude = append(prelude, kernel.OpSyscall{
			Name: "perf_event_open",
			Fn: func(k *kernel.Kernel, p *kernel.Process) any {
				pe, err := k.Perf().Open(target.PID(), kernel.EventSpec{
					Event:         ev,
					ExcludeKernel: cfg.ExcludeKernel,
				})
				if err != nil {
					return err
				}
				t.pes = append(t.pes, pe)
				return nil
			},
		})
	}
	sp.Instrument(prelude, every, t.strategicPoint)
	return nil
}

// strategicPoint emits the operations of one instrumented read site:
// PAPI_read (one read syscall per event in the set) followed by the
// harness's logging of the values.
func (t *Tool) strategicPoint(k *kernel.Kernel, p *kernel.Process) []kernel.Op {
	if len(t.pes) != len(t.events) {
		return nil // library init failed; nothing to read
	}
	values := make([]uint64, len(t.pes))
	ops := make([]kernel.Op, 0, len(t.pes)+2)
	for i, pe := range t.pes {
		i, pe := i, pe
		ops = append(ops, kernel.OpSyscall{Name: "read", Fn: func(k *kernel.Kernel, p *kernel.Process) any {
			v, _, _ := k.Perf().Read(pe)
			values[i] = v
			if i == len(t.pes)-1 {
				t.samples = append(t.samples, t.tracker.Sample(k.Now(), values))
				copy(t.totals, values)
			}
			return nil
		}})
	}
	ops = append(ops, common.LogPointOp(0), common.WriteOp(LogWriteCost))
	return ops
}

// Collect implements monitor.Tool: totals are the last read's absolute
// values (PAPI counts precisely; its cost is how it reads).
func (t *Tool) Collect() monitor.Result {
	res := monitor.Result{
		Tool:    t.Name(),
		Events:  t.events,
		Samples: t.samples,
		Totals:  make(map[isa.Event]uint64, len(t.events)),
	}
	for i, ev := range t.events {
		res.Totals[ev] = t.totals[i]
	}
	return res
}
