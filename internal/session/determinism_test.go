package session_test

import (
	"bytes"
	"fmt"
	"testing"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/telemetry"
	"kleb/internal/workload"
)

// telemetryWorkload is small enough that a batch of instrumented runs at
// several worker counts stays fast.
func telemetryWorkload() workload.Script {
	return workload.Synthetic{
		Name:       "tel",
		TotalInstr: 50_000_000,
		Footprint:  256 << 10,
	}.Script()
}

// telemetrySpecs builds n fully-instrumented kleb runs with decorrelated
// seeds, returning the specs and their private sinks.
func telemetrySpecs(n int) ([]session.Spec, []*telemetry.Sink) {
	specs := make([]session.Spec, n)
	sinks := make([]*telemetry.Sink, n)
	for i := range specs {
		sinks[i] = telemetry.New()
		specs[i] = session.Spec{
			Profile:   machine.Nehalem(),
			Seed:      session.DeriveSeed(99, i),
			NewTarget: newTargetFactory(telemetryWorkload()),
			NewTool:   klebFactory,
			Config: monitor.Config{
				Events:        []isa.Event{isa.EvInstructions, isa.EvLLCMisses},
				Period:        ktime.Millisecond,
				ExcludeKernel: true,
			},
			Telemetry: sinks[i],
		}
	}
	return specs, sinks
}

// batchExport runs n instrumented specs on a pool of w workers and renders
// every telemetry artefact to bytes: per-run Chrome traces, per-run
// Prometheus text, the batch registry's Prometheus text, and the batch
// Chrome trace (run-completion events).
type batchExport struct {
	traces  [][]byte
	metrics [][]byte
	batchMx []byte
	batchTr []byte
}

func runBatch(t *testing.T, n, w int) batchExport {
	t.Helper()
	specs, sinks := telemetrySpecs(n)
	batch := telemetry.New()
	sched := session.Scheduler{Workers: w, Telemetry: batch}
	if err := session.FirstErr(sched.Run(specs)); err != nil {
		t.Fatal(err)
	}
	var ex batchExport
	for _, s := range sinks {
		var tr, mx bytes.Buffer
		if err := s.WriteChromeTrace(&tr); err != nil {
			t.Fatal(err)
		}
		if err := s.WritePrometheus(&mx); err != nil {
			t.Fatal(err)
		}
		if tr.Len() == 0 || mx.Len() == 0 {
			t.Fatal("instrumented run produced empty telemetry")
		}
		ex.traces = append(ex.traces, tr.Bytes())
		ex.metrics = append(ex.metrics, mx.Bytes())
	}
	var bm, bt bytes.Buffer
	if err := batch.WritePrometheus(&bm); err != nil {
		t.Fatal(err)
	}
	if err := batch.WriteChromeTrace(&bt); err != nil {
		t.Fatal(err)
	}
	ex.batchMx = bm.Bytes()
	ex.batchTr = bt.Bytes()
	return ex
}

// TestTelemetryDeterminismAcrossWorkers is the PR's core guarantee: the
// per-run trace and metrics of every Spec are byte-identical whether the
// batch ran serially or on 2 or 8 workers, and the batch-level aggregate
// registry is worker-count independent too.
func TestTelemetryDeterminismAcrossWorkers(t *testing.T) {
	const n = 6
	ref := runBatch(t, n, 1)
	for _, w := range []int{2, 8} {
		got := runBatch(t, n, w)
		for i := 0; i < n; i++ {
			if !bytes.Equal(ref.traces[i], got.traces[i]) {
				t.Errorf("run %d: Chrome trace differs between 1 and %d workers", i, w)
			}
			if !bytes.Equal(ref.metrics[i], got.metrics[i]) {
				t.Errorf("run %d: Prometheus text differs between 1 and %d workers:\n%s\nvs\n%s",
					i, w, ref.metrics[i], got.metrics[i])
			}
		}
		if !bytes.Equal(ref.batchMx, got.batchMx) {
			t.Errorf("batch registry differs between 1 and %d workers:\n%s\nvs\n%s",
				w, ref.batchMx, got.batchMx)
		}
	}
}

// TestTelemetryDeterminismAcrossRepeats re-runs the same batch at a fixed
// worker count and demands every artefact — including the batch trace with
// its worker-slot attribution — replays byte for byte.
func TestTelemetryDeterminismAcrossRepeats(t *testing.T) {
	const n = 4
	for _, w := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			a, b := runBatch(t, n, w), runBatch(t, n, w)
			for i := 0; i < n; i++ {
				if !bytes.Equal(a.traces[i], b.traces[i]) {
					t.Errorf("run %d: trace not reproducible", i)
				}
				if !bytes.Equal(a.metrics[i], b.metrics[i]) {
					t.Errorf("run %d: metrics not reproducible", i)
				}
			}
			if !bytes.Equal(a.batchMx, b.batchMx) {
				t.Error("batch registry not reproducible")
			}
			if !bytes.Equal(a.batchTr, b.batchTr) {
				t.Error("batch trace (run events) not reproducible at fixed worker count")
			}
		})
	}
}

// TestTelemetryDeterminismBatchMetricsOnly covers the default Scheduler
// path, where specs carry no sink and the scheduler injects metrics-only
// sub-sinks: the merged aggregate must not depend on the worker count.
func TestTelemetryDeterminismBatchMetricsOnly(t *testing.T) {
	run := func(w int) []byte {
		specs, _ := telemetrySpecs(5)
		for i := range specs {
			specs[i].Telemetry = nil
		}
		batch := telemetry.MetricsOnly()
		sched := session.Scheduler{Workers: w, Telemetry: batch}
		if err := session.FirstErr(sched.Run(specs)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := batch.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := run(1)
	if reg := run(1); !bytes.Equal(ref, reg) {
		t.Fatal("serial batch aggregate not reproducible")
	}
	for _, w := range []int{2, 8} {
		if got := run(w); !bytes.Equal(ref, got) {
			t.Errorf("batch aggregate differs between 1 and %d workers:\n%s\nvs\n%s", w, ref, got)
		}
	}
}
