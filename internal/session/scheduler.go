package session

import (
	"errors"
	"runtime"
	"sync"

	"kleb/internal/telemetry"
)

// Scheduler executes batches of independent Specs across a fixed worker
// pool. Every run in a batch is a self-contained simulation whose outcome
// depends only on its Spec (most importantly its seed), so results are
// bit-identical regardless of worker count or completion order; the
// returned slice is always index-ordered to match the input.
type Scheduler struct {
	// Workers is the pool size; 0 or negative selects GOMAXPROCS.
	Workers int
	// Telemetry, when set, is the batch-level sink: each Spec lacking its
	// own sink gets a private metrics-only sub-sink whose registry is merged
	// here after the batch (merges are commutative, so the aggregate is
	// worker-count independent), and one run-completion trace event is
	// recorded per Spec in index order. Nil falls back to the process-wide
	// sink installed with SetBatchTelemetry.
	Telemetry *telemetry.Sink
}

// Outcome pairs one Spec's result with its batch position. A failed run
// carries its error here instead of aborting the rest of the batch.
type Outcome struct {
	// Index is the position of the originating Spec in the batch.
	Index int
	// Run is the result (nil when Err is set).
	Run *Result
	// Err is the run's failure, if any.
	Err error
}

// batchMu serializes merges into the process-wide batch sink; batchSink is
// that sink (see SetBatchTelemetry).
var (
	batchMu   sync.Mutex
	batchSink *telemetry.Sink // guarded by batchMu
)

// SetBatchTelemetry installs a process-wide batch sink that every Scheduler
// without an explicit Telemetry field aggregates into. The binaries use it
// to observe experiment runners that construct their own Schedulers. Nil
// uninstalls.
func SetBatchTelemetry(s *telemetry.Sink) {
	batchMu.Lock()
	batchSink = s
	batchMu.Unlock()
}

// BatchTelemetry returns the process-wide batch sink (nil when unset).
func BatchTelemetry() *telemetry.Sink {
	batchMu.Lock()
	defer batchMu.Unlock()
	return batchSink
}

// batch resolves the effective batch sink for this scheduler.
func (s Scheduler) batch() *telemetry.Sink {
	if s.Telemetry != nil {
		return s.Telemetry
	}
	return BatchTelemetry()
}

// workers resolves the configured pool size.
func (s Scheduler) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// minRunsPerWorker is the striping threshold: below it, the per-goroutine
// setup and the load imbalance of a static assignment swamp any overlap
// (BENCH_experiments.json recorded the sweep's 4-run batch at 14.98 s
// parallel vs 13.71 s serial before this bound existed).
const minRunsPerWorker = 2

// poolSize resolves the pool actually used for an n-run batch: the
// configured worker count, clamped so every worker receives at least
// minRunsPerWorker runs. Both ForEach's fan-out and Run's worker-slot
// telemetry derive from this one function, so the reported index-to-worker
// mapping stays truthful when the clamp engages. Results are seed-determined
// and bit-identical at any pool size, so the clamp is purely a scheduling
// decision.
func (s Scheduler) poolSize(n int) int {
	w := s.workers()
	if max := n / minRunsPerWorker; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every Spec in the batch over the worker pool and returns
// the outcomes in Spec order.
func (s Scheduler) Run(specs []Spec) []Outcome {
	batch := s.batch()
	var subs []*telemetry.Sink
	if batch != nil {
		subs = make([]*telemetry.Sink, len(specs))
	}
	out := make([]Outcome, len(specs))
	s.ForEach(len(specs), func(i int) {
		spec := specs[i]
		if subs != nil && spec.Telemetry == nil {
			subs[i] = telemetry.MetricsOnly()
			spec.Telemetry = subs[i]
		}
		r, err := Run(spec)
		out[i] = Outcome{Index: i, Run: r, Err: err}
	})
	if batch != nil {
		w := s.poolSize(len(specs))
		batchMu.Lock()
		for i := range specs {
			sub := subs[i]
			if sub == nil {
				sub = specs[i].Telemetry
			}
			// A label-dimension conflict means run i's sink disagrees with
			// the batch taxonomy; surface it on that run's outcome instead
			// of silently blending its counts.
			if err := batch.Merge(sub); err != nil {
				out[i].Err = errors.Join(out[i].Err, err)
			}
			// Under ForEach's striped assignment, spec i ran on worker i mod w.
			slot := 0
			if w > 1 {
				slot = i % w
			}
			batch.RunDone(i, slot, out[i].Err != nil)
		}
		batchMu.Unlock()
	}
	return out
}

// ForEach invokes fn(i) for every i in [0, n) across the worker pool and
// returns once all invocations complete. fn is called concurrently from
// distinct goroutines and must only touch index-private state (the pattern
// every experiment runner follows: write results into slot i of a
// preallocated slice). Cluster experiments and the facade fan out through
// this when their jobs are not plain Specs.
//
// The assignment is static and striped: worker g executes indices g, g+w,
// g+2w, ... in order, with w the clamped pool from poolSize (small batches
// run serial or on a reduced pool; see minRunsPerWorker). Striping keeps
// the mapping from index to worker a pure function of (n, Workers) — no
// channel race decides placement — which is what lets batch telemetry
// report a truthful, reproducible worker slot per run.
func (s Scheduler) ForEach(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	w := s.poolSize(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += w {
				fn(i)
			}
		}(g)
	}
	wg.Wait()
}

// Stripe returns the indices of [0, n) that ForEach's striped assignment
// gives worker g of w: g, g+w, g+2w, ... Exposed so layers that manage
// their own long-lived workers (the fleet daemon's shards) reuse the exact
// placement function instead of re-deriving it, keeping any reported
// index-to-worker mapping truthful at every worker count.
func Stripe(n, w, g int) []int {
	if n <= 0 || w <= 0 || g < 0 || g >= w {
		return nil
	}
	out := make([]int, 0, (n-g+w-1)/w)
	for i := g; i < n; i += w {
		out = append(out, i)
	}
	return out
}

// FirstErr returns the first failed outcome's error, for callers that
// treat any failure as fatal.
func FirstErr(outs []Outcome) error {
	for _, o := range outs {
		if o.Err != nil {
			return o.Err
		}
	}
	return nil
}

// DeriveSeed deterministically derives the i'th run seed from a base seed
// using a SplitMix64 finalizer, so neighbouring indices yield decorrelated
// noise streams and a batch's seeds never depend on worker count or
// completion order. DeriveSeed(base, 0) != base, so baseline and derived
// runs do not collide.
func DeriveSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*(uint64(i)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
