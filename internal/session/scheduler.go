package session

import (
	"runtime"
	"sync"
)

// Scheduler executes batches of independent Specs across a fixed worker
// pool. Every run in a batch is a self-contained simulation whose outcome
// depends only on its Spec (most importantly its seed), so results are
// bit-identical regardless of worker count or completion order; the
// returned slice is always index-ordered to match the input.
type Scheduler struct {
	// Workers is the pool size; 0 or negative selects GOMAXPROCS.
	Workers int
}

// Outcome pairs one Spec's result with its batch position. A failed run
// carries its error here instead of aborting the rest of the batch.
type Outcome struct {
	// Index is the position of the originating Spec in the batch.
	Index int
	// Run is the result (nil when Err is set).
	Run *Result
	// Err is the run's failure, if any.
	Err error
}

// workers resolves the effective pool size.
func (s Scheduler) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes every Spec in the batch over the worker pool and returns
// the outcomes in Spec order.
func (s Scheduler) Run(specs []Spec) []Outcome {
	out := make([]Outcome, len(specs))
	s.ForEach(len(specs), func(i int) {
		r, err := Run(specs[i])
		out[i] = Outcome{Index: i, Run: r, Err: err}
	})
	return out
}

// ForEach invokes fn(i) for every i in [0, n) across the worker pool and
// returns once all invocations complete. fn is called concurrently from
// distinct goroutines and must only touch index-private state (the pattern
// every experiment runner follows: write results into slot i of a
// preallocated slice). Cluster experiments and the facade fan out through
// this when their jobs are not plain Specs.
func (s Scheduler) ForEach(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	w := s.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// FirstErr returns the first failed outcome's error, for callers that
// treat any failure as fatal.
func FirstErr(outs []Outcome) error {
	for _, o := range outs {
		if o.Err != nil {
			return o.Err
		}
	}
	return nil
}

// DeriveSeed deterministically derives the i'th run seed from a base seed
// using a SplitMix64 finalizer, so neighbouring indices yield decorrelated
// noise streams and a batch's seeds never depend on worker count or
// completion order. DeriveSeed(base, 0) != base, so baseline and derived
// runs do not collide.
func DeriveSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*(uint64(i)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
