package session_test

import (
	"bytes"
	"strings"
	"testing"

	"kleb/internal/isa"
	"kleb/internal/kleb"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/trace"
	"kleb/internal/workload"
)

func TestDeriveSeed(t *testing.T) {
	// Distinct indices from one base must not collide, and the derivation
	// must be a pure function of (base, index).
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := session.DeriveSeed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: indices %d and %d both derive %d", prev, i, s)
		}
		seen[s] = i
		if s != session.DeriveSeed(1, i) {
			t.Fatalf("DeriveSeed(1, %d) not stable", i)
		}
	}
	// Index 0 must not degenerate to the base itself.
	if session.DeriveSeed(7, 0) == 7 {
		t.Error("DeriveSeed(base, 0) must differ from base")
	}
	// Different bases diverge.
	if session.DeriveSeed(1, 5) == session.DeriveSeed(2, 5) {
		t.Error("bases 1 and 2 derive the same seed at index 5")
	}
}

// batchSpecs builds a mixed batch of monitored runs whose outputs will be
// compared byte for byte across worker counts.
func batchSpecs(base uint64) []session.Spec {
	periods := []ktime.Duration{ktime.Millisecond, 2 * ktime.Millisecond, 5 * ktime.Millisecond}
	var specs []session.Spec
	for i := 0; i < 6; i++ {
		script := workload.Synthetic{
			Name:       "det-target",
			TotalInstr: 120_000_000,
			Footprint:  128 << 10,
		}.Script()
		specs = append(specs, session.Spec{
			Profile:    machine.Nehalem(),
			Seed:       session.DeriveSeed(base, i),
			TargetName: "det-target",
			NewTarget:  newTargetFactory(script),
			NewTool:    func() (monitor.Tool, error) { return kleb.New(), nil },
			Config: monitor.Config{
				Events:        []isa.Event{isa.EvInstructions, isa.EvLoads, isa.EvLLCMisses},
				Period:        periods[i%len(periods)],
				ExcludeKernel: true,
			},
		})
	}
	return specs
}

func TestSchedulerDeterministicAcrossWorkerCounts(t *testing.T) {
	// The acceptance bar for the parallel scheduler: the same Spec batch on
	// a fixed base seed produces byte-identical CSV output from
	// internal/trace no matter how many workers execute it.
	render := func(workers int) []byte {
		outs := session.Scheduler{Workers: workers}.Run(batchSpecs(99))
		var buf bytes.Buffer
		for _, o := range outs {
			if o.Err != nil {
				t.Fatalf("workers=%d index=%d: %v", workers, o.Index, o.Err)
			}
			if err := trace.WriteCSV(&buf, o.Run.Result.Events, o.Run.Result.Samples); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	serial := render(1)
	if len(serial) == 0 {
		t.Fatal("no CSV output")
	}
	for _, workers := range []int{2, 8} {
		if got := render(workers); !bytes.Equal(serial, got) {
			t.Errorf("workers=%d: CSV output differs from serial (lens %d vs %d)",
				workers, len(serial), len(got))
		}
	}
}

func TestSchedulerIndexOrderAndErrorIsolation(t *testing.T) {
	specs := batchSpecs(5)[:3]
	// Poison the middle spec: its failure must not abort its neighbours.
	specs[1].NewTarget = nil
	outs := session.Scheduler{Workers: 8}.Run(specs)
	if len(outs) != 3 {
		t.Fatalf("outcomes: %d", len(outs))
	}
	for i, o := range outs {
		if o.Index != i {
			t.Errorf("outcome %d carries index %d", i, o.Index)
		}
	}
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "NewTarget") {
		t.Errorf("poisoned spec error: %v", outs[1].Err)
	}
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Errorf("healthy specs failed: %v / %v", outs[0].Err, outs[2].Err)
	}
	if session.FirstErr(outs) != outs[1].Err {
		t.Error("FirstErr should surface the poisoned run")
	}
}

func TestSchedulerForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		hit := make([]int, 50)
		session.Scheduler{Workers: workers}.ForEach(len(hit), func(i int) { hit[i]++ })
		for i, n := range hit {
			if n != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, n)
			}
		}
	}
}
