package session_test

import (
	"strings"
	"testing"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/kleb"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/workload"
)

func smallWorkload() workload.Script {
	return workload.Synthetic{
		Name:       "small",
		TotalInstr: 300_000_000, // ~60ms at CPI≈0.5
		Footprint:  512 << 10,
	}.Script()
}

func newTargetFactory(s workload.Script) func() kernel.Program {
	return func() kernel.Program { return s.Program() }
}

func klebFactory() (monitor.Tool, error) { return kleb.New(), nil }

func TestBaselineRunCompletes(t *testing.T) {
	res, err := session.Run(session.Spec{
		Profile:    machine.Nehalem(),
		Seed:       1,
		TargetName: "small",
		NewTarget:  newTargetFactory(smallWorkload()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed == 0 {
		t.Fatal("zero elapsed time")
	}
	if res.TargetUser == 0 {
		t.Error("no user time accumulated")
	}
	t.Logf("baseline elapsed=%v user=%v kern=%v", res.Elapsed, res.TargetUser, res.TargetKern)
}

func TestBaselineDeterministicAcrossRuns(t *testing.T) {
	run := func() ktime.Duration {
		res, err := session.Run(session.Spec{
			Profile:   machine.Nehalem(),
			Seed:      42,
			NewTarget: newTargetFactory(smallWorkload()),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different elapsed: %v vs %v", a, b)
	}
}

func TestKlebRunProducesSamples(t *testing.T) {
	res, err := session.Run(session.Spec{
		Profile:   machine.Nehalem(),
		Seed:      7,
		NewTarget: newTargetFactory(smallWorkload()),
		NewTool:   klebFactory,
		Config: monitor.Config{
			Events:        []isa.Event{isa.EvInstructions, isa.EvLLCMisses, isa.EvLoads, isa.EvStores},
			Period:        ktime.Millisecond,
			ExcludeKernel: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Samples) < 10 {
		t.Fatalf("expected a healthy sample series, got %d samples", len(res.Result.Samples))
	}
	instr := res.Result.Totals[isa.EvInstructions]
	if instr < 290_000_000 || instr > 310_000_000 {
		t.Errorf("instruction total %d not within 3%% of 300M", instr)
	}
	t.Logf("kleb samples=%d elapsed=%v instr=%d", len(res.Result.Samples), res.Elapsed, instr)
}

func TestKlebOverheadIsSmall(t *testing.T) {
	base, err := session.Run(session.Spec{
		Profile:   machine.Nehalem(),
		Seed:      9,
		NewTarget: newTargetFactory(smallWorkload()),
	})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := session.Run(session.Spec{
		Profile:   machine.Nehalem(),
		Seed:      9,
		NewTarget: newTargetFactory(smallWorkload()),
		NewTool:   klebFactory,
		Config: monitor.Config{
			Events:        []isa.Event{isa.EvInstructions, isa.EvLLCMisses},
			Period:        10 * ktime.Millisecond,
			ExcludeKernel: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	overhead := 100 * (float64(mon.Elapsed) - float64(base.Elapsed)) / float64(base.Elapsed)
	if overhead < 0 {
		t.Errorf("negative overhead %f%%", overhead)
	}
	if overhead > 5 {
		t.Errorf("K-LEB overhead %f%% unreasonably high at 10ms", overhead)
	}
	t.Logf("kleb overhead at 10ms: %.3f%% (base=%v mon=%v)", overhead, base.Elapsed, mon.Elapsed)
}

func TestStagedLifecycle(t *testing.T) {
	tool := kleb.New()
	s := session.New(session.Spec{
		Profile:    machine.Nehalem(),
		Seed:       3,
		TargetName: "staged",
		NewTarget:  newTargetFactory(smallWorkload()),
		NewTool:    session.Use(tool),
		Config: monitor.Config{
			Events:        []isa.Event{isa.EvInstructions, isa.EvLoads},
			Period:        ktime.Millisecond,
			ExcludeKernel: true,
		},
	})
	m, err := s.Boot()
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Kernel() == nil {
		t.Fatal("Boot returned no machine")
	}
	if err := s.Attach(); err != nil {
		t.Fatal(err)
	}
	if err := s.Drive(); err != nil {
		t.Fatal(err)
	}
	res := s.Drain()
	if res.Tool != monitor.Tool(tool) {
		t.Error("Drain should surface the attached tool instance")
	}
	if res.Target == nil || res.Target.Name() != "staged" {
		t.Errorf("target: %+v", res.Target)
	}
	if len(res.Result.Samples) == 0 {
		t.Error("staged lifecycle collected nothing")
	}
	// The whole-lifecycle shortcut on the same spec replays identically.
	again, err := session.Run(session.Spec{
		Profile:    machine.Nehalem(),
		Seed:       3,
		TargetName: "staged",
		NewTarget:  newTargetFactory(smallWorkload()),
		NewTool:    klebFactory,
		Config: monitor.Config{
			Events:        []isa.Event{isa.EvInstructions, isa.EvLoads},
			Period:        ktime.Millisecond,
			ExcludeKernel: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.Elapsed != res.Elapsed {
		t.Errorf("staged vs one-shot elapsed: %v vs %v", res.Elapsed, again.Elapsed)
	}
}

func TestRunRejectsMissingTarget(t *testing.T) {
	_, err := session.Run(session.Spec{Profile: machine.Nehalem()})
	if err == nil || !strings.Contains(err.Error(), "NewTarget") {
		t.Errorf("got %v", err)
	}
}

func TestRunRejectsBadConfigWithTool(t *testing.T) {
	_, err := session.Run(session.Spec{
		Profile:   machine.Nehalem(),
		NewTarget: newTargetFactory(smallWorkload()),
		NewTool:   klebFactory,
		Config:    monitor.Config{}, // invalid
	})
	if err == nil {
		t.Error("invalid config with a tool should fail")
	}
}

func TestRunWithLimit(t *testing.T) {
	// A run whose target never exits must stop at the Limit rather than
	// hang; it then errors because the target is still alive.
	s := smallWorkload()
	_, err := session.Run(session.Spec{
		Profile:   machine.Nehalem(),
		NewTarget: newTargetFactory(s),
		Limit:     ktime.Millisecond, // far too short for the workload
	})
	if err == nil || !strings.Contains(err.Error(), "did not exit") {
		t.Errorf("got %v", err)
	}
}

func TestNoiseChangesTiming(t *testing.T) {
	base, err := session.Run(session.Spec{
		Profile: machine.Nehalem(), Seed: 5, NewTarget: newTargetFactory(smallWorkload()),
	})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := session.Run(session.Spec{
		Profile: machine.Nehalem(), Seed: 5, NewTarget: newTargetFactory(smallWorkload()),
		Noise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Elapsed <= base.Elapsed {
		t.Errorf("OS noise should lengthen the run: %v vs %v", noisy.Elapsed, base.Elapsed)
	}
	if noisy.Target.Switches() <= base.Target.Switches() {
		t.Error("noise should force extra context switches")
	}
}
