package session

import (
	"kleb/internal/ktime"
	"kleb/internal/machine"
)

// ClusterSpec describes one multi-core run: boot a shared-LLC socket,
// let Place spawn work (and attach tools, via StartTarget) on its cores,
// then drive the co-simulation.
type ClusterSpec struct {
	// Profile is the per-core machine profile.
	Profile machine.Profile
	// Seed drives the whole socket's noise.
	Seed uint64
	// Cores is the socket width (default 2).
	Cores int
	// Place spawns processes on the booted cores before anything runs.
	Place func(cores []*machine.Machine) error
	// Drive, when set, phases the run itself (e.g. run to an instant,
	// inject a neighbour, continue); when nil the cluster runs to
	// completion.
	Drive func(c *machine.Cluster) error
	// Window is the lockstep co-simulation window (0 = default).
	Window ktime.Duration
	// Limit caps simulated time (0 = none).
	Limit ktime.Duration
}

// RunCluster boots the socket, places the work and drives it, returning
// the cluster for post-run inspection.
func RunCluster(spec ClusterSpec) (*machine.Cluster, error) {
	cores := spec.Cores
	if cores <= 0 {
		cores = 2
	}
	c := machine.BootCluster(spec.Profile, spec.Seed, cores)
	if spec.Place != nil {
		if err := spec.Place(c.Cores()); err != nil {
			return nil, err
		}
	}
	if spec.Drive != nil {
		if err := spec.Drive(c); err != nil {
			return nil, err
		}
		return c, nil
	}
	if err := c.Run(spec.Window, spec.Limit); err != nil {
		return nil, err
	}
	return c, nil
}
