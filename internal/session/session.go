// Package session is the canonical run layer of the simulator (DESIGN.md
// S23): it owns the machine-boot → tool-attach → workload-run →
// sample-drain lifecycle that every run path shares. A Spec fully describes
// one run; Session executes its lifecycle stage by stage; Scheduler fans a
// batch of Specs out over a worker pool with deterministic results. The
// public facade, all experiment runners and both binaries run through this
// package — none of them boots machines or attaches tools directly.
package session

import (
	"fmt"

	"kleb/internal/fault"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/telemetry"
	"kleb/internal/workload"
)

// Spec fully describes one run: which machine, which workload, which tool,
// which monitoring configuration, and the seed that makes it reproducible.
type Spec struct {
	// Profile is the machine to boot.
	Profile machine.Profile
	// Seed drives all simulation noise; identical seeds replay identically.
	Seed uint64
	// TargetName names the monitored process (default "target").
	TargetName string
	// NewTarget creates the target's program. It is invoked once per run,
	// inside the worker executing the run.
	NewTarget func() kernel.Program
	// NewTool creates the monitor under test; nil runs an unmonitored
	// baseline. Batches must build a fresh tool per run — tools are
	// stateful — which is why the Spec carries a factory, not an instance.
	NewTool func() (monitor.Tool, error)
	// Config is the monitoring request (ignored when NewTool is nil).
	Config monitor.Config
	// Noise adds the background OS-noise daemon.
	Noise bool
	// Limit caps simulated time as a runaway guard (0 = none).
	Limit ktime.Duration
	// OnBoot, when set, runs right after the machine boots and before any
	// process is spawned — the hook for attaching debug instrumentation
	// (syscall tracing, state dumps) or arming bare kernel timers.
	OnBoot func(*machine.Machine)
	// Telemetry, when set, receives the run's trace events and metrics (see
	// internal/telemetry). The sink is attached to the kernel at boot, before
	// OnBoot, so every event of the run is captured. It must be private to
	// this run: a Sink is single-owner and never synchronized.
	Telemetry *telemetry.Sink
	// Faults, when set, is the run's fault-injection plan (see
	// internal/fault). Like Telemetry it is installed at boot and must be
	// private to this run: a Plan carries mutable decision state.
	Faults *fault.Plan
}

// Use wraps an existing tool instance as a NewTool factory, for single-run
// specs whose caller wants to inspect the instance afterwards. Never share
// one instance across a batch: tools are stateful.
func Use(t monitor.Tool) func() (monitor.Tool, error) {
	return func() (monitor.Tool, error) { return t, nil }
}

// Result is the outcome of one run.
type Result struct {
	// Tool is the instantiated tool (nil for baselines), exposed so callers
	// can read tool-specific state such as effective periods.
	Tool monitor.Tool
	// Result is the tool's collected data (zero value for baselines).
	Result monitor.Result
	// Elapsed is the target's wall-clock lifetime.
	Elapsed ktime.Duration
	// TargetUser/TargetKern are the target's CPU time split.
	TargetUser ktime.Duration
	TargetKern ktime.Duration
	// Machine is the booted machine, for post-run inspection.
	Machine *machine.Machine
	// Target is the monitored process.
	Target *kernel.Process
}

// Session drives one Spec through its lifecycle. The stages are exposed
// individually (Boot, Attach, Drive, Drain) for callers that need to
// interleave their own work; Run chains all four.
type Session struct {
	spec    Spec
	machine *machine.Machine
	tool    monitor.Tool
	target  *kernel.Process

	// lastStage is the virtual instant the previous lifecycle stage ended,
	// for telemetry stage spans.
	lastStage ktime.Time
}

// stage emits the completion of one lifecycle stage to the spec's sink.
func (s *Session) stage(name string) {
	if s.spec.Telemetry == nil {
		return
	}
	now := s.machine.Kernel().Now()
	s.spec.Telemetry.Stage(now, name, now.Sub(s.lastStage))
	s.lastStage = now
}

// New prepares a session for spec without booting anything yet.
func New(spec Spec) *Session { return &Session{spec: spec} }

// Boot validates the spec, boots the machine, runs the OnBoot hook and
// starts the noise daemon. It is idempotent once successful.
func (s *Session) Boot() (*machine.Machine, error) {
	if s.machine != nil {
		return s.machine, nil
	}
	if s.spec.NewTarget == nil {
		return nil, fmt.Errorf("session: Spec.NewTarget is nil")
	}
	if s.spec.NewTool != nil {
		if err := s.spec.Config.Validate(); err != nil {
			return nil, err
		}
	}
	m := machine.Boot(s.spec.Profile, s.spec.Seed)
	if s.spec.Telemetry != nil {
		m.Kernel().SetTelemetry(s.spec.Telemetry)
	}
	if s.spec.Faults != nil {
		m.Kernel().SetFaults(s.spec.Faults)
	}
	if s.spec.OnBoot != nil {
		s.spec.OnBoot(m)
	}
	if s.spec.Noise {
		m.Kernel().SpawnDaemon("os-noise", workload.OSNoise(s.spec.Seed^0x9e37))
	}
	s.machine = m
	s.stage("boot")
	return m, nil
}

// Attach creates the target (stopped), instantiates and attaches the tool,
// and resumes the target according to the tool's launch convention.
func (s *Session) Attach() error {
	if _, err := s.Boot(); err != nil {
		return err
	}
	if s.target != nil {
		return nil
	}
	name := s.spec.TargetName
	if name == "" {
		name = "target"
	}
	var tool monitor.Tool
	if s.spec.NewTool != nil {
		t, err := s.spec.NewTool()
		if err != nil {
			return err
		}
		tool = t
	}
	if s.spec.NewTarget == nil {
		return fmt.Errorf("session: spec for target %q has no NewTarget factory", name)
	}
	target, err := StartTarget(s.machine, name, s.spec.NewTarget(), tool, s.spec.Config)
	if err != nil {
		return err
	}
	s.tool = tool
	s.target = target
	s.stage("attach")
	return nil
}

// Drive runs the kernel until all processes exit (or Limit is reached) and
// verifies the target completed.
func (s *Session) Drive() error {
	if err := s.Attach(); err != nil {
		return err
	}
	if err := s.machine.Kernel().Run(s.spec.Limit); err != nil {
		return fmt.Errorf("session: run under %s: %w", toolName(s.tool), err)
	}
	if !s.target.Exited() {
		return fmt.Errorf("session: target %q did not exit (state %v)", s.target.Name(), s.target.State())
	}
	s.stage("drive")
	return nil
}

// Drain collects the tool's results and packages the run outcome.
func (s *Session) Drain() *Result {
	res := &Result{
		Tool:       s.tool,
		Elapsed:    s.target.Runtime(),
		TargetUser: s.target.UserTime(),
		TargetKern: s.target.KernelTime(),
		Machine:    s.machine,
		Target:     s.target,
	}
	if s.tool != nil {
		res.Result = s.tool.Collect()
	}
	s.stage("drain")
	return res
}

// Run executes the whole lifecycle: boot, attach, drive, drain.
//
//klebvet:artifact
func (s *Session) Run() (*Result, error) {
	if err := s.Drive(); err != nil {
		return nil, err
	}
	return s.Drain(), nil
}

// Run executes one Spec start to finish.
func Run(spec Spec) (*Result, error) { return New(spec).Run() }

// StartTarget spawns prog stopped under name on m, attaches tool to it
// (when tool is non-nil) and resumes the target unless the tool's launch
// convention has the tool resume it itself. This is the single place the
// `tool ./program` enable-on-exec pattern lives; cluster experiments reuse
// it to arm monitors on individual cores.
func StartTarget(m *machine.Machine, name string, prog kernel.Program, tool monitor.Tool, cfg monitor.Config) (*kernel.Process, error) {
	// The target is created stopped so the tool can arm itself before the
	// target's first instruction, then resumed behind any tool processes
	// already in the run queue.
	target := m.Kernel().SpawnStopped(name, prog)
	if tool != nil {
		// Raw encodings resolve against the booted machine's event table —
		// this is the one place a request by architectural encoding becomes a
		// request by event class, so every tool below sees a uniform config.
		resolved, err := cfg.ResolveRaw(m.Profile().Events)
		if err != nil {
			return nil, fmt.Errorf("session: attach %s: %w", tool.Name(), err)
		}
		if err := tool.Attach(m, target, prog, resolved); err != nil {
			return nil, fmt.Errorf("session: attach %s: %w", tool.Name(), err)
		}
	}
	if tr, ok := tool.(monitor.TargetResumer); tool == nil || !ok || !tr.ResumesTarget() {
		m.Kernel().Resume(target)
	}
	return target, nil
}

func toolName(t monitor.Tool) string {
	if t == nil {
		return "baseline"
	}
	return t.Name()
}
