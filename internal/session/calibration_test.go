package session_test

import (
	"testing"

	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/session"
	"kleb/internal/workload"
)

// Calibration guards: the paper-facing workloads must stay in their
// calibrated duration bands (DESIGN.md §1), or every overhead table drifts.
// These tests exist to catch accidental recalibration when the CPU or
// kernel models change.
func TestWorkloadCalibrationBands(t *testing.T) {
	cases := []struct {
		name   string
		script workload.Script
		lo, hi ktime.Duration
	}{
		// Paper: triple-loop matmul ≈ 2s.
		{"matmul-triple", workload.NewTripleLoopMatmul().Script(),
			1800 * ktime.Millisecond, 2800 * ktime.Millisecond},
		// Paper: MKL dgemm < 100ms.
		{"matmul-dgemm", workload.NewDgemmMatmul().Script(),
			40 * ktime.Millisecond, 100 * ktime.Millisecond},
		// Paper: the Meltdown victim < 10ms.
		{"victim", workload.NewMeltdown().VictimScript(),
			2 * ktime.Millisecond, 10 * ktime.Millisecond},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := session.Run(session.Spec{
				Profile:   machine.Nehalem(),
				Seed:      13,
				NewTarget: func() kernel.Program { return c.script.Program() },
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Elapsed < c.lo || res.Elapsed > c.hi {
				t.Errorf("%s runs %v, calibrated band [%v, %v]", c.name, res.Elapsed, c.lo, c.hi)
			}
		})
	}
}

func TestLinpackGFLOPSCalibration(t *testing.T) {
	lp := workload.NewLinpack(5000)
	res, err := session.Run(session.Spec{
		Profile:   machine.Nehalem(),
		Seed:      13,
		NewTarget: func() kernel.Program { return lp.Script().Program() },
	})
	if err != nil {
		t.Fatal(err)
	}
	gflops := float64(lp.Flops()) / 1e9 / res.Elapsed.Seconds()
	// Paper Table I: 37.24 GFLOPS without profiling.
	if gflops < 35 || gflops > 40 {
		t.Errorf("LINPACK baseline %.2f GFLOPS, calibrated to ≈37.24", gflops)
	}
}
