// Package branch provides a small branch predictor model. The CPU model
// uses it to turn a workload's declared branch behaviour into mispredict
// counts and pipeline-flush penalties.
//
// Workload blocks declare a mispredict *tendency* (how hard their branches
// are to predict); the predictor converts that into an actual mispredict
// stream by running a gshare predictor over a synthetic outcome sequence
// whose entropy matches the tendency. This keeps mispredict counts
// responsive to predictor state (cold after context switches, warm during
// steady phases) instead of being a fixed percentage.
package branch

// Predictor is a gshare predictor: a global history register XORed with the
// branch address indexes a table of 2-bit saturating counters.
type Predictor struct {
	table   []uint8
	mask    uint64
	history uint64
	stats   Stats
}

// Stats accumulates prediction outcomes.
type Stats struct {
	Branches    uint64
	Mispredicts uint64
}

// MispredictRatio returns mispredicts/branches, or 0 for an idle predictor.
func (s Stats) MispredictRatio() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// New creates a predictor with 2^bits entries.
func New(bits uint) *Predictor {
	size := uint64(1) << bits
	return &Predictor{table: make([]uint8, size), mask: size - 1}
}

// Predict runs one branch with address pc and actual outcome taken,
// updating predictor state. It returns true if the branch was mispredicted.
func (p *Predictor) Predict(pc uint64, taken bool) bool {
	idx := (pc ^ p.history) & p.mask
	ctr := p.table[idx]
	predictTaken := ctr >= 2
	mis := predictTaken != taken
	if taken {
		if ctr < 3 {
			p.table[idx] = ctr + 1
		}
	} else if ctr > 0 {
		p.table[idx] = ctr - 1
	}
	p.history = ((p.history << 1) | b2u(taken)) & p.mask
	p.stats.Branches++
	if mis {
		p.stats.Mispredicts++
	}
	return mis
}

// Stats returns the accumulated statistics.
func (p *Predictor) Stats() Stats { return p.stats }

// History returns the current global history register. The CPU's memo layer
// folds it into the state-class key so a cached block cost is only replayed
// when the predictor would start from an equivalent state.
func (p *Predictor) History() uint64 { return p.history }

// ResetStats clears statistics without clearing learned state.
func (p *Predictor) ResetStats() { p.stats = Stats{} }

// FlushHistory clears the global history (modelled on a context switch);
// learned counter state survives, as it does on real hardware.
func (p *Predictor) FlushHistory() { p.history = 0 }

// SetHistory restores a previously observed history register. The CPU's
// memo layer uses it when replaying a cached block cost: a replay must
// reproduce the block's state transition, so the history advances to where
// the measured execution left it.
func (p *Predictor) SetHistory(h uint64) { p.history = h }

// State is a deep copy of the predictor's mutable state; the backing table
// slice is recycled across saves (see cache.State for the pattern).
type State struct {
	table   []uint8
	history uint64
	stats   Stats
}

// Save captures the predictor's complete mutable state into s.
func (p *Predictor) Save(s *State) {
	s.table = append(s.table[:0], p.table...)
	s.history = p.history
	s.stats = p.stats
}

// Restore rewinds the predictor to a state captured by Save.
func (p *Predictor) Restore(s *State) {
	copy(p.table, s.table)
	p.history = s.history
	p.stats = s.stats
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
