package branch

import "testing"

func TestPredictableLoopConverges(t *testing.T) {
	p := New(10)
	// 7-taken / 1-not-taken loop pattern: gshare learns it quickly.
	for i := 0; i < 8000; i++ {
		p.Predict(0x400, i%8 != 7)
	}
	p.ResetStats()
	for i := 0; i < 8000; i++ {
		p.Predict(0x400, i%8 != 7)
	}
	if r := p.Stats().MispredictRatio(); r > 0.02 {
		t.Errorf("trained predictor mispredicts %.3f of a periodic pattern", r)
	}
}

func TestRandomOutcomesNearHalf(t *testing.T) {
	p := New(12)
	seed := uint64(12345)
	next := func() bool {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed>>63 == 1
	}
	for i := 0; i < 20000; i++ {
		p.Predict(0x800, next())
	}
	if r := p.Stats().MispredictRatio(); r < 0.40 || r > 0.60 {
		t.Errorf("random stream should mispredict ≈50%%, got %.3f", r)
	}
}

func TestFlushHistoryCausesTransient(t *testing.T) {
	p := New(10)
	pattern := func(i int) bool { return i%4 != 3 }
	for i := 0; i < 4000; i++ {
		p.Predict(0x10, pattern(i))
	}
	p.ResetStats()
	for i := 0; i < 400; i++ {
		p.Predict(0x10, pattern(i))
	}
	warm := p.Stats().Mispredicts
	p.FlushHistory()
	p.ResetStats()
	for i := 0; i < 400; i++ {
		p.Predict(0x10, pattern(i))
	}
	cold := p.Stats().Mispredicts
	if cold < warm {
		t.Errorf("history flush should not improve prediction: warm=%d cold=%d", warm, cold)
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := New(8)
	for i := 0; i < 10; i++ {
		p.Predict(uint64(i)*4, true)
	}
	if p.Stats().Branches != 10 {
		t.Errorf("branches %d", p.Stats().Branches)
	}
	if (Stats{}).MispredictRatio() != 0 {
		t.Error("empty ratio should be 0")
	}
}

func TestDistinctSitesLearnIndependently(t *testing.T) {
	p := New(12)
	// Two branches with opposite constant outcomes.
	for i := 0; i < 2000; i++ {
		p.Predict(0x1000, true)
		p.Predict(0x2000, false)
	}
	p.ResetStats()
	for i := 0; i < 1000; i++ {
		p.Predict(0x1000, true)
		p.Predict(0x2000, false)
	}
	if r := p.Stats().MispredictRatio(); r > 0.05 {
		t.Errorf("constant branches should be nearly perfect, got %.3f", r)
	}
}
