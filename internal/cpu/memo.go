package cpu

import (
	"math"

	"kleb/internal/cache"
	"kleb/internal/isa"
)

// This file implements the block-cost memo layer (DESIGN.md §13). Steady
// workload phases execute thousands of *identical* blocks back to back;
// re-walking simulateMemory/simulateBranches for each one dominated the
// experiment runtime. The memo caches one Costed result per
// (block, state-class) and replays it — consuming no RNG draws and touching
// no cache, predictor or TLB state — whenever the core re-enters that class.
//
// The state class is explicit so replay is semantics-preserving by
// construction rather than by luck:
//
//   - warm: how many full footprints the block's region walk has swept
//     (0, 1, or 2+; non-memory blocks use a dedicated class). Replay is
//     only allowed at warm ≥ 2, so cold-start and warm-up transients are
//     always measured.
//   - pol: the recovery window after a context switch or interrupt
//     eviction. A disturbance opens the window at pollutionWindow and each
//     executed block closes it by one, so the k-th block after a
//     disturbance is costed in its own transient class (pol =
//     pollutionWindow+1−k) while pol = 0 is only ever measured once the
//     caches have physically refilled. Without the window, the block right
//     after the transient would freeze its still-cold cost into the steady
//     class and replay it forever. This also keeps the
//     monitoring-perturbation signal the paper measures: post-interrupt
//     blocks replay post-interrupt costs.
//   - hist: a fold of the branch predictor's global history register, so a
//     cached mispredict count is only replayed from an equivalent predictor
//     state. Replay freezes the history; measurement evolves it until it
//     revisits a seen class, after which steady phases replay indefinitely.
//
// A shared-LLC generation check (cache.Cache.Gen) rides alongside the key:
// if a sibling core touched the shared LLC since this core's last
// measurement, the entry may be stale, so the block is measured. Flush
// blocks (the covert-channel model) always measure — their whole point is
// mutating cache state.

// memoKey identifies one block cost class. isa.Block is comparable by
// design, so the key works directly as a map key with no hashing code here.
type memoKey struct {
	block isa.Block
	warm  uint8
	pol   uint8
	hist  uint8
}

// memoEntry is a cached execution: the priced result plus the bytes the
// region walk advanced, replayed arithmetically on a hit. seen counts how
// often the class has been measured; the entry only replays after
// memoConfidence measurements, keeping the latest — predictor tables and
// deep cache fill converge over more blocks than the warmth/pollution
// classes see, so the first measurement of a class can be an expensive
// outlier that must not be frozen in.
type memoEntry struct {
	cost     Costed
	swept    uint64
	postHist uint64
	seen     uint8
}

// warmNonMem is the warmth class of blocks with no memory operations.
const warmNonMem = 3

// warmReplay is the minimum warmth class at which memoization engages.
const warmReplay = 2

// pollutionWindow is how many executed blocks it takes the memo layer to
// consider cache state recovered after a context switch or interrupt
// eviction; until then blocks are costed in per-distance transient classes.
const pollutionWindow = 3

// memoConfidence is how many times a state class is measured before its
// entry is trusted for replay.
const memoConfidence = 3

// Execute prices one instruction block, replaying a memoized result when
// the core is in a state class it has already measured (see file comment)
// and running the raw model otherwise. Execute does NOT feed the PMU; the
// kernel applies counts after deciding how the block interleaves with
// timer events.
//
//klebvet:hotpath
func (c *Core) Execute(b isa.Block) Costed {
	cost, _ := c.execute(b)
	return cost
}

// ExecuteRun executes one copy of b and reports how many consecutive
// copies the caller may batch: n == max when the copy was a *stable*
// replay — one whose state-class key provably holds for the following
// copies (replay mutates no predictor/cache/RNG state, warmth saturates,
// and the pollution class was already clean) — and n == 1 otherwise.
// Only the first copy's walk advance is applied; after capping n the
// caller must account for the rest via AdvanceReplays(b, n-1).
//
//klebvet:hotpath
func (c *Core) ExecuteRun(b isa.Block, max uint64) (Costed, uint64) {
	cost, stable := c.execute(b)
	if !stable || max <= 1 {
		return cost, 1
	}
	return cost, max
}

// AdvanceReplays applies the region-walk advance of extra additional
// replayed copies of b. Valid only immediately after an ExecuteRun of b
// that returned n > 1 (it uses the walk delta of that replayed entry).
//
//klebvet:hotpath
func (c *Core) AdvanceReplays(b isa.Block, extra uint64) {
	if extra == 0 || c.replaySwept == 0 {
		return
	}
	fp := footprint(b)
	delta := c.replaySwept * extra
	base := b.Mem.Base
	c.cursors[base] = (c.cursors[base] + delta%fp) % fp
	c.swept[base] += delta
}

// preWarm installs the footprint [base, base+fp) into lvl if it fits,
// making the lines resident for a canonical probe (see execute). Called
// inside a Save/Restore bracket only, so the insertions never escape.
//
//klebvet:hotpath
func preWarm(lvl *cache.Cache, base, fp uint64) {
	if fp > lvl.Config().Size {
		return
	}
	line := lvl.Config().LineSize
	for a := base; a < base+fp; a += line {
		lvl.Access(a)
	}
}

// footprint is the effective memory footprint of b (the declared one, or
// the simulator default when the block declares none).
func footprint(b isa.Block) uint64 {
	if b.Mem.Footprint == 0 {
		return defaultFootprint
	}
	return b.Mem.Footprint
}

// execute is the common dispatch: measure through the raw model or replay
// a memo entry. The second result reports a stable replay (see ExecuteRun).
//
//klebvet:hotpath
func (c *Core) execute(b isa.Block) (Costed, bool) {
	if c.cfg.NoMemo {
		cost, _ := c.measure(b)
		return cost, false
	}
	llcGen := c.caches.LLC().Gen()
	warm := c.warmth(b)
	if b.Flushes > 0 || warm < warmReplay || llcGen != c.llcSeen {
		return c.measureSync(b), false
	}
	key := memoKey{block: b, warm: warm, pol: c.pollution, hist: histClass(c.pred.History())}
	e, ok := c.memo[key]
	if ok && e.seen >= memoConfidence {
		c.replaySwept = e.swept
		c.AdvanceReplays(b, 1)
		// Replay applies the block's recorded state transition, exactly as
		// AdvanceReplays does for the walk cursor: the predictor history
		// advances to where the measured execution left it. Freezing it
		// instead would trap a core that entered via a flushed-history class
		// (hist = 0 after a context switch) in that class forever, replaying
		// a transient cost for the rest of the phase.
		c.pred.SetHistory(e.postHist)
		// The replay is stable — batchable — only if it reproduces its own
		// preconditions: the pollution window already closed AND the
		// post-block history folds back into this class.
		stable := key.pol == 0 && histClass(e.postHist) == key.hist
		c.recover()
		return e.cost, stable
	}
	// Measure with the block's canonical seeded stream instead of the
	// core's evolving one. The core stream's position depends on the run's
	// whole history — a monitored run and its baseline diverge after the
	// first interrupt — so canonical draws are what make a class freeze to
	// the *same* cost in every run: monitored/baseline runtime ratios then
	// cancel the sampling luck (the paper's Fig 8 signal) and monitoring
	// overhead stays structurally non-negative.
	// The probe is side-effect-free on memory-side state: caches and TLB
	// are restored afterwards, so a run that measures more classes (a
	// monitored run visits pollution/history transients a baseline never
	// does) does not warm the hierarchy any differently than one that
	// measures fewer. Predictor training and the walk advance persist —
	// both converge to run-independent fixed points and are part of the
	// block's real state transition.
	saved := c.rng
	c.classRng.Reseed(classSeed(b))
	c.rng = c.classRng
	c.caches.L1D().Save(&c.snapL1)
	c.caches.L2().Save(&c.snapL2)
	c.caches.LLC().Save(&c.snapLLC)
	c.tlb.save(&c.snapTLB)
	// Side-effect freedom also suppresses the self-warming a real execution
	// performs: without it, a block whose footprint is cache-resident in
	// steady state (an L1-blocked compute tile, or a monitoring tool's loop
	// that re-walks the same region every scheduling interval) would freeze
	// a never-warmed cost. For such blocks, pre-install the footprint inside
	// the bracket into every level large enough to hold it, so the probe
	// measures the steady resident state: the innermost fitting level
	// serves the accesses, exactly as it does once a real phase settles.
	// Footprints larger than the LLC stream — their steady state IS
	// non-resident — and are measured as-is.
	if fp := footprint(b); b.MemOps() > 0 && fp <= c.caches.LLC().Config().Size {
		preWarm(c.caches.LLC(), b.Mem.Base, fp)
		preWarm(c.caches.L2(), b.Mem.Base, fp)
		preWarm(c.caches.L1D(), b.Mem.Base, fp)
	}
	cost, swept := c.measure(b)
	c.caches.L1D().Restore(&c.snapL1)
	c.caches.L2().Restore(&c.snapL2)
	c.caches.LLC().Restore(&c.snapLLC)
	c.tlb.restore(&c.snapTLB)
	c.rng = saved
	c.memo[key] = memoEntry{cost: cost, swept: swept, postHist: c.pred.History(), seen: e.seen + 1}
	c.llcSeen = c.caches.LLC().Gen()
	c.recover()
	return cost, false
}

// measureSync runs the raw model and resynchronizes the memo layer's view
// of core state (recovery window advanced, shared-LLC generation observed).
//
//klebvet:hotpath
func (c *Core) measureSync(b isa.Block) Costed {
	cost, _ := c.measure(b)
	c.llcSeen = c.caches.LLC().Gen()
	c.recover()
	return cost
}

// recover closes the pollution recovery window by one executed block.
func (c *Core) recover() {
	if c.pollution > 0 {
		c.pollution--
	}
}

// warmth buckets how thoroughly the block's region walk has covered its
// footprint: 0 = cold, 1 = one sweep, warmReplay = steady, warmNonMem for
// blocks that touch no memory at all.
func (c *Core) warmth(b isa.Block) uint8 {
	if b.MemOps() == 0 {
		return warmNonMem
	}
	w := c.swept[b.Mem.Base] / footprint(b)
	if w > warmReplay {
		w = warmReplay
	}
	return uint8(w)
}

// histClass folds the predictor's global history register (up to ~16 bits
// for the profiles in use) into the key byte.
func histClass(h uint64) uint8 {
	return uint8(h ^ h>>8 ^ h>>16)
}

// classSeed derives the block's canonical measurement seed: an FNV-1a fold
// of the block's fields. Every memoized measurement of the block — every
// class, every confidence pass — replays this one draw sequence, which is
// what makes memoized costs comparable at all:
//
//   - The seed excludes the core's boot seed, so a class freezes to the
//     identical cost in every run (see the call site in execute).
//   - The seed excludes the state-class fields (warm/pol/hist) and the
//     pass number, so class costs differ only through the physical
//     cache/predictor/TLB state at measurement time — the signal the
//     classes exist to capture. Distinct per-class or per-pass seeds walk
//     distinct branch trajectories and random access sets, whose per-sample
//     luck (percents of block cost) swamps the pollution and history
//     signals and can even make monitored runs systematically *faster*
//     than their baselines.
//   - Identical draws also make the confidence passes converge: pass 0
//     trains exactly the predictor slots and cache lines passes 1..n
//     revisit, so the retained last pass is a fixed point of the block's
//     canonical instance, not a sample of an ever-shifting trajectory.
func classSeed(b isa.Block) uint64 {
	h := uint64(0xcbf29ce484222325)
	h = fnvMix(h, b.Instr)
	h = fnvMix(h, b.Loads)
	h = fnvMix(h, b.Stores)
	h = fnvMix(h, b.Branches)
	h = fnvMix(h, math.Float64bits(b.BranchMispredictRate))
	h = fnvMix(h, b.MulOps)
	h = fnvMix(h, b.FPOps)
	h = fnvMix(h, b.Flushes)
	h = fnvMix(h, b.Mem.Base)
	h = fnvMix(h, b.Mem.Footprint)
	h = fnvMix(h, b.Mem.Stride)
	h = fnvMix(h, math.Float64bits(b.Mem.RandomFrac))
	h = fnvMix(h, uint64(b.Priv))
	return h
}

// fnvMix is one FNV-1a fold step (a plain function keeps classSeed off the
// heap on the hot path).
func fnvMix(h, v uint64) uint64 {
	return (h ^ v) * 0x100000001b3
}
