package cpu

import (
	"testing"
	"testing/quick"

	"kleb/internal/cache"
	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/pmu"
)

func testConfig() Config {
	return Config{
		Freq:              ktime.MHz(2670),
		BaseCPI:           0.5,
		BranchMissPenalty: 15,
		FlushCycles:       50,
		PrefetchMemCycles: 30,
		Hierarchy: cache.HierarchyConfig{
			L1D:              cache.Config{Name: "L1D", Size: 32 << 10, LineSize: 64, Ways: 8, LatencyCycles: 4},
			L2:               cache.Config{Name: "L2", Size: 256 << 10, LineSize: 64, Ways: 8, LatencyCycles: 10},
			LLC:              cache.Config{Name: "LLC", Size: 4 << 20, LineSize: 64, Ways: 16, LatencyCycles: 38},
			MemLatencyCycles: 200,
		},
		MaxSimAccesses: 512,
	}
}

func testCore(seed uint64) *Core {
	return New(testConfig(), pmu.New(nil), ktime.NewRand(seed))
}

func TestExecuteConservesDeclaredCounts(t *testing.T) {
	c := testCore(1)
	b := isa.Block{
		Instr: 100_000, Loads: 30_000, Stores: 10_000, Branches: 8_000,
		MulOps: 5_000, FPOps: 12_000,
		Mem:  isa.MemPattern{Base: 0x1000_0000, Footprint: 64 << 10, Stride: 8},
		Priv: isa.User,
	}
	r := c.Execute(b)
	if r.Counts[isa.EvInstructions] != b.Instr ||
		r.Counts[isa.EvLoads] != b.Loads ||
		r.Counts[isa.EvStores] != b.Stores ||
		r.Counts[isa.EvBranches] != b.Branches ||
		r.Counts[isa.EvMulOps] != b.MulOps ||
		r.Counts[isa.EvFPOps] != b.FPOps {
		t.Errorf("declared counts not preserved: %+v", r.Counts)
	}
	if r.Priv != isa.User {
		t.Error("privilege lost")
	}
	if r.Time == 0 {
		t.Error("execution must take time")
	}
	minTime := c.Config().Freq.Duration(uint64(float64(b.Instr) * c.Config().BaseCPI))
	if r.Time < minTime {
		t.Errorf("time %v below pipeline minimum %v", r.Time, minTime)
	}
}

func TestWarmCacheRunsFaster(t *testing.T) {
	c := testCore(2)
	b := isa.Block{
		Instr: 50_000, Loads: 20_000,
		Mem: isa.MemPattern{Base: 0x2000_0000, Footprint: 16 << 10, Stride: 8},
	}
	cold := c.Execute(b)
	warm := c.Execute(b)
	if warm.Time >= cold.Time {
		t.Errorf("second pass over a cached footprint should be faster: cold=%v warm=%v", cold.Time, warm.Time)
	}
	if warm.Counts[isa.EvLLCMisses] >= cold.Counts[isa.EvLLCMisses] &&
		cold.Counts[isa.EvLLCMisses] > 0 {
		t.Error("warm pass should have fewer LLC misses")
	}
}

func TestLargerFootprintMoreMisses(t *testing.T) {
	small := testCore(3)
	large := testCore(3)
	mk := func(fp uint64) isa.Block {
		return isa.Block{
			Instr: 200_000, Loads: 80_000,
			Mem: isa.MemPattern{Base: 0x3000_0000, Footprint: fp, Stride: 8, RandomFrac: 0.3},
		}
	}
	var sMiss, lMiss uint64
	for i := 0; i < 20; i++ {
		sMiss += small.Execute(mk(64 << 10)).Counts[isa.EvLLCMisses]
		lMiss += large.Execute(mk(64 << 20)).Counts[isa.EvLLCMisses]
	}
	if lMiss <= sMiss*2 {
		t.Errorf("64MB footprint should miss far more than 64KB: small=%d large=%d", sMiss, lMiss)
	}
}

func TestMispredictRateDrivesMisses(t *testing.T) {
	quiet := testCore(4)
	noisy := testCore(4)
	mk := func(rate float64) isa.Block {
		return isa.Block{
			Instr: 100_000, Branches: 20_000, BranchMispredictRate: rate,
			Mem: isa.MemPattern{Base: 0x4000_0000, Footprint: 4096, Stride: 8},
		}
	}
	var q, n uint64
	for i := 0; i < 10; i++ {
		q += quiet.Execute(mk(0.001)).Counts[isa.EvBranchMisses]
		n += noisy.Execute(mk(0.25)).Counts[isa.EvBranchMisses]
	}
	if n < q*3 {
		t.Errorf("hard branches should mispredict much more: quiet=%d noisy=%d", q, n)
	}
}

func TestFlushReloadPairsMissLLC(t *testing.T) {
	c := testCore(5)
	probe := isa.MemPattern{Base: 0x5000_0000, Footprint: 256 * 4096, Stride: 4096}
	// Warm the probe lines first.
	c.Execute(isa.Block{Instr: 10_000, Loads: 256, Mem: probe})
	b := isa.Block{Instr: 20_000, Loads: 2_000, Flushes: 2_000, Mem: probe}
	r := c.Execute(b)
	if r.Counts[isa.EvLLCMisses] < 2_000 {
		t.Errorf("each flush+reload pair must miss: got %d misses for 2000 pairs",
			r.Counts[isa.EvLLCMisses])
	}
	if r.Counts[isa.EvCacheFlushes] != 2_000 {
		t.Errorf("flush count: %d", r.Counts[isa.EvCacheFlushes])
	}
}

func TestPrefetchHidesStreamLatencyButKeepsMisses(t *testing.T) {
	cfgPf := testConfig()
	cfgNo := testConfig()
	cfgNo.PrefetchMemCycles = 0
	pf := New(cfgPf, pmu.New(nil), ktime.NewRand(6))
	no := New(cfgNo, pmu.New(nil), ktime.NewRand(6))
	b := isa.Block{
		Instr: 200_000, Loads: 100_000,
		Mem: isa.MemPattern{Base: 0x6000_0000, Footprint: 64 << 20, Stride: 8},
	}
	rp := pf.Execute(b)
	rn := no.Execute(b)
	if rp.Time >= rn.Time {
		t.Errorf("prefetched stream should be faster: with=%v without=%v", rp.Time, rn.Time)
	}
	ratio := float64(rp.Counts[isa.EvLLCMisses]) / float64(rn.Counts[isa.EvLLCMisses])
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("prefetch must not change miss counts much: ratio %.2f", ratio)
	}
}

func TestCostedSplitConservation(t *testing.T) {
	c := testCore(7)
	b := isa.Block{
		Instr: 500_000, Loads: 150_000, Stores: 50_000, Branches: 40_000, MulOps: 60_000,
		Mem: isa.MemPattern{Base: 0x7000_0000, Footprint: 1 << 20, Stride: 8},
	}
	whole := c.Execute(b)
	prop := func(frac8 uint8) bool {
		budget := ktime.Duration(uint64(whole.Time) * uint64(frac8) / 255)
		head, tail := whole.Split(budget)
		if head.Time+tail.Time != whole.Time {
			return false
		}
		for ev := isa.Event(0); ev < isa.NumEvents; ev++ {
			if head.Counts[ev]+tail.Counts[ev] != whole.Counts[ev] {
				return false
			}
		}
		return head.Time <= budget || budget >= whole.Time
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCostedSplitEdges(t *testing.T) {
	w := Costed{Time: 100, Priv: isa.Kernel}
	w.Counts[isa.EvInstructions] = 1000
	head, tail := w.Split(200)
	if head.Time != 100 || !tail.Empty() {
		t.Error("budget beyond work should return whole")
	}
	if tail.Priv != isa.Kernel {
		t.Error("split must preserve privilege")
	}
	head, tail = w.Split(0)
	if head.Time != 0 || tail.Time != 100 {
		t.Error("zero budget should defer everything")
	}
}

func TestContextSwitchPollutesCaches(t *testing.T) {
	c := testCore(8)
	b := isa.Block{
		Instr: 50_000, Loads: 25_000,
		Mem: isa.MemPattern{Base: 0x8000_0000, Footprint: 16 << 10, Stride: 8},
	}
	c.Execute(b) // warm
	warm := c.Execute(b)
	c.OnContextSwitch(1.0, 1.0, 1.0) // total pollution
	polluted := c.Execute(b)
	if polluted.Time <= warm.Time {
		t.Errorf("pollution should slow the next block: warm=%v polluted=%v", warm.Time, polluted.Time)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() Costed {
		c := testCore(99)
		var last Costed
		for i := 0; i < 5; i++ {
			last = c.Execute(isa.Block{
				Instr: 100_000, Loads: 40_000, Branches: 10_000, BranchMispredictRate: 0.1,
				Mem: isa.MemPattern{Base: 0x9000_0000, Footprint: 1 << 20, Stride: 8, RandomFrac: 0.2},
			})
		}
		return last
	}
	a, b := run(), run()
	if a != b {
		t.Error("same seed should execute identically")
	}
}

func TestEmptyBlock(t *testing.T) {
	c := testCore(10)
	r := c.Execute(isa.Block{})
	if !r.Empty() {
		t.Errorf("empty block produced work: %+v", r)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSimAccesses = 0
	cfg.PredictorBits = 0
	c := New(cfg, pmu.New(nil), ktime.NewRand(1))
	if c.Config().MaxSimAccesses == 0 || c.Config().PredictorBits == 0 {
		t.Error("constructor defaults not applied")
	}
}

func TestTLBMissesTrackFootprint(t *testing.T) {
	// 64-entry TLB over 4KB pages covers 256KB: a 64KB working set hits
	// after warm-up, a 16MB random working set thrashes.
	small := testCore(20)
	large := testCore(20)
	mk := func(fp uint64, rf float64) isa.Block {
		return isa.Block{
			Instr: 200_000, Loads: 80_000,
			Mem: isa.MemPattern{Base: 0xA000_0000, Footprint: fp, Stride: 8, RandomFrac: rf},
		}
	}
	var sm, lg uint64
	for i := 0; i < 10; i++ {
		sm += small.Execute(mk(64<<10, 0)).Counts[isa.EvDTLBMisses]
		lg += large.Execute(mk(16<<20, 0.8)).Counts[isa.EvDTLBMisses]
	}
	if lg < 20*sm {
		t.Errorf("TLB thrashing not visible: small=%d large=%d", sm, lg)
	}
	if large.TLBMisses() == 0 {
		t.Error("cumulative TLB miss counter empty")
	}
}

func TestTLBFlushOnContextSwitch(t *testing.T) {
	c := testCore(21)
	b := isa.Block{
		Instr: 50_000, Loads: 25_000,
		Mem: isa.MemPattern{Base: 0xB000_0000, Footprint: 128 << 10, Stride: 8},
	}
	c.Execute(b) // warm translations
	warm := c.Execute(b).Counts[isa.EvDTLBMisses]
	c.OnContextSwitch(0, 0, 0) // address-space change flushes the TLB
	cold := c.Execute(b).Counts[isa.EvDTLBMisses]
	if cold <= warm {
		t.Errorf("context switch should flush the TLB: warm=%d cold=%d", warm, cold)
	}
}
