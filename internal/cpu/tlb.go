package cpu

// TLB is a small set-associative data TLB over 4KB pages with true-LRU
// replacement. Misses model the page-walk latency added to the triggering
// access and feed the DTLB_LOAD_MISSES event, so TLB-thrashing access
// patterns (huge random footprints) are visible to the monitoring tools
// exactly like their cache behaviour is.
type TLB struct {
	entriesPerSet int
	sets          uint64
	setMask       uint64
	tags          []uint64
	ages          []uint64
	stamp         uint64

	misses uint64
}

// TLBConfig sizes the structure.
type TLBConfig struct {
	// Entries is the total capacity (power-of-two sets result).
	Entries int
	// Ways is the associativity.
	Ways int
	// PageBits is log2 of the page size (default 12 → 4KB).
	PageBits uint
	// WalkCycles is the page-walk penalty per miss.
	WalkCycles uint64
}

func (c *TLBConfig) defaults() {
	if c.Entries == 0 {
		c.Entries = 64
	}
	if c.Ways == 0 {
		c.Ways = 4
	}
	if c.PageBits == 0 {
		c.PageBits = 12
	}
	if c.WalkCycles == 0 {
		c.WalkCycles = 30
	}
}

// pageBits is kept on the core config; the TLB stores only geometry.
func newTLB(cfg TLBConfig) *TLB {
	cfg.defaults()
	sets := uint64(cfg.Entries / cfg.Ways)
	// Clamp to a power of two set count.
	for sets&(sets-1) != 0 {
		sets--
	}
	if sets == 0 {
		sets = 1
	}
	return &TLB{
		entriesPerSet: cfg.Ways,
		sets:          sets,
		setMask:       sets - 1,
		tags:          make([]uint64, sets*uint64(cfg.Ways)),
		ages:          make([]uint64, sets*uint64(cfg.Ways)),
	}
}

// access looks up the page containing addr; returns true on hit.
func (t *TLB) access(page uint64) bool {
	set := page & t.setMask
	tag := page | 1<<63
	base := set * uint64(t.entriesPerSet)
	t.stamp++
	victim := base
	oldest := ^uint64(0)
	for i := base; i < base+uint64(t.entriesPerSet); i++ {
		if t.tags[i] == tag {
			t.ages[i] = t.stamp
			return true
		}
		if t.ages[i] < oldest {
			oldest = t.ages[i]
			victim = i
		}
	}
	t.misses++
	t.tags[victim] = tag
	t.ages[victim] = t.stamp
	return false
}

// flush clears all translations (a context switch with an address-space
// change).
func (t *TLB) flush() {
	for i := range t.tags {
		t.tags[i] = 0
		t.ages[i] = 0
	}
}

// Misses returns the cumulative miss count.
func (t *TLB) Misses() uint64 { return t.misses }

// tlbState is a deep copy of the TLB's mutable state; the backing slices
// are recycled across saves (see cache.State for the pattern).
type tlbState struct {
	tags, ages []uint64
	stamp      uint64
	misses     uint64
}

// save captures the TLB's complete mutable state into s.
func (t *TLB) save(s *tlbState) {
	s.tags = append(s.tags[:0], t.tags...) //klebvet:allow hotalloc -- grows only on the first save into a tlbState; the core's long-lived snapshot reuses the backing array on every later probe
	s.ages = append(s.ages[:0], t.ages...) //klebvet:allow hotalloc -- same recycled backing array as tags above
	s.stamp = t.stamp
	s.misses = t.misses
}

// restore rewinds the TLB to a state captured by save.
func (t *TLB) restore(s *tlbState) {
	copy(t.tags, s.tags)
	copy(t.ages, s.ages)
	t.stamp = s.stamp
	t.misses = s.misses
}
