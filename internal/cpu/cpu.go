// Package cpu models a single processor core: it executes workload
// instruction blocks against the cache hierarchy and branch predictor,
// producing ground-truth hardware event counts and the virtual time each
// block consumes.
//
// The model is a throughput/latency cost model, not a cycle-accurate
// pipeline: block cycles = instructions × base CPI, plus memory stall
// cycles from the cache simulation, plus branch mispredict penalties. That
// level of fidelity is what the paper's experiments consume — event time
// series with realistic phase structure and execution times that respond to
// monitoring-induced perturbation (extra syscalls, interrupts, cache
// pollution).
package cpu

import (
	"kleb/internal/branch"
	"kleb/internal/cache"
	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/pmu"
)

// Config parameterizes the core model.
type Config struct {
	// Freq is the core clock frequency.
	Freq ktime.Freq
	// BaseCPI is cycles per instruction for pipeline execution assuming L1
	// hits (whose latency is folded in) and perfect branch prediction.
	BaseCPI float64
	// BranchMissPenalty is the pipeline-flush cost per mispredict, cycles.
	BranchMissPenalty uint64
	// PrefetchMemCycles replaces the DRAM latency for misses on sequential
	// (strided, stride ≤ 2 lines) walks: the hardware prefetcher hides
	// most of the memory latency for streams. Miss *counts* are unchanged
	// — prefetching is a latency optimization, not a miss filter, at the
	// fidelity this model needs. Zero disables the approximation.
	PrefetchMemCycles uint64
	// FlushCycles is the cost of one CLFLUSH instruction.
	FlushCycles uint64
	// Hierarchy is the data cache configuration.
	Hierarchy cache.HierarchyConfig
	// PredictorBits sizes the gshare predictor (2^bits entries).
	PredictorBits uint
	// MaxSimAccesses caps how many memory accesses (and branches) of a
	// block are actually simulated; results are scaled to the block's real
	// totals. It trades simulation speed against cache-model fidelity.
	MaxSimAccesses uint64
	// TLB sizes the data TLB (zero values select the defaults).
	TLB TLBConfig
	// NoMemo disables the block-cost memo layer (DESIGN.md §13), forcing
	// every Execute through the raw cache/branch simulation. Model unit
	// tests use it to probe the underlying simulators directly.
	NoMemo bool
}

// defaultFootprint is the memory-pattern footprint assumed when a block
// declares none; simulateMemory and the memo layer's warmth class must
// agree on it.
const defaultFootprint = 4096

// Costed is a fully priced batch of executed work: the event counts it
// generated and the virtual time it took, at a given privilege level. A
// Costed result can be split at a timer boundary without re-simulation.
type Costed struct {
	Counts isa.Counts
	Time   ktime.Duration
	Priv   isa.Priv
}

// Empty reports whether no work remains.
func (c Costed) Empty() bool { return c.Time == 0 && c.Counts[isa.EvInstructions] == 0 }

// Split divides the work at budget: head consumes at most budget time, tail
// holds the remainder. Event counts split proportionally to time.
func (c Costed) Split(budget ktime.Duration) (head, tail Costed) {
	if budget >= c.Time {
		return c, Costed{Priv: c.Priv}
	}
	head = Costed{
		Counts: c.Counts.Scale(uint64(budget), uint64(c.Time)),
		Time:   budget,
		Priv:   c.Priv,
	}
	tail = Costed{
		Counts: c.Counts.Sub(head.Counts),
		Time:   c.Time - budget,
		Priv:   c.Priv,
	}
	return head, tail
}

// Core is one simulated processor core.
type Core struct {
	cfg    Config
	caches *cache.Hierarchy
	pred   *branch.Predictor
	tlb    *TLB
	pmu    *pmu.PMU
	rng    *ktime.Rand

	// cursors holds the sequential-walk position per memory region so that
	// streaming patterns persist across blocks of the same workload phase.
	cursors map[uint64]uint64
	// swept accumulates the bytes each region's walk cursor has covered;
	// swept/footprint is the cache-warmth class of the memo key.
	swept map[uint64]uint64

	// Memo layer state (memo.go). memo caches Costed results per
	// (block, state-class); pollution is the recovery window after a context
	// switch or interrupt eviction, counting down one per executed block;
	// llcSeen detects foreign mutation of a shared LLC; replaySwept is the
	// walk advance of the last replayed block, consumed by AdvanceReplays.
	memo        map[memoKey]memoEntry
	pollution   uint8
	llcSeen     uint64
	replaySwept uint64
	// classRng is the reusable class-seeded stream memoizable measurements
	// draw from (see memo.go's classSeed).
	classRng *ktime.Rand
	// snapL1/snapL2/snapLLC/snapTLB are the reusable snapshots that bracket
	// a memoized measurement so the canonical probe leaves no trace in the
	// memory-side state (memo.go).
	snapL1, snapL2, snapLLC cache.State
	snapTLB                 tlbState
}

// New builds a core. The PMU is created by the caller (it belongs to the
// machine's register file) and attached here so executed work feeds it.
func New(cfg Config, p *pmu.PMU, rng *ktime.Rand) *Core {
	return NewShared(cfg, p, rng, nil)
}

// NewShared builds a core whose hierarchy sits in front of an externally
// shared last-level cache (nil allocates a private LLC) — several cores
// built around one LLC model a multi-core socket's capacity contention.
func NewShared(cfg Config, p *pmu.PMU, rng *ktime.Rand, sharedLLC *cache.Cache) *Core {
	if cfg.MaxSimAccesses == 0 {
		cfg.MaxSimAccesses = 2048
	}
	if cfg.PredictorBits == 0 {
		cfg.PredictorBits = 12
	}
	cfg.TLB.defaults()
	return &Core{
		cfg:      cfg,
		caches:   cache.NewHierarchyShared(cfg.Hierarchy, sharedLLC),
		pred:     branch.New(cfg.PredictorBits),
		tlb:      newTLB(cfg.TLB),
		pmu:      p,
		rng:      rng,
		cursors:  make(map[uint64]uint64),
		swept:    make(map[uint64]uint64),
		memo:     make(map[memoKey]memoEntry),
		classRng: ktime.NewRand(0),
	}
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Caches returns the core's cache hierarchy.
func (c *Core) Caches() *cache.Hierarchy { return c.caches }

// PMU returns the core's performance monitoring unit.
func (c *Core) PMU() *pmu.PMU { return c.pmu }

// Predictor returns the core's branch predictor.
func (c *Core) Predictor() *branch.Predictor { return c.pred }

// OnContextSwitch applies the microarchitectural damage of switching to a
// different process: partial cache pollution, branch history loss, and a
// full TLB flush (address-space change). The fractions come from the
// kernel's cost model.
func (c *Core) OnContextSwitch(l1Frac, l2Frac, llcFrac float64) {
	c.caches.Pollute(l1Frac, l2Frac, llcFrac)
	c.pred.FlushHistory()
	c.tlb.flush()
	c.pollution = pollutionWindow
	// The pollution above was self-inflicted and is captured by the memo
	// key's pollution class; resync so it is not mistaken for a sibling
	// core's shared-LLC traffic.
	c.llcSeen = c.caches.LLC().Gen()
}

// InterruptPollute applies the L1D eviction an interrupt handler inflicts
// on the running process's working set. Unlike a context switch it does
// NOT open the memo layer's recovery window: the eviction touches a
// fraction of one 32KB level that refills within a single block, so its
// per-block cost is noise-level — while opening the window would move
// every block of a high-frequency-sampled run into pollution classes
// disjoint from its baseline's, destroying the common-mode cancellation
// that makes monitored/baseline runtime ratios low-variance (the paper's
// Fig 8 signal). Interrupt overhead is charged where it belongs: in the
// interrupt entry/exit/handler costs.
func (c *Core) InterruptPollute(frac float64) {
	if frac <= 0 {
		return
	}
	c.caches.L1D().EvictFraction(frac)
}

// TLBMisses exposes the cumulative data-TLB miss count.
func (c *Core) TLBMisses() uint64 { return c.tlb.Misses() }

// measure prices one instruction block through the raw model: it runs the
// block's memory accesses through the cache hierarchy (sampled and scaled
// when large), its branches through the predictor, computes cycles from the
// cost model and returns the resulting event counts and duration plus the
// bytes the region walk cursor advanced (the memo layer replays that
// advance arithmetically). Execute (memo.go) wraps this with the
// state-class memo; neither feeds the PMU — the kernel applies counts after
// deciding how the block interleaves with timer events.
func (c *Core) measure(b isa.Block) (Costed, uint64) {
	var counts isa.Counts
	counts[isa.EvInstructions] = b.Instr
	counts[isa.EvLoads] = b.Loads
	counts[isa.EvStores] = b.Stores
	counts[isa.EvBranches] = b.Branches
	counts[isa.EvMulOps] = b.MulOps
	counts[isa.EvFPOps] = b.FPOps
	counts[isa.EvCacheFlushes] = b.Flushes

	memStall, swept := c.simulateMemory(b, &counts)
	missCount := c.simulateBranches(b)
	counts[isa.EvBranchMisses] = missCount

	cycles := uint64(float64(b.Instr)*c.cfg.BaseCPI) +
		memStall +
		missCount*c.cfg.BranchMissPenalty +
		b.Flushes*c.cfg.FlushCycles
	if cycles == 0 && !b.Empty() {
		cycles = 1
	}
	counts[isa.EvCycles] = cycles
	counts[isa.EvRefCycles] = cycles
	// Stalls are the cycles beyond pipelined execution: memory stalls plus
	// mispredict recovery plus flush latency — derived, not resimulated, so
	// the cost model stays single-sourced.
	counts[isa.EvStallCycles] = memStall +
		missCount*c.cfg.BranchMissPenalty +
		b.Flushes*c.cfg.FlushCycles
	// IMC traffic: every LLC miss is one DRAM line read; writebacks are the
	// store-share of those misses (a dirty line evicted per missed store, to
	// first order). Pure arithmetic on counts already simulated.
	llcMiss := counts[isa.EvLLCMisses]
	counts[isa.EvCASReads] = llcMiss
	if mem := b.Loads + b.Stores; mem > 0 {
		counts[isa.EvCASWrites] = (llcMiss*b.Stores + mem/2) / mem
	}

	return Costed{Counts: counts, Time: c.cfg.Freq.Duration(cycles), Priv: b.Priv}, swept
}

// simulateMemory runs the block's flushes and data accesses through the
// hierarchy and returns the stall cycles beyond L1-hit latency plus the
// bytes the region's walk cursor advanced (recorded in c.swept and in the
// memo entry so a replay can advance the cursor without resimulating).
// Large blocks are sampled: sim accesses are taken, results scaled by
// total/sim.
func (c *Core) simulateMemory(b isa.Block, counts *isa.Counts) (uint64, uint64) {
	total := b.MemOps()
	if total == 0 && b.Flushes == 0 {
		return 0, 0
	}
	pat := b.Mem
	if pat.Footprint == 0 {
		pat.Footprint = defaultFootprint
	}
	if pat.Stride == 0 {
		pat.Stride = c.cfg.Hierarchy.L1D.LineSize
	}

	// CLFLUSH traffic models Flush+Reload: each flush is paired with the
	// reload of the same line (the covert channel's probe), which misses
	// the whole hierarchy by construction. Loads beyond the flush count
	// flow through the normal access path below.
	var pairStall, sweptBytes uint64
	if b.Flushes > 0 {
		pairs := b.Flushes
		if pairs > b.Loads {
			pairs = b.Loads
		}
		simPairs := pairs
		if simPairs > c.cfg.MaxSimAccesses {
			simPairs = c.cfg.MaxSimAccesses
		}
		var missCycles uint64
		for i := uint64(0); i < simPairs; i++ {
			addr, random := c.nextAddr(pat)
			if !random {
				sweptBytes += pat.Stride
			}
			c.caches.Flush(addr)
			r := c.caches.Access(addr)
			missCycles += r.Cycles - c.cfg.Hierarchy.L1D.LatencyCycles
		}
		counts[isa.EvL1DMisses] += pairs
		counts[isa.EvL2Misses] += pairs
		counts[isa.EvLLCRefs] += pairs
		counts[isa.EvLLCMisses] += pairs
		pairStall = scale64(missCycles, pairs, simPairs)
		total -= pairs // paired loads are accounted for
		// Flushes beyond the pair budget (pure eviction storms) still
		// damage the cache state.
		extraFlush := b.Flushes - pairs
		if extraFlush > c.cfg.MaxSimAccesses {
			extraFlush = c.cfg.MaxSimAccesses
		}
		for i := uint64(0); i < extraFlush; i++ {
			addr, random := c.nextAddr(pat)
			if !random {
				sweptBytes += pat.Stride
			}
			c.caches.Flush(addr)
		}
	}

	if total == 0 {
		c.swept[pat.Base] += sweptBytes
		return pairStall, sweptBytes
	}

	// The unit of simulation is a cache-line *touch*, not an individual
	// access: a unit-stride walk touches each line lineSize/stride times,
	// and only the first of those can miss (the rest are guaranteed L1
	// hits whose latency the base CPI already covers). Simulating touches
	// keeps the walk cursor moving at the workload's real speed even when
	// the touch stream is sampled, so cold footprints warm up after one
	// real sweep instead of looking perpetually cold.
	lineSize := c.cfg.Hierarchy.L1D.LineSize
	perLine := uint64(1)
	if pat.Stride < lineSize {
		perLine = lineSize / pat.Stride
	}
	randomAccesses := uint64(float64(total) * pat.RandomFrac)
	walkAccesses := total - randomAccesses
	walkTouches := walkAccesses / perLine
	touches := walkTouches + randomAccesses
	if touches == 0 {
		touches = 1
	}

	sim := touches
	if sim > c.cfg.MaxSimAccesses {
		sim = c.cfg.MaxSimAccesses
	}
	// Walk touches advance the cursor by a full line each; the sampled
	// stream is thinned by advancing the cursor for the skipped touches in
	// bulk after the loop (the cache sees a uniform sample of the sweep).
	pr := float64(randomAccesses) / float64(touches)

	// Two-half bookkeeping: the unsimulated remainder is extrapolated from
	// the *second* half's rates, so transients (context-switch pollution, a
	// cold start within the window) are charged once, not multiplied by
	// the sampling scale factor.
	l1Lat := c.cfg.Hierarchy.L1D.LatencyCycles
	var h [2]struct {
		l1m, l2m, llcRef, llcMiss, tlbm, cycles, n uint64
	}
	// Walk-touch TLB misses happen once per page crossing; the thinned
	// walk (cursor advancing walkStep per touch) already crosses pages at
	// the block's *real* rate, so these are charged raw — extrapolating
	// them by the touch scale would double-count. Random-touch misses are
	// per-access and go through the normal extrapolation.
	var tlbWalkMiss, tlbWalkCycles uint64
	half := sim / 2
	prefetchable := c.cfg.PrefetchMemCycles > 0 &&
		pat.Stride <= 2*lineSize &&
		c.cfg.PrefetchMemCycles < c.cfg.Hierarchy.MemLatencyCycles
	// Stride for a sampled walk touch: cover the real span of the block's
	// sweep with the sampled touches.
	walkStep := lineSize
	if pat.Stride >= lineSize {
		walkStep = pat.Stride
	}
	simWalk := sim - uint64(float64(sim)*pr)
	if simWalk > 0 && walkTouches > simWalk {
		walkStep = walkStep * walkTouches / simWalk
		// Keep the thinned walk on line-aligned strides so successive
		// sweeps revisit the same line set (otherwise every sweep looks
		// cold and miss counts inflate).
		walkStep = (walkStep + lineSize - 1) / lineSize * lineSize
	}
	for i := uint64(0); i < sim; i++ {
		b := 0
		if i >= half && half > 0 {
			b = 1
		}
		var addr uint64
		random := pr > 0 && c.rng.Float64() < pr
		if random {
			addr = pat.Base + c.rng.Uint64n(pat.Footprint)&^7
		} else {
			cur := c.cursors[pat.Base]
			c.cursors[pat.Base] = (cur + walkStep) % pat.Footprint
			sweptBytes += walkStep
			addr = pat.Base + cur
		}
		r := c.caches.Access(addr)
		if !r.L1Hit && !r.L2Hit && !r.LLCHit && prefetchable && !random {
			r.Cycles -= c.cfg.Hierarchy.MemLatencyCycles - c.cfg.PrefetchMemCycles
		}
		if !c.tlb.access(addr >> uint64(c.cfg.TLB.PageBits)) {
			if random {
				h[b].tlbm++
				r.Cycles += c.cfg.TLB.WalkCycles
			} else {
				tlbWalkMiss++
				tlbWalkCycles += c.cfg.TLB.WalkCycles
			}
		}
		h[b].n++
		h[b].cycles += r.Cycles - l1Lat
		if !r.L1Hit {
			h[b].l1m++
			if !r.L2Hit {
				h[b].l2m++
				h[b].llcRef++
				if !r.LLCHit {
					h[b].llcMiss++
				}
			}
		}
	}
	rest := touches - sim
	steady := h[1]
	if steady.n == 0 {
		steady = h[0]
	}
	counts[isa.EvL1DMisses] += extrapolate(h[0].l1m+h[1].l1m, steady.l1m, rest, steady.n)
	counts[isa.EvL2Misses] += extrapolate(h[0].l2m+h[1].l2m, steady.l2m, rest, steady.n)
	counts[isa.EvLLCRefs] += extrapolate(h[0].llcRef+h[1].llcRef, steady.llcRef, rest, steady.n)
	counts[isa.EvLLCMisses] += extrapolate(h[0].llcMiss+h[1].llcMiss, steady.llcMiss, rest, steady.n)
	counts[isa.EvDTLBMisses] += extrapolate(h[0].tlbm+h[1].tlbm, steady.tlbm, rest, steady.n) + tlbWalkMiss
	c.swept[pat.Base] += sweptBytes
	return pairStall + tlbWalkCycles + extrapolate(h[0].cycles+h[1].cycles, steady.cycles, rest, steady.n), sweptBytes
}

// nextAddr produces the next address of the pattern: mostly a strided walk
// with a RandomFrac admixture of uniform accesses over the footprint. The
// second result reports whether this was a random (non-prefetchable) access.
// Random draws are offsets *relative to the walk cursor* (still uniform over
// the footprint): their overlap with the recently-walked, still-cached
// window is then independent of the cursor's absolute position, which is
// what lets the memo layer measure a block's canonical instance at any
// point of the sweep and get the same cost (memo.go).
func (c *Core) nextAddr(p isa.MemPattern) (uint64, bool) {
	if p.RandomFrac > 0 && c.rng.Float64() < p.RandomFrac {
		off := (c.cursors[p.Base] + c.rng.Uint64n(p.Footprint)) % p.Footprint
		return p.Base + off&^7, true
	}
	cur := c.cursors[p.Base]
	c.cursors[p.Base] = (cur + p.Stride) % p.Footprint
	return p.Base + cur, false
}

// simulateBranches produces the mispredict count for the block. A sampled
// branch stream runs through the gshare predictor: a fraction of branches
// (2× the declared tendency) have random outcomes — which a predictor gets
// wrong about half the time — while the rest follow a stable pattern the
// predictor learns. Mispredicts therefore respond to predictor warmth
// (history flushes after context switches raise the rate briefly).
func (c *Core) simulateBranches(b isa.Block) uint64 {
	if b.Branches == 0 {
		return 0
	}
	sim := b.Branches
	if sim > c.cfg.MaxSimAccesses {
		sim = c.cfg.MaxSimAccesses
	}
	hardFrac := 2 * b.BranchMispredictRate
	if hardFrac > 1 {
		hardFrac = 1
	}
	// A small set of static branch sites, derived from the block's memory
	// region so different workloads exercise different predictor entries.
	base := b.Mem.Base>>4 | 0x40000000
	var miss uint64
	for i := uint64(0); i < sim; i++ {
		pc := base + (i%16)*4
		var taken bool
		if c.rng.Float64() < hardFrac {
			taken = c.rng.Uint64()&1 == 0
		} else {
			taken = i%8 != 7 // predictable loop-style pattern
		}
		if c.pred.Predict(pc, taken) {
			miss++
		}
	}
	return scale64(miss, b.Branches, sim)
}

// extrapolate scales a steady-phase count over the unsimulated tail of a
// sweep: simTotal touches were simulated, rest were not, and each of the
// rest behaves like one of the n steady touches that produced steadyCount.
// A plain function (not a closure) keeps simulateMemory off the heap.
func extrapolate(simTotal, steadyCount, rest, n uint64) uint64 {
	return simTotal + scale64(steadyCount, rest, n)
}

func scale64(v, num, den uint64) uint64 {
	if den == 0 {
		return 0
	}
	hi := v / den
	lo := v % den
	return hi*num + (lo*num+den/2)/den
}
