package pmu

import (
	"testing"

	"kleb/internal/isa"
)

// These tests pin the active-counter mask cache: every write to an
// enable-affecting MSR must leave the masks exactly consistent with the
// slow progEnabled/fixedEnabled predicates, and AddCounts must count
// through the mask identically to probing every counter.

// checkMasks verifies the cached masks against the predicate ground truth.
func checkMasks(t *testing.T, p *PMU) {
	t.Helper()
	for pi, priv := range [2]isa.Priv{isa.User, isa.Kernel} {
		var wantProg, wantFixed uint8
		for i := 0; i < NumProgrammable; i++ {
			if _, ok := p.table.Lookup(p.evtsel[i]); ok && p.progEnabled(i, priv) {
				wantProg |= 1 << uint(i)
			}
		}
		for i := 0; i < NumFixed; i++ {
			if p.fixedEnabled(i, priv) {
				wantFixed |= 1 << uint(i)
			}
		}
		if p.activeProg[pi] != wantProg {
			t.Errorf("activeProg[%v] = %08b, want %08b", priv, p.activeProg[pi], wantProg)
		}
		if p.activeFixed[pi] != wantFixed {
			t.Errorf("activeFixed[%v] = %08b, want %08b", priv, p.activeFixed[pi], wantFixed)
		}
	}
}

func TestActiveMaskTracksMSRWrites(t *testing.T) {
	p := testPMU()
	checkMasks(t, p) // power-on: everything disabled

	// Program PMC0 (user) and PMC2 (kernel), enable globally one at a time.
	enc := Encoding{EventSel: 0x2E, Umask: 0x41}
	must(p.WriteMSR(MSRPerfEvtSel0, enc.Sel(SelUsr|SelEn)))
	checkMasks(t, p) // local enable without global: still inactive
	must(p.WriteMSR(MSRGlobalCtrl, 1))
	checkMasks(t, p)
	must(p.WriteMSR(MSRPerfEvtSel0+2, Encoding{EventSel: 0x0B, Umask: 0x01}.Sel(SelOS|SelEn)))
	must(p.WriteMSR(MSRGlobalCtrl, 1|1<<2))
	checkMasks(t, p)

	// An encoding the table cannot resolve must stay out of the mask even
	// though its enable bits are set.
	must(p.WriteMSR(MSRPerfEvtSel0+1, Encoding{EventSel: 0xEE, Umask: 0xEE}.Sel(SelUsr|SelEn)))
	must(p.WriteMSR(MSRGlobalCtrl, 1|1<<1|1<<2))
	checkMasks(t, p)

	// Fixed counters on, then global disable wipes everything.
	must(p.WriteMSR(MSRFixedCtrCtrl, FixedUsr|FixedOS<<4))
	must(p.WriteMSR(MSRGlobalCtrl, 1|1<<2|(1|1<<1)<<32))
	checkMasks(t, p)
	must(p.WriteMSR(MSRGlobalCtrl, 0))
	checkMasks(t, p)
}

func TestAddCountsThroughMask(t *testing.T) {
	p := testPMU()
	programLLCMisses(p, SelUsr)
	must(p.WriteMSR(MSRFixedCtrCtrl, FixedUsr))
	must(p.WriteMSR(MSRGlobalCtrl, 1|1<<32))

	var c isa.Counts
	c[isa.EvLLCMisses] = 41
	c[isa.EvInstructions] = 1000
	p.AddCounts(c, isa.User)
	p.AddCounts(c, isa.Kernel) // kernel not enabled anywhere: must not count
	if got, _ := p.ReadMSR(MSRPmc0); got != 41 {
		t.Errorf("PMC0 = %d, want 41", got)
	}
	if got, _ := p.ReadMSR(MSRFixedCtr0); got != 1000 {
		t.Errorf("FIXED0 = %d, want 1000", got)
	}
}

// BenchmarkAddCountsTwoActive is the monitored-counter feed: two
// programmable counters plus one fixed counter live (the K-LEB shape).
func BenchmarkAddCountsTwoActive(b *testing.B) {
	p := testPMU()
	must(p.WriteMSR(MSRPerfEvtSel0, Encoding{EventSel: 0x2E, Umask: 0x41}.Sel(SelUsr|SelEn)))
	must(p.WriteMSR(MSRPerfEvtSel0+1, Encoding{EventSel: 0x0B, Umask: 0x01}.Sel(SelUsr|SelEn)))
	must(p.WriteMSR(MSRFixedCtrCtrl, FixedUsr))
	must(p.WriteMSR(MSRGlobalCtrl, 1|1<<1|1<<32))
	var c isa.Counts
	c[isa.EvLLCMisses] = 17
	c[isa.EvLoads] = 250
	c[isa.EvInstructions] = 1000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddCounts(c, isa.User)
	}
}

// BenchmarkAddCountsAllDisabled is the unmonitored stretch every work
// slice pays: nothing enabled, the call must be near-free.
func BenchmarkAddCountsAllDisabled(b *testing.B) {
	p := testPMU()
	var c isa.Counts
	c[isa.EvLLCMisses] = 17
	c[isa.EvInstructions] = 1000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddCounts(c, isa.User)
	}
}
