// Event scheduler: packs requested event classes onto the PMU's counters
// under the table's per-event constraints, and produces the rotation rounds
// a kernel multiplexes through when a request oversubscribes a counter
// pool. This is the single placement algorithm every tool layer shares —
// perf_events rotates through the rounds on its mux timer, K-LEB refuses
// any schedule that needs more than one round.
package pmu

import (
	"fmt"
	"math/bits"
	"sort"

	"kleb/internal/isa"
)

// CounterClass identifies which counter pool an assignment lives in.
type CounterClass uint8

const (
	// CtrProgrammable is a core PMC (IA32_PMCx).
	CtrProgrammable CounterClass = iota
	// CtrFixed is a fixed-function counter (IA32_FIXED_CTRx).
	CtrFixed
	// CtrUncore is an IMC uncore counter (MSR_UNCORE_PMCx).
	CtrUncore
)

func (c CounterClass) String() string {
	switch c {
	case CtrFixed:
		return "fixed"
	case CtrUncore:
		return "uncore"
	}
	return "pmc"
}

// Assignment places one requested event on one counter for one round.
type Assignment struct {
	// Index is the event's position in the scheduled request list.
	Index int
	// Event is the requested event class.
	Event isa.Event
	// Class is the counter pool; Counter the index within it.
	Class   CounterClass
	Counter int
}

// Round is one multiplexing window: the events simultaneously on counters.
type Round []Assignment

// Schedule is a complete placement: one round when everything fits, a
// rotation of rounds when a pool is oversubscribed.
type Schedule struct {
	// Rounds are the rotation windows, cycled in order.
	Rounds []Round
	// N is the number of requested events.
	N int
}

// Multiplexed reports whether the request needs time multiplexing.
func (s *Schedule) Multiplexed() bool { return len(s.Rounds) > 1 }

// Find returns request index i's assignment within round r, if it has a
// counter that round.
func (s *Schedule) Find(r, i int) (Assignment, bool) {
	for _, a := range s.Rounds[r%len(s.Rounds)] {
		if a.Index == i {
			return a, true
		}
	}
	return Assignment{}, false
}

// placement is the per-request constraint view the packer works from.
type placement struct {
	idx   int
	ev    isa.Event
	fixed uint8 // capable fixed counters (core unit only)
	ctrs  uint8 // capable programmable counters in its pool
	unc   bool  // competes for the uncore pool
}

// constraints resolves one request against the table. Architectural fixed
// events are always countable — even on tables that omit them — because
// the fixed counters are hardwired to them.
func (t *EventTable) constraints(idx int, ev isa.Event) (placement, error) {
	p := placement{idx: idx, ev: ev}
	if d, ok := t.DescFor(ev); ok {
		p.fixed = d.FixedMask
		p.ctrs = d.CtrMask
		p.unc = d.Unit == UnitIMC
	} else if fi := FixedIndexFor(ev); fi >= 0 {
		p.fixed = 1 << uint(fi)
	} else {
		return p, fmt.Errorf("pmu: event %v is not in the %s event table", ev, t.Arch())
	}
	if p.fixed == 0 && p.ctrs == 0 {
		return p, fmt.Errorf("pmu: event %v has no usable counters on %s", ev, t.Arch())
	}
	return p, nil
}

// Schedule packs the requested events onto counters. When every event fits
// simultaneously the schedule has a single round; when a pool is
// oversubscribed it returns the full rotation cycle. An event that cannot
// be placed even on an otherwise-empty PMU (unknown encoding, or a
// constraint mask with no counters) is an error — requests are never
// silently dropped.
func (t *EventTable) Schedule(events []isa.Event) (*Schedule, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("pmu: empty event request")
	}
	reqs := make([]placement, len(events))
	for i, ev := range events {
		p, err := t.constraints(i, ev)
		if err != nil {
			return nil, err
		}
		reqs[i] = p
	}

	// Single-round attempt with no rotation: the common non-multiplexed case.
	if round, all := packRound(reqs, 0); all {
		return &Schedule{Rounds: []Round{round}, N: len(events)}, nil
	}

	// Oversubscribed. Every event must still be placeable alone, otherwise
	// rotation can never serve it.
	for _, r := range reqs {
		if _, ok := packOne(r); !ok {
			return nil, fmt.Errorf(
				"pmu: event %v cannot be placed on any counter it is constrained to (fixed mask %#x, ctr mask %#x)",
				r.ev, r.fixed, r.ctrs)
		}
	}
	// Coverage guarantee: pool-size arithmetic alone cannot see
	// constraint-induced oversubscription (two events pinned to the same
	// counter starve each other inside an otherwise-idle pool), so grow the
	// cycle until every request holds a counter in at least one round. A
	// rotation always needs at least two rounds — a one-round "rotation"
	// would repeat the failed simultaneous packing forever.
	n := rotationCount(reqs)
	if n < 2 {
		n = 2
	}
	rounds := buildRounds(reqs, n)
	for !covers(rounds, len(reqs)) && n < 64 {
		n++
		rounds = buildRounds(reqs, n)
	}
	if !covers(rounds, len(reqs)) {
		return nil, fmt.Errorf("pmu: no %d-round rotation covers all %d requested events", len(rounds), len(events))
	}
	return &Schedule{Rounds: rounds, N: len(events)}, nil
}

// buildRounds packs one full rotation cycle of n windows.
func buildRounds(reqs []placement, n int) []Round {
	rounds := make([]Round, n)
	for r := range rounds {
		round, _ := packRound(reqs, r)
		rounds[r] = round
	}
	return rounds
}

// covers reports whether every request index is placed in some round.
func covers(rounds []Round, n int) bool {
	placed := make([]bool, n)
	for _, round := range rounds {
		for _, a := range round {
			placed[a.Index] = true
		}
	}
	for _, ok := range placed {
		if !ok {
			return false
		}
	}
	return true
}

// rotationCount is the number of rounds one full fairness cycle needs: the
// size of each oversubscribed pool's request list, combined by lcm when
// several pools rotate at once (capped — the cap only rounds off fairness,
// never drops an event).
func rotationCount(reqs []placement) int {
	var nFixed, nProg, nUnc int
	for _, r := range reqs {
		switch classOf(r) {
		case CtrFixed:
			nFixed++
		case CtrUncore:
			nUnc++
		default:
			nProg++
		}
	}
	n := 1
	if nFixed > NumFixed {
		n = lcm(n, nFixed)
	}
	if nProg > NumProgrammable {
		n = lcm(n, nProg)
	}
	if nUnc > NumUncore {
		n = lcm(n, nUnc)
	}
	if n > 64 {
		n = 64
	}
	return n
}

// classOf is the pool a request primarily competes in. Fixed-capable
// events count as fixed-pool even when they can spill to PMCs: the spill
// is a placement fallback, not a rotation driver.
func classOf(r placement) CounterClass {
	switch {
	case r.fixed != 0:
		return CtrFixed
	case r.unc:
		return CtrUncore
	}
	return CtrProgrammable
}

func lcm(a, b int) int {
	g, x := a, b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}

// packRound greedily places one rotation window: each pool's request list
// is rotated by rot, ordered most-constrained-first (stable, so
// unconstrained requests keep their rotated order — reproducing perf's
// classic window rotation exactly when no constraints are in play), and
// placed first-fit on the lowest free capable counter. Returns the round
// and whether every request was placed.
func packRound(reqs []placement, rot int) (Round, bool) {
	var fixedReqs, progReqs, uncReqs []placement
	for _, r := range reqs {
		switch classOf(r) {
		case CtrFixed:
			fixedReqs = append(fixedReqs, r)
		case CtrUncore:
			uncReqs = append(uncReqs, r)
		default:
			progReqs = append(progReqs, r)
		}
	}
	order := make([]placement, 0, len(reqs))
	order = append(order, constrainedOrder(rotate(fixedReqs, rot))...)
	order = append(order, constrainedOrder(rotate(progReqs, rot))...)
	order = append(order, constrainedOrder(rotate(uncReqs, rot))...)

	var usedFixed, usedProg, usedUnc uint8
	round := make(Round, 0, len(order))
	all := true
	for _, r := range order {
		a, ok := place(r, &usedFixed, &usedProg, &usedUnc)
		if !ok {
			all = false
			continue
		}
		round = append(round, a)
	}
	return round, all
}

// packOne reports whether a request fits on an empty PMU.
func packOne(r placement) (Assignment, bool) {
	var f, p, u uint8
	return place(r, &f, &p, &u)
}

// place puts one request on the lowest free counter it is capable of:
// fixed first (fixed counters serve only their hardwired event, so they
// are never worth saving), then the programmable pool under the ctr mask.
func place(r placement, usedFixed, usedProg, usedUnc *uint8) (Assignment, bool) {
	if free := r.fixed &^ *usedFixed; free != 0 {
		i := bits.TrailingZeros8(free)
		*usedFixed |= 1 << uint(i)
		return Assignment{Index: r.idx, Event: r.ev, Class: CtrFixed, Counter: i}, true
	}
	pool, used := CtrProgrammable, usedProg
	if r.unc {
		pool, used = CtrUncore, usedUnc
	}
	if free := r.ctrs &^ *used; free != 0 {
		i := bits.TrailingZeros8(free)
		*used |= 1 << uint(i)
		return Assignment{Index: r.idx, Event: r.ev, Class: pool, Counter: i}, true
	}
	return Assignment{}, false
}

// rotate returns reqs rotated left by rot (mod len).
func rotate(reqs []placement, rot int) []placement {
	n := len(reqs)
	if n == 0 || rot%n == 0 {
		return reqs
	}
	rot %= n
	out := make([]placement, 0, n)
	out = append(out, reqs[rot:]...)
	out = append(out, reqs[:rot]...)
	return out
}

// constrainedOrder stably sorts requests so tighter counter masks place
// first; equal-constraint requests keep their incoming (rotated) order.
func constrainedOrder(reqs []placement) []placement {
	out := append([]placement(nil), reqs...)
	sort.SliceStable(out, func(i, j int) bool {
		return bits.OnesCount8(out[i].ctrs|out[i].fixed) < bits.OnesCount8(out[j].ctrs|out[j].fixed)
	})
	return out
}
