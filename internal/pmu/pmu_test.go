package pmu

import (
	"strings"
	"testing"
	"testing/quick"

	"kleb/internal/isa"
)

func testTable() *EventTable {
	return TableFromClasses("test", map[Encoding]isa.Event{
		{EventSel: 0x2E, Umask: 0x41}: isa.EvLLCMisses,
		{EventSel: 0x2E, Umask: 0x4F}: isa.EvLLCRefs,
		{EventSel: 0x0B, Umask: 0x01}: isa.EvLoads,
		{EventSel: 0x0B, Umask: 0x02}: isa.EvStores,
	})
}

func testPMU() *PMU { return New(testTable()) }

// programLLCMisses programs PMC0 to count LLC misses at the given privilege
// flags and enables it globally.
func programLLCMisses(p *PMU, flags uint64) {
	enc := Encoding{EventSel: 0x2E, Umask: 0x41}
	must(p.WriteMSR(MSRPerfEvtSel0, enc.Sel(flags|SelEn)))
	must(p.WriteMSR(MSRGlobalCtrl, 1))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func TestMSRRoundTrip(t *testing.T) {
	p := testPMU()
	addrs := []uint32{MSRPmc0, MSRPmc0 + 3, MSRPerfEvtSel0, MSRFixedCtr0, MSRFixedCtr0 + 2, MSRFixedCtrCtrl, MSRGlobalCtrl}
	for i, addr := range addrs {
		val := uint64(i*1000 + 7)
		if err := p.WriteMSR(addr, val); err != nil {
			t.Fatalf("write %#x: %v", addr, err)
		}
		got, err := p.ReadMSR(addr)
		if err != nil {
			t.Fatalf("read %#x: %v", addr, err)
		}
		if got != val {
			t.Errorf("MSR %#x: wrote %d read %d", addr, val, got)
		}
	}
}

func TestUnknownMSR(t *testing.T) {
	p := testPMU()
	if err := p.WriteMSR(0x9999, 1); err == nil {
		t.Error("write to unknown MSR should fail")
	}
	if _, err := p.ReadMSR(0x9999); err == nil {
		t.Error("read of unknown MSR should fail")
	}
	if err := p.WriteMSR(MSRGlobalStatus, 1); err == nil {
		t.Error("GLOBAL_STATUS is read-only")
	}
}

func TestCounterMasked48Bits(t *testing.T) {
	p := testPMU()
	must(p.WriteMSR(MSRPmc0, ^uint64(0)))
	got, _ := p.ReadMSR(MSRPmc0)
	if got != CounterMask() {
		t.Errorf("counter not masked to 48 bits: %#x", got)
	}
}

func TestPrivilegeFiltering(t *testing.T) {
	var c isa.Counts
	c[isa.EvLLCMisses] = 100

	p := testPMU()
	programLLCMisses(p, SelUsr)
	p.AddCounts(c, isa.User)
	p.AddCounts(c, isa.Kernel) // must be ignored
	got, _ := p.ReadMSR(MSRPmc0)
	if got != 100 {
		t.Errorf("USR-only counter: got %d, want 100", got)
	}

	p = testPMU()
	programLLCMisses(p, SelOS)
	p.AddCounts(c, isa.User) // ignored
	p.AddCounts(c, isa.Kernel)
	got, _ = p.ReadMSR(MSRPmc0)
	if got != 100 {
		t.Errorf("OS-only counter: got %d, want 100", got)
	}

	p = testPMU()
	programLLCMisses(p, SelUsr|SelOS)
	p.AddCounts(c, isa.User)
	p.AddCounts(c, isa.Kernel)
	got, _ = p.ReadMSR(MSRPmc0)
	if got != 200 {
		t.Errorf("USR+OS counter: got %d, want 200", got)
	}
}

func TestGlobalCtrlGates(t *testing.T) {
	var c isa.Counts
	c[isa.EvLLCMisses] = 50
	p := testPMU()
	programLLCMisses(p, SelUsr)
	must(p.WriteMSR(MSRGlobalCtrl, 0)) // gate off
	p.AddCounts(c, isa.User)
	if got, _ := p.ReadMSR(MSRPmc0); got != 0 {
		t.Errorf("gated counter counted: %d", got)
	}
	// Enable bit in evtsel also gates.
	enc := Encoding{EventSel: 0x2E, Umask: 0x41}
	must(p.WriteMSR(MSRPerfEvtSel0, enc.Sel(SelUsr))) // no SelEn
	must(p.WriteMSR(MSRGlobalCtrl, 1))
	p.AddCounts(c, isa.User)
	if got, _ := p.ReadMSR(MSRPmc0); got != 0 {
		t.Errorf("disabled counter counted: %d", got)
	}
}

func TestFixedCounters(t *testing.T) {
	var c isa.Counts
	c[isa.EvInstructions] = 10
	c[isa.EvCycles] = 20
	c[isa.EvRefCycles] = 30

	p := testPMU()
	// Enable all three fixed counters for user counting.
	ctrl := FixedUsr | FixedUsr<<4 | FixedUsr<<8
	must(p.WriteMSR(MSRFixedCtrCtrl, ctrl))
	must(p.WriteMSR(MSRGlobalCtrl, 0x7<<32))
	p.AddCounts(c, isa.User)
	p.AddCounts(c, isa.Kernel) // OS bit not set
	for i, want := range []uint64{10, 20, 30} {
		got, _ := p.ReadMSR(MSRFixedCtr0 + uint32(i))
		if got != want {
			t.Errorf("fixed %d: got %d want %d", i, got, want)
		}
	}
}

func TestOverflowSetsStatusAndPMI(t *testing.T) {
	p := testPMU()
	programLLCMisses(p, SelUsr|SelInt)
	must(p.WriteMSR(MSRPmc0, OverflowInit(10)))
	fired := 0
	p.SetPMIHandler(func(counter int, fixed bool) {
		fired++
		if counter != 0 || fixed {
			t.Errorf("PMI identity: counter=%d fixed=%v", counter, fixed)
		}
	})
	var c isa.Counts
	c[isa.EvLLCMisses] = 9
	p.AddCounts(c, isa.User)
	if fired != 0 {
		t.Fatal("PMI before overflow")
	}
	c[isa.EvLLCMisses] = 2
	p.AddCounts(c, isa.User)
	if fired != 1 {
		t.Fatalf("PMI count %d", fired)
	}
	status, _ := p.ReadMSR(MSRGlobalStatus)
	if status&1 == 0 {
		t.Error("overflow status bit not set")
	}
	// Writing OVF_CTRL clears it.
	must(p.WriteMSR(MSRGlobalOvf, 1))
	status, _ = p.ReadMSR(MSRGlobalStatus)
	if status != 0 {
		t.Error("status not cleared")
	}
	// Counter wrapped: remaining count after overflow is 1 (9+2-10... at
	// 48-bit width: init+11 wraps to 1).
	got, _ := p.ReadMSR(MSRPmc0)
	if got != 1 {
		t.Errorf("wrapped counter: got %d want 1", got)
	}
}

func TestFixedOverflowPMI(t *testing.T) {
	p := testPMU()
	must(p.WriteMSR(MSRFixedCtrCtrl, FixedUsr|FixedPMI))
	must(p.WriteMSR(MSRGlobalCtrl, 1<<32))
	must(p.WriteMSR(MSRFixedCtr0, OverflowInit(5)))
	var fired bool
	p.SetPMIHandler(func(counter int, fixed bool) {
		fired = counter == 0 && fixed
	})
	var c isa.Counts
	c[isa.EvInstructions] = 6
	p.AddCounts(c, isa.User)
	if !fired {
		t.Error("fixed-counter PMI not delivered")
	}
}

func TestNoPMIWithoutIntBit(t *testing.T) {
	p := testPMU()
	programLLCMisses(p, SelUsr) // no SelInt
	must(p.WriteMSR(MSRPmc0, OverflowInit(1)))
	fired := false
	p.SetPMIHandler(func(int, bool) { fired = true })
	var c isa.Counts
	c[isa.EvLLCMisses] = 5
	p.AddCounts(c, isa.User)
	if fired {
		t.Error("PMI fired without INT bit")
	}
	if status, _ := p.ReadMSR(MSRGlobalStatus); status&1 == 0 {
		t.Error("status should still be set on overflow")
	}
}

func TestRDPMC(t *testing.T) {
	p := testPMU()
	must(p.WriteMSR(MSRPmc0+2, 777))
	must(p.WriteMSR(MSRFixedCtr0+1, 888))
	if v, err := p.RDPMC(2); err != nil || v != 777 {
		t.Errorf("RDPMC(2): %d, %v", v, err)
	}
	if v, err := p.RDPMC(1 | 1<<30); err != nil || v != 888 {
		t.Errorf("RDPMC fixed: %d, %v", v, err)
	}
	if _, err := p.RDPMC(4); err == nil {
		t.Error("out-of-range RDPMC should fail")
	}
	if _, err := p.RDPMC(3 | 1<<30); err == nil {
		t.Error("out-of-range fixed RDPMC should fail")
	}
}

func TestOverflowInit(t *testing.T) {
	if OverflowInit(0) != 0 {
		t.Error("zero period")
	}
	if OverflowInit(1) != CounterMask() {
		t.Error("period 1 should arm at mask")
	}
	if OverflowInit(CounterMask()+10) != 0 {
		t.Error("oversized period should clamp to 0")
	}
}

func TestEventTableLookups(t *testing.T) {
	tab := testTable()
	enc := Encoding{EventSel: 0x2E, Umask: 0x41}
	ev, ok := tab.Lookup(enc.Sel(SelEn | SelUsr))
	if !ok || ev != isa.EvLLCMisses {
		t.Error("Lookup failed")
	}
	back, ok := tab.EncodingFor(isa.EvLLCMisses)
	if !ok || back != enc {
		t.Error("EncodingFor failed")
	}
	if _, ok := tab.EncodingFor(isa.EvMulOps); ok {
		t.Error("absent event resolved")
	}
	if _, ok := tab.Lookup(0xFFFF); ok {
		t.Error("bogus selector resolved")
	}
}

// Property: for any sequence of count batches, the counter value equals the
// running sum modulo 2^48.
func TestCounterSumProperty(t *testing.T) {
	prop := func(batches []uint32) bool {
		p := testPMU()
		programLLCMisses(p, SelUsr)
		var sum uint64
		for _, b := range batches {
			var c isa.Counts
			c[isa.EvLLCMisses] = uint64(b)
			p.AddCounts(c, isa.User)
			sum += uint64(b)
		}
		got, _ := p.ReadMSR(MSRPmc0)
		return got == sum&CounterMask()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodingSel(t *testing.T) {
	enc := Encoding{EventSel: 0xAB, Umask: 0xCD}
	sel := enc.Sel(SelUsr | SelEn)
	if sel&0xFF != 0xAB || (sel>>8)&0xFF != 0xCD {
		t.Errorf("Sel packing: %#x", sel)
	}
	if sel&SelUsr == 0 || sel&SelEn == 0 {
		t.Error("flags lost")
	}
}

func TestDecodeAndSnapshot(t *testing.T) {
	p := testPMU()
	enc := Encoding{EventSel: 0x2E, Umask: 0x41}
	sel := enc.Sel(SelUsr | SelEn)
	out := p.DecodeSel(sel)
	for _, want := range []string{"LLC_MISSES", "usr", "en", "0x2e", "0x41"} {
		if !strings.Contains(out, want) {
			t.Errorf("decode missing %q: %s", want, out)
		}
	}
	if !strings.Contains(p.DecodeSel(0xFFFF), "?") {
		t.Error("unknown encodings should decode as ?")
	}
	must(p.WriteMSR(MSRPerfEvtSel0, sel))
	must(p.WriteMSR(MSRPmc0, 42))
	snap := p.Snapshot()
	for _, want := range []string{"PMC0=42", "LLC_MISSES", "FIXED0=0", "GLOBAL_CTRL"} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}
}
