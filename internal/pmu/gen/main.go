// Command gen emits the pmu package's architectural event tables
// (events_gen.go) from the checked-in spec (events.spec), the same
// build-time pipeline likwid and rust-perfcnt use to turn vendor event
// files into static tables. Run via `go generate ./internal/pmu`.
//
// With -check it regenerates in memory and fails if the file on disk is
// stale — scripts/lint.sh runs this so the spec and the generated table
// can never drift apart.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"go/format"
	"os"
	"strconv"
	"strings"
)

// classIdent maps spec class names onto isa event-class identifiers. The
// spec speaks simulator classes, not mnemonics, so one generator serves
// every microarchitecture's naming.
var classIdent = map[string]string{
	"instructions":  "isa.EvInstructions",
	"cycles":        "isa.EvCycles",
	"ref-cycles":    "isa.EvRefCycles",
	"loads":         "isa.EvLoads",
	"stores":        "isa.EvStores",
	"branches":      "isa.EvBranches",
	"branch-misses": "isa.EvBranchMisses",
	"llc-refs":      "isa.EvLLCRefs",
	"llc-misses":    "isa.EvLLCMisses",
	"l1d-misses":    "isa.EvL1DMisses",
	"l2-misses":     "isa.EvL2Misses",
	"mul-ops":       "isa.EvMulOps",
	"fp-ops":        "isa.EvFPOps",
	"cache-flushes": "isa.EvCacheFlushes",
	"dtlb-misses":   "isa.EvDTLBMisses",
	"stall-cycles":  "isa.EvStallCycles",
	"cas-reads":     "isa.EvCASReads",
	"cas-writes":    "isa.EvCASWrites",
}

type entry struct {
	name  string
	class string // isa identifier
	unit  string // "UnitCore" | "UnitIMC"
	code  uint8
	umask uint8
	cmask uint8
	flags []string // EncEdge / EncAnyThr / EncInv
	fixed uint8
	ctrs  uint8
	brief string
}

type arch struct {
	name    string
	entries []entry
}

func main() {
	specPath := flag.String("spec", "events.spec", "event spec to read")
	outPath := flag.String("out", "events_gen.go", "generated file to write")
	check := flag.Bool("check", false, "verify the generated file is up to date instead of writing")
	flag.Parse()

	arches, err := parseSpec(*specPath)
	if err != nil {
		fail(err)
	}
	out, err := format.Source(emit(arches))
	if err != nil {
		fail(fmt.Errorf("generated source does not parse: %w", err))
	}
	if *check {
		disk, err := os.ReadFile(*outPath)
		if err != nil {
			fail(fmt.Errorf("read %s: %w", *outPath, err))
		}
		if !bytes.Equal(disk, out) {
			fail(fmt.Errorf("%s is stale: regenerate with `go generate ./internal/pmu`", *outPath))
		}
		return
	}
	if err := os.WriteFile(*outPath, out, 0o644); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pmu/gen:", err)
	os.Exit(1)
}

// parseSpec reads the line-oriented spec: `arch NAME` opens a table;
// `core NAME k=v ...` and `uncore imc NAME k=v ...` add entries to it.
func parseSpec(path string) ([]arch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var arches []arch
	cur := -1
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitFields(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		switch fields[0] {
		case "arch":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%s:%d: arch needs exactly one name", path, lineNo)
			}
			arches = append(arches, arch{name: fields[1]})
			cur = len(arches) - 1
		case "core", "uncore":
			if cur < 0 {
				return nil, fmt.Errorf("%s:%d: event before any arch line", path, lineNo)
			}
			e, err := parseEntry(fields)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
			}
			arches[cur].entries = append(arches[cur].entries, e)
		default:
			return nil, fmt.Errorf("%s:%d: unknown directive %q", path, lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(arches) == 0 {
		return nil, fmt.Errorf("%s: no arch tables", path)
	}
	return arches, nil
}

// splitFields tokenizes one line, keeping double-quoted strings (the brief
// text) as single fields with the quotes stripped.
func splitFields(line string) ([]string, error) {
	var fields []string
	for i := 0; i < len(line); {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		inQuote := false
		for i < len(line) && (inQuote || line[i] != ' ') {
			if line[i] == '"' {
				inQuote = !inQuote
			}
			i++
		}
		if inQuote {
			return nil, fmt.Errorf("unterminated quote")
		}
		fields = append(fields, strings.ReplaceAll(line[start:i], `"`, ""))
	}
	return fields, nil
}

func parseEntry(fields []string) (entry, error) {
	var e entry
	i := 1
	if fields[0] == "uncore" {
		if len(fields) < 3 || fields[1] != "imc" {
			return e, fmt.Errorf("uncore entries must name the imc unit")
		}
		e.unit = "UnitIMC"
		i = 2
	} else {
		e.unit = "UnitCore"
	}
	if i >= len(fields) {
		return e, fmt.Errorf("missing event name")
	}
	e.name = fields[i]
	i++
	for ; i < len(fields); i++ {
		key, val, found := strings.Cut(fields[i], "=")
		if !found {
			switch key {
			case "edge":
				e.flags = append(e.flags, "EncEdge")
			case "any":
				e.flags = append(e.flags, "EncAnyThr")
			case "inv":
				e.flags = append(e.flags, "EncInv")
			default:
				return e, fmt.Errorf("bare token %q (want key=value or edge/any/inv)", key)
			}
			continue
		}
		switch key {
		case "class":
			ident, ok := classIdent[val]
			if !ok {
				return e, fmt.Errorf("unknown event class %q", val)
			}
			e.class = ident
		case "code":
			v, err := parseU8(val)
			if err != nil {
				return e, err
			}
			e.code = v
		case "umask":
			v, err := parseU8(val)
			if err != nil {
				return e, err
			}
			e.umask = v
		case "cmask":
			v, err := parseU8(val)
			if err != nil {
				return e, err
			}
			e.cmask = v
		case "fixed":
			v, err := parseU8(val)
			if err != nil {
				return e, err
			}
			e.fixed = v
		case "ctrs":
			v, err := parseU8(val)
			if err != nil {
				return e, err
			}
			e.ctrs = v
		case "brief":
			e.brief = val
		default:
			return e, fmt.Errorf("unknown key %q", key)
		}
	}
	if e.class == "" {
		return e, fmt.Errorf("event %s has no class=", e.name)
	}
	if e.fixed == 0 && e.ctrs == 0 {
		return e, fmt.Errorf("event %s has no counters (fixed and ctrs both zero)", e.name)
	}
	return e, nil
}

func parseU8(s string) (uint8, error) {
	v, err := strconv.ParseUint(s, 0, 8)
	if err != nil {
		return 0, fmt.Errorf("bad value %q: %w", s, err)
	}
	return uint8(v), nil
}

// emit renders the generated Go source. Output is deterministic: spec
// order is table order.
func emit(arches []arch) []byte {
	var b bytes.Buffer
	b.WriteString("// Code generated by go run ./gen -spec events.spec -out events_gen.go; DO NOT EDIT.\n")
	b.WriteString("//\n// Edit events.spec and run `go generate ./internal/pmu` instead.\n\n")
	b.WriteString("package pmu\n\nimport \"kleb/internal/isa\"\n\nfunc init() {\n")
	for _, a := range arches {
		fmt.Fprintf(&b, "\tregisterArch(%q, []EventDesc{\n", a.name)
		for _, e := range a.entries {
			fmt.Fprintf(&b, "\t\t{\n")
			fmt.Fprintf(&b, "\t\t\tName:  %q,\n", e.name)
			if e.brief != "" {
				fmt.Fprintf(&b, "\t\t\tBrief: %q,\n", e.brief)
			}
			fmt.Fprintf(&b, "\t\t\tEvent: %s,\n", e.class)
			fmt.Fprintf(&b, "\t\t\tEnc:   %s,\n", encLiteral(e))
			if e.unit != "UnitCore" {
				fmt.Fprintf(&b, "\t\t\tUnit:  %s,\n", e.unit)
			}
			if e.fixed != 0 {
				fmt.Fprintf(&b, "\t\t\tFixedMask: %#03b,\n", e.fixed)
			}
			if e.ctrs != 0 {
				fmt.Fprintf(&b, "\t\t\tCtrMask: %#04b,\n", e.ctrs)
			}
			fmt.Fprintf(&b, "\t\t},\n")
		}
		fmt.Fprintf(&b, "\t})\n")
	}
	b.WriteString("}\n")
	return b.Bytes()
}

func encLiteral(e entry) string {
	s := fmt.Sprintf("Encoding{EventSel: %#02x, Umask: %#02x", e.code, e.umask)
	if e.cmask != 0 {
		s += fmt.Sprintf(", CMask: %d", e.cmask)
	}
	if len(e.flags) > 0 {
		s += ", Flags: " + strings.Join(e.flags, " | ")
	}
	return s + "}"
}
