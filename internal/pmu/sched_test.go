package pmu

import (
	"reflect"
	"testing"

	"kleb/internal/isa"
)

// TestLookupRoundTripAllArches is the lossless-resolution property of every
// generated table: for every event with a programmable encoding, any
// combination of per-use filter flags layered onto Sel must resolve back to
// the same event class — filter bits (USR/OS/INT/EN) never participate in
// event identity.
func TestLookupRoundTripAllArches(t *testing.T) {
	filterCombos := []uint64{
		0,
		SelUsr,
		SelOS,
		SelUsr | SelOS,
		SelUsr | SelEn,
		SelUsr | SelOS | SelInt | SelEn,
		SelOS | SelInt,
	}
	for _, arch := range Arches() {
		table := MustTable(arch)
		for _, d := range table.Descs() {
			enc, ok := table.EncodingFor(d.Event)
			if d.FixedOnly() {
				if ok {
					t.Errorf("%s: EncodingFor(%v) succeeded for a fixed-only event", arch, d.Event)
				}
				continue
			}
			if !ok {
				t.Errorf("%s: EncodingFor(%v) failed", arch, d.Event)
				continue
			}
			if enc != d.Enc {
				t.Errorf("%s: EncodingFor(%v) = %v, want %v", arch, d.Event, enc, d.Enc)
			}
			lookup := table.Lookup
			if d.Unit == UnitIMC {
				lookup = table.LookupUncore
			}
			for _, flags := range filterCombos {
				ev, ok := lookup(enc.Sel(flags))
				if !ok || ev != d.Event {
					t.Errorf("%s: Lookup(%v.Sel(%#x)) = %v,%v, want %v", arch, enc, flags, ev, ok, d.Event)
				}
			}
			// decodeEncoding must invert Bits exactly (the hot-path key).
			if got := decodeEncoding(enc.Sel(SelUsr | SelOS | SelInt | SelEn)); got != enc {
				t.Errorf("%s: decodeEncoding(Sel) = %v, want %v", arch, got, enc)
			}
		}
	}
}

// spillTable builds a synthetic table where cycles is fixed-capable with a
// PMC fallback, plus enough plain events to force the spill.
func spillTable(t *testing.T) *EventTable {
	t.Helper()
	descs := []EventDesc{
		{Name: "CYCLES.A", Event: isa.EvCycles, Enc: Encoding{EventSel: 0x3C}, FixedMask: 1 << 1, CtrMask: 0xF},
		{Name: "LOADS", Event: isa.EvLoads, Enc: Encoding{EventSel: 0x0B, Umask: 0x01}, CtrMask: 0xF},
		{Name: "STORES", Event: isa.EvStores, Enc: Encoding{EventSel: 0x0B, Umask: 0x02}, CtrMask: 0xF},
		{Name: "BRANCHES", Event: isa.EvBranches, Enc: Encoding{EventSel: 0xC4}, CtrMask: 0xF},
		{Name: "MISSES", Event: isa.EvLLCMisses, Enc: Encoding{EventSel: 0x2E, Umask: 0x41}, CtrMask: 0xF},
	}
	table, err := NewTable("spill-test", descs)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

// TestScheduleFixedEventStaysOnFixedCounter: a fixed-capable event must
// take its fixed counter, leaving all four PMCs for the others — five
// requests, one round.
func TestScheduleFixedEventStaysOnFixedCounter(t *testing.T) {
	table := spillTable(t)
	sched, err := table.Schedule([]isa.Event{isa.EvCycles, isa.EvLoads, isa.EvStores, isa.EvBranches, isa.EvLLCMisses})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Multiplexed() {
		t.Fatalf("5 events with a fixed-capable cycles multiplexed: %d rounds", len(sched.Rounds))
	}
	a, ok := sched.Find(0, 0)
	if !ok || a.Class != CtrFixed || a.Counter != 1 {
		t.Errorf("cycles assignment = %+v,%v, want fixed counter 1", a, ok)
	}
}

// TestScheduleUnsatisfiable: an event whose constraint masks admit no
// counter at all must error, never silently drop.
func TestScheduleUnsatisfiable(t *testing.T) {
	table, err := NewTable("unsat-test", []EventDesc{
		{Name: "REF", Event: isa.EvRefCycles, Enc: Encoding{EventSel: 0x3C, Umask: 1}, FixedMask: 1 << 2}, // fixed-only
		{Name: "LOADS", Event: isa.EvLoads, Enc: Encoding{EventSel: 0x0B, Umask: 1}, CtrMask: 0xF},
	})
	if err != nil {
		t.Fatal(err)
	}
	// An event the table does not know at all.
	if _, err := table.Schedule([]isa.Event{isa.EvLoads, isa.EvFPOps}); err == nil {
		t.Error("unknown event scheduled without error")
	}
	// Architectural fixed events schedule even without a table entry (the
	// hardwired counters serve them); non-fixed events do not.
	if _, err := table.Schedule([]isa.Event{isa.EvRefCycles, isa.EvLoads}); err != nil {
		t.Errorf("fixed-only ref-cycles failed to schedule: %v", err)
	}
}

// TestScheduleConstrainedOversubscription: two events pinned to the same
// two counters plus one more pinned event forces rotation of the
// constrained pool while unconstrained events keep counters every round.
func TestScheduleConstrainedOversubscription(t *testing.T) {
	table, err := NewTable("pin-test", []EventDesc{
		{Name: "A", Event: isa.EvMulOps, Enc: Encoding{EventSel: 0x14}, CtrMask: 0x1}, // PMC0 only
		{Name: "B", Event: isa.EvFPOps, Enc: Encoding{EventSel: 0x10}, CtrMask: 0x1},  // PMC0 only
		{Name: "C", Event: isa.EvLoads, Enc: Encoding{EventSel: 0x0B}, CtrMask: 0xF},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := table.Schedule([]isa.Event{isa.EvMulOps, isa.EvFPOps, isa.EvLoads})
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Multiplexed() {
		t.Fatal("two events pinned to one counter did not multiplex")
	}
	// Over a full rotation cycle every request must hold a counter at least
	// once, and the unconstrained event must hold one every round.
	seen := make([]int, 3)
	for r := range sched.Rounds {
		for i := 0; i < 3; i++ {
			if _, ok := sched.Find(r, i); ok {
				seen[i]++
			}
		}
		if _, ok := sched.Find(r, 2); !ok {
			t.Errorf("round %d: unconstrained loads lost its counter", r)
		}
	}
	for i, n := range seen {
		if n == 0 {
			t.Errorf("request %d never placed across %d rounds", i, len(sched.Rounds))
		}
	}
}

// TestScheduleUncoreRotation: oversubscribing the 2-counter uncore pool
// rotates it independently of an untouched core pool.
func TestScheduleUncoreRotation(t *testing.T) {
	table, err := NewTable("unc-test", []EventDesc{
		{Name: "RD", Event: isa.EvCASReads, Enc: Encoding{EventSel: 0x04, Umask: 0x03}, Unit: UnitIMC, CtrMask: 0x3},
		{Name: "WR", Event: isa.EvCASWrites, Enc: Encoding{EventSel: 0x04, Umask: 0x0C}, Unit: UnitIMC, CtrMask: 0x3},
		{Name: "FLUSH", Event: isa.EvCacheFlushes, Enc: Encoding{EventSel: 0xAE}, Unit: UnitIMC, CtrMask: 0x3},
		{Name: "LOADS", Event: isa.EvLoads, Enc: Encoding{EventSel: 0x0B}, CtrMask: 0xF},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := table.Schedule([]isa.Event{isa.EvCASReads, isa.EvCASWrites, isa.EvCacheFlushes, isa.EvLoads})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sched.Rounds); got != 3 {
		t.Fatalf("3 uncore events on %d uncore counters: %d rounds, want 3", NumUncore, got)
	}
	for r, round := range sched.Rounds {
		unc := 0
		for _, a := range round {
			switch a.Class {
			case CtrUncore:
				unc++
				if a.Counter >= NumUncore {
					t.Errorf("round %d: uncore counter %d out of range", r, a.Counter)
				}
			case CtrProgrammable:
				if a.Event != isa.EvLoads {
					t.Errorf("round %d: %v placed on a core PMC", r, a.Event)
				}
			}
		}
		if unc != NumUncore {
			t.Errorf("round %d: %d uncore counters used, want %d (pool should stay full)", r, unc, NumUncore)
		}
		if _, ok := sched.Find(r, 3); !ok {
			t.Errorf("round %d: core loads lost its counter to uncore rotation", r)
		}
	}
}

// TestScheduleDeterministic: repeated scheduling of the same request on the
// same table yields identical schedules — the property the byte-identical
// artifact goldens stand on.
func TestScheduleDeterministic(t *testing.T) {
	table := MustTable("nehalem")
	req := []isa.Event{
		isa.EvLoads, isa.EvStores, isa.EvBranches, isa.EvLLCMisses,
		isa.EvBranchMisses, isa.EvLLCRefs, isa.EvMulOps, isa.EvDTLBMisses,
		isa.EvInstructions, isa.EvCASReads,
	}
	first, err := table.Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		again, err := table.Schedule(req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("schedule %d differs:\n%+v\nvs\n%+v", i, first, again)
		}
	}
}
