// Event-table vocabulary: architectural event encodings, per-event counter
// constraints, and the per-microarchitecture tables that map encodings onto
// the simulator's ground-truth event classes.
//
// The shipped tables (events_gen.go) are *generated* from the checked-in
// spec events.spec — mirroring how likwid's perfmon_*_events.h headers and
// rust-perfcnt's IntelPerformanceCounterDescription tables are generated
// from Intel's event files rather than written by hand. Regenerate with
// `go generate ./internal/pmu`; scripts/lint.sh fails if the generated file
// drifts from the spec.
//
//go:generate go run ./gen -spec events.spec -out events_gen.go
package pmu

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"

	"kleb/internal/isa"
)

// Encoding is an architectural event encoding: the event-select and unit
// mask every event has, plus the counter-mask/flag qualifiers some
// encodings require (e.g. Nehalem's stall-cycle idiom cmask=1,inv).
type Encoding struct {
	EventSel uint8
	Umask    uint8
	// CMask is the counter-mask threshold (IA32_PERFEVTSEL bits 24-31);
	// zero for plain occurrence counting.
	CMask uint8
	// Flags holds the encoding-defining qualifier bits (EncEdge, EncAnyThr,
	// EncInv) — NOT the privilege/enable filter bits, which callers supply
	// per use via Sel.
	Flags uint8
}

// Encoding-defining qualifier flags (Encoding.Flags bits).
const (
	EncEdge   uint8 = 1 << 0 // edge detect (IA32_PERFEVTSEL bit 18)
	EncAnyThr uint8 = 1 << 1 // any-thread (bit 21)
	EncInv    uint8 = 1 << 2 // invert cmask comparison (bit 23)
)

// encodingMask covers exactly the IA32_PERFEVTSEL bits that identify an
// event: event select, umask, edge, any-thread, invert and cmask. The
// remaining bits (USR/OS/PC/INT/EN) are per-use filters and must never
// influence event resolution — Lookup strips them so that
// EncodingFor → Sel(anyFlags) → Lookup round-trips losslessly.
const encodingMask uint64 = 0xFF<<0 | 0xFF<<8 | 1<<18 | 1<<21 | 1<<23 | 0xFF<<24

// Bits returns the encoding-defining bits of the IA32_PERFEVTSEL value.
func (e Encoding) Bits() uint64 {
	v := uint64(e.EventSel) | uint64(e.Umask)<<8 | uint64(e.CMask)<<24
	if e.Flags&EncEdge != 0 {
		v |= 1 << 18
	}
	if e.Flags&EncAnyThr != 0 {
		v |= 1 << 21
	}
	if e.Flags&EncInv != 0 {
		v |= 1 << 23
	}
	return v
}

// Sel builds an IA32_PERFEVTSEL value from the encoding and filter flags.
func (e Encoding) Sel(flags uint64) uint64 { return e.Bits() | flags }

// decodeEncoding extracts the encoding-defining bits of a written
// IA32_PERFEVTSEL value back into an Encoding key.
func decodeEncoding(sel uint64) Encoding {
	var flags uint8
	if sel&(1<<18) != 0 {
		flags |= EncEdge
	}
	if sel&(1<<21) != 0 {
		flags |= EncAnyThr
	}
	if sel&(1<<23) != 0 {
		flags |= EncInv
	}
	return Encoding{
		EventSel: uint8(sel),
		Umask:    uint8(sel >> 8),
		CMask:    uint8(sel >> 24),
		Flags:    flags,
	}
}

// String renders the encoding in perf's rUUEE style, with qualifiers.
func (e Encoding) String() string {
	s := fmt.Sprintf("r%02X%02X", e.Umask, e.EventSel)
	if e.CMask != 0 {
		s += fmt.Sprintf(",cmask=%d", e.CMask)
	}
	if e.Flags&EncEdge != 0 {
		s += ",edge"
	}
	if e.Flags&EncAnyThr != 0 {
		s += ",any"
	}
	if e.Flags&EncInv != 0 {
		s += ",inv"
	}
	return s
}

// ParseRawEncoding parses perf's raw event syntax "rUUEE" (hex umask byte
// then hex event-select byte, e.g. r0304 = umask 0x03, event 0x04).
func ParseRawEncoding(s string) (Encoding, bool) {
	s = strings.TrimSpace(s)
	if len(s) != 5 || (s[0] != 'r' && s[0] != 'R') {
		return Encoding{}, false
	}
	var umask, sel uint8
	if _, err := fmt.Sscanf(s[1:], "%02x%02x", &umask, &sel); err != nil {
		return Encoding{}, false
	}
	return Encoding{EventSel: sel, Umask: umask}, true
}

// Unit is the PMU block an event counts in.
type Unit uint8

const (
	// UnitCore is the per-core PMU (fixed + programmable counters).
	UnitCore Unit = iota
	// UnitIMC is the integrated-memory-controller uncore PMU. Uncore
	// counters observe socket-wide traffic and ignore privilege filters.
	UnitIMC
)

func (u Unit) String() string {
	if u == UnitIMC {
		return "imc"
	}
	return "core"
}

// EventDesc is one generated event-table entry: the architectural encoding
// of an event class on a microarchitecture plus its counter constraints.
type EventDesc struct {
	// Name is the architectural mnemonic ("ARITH.MUL").
	Name string
	// Brief is the one-line SDM-style description.
	Brief string
	// Event is the simulator ground-truth class the encoding counts.
	Event isa.Event
	// Enc is the architectural encoding.
	Enc Encoding
	// Unit selects the PMU block (core / IMC uncore).
	Unit Unit
	// FixedMask is the bitmask of fixed-function counters that count this
	// event (zero for events with no fixed counter).
	FixedMask uint8
	// CtrMask is the bitmask of programmable counters (core PMCs for
	// UnitCore, uncore PMCs for UnitIMC) able to count this event. Zero
	// means fixed-only.
	CtrMask uint8
}

// FixedOnly reports whether the event can only live on a fixed counter.
func (d EventDesc) FixedOnly() bool { return d.FixedMask != 0 && d.CtrMask == 0 }

// EventTable is one microarchitecture's event vocabulary: the generated
// descriptor list plus the lookup indexes the hot paths use.
type EventTable struct {
	arch  string
	descs []EventDesc

	byCore  map[Encoding]int
	byUnc   map[Encoding]int
	byEvent map[isa.Event]int
	byName  map[string]int
}

// NewTable builds a table from descriptors, validating that encodings and
// event classes are unique per unit and counter masks are in range.
func NewTable(arch string, descs []EventDesc) (*EventTable, error) {
	t := &EventTable{
		arch:    arch,
		descs:   append([]EventDesc(nil), descs...),
		byCore:  make(map[Encoding]int, len(descs)),
		byUnc:   make(map[Encoding]int),
		byEvent: make(map[isa.Event]int, len(descs)),
		byName:  make(map[string]int, len(descs)),
	}
	for i, d := range t.descs {
		switch d.Unit {
		case UnitCore:
			if prev, dup := t.byCore[d.Enc]; dup {
				return nil, fmt.Errorf("pmu: table %s: encoding %v maps to both %v and %v",
					arch, d.Enc, t.descs[prev].Event, d.Event)
			}
			t.byCore[d.Enc] = i
			t.descs[i].CtrMask &= (1 << NumProgrammable) - 1
			t.descs[i].FixedMask &= (1 << NumFixed) - 1
		case UnitIMC:
			if prev, dup := t.byUnc[d.Enc]; dup {
				return nil, fmt.Errorf("pmu: table %s: uncore encoding %v maps to both %v and %v",
					arch, d.Enc, t.descs[prev].Event, d.Event)
			}
			t.byUnc[d.Enc] = i
			t.descs[i].CtrMask &= (1 << NumUncore) - 1
			if d.FixedMask != 0 {
				return nil, fmt.Errorf("pmu: table %s: uncore event %s cannot be fixed-capable", arch, d.Name)
			}
		default:
			return nil, fmt.Errorf("pmu: table %s: event %s has unknown unit %d", arch, d.Name, d.Unit)
		}
		if _, dup := t.byEvent[d.Event]; dup {
			return nil, fmt.Errorf("pmu: table %s: event class %v has two encodings", arch, d.Event)
		}
		t.byEvent[d.Event] = i
		t.byName[d.Name] = i
	}
	return t, nil
}

// TableFromClasses builds a table from a plain encoding→class map with
// default constraints (any programmable counter, plus the architectural
// fixed counter for the three fixed event classes). Tests and benchmarks
// use it where the full generated vocabulary is overkill.
func TableFromClasses(arch string, classes map[Encoding]isa.Event) *EventTable {
	encs := make([]Encoding, 0, len(classes))
	for enc := range classes {
		encs = append(encs, enc)
	}
	// The map has no deterministic order; index order is part of the
	// table's identity, so sort by encoding bits.
	sort.Slice(encs, func(i, j int) bool { return encs[i].Bits() < encs[j].Bits() })
	descs := make([]EventDesc, 0, len(encs))
	for _, enc := range encs {
		ev := classes[enc]
		d := EventDesc{
			Name:    ev.String(),
			Event:   ev,
			Enc:     enc,
			Unit:    UnitCore,
			CtrMask: (1 << NumProgrammable) - 1,
		}
		if idx := FixedIndexFor(ev); idx >= 0 {
			d.FixedMask = 1 << uint(idx)
		}
		descs = append(descs, d)
	}
	t, err := NewTable(arch, descs)
	if err != nil {
		panic(err) // duplicate entries in a literal map are a programming error
	}
	return t
}

// archRegistry holds the generated per-microarchitecture descriptor lists;
// events_gen.go populates it from init.
var archRegistry = map[string][]EventDesc{}

// registerArch is called by the generated code.
func registerArch(arch string, descs []EventDesc) { archRegistry[arch] = descs }

// builtTables caches constructed tables; machines boot thousands of times
// per experiment and the tables are immutable.
var builtTables = map[string]*EventTable{}

// MustTable returns the generated table for a microarchitecture ("nehalem",
// "cascadelake"), panicking on unknown names — profiles are static.
func MustTable(arch string) *EventTable {
	if t, ok := builtTables[arch]; ok {
		return t
	}
	descs, ok := archRegistry[arch]
	if !ok {
		panic(fmt.Sprintf("pmu: no generated event table for %q", arch))
	}
	t, err := NewTable(arch, descs)
	if err != nil {
		panic(err)
	}
	builtTables[arch] = t
	return t
}

// Arches lists the generated microarchitectures, sorted.
func Arches() []string {
	out := make([]string, 0, len(archRegistry))
	for arch := range archRegistry {
		out = append(out, arch)
	}
	sort.Strings(out)
	return out
}

// Arch returns the table's microarchitecture name.
func (t *EventTable) Arch() string {
	if t == nil {
		return ""
	}
	return t.arch
}

// Descs returns the descriptor list in table order. Callers must not
// mutate it.
func (t *EventTable) Descs() []EventDesc {
	if t == nil {
		return nil
	}
	return t.descs
}

// Lookup resolves a written IA32_PERFEVTSEL value to a core event class,
// considering only the encoding-defining bits (filter/enable bits are
// per-use and ignored).
func (t *EventTable) Lookup(sel uint64) (isa.Event, bool) {
	d, ok := t.LookupDesc(sel)
	return d.Event, ok
}

// LookupDesc is Lookup returning the full descriptor.
func (t *EventTable) LookupDesc(sel uint64) (EventDesc, bool) {
	if t == nil {
		return EventDesc{}, false
	}
	i, ok := t.byCore[decodeEncoding(sel)]
	if !ok {
		return EventDesc{}, false
	}
	return t.descs[i], true
}

// LookupUncore resolves an uncore PERFEVTSEL value to its event class.
func (t *EventTable) LookupUncore(sel uint64) (isa.Event, bool) {
	if t == nil {
		return 0, false
	}
	i, ok := t.byUnc[decodeEncoding(sel)]
	if !ok {
		return 0, false
	}
	return t.descs[i].Event, true
}

// EncodingFor returns the architectural encoding that counts ev on a
// *programmable* counter of this machine, if the microarchitecture exposes
// one (fixed-only events have no programmable encoding).
func (t *EventTable) EncodingFor(ev isa.Event) (Encoding, bool) {
	d, ok := t.DescFor(ev)
	if !ok || d.FixedOnly() {
		return Encoding{}, false
	}
	return d.Enc, true
}

// DescFor returns the full descriptor for an event class.
func (t *EventTable) DescFor(ev isa.Event) (EventDesc, bool) {
	if t == nil {
		return EventDesc{}, false
	}
	i, ok := t.byEvent[ev]
	if !ok {
		return EventDesc{}, false
	}
	return t.descs[i], true
}

// DescByName resolves an architectural mnemonic from this table.
func (t *EventTable) DescByName(name string) (EventDesc, bool) {
	if t == nil {
		return EventDesc{}, false
	}
	i, ok := t.byName[strings.ToUpper(strings.TrimSpace(name))]
	if !ok {
		return EventDesc{}, false
	}
	return t.descs[i], true
}

// FixedIndexFor maps the three architecturally fixed event classes to their
// fixed-counter indexes (-1 for all others). The mapping is architectural —
// identical on every Intel machine the paper touches — so it does not vary
// by table.
func FixedIndexFor(ev isa.Event) int {
	switch ev {
	case isa.EvInstructions:
		return 0
	case isa.EvCycles:
		return 1
	case isa.EvRefCycles:
		return 2
	}
	return -1
}

// Render writes the table as an aligned listing (the `events` subcommand).
func (t *EventTable) Render(w io.Writer) {
	if t == nil {
		return
	}
	fmt.Fprintf(w, "event table: %s (%d events)\n", t.arch, len(t.descs))
	fmt.Fprintf(w, "%-32s %-14s %-5s %-10s %s\n", "NAME", "ENCODING", "UNIT", "COUNTERS", "DESCRIPTION")
	for _, d := range t.descs {
		fmt.Fprintf(w, "%-32s %-14s %-5s %-10s %s\n",
			d.Name, d.Enc, d.Unit, counterSpec(d), d.Brief)
	}
}

// counterSpec renders an event's counter constraints compactly.
func counterSpec(d EventDesc) string {
	var parts []string
	if d.FixedMask != 0 {
		parts = append(parts, "fixed"+maskList(d.FixedMask))
	}
	if d.CtrMask != 0 {
		prefix := "pmc"
		if d.Unit == UnitIMC {
			prefix = "unc"
		}
		full := uint8(1<<NumProgrammable - 1)
		if d.Unit == UnitIMC {
			full = 1<<NumUncore - 1
		}
		if d.CtrMask == full {
			parts = append(parts, prefix+"*")
		} else {
			parts = append(parts, prefix+maskList(d.CtrMask))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ",")
}

// maskList renders a counter bitmask as "0-1" style index ranges.
func maskList(mask uint8) string {
	var idx []string
	for m := mask; m != 0; m &= m - 1 {
		idx = append(idx, fmt.Sprint(bits.TrailingZeros8(m)))
	}
	return strings.Join(idx, "+")
}
