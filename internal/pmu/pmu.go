// Package pmu models the per-core Performance Monitoring Unit at the
// register level: programmable counters controlled by IA32_PERFEVTSELx
// MSRs, fixed-function counters, global enable/status registers, 48-bit
// counter width with overflow interrupts (PMI).
//
// Keeping the real programming model matters for this reproduction: K-LEB,
// perf, PAPI and LiMiT differ precisely in *who* programs these registers,
// *when* counting is enabled around context switches, and *how* counts
// travel back to user space. All tools in this repository therefore talk to
// the same register file the way their real counterparts talk to hardware.
package pmu

import (
	"errors"
	"fmt"
	"math/bits"

	"kleb/internal/isa"
)

// MSR addresses (matching the Intel SDM for the Nehalem family onward).
const (
	MSRPmc0         uint32 = 0x0C1 // IA32_PMC0..IA32_PMC3
	MSRPerfEvtSel0  uint32 = 0x186 // IA32_PERFEVTSEL0..3
	MSRFixedCtr0    uint32 = 0x309 // IA32_FIXED_CTR0..2
	MSRFixedCtrCtrl uint32 = 0x38D // IA32_FIXED_CTR_CTRL
	MSRGlobalStatus uint32 = 0x38E // IA32_PERF_GLOBAL_STATUS
	MSRGlobalCtrl   uint32 = 0x38F // IA32_PERF_GLOBAL_CTRL
	MSRGlobalOvf    uint32 = 0x390 // IA32_PERF_GLOBAL_OVF_CTRL

	// Uncore (IMC) block, Nehalem-style MSR-programmed uncore PMU.
	MSRUncGlobalCtrl uint32 = 0x391 // MSR_UNCORE_PERF_GLOBAL_CTRL
	MSRUncPmc0       uint32 = 0x3B0 // MSR_UNCORE_PMC0..1
	MSRUncEvtSel0    uint32 = 0x3C0 // MSR_UNCORE_PERFEVTSEL0..1
)

// IA32_PERFEVTSEL bit fields.
const (
	SelUsr uint64 = 1 << 16 // count at CPL > 0
	SelOS  uint64 = 1 << 17 // count at CPL 0
	SelInt uint64 = 1 << 20 // PMI on overflow
	SelEn  uint64 = 1 << 22 // counter enable
)

// Fixed-counter control nibble bits (per counter, 4 bits each).
const (
	FixedOS  uint64 = 1 << 0
	FixedUsr uint64 = 1 << 1
	FixedPMI uint64 = 1 << 3
)

// CounterWidth is the architectural counter width in bits.
const CounterWidth = 48

// counterMask keeps counters within CounterWidth bits.
const counterMask = (uint64(1) << CounterWidth) - 1

// NumProgrammable and NumFixed match the modern Intel layout the paper
// describes: four programmable plus three fixed counters. NumUncore is the
// modeled IMC uncore counter count — enough for one read+write bandwidth
// pair, the opening move toward a full uncore vocabulary.
const (
	NumProgrammable = 4
	NumFixed        = 3
	NumUncore       = 2
)

// Fixed-function counter meanings, in architectural order.
var fixedEvents = [NumFixed]isa.Event{
	isa.EvInstructions, // IA32_FIXED_CTR0: INST_RETIRED.ANY
	isa.EvCycles,       // IA32_FIXED_CTR1: CPU_CLK_UNHALTED.CORE
	isa.EvRefCycles,    // IA32_FIXED_CTR2: CPU_CLK_UNHALTED.REF
}

// PMU is one core's performance monitoring unit (plus its socket's IMC
// uncore block — the simulator models one core per socket, so the uncore
// counters live here too).
type PMU struct {
	table *EventTable

	evtsel [NumProgrammable]uint64
	pmc    [NumProgrammable]uint64

	fixed     [NumFixed]uint64
	fixedCtrl uint64

	globalCtrl   uint64
	globalStatus uint64

	uncSel        [NumUncore]uint64
	uncPmc        [NumUncore]uint64
	uncGlobalCtrl uint64

	// onPMI is invoked (if set) when an overflow occurs on a counter with
	// its PMI bit set. The kernel routes this to the local APIC handler.
	onPMI func(counter int, fixed bool)

	// onOverflow observes every 48-bit wrap, PMI-enabled or not. The kernel
	// routes this to the telemetry sink; keeping it a plain callback keeps
	// the pmu package free of higher-layer dependencies.
	onOverflow func(counter int, fixed bool)

	// activeProg/activeFixed cache, per privilege level, the bitmask of
	// counters that are globally enabled, locally enabled and (for
	// programmable counters) carry a table-resolved event; progEvent holds
	// that resolution. They are recomputed on writes to the control
	// registers, so AddCounts — the hottest call in the simulator, fed on
	// every work slice — touches only live counters instead of probing all
	// eight enable paths per call.
	activeProg  [2]uint8
	activeFixed [2]uint8
	progEvent   [NumProgrammable]isa.Event

	// activeUnc is the single (privilege-independent — uncore counts
	// regardless of CPL) active mask for the IMC counters.
	activeUnc uint8
	uncEvent  [NumUncore]isa.Event
}

// privIdx maps a privilege level onto the active-mask index.
func privIdx(priv isa.Priv) int {
	if priv == isa.User {
		return 0
	}
	return 1
}

// recomputeActive re-derives the active-counter masks from the register
// file. Called whenever an enable-affecting MSR is written.
func (p *PMU) recomputeActive() {
	p.activeProg = [2]uint8{}
	p.activeFixed = [2]uint8{}
	p.activeUnc = 0
	for i := 0; i < NumProgrammable; i++ {
		ev, ok := p.table.Lookup(p.evtsel[i])
		if !ok {
			continue
		}
		p.progEvent[i] = ev
		for pi, priv := range [2]isa.Priv{isa.User, isa.Kernel} {
			if p.progEnabled(i, priv) {
				p.activeProg[pi] |= 1 << uint(i)
			}
		}
	}
	for i := 0; i < NumFixed; i++ {
		for pi, priv := range [2]isa.Priv{isa.User, isa.Kernel} {
			if p.fixedEnabled(i, priv) {
				p.activeFixed[pi] |= 1 << uint(i)
			}
		}
	}
	for i := 0; i < NumUncore; i++ {
		if p.uncGlobalCtrl&(1<<uint(i)) == 0 || p.uncSel[i]&SelEn == 0 {
			continue
		}
		ev, ok := p.table.LookupUncore(p.uncSel[i])
		if !ok {
			continue
		}
		p.uncEvent[i] = ev
		p.activeUnc |= 1 << uint(i)
	}
}

// New creates a PMU resolving encodings through table (nil = empty table).
func New(table *EventTable) *PMU {
	return &PMU{
		table: table,
		// Power-on default: everything disabled, matching hardware.
	}
}

// SetPMIHandler installs the overflow interrupt callback.
func (p *PMU) SetPMIHandler(fn func(counter int, fixed bool)) { p.onPMI = fn }

// SetOverflowObserver installs a passive observer of counter wraps. Unlike
// the PMI handler it sees every overflow regardless of the PMI enable bits,
// and it must not perturb the register file.
func (p *PMU) SetOverflowObserver(fn func(counter int, fixed bool)) { p.onOverflow = fn }

// Table returns the PMU's event encoding table.
func (p *PMU) Table() *EventTable { return p.table }

// MSR access errors are predeclared so the WRMSR/RDMSR error paths — which
// run in (simulated) interrupt context — never allocate; fmt.Errorf with
// the offending address would heap-allocate on a path hotalloc proves clean.
var (
	errMSRReadOnly  = errors.New("pmu: IA32_PERF_GLOBAL_STATUS is read-only")
	errUnknownWRMSR = errors.New("pmu: WRMSR to unknown MSR")
	errUnknownRDMSR = errors.New("pmu: RDMSR from unknown MSR")
)

// WriteMSR implements WRMSR for the PMU register range.
func (p *PMU) WriteMSR(addr uint32, val uint64) error {
	switch {
	case addr >= MSRPmc0 && addr < MSRPmc0+NumProgrammable:
		p.pmc[addr-MSRPmc0] = val & counterMask
	case addr >= MSRPerfEvtSel0 && addr < MSRPerfEvtSel0+NumProgrammable:
		p.evtsel[addr-MSRPerfEvtSel0] = val
		p.recomputeActive()
	case addr >= MSRFixedCtr0 && addr < MSRFixedCtr0+NumFixed:
		p.fixed[addr-MSRFixedCtr0] = val & counterMask
	case addr == MSRFixedCtrCtrl:
		p.fixedCtrl = val
		p.recomputeActive()
	case addr == MSRGlobalCtrl:
		p.globalCtrl = val
		p.recomputeActive()
	case addr == MSRGlobalOvf:
		// Writing 1 bits clears the corresponding status bits.
		p.globalStatus &^= val
	case addr >= MSRUncPmc0 && addr < MSRUncPmc0+NumUncore:
		p.uncPmc[addr-MSRUncPmc0] = val & counterMask
	case addr >= MSRUncEvtSel0 && addr < MSRUncEvtSel0+NumUncore:
		p.uncSel[addr-MSRUncEvtSel0] = val
		p.recomputeActive()
	case addr == MSRUncGlobalCtrl:
		p.uncGlobalCtrl = val
		p.recomputeActive()
	case addr == MSRGlobalStatus:
		return errMSRReadOnly
	default:
		return errUnknownWRMSR
	}
	return nil
}

// ReadMSR implements RDMSR for the PMU register range.
func (p *PMU) ReadMSR(addr uint32) (uint64, error) {
	switch {
	case addr >= MSRPmc0 && addr < MSRPmc0+NumProgrammable:
		return p.pmc[addr-MSRPmc0], nil
	case addr >= MSRPerfEvtSel0 && addr < MSRPerfEvtSel0+NumProgrammable:
		return p.evtsel[addr-MSRPerfEvtSel0], nil
	case addr >= MSRFixedCtr0 && addr < MSRFixedCtr0+NumFixed:
		return p.fixed[addr-MSRFixedCtr0], nil
	case addr == MSRFixedCtrCtrl:
		return p.fixedCtrl, nil
	case addr == MSRGlobalCtrl:
		return p.globalCtrl, nil
	case addr == MSRGlobalStatus:
		return p.globalStatus, nil
	case addr >= MSRUncPmc0 && addr < MSRUncPmc0+NumUncore:
		return p.uncPmc[addr-MSRUncPmc0], nil
	case addr >= MSRUncEvtSel0 && addr < MSRUncEvtSel0+NumUncore:
		return p.uncSel[addr-MSRUncEvtSel0], nil
	case addr == MSRUncGlobalCtrl:
		return p.uncGlobalCtrl, nil
	default:
		return 0, errUnknownRDMSR
	}
}

// RDPMC implements the user-visible RDPMC instruction: counter indexes
// 0..NumProgrammable-1 read PMCs; indexes with bit 30 set read fixed
// counters (as on real hardware).
func (p *PMU) RDPMC(idx uint32) (uint64, error) {
	if idx&(1<<30) != 0 {
		i := idx &^ (1 << 30)
		if i >= NumFixed {
			return 0, fmt.Errorf("pmu: RDPMC fixed index %d out of range", i)
		}
		return p.fixed[i], nil
	}
	if idx >= NumProgrammable {
		return 0, fmt.Errorf("pmu: RDPMC index %d out of range", idx)
	}
	return p.pmc[idx], nil
}

// progEnabled reports whether programmable counter i counts at priv.
func (p *PMU) progEnabled(i int, priv isa.Priv) bool {
	if p.globalCtrl&(1<<uint(i)) == 0 {
		return false
	}
	sel := p.evtsel[i]
	if sel&SelEn == 0 {
		return false
	}
	if priv == isa.User {
		return sel&SelUsr != 0
	}
	return sel&SelOS != 0
}

// fixedEnabled reports whether fixed counter i counts at priv.
func (p *PMU) fixedEnabled(i int, priv isa.Priv) bool {
	if p.globalCtrl&(1<<uint(32+i)) == 0 {
		return false
	}
	nibble := (p.fixedCtrl >> uint(4*i)) & 0xF
	if priv == isa.User {
		return nibble&FixedUsr != 0
	}
	return nibble&FixedOS != 0
}

// AddCounts feeds a batch of ground-truth event counts, produced at the
// given privilege level, into every enabled counter. Overflows set global
// status bits and raise PMIs where requested. This is the single point
// through which all simulated "hardware" event activity flows, so it walks
// only the precomputed active-counter bitmasks: with nothing enabled (the
// common unmonitored stretch) it is two loads and two branches.
func (p *PMU) AddCounts(c isa.Counts, priv isa.Priv) {
	pi := privIdx(priv)
	for m := p.activeProg[pi]; m != 0; m &= m - 1 {
		i := bits.TrailingZeros8(m)
		n := c[p.progEvent[i]]
		if n == 0 {
			continue
		}
		before := p.pmc[i]
		p.pmc[i] = (before + n) & counterMask
		if p.pmc[i] < before || before+n > counterMask {
			p.overflowProg(i)
		}
	}
	for m := p.activeFixed[pi]; m != 0; m &= m - 1 {
		i := bits.TrailingZeros8(m)
		n := c[fixedEvents[i]]
		if n == 0 {
			continue
		}
		before := p.fixed[i]
		p.fixed[i] = (before + n) & counterMask
		if p.fixed[i] < before || before+n > counterMask {
			p.overflowFixed(i)
		}
	}
	// Uncore counters observe all traffic regardless of privilege, wrap at
	// the same 48-bit width, and raise no PMI (the modeled IMC block has no
	// interrupt wiring — tools poll it).
	for m := p.activeUnc; m != 0; m &= m - 1 {
		i := bits.TrailingZeros8(m)
		n := c[p.uncEvent[i]]
		if n == 0 {
			continue
		}
		p.uncPmc[i] = (p.uncPmc[i] + n) & counterMask
	}
}

// Headroom reports how many copies of the per-block delta c can be added
// at privilege priv (capped at max) before any active programmable or
// fixed counter would cross its 48-bit wrap. The kernel's batch executor
// uses it so a batched AddCounts(c.Mul(n)) raises overflows and PMIs on
// exactly the same block as n individual AddCounts calls would — the batch
// stops one copy short of the first wrap, and the overflowing copy is
// applied alone. Always at least 1: the first copy has already executed
// and its overflow, if any, fires as in the unbatched path. Uncore
// counters are excluded — they wrap modularly with no PMI, and modular
// addition is associative, so batching cannot misplace an uncore wrap.
func (p *PMU) Headroom(c isa.Counts, priv isa.Priv, max uint64) uint64 {
	pi := privIdx(priv)
	for m := p.activeProg[pi]; m != 0; m &= m - 1 {
		i := bits.TrailingZeros8(m)
		n := c[p.progEvent[i]]
		if n == 0 {
			continue
		}
		if room := (counterMask - p.pmc[i]) / n; room < max {
			max = room
		}
	}
	for m := p.activeFixed[pi]; m != 0; m &= m - 1 {
		i := bits.TrailingZeros8(m)
		n := c[fixedEvents[i]]
		if n == 0 {
			continue
		}
		if room := (counterMask - p.fixed[i]) / n; room < max {
			max = room
		}
	}
	if max < 1 {
		max = 1
	}
	return max
}

func (p *PMU) overflowProg(i int) {
	p.globalStatus |= 1 << uint(i)
	if p.onOverflow != nil {
		p.onOverflow(i, false)
	}
	if p.evtsel[i]&SelInt != 0 && p.onPMI != nil {
		p.onPMI(i, false)
	}
}

func (p *PMU) overflowFixed(i int) {
	p.globalStatus |= 1 << uint(32+i)
	if p.onOverflow != nil {
		p.onOverflow(i, true)
	}
	nibble := (p.fixedCtrl >> uint(4*i)) & 0xF
	if nibble&FixedPMI != 0 && p.onPMI != nil {
		p.onPMI(i, true)
	}
}

// OverflowInit returns the counter preset value that will overflow after
// period further events — the standard sampling idiom (write -period).
func OverflowInit(period uint64) uint64 {
	if period == 0 || period > counterMask {
		return 0
	}
	return (counterMask + 1 - period) & counterMask
}

// CounterMask exposes the 48-bit wrap mask for tools computing deltas.
func CounterMask() uint64 { return counterMask }

// DecodeSel renders an IA32_PERFEVTSEL value for humans, resolving the
// event through the table when possible — the debugging view of what a
// counter is programmed to do.
func (p *PMU) DecodeSel(sel uint64) string {
	name := "?"
	if ev, ok := p.table.Lookup(sel); ok {
		name = ev.String()
	}
	flags := ""
	if sel&SelUsr != 0 {
		flags += "usr,"
	}
	if sel&SelOS != 0 {
		flags += "os,"
	}
	if sel&SelInt != 0 {
		flags += "int,"
	}
	if sel&SelEn != 0 {
		flags += "en,"
	}
	if flags != "" {
		flags = flags[:len(flags)-1]
	}
	return fmt.Sprintf("%s (event=%#02x umask=%#02x flags=%s)",
		name, sel&0xFF, (sel>>8)&0xFF, flags)
}

// Snapshot renders the whole register file for debugging.
func (p *PMU) Snapshot() string {
	out := fmt.Sprintf("GLOBAL_CTRL=%#x GLOBAL_STATUS=%#x FIXED_CTRL=%#x\n",
		p.globalCtrl, p.globalStatus, p.fixedCtrl)
	for i := 0; i < NumProgrammable; i++ {
		out += fmt.Sprintf("PMC%d=%d SEL%d=%s\n", i, p.pmc[i], i, p.DecodeSel(p.evtsel[i]))
	}
	for i := 0; i < NumFixed; i++ {
		out += fmt.Sprintf("FIXED%d=%d (%s)\n", i, p.fixed[i], fixedEvents[i])
	}
	if p.uncGlobalCtrl != 0 {
		out += fmt.Sprintf("UNC_GLOBAL_CTRL=%#x\n", p.uncGlobalCtrl)
		for i := 0; i < NumUncore; i++ {
			out += fmt.Sprintf("UNC_PMC%d=%d SEL%d=%#x\n", i, p.uncPmc[i], i, p.uncSel[i])
		}
	}
	return out
}
