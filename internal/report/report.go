// Package report renders experiment results as a single Markdown document
// — the machine-generated counterpart of EXPERIMENTS.md, so the
// paper-vs-measured record can be regenerated from scratch with one
// command (`cmd/experiments -md results.md all`) instead of being
// hand-transcribed.
package report

import (
	"fmt"
	"io"

	"kleb/internal/experiments"
	"kleb/internal/isa"
	"kleb/internal/trace"
)

// Paper reference values for the side-by-side columns.
var paperTableII = map[experiments.ToolKind]float64{
	experiments.KLEB:       0.68,
	experiments.PerfStat:   6.01,
	experiments.PerfRecord: 1.65,
	experiments.PAPI:       6.43,
	experiments.LiMiT:      4.08,
}

var paperTableIII = map[experiments.ToolKind]float64{
	experiments.KLEB:       1.13,
	experiments.PerfStat:   7.64,
	experiments.PerfRecord: 2.00,
	experiments.PAPI:       21.40,
}

var paperTableI = map[string][2]float64{ // tool -> {GFLOPS, loss%}
	"none":        {37.24, 0},
	"kleb":        {37.00, 0.64},
	"perf-stat":   {34.78, 7.08},
	"perf-record": {36.89, 0.96},
}

// Writer accumulates sections into one Markdown document.
type Writer struct {
	w        io.Writer
	sections int
	err      error
}

// New starts a document with the standard preamble.
func New(w io.Writer) *Writer {
	r := &Writer{w: w}
	r.printf("# K-LEB reproduction — generated results\n\n")
	r.printf("Produced by `cmd/experiments`; every number below is measured on the\n")
	r.printf("simulated substrate (see DESIGN.md §1 for the calibration contract).\n")
	return r
}

// Err returns the first write error, if any.
func (r *Writer) Err() error { return r.err }

func (r *Writer) printf(format string, args ...any) {
	if r.err != nil {
		return
	}
	_, r.err = fmt.Fprintf(r.w, format, args...)
}

func (r *Writer) section(title string) {
	r.sections++
	r.printf("\n## %s\n\n", title)
}

// TableI renders the LINPACK GFLOPS comparison against the paper.
func (r *Writer) TableI(res *experiments.LinpackResult) {
	r.section("Table I — LINPACK GFLOPS across profiling tools")
	r.printf("| tool | paper GFLOPS | paper loss%% | measured GFLOPS | measured loss%% |\n")
	r.printf("|---|---|---|---|---|\n")
	for _, row := range res.Rows {
		p := paperTableI[row.Tool]
		r.printf("| %s | %.2f | %.2f | %.2f | %.2f |\n",
			row.Tool, p[0], p[1], row.GFLOPS, row.LossPct)
	}
}

// Overhead renders Table II or III with the paper column.
func (r *Writer) Overhead(title string, res *experiments.OverheadResult, paper map[experiments.ToolKind]float64) {
	r.section(title)
	r.printf("Baseline %v over %d trials at %v sampling.\n\n", res.BaselineMean, res.Trials, res.Period)
	r.printf("| tool | paper %% | measured %% | samples |\n|---|---|---|---|\n")
	for _, row := range res.Rows {
		paperCell := "n/a"
		if v, ok := paper[row.Tool]; ok {
			paperCell = fmt.Sprintf("%.2f", v)
		}
		if row.Unsupported != "" {
			r.printf("| %s | %s | n/a (%s) | — |\n", row.Tool, paperCell, row.Unsupported)
			continue
		}
		r.printf("| %s | %s | %.2f | %.0f |\n", row.Tool, paperCell, row.Mean, row.Samples)
	}
}

// TableII renders the triple-loop study.
func (r *Writer) TableII(res *experiments.OverheadResult) {
	r.Overhead("Table II — % overhead, triple-nested-loop matmul", res, paperTableII)
}

// TableIII renders the dgemm study.
func (r *Writer) TableIII(res *experiments.OverheadResult) {
	r.Overhead("Table III — % overhead, MKL dgemm (stock kernel)", res, paperTableIII)
}

// Fig4 renders the LINPACK phase series as fenced sparklines.
func (r *Writer) Fig4(res *experiments.LinpackResult) {
	r.section("Fig 4 — LINPACK phase behaviour (K-LEB series)")
	r.printf("```\n")
	for _, ev := range res.SeriesEvents {
		ser := make([]uint64, len(res.Series[ev]))
		for i, v := range res.Series[ev] {
			ser[i] = uint64(v)
		}
		r.printf("%-26s |%s|\n", ev, trace.Sparkline(ser, 70))
	}
	r.printf("```\n")
}

// Fig5 renders the Docker MPKI table.
func (r *Writer) Fig5(res *experiments.DockerResult) {
	r.section("Fig 5 — Docker image LLC MPKI (lineage tracking, both machines)")
	r.printf("| image | machine | MPKI | classified | matches paper |\n|---|---|---|---|---|\n")
	for _, row := range res.Rows {
		match := "yes"
		if row.Class != row.Expected {
			match = "**NO**"
		}
		r.printf("| %s | %s | %.2f | %s | %s |\n", row.Image, row.Machine, row.MPKI, row.Class, match)
	}
}

// Fig6and7 renders the Meltdown study.
func (r *Writer) Fig6and7(res *experiments.MeltdownResult) {
	r.section("Fig 6/7 — Meltdown vs non-Meltdown at 100µs")
	r.printf("| program | LLC refs | LLC misses | MPKI | samples@100µs | samples@10ms | elapsed |\n")
	r.printf("|---|---|---|---|---|---|---|\n")
	for _, s := range []experiments.MeltdownSide{res.Victim, res.Attack} {
		r.printf("| %s | %.0f | %.0f | %.2f | %.1f | %.1f | %v |\n",
			s.Name, s.LLCRefs, s.LLCMisses, s.MPKI, s.MeanSamples, s.PerfStatSmpls, s.MeanElapsed)
	}
	r.printf("\n```\n")
	for _, s := range []experiments.MeltdownSide{res.Victim, res.Attack} {
		r.printf("%-18s misses |%s|\n", s.Name, trace.Sparkline(s.Series[isa.EvLLCMisses], 60))
	}
	r.printf("```\n")
}

// Fig8 renders the normalized-execution-time distributions.
func (r *Writer) Fig8(res *experiments.OverheadResult) {
	r.section("Fig 8 — normalized execution time distributions")
	r.printf("| tool | median | norm-time stddev |\n|---|---|---|\n")
	for _, row := range res.Rows {
		if row.Unsupported != "" {
			continue
		}
		r.printf("| %s | %.4f | %.5f |\n",
			row.Tool, row.Box.Median, trace.Summarize(row.Normalized).Stddev)
	}
}

// Fig9 renders the count-accuracy table.
func (r *Writer) Fig9(res *experiments.AccuracyResult) {
	r.section("Fig 9 — % difference in whole-run counts vs K-LEB")
	r.printf("| tool |")
	for _, ev := range res.Events {
		r.printf(" %s |", ev)
	}
	r.printf(" max |\n|---|")
	for range res.Events {
		r.printf("---|")
	}
	r.printf("---|\n")
	for _, row := range res.Rows {
		if row.Unsupported != "" {
			r.printf("| %s | n/a |\n", row.Tool)
			continue
		}
		r.printf("| %s |", row.Tool)
		for _, ev := range res.Events {
			r.printf(" %.5f |", row.DiffPct[ev])
		}
		r.printf(" %.5f |\n", row.MaxPct)
	}
}

// Timers renders the granularity study.
func (r *Writer) Timers(res *experiments.TimerResult) {
	r.section("Timer granularity (§II-C/§III)")
	r.printf("| facility | requested | achieved | jitter σ |\n|---|---|---|---|\n")
	for _, row := range res.Rows {
		r.printf("| %s | %v | %v | %v |\n", row.Facility, row.Requested, row.AchievedAvg, row.JitterStd)
	}
}

// Sweep renders the rate ablation.
func (r *Writer) Sweep(res *experiments.SweepResult) {
	r.section("Rate sweep (§V/§VI)")
	r.printf("| tool | requested | effective | overhead %% | samples |\n|---|---|---|---|---|\n")
	for _, row := range res.Rows {
		r.printf("| %s | %v | %v | %.2f | %.0f |\n",
			row.Tool, row.RequestedPeriod, row.EffectivePeriod, row.OverheadPct, row.Samples)
	}
}

// Multiplex renders the multiplexing-error sweep.
func (r *Writer) Multiplex(res *experiments.MultiplexResult) {
	r.section("Multiplexing error (§II-B) — scaled estimates vs exact counts")
	r.printf("| N | rounds | event | perf-stat (scaled) | scale | K-LEB exact | err %% |\n")
	r.printf("|---|---|---|---|---|---|---|\n")
	for _, row := range res.Rows {
		for i, c := range row.Cells {
			nCol, rCol := "", ""
			if i == 0 {
				nCol = fmt.Sprintf("%d", row.N)
				rCol = fmt.Sprintf("%d", row.Rounds)
			}
			r.printf("| %s | %s | %s | %d | %.3f | %d | %+.3f |\n",
				nCol, rCol, c.Event, c.Reported, c.Scale, c.Exact, c.ErrPct)
		}
	}
}

// TailLatency renders the serve-workload tail-latency study.
func (r *Writer) TailLatency(res *experiments.TailLatResult) {
	r.section("Tail latency under monitoring — 3-tier serve workload")
	r.printf("Exact percentiles over the merged per-trial populations (%d trials, period %v);\n", res.Trials, res.Period)
	r.printf("Δp99 is against the same-machine unmonitored baseline on paired seeds.\n\n")
	for _, sc := range res.Scenarios {
		r.printf("**%s** (%s)\n\n", sc.Name, sc.Load)
		r.printf("| tool | machine | p50 ms | p99 ms | p999 ms | Δp99 ms | req/s |\n")
		r.printf("|---|---|---|---|---|---|---|\n")
		for _, row := range sc.Rows {
			if row.Unsupported != "" {
				r.printf("| %s | %s | n/a | n/a | n/a | n/a | n/a |\n", row.Tool, row.Machine)
				continue
			}
			delta := "—"
			if row.Tool != "bare" {
				delta = fmt.Sprintf("%+.3f", float64(row.DeltaP99)/1e6)
			}
			r.printf("| %s | %s | %.3f | %.3f | %.3f | %s | %.1f |\n",
				row.Tool, row.Machine, row.P50.Milliseconds(), row.P99.Milliseconds(),
				row.P999.Milliseconds(), delta, row.Throughput)
		}
		r.printf("\n")
	}
}

// Sections returns how many sections were emitted (for tests).
func (r *Writer) Sections() int { return r.sections }
