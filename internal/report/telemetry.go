package report

import "kleb/internal/telemetry"

// Telemetry renders a sink's aggregated metrics as a Markdown section — the
// human-facing third exporter next to the Chrome trace and the Prometheus
// text. Nil sinks render nothing, so callers can pass their sink through
// unconditionally.
//
//klebvet:artifact
func (r *Writer) Telemetry(s *telemetry.Sink) {
	if s == nil {
		return
	}
	reg := s.Registry()
	r.section("Telemetry — aggregated observability metrics")
	r.printf("| metric | value |\n")
	r.printf("|---|---|\n")
	r.printf("| context switches | %d |\n", reg.CtxSwitches.Value())
	for _, point := range reg.KprobeHits.Labels() {
		r.printf("| kprobe hits (%s) | %d |\n", point, reg.KprobeHits.Get(point))
	}
	r.printf("| hrtimer arms / fires / cancels | %d / %d / %d |\n",
		reg.TimerArms.Value(), reg.TimerFires.Value(), reg.TimerCancels.Value())
	if reg.TimerJitter.Count() > 0 {
		r.printf("| timer jitter mean / p50 / p99 (ns) | %.0f / ≤%d / ≤%d |\n",
			reg.TimerJitter.Mean(), reg.TimerJitter.Quantile(0.5), reg.TimerJitter.Quantile(0.99))
	}
	r.printf("| PMIs delivered | %d |\n", reg.PMIs.Value())
	if reg.PMILatency.Count() > 0 {
		r.printf("| PMI latency mean / p99 (ns) | %.0f / ≤%d |\n",
			reg.PMILatency.Mean(), reg.PMILatency.Quantile(0.99))
	}
	r.printf("| PMU counter overflows | %d |\n", reg.PMUOverflows.Value())
	for _, dev := range reg.Ioctls.Labels() {
		r.printf("| ioctls (/dev/%s) | %d |\n", dev, reg.Ioctls.Get(dev))
	}
	r.printf("| K-LEB samples captured | %d |\n", reg.Samples.Value())
	r.printf("| K-LEB ring high water | %d |\n", reg.RingHighWater.Value())
	r.printf("| K-LEB ring pauses / drained | %d / %d |\n",
		reg.RingPauses.Value(), reg.RingDrained.Value())
	// Fault-layer rows render only when something fired, so fault-free
	// reports are unchanged (mirroring the Prometheus exporter).
	for _, kind := range reg.FaultsInjected.Labels() {
		r.printf("| faults injected (%s) | %d |\n", kind, reg.FaultsInjected.Get(kind))
	}
	if reg.CtlRetries.Value() > 0 {
		r.printf("| controller transient retries | %d |\n", reg.CtlRetries.Value())
	}
	if reg.RunsDegraded.Value() > 0 {
		r.printf("| degraded runs (partial data) | %d |\n", reg.RunsDegraded.Value())
	}
	for _, stage := range reg.StageNs.Labels() {
		r.printf("| stage %s (virtual ns) | %d |\n", stage, reg.StageNs.Get(stage))
	}
	if reg.Runs.Value() > 0 {
		r.printf("| scheduler runs / failures | %d / %d |\n",
			reg.Runs.Value(), reg.RunFailures.Value())
	}
}
