package report

import (
	"errors"
	"strings"
	"testing"

	"kleb/internal/experiments"
	"kleb/internal/ktime"
)

// The report writer is exercised against real (small) experiment runs so
// the rendering stays in sync with the result types.
func TestReportRendersAllSections(t *testing.T) {
	var sb strings.Builder
	r := New(&sb)

	lp, err := experiments.RunLinpack(experiments.LinpackConfig{Trials: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.TableI(lp)
	r.Fig4(lp)

	t2, err := experiments.RunOverhead(experiments.OverheadConfig{
		Workload: experiments.WorkloadTriple, Trials: 2, Seed: 1,
		Tools: []experiments.ToolKind{experiments.KLEB, experiments.PerfStat},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.TableII(t2)
	r.Fig8(t2)

	t3, err := experiments.RunOverhead(experiments.OverheadConfig{
		Workload: experiments.WorkloadDgemm, Trials: 2, Seed: 1, StockKernelOnly: true,
		Tools: []experiments.ToolKind{experiments.KLEB, experiments.LiMiT},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.TableIII(t3)

	md, err := experiments.RunMeltdown(experiments.MeltdownConfig{Rounds: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Fig6and7(md)

	ac, err := experiments.RunAccuracy(experiments.AccuracyConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Fig9(ac)

	tm, err := experiments.RunTimers(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Timers(tm)

	sw, err := experiments.RunSweep(experiments.SweepConfig{
		Periods: []ktime.Duration{10 * ktime.Millisecond}, Trials: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Sweep(sw)

	mx, err := experiments.RunMultiplex(experiments.MultiplexConfig{
		Workload: experiments.WorkloadDgemm, Counts: []int{2, 6}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Multiplex(mx)

	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	out := sb.String()
	for _, want := range []string{
		"# K-LEB reproduction",
		"## Table I",
		"## Table II",
		"## Table III",
		"## Fig 4",
		"## Fig 6/7",
		"## Fig 8",
		"## Fig 9",
		"## Timer granularity",
		"## Rate sweep",
		"## Multiplexing error",
		"| kleb |",
		"n/a (", // LiMiT's Table III row
		"37.24", // the paper column is present
		"```",   // sparkline fences
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if r.Sections() != 10 {
		t.Errorf("sections: %d", r.Sections())
	}
	// Markdown sanity: every table row line has balanced pipes.
	for i, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "|") && !strings.HasSuffix(line, "|") {
			t.Errorf("line %d: unbalanced table row %q", i+1, line)
		}
	}
}

func TestReportFig5(t *testing.T) {
	res, err := experiments.RunDocker(experiments.DockerConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	r := New(&sb)
	r.Fig5(res)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	out := sb.String()
	for _, want := range []string{"## Fig 5", "| ruby |", "| tomcat |", "memory-intensive", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Contains(out, "**NO**") {
		t.Error("a classification mismatch leaked into the report")
	}
}

// errWriter fails after n bytes to exercise error propagation.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestReportSurfacesWriteErrors(t *testing.T) {
	r := New(&errWriter{n: 16})
	tm, err := experiments.RunTimers(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	r.Timers(tm)
	if r.Err() == nil {
		t.Error("write error swallowed")
	}
}
