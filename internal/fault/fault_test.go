package fault

import (
	"reflect"
	"testing"

	"kleb/internal/ktime"
)

// TestNilPlanInjectsNothing pins the disabled-path contract: every decision
// method on a nil *Plan is a no-op, so an uninjected run cannot diverge.
func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if err := p.IoctlError("kleb", 1); err != nil {
		t.Errorf("nil plan IoctlError = %v, want nil", err)
	}
	if p.StarveDrain() || p.TimerMisfire() || p.SpuriousPMI() {
		t.Error("nil plan fired a probabilistic fault")
	}
	if extra, ok := p.TimerExtraJitter(ktime.Microsecond); ok || extra != 0 {
		t.Errorf("nil plan TimerExtraJitter = %v, %v", extra, ok)
	}
	if v, bad := p.CorruptRead(42); bad || v != 42 {
		t.Errorf("nil plan CorruptRead = %v, %v", v, bad)
	}
	if d := p.UnloadDelay(); d != 0 {
		t.Errorf("nil plan UnloadDelay = %v, want 0", d)
	}
	if err := p.FSWriteError("/var/log/kleb.csv"); err != nil {
		t.Errorf("nil plan FSWriteError = %v, want nil", err)
	}
}

// TestFromSeedDeterministic pins that identical seeds yield identical plans
// and identical decision streams — the chaos sweep's reproducibility.
func TestFromSeedDeterministic(t *testing.T) {
	drive := func(seed uint64) (Plan, []bool) {
		p := FromSeed(seed)
		var decisions []bool
		for i := 0; i < 200; i++ {
			decisions = append(decisions,
				p.IoctlError("kleb", uint32(i%5+1)) != nil,
				p.StarveDrain(),
				p.TimerMisfire(),
				p.SpuriousPMI(),
			)
			_, storm := p.TimerExtraJitter(ktime.Microsecond)
			_, bad := p.CorruptRead(uint64(i))
			decisions = append(decisions, storm, bad,
				p.FSWriteError("f") != nil)
		}
		snapshot := *p
		snapshot.rng = nil // compare knobs, not generator state
		return snapshot, decisions
	}
	p1, d1 := drive(7)
	p2, d2 := drive(7)
	if p1 != p2 {
		t.Errorf("FromSeed(7) knobs differ:\n%+v\n%+v", p1, p2)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Error("FromSeed(7) decision streams differ")
	}
	p3, _ := drive(8)
	if p1 == p3 {
		t.Error("FromSeed(7) and FromSeed(8) drew identical knobs (suspicious)")
	}
}

// TestTransientClassification pins the retry policy's error taxonomy.
func TestTransientClassification(t *testing.T) {
	p := NewPlan(1)
	p.IoctlFailFirst = 2
	p.IoctlDeadAfter = 4
	var errs []error
	for i := 0; i < 6; i++ {
		errs = append(errs, p.IoctlError("kleb", 1))
	}
	for i, want := range []struct {
		fail, transient bool
	}{
		{true, true},   // FailFirst 1
		{true, true},   // FailFirst 2
		{false, false}, // healthy
		{false, false}, // healthy (DeadAfter boundary is exclusive)
		{true, false},  // dead
		{true, false},  // dead
	} {
		got := errs[i]
		if (got != nil) != want.fail {
			t.Fatalf("ioctl %d: err = %v, want fail=%v", i+1, got, want.fail)
		}
		if got != nil && IsTransient(got) != want.transient {
			t.Errorf("ioctl %d: IsTransient(%v) = %v, want %v", i+1, got, IsTransient(got), want.transient)
		}
	}
}

// TestOnlyCmdFilter pins targeted injection: only the named command fails,
// and other commands do not advance the deterministic ioctl count.
func TestOnlyCmdFilter(t *testing.T) {
	p := NewPlan(3)
	p.OnlyCmd = 5
	p.IoctlFailFirst = 1
	if err := p.IoctlError("kleb", 1); err != nil {
		t.Errorf("cmd 1 failed under OnlyCmd=5: %v", err)
	}
	if err := p.IoctlError("kleb", 5); err == nil || !IsTransient(err) {
		t.Errorf("first cmd-5 ioctl: err = %v, want transient", err)
	}
	if err := p.IoctlError("kleb", 5); err != nil {
		t.Errorf("second cmd-5 ioctl: err = %v, want nil", err)
	}
}

// TestCorruptReadIsImplausible pins that every injected corruption clears
// the module's plausibility threshold, so no corruption slips through.
func TestCorruptReadIsImplausible(t *testing.T) {
	p := NewPlan(9)
	p.PCorrupt = 1
	v, bad := p.CorruptRead(12345)
	if !bad {
		t.Fatal("PCorrupt=1 did not corrupt")
	}
	if v-12345 < ImplausibleDelta {
		t.Errorf("corrupted delta %d below ImplausibleDelta %d", v-12345, ImplausibleDelta)
	}
}
