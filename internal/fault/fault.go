// Package fault is the simulator's deterministic fault-injection layer
// (DESIGN.md §9): a seeded Plan of module/kernel-boundary failures threaded
// through the kernel the same way telemetry is — as a nil-able hook that
// costs one predicted branch when disabled. A nil *Plan injects nothing,
// consumes no randomness and charges no virtual time, so an uninjected run
// is byte-identical to one on a kernel that has never heard of faults.
//
// A Plan carries its own ktime.Rand stream, split off the run seed, so the
// injection decisions never perturb the kernel's scheduling/jitter noise:
// two runs with the same seed and different plans diverge only where a
// fault actually fires.
//
// The fault classes mirror the ways a real K-LEB deployment degrades:
// ioctl failures (transient EINTR-style and permanent dead-module style),
// ring-drain starvation (short reads), HRTimer misfires and jitter storms,
// spurious PMIs, corrupted counter reads, mid-run module unload, and
// filesystem write failures. Each injection is observable: the injecting
// layer emits telemetry.FaultInjected with the kind strings below.
package fault

import (
	"errors"
	"fmt"

	"kleb/internal/ktime"
)

// Fault kind strings, used for telemetry (kleb_faults_injected_total{kind})
// and trace events.
const (
	KindIoctlTransient = "ioctl-transient"
	KindIoctlPermanent = "ioctl-permanent"
	KindDrainStarve    = "drain-starve"
	KindTimerMisfire   = "timer-misfire"
	KindJitterStorm    = "jitter-storm"
	KindSpuriousPMI    = "spurious-pmi"
	KindReadCorrupt    = "read-corrupt"
	KindModuleUnload   = "module-unload"
	KindFSWrite        = "fs-write"
)

// ErrTransient marks an injected failure as retryable. Consumers classify
// with IsTransient; everything else is treated as permanent.
var ErrTransient = errors.New("transient fault")

// IsTransient reports whether err is (or wraps) an injected transient
// fault, the class the controller's bounded retry policy covers.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// ImplausibleDelta is the per-period delta threshold above which the K-LEB
// module's plausibility screen discards a counter read as corrupted. Real
// per-100µs deltas top out around 2^19 even on the hottest event; simulated
// runs are far too short for a healthy 48-bit counter to accumulate 2^40,
// so the screen has no false positives.
const ImplausibleDelta = uint64(1) << 40

// corruptBit is OR-ed into a corrupted counter read; it sits above
// ImplausibleDelta so every injected corruption is detectable.
const corruptBit = uint64(1) << 43

// Plan is one run's fault schedule. The zero value (or a nil pointer)
// injects nothing; FromSeed draws a randomized mix. All decision methods
// are nil-receiver safe, mirroring telemetry.Sink's disabled-path contract.
//
//klebvet:nilsafe
type Plan struct {
	// PIoctl is the per-ioctl probability of a transient failure.
	PIoctl float64
	// IoctlFailFirst fails the first N ioctls with transient errors — the
	// deterministic shape retry tests pin against.
	IoctlFailFirst uint64
	// IoctlDeadAfter, when non-zero, makes every ioctl after the N-th fail
	// permanently (the module died mid-run).
	IoctlDeadAfter uint64
	// OnlyCmd, when non-zero, restricts ioctl injection to one command
	// number (targeted tests: fail only KLEB_STATUS).
	OnlyCmd uint32
	// PStarve is the per-drain probability the module returns no samples
	// despite having some buffered.
	PStarve float64
	// PMisfire is the per-period probability the sampling handler loses its
	// capture (a missed timer interrupt).
	PMisfire float64
	// PJitter is the per-arm probability of a jitter storm: the timer's
	// interrupt latency is multiplied 10–100×.
	PJitter float64
	// PSpuriousPMI is the per-timer-fire probability of raising a PMI no
	// counter overflow asked for.
	PSpuriousPMI float64
	// PCorrupt is the per-counter-read probability of flipping a high bit
	// in the returned value.
	PCorrupt float64
	// PFSWrite is the per-append probability the simulated filesystem
	// rejects a write.
	PFSWrite float64
	// Unload, when non-zero, schedules the module's removal (rmmod) that
	// long after the tool attaches.
	Unload ktime.Duration

	rng    *ktime.Rand
	ioctls uint64 // ioctl decisions taken so far (drives FailFirst/DeadAfter)
}

// NewPlan returns an empty plan (no faults enabled) with its own decision
// stream for seed; callers set the knobs they want.
func NewPlan(seed uint64) *Plan {
	return &Plan{rng: ktime.NewRand(seed ^ 0xfa417)}
}

// FromSeed derives a randomized chaos mix: roughly half the fault classes
// enabled, each with a rate drawn from its plausible range. Identical seeds
// yield identical plans — the chaos sweep's determinism rests on this.
func FromSeed(seed uint64) *Plan {
	p := NewPlan(seed)
	r := p.rng
	if r.Intn(2) == 0 {
		p.PIoctl = 0.02 + 0.10*r.Float64()
	}
	if r.Intn(8) == 0 {
		p.IoctlFailFirst = 1 + r.Uint64n(3)
	}
	if r.Intn(8) == 0 {
		p.IoctlDeadAfter = 8 + r.Uint64n(64)
	}
	if r.Intn(2) == 0 {
		p.PStarve = 0.05 + 0.20*r.Float64()
	}
	if r.Intn(2) == 0 {
		p.PMisfire = 0.01 + 0.05*r.Float64()
	}
	if r.Intn(2) == 0 {
		p.PJitter = 0.02 + 0.10*r.Float64()
	}
	if r.Intn(2) == 0 {
		p.PSpuriousPMI = 0.01 + 0.05*r.Float64()
	}
	if r.Intn(2) == 0 {
		p.PCorrupt = 0.01 + 0.05*r.Float64()
	}
	if r.Intn(2) == 0 {
		p.PFSWrite = 0.05 + 0.20*r.Float64()
	}
	if r.Intn(8) == 0 {
		p.Unload = ktime.Duration(20+r.Uint64n(200)) * ktime.Millisecond
	}
	return p
}

// chance draws one Bernoulli decision at probability prob.
func (p *Plan) chance(prob float64) bool {
	if p == nil {
		return false
	}
	if p.rng == nil || prob <= 0 {
		return false
	}
	return p.rng.Float64() < prob
}

// IoctlError decides whether this ioctl fails. It returns nil, a
// transient error (IsTransient) or a permanent one. Each call advances the
// plan's ioctl count, which drives the deterministic FailFirst/DeadAfter
// shapes.
func (p *Plan) IoctlError(device string, cmd uint32) error {
	if p == nil {
		return nil
	}
	if p.OnlyCmd != 0 && cmd != p.OnlyCmd {
		return nil
	}
	p.ioctls++
	if p.IoctlDeadAfter != 0 && p.ioctls > p.IoctlDeadAfter {
		return fmt.Errorf("fault: device %q cmd %d: module not responding", device, cmd)
	}
	if p.ioctls <= p.IoctlFailFirst || p.chance(p.PIoctl) {
		return fmt.Errorf("fault: device %q cmd %d: %w", device, cmd, ErrTransient)
	}
	return nil
}

// StarveDrain decides whether one buffer drain returns nothing despite
// buffered samples (a short read).
func (p *Plan) StarveDrain() bool {
	if p == nil {
		return false
	}
	return p.chance(p.PStarve)
}

// TimerMisfire decides whether one sampling period's capture is lost to a
// missed timer interrupt.
func (p *Plan) TimerMisfire() bool {
	if p == nil {
		return false
	}
	return p.chance(p.PMisfire)
}

// TimerExtraJitter decides whether one timer arm lands in a jitter storm;
// when it does, the returned extra latency (10–100× base) is added to the
// effective expiry.
func (p *Plan) TimerExtraJitter(base ktime.Duration) (ktime.Duration, bool) {
	if p == nil {
		return 0, false
	}
	if !p.chance(p.PJitter) {
		return 0, false
	}
	mult := 10 + p.rng.Uint64n(91) // 10–100×
	return base * ktime.Duration(mult), true
}

// SpuriousPMI decides whether one timer fire additionally raises a PMI no
// overflow asked for.
func (p *Plan) SpuriousPMI() bool {
	if p == nil {
		return false
	}
	return p.chance(p.PSpuriousPMI)
}

// CorruptRead decides whether one counter read is corrupted; when it is,
// the returned value has a high bit set that the module's plausibility
// screen (ImplausibleDelta) is guaranteed to catch.
func (p *Plan) CorruptRead(v uint64) (uint64, bool) {
	if p == nil {
		return v, false
	}
	if !p.chance(p.PCorrupt) {
		return v, false
	}
	return v | corruptBit, true
}

// UnloadDelay returns how long after attach the module should be unloaded
// (0 = never).
func (p *Plan) UnloadDelay() ktime.Duration {
	if p == nil {
		return 0
	}
	return p.Unload
}

// FSWriteError decides whether one filesystem append fails. Injected FS
// errors are transient: a later retry of the same write may succeed.
func (p *Plan) FSWriteError(name string) error {
	if p == nil {
		return nil
	}
	if !p.chance(p.PFSWrite) {
		return nil
	}
	return fmt.Errorf("fault: write %s: %w", name, ErrTransient)
}
