// Package ktime provides the virtual time base for the simulated machine.
//
// All simulated components — the CPU model, the kernel, the PMU and the
// monitoring tools — share a single nanosecond-resolution virtual clock.
// Virtual time is completely decoupled from wall-clock time: a two-second
// simulated benchmark run typically completes in a few milliseconds of host
// time, and every run is bit-for-bit reproducible for a given seed.
package ktime

import "fmt"

// Time is an instant on the virtual clock, in nanoseconds since machine boot.
type Time uint64

// Duration is a span of virtual time in nanoseconds. It is unsigned because
// the simulation never produces negative spans; subtraction helpers guard
// against underflow explicitly.
type Duration uint64

// Common durations, mirroring the time package but for virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u, or 0 if u is after t.
func (t Time) Sub(u Time) Duration {
	if u > t {
		return 0
	}
	return Duration(t - u)
}

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String renders the instant with automatic unit selection.
func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration as a floating point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as a floating point number of µs.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Milliseconds returns the duration as a floating point number of ms.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String renders the duration with automatic unit selection.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.6gs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.6gms", d.Milliseconds())
	case d >= Microsecond:
		return fmt.Sprintf("%.6gµs", d.Microseconds())
	default:
		return fmt.Sprintf("%dns", uint64(d))
	}
}

// Scale returns d scaled by the ratio num/den, rounding to nearest.
// It is used to split partially executed instruction blocks.
func (d Duration) Scale(num, den uint64) Duration {
	if den == 0 {
		return 0
	}
	// Guard against overflow for large durations: use big-ish arithmetic via
	// splitting. Durations in this simulator stay well under 2^53 ns (about
	// 104 days), so float64 is exact enough for scheduling purposes, but we
	// keep integer math for determinism.
	hi := uint64(d) / den
	lo := uint64(d) % den
	return Duration(hi*num + (lo*num+den/2)/den)
}

// Clock is the shared virtual clock. It only moves forward.
type Clock struct {
	now Time
}

// NewClock returns a clock set to boot time (zero).
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual instant.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d and returns the new instant.
func (c *Clock) Advance(d Duration) Time {
	c.now = c.now.Add(d)
	return c.now
}

// AdvanceTo moves the clock forward to t. Moving backwards is a programming
// error in the simulation engine and panics loudly rather than corrupting
// event ordering.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("ktime: clock moved backwards: %v -> %v", c.now, t))
	}
	c.now = t
}

// Freq describes a CPU clock frequency and converts between cycles and
// virtual nanoseconds.
type Freq struct {
	// Hz is the core frequency in cycles per second.
	Hz uint64
}

// MHz constructs a Freq from a megahertz value.
func MHz(mhz uint64) Freq { return Freq{Hz: mhz * 1e6} }

// Cycles converts a duration to a number of core cycles, rounding to nearest.
func (f Freq) Cycles(d Duration) uint64 {
	// cycles = d_ns * Hz / 1e9, computed without overflow for realistic
	// values (Hz < 2^33, d < 2^53).
	hi := uint64(d) / 1e9
	lo := uint64(d) % 1e9
	return hi*f.Hz + (lo*f.Hz+5e8)/1e9
}

// Duration converts a cycle count to virtual time, rounding to nearest.
func (f Freq) Duration(cycles uint64) Duration {
	if f.Hz == 0 {
		return 0
	}
	hi := cycles / f.Hz
	lo := cycles % f.Hz
	return Duration(hi*1e9 + (lo*1e9+f.Hz/2)/f.Hz)
}
