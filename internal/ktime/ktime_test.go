package ktime

import (
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(1000)
	if got := t0.Add(500); got != 1500 {
		t.Errorf("Add: got %d, want 1500", got)
	}
	if got := Time(1500).Sub(t0); got != 500 {
		t.Errorf("Sub: got %d, want 500", got)
	}
	if got := t0.Sub(Time(2000)); got != 0 {
		t.Errorf("Sub underflow should clamp to 0, got %d", got)
	}
	if !t0.Before(1001) || t0.Before(1000) {
		t.Error("Before misbehaves")
	}
	if !Time(1001).After(t0) || t0.After(t0) {
		t.Error("After misbehaves")
	}
}

func TestDurationUnits(t *testing.T) {
	if Second != 1e9 || Millisecond != 1e6 || Microsecond != 1e3 {
		t.Fatal("unit constants wrong")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds conversion")
	}
	if (1500 * Microsecond).Milliseconds() != 1.5 {
		t.Error("Milliseconds conversion")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{5 * Nanosecond, "5ns"},
		{2 * Microsecond, "2µs"},
		{3 * Millisecond, "3ms"},
		{4 * Second, "4s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", uint64(c.d), got, c.want)
		}
	}
}

func TestDurationScale(t *testing.T) {
	if got := Duration(1000).Scale(1, 2); got != 500 {
		t.Errorf("Scale half: got %d", got)
	}
	if got := Duration(1000).Scale(3, 3); got != 1000 {
		t.Errorf("Scale identity: got %d", got)
	}
	if got := Duration(1000).Scale(1, 0); got != 0 {
		t.Errorf("Scale by zero denominator should be 0, got %d", got)
	}
	// Rounding to nearest.
	if got := Duration(10).Scale(1, 3); got != 3 {
		t.Errorf("Scale rounding: got %d, want 3", got)
	}
}

func TestScaleNeverExceedsOriginal(t *testing.T) {
	f := func(d uint32, num8, den8 uint8) bool {
		den := uint64(den8) + 1
		num := uint64(num8) % den
		got := Duration(d).Scale(num, den)
		return got <= Duration(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockMonotonic(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("clock should boot at zero")
	}
	c.Advance(100)
	c.AdvanceTo(500)
	if c.Now() != 500 {
		t.Fatalf("got %v", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo backwards should panic")
		}
	}()
	c.AdvanceTo(400)
}

func TestFreqRoundTrip(t *testing.T) {
	f := MHz(2670)
	if f.Hz != 2670e6 {
		t.Fatalf("MHz: got %d", f.Hz)
	}
	// One second is exactly Hz cycles.
	if got := f.Cycles(Second); got != 2670e6 {
		t.Errorf("Cycles(1s) = %d", got)
	}
	if got := f.Duration(2670e6); got != Second {
		t.Errorf("Duration(Hz) = %v", got)
	}
	if got := (Freq{}).Duration(100); got != 0 {
		t.Errorf("zero freq Duration should be 0, got %v", got)
	}
}

func TestFreqConversionApproximateInverse(t *testing.T) {
	f := MHz(2500)
	prop := func(c32 uint32) bool {
		c := uint64(c32)
		back := f.Cycles(f.Duration(c))
		diff := int64(back) - int64(c)
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // ns quantization loses at most ~2 cycles
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %v", v)
		}
		if v := r.Uint64n(9); v >= 9 {
			t.Fatalf("Uint64n out of range: %v", v)
		}
	}
	if r.Uint64n(0) != 0 {
		t.Error("Uint64n(0) should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestNormIsRoughlyStandard(t *testing.T) {
	r := NewRand(11)
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("Norm mean %f not ≈ 0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("Norm variance %f not ≈ 1", variance)
	}
}

func TestJitter(t *testing.T) {
	r := NewRand(3)
	if r.Jitter(0, 0.5) != 0 {
		t.Error("zero mean should give zero jitter")
	}
	var sum Duration
	const n = 5000
	mean := Duration(1000)
	for i := 0; i < n; i++ {
		v := r.Jitter(mean, 0.2)
		if v > 4*mean {
			t.Fatalf("jitter exceeded clamp: %v", v)
		}
		sum += v
	}
	avg := float64(sum) / n
	if avg < 950 || avg > 1050 {
		t.Errorf("jitter mean %f drifted from 1000", avg)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(5)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams should differ")
	}
}
