package ktime

import "math"

// Rand is a small deterministic pseudo-random source (SplitMix64). Every
// stochastic element of the simulation — timer jitter, scheduling noise,
// randomized memory access patterns — draws from a seeded Rand so that runs
// are exactly reproducible and experiments can vary only their seed.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Distinct seeds yield
// statistically independent streams.
func NewRand(seed uint64) *Rand { return &Rand{state: seed + 0x9e3779b97f4a7c15} }

// Reseed resets the generator to the stream NewRand(seed) would produce,
// reusing the allocation — for hot paths that need a fresh deterministic
// stream per use without allocating.
func (r *Rand) Reseed(seed uint64) { r.state = seed + 0x9e3779b97f4a7c15 }

// Uint64 returns the next raw 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("ktime: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). Returns 0 when n is 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns an approximately standard-normal variate using the sum of
// twelve uniforms (Irwin–Hall), which is plenty for jitter modelling and
// avoids math/rand dependencies.
func (r *Rand) Norm() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Jitter returns a non-negative duration centred on mean with the given
// relative standard deviation (e.g. 0.1 for 10%). The result is clamped to
// [0, 4*mean] so a single unlucky draw cannot distort an experiment.
func (r *Rand) Jitter(mean Duration, relStddev float64) Duration {
	if mean == 0 {
		return 0
	}
	v := float64(mean) * (1 + relStddev*r.Norm())
	v = math.Max(0, math.Min(v, 4*float64(mean)))
	return Duration(v)
}

// Split derives an independent generator; useful to give each subsystem its
// own stream so adding draws in one place does not perturb another.
func (r *Rand) Split() *Rand { return NewRand(r.Uint64()) }
