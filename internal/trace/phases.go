package trace

// Phase segmentation: split an event-rate series into homogeneous segments
// by detecting sustained level shifts between adjacent windows. This is the
// offline counterpart of the paper's Fig 4 reading — "we can see a clear
// phase transition from loading data and computation, followed by a storing
// phase" — turned into code so experiments and examples can assert phase
// structure instead of eyeballing it.

// Segment is one homogeneous stretch of a series.
type Segment struct {
	// Start and End are sample indexes [Start, End).
	Start, End int
	// Mean is the per-sample mean of the series over the segment.
	Mean float64
}

// Len returns the segment length in samples.
func (s Segment) Len() int { return s.End - s.Start }

// SegmentOptions tunes the detector.
type SegmentOptions struct {
	// Window is the comparison window length in samples (default 8).
	Window int
	// Ratio is the level-shift factor that opens a new segment: a boundary
	// is placed where the next window's mean differs from the current
	// segment's mean by more than this factor either way (default 2).
	Ratio float64
	// MinLen drops segments shorter than this (they merge into their
	// predecessor; default = Window).
	MinLen int
}

func (o *SegmentOptions) defaults() {
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.Ratio <= 1 {
		o.Ratio = 2
	}
	if o.MinLen <= 0 {
		o.MinLen = o.Window
	}
}

// Segments splits series into level-homogeneous segments.
func Segments(series []uint64, opts SegmentOptions) []Segment {
	opts.defaults()
	if len(series) == 0 {
		return nil
	}
	window := opts.Window
	if window > len(series) {
		window = len(series)
	}

	windowMean := func(at int) float64 {
		end := at + window
		if end > len(series) {
			end = len(series)
		}
		var s float64
		for _, v := range series[at:end] {
			s += float64(v)
		}
		return s / float64(end-at)
	}
	shifted := func(segMean, next float64) bool {
		if segMean == 0 {
			return next > 1 // leaving a silent stretch is always a shift
		}
		r := next / segMean
		return r > opts.Ratio || r < 1/opts.Ratio
	}

	var segs []Segment
	for start := 0; start < len(series); {
		var sum float64
		count := 0
		end := len(series)
		for i := start; i < len(series); i++ {
			sum += float64(series[i])
			count++
			if count < opts.MinLen || i+1 >= len(series) {
				continue
			}
			segMean := sum / float64(count)
			if !shifted(segMean, windowMean(i+1)) {
				continue
			}
			// A shift is in sight within the lookahead window; snap the
			// boundary to the first sample that individually clears the
			// ratio, so transition slivers don't become segments of their
			// own.
			b := i + 1
			for j := i + 1; j < i+1+window && j < len(series); j++ {
				if shifted(segMean, float64(series[j])) {
					b = j
					break
				}
			}
			// Fold the remaining pre-boundary samples into this segment.
			for j := i + 1; j < b; j++ {
				sum += float64(series[j])
				count++
			}
			end = b
			break
		}
		mean := 0.0
		if n := end - start; n > 0 {
			// Recompute exactly over [start, end) — the scan above may have
			// stopped early.
			var s float64
			for _, v := range series[start:end] {
				s += float64(v)
			}
			mean = s / float64(n)
		}
		segs = append(segs, Segment{Start: start, End: end, Mean: mean})
		start = end
	}
	return segs
}

// DominantSegment returns the segment covering the most samples.
func DominantSegment(segs []Segment) Segment {
	var best Segment
	for _, s := range segs {
		if s.Len() > best.Len() {
			best = s
		}
	}
	return best
}
