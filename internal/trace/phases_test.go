package trace

import (
	"testing"
	"testing/quick"
)

func level(n int, v uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSegmentsFlatSeries(t *testing.T) {
	segs := Segments(level(100, 500), SegmentOptions{})
	if len(segs) != 1 {
		t.Fatalf("flat series split into %d segments", len(segs))
	}
	if segs[0].Start != 0 || segs[0].End != 100 || segs[0].Mean != 500 {
		t.Errorf("segment %+v", segs[0])
	}
}

func TestSegmentsTwoLevels(t *testing.T) {
	series := append(level(50, 100), level(50, 1000)...)
	segs := Segments(series, SegmentOptions{})
	if len(segs) != 2 {
		t.Fatalf("two-level series split into %d segments: %+v", len(segs), segs)
	}
	// Boundary within a window of the true change point.
	if b := segs[0].End; b < 42 || b > 58 {
		t.Errorf("boundary at %d, truth 50", b)
	}
	if segs[0].Mean >= segs[1].Mean {
		t.Error("segment means not ordered with the data")
	}
}

func TestSegmentsSilentThenActive(t *testing.T) {
	series := append(level(30, 0), level(30, 400)...)
	segs := Segments(series, SegmentOptions{})
	if len(segs) != 2 {
		t.Fatalf("silent→active split into %d segments", len(segs))
	}
	if segs[0].Mean != 0 {
		t.Errorf("first segment mean %f", segs[0].Mean)
	}
}

func TestSegmentsIgnoreSmallWobble(t *testing.T) {
	series := make([]uint64, 100)
	for i := range series {
		series[i] = 1000 + uint64(i%7)*20 // ±12% wobble
	}
	segs := Segments(series, SegmentOptions{Ratio: 2})
	if len(segs) != 1 {
		t.Errorf("wobble split into %d segments", len(segs))
	}
}

func TestSegmentsLinpackLikePhases(t *testing.T) {
	// Fig 4 shape in miniature: silence (init), a store burst, then a long
	// repeating solve region at a middling level.
	series := append(level(20, 0), level(30, 5000)...)
	series = append(series, level(150, 900)...)
	segs := Segments(series, SegmentOptions{})
	if len(segs) != 3 {
		t.Fatalf("want 3 phases, got %d: %+v", len(segs), segs)
	}
	dom := DominantSegment(segs)
	if dom.Start < 40 || dom.Len() < 100 {
		t.Errorf("dominant segment should be the solve region: %+v", dom)
	}
}

func TestSegmentsEdgeCases(t *testing.T) {
	if Segments(nil, SegmentOptions{}) != nil {
		t.Error("empty series")
	}
	segs := Segments([]uint64{7}, SegmentOptions{})
	if len(segs) != 1 || segs[0].Mean != 7 {
		t.Errorf("singleton: %+v", segs)
	}
	if DominantSegment(nil).Len() != 0 {
		t.Error("dominant of nothing")
	}
}

// Property: segments always partition the series exactly.
func TestSegmentsPartitionProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		series := make([]uint64, len(raw))
		for i, v := range raw {
			series[i] = uint64(v)
		}
		segs := Segments(series, SegmentOptions{})
		if len(series) == 0 {
			return segs == nil
		}
		at := 0
		for _, s := range segs {
			if s.Start != at || s.End <= s.Start {
				return false
			}
			at = s.End
		}
		return at == len(series)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
