package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV: arbitrary input must never panic the parser, and anything
// WriteCSV produced must parse back.
func FuzzReadCSV(f *testing.F) {
	f.Add("time_us,INST_RETIRED\n100.0,42\n")
	f.Add("time_us,LLC_MISSES,INST_RETIRED\n0.1,1,2\n0.2,3,4\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, input string) {
		events, samples, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// Valid parses round-trip.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, events, samples); err != nil {
			t.Fatalf("re-render failed: %v", err)
		}
		_, samples2, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(samples2) != len(samples) {
			t.Fatalf("round trip changed row count: %d vs %d", len(samples2), len(samples))
		}
	})
}
