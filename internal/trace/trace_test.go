package trace

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary %+v", s)
	}
	// Sample stddev of this classic set is ≈2.138.
	if math.Abs(s.Stddev-2.138) > 0.01 {
		t.Errorf("stddev %f", s.Stddev)
	}
	if Summarize(nil) != (Stats{}) {
		t.Error("empty input should give zero stats")
	}
	one := Summarize([]float64{3})
	if one.Mean != 3 || one.Stddev != 0 {
		t.Errorf("singleton: %+v", one)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%.2f) = %f, want %f", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.3); math.Abs(got-3) > 1e-9 {
		t.Errorf("interpolated quantile %f", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	if Median(xs) != 3 {
		t.Error("median")
	}
	// Quantile must not mutate its input.
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw []uint16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		a := float64(qa) / 255
		b := float64(qb) / 255
		qlo, qhi := math.Min(a, b), math.Max(a, b)
		return Quantile(xs, qlo) <= Quantile(xs, qhi)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBoxPlot(t *testing.T) {
	xs := []float64{1.0, 1.01, 1.02, 1.03, 1.04, 1.05, 5.0} // one wild outlier
	b := BoxPlot(xs)
	if len(b.Outliers) != 1 || b.Outliers[0] != 5.0 {
		t.Errorf("outliers: %v", b.Outliers)
	}
	if b.WhiskerHigh >= 5.0 {
		t.Error("whisker must not extend to the outlier")
	}
	if b.Median != 1.03 {
		t.Errorf("median %f", b.Median)
	}
	if b.Spread() <= 0 || b.IQR() <= 0 {
		t.Error("degenerate box")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if b.WhiskerLow != sorted[0] {
		t.Errorf("whisker low %f", b.WhiskerLow)
	}
}

func TestBoxPlotDegenerate(t *testing.T) {
	b := BoxPlot([]float64{2, 2, 2})
	if b.Spread() != 0 || b.Median != 2 {
		t.Errorf("constant data box: %+v", b)
	}
}

func TestMPKI(t *testing.T) {
	if MPKI(500, 100_000) != 5 {
		t.Error("MPKI")
	}
	if MPKI(5, 0) != 0 {
		t.Error("MPKI with zero instructions")
	}
}

func TestPercentDiff(t *testing.T) {
	if PercentDiff(100, 100) != 0 {
		t.Error("equal values")
	}
	if got := PercentDiff(100, 99); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("1%% diff: %f", got)
	}
	if PercentDiff(0, 0) != 0 {
		t.Error("both zero")
	}
	if PercentDiff(0, 50) != 100 {
		t.Error("zero vs nonzero is 100%")
	}
	if PercentDiff(99, 100) != PercentDiff(100, 99) {
		t.Error("must be symmetric")
	}
}

func TestOverheadPct(t *testing.T) {
	if got := OverheadPct(2.0, 2.1); math.Abs(got-5) > 1e-9 {
		t.Errorf("overhead %f", got)
	}
	if OverheadPct(0, 5) != 0 {
		t.Error("zero baseline guarded")
	}
	if OverheadPct(2, 1.9) >= 0 {
		t.Error("speedup should be negative")
	}
}

func TestWriteCSV(t *testing.T) {
	events := []isa.Event{isa.EvInstructions, isa.EvLLCMisses}
	samples := []monitor.Sample{
		{Time: ktime.Time(100 * ktime.Microsecond), Deltas: []uint64{1000, 5}},
		{Time: ktime.Time(200 * ktime.Microsecond), Deltas: []uint64{1100, 7}},
		{Time: ktime.Time(300 * ktime.Microsecond), Deltas: []uint64{900}}, // short row
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events, samples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines: %d", len(lines))
	}
	if lines[0] != "time_us,INST_RETIRED,LLC_MISSES" {
		t.Errorf("header: %q", lines[0])
	}
	if lines[1] != "100.0,1000,5" {
		t.Errorf("row 1: %q", lines[1])
	}
	if lines[3] != "300.0,900,0" {
		t.Errorf("short row should zero-fill: %q", lines[3])
	}
}

func TestBucket(t *testing.T) {
	series := []uint64{1, 2, 3, 4, 5, 6}
	b := Bucket(series, 3)
	if len(b) != 3 || b[0] != 3 || b[1] != 7 || b[2] != 11 {
		t.Errorf("buckets: %v", b)
	}
	if got := Bucket(series, 100); len(got) != len(series) {
		t.Error("more buckets than points should clamp")
	}
	if Bucket(nil, 3) != nil || Bucket(series, 0) != nil {
		t.Error("degenerate inputs")
	}
	// Bucketing conserves the total.
	var sum uint64
	for _, v := range Bucket(series, 4) {
		sum += v
	}
	if sum != 21 {
		t.Errorf("bucket sum %d", sum)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]uint64{0, 1, 2, 3, 4, 5, 6, 7, 8}, 9)
	if len([]rune(s)) != 9 {
		t.Errorf("width: %q", s)
	}
	if !strings.HasSuffix(s, "█") {
		t.Errorf("max should render full block: %q", s)
	}
	if !strings.HasPrefix(s, " ") {
		t.Errorf("zero should render blank: %q", s)
	}
	if Sparkline(nil, 10) != "" {
		t.Error("empty series")
	}
	flat := Sparkline([]uint64{0, 0, 0}, 3)
	if flat != "   " {
		t.Errorf("all-zero series: %q", flat)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	events := []isa.Event{isa.EvInstructions, isa.EvLLCMisses}
	in := []monitor.Sample{
		{Time: ktime.Time(100_500), Deltas: []uint64{1000, 5}},
		{Time: ktime.Time(200_500), Deltas: []uint64{1100, 7}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events, in); err != nil {
		t.Fatal(err)
	}
	gotEvents, gotSamples, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotEvents) != 2 || gotEvents[0] != isa.EvInstructions || gotEvents[1] != isa.EvLLCMisses {
		t.Errorf("events: %v", gotEvents)
	}
	if len(gotSamples) != 2 {
		t.Fatalf("samples: %d", len(gotSamples))
	}
	for i := range in {
		if gotSamples[i].Deltas[0] != in[i].Deltas[0] || gotSamples[i].Deltas[1] != in[i].Deltas[1] {
			t.Errorf("row %d deltas: %v vs %v", i, gotSamples[i].Deltas, in[i].Deltas)
		}
		// Timestamps survive to 0.1µs precision (the CSV format's grain).
		diff := int64(gotSamples[i].Time) - int64(in[i].Time)
		if diff < -100 || diff > 100 {
			t.Errorf("row %d time: %v vs %v", i, gotSamples[i].Time, in[i].Time)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,INST_RETIRED\n",
		"time_us,NOT_AN_EVENT\n",
		"time_us,INST_RETIRED\n1.0\n",            // short row
		"time_us,INST_RETIRED\nabc,5\n",          // bad timestamp
		"time_us,INST_RETIRED\n1.0,notanumber\n", // bad count
	}
	for _, c := range cases {
		if _, _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}
