package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
)

// WriteCSV renders a sample series as CSV: a header of event mnemonics,
// then one row per sample with the timestamp in microseconds. This is the
// K-LEB controller's log file format.
func WriteCSV(w io.Writer, events []isa.Event, samples []monitor.Sample) error {
	cols := make([]string, 0, len(events)+1)
	cols = append(cols, "time_us")
	for _, ev := range events {
		cols = append(cols, ev.String())
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, s := range samples {
		row := make([]string, 0, len(events)+1)
		row = append(row, fmt.Sprintf("%.1f", float64(s.Time)/1000))
		for i := range events {
			var v uint64
			if i < len(s.Deltas) {
				v = s.Deltas[i]
			}
			row = append(row, fmt.Sprintf("%d", v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSV parses a sample log written by WriteCSV (or by the K-LEB
// controller), returning the event columns and the samples.
func ReadCSV(r io.Reader) ([]isa.Event, []monitor.Sample, error) {
	scanner := bufio.NewScanner(r)
	if !scanner.Scan() {
		return nil, nil, fmt.Errorf("trace: empty log")
	}
	header := strings.Split(scanner.Text(), ",")
	if len(header) < 2 || header[0] != "time_us" {
		return nil, nil, fmt.Errorf("trace: bad header %q", scanner.Text())
	}
	events := make([]isa.Event, 0, len(header)-1)
	for _, name := range header[1:] {
		ev, ok := isa.EventByName(name)
		if !ok {
			return nil, nil, fmt.Errorf("trace: unknown event column %q", name)
		}
		events = append(events, ev)
	}
	var samples []monitor.Sample
	line := 1
	for scanner.Scan() {
		line++
		fields := strings.Split(scanner.Text(), ",")
		if len(fields) != len(header) {
			return nil, nil, fmt.Errorf("trace: line %d has %d fields, want %d", line, len(fields), len(header))
		}
		us, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("trace: line %d timestamp: %w", line, err)
		}
		s := monitor.Sample{
			Time:   ktime.Time(us * 1000),
			Deltas: make([]uint64, len(events)),
		}
		for i, f := range fields[1:] {
			v, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("trace: line %d column %d: %w", line, i+1, err)
			}
			s.Deltas[i] = v
		}
		samples = append(samples, s)
	}
	return events, samples, scanner.Err()
}

// Bucket aggregates a delta series into n equal-count buckets (summing
// deltas), for compact textual rendering of long time series.
func Bucket(series []uint64, n int) []uint64 {
	if n <= 0 || len(series) == 0 {
		return nil
	}
	if n > len(series) {
		n = len(series)
	}
	out := make([]uint64, n)
	for i, v := range series {
		out[i*n/len(series)] += v
	}
	return out
}

// Sparkline renders a delta series as a one-line unicode bar chart — handy
// for eyeballing phase behaviour (Fig 4/7) in terminal output.
func Sparkline(series []uint64, width int) string {
	levels := []rune(" ▁▂▃▄▅▆▇█")
	b := Bucket(series, width)
	if len(b) == 0 {
		return ""
	}
	var max uint64
	for _, v := range b {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range b {
		idx := 0
		if max > 0 {
			idx = int(v * uint64(len(levels)-1) / max)
		}
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}
