// Package trace provides the small analysis layer the experiments share:
// summary statistics, box-and-whisker descriptions, MPKI computation, and
// CSV rendering of sample time series.
package trace

import (
	"math"
	"sort"
)

// Stats summarizes a sample of float64 values.
type Stats struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes Stats for xs (zero value for empty input).
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := Stats{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Box is a box-and-whisker description (Tukey style): quartiles, whiskers
// at the most extreme points within 1.5·IQR of the box, and outliers
// beyond them. It is the shape of the paper's Fig 8.
type Box struct {
	Q1, Median, Q3          float64
	WhiskerLow, WhiskerHigh float64
	Outliers                []float64
}

// IQR returns the interquartile range.
func (b Box) IQR() float64 { return b.Q3 - b.Q1 }

// Spread returns whisker-to-whisker width — the "spread" the paper uses to
// argue K-LEB is the most consistent tool.
func (b Box) Spread() float64 { return b.WhiskerHigh - b.WhiskerLow }

// BoxPlot computes the box description of xs.
func BoxPlot(xs []float64) Box {
	b := Box{
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
	}
	iqr := b.IQR()
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskerLow = math.Inf(1)
	b.WhiskerHigh = math.Inf(-1)
	for _, x := range xs {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if x < b.WhiskerLow {
			b.WhiskerLow = x
		}
		if x > b.WhiskerHigh {
			b.WhiskerHigh = x
		}
	}
	if math.IsInf(b.WhiskerLow, 1) { // everything was an outlier (degenerate)
		b.WhiskerLow, b.WhiskerHigh = b.Median, b.Median
	}
	return b
}

// MPKI returns misses per kilo-instruction, the paper's classification
// metric (Fig 5, §IV-B/C).
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) / (float64(instructions) / 1000)
}

// PercentDiff returns |a-b| as a percentage of the larger magnitude — the
// paper's Fig 9 metric for cross-tool count agreement. It returns 0 when
// both are zero.
func PercentDiff(a, b uint64) float64 {
	if a == b {
		return 0
	}
	max := a
	if b > max {
		max = b
	}
	var diff uint64
	if a > b {
		diff = a - b
	} else {
		diff = b - a
	}
	return 100 * float64(diff) / float64(max)
}

// OverheadPct returns (withTool-baseline)/baseline in percent.
func OverheadPct(baseline, withTool float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (withTool - baseline) / baseline
}
