package trace

import (
	"math"

	"kleb/internal/ktime"
)

// Additional series analysis shared by examples and detectors: correlation
// between event streams, rate conversion, and histograms.

// Correlation returns the Pearson correlation coefficient of two
// equally-indexed series (the shorter length is used). It returns 0 when
// either series is constant or empty.
func Correlation(a, b []uint64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n < 2 {
		return 0
	}
	var sa, sb float64
	for i := 0; i < n; i++ {
		sa += float64(a[i])
		sb += float64(b[i])
	}
	ma, mb := sa/float64(n), sb/float64(n)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := float64(a[i])-ma, float64(b[i])-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// RatePerSecond converts per-window deltas into an events-per-second
// series given the sampling period.
func RatePerSecond(series []uint64, period ktime.Duration) []float64 {
	if period == 0 {
		return nil
	}
	out := make([]float64, len(series))
	sec := period.Seconds()
	for i, v := range series {
		out[i] = float64(v) / sec
	}
	return out
}

// Histogram bins values into n equal-width buckets over [min, max] and
// returns the per-bucket counts plus the bucket width. Degenerate input
// (empty, or constant values) yields a single bucket.
func Histogram(values []float64, n int) (counts []int, lo, width float64) {
	if len(values) == 0 || n < 1 {
		return nil, 0, 0
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return []int{len(values)}, lo, 0
	}
	width = (hi - lo) / float64(n)
	counts = make([]int, n)
	for _, v := range values {
		b := int((v - lo) / width)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts, lo, width
}
