package trace

import (
	"math"
	"testing"
	"testing/quick"

	"kleb/internal/ktime"
)

func TestCorrelation(t *testing.T) {
	a := []uint64{1, 2, 3, 4, 5}
	if got := Correlation(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("self correlation %f", got)
	}
	anti := []uint64{5, 4, 3, 2, 1}
	if got := Correlation(a, anti); math.Abs(got+1) > 1e-9 {
		t.Errorf("anti correlation %f", got)
	}
	if Correlation(a, []uint64{7, 7, 7, 7, 7}) != 0 {
		t.Error("constant series should correlate 0")
	}
	if Correlation(nil, a) != 0 || Correlation(a[:1], a[:1]) != 0 {
		t.Error("degenerate inputs")
	}
	// Unequal lengths use the common prefix.
	if got := Correlation(a, []uint64{1, 2, 3}); math.Abs(got-1) > 1e-9 {
		t.Errorf("prefix correlation %f", got)
	}
}

func TestCorrelationBounds(t *testing.T) {
	prop := func(a, b []uint8) bool {
		ua := make([]uint64, len(a))
		ub := make([]uint64, len(b))
		for i, v := range a {
			ua[i] = uint64(v)
		}
		for i, v := range b {
			ub[i] = uint64(v)
		}
		c := Correlation(ua, ub)
		return c >= -1.0000001 && c <= 1.0000001 && !math.IsNaN(c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRatePerSecond(t *testing.T) {
	rates := RatePerSecond([]uint64{100, 200}, ktime.Millisecond)
	if rates[0] != 100_000 || rates[1] != 200_000 {
		t.Errorf("rates: %v", rates)
	}
	if RatePerSecond([]uint64{1}, 0) != nil {
		t.Error("zero period should return nil")
	}
}

func TestHistogram(t *testing.T) {
	counts, lo, width := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if lo != 0 || math.Abs(width-1.8) > 1e-9 {
		t.Errorf("lo=%f width=%f", lo, width)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram lost values: %v", counts)
	}
	// Constant input collapses to one bucket.
	counts, _, width = Histogram([]float64{3, 3, 3}, 4)
	if len(counts) != 1 || counts[0] != 3 || width != 0 {
		t.Errorf("constant histogram: %v width %f", counts, width)
	}
	if c, _, _ := Histogram(nil, 3); c != nil {
		t.Error("empty input")
	}
}
