package analysis

import (
	"go/ast"
)

// Walltime forbids reading the host's wall clock inside the simulator.
// Every event in a run is stamped with virtual ktime; a single time.Now
// on a simulation path makes traces, metrics and seeded experiments
// non-reproducible. Legitimate uses — real benchmark timing in cmd/
// binaries or _test.go files — carry a //klebvet:allow walltime comment.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock time sources (time.Now, time.Since, time.Sleep, " +
		"time.After, time.Tick, tickers and timers); the ktime virtual clock " +
		"is the simulator's only time source",
	Run: runWalltime,
}

// walltimeBanned are the members of package time that observe or wait on
// the wall clock. Pure arithmetic (time.Duration, unit constants,
// time.Date construction from literals) stays legal.
var walltimeBanned = map[string]string{
	"Now":       "read the wall clock",
	"Since":     "measure wall time",
	"Until":     "measure wall time",
	"Sleep":     "block on the wall clock",
	"After":     "block on the wall clock",
	"AfterFunc": "schedule on the wall clock",
	"Tick":      "tick on the wall clock",
	"NewTicker": "tick on the wall clock",
	"NewTimer":  "schedule on the wall clock",
	"Ticker":    "tick on the wall clock",
	"Timer":     "schedule on the wall clock",
}

func runWalltime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgNameOf(pass.TypesInfo, sel.X)
			if pn == nil || pn.Imported().Path() != "time" {
				return true
			}
			if why, bad := walltimeBanned[sel.Sel.Name]; bad {
				pass.Reportf(sel.Pos(),
					"time.%s would %s: simulation code must use the ktime virtual clock (internal/ktime)",
					sel.Sel.Name, why)
				return false
			}
			return true
		})
	}
	return nil
}
