package analysis

import (
	"go/ast"
)

// SeededRand forbids randomness that does not flow through the
// deterministic, explicitly seeded PRNG in internal/ktime. The global
// math/rand source is process-seeded (and auto-seeded since Go 1.20),
// math/rand/v2's package-level functions are always randomly seeded, and
// crypto/rand is nondeterministic by design — any of them silently
// breaks the bit-identical-artifacts guarantee.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbid math/rand globals, math/rand/v2 globals and crypto/rand; " +
		"all simulation randomness must come from internal/ktime's seeded Rand",
	Run: runSeededRand,
}

// seededRandBanned maps import paths to the package members that draw
// from an unseeded (or process-seeded) source. An empty set bans every
// member of the package. Explicit sources (rand.NewSource(seed),
// rand.NewPCG(a, b)) remain legal: they are seeded by construction,
// though simulation code should still prefer ktime.Rand.
var seededRandBanned = map[string]map[string]bool{
	"math/rand": {
		"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
		"Perm": true, "Shuffle": true, "Read": true,
	},
	"math/rand/v2": {
		"Int": true, "IntN": true, "Int32": true, "Int32N": true,
		"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
		"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
		"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
		"Perm": true, "Shuffle": true, "N": true,
	},
	"crypto/rand": {},
}

func runSeededRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgNameOf(pass.TypesInfo, sel.X)
			if pn == nil {
				return true
			}
			path := pn.Imported().Path()
			banned, tracked := seededRandBanned[path]
			if !tracked {
				return true
			}
			if len(banned) == 0 || banned[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"%s.%s is not deterministically seeded: draw randomness from the run's ktime.Rand (internal/ktime) instead",
					path, sel.Sel.Name)
				return false
			}
			return true
		})
	}
	return nil
}
