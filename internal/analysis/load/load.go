// Package load type-checks Go packages for the klebvet analyzers using
// only the standard library and the go command. Dependency types come
// from compiler export data produced by `go list -deps -export`, so
// loading works offline and never re-type-checks the world: only the
// packages under analysis are checked from source.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one source package parsed and type-checked for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Packages loads, parses and type-checks the packages matching patterns
// (relative to dir; empty dir = current directory). Only root packages —
// the ones the patterns name — are returned, but every non-stdlib
// dependency is source-checked too (stdlib comes from export data):
// export data materializes its own copies of every package it
// references, so an in-module dependency loaded from export data would
// hand dependents types that fail identity checks against the
// source-checked siblings. `go list -deps` emits dependencies before
// dependents, and source-checked packages are preferred over export
// data when later packages import them — so every package under
// analysis shares one set of type objects, the property the
// whole-program call graph's cross-package identity checks rest on.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	local := make(map[string]*types.Package)
	imp := chainImporter{local: local, next: ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})}
	var out []*Package
	for _, lp := range listed {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := Check(fset, lp.ImportPath, lp.Dir, absFiles(lp.Dir, lp.GoFiles), imp)
		if err != nil {
			return nil, err
		}
		local[lp.ImportPath] = pkg.Types
		if !lp.DepOnly {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// chainImporter resolves imports from already source-checked packages
// first, falling back to export data. Packages under analysis must be
// checked in dependency order for the chain to hit.
type chainImporter struct {
	local map[string]*types.Package
	next  types.Importer
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.next.Import(path)
}

// Check parses the given files and type-checks them as one package
// resolving imports through imp.
func Check(fset *token.FileSet, importPath, dir string, files []string, imp types.Importer) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      asts,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// ExportImporter returns a types.Importer resolving import paths to
// compiler export data files via resolve. "unsafe" maps to types.Unsafe.
func ExportImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.Importer {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := resolve(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return unsafeAware{gc}
}

// unsafeAware wraps an importer to special-case package unsafe, which
// has no export data.
type unsafeAware struct{ next types.Importer }

func (u unsafeAware) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.next.Import(path)
}

// StdImporter resolves standard-library (and any other buildable)
// imports lazily by shelling out to `go list -export` on first use and
// reading the resulting export data. It backs the analysistest harness,
// whose testdata packages import only the standard library.
type StdImporter struct {
	mu    sync.Mutex
	known map[string]string
	inner types.Importer
}

// NewStdImporter returns a StdImporter sharing fset with the caller's
// parser.
func NewStdImporter(fset *token.FileSet) *StdImporter {
	si := &StdImporter{known: make(map[string]string)}
	si.inner = ExportImporter(fset, func(path string) (string, bool) {
		f, ok := si.known[path]
		return f, ok
	})
	return si
}

// Import implements types.Importer.
func (si *StdImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	si.mu.Lock()
	_, ok := si.known[path]
	if !ok {
		listed, err := goList("", []string{"-deps", "-export", path})
		if err != nil {
			si.mu.Unlock()
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				si.known[p.ImportPath] = p.Export
			}
		}
	}
	si.mu.Unlock()
	return si.inner.Import(path)
}

// goList runs `go list -json` with args and decodes the package stream.
func goList(dir string, args []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, strings.TrimSpace(stderr.String()))
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		out = append(out, &p)
	}
	return out, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}
