package analysis

import (
	"go/ast"
	"go/types"
)

// HTTPGuard keeps klebd's scrape path honest. HTTP handlers serve the
// fleet aggregate to Prometheus while shards stream into it, and the
// daemon's contract is that a scrape can neither perturb aggregation nor
// smuggle nondeterminism into it. Two invariants are enforced inside any
// HTTP-handler-shaped function (one taking an http.ResponseWriter and a
// *http.Request, named or literal):
//
//  1. No direct access to live telemetry state — values of type Sink or
//     SharedSink. Handlers operate on point-in-time snapshots
//     (Fleet.Snapshot / Fleet.Status); touching the live sink from a
//     handler either races aggregation or serves a torn read.
//
//  2. No wall-clock reads (the walltime banned set). Scrape timing is
//     self-telemetry and belongs behind the selfMetrics seam, where it is
//     kept out of the deterministic aggregate by construction.
var HTTPGuard = &Analyzer{
	Name: "httpguard",
	Doc: "HTTP handlers must serve snapshots: no live Sink/SharedSink access " +
		"and no direct wall-clock reads inside handler-shaped functions",
	Run: runHTTPGuard,
}

// liveSinkTypes are the named types a handler must never touch directly.
// Matching is by exact type name so snapshot types (Snapshot, Status)
// stay legal.
var liveSinkTypes = map[string]bool{
	"Sink":       true,
	"SharedSink": true,
}

func runHTTPGuard(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && isHandlerShaped(pass, fn.Type) {
					checkHandlerBody(pass, fn.Body)
					return false // nested literals already covered
				}
			case *ast.FuncLit:
				if isHandlerShaped(pass, fn.Type) {
					checkHandlerBody(pass, fn.Body)
					return false
				}
			}
			return true
		})
	}
	return nil
}

// isHandlerShaped reports whether ft takes both an http.ResponseWriter
// and a *http.Request — the net/http handler contract, whatever the
// parameter order or extra arguments.
func isHandlerShaped(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	var hasWriter, hasRequest bool
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		switch named := namedType(tv.Type); {
		case named == nil:
		case named.Obj().Name() == "ResponseWriter" && isNetHTTP(named.Obj().Pkg()):
			hasWriter = true
		case named.Obj().Name() == "Request" && isNetHTTP(named.Obj().Pkg()):
			hasRequest = true
		}
	}
	return hasWriter && hasRequest
}

// checkHandlerBody reports every live-sink touch and wall-clock read in
// one handler body. Nested function literals are part of the handler:
// work deferred or spawned from a scrape still runs on the scrape's
// behalf.
func checkHandlerBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Wall-clock reads: the walltime banned set, scoped to handlers
		// regardless of allow comments elsewhere in the package.
		if pn := pkgNameOf(pass.TypesInfo, sel.X); pn != nil && pn.Imported().Path() == "time" {
			if why, bad := walltimeBanned[sel.Sel.Name]; bad {
				pass.Reportf(sel.Pos(),
					"HTTP handler calls time.%s (would %s): scrape timing belongs behind the self-telemetry seam, not in the handler",
					sel.Sel.Name, why)
				return false
			}
			return true
		}
		// Live telemetry state: any selection on a Sink/SharedSink value.
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			return true
		}
		if named := namedType(tv.Type); named != nil && liveSinkTypes[named.Obj().Name()] {
			key := exprKey(sel.X)
			if key == "" {
				key = named.Obj().Name() + " value"
			}
			pass.Reportf(sel.Pos(),
				"HTTP handler touches live telemetry state (%s.%s, type %s): handlers must serve point-in-time snapshots, never the live sink",
				key, sel.Sel.Name, named.Obj().Name())
		}
		return true
	})
}

// namedType unwraps pointers and aliases down to the named type, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNetHTTP reports whether pkg is the standard net/http package.
func isNetHTTP(pkg *types.Package) bool {
	return pkg != nil && pkg.Path() == "net/http"
}
