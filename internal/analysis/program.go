package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-program half of the suite: a Program indexes
// every function of every loaded package (in dependency order), builds a
// conservative type-based call graph over them — static calls, interface
// method dispatch resolved against the method sets of all source types,
// and calls through stored func values matched by signature — and
// propagates deterministic, position-independent per-function facts
// (determinism taint, may-allocate) to a fixpoint. The detertaint,
// hotalloc and ledgerguard analyzers run on top of it.

// Function-level directives recognized in doc comments.
const (
	// hotpathDirective marks a function whose whole static call tree
	// must be allocation-free (checked by hotalloc).
	hotpathDirective = "//klebvet:hotpath"
	// artifactDirective marks a function that produces a deterministic
	// artifact and must be transitively free of determinism taint
	// (checked by detertaint).
	artifactDirective = "//klebvet:artifact"
	// ledgerDirective on a struct type declares a conservation equation
	// over its fields: //klebvet:ledger fires = captured + dropped
	// (checked by ledgerguard).
	ledgerDirective = "//klebvet:ledger"
)

// A SourcePackage is one type-checked package handed to BuildProgram.
// cmd/klebvet adapts load.Package to it; all packages must share one
// token.FileSet.
type SourcePackage struct {
	ImportPath string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// A Fact is one position-anchored, position-independently described
// property of a function: a determinism-taint source or an allocation
// site. Desc never contains positions, so fact exports are stable under
// reformatting.
type Fact struct {
	Pos  token.Pos
	Kind string // taint: the source analyzer's name; alloc: ""
	Desc string
}

// A CallSite is one call expression and its resolved callees. Static
// calls have exactly one callee; dynamic calls (interface dispatch,
// calls through func values) conservatively list every source function
// that could be invoked.
type CallSite struct {
	Pos     token.Pos
	Desc    string // "dep.Clock", "interface call Program.Next", "call through func value"
	Dynamic bool
	Callees []*FuncNode
}

// propFact is one propagated fact: why this function has the property,
// and the callee the property arrived through (nil at a seed).
type propFact struct {
	why string
	via *FuncNode
}

// A FuncNode is one function (declaration or literal) in the Program.
type FuncNode struct {
	Pkg  *SourcePackage
	Obj  *types.Func   // nil for function literals
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declarations

	// Name is the canonical, unique, position-independent identity:
	// "kleb/internal/fleet.wallNs", "(*kleb/internal/kleb.Module).onTimer",
	// literals as "<parent>$<n>" in source order.
	Name string
	// Short is the diagnostic-friendly form: "fleet.wallNs",
	// "kleb.(*Module).onTimer", "kernel.runCurrent$1".
	Short string

	Hotpath  bool
	Artifact bool

	Calls []*CallSite
	// TaintSrc are the function's own (unsuppressed) determinism-taint
	// sources; SuppTaint the allow-suppressed ones (audited by
	// detertaint's seam check). AllocSrc are its own (unsuppressed)
	// allocation sites.
	TaintSrc, SuppTaint, AllocSrc []Fact

	taint, alloc *propFact
}

// Tainted returns the propagated determinism-taint fact, or nil when the
// function is transitively clean.
func (n *FuncNode) Tainted() *propFact { return n.taint }

// Allocates returns the propagated may-allocate fact, or nil when the
// function is statically allocation-free.
func (n *FuncNode) Allocates() *propFact { return n.alloc }

// body returns the function's body block (nil for bodyless decls).
func (n *FuncNode) body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// pos returns the anchor position for diagnostics about the function.
func (n *FuncNode) pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Name.Pos()
	}
	return n.Lit.Pos()
}

// A Program is the whole-program view the RunProgram analyzers consume.
type Program struct {
	Fset *token.FileSet
	// Packages in dependency order (imports before importers, ties by
	// import path), so per-package processing is deterministic and
	// bottom-up.
	Packages []*SourcePackage
	// Nodes in deterministic order: package order, then file, then
	// source position.
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	// stored indexes every function value that escapes into a variable,
	// field, argument or return (func literals not immediately called,
	// referenced package functions, bound method values) by signature
	// key — the conservative callee set for calls through func values.
	stored map[string][]*FuncNode
	// named are all package-level named non-interface types, the
	// candidate implementers for interface dispatch.
	named []*types.Named
	// spans orders each file's function nodes for position→function
	// lookups.
	spans map[string][]nodeSpan
}

type nodeSpan struct {
	start, end token.Pos
	node       *FuncNode
}

// A ProgramPass hands one whole-program analyzer the Program.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	report func(Diagnostic)
}

// Report records one finding; allow-comment filtering happens in
// RunProgram, exactly as in the per-package driver.
func (pp *ProgramPass) Report(d Diagnostic) {
	pp.report(d) //klebvet:allow emitguard -- RunProgram installs report on every ProgramPass it builds
}

// Reportf records a formatted finding.
func (pp *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	pp.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// RunProgram applies a whole-program analyzer to prog and returns the
// surviving (non-allowlisted) diagnostics sorted by position.
func RunProgram(a *Analyzer, prog *Program) ([]Diagnostic, error) {
	if a.RunProgram == nil {
		return nil, fmt.Errorf("analysis: %s is a per-package analyzer; drive it with Run", a.Name)
	}
	allow := make(allowIndex)
	for _, sp := range prog.Packages {
		for file, lines := range buildAllowIndex(prog.Fset, sp.Files, a.Name) {
			allow[file] = lines
		}
	}
	var out []Diagnostic
	pass := &ProgramPass{
		Analyzer: a,
		Prog:     prog,
		report: func(d Diagnostic) {
			if !allow.suppresses(prog.Fset.Position(d.Pos)) {
				out = append(out, d)
			}
		},
	}
	if err := a.RunProgram(pass); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// BuildProgram indexes pkgs (which must share fset), builds the call
// graph and propagates taint and allocation facts. The result is fully
// deterministic: dependency-ordered packages, source-ordered functions,
// and worklists seeded and drained in index order.
func BuildProgram(fset *token.FileSet, pkgs []*SourcePackage) (*Program, error) {
	prog := &Program{
		Fset:   fset,
		byObj:  make(map[*types.Func]*FuncNode),
		byLit:  make(map[*ast.FuncLit]*FuncNode),
		stored: make(map[string][]*FuncNode),
		spans:  make(map[string][]nodeSpan),
	}
	prog.Packages = dependencyOrder(pkgs)
	for _, sp := range prog.Packages {
		prog.indexPackage(sp)
	}
	prog.collectNamedTypes()
	res := &resolver{prog: prog}
	for _, n := range prog.Nodes {
		if n.body() != nil {
			res.scanBody(n)
		}
	}
	res.resolveDeferred()
	prog.collectTaintSources()
	prog.propagate(
		func(n *FuncNode) bool { return len(n.TaintSrc) > 0 },
		func(n *FuncNode) *propFact { return n.taint },
		func(n *FuncNode, f *propFact) { n.taint = f },
	)
	prog.propagate(
		func(n *FuncNode) bool { return len(n.AllocSrc) > 0 },
		func(n *FuncNode) *propFact { return n.alloc },
		func(n *FuncNode, f *propFact) { n.alloc = f },
	)
	return prog, nil
}

// dependencyOrder topologically sorts pkgs so imports precede importers,
// breaking ties (and cycles, which go's importer forbids anyway) by
// import path.
func dependencyOrder(pkgs []*SourcePackage) []*SourcePackage {
	sorted := append([]*SourcePackage(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	byPath := make(map[string]*SourcePackage, len(sorted))
	for _, sp := range sorted {
		byPath[sp.Pkg.Path()] = sp
	}
	var out []*SourcePackage
	state := make(map[*SourcePackage]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(sp *SourcePackage)
	visit = func(sp *SourcePackage) {
		if state[sp] != 0 {
			return
		}
		state[sp] = 1
		deps := append([]*types.Package(nil), sp.Pkg.Imports()...)
		sort.Slice(deps, func(i, j int) bool { return deps[i].Path() < deps[j].Path() })
		for _, dep := range deps {
			if dsp, ok := byPath[dep.Path()]; ok {
				visit(dsp)
			}
		}
		state[sp] = 2
		out = append(out, sp)
	}
	for _, sp := range sorted {
		visit(sp)
	}
	return out
}

// indexPackage creates FuncNodes for every declaration and literal in sp
// and records the hotpath/artifact directives.
func (prog *Program) indexPackage(sp *SourcePackage) {
	for _, f := range sp.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := sp.Info.Defs[fd.Name].(*types.Func)
			n := &FuncNode{
				Pkg:   sp,
				Obj:   obj,
				Decl:  fd,
				Name:  declName(sp, fd, obj),
				Short: declShort(sp, fd, obj),
			}
			n.Hotpath = hasDirective(fd.Doc, hotpathDirective)
			n.Artifact = hasDirective(fd.Doc, artifactDirective)
			prog.addNode(n, fd.Pos(), fd.End())
			if obj != nil {
				prog.byObj[obj] = n
			}
			// Literals nested in this declaration, in source order.
			seq := 0
			if fd.Body != nil {
				ast.Inspect(fd.Body, func(x ast.Node) bool {
					lit, ok := x.(*ast.FuncLit)
					if !ok {
						return true
					}
					seq++
					ln := &FuncNode{
						Pkg:   sp,
						Lit:   lit,
						Name:  fmt.Sprintf("%s$%d", n.Name, seq),
						Short: fmt.Sprintf("%s$%d", n.Short, seq),
					}
					prog.addNode(ln, lit.Pos(), lit.End())
					prog.byLit[lit] = ln
					return true
				})
			}
		}
	}
}

func (prog *Program) addNode(n *FuncNode, start, end token.Pos) {
	prog.Nodes = append(prog.Nodes, n)
	file := prog.Fset.Position(start).Filename
	prog.spans[file] = append(prog.spans[file], nodeSpan{start: start, end: end, node: n})
}

// FuncAt returns the innermost function containing pos, or nil.
func (prog *Program) FuncAt(pos token.Pos) *FuncNode {
	file := prog.Fset.Position(pos).Filename
	var best *FuncNode
	var bestSize token.Pos = -1
	for _, s := range prog.spans[file] {
		if s.start <= pos && pos < s.end {
			if size := s.end - s.start; bestSize < 0 || size < bestSize {
				best, bestSize = s.node, size
			}
		}
	}
	return best
}

// ByObject returns the node for a declared function, or nil.
func (prog *Program) ByObject(obj *types.Func) *FuncNode { return prog.byObj[obj] }

// declName renders the canonical unique name of a declared function.
func declName(sp *SourcePackage, fd *ast.FuncDecl, obj *types.Func) string {
	return funcName(sp.Pkg.Path(), fd, obj)
}

// declShort renders the diagnostic-friendly name.
func declShort(sp *SourcePackage, fd *ast.FuncDecl, obj *types.Func) string {
	base := sp.Pkg.Name()
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return base + "." + recvString(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return base + "." + fd.Name.Name
}

func funcName(path string, fd *ast.FuncDecl, obj *types.Func) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return path + "." + fd.Name.Name
	}
	recv := recvString(fd.Recv.List[0].Type)
	if strings.HasPrefix(recv, "(*") {
		return "(*" + path + "." + strings.TrimSuffix(strings.TrimPrefix(recv, "(*"), ")") + ")." + fd.Name.Name
	}
	return path + "." + recv + "." + fd.Name.Name
}

// recvString renders a receiver type expression: "(*Module)" or "Clock".
func recvString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return "(*" + recvString(e.X) + ")"
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return recvString(e.X)
	case *ast.IndexListExpr:
		return recvString(e.X)
	}
	return "?"
}

// hasDirective reports whether a doc comment group contains the given
// //klebvet: directive as a line of its own (trailing text allowed).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// collectNamedTypes gathers every package-level named non-interface type
// as an interface-dispatch candidate.
func (prog *Program) collectNamedTypes() {
	for _, sp := range prog.Packages {
		scope := sp.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			prog.named = append(prog.named, named)
		}
	}
}

// taintSourceAnalyzers are the per-package analyzers whose findings seed
// determinism taint: each unsuppressed diagnostic becomes a taint source
// of its enclosing function.
func taintSourceAnalyzers() []*Analyzer { return []*Analyzer{Walltime, SeededRand, MapOrder} }

// collectTaintSources re-runs the syntactic source detectors raw (no
// allow filtering) over every package and buckets each finding into its
// enclosing function as active or suppressed taint. A finding is
// suppressed when covered by an allow comment for the source analyzer or
// for detertaint itself.
func (prog *Program) collectTaintSources() {
	for _, sp := range prog.Packages {
		for _, a := range taintSourceAnalyzers() {
			var raw []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     sp.Files,
				Pkg:       sp.Pkg,
				TypesInfo: sp.Info,
				report:    func(d Diagnostic) { raw = append(raw, d) },
			}
			//klebvet:allow emitguard -- every taint-source analyzer is per-package with Run set
			if err := a.Run(pass); err != nil {
				continue // a source detector that errors contributes no facts
			}
			if len(raw) == 0 {
				continue
			}
			allowSelf := buildAllowIndex(prog.Fset, sp.Files, a.Name)
			allowTaint := buildAllowIndex(prog.Fset, sp.Files, DeterTaint.Name)
			for _, d := range raw {
				n := prog.FuncAt(d.Pos)
				if n == nil {
					continue // package-level initializer; out of scope
				}
				fact := Fact{Pos: d.Pos, Kind: a.Name, Desc: factDesc(d.Message)}
				p := prog.Fset.Position(d.Pos)
				if allowSelf.suppresses(p) || allowTaint.suppresses(p) {
					n.SuppTaint = append(n.SuppTaint, fact)
				} else {
					n.TaintSrc = append(n.TaintSrc, fact)
				}
			}
		}
	}
}

// factDesc compresses a diagnostic message into a short
// position-independent fact description.
func factDesc(msg string) string {
	if i := strings.IndexAny(msg, ":;"); i > 0 {
		msg = msg[:i]
	}
	return msg
}

// propagate floods a fact from its seed functions to every caller,
// deterministically: the worklist is seeded and drained in node index
// order, and callers are visited in node index order, so the recorded
// "via" chain is the same on every run.
func (prog *Program) propagate(seeded func(*FuncNode) bool, get func(*FuncNode) *propFact, set func(*FuncNode, *propFact)) {
	callers := make(map[*FuncNode][]struct {
		caller *FuncNode
		site   *CallSite
	})
	for _, n := range prog.Nodes {
		for _, cs := range n.Calls {
			for _, callee := range cs.Callees {
				callers[callee] = append(callers[callee], struct {
					caller *FuncNode
					site   *CallSite
				}{n, cs})
			}
		}
	}
	var queue []*FuncNode
	for _, n := range prog.Nodes {
		if seeded(n) {
			set(n, &propFact{})
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, edge := range callers[n] {
			if get(edge.caller) != nil {
				continue
			}
			why := "calls " + n.Short
			if edge.site.Dynamic {
				why = "may call " + n.Short + " (" + edge.site.Desc + ")"
			}
			set(edge.caller, &propFact{why: why, via: n})
			queue = append(queue, edge.caller)
		}
	}
}

// Chain renders the propagation path from n to the seed of fact f
// (taint or alloc), ending in the seed's first source description:
// "a.Run → b.Clock: time.Now would read the wall clock".
func (prog *Program) Chain(n *FuncNode, kind string) string {
	var names []string
	cur := n
	for i := 0; cur != nil && i < 8; i++ {
		names = append(names, cur.Short)
		var f *propFact
		if kind == "taint" {
			f = cur.taint
		} else {
			f = cur.alloc
		}
		if f == nil || f.via == nil {
			break
		}
		cur = f.via
	}
	desc := ""
	if cur != nil {
		var srcs []Fact
		if kind == "taint" {
			srcs = cur.TaintSrc
		} else {
			srcs = cur.AllocSrc
		}
		if len(srcs) > 0 {
			desc = sortedFirstDesc(srcs)
		}
	}
	chain := strings.Join(names, " → ")
	if desc != "" {
		return chain + ": " + desc
	}
	return chain
}

// sortedFirstDesc returns the lexically first description, so chains are
// position-independent even when a function has several sources.
func sortedFirstDesc(facts []Fact) string {
	best := facts[0].Desc
	for _, f := range facts[1:] {
		if f.Desc < best {
			best = f.Desc
		}
	}
	return best
}

// Facts exports the program's propagated per-function facts as sorted,
// position-independent lines — the golden-file surface of the engine.
// Seeds list their own source descriptions; propagated facts list the
// edge they arrived through.
func (prog *Program) Facts() []string {
	var out []string
	for _, n := range prog.Nodes {
		if n.Hotpath {
			out = append(out, "hotpath "+n.Name)
		}
		if n.Artifact {
			out = append(out, "artifact "+n.Name)
		}
		out = append(out, factLines("taint", n, n.taint, n.TaintSrc)...)
		out = append(out, factLines("alloc", n, n.alloc, n.AllocSrc)...)
	}
	sort.Strings(out)
	return out
}

func factLines(kind string, n *FuncNode, f *propFact, srcs []Fact) []string {
	if f == nil {
		return nil
	}
	if f.via == nil {
		descs := make([]string, 0, len(srcs))
		for _, s := range srcs {
			descs = append(descs, s.Desc)
		}
		sort.Strings(descs)
		lines := make([]string, 0, len(descs))
		for _, d := range descs {
			lines = append(lines, kind+" "+n.Name+": "+d)
		}
		return lines
	}
	return []string{kind + " " + n.Name + ": " + f.why}
}
