package analysis_test

import (
	"testing"

	"kleb/internal/analysis"
	"kleb/internal/analysis/analysistest"
)

// Each analyzer runs over its golden package under testdata/src, which
// holds at least one positive case (a // want expectation) and one
// allowlisted negative case per rule. The maporder package reproduces
// the PR 2 fireDue bug shape verbatim.

func TestWalltime(t *testing.T) {
	analysistest.Run(t, analysis.Walltime, "walltime")
}

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, analysis.SeededRand, "seededrand")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder")
}

func TestEmitGuard(t *testing.T) {
	analysistest.Run(t, analysis.EmitGuard, "emitguard")
}

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, analysis.LockDiscipline, "lockdiscipline")
}

func TestDroppedErr(t *testing.T) {
	analysistest.Run(t, analysis.DroppedErr, "droppederr")
}

func TestHTTPGuard(t *testing.T) {
	analysistest.Run(t, analysis.HTTPGuard, "httpguard")
}

func TestAllAndByName(t *testing.T) {
	all := analysis.All()
	if len(all) != 10 {
		t.Fatalf("All() returned %d analyzers, want 10", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v is missing Name or Doc", a)
		}
		if (a.Run == nil) == (a.RunProgram == nil) {
			t.Errorf("analyzer %q must set exactly one of Run and RunProgram", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if analysis.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if analysis.ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}
