package analysis

import (
	"go/ast"
	"go/types"
)

// This file holds the small AST toolbox the analyzers share: a walker
// that exposes the ancestor stack, a syntactic expression-identity
// helper, and the nil-guard dominance check emitguard and lockdiscipline
// build on.

// walkStack visits every node under root in depth-first order, passing
// the stack of ancestors (outermost first, not including n itself).
// Returning false skips n's children.
func walkStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := visit(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// exprKey renders an expression as a canonical source string so two
// mentions of the same lvalue chain (s.mu, k.tel, done) compare equal.
// Only the shapes that can name a guarded value are supported; anything
// else yields "" and never matches.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	}
	return ""
}

// enclosingFunc returns the innermost function declaration or literal on
// the stack, and its body.
func enclosingFunc(stack []ast.Node) (ast.Node, *ast.BlockStmt) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn, fn.Body
		case *ast.FuncLit:
			return fn, fn.Body
		}
	}
	return nil, nil
}

// nilGuarded reports whether the use of the value named by key at node
// `use` is dominated by a non-nil guard. Two patterns count:
//
//   - an ancestor if (or the right-hand side of its && condition) that
//     asserts `key != nil` with the use in the then-branch or later in
//     the same condition:  if s != nil { s.f() }  /  if s != nil && ...
//   - an earlier statement in an enclosing block of the form
//     `if key == nil { return/panic/continue/break }`:
//     if s == nil { return }; ...; s.f()
//
// The check is intra-procedural and purely syntactic over exprKey names,
// matching how the codebase writes its hook guards.
func nilGuarded(use ast.Node, stack []ast.Node, key string) bool {
	if key == "" {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		n := stack[i]
		// Stop at the function boundary: guards outside the closure that
		// contains the use do not dominate re-entrant calls.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if _, ok := n.(*ast.FuncDecl); ok {
			return false
		}
		if ifs, ok := n.(*ast.IfStmt); ok {
			inThen := i+1 < len(stack) && stack[i+1] == ast.Node(ifs.Body)
			inCond := i+1 < len(stack) && stack[i+1] == ast.Node(ifs.Cond)
			if (inThen || inCond) && condAssertsNonNil(ifs.Cond, key) {
				return true
			}
		}
		if blk, ok := n.(*ast.BlockStmt); ok {
			// Which child of the block leads to the use?
			var usePos = use.Pos()
			for _, st := range blk.List {
				if st.End() > usePos {
					break
				}
				if guardReturnsOnNil(st, key) {
					return true
				}
			}
		}
	}
	return false
}

// condAssertsNonNil reports whether cond being true guarantees key != nil:
// the condition is `key != nil`, or a && conjunction with such a branch.
func condAssertsNonNil(cond ast.Expr, key string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condAssertsNonNil(c.X, key)
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "&&":
			return condAssertsNonNil(c.X, key) || condAssertsNonNil(c.Y, key)
		case "!=":
			return isNilComparison(c, key)
		}
	}
	return false
}

// guardReturnsOnNil matches `if key == nil { return/panic/... }` (the
// condition may be an || chain with key == nil as one disjunct).
func guardReturnsOnNil(st ast.Stmt, key string) bool {
	ifs, ok := st.(*ast.IfStmt)
	if !ok || ifs.Else != nil || !condHasNilDisjunct(ifs.Cond, key) {
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// condHasNilDisjunct reports whether key == nil appears as a top-level
// || disjunct of cond (so cond true implies possibly-nil, and falling
// through the guard implies key != nil).
func condHasNilDisjunct(cond ast.Expr, key string) bool {
	switch c := cond.(type) {
	case *ast.ParenExpr:
		return condHasNilDisjunct(c.X, key)
	case *ast.BinaryExpr:
		if c.Op.String() == "||" {
			return condHasNilDisjunct(c.X, key) || condHasNilDisjunct(c.Y, key)
		}
		if c.Op.String() == "==" {
			return isNilComparison(c, key)
		}
	}
	return false
}

// isNilComparison reports whether b compares the expression named key
// against the nil literal (either operand order).
func isNilComparison(b *ast.BinaryExpr, key string) bool {
	xNil := isNilIdent(b.X)
	yNil := isNilIdent(b.Y)
	if xNil == yNil {
		return false
	}
	if xNil {
		return exprKey(b.Y) == key
	}
	return exprKey(b.X) == key
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// pkgNameOf resolves the *types.PkgName a selector's qualifier refers to,
// or nil when the expression is not a package-qualified reference.
func pkgNameOf(info *types.Info, e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}
