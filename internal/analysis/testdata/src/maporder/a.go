// Package maporder exercises the maporder analyzer on the PR 2
// fireDue/doExit bug class: map ranges feeding order-sensitive sinks.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Sink mimics the telemetry sink shape the analyzer special-cases.
type Sink struct{}

// Emit records one event.
func (s *Sink) Emit(k string) {}

type proc struct {
	pid      int
	sleeping bool
}

// fireDueBug is the PR 2 bug shape: wakeups collected in map iteration
// order feed the run queue unsorted.
func fireDueBug(procs map[int]*proc) []*proc {
	var woken []*proc
	for _, p := range procs {
		if p.sleeping {
			woken = append(woken, p) // want `append to woken inside range over map`
		}
	}
	return woken
}

// fireDueFixed collects then sorts — the PR 2 fix.
func fireDueFixed(procs map[int]*proc) []*proc {
	var woken []*proc
	for _, p := range procs {
		if p.sleeping {
			woken = append(woken, p)
		}
	}
	sort.Slice(woken, func(i, j int) bool { return woken[i].pid < woken[j].pid })
	return woken
}

func printBug(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map`
	}
}

func sendBug(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

func emitBug(m map[string]int, s *Sink) {
	for k := range m {
		s.Emit(k) // want `telemetry emit s\.Emit inside range over map`
	}
}

func writerBug(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want `sb\.WriteString inside range over map`
	}
}

// countGood accumulates commutatively: not flagged.
func countGood(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// mergeGood writes into another map keyed by the range key: per-key
// writes are order-independent.
func mergeGood(dst, src map[string]int) {
	for k, v := range src {
		dst[k] += v
	}
}

// keysSorted is the canonical iterate-sorted-keys idiom.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// allowedAppend defers ordering to its caller, with the escape hatch.
func allowedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //klebvet:allow maporder -- caller sorts
	}
	return keys
}
