// Package outside tries to write the ledger from the wrong side of the
// package boundary.
package outside

import "ledgerguard/owner"

// Poke writes a ledger field directly from outside the owning package.
func Poke(b *owner.Book) {
	b.Captured++ // want `ledger field owner\.Book\.Captured written outside its owning package ledgerguard/owner`
}

// Forge constructs a ledger struct with non-zero conservation fields —
// each keyed field is a write.
func Forge() owner.Book {
	return owner.Book{Fires: 1, Captured: 1} // want `ledger field owner\.Book\.Fires written outside its owning package` `ledger field owner\.Book\.Captured written outside its owning package`
}

// Read-only access is fine.
func Total(b *owner.Book) int {
	return b.Fires
}
