// Package owner declares the fixture's conservation ledger and its
// audited writers.
package owner

// Book tracks period conservation for the fixture.
//
//klebvet:ledger Fires = Captured + Dropped
type Book struct {
	Fires    int
	Captured int
	Dropped  int
}

// Tick is balanced: every fire lands in exactly one bucket.
func Tick(b *Book, ok bool) {
	b.Fires++
	if ok {
		b.Captured++
	} else {
		b.Dropped++
	}
}

// Leak increments the total with no balancing write anywhere on its
// call tree — conservation cannot hold.
func Leak(b *Book) {
	b.Fires++ // want `increment of ledger total owner\.Book\.Fires never reaches a balancing write \(Captured/Dropped\)`
}

// Reset uses plain assignment: allowed, a reset is not an increment.
func Reset(b *Book) {
	b.Fires = 0
	b.Captured = 0
	b.Dropped = 0
}

// capture is the balancing helper indirect increments reach.
func capture(b *Book) {
	b.Captured++
}

// TickIndirect balances through a helper call one edge away.
func TickIndirect(b *Book) {
	b.Fires++
	capture(b)
}
