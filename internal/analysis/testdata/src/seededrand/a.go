// Package seededrand exercises the seededrand analyzer: globally seeded
// randomness is a finding, explicitly seeded sources are not.
package seededrand

import (
	crand "crypto/rand"
	"math/rand"
	randv2 "math/rand/v2"
)

func bad() {
	_ = rand.Intn(10)   // want `math/rand\.Intn`
	rand.Seed(42)       // want `math/rand\.Seed`
	_ = randv2.IntN(10) // want `math/rand/v2\.IntN`
	var b [8]byte
	_, _ = crand.Read(b[:]) // want `crypto/rand\.Read`
}

// good draws from an explicitly seeded source — deterministic, though
// simulation code should still prefer ktime.Rand.
func good() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

// allowed documents a legitimate use the analyzer cannot judge.
func allowed() int {
	return rand.Intn(10) //klebvet:allow seededrand -- outside any simulated run
}
