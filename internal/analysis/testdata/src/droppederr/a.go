// Package droppederr exercises the droppederr analyzer: bare call
// statements that drop an error result are findings; explicit `_ =`
// discards, handled errors, fmt formatting and never-fail buffer writers
// are not.
package droppederr

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func pure() int { return 1 }

type dev struct{}

func (d *dev) Close() error      { return nil }
func (d *dev) Write(p []byte) (int, error) { return len(p), nil }

func bad(d *dev) {
	mayFail() // want `silently discarded`
	pair()    // want `silently discarded`
	d.Close() // want `silently discarded`
	func() error { return nil }() // want `silently discarded`
}

func good(d *dev) {
	_ = mayFail() // explicit discard is a decision, not an accident
	if err := mayFail(); err != nil {
		return
	}
	if _, err := pair(); err != nil {
		return
	}
	pure() // no error in the result set

	// fmt formatting and in-memory builders cannot fail by contract.
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "x=%d", 1)
	buf.WriteString("tail")
	var sb strings.Builder
	sb.WriteString("tail")

	// defer/go statements are not expression statements; the analyzer
	// leaves cleanup-path convention to reviewers.
	defer d.Close()
}

func allowed() {
	mayFail() //klebvet:allow droppederr -- exercising the suppression path
}
