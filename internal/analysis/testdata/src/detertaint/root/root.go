// Package root holds the fixture's artifact-producing roots.
package root

import (
	"detertaint/clock"
	"detertaint/iface"
)

// Emit folds a sample from any Source into an artifact; taint arrives
// through interface dispatch to Wally.Sample two packages away.
//
//klebvet:artifact
func Emit(s iface.Source) int64 { // want `artifact root root\.Emit is determinism-tainted: root\.Emit → iface\.Wally\.Sample → clock\.Wall`
	return s.Sample()
}

// Direct reaches the clock through a plain static cross-package call.
//
//klebvet:artifact
func Direct() int64 { // want `artifact root root\.Direct is determinism-tainted: root\.Direct → clock\.Wall`
	return clock.Wall()
}

// Status calls the suppressed source: not tainted (the source is
// allowlisted), but the seam audit flags Quiet because only the
// sanctioned fleet.wallNs seam may sit inside an artifact call tree.
//
//klebvet:artifact
func Status() int64 {
	return clock.Quiet()
}

// Clean is a taint-free artifact root: a concrete deterministic source
// resolved statically.
//
//klebvet:artifact
func Clean(s iface.Fixed) int64 {
	return s.Sample() + clock.Pure()
}
