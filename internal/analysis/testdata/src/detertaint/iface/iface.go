// Package iface routes taint through an interface method set: the call
// graph must consider every source implementation of Source.
package iface

import "detertaint/clock"

// Source yields one sample value.
type Source interface {
	Sample() int64
}

// Wally implements Source over the wall clock — tainted.
type Wally struct{}

// Sample reads the wall clock one package away.
func (Wally) Sample() int64 { return clock.Wall() }

// Fixed implements Source deterministically.
type Fixed struct{ V int64 }

// Sample returns the stored value.
func (f Fixed) Sample() int64 { return f.V }
