// Package clock is the fixture's determinism-taint source package.
package clock

import "time"

// Wall reads the wall clock: an unsuppressed taint source that must
// poison every artifact root reaching it.
func Wall() int64 {
	return time.Now().UnixNano()
}

// Quiet reads the wall clock behind an allow comment — suppressed for
// walltime, but still audited by detertaint's seam check when an
// artifact root can reach it.
func Quiet() int64 {
	return time.Now().UnixNano() //klebvet:allow walltime -- fixture seam // want `suppressed determinism source in clock\.Quiet is reachable from artifact root root\.Status`
}

// Lone holds a suppressed source no artifact root reaches; the seam
// audit must stay silent about it.
func Lone() int64 {
	return time.Now().UnixNano() //klebvet:allow walltime -- unreachable from any artifact root
}

// Pure is taint-free.
func Pure() int64 { return 42 }
