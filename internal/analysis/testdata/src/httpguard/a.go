// Package httpguard exercises the httpguard analyzer: HTTP handlers may
// serve only snapshots — live Sink/SharedSink access and wall-clock
// reads inside a handler are findings; the same code outside a handler
// is not httpguard's business (walltime covers the clock separately).
package httpguard

import (
	"net/http"
	"time"
)

// Sink and SharedSink stand in for the telemetry types; httpguard
// matches by exact type name so the fixture stays stdlib-only.
type Sink struct{ n int }

func (s *Sink) Emit() { s.n++ }

type SharedSink struct{ sink *Sink }

func (s *SharedSink) Ingest(o *Sink) {}

// Snapshot is the legal currency of a handler.
type Snapshot struct{ Events int }

type server struct {
	shared *SharedSink
	sink   *Sink
}

func (srv *server) snapshot() *Snapshot { return &Snapshot{} }

// badHandler touches live state and the wall clock from a handler.
func (srv *server) badHandler(w http.ResponseWriter, r *http.Request) {
	srv.sink.Emit()             // want `live telemetry state`
	srv.shared.Ingest(srv.sink) // want `live telemetry state`
	t0 := time.Now()            // want `time\.Now`
	_ = t0
}

// badLiteral: handler-shaped function literals are handlers too.
func register(mux *http.ServeMux, srv *server) {
	mux.HandleFunc("/bad", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Millisecond) // want `time\.Sleep`
		srv.shared.Ingest(nil)       // want `live telemetry state`
	})
}

// goodHandler serves a point-in-time snapshot: no findings.
func (srv *server) goodHandler(w http.ResponseWriter, r *http.Request) {
	snap := srv.snapshot()
	_ = snap.Events
}

// fold is not handler-shaped, so live-state access is legal here (the
// aggregation path owns the sink).
func (srv *server) fold() {
	srv.shared.Ingest(srv.sink)
}

// allowedHandler carries the per-line escape hatch.
func (srv *server) allowedHandler(w http.ResponseWriter, r *http.Request) {
	srv.sink.Emit() //klebvet:allow httpguard -- fixture: suppression must work
}
