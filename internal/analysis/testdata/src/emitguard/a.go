// Package emitguard exercises the emitguard analyzer: nilsafe-marked
// types must guard receiver field accesses, and func-valued hook fields
// must be nil-checked at call sites.
package emitguard

// Sink is nil-disabled: every method must tolerate a nil receiver.
//
//klebvet:nilsafe
type Sink struct {
	events int
}

// Good guards before touching fields.
func (s *Sink) Good(v int) {
	if s == nil {
		return
	}
	s.events += v
}

// GoodBranch emits inside a non-nil branch.
func (s *Sink) GoodBranch(v int) {
	if s != nil {
		s.events += v
	}
}

// Bad touches a field before any guard.
func (s *Sink) Bad(v int) {
	s.events += v // want `s\.events is accessed without a nil-receiver guard`
}

// BadValue cannot be called on a nil pointer at all.
func (s Sink) BadValue() int { // want `value receiver`
	return s.events
}

// AllowedUnguarded documents an invariant the checker cannot see.
func (s *Sink) AllowedUnguarded() int {
	return s.events //klebvet:allow emitguard -- only reachable via guarded wrappers
}

type engine struct {
	onDone func()
	tel    *Sink
}

// goodGuard calls the hook behind a nil check.
func (e *engine) goodGuard() {
	if e.onDone != nil {
		e.onDone()
	}
}

// goodEarlyReturn uses the early-return guard shape.
func (e *engine) goodEarlyReturn() {
	if e.onDone == nil {
		return
	}
	e.onDone()
}

// goodCopy copies the hook then checks the copy.
func (e *engine) goodCopy() {
	done := e.onDone
	if done != nil {
		done()
	}
}

// goodMethodCall needs no call-site guard: methods on the nilsafe sink
// are themselves nil-safe.
func (e *engine) goodMethodCall() {
	e.tel.Good(1)
}

// badDirect calls the hook unguarded.
func (e *engine) badDirect() {
	e.onDone() // want `call through func-valued field e\.onDone is not nil-guarded`
}

// badCopy copies then calls unguarded.
func (e *engine) badCopy() {
	done := e.onDone
	done() // want `call through done \(copied from a func-valued hook field\) is not nil-guarded`
}

// allowedDirect asserts the hook is always installed.
func (e *engine) allowedDirect() {
	e.onDone() //klebvet:allow emitguard -- installed unconditionally by the constructor
}
