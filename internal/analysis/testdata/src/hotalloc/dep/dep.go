// Package dep holds the callees hotpath fixtures reach across the
// package boundary.
package dep

// Node is a value fixtures allocate.
type Node struct{ V int }

// Sum is allocation-free: the proof must clear Fast through it.
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Grow allocates: it appends onto a fresh local slice with no scratch
// backing, so its caller's hotpath proof must fail here.
func Grow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `allocation on hot path hot\.Bad: append to out may grow the backing array \(in dep\.Grow\)`
	}
	return out
}
