// Package hot annotates the fixture's hot paths.
package hot

import "hotalloc/dep"

// Fast is proven allocation-free transitively through dep.Sum.
//
//klebvet:hotpath
func Fast(xs []int) int {
	return dep.Sum(xs)
}

// Bad reaches an allocating callee one package away; the finding lands
// on the allocation site inside dep.Grow.
//
//klebvet:hotpath
func Bad(xs []int) []int {
	return dep.Grow(xs)
}

// Mk allocates directly on the hot path.
//
//klebvet:hotpath
func Mk() *dep.Node {
	return &dep.Node{} // want `allocation on hot path hot\.Mk: &dep\.Node\{\} literal escapes to the heap`
}

// runner carries a stored func value the hot path dispatches through.
type runner struct {
	fn func(int) int
}

// newRunner stores boxy as a func value; the call graph must remember
// it as a candidate callee for every func(int) int dispatch.
func newRunner() *runner {
	return &runner{fn: boxy}
}

// boxy allocates by boxing its argument into an interface.
func boxy(v int) int {
	var sink interface{} = v
	_ = sink
	return v
}

// Dyn calls through the stored func value: the dispatch may reach the
// allocating boxy, so the callsite itself is the finding.
//
//klebvet:hotpath
func (r *runner) Dyn(v int) int {
	return r.fn(v) // want `dynamic call on hot path hot\.\(\*runner\)\.Dyn \(call through func value\) may reach allocating hot\.boxy`
}
