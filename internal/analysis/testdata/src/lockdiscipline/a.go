// Package lockdiscipline exercises the lockdiscipline analyzer:
// `guarded by <mutex>` annotations on struct fields and package vars.
package lockdiscipline

import "sync"

type registry struct {
	mu sync.Mutex
	// count of registered items.
	// guarded by mu
	count int
}

// Good locks around the access.
func (r *registry) Good() {
	r.mu.Lock()
	r.count++
	r.mu.Unlock()
}

// GoodDefer holds the lock until return.
func (r *registry) GoodDefer() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Bad accesses the field without the lock.
func (r *registry) Bad() int {
	return r.count // want `accessed without holding r\.mu`
}

// BadAfterUnlock touches the field after releasing.
func (r *registry) BadAfterUnlock() int {
	r.mu.Lock()
	r.mu.Unlock()
	return r.count // want `accessed without holding r\.mu`
}

// bumpLocked is called with the lock held by its callers; the …Locked
// suffix is the convention that says so.
func (r *registry) bumpLocked() {
	r.count++
}

// stateMu serializes access to the package-level state below.
var stateMu sync.Mutex

// state is the shared instance.
// guarded by stateMu
var state int

func setState(v int) {
	stateMu.Lock()
	state = v
	stateMu.Unlock()
}

func badState() int {
	return state // want `accessed without holding stateMu`
}

func allowedState() int {
	return state //klebvet:allow lockdiscipline -- read at init before goroutines start
}
