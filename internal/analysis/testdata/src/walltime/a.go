// Package walltime exercises the walltime analyzer: wall-clock reads
// are findings, virtual-time arithmetic and allowlisted benchmark
// timing are not.
package walltime

import "time"

func bad() {
	t0 := time.Now()                  // want `time\.Now`
	_ = time.Since(t0)                // want `time\.Since`
	time.Sleep(time.Millisecond)      // want `time\.Sleep`
	<-time.After(time.Second)         // want `time\.After`
	tk := time.NewTicker(time.Second) // want `time\.NewTicker`
	_ = tk
	var tm *time.Timer // want `time\.Timer`
	_ = tm
}

// good performs pure duration arithmetic — deterministic and legal.
func good() time.Duration {
	return 3 * time.Microsecond
}

// allowed carries the escape hatch for real harness timing.
func allowed() time.Time {
	return time.Now() //klebvet:allow walltime -- harness timing, not simulation
}

// allowedAbove uses the standalone-comment form.
func allowedAbove() time.Time {
	//klebvet:allow walltime -- harness timing, not simulation
	return time.Now()
}

// allowedSpan exercises the statement-span form: the trailing allow on
// the closing line of a multi-line call chain covers the banned
// selectors on its earlier lines.
func allowedSpan() time.Duration {
	d := time.Since(
		time.
			Now(),
	) //klebvet:allow walltime -- harness timing; the allow spans the whole chain
	return d
}

// deniedSpan is the unsuppressed twin of allowedSpan.
func deniedSpan() time.Duration {
	d := time.Since( // want `time\.Since`
		time. // want `time\.Now`
			Now(),
	)
	return d
}
