package analysis

import (
	"go/ast"
	"go/types"
)

// DroppedErr flags the bug class PR 5 fixed in the K-LEB controller: a call
// whose result set includes an error, used as a bare statement so the error
// vanishes. In a simulator whose failure paths are themselves deterministic
// artifacts (fault injection, degraded-run accounting), a silently dropped
// error turns an injected fault into missing data with no trace. Writers
// that cannot fail by contract (fmt formatting, bytes.Buffer,
// strings.Builder) are exempt; everything else must handle the error or
// discard it explicitly with `_ =`.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc: "flag expression statements that call a function returning an " +
		"error and drop it on the floor; handle the error or assign it to _ " +
		"(fmt and bytes.Buffer/strings.Builder writers are exempt — they " +
		"cannot fail by contract)",
	Run: runDroppedErr,
}

func runDroppedErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !callReturnsError(pass, call) || droppedErrExempt(pass, call) {
				return true
			}
			pass.Reportf(stmt.Pos(),
				"%s returns an error that is silently discarded; handle it or assign it to _",
				droppedErrCallName(call))
			return true
		})
	}
	return nil
}

// callReturnsError reports whether the call's result set includes error.
func callReturnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// droppedErrExempt accepts callees that cannot meaningfully fail: anything
// in package fmt (Fprintf to an in-memory buffer is the repo's renderer
// idiom) and methods on bytes.Buffer / strings.Builder, whose Write methods
// are documented to always return a nil error.
func droppedErrExempt(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pn := pkgNameOf(pass.TypesInfo, sel.X); pn != nil {
		return pn.Imported().Path() == "fmt"
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// droppedErrCallName renders the callee for the diagnostic.
func droppedErrCallName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if k := exprKey(f); k != "" {
			return k
		}
		return f.Sel.Name
	}
	return "call"
}
