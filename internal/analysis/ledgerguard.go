package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LedgerGuard enforces the period-conservation ledger's write
// discipline. A struct type declares its conservation equation in a doc
// directive:
//
//	//klebvet:ledger fires = captured + dropped + lostFault
//	type Module struct { ... }
//
// Two rules follow. Ledger fields may only be written inside the
// package that owns the struct — every other package must go through an
// audited method (CounterPoint's every-writer-audited discipline). And
// inside the owning package, any increment of the total field must sit
// on a path that also writes one of the balancing fields — an audited
// method that bumps fires without ever touching captured/dropped/lost
// has broken conservation before any runtime test can notice.
var LedgerGuard = &Analyzer{
	Name: "ledgerguard",
	Doc: "enforce //klebvet:ledger conservation-field write discipline: " +
		"ledger fields are written only in the struct's owning package, " +
		"and every in-package increment of the total field transitively " +
		"reaches a write to one of the balancing fields",
	RunProgram: runLedgerGuard,
}

// ledgerSpec is one parsed //klebvet:ledger directive.
type ledgerSpec struct {
	owner    *SourcePackage
	typeName string // "kleb.Module", for diagnostics
	named    *types.Named
	total    *types.Var
	balance  []*types.Var
}

func (s *ledgerSpec) balanceNames() string {
	names := make([]string, len(s.balance))
	for i, v := range s.balance {
		names[i] = v.Name()
	}
	return strings.Join(names, "/")
}

// ledgerRole locates one struct field inside its spec.
type ledgerRole struct {
	spec  *ledgerSpec
	total bool
}

// ledgerWrite is one write to a ledger field.
type ledgerWrite struct {
	pos   token.Pos
	field *types.Var
	role  ledgerRole
	in    *FuncNode      // enclosing function (nil at package scope)
	pkg   *SourcePackage // package the write appears in
	inc   bool           // ++ / += : an increment needing balance
}

func runLedgerGuard(pass *ProgramPass) error {
	prog := pass.Prog
	specs, roles := collectLedgerSpecs(pass)
	if len(specs) == 0 {
		return nil
	}

	writes := collectLedgerWrites(prog, roles)

	// Per-function write sets back the balance reachability search.
	written := make(map[*FuncNode]map[*types.Var]bool)
	for _, w := range writes {
		if w.in == nil {
			continue
		}
		set := written[w.in]
		if set == nil {
			set = make(map[*types.Var]bool)
			written[w.in] = set
		}
		set[w.field] = true
	}

	for _, w := range writes {
		spec := w.role.spec
		if w.pkg != spec.owner {
			pass.Reportf(w.pos, "ledger field %s.%s written outside its owning package %s; use an audited method of %s",
				spec.typeName, w.field.Name(), spec.owner.ImportPath, spec.typeName)
			continue
		}
		if !w.role.total || !w.inc || w.in == nil {
			continue
		}
		if !reachesBalanceWrite(w.in, spec, written) {
			pass.Reportf(w.pos, "increment of ledger total %s.%s never reaches a balancing write (%s); the conservation equation cannot hold",
				spec.typeName, w.field.Name(), spec.balanceNames())
		}
	}
	return nil
}

// collectLedgerSpecs parses every //klebvet:ledger directive, reporting
// malformed equations and unknown fields at the type declaration.
func collectLedgerSpecs(pass *ProgramPass) ([]*ledgerSpec, map[*types.Var]ledgerRole) {
	prog := pass.Prog
	var specs []*ledgerSpec
	roles := make(map[*types.Var]ledgerRole)
	for _, sp := range prog.Packages {
		for _, f := range sp.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, s := range gd.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok {
						continue
					}
					eq, ok := directiveArg(gd.Doc, ledgerDirective)
					if !ok {
						eq, ok = directiveArg(ts.Doc, ledgerDirective)
					}
					if !ok {
						continue
					}
					spec := parseLedgerSpec(pass, sp, ts, eq, roles)
					if spec != nil {
						specs = append(specs, spec)
					}
				}
			}
		}
	}
	return specs, roles
}

// parseLedgerSpec resolves one "total = b1 + b2 [+ ...]" equation
// against the struct's fields.
func parseLedgerSpec(pass *ProgramPass, sp *SourcePackage, ts *ast.TypeSpec, eq string, roles map[*types.Var]ledgerRole) *ledgerSpec {
	tn, _ := sp.Info.Defs[ts.Name].(*types.TypeName)
	if tn == nil {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		pass.Reportf(ts.Pos(), "//klebvet:ledger directive on non-struct type %s", ts.Name.Name)
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		pass.Reportf(ts.Pos(), "//klebvet:ledger directive on non-struct type %s", ts.Name.Name)
		return nil
	}
	sides := strings.SplitN(eq, "=", 2)
	if len(sides) != 2 {
		pass.Reportf(ts.Pos(), "malformed //klebvet:ledger equation %q (want \"total = a + b\")", eq)
		return nil
	}
	fieldByName := make(map[string]*types.Var, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fieldByName[st.Field(i).Name()] = st.Field(i)
	}
	lookup := func(name string) *types.Var {
		v := fieldByName[name]
		if v == nil {
			pass.Reportf(ts.Pos(), "//klebvet:ledger equation names unknown field %q of %s", name, ts.Name.Name)
		}
		return v
	}
	spec := &ledgerSpec{
		owner:    sp,
		typeName: sp.Pkg.Name() + "." + ts.Name.Name,
		named:    named,
	}
	if spec.total = lookup(strings.TrimSpace(sides[0])); spec.total == nil {
		return nil
	}
	for _, term := range strings.Split(sides[1], "+") {
		v := lookup(strings.TrimSpace(term))
		if v == nil {
			return nil
		}
		spec.balance = append(spec.balance, v)
	}
	if len(spec.balance) == 0 {
		pass.Reportf(ts.Pos(), "malformed //klebvet:ledger equation %q (no balancing fields)", eq)
		return nil
	}
	roles[spec.total] = ledgerRole{spec: spec, total: true}
	for _, v := range spec.balance {
		roles[v] = ledgerRole{spec: spec}
	}
	return spec
}

// directiveArg returns the text after a //klebvet: directive line in a
// doc comment group.
func directiveArg(doc *ast.CommentGroup, directive string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if strings.HasPrefix(text, directive+" ") {
			return strings.TrimSpace(strings.TrimPrefix(text, directive+" ")), true
		}
	}
	return "", false
}

// collectLedgerWrites walks every function body for assignments,
// increments and composite literals targeting ledger fields.
func collectLedgerWrites(prog *Program, roles map[*types.Var]ledgerRole) []ledgerWrite {
	var writes []ledgerWrite
	record := func(n *FuncNode, sp *SourcePackage, pos token.Pos, v *types.Var, inc bool) {
		role, ok := roles[v]
		if !ok {
			return
		}
		writes = append(writes, ledgerWrite{pos: pos, field: v, role: role, in: n, pkg: sp, inc: inc})
	}
	for _, n := range prog.Nodes {
		body := n.body()
		if body == nil {
			continue
		}
		sp := n.Pkg
		info := sp.Info
		node := n
		ast.Inspect(body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				// Literal bodies are their own nodes; attribute their
				// writes there.
				return false
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if v := fieldVarOf(info, lhs); v != nil {
						record(node, sp, lhs.Pos(), v, x.Tok == token.ADD_ASSIGN)
					}
				}
			case *ast.IncDecStmt:
				if v := fieldVarOf(info, x.X); v != nil {
					record(node, sp, x.X.Pos(), v, x.Tok == token.INC)
				}
			case *ast.CompositeLit:
				t := info.TypeOf(x)
				if t == nil {
					return true
				}
				st, ok := t.Underlying().(*types.Struct)
				if !ok {
					return true
				}
				for i, elt := range x.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						if v, ok := info.Uses[key].(*types.Var); ok {
							record(node, sp, kv.Pos(), v, false)
						}
						continue
					}
					if i < st.NumFields() {
						record(node, sp, elt.Pos(), st.Field(i), false)
					}
				}
			}
			return true
		})
	}
	return writes
}

// fieldVarOf resolves a selector expression to the struct field it
// names, or nil.
func fieldVarOf(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		v, _ := s.Obj().(*types.Var)
		return v
	}
	return nil
}

// reachesBalanceWrite reports whether start, or any function it can
// (transitively) call, writes one of spec's balancing fields.
func reachesBalanceWrite(start *FuncNode, spec *ledgerSpec, written map[*FuncNode]map[*types.Var]bool) bool {
	seen := map[*FuncNode]bool{start: true}
	queue := []*FuncNode{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if set := written[n]; set != nil {
			for _, v := range spec.balance {
				if set[v] {
					return true
				}
			}
		}
		for _, cs := range n.Calls {
			for _, callee := range cs.Callees {
				if !seen[callee] {
					seen[callee] = true
					queue = append(queue, callee)
				}
			}
		}
	}
	return false
}
