package analysis

import "go/token"

// DeterTaint is the whole-program determinism-taint analyzer: any
// function reachable from a //klebvet:artifact root must be transitively
// free of wall-clock reads, unseeded math/rand and unsorted map
// iteration — the cross-package closure of what walltime, seededrand and
// maporder each check one package at a time. Suppressed sources inside
// the artifact call tree are audited too: only the sanctioned
// fleet.wallNs self-telemetry seam may carry one.
var DeterTaint = &Analyzer{
	Name: "detertaint",
	Doc: "report determinism taint (wall clock, unseeded rand, map order) " +
		"reaching a //klebvet:artifact root through any chain of calls, " +
		"including interface dispatch and stored func values; the only " +
		"allowlisted source inside an artifact call tree is the " +
		"fleet.wallNs self-telemetry seam",
	RunProgram: runDeterTaint,
}

// taintSeams are the canonical names of the functions sanctioned to hold
// a suppressed determinism source while reachable from an artifact root.
// The fleet self-telemetry clock is deliberately the only entry: its
// values feed gauges that describe the daemon itself, never a
// deterministic artifact, and every new seam must be argued into this
// list rather than quietly allowlisted at the call site.
var taintSeams = map[string]bool{
	"kleb/internal/fleet.wallNs": true,
}

func runDeterTaint(pass *ProgramPass) error {
	prog := pass.Prog

	var roots []*FuncNode
	for _, n := range prog.Nodes {
		if !n.Artifact {
			continue
		}
		roots = append(roots, n)
		if n.Tainted() != nil {
			pass.Reportf(n.pos(), "artifact root %s is determinism-tainted: %s",
				n.Short, prog.Chain(n, "taint"))
		}
	}

	// Seam audit: flood reachability from every artifact root and check
	// each suppressed determinism source the flood reaches against the
	// seam allowlist — an //klebvet:allow walltime deep inside an
	// artifact call tree is exactly the hole this analyzer closes.
	reached := make(map[*FuncNode]*FuncNode) // function → first root reaching it
	for _, root := range roots {
		if _, ok := reached[root]; !ok {
			reached[root] = root
		}
		queue := []*FuncNode{root}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, cs := range n.Calls {
				for _, callee := range cs.Callees {
					if _, ok := reached[callee]; ok {
						continue
					}
					reached[callee] = root
					queue = append(queue, callee)
				}
			}
		}
	}
	reported := make(map[token.Pos]bool)
	for _, n := range prog.Nodes {
		root := reached[n]
		if root == nil || len(n.SuppTaint) == 0 || taintSeams[n.Name] {
			continue
		}
		for _, f := range n.SuppTaint {
			if reported[f.Pos] {
				continue
			}
			reported[f.Pos] = true
			pass.Reportf(f.Pos, "suppressed determinism source in %s is reachable from artifact root %s: %s (only the fleet.wallNs seam may carry one)",
				n.Short, root.Short, f.Desc)
		}
	}
	return nil
}
