// Package analysistest runs klebvet analyzers over golden-file packages
// under testdata/src and matches their diagnostics against expectations
// written in the sources, mirroring the conventions of
// golang.org/x/tools/go/analysis/analysistest:
//
//	m[k] = append(m[k], v) // nothing expected on this line
//	out = append(out, v)   // want `append to out inside range over map`
//
// Each `// want` comment carries one or more quoted regular expressions
// that must match, in order, the diagnostics reported on that line.
// Testdata packages import only the standard library; dependency types
// come from compiler export data (load.StdImporter), so the harness
// works offline.
//
// Two entry points share the machinery: Run drives one per-package
// analyzer over flat testdata packages, and RunTree loads a whole
// multi-package tree (each subdirectory one package, importable by its
// tree-relative path), builds an analysis.Program over it in dependency
// order and drives whole-program analyzers — optionally pinning the
// program's propagated facts against a facts.golden file at the tree
// root (regenerate with KLEBVET_UPDATE_FACTS=1).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"kleb/internal/analysis"
	"kleb/internal/analysis/load"
)

// Run applies a to each package directory under testdata/src and reports
// mismatches between diagnostics and // want expectations on t.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		runPackage(t, a, filepath.Join(root, pkg), pkg)
	}
}

func runPackage(t *testing.T, a *analysis.Analyzer, dir, pkg string) {
	t.Helper()
	files, err := goFilesIn(dir)
	if err != nil {
		t.Fatalf("%s: %v", pkg, err)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files in %s", pkg, dir)
	}
	fset := token.NewFileSet()
	loaded, err := load.Check(fset, pkg, dir, files, load.NewStdImporter(fset))
	if err != nil {
		t.Fatalf("%s: %v", pkg, err)
	}
	diags, err := analysis.Run(a, loaded.Fset, loaded.Files, loaded.Types, loaded.Info)
	if err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkg, a.Name, err)
	}
	wants := collectWants(t, fset, loaded.Files)
	compareDiags(t, fset, wants, diags)
}

// RunTree loads testdata/src/<tree> as one multi-package program — every
// subdirectory holding Go files is a package whose import path is its
// tree-relative path prefixed with the tree name — builds the
// analysis.Program and applies each analyzer (whole-program analyzers to
// the Program, per-package analyzers to every package). Diagnostics
// from all analyzers are matched against the // want expectations of
// every file in the tree. When <tree>/facts.golden exists, the
// program's sorted fact export must match it byte-for-byte; run with
// KLEBVET_UPDATE_FACTS=1 to (re)generate it.
func RunTree(t *testing.T, analyzers []*analysis.Analyzer, tree string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", tree))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkgs, err := loadTree(fset, root, tree)
	if err != nil {
		t.Fatal(err)
	}
	var srcs []*analysis.SourcePackage
	var allFiles []*ast.File
	for _, p := range pkgs {
		srcs = append(srcs, &analysis.SourcePackage{
			ImportPath: p.ImportPath,
			Files:      p.Files,
			Pkg:        p.Types,
			Info:       p.Info,
		})
		allFiles = append(allFiles, p.Files...)
	}
	prog, err := analysis.BuildProgram(fset, srcs)
	if err != nil {
		t.Fatal(err)
	}
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		if a.RunProgram != nil {
			ds, err := analysis.RunProgram(a, prog)
			if err != nil {
				t.Fatalf("%s: analyzer %s: %v", tree, a.Name, err)
			}
			diags = append(diags, ds...)
			continue
		}
		for _, p := range pkgs {
			ds, err := analysis.Run(a, fset, p.Files, p.Types, p.Info)
			if err != nil {
				t.Fatalf("%s: analyzer %s: %v", p.ImportPath, a.Name, err)
			}
			diags = append(diags, ds...)
		}
	}
	wants := collectWants(t, fset, allFiles)
	compareDiags(t, fset, wants, diags)
	checkFactsGolden(t, root, prog)
}

// loadTree parses and type-checks every package under root in dependency
// order, resolving in-tree imports to the already-checked packages and
// everything else through the standard importer.
func loadTree(fset *token.FileSet, root, tree string) ([]*load.Package, error) {
	type rawPkg struct {
		path, dir string
		files     []string
		imports   []string
	}
	var raw []*rawPkg
	err := filepath.WalkDir(root, func(dir string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		files, err := goFilesIn(dir)
		if err != nil || len(files) == 0 {
			return err
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		path := tree
		if rel != "." {
			path = tree + "/" + filepath.ToSlash(rel)
		}
		p := &rawPkg{path: path, dir: dir, files: files}
		for _, name := range files {
			f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				if ipath, err := strconv.Unquote(imp.Path.Value); err == nil {
					p.imports = append(p.imports, ipath)
				}
			}
		}
		raw = append(raw, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("no Go packages under %s", root)
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i].path < raw[j].path })

	// Topologically order in-tree dependencies, then check each package
	// against the chain of already-checked ones.
	byPath := make(map[string]*rawPkg, len(raw))
	for _, p := range raw {
		byPath[p.path] = p
	}
	local := make(map[string]*types.Package)
	imp := treeImporter{local: local, next: load.NewStdImporter(fset)}
	var out []*load.Package
	state := make(map[*rawPkg]int)
	var visit func(p *rawPkg) error
	visit = func(p *rawPkg) error {
		switch state[p] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("import cycle through %s", p.path)
		}
		state[p] = 1
		for _, ipath := range p.imports {
			if dep, ok := byPath[ipath]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		pkg, err := load.Check(fset, p.path, p.dir, p.files, imp)
		if err != nil {
			return err
		}
		local[p.path] = pkg.Types
		out = append(out, pkg)
		state[p] = 2
		return nil
	}
	for _, p := range raw {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// treeImporter resolves in-tree import paths to already-checked
// packages, everything else through the standard importer.
type treeImporter struct {
	local map[string]*types.Package
	next  types.Importer
}

func (ti treeImporter) Import(path string) (*types.Package, error) {
	if p, ok := ti.local[path]; ok {
		return p, nil
	}
	return ti.next.Import(path)
}

// checkFactsGolden pins prog.Facts() against <root>/facts.golden when
// present (always when regenerating).
func checkFactsGolden(t *testing.T, root string, prog *analysis.Program) {
	t.Helper()
	golden := filepath.Join(root, "facts.golden")
	text := strings.Join(prog.Facts(), "\n") + "\n"
	if os.Getenv("KLEBVET_UPDATE_FACTS") != "" {
		if err := os.WriteFile(golden, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if os.IsNotExist(err) {
		return // tree without a fact pin
	}
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != text {
		t.Errorf("%s: fact export drifted from golden (KLEBVET_UPDATE_FACTS=1 to regenerate)\ngot:\n%swant:\n%s", golden, text, want)
	}
}

func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	return files, nil
}

// lineKey addresses one source line across the loaded file set.
type lineKey struct {
	file string
	line int
}

// compareDiags matches diagnostics against want expectations, reporting
// unmatched wants and unexpected diagnostics on t.
func compareDiags(t *testing.T, fset *token.FileSet, wants map[lineKey][]*regexp.Regexp, diags []analysis.Diagnostic) {
	t.Helper()
	got := make(map[lineKey][]string)
	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := lineKey{p.Filename, p.Line}
		got[k] = append(got[k], d.Message)
	}
	for k, rxs := range wants {
		msgs := got[k]
		for _, rx := range rxs {
			matched := -1
			for i, m := range msgs {
				if rx.MatchString(m) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %v)", k.file, k.line, rx, msgs)
				continue
			}
			msgs = append(msgs[:matched], msgs[matched+1:]...)
		}
		if len(msgs) > 0 {
			t.Errorf("%s:%d: unexpected diagnostics %v", k.file, k.line, msgs)
		}
		delete(got, k)
	}
	for k, msgs := range got {
		t.Errorf("%s:%d: unexpected diagnostics %v", k.file, k.line, msgs)
	}
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants extracts the // want expectations per (file, line).
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[lineKey][]*regexp.Regexp {
	t.Helper()
	out := make(map[lineKey][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Pos())
				rxs, err := parseWantPatterns(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", p.Filename, p.Line, err)
				}
				k := lineKey{p.Filename, p.Line}
				out[k] = append(out[k], rxs...)
			}
		}
	}
	return out
}

// parseWantPatterns parses a sequence of Go-quoted (or backquoted)
// regular expressions.
func parseWantPatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted regexp, found %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		raw := s[:end+2]
		text, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %v", raw, err)
		}
		rx, err := regexp.Compile(text)
		if err != nil {
			return nil, fmt.Errorf("compiling %s: %v", raw, err)
		}
		out = append(out, rx)
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}
