// Package analysistest runs one klebvet analyzer over golden-file
// packages under testdata/src and matches its diagnostics against
// expectations written in the sources, mirroring the conventions of
// golang.org/x/tools/go/analysis/analysistest:
//
//	m[k] = append(m[k], v) // nothing expected on this line
//	out = append(out, v)   // want `append to out inside range over map`
//
// Each `// want` comment carries one or more quoted regular expressions
// that must match, in order, the diagnostics reported on that line.
// Testdata packages import only the standard library; dependency types
// come from compiler export data (load.StdImporter), so the harness
// works offline.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"kleb/internal/analysis"
	"kleb/internal/analysis/load"
)

// Run applies a to each package directory under testdata/src and reports
// mismatches between diagnostics and // want expectations on t.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		runPackage(t, a, filepath.Join(root, pkg), pkg)
	}
}

func runPackage(t *testing.T, a *analysis.Analyzer, dir, pkg string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", pkg, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("%s: no Go files in %s", pkg, dir)
	}
	fset := token.NewFileSet()
	loaded, err := load.Check(fset, pkg, dir, files, load.NewStdImporter(fset))
	if err != nil {
		t.Fatalf("%s: %v", pkg, err)
	}
	diags, err := analysis.Run(a, loaded.Fset, loaded.Files, loaded.Types, loaded.Info)
	if err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkg, a.Name, err)
	}
	wants := collectWants(t, loaded)

	type lineKey struct {
		file string
		line int
	}
	got := make(map[lineKey][]string)
	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := lineKey{p.Filename, p.Line}
		got[k] = append(got[k], d.Message)
	}
	for k, rxs := range wants {
		msgs := got[k]
		for _, rx := range rxs {
			matched := -1
			for i, m := range msgs {
				if rx.MatchString(m) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %v)", k.file, k.line, rx, msgs)
				continue
			}
			msgs = append(msgs[:matched], msgs[matched+1:]...)
		}
		if len(msgs) > 0 {
			t.Errorf("%s:%d: unexpected diagnostics %v", k.file, k.line, msgs)
		}
		delete(got, k)
	}
	for k, msgs := range got {
		t.Errorf("%s:%d: unexpected diagnostics %v", k.file, k.line, msgs)
	}
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants extracts the // want expectations per (file, line).
func collectWants(t *testing.T, pkg *load.Package) map[struct {
	file string
	line int
}][]*regexp.Regexp {
	t.Helper()
	type lineKey = struct {
		file string
		line int
	}
	out := make(map[lineKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				rxs, err := parseWantPatterns(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", p.Filename, p.Line, err)
				}
				k := lineKey{p.Filename, p.Line}
				out[k] = append(out[k], rxs...)
			}
		}
	}
	return out
}

// parseWantPatterns parses a sequence of Go-quoted (or backquoted)
// regular expressions.
func parseWantPatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("expected quoted regexp, found %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		raw := s[:end+2]
		text, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %v", raw, err)
		}
		rx, err := regexp.Compile(text)
		if err != nil {
			return nil, fmt.Errorf("compiling %s: %v", raw, err)
		}
		out = append(out, rx)
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}
