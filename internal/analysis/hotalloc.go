package analysis

import "go/token"

// HotAlloc is the whole-program zero-alloc prover: every function
// annotated //klebvet:hotpath must be statically allocation-free through
// its entire call tree — no escaping composite literals, no growing
// appends onto non-scratch slices, no interface boxing, no fmt or string
// concatenation, no closures — turning the runtime alloc-count gates
// (TestSteadyRunCurrentNoAlloc, TestCaptureSampleNoAlloc) into lint-time
// proofs that cover every hotpath caller, not just the benchmarked
// entry points. Audited cold branches inside hot functions are
// sanctioned with //klebvet:allow hotalloc at the allocation site.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "prove //klebvet:hotpath functions allocation-free transitively: " +
		"report every allocation site (composite literal escapes, growing " +
		"appends, interface boxing, string building, closures, calls into " +
		"sourceless code assumed to allocate) reachable from a hotpath " +
		"root, and every dynamic call that may reach an allocating callee",
	RunProgram: runHotAlloc,
}

func runHotAlloc(pass *ProgramPass) error {
	prog := pass.Prog
	reportedFact := make(map[token.Pos]bool)
	reportedSite := make(map[token.Pos]bool)
	for _, root := range prog.Nodes {
		if !root.Hotpath || root.Allocates() == nil {
			continue
		}
		seen := make(map[*FuncNode]bool)
		var visit func(n *FuncNode)
		visit = func(n *FuncNode) {
			if seen[n] {
				return
			}
			seen[n] = true
			for _, f := range n.AllocSrc {
				if reportedFact[f.Pos] {
					continue
				}
				reportedFact[f.Pos] = true
				if n == root {
					pass.Reportf(f.Pos, "allocation on hot path %s: %s", root.Short, f.Desc)
				} else {
					pass.Reportf(f.Pos, "allocation on hot path %s: %s (in %s)", root.Short, f.Desc, n.Short)
				}
			}
			for _, cs := range n.Calls {
				if cs.Dynamic {
					// A dynamic dispatch is proven cold only when every
					// candidate callee is allocation-free; otherwise the
					// callsite itself is the finding (and the place an
					// audited allow belongs).
					for _, callee := range cs.Callees {
						if callee.Allocates() == nil {
							continue
						}
						if !reportedSite[cs.Pos] {
							reportedSite[cs.Pos] = true
							pass.Reportf(cs.Pos, "dynamic call on hot path %s (%s) may reach allocating %s: %s",
								root.Short, cs.Desc, callee.Short, prog.Chain(callee, "alloc"))
						}
						break
					}
					continue
				}
				for _, callee := range cs.Callees {
					if callee.Allocates() != nil {
						visit(callee)
					}
				}
			}
		}
		visit(root)
	}
	return nil
}
