package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags the exact bug class fixed twice in PR 2 (the kernel's
// fireDue and doExit wake loops): iterating a Go map while feeding an
// order-sensitive sink. Map iteration order is deliberately randomized
// by the runtime, so a range over a map whose body appends to a slice,
// writes to an output/telemetry sink, or sends on a channel produces a
// different artifact on every run — unless the collected slice is sorted
// before use. Order-insensitive bodies (counting, min/max selection,
// merging into another map) are not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops that feed order-sensitive sinks " +
		"(slice appends not sorted afterwards, io/fmt writes, telemetry " +
		"emits, channel sends); map order is randomized and breaks " +
		"deterministic artifacts",
	Run: runMapOrder,
}

// sortFuncs are the package-level functions accepted as establishing a
// deterministic order for a slice collected from a map range.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Strings": true, "Ints": true,
		"Float64s": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// writeMethods are method names treated as writing to an ordered sink
// (io.Writer and friends, string/byte builders, printf-style loggers).
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Printf": true, "Print": true, "Println": true,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			_, funcBody := enclosingFunc(stack)
			checkMapRange(pass, rng, funcBody)
			return true
		})
	}
	return nil
}

// checkMapRange inspects one range-over-map body for ordered sinks.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, funcBody *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside range over map delivers values in randomized order; iterate sorted keys instead")
		case *ast.AssignStmt:
			checkAppend(pass, rng, funcBody, n)
		case *ast.CallExpr:
			checkSinkCall(pass, n)
		}
		return true
	})
}

// checkAppend flags `dst = append(dst, ...)` inside a map range when dst
// lives outside the loop and is never sorted between the loop and the
// end of the enclosing function — the fireDue/doExit bug shape.
func checkAppend(pass *Pass, rng *ast.RangeStmt, funcBody *ast.BlockStmt, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return
	}
	if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
		return
	}
	target := as.Lhs[0]
	key := exprKey(target)
	if key == "" {
		return // index expressions etc.: per-key writes are order-independent
	}
	switch t := target.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(t)
		if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()) {
			return // loop-local scratch
		}
	case *ast.SelectorExpr:
		// Fields (k.runq, scheduler state) always outlive the loop.
	default:
		return
	}
	if sortedAfter(pass, funcBody, rng, key) {
		return
	}
	pass.Reportf(as.Pos(),
		"append to %s inside range over map accumulates in randomized order; sort %s before use (sort.Slice/sort.Strings) or iterate sorted keys",
		key, key)
}

// sortedAfter reports whether the enclosing function sorts `key` at some
// point after the range loop ends.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, key string) bool {
	if funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pn := pkgNameOf(pass.TypesInfo, sel.X)
		if pn == nil {
			return true
		}
		fns, tracked := sortFuncs[pn.Imported().Path()]
		if !tracked || !fns[sel.Sel.Name] {
			return true
		}
		arg := call.Args[0]
		if conv, ok := arg.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			arg = conv.Args[0] // sort.Sort(byPID(slice))
		}
		if exprKey(arg) == key {
			found = true
		}
		return true
	})
	return found
}

// checkSinkCall flags calls that push bytes or events to an ordered sink
// from inside the map range body.
func checkSinkCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// fmt.Fprintf / fmt.Print* — formatted output in map order.
	if pn := pkgNameOf(pass.TypesInfo, sel.X); pn != nil {
		if pn.Imported().Path() == "fmt" &&
			(strings.HasPrefix(sel.Sel.Name, "Fprint") || strings.HasPrefix(sel.Sel.Name, "Print")) {
			pass.Reportf(call.Pos(),
				"fmt.%s inside range over map writes output in randomized order; iterate sorted keys instead",
				sel.Sel.Name)
		}
		return
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	if writeMethods[sel.Sel.Name] {
		pass.Reportf(call.Pos(),
			"%s.%s inside range over map writes to a sink in randomized order; iterate sorted keys instead",
			exprKey(sel.X), sel.Sel.Name)
		return
	}
	if recvTypeName(s.Recv()) == "Sink" {
		pass.Reportf(call.Pos(),
			"telemetry emit %s.%s inside range over map records events in randomized order; iterate sorted keys instead",
			exprKey(sel.X), sel.Sel.Name)
	}
}

// recvTypeName returns the named type a method receiver resolves to,
// stripping one pointer level.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
