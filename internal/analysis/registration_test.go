package analysis

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestRegistrationAgreement pins the three places the analyzer roster is
// spelled out — All(), the README's analyzer table, and cmd/klebvet's
// package doc — to the same ten names, so adding an analyzer without
// documenting and registering it everywhere fails the build.
func TestRegistrationAgreement(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("All() returned %d analyzers, want 10", len(all))
	}

	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	maindoc, err := os.ReadFile("../../cmd/klebvet/main.go")
	if err != nil {
		t.Fatal(err)
	}
	// Only the package doc counts, not identifiers further down the file.
	docEnd := strings.Index(string(maindoc), "package main")
	if docEnd < 0 {
		t.Fatal("cmd/klebvet/main.go has no package clause")
	}
	doc := string(maindoc[:docEnd])

	// Scope the row count to the klebvet section: the README has other
	// tables (the klebd endpoint list) using the same markdown shape.
	section := string(readme)
	if i := strings.Index(section, "## Static analysis: klebvet"); i >= 0 {
		section = section[i:]
		if j := strings.Index(section[1:], "\n## "); j >= 0 {
			section = section[:j+1]
		}
	} else {
		t.Fatal("README has no \"Static analysis: klebvet\" section")
	}
	rows := 0
	for _, line := range strings.Split(section, "\n") {
		if strings.HasPrefix(line, "| `") && strings.Contains(line, "` |") {
			rows++
		}
	}
	if rows != len(all) {
		t.Errorf("README analyzer table has %d rows, want %d (one per analyzer)", rows, len(all))
	}

	for _, a := range all {
		if !strings.Contains(section, fmt.Sprintf("| `%s` |", a.Name)) {
			t.Errorf("analyzer %q missing from the README analyzer table", a.Name)
		}
		if !strings.Contains(doc, a.Name) {
			t.Errorf("analyzer %q missing from cmd/klebvet's package doc", a.Name)
		}
	}
}
