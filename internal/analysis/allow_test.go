package analysis

import "testing"

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//klebvet:allow walltime", []string{"walltime"}, true},
		{"//klebvet:allow walltime -- benchmark timing", []string{"walltime"}, true},
		{"//klebvet:allow walltime,maporder", []string{"walltime", "maporder"}, true},
		{"//klebvet:allow walltime maporder -- both", []string{"walltime", "maporder"}, true},
		{"//klebvet:allow", nil, false},
		{"//klebvet:allowance walltime", nil, false},
		{"// klebvet:allow walltime", nil, false},
		{"//klebvet:nilsafe", nil, false},
		{"// plain comment", nil, false},
	}
	for _, c := range cases {
		names, ok := parseAllow(c.text)
		if ok != c.ok {
			t.Errorf("parseAllow(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(names) != len(c.names) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, names, c.names)
			continue
		}
		for _, n := range c.names {
			if !names[n] {
				t.Errorf("parseAllow(%q) missing %q", c.text, n)
			}
		}
	}
}
