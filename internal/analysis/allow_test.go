package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//klebvet:allow walltime", []string{"walltime"}, true},
		{"//klebvet:allow walltime -- benchmark timing", []string{"walltime"}, true},
		{"//klebvet:allow walltime,maporder", []string{"walltime", "maporder"}, true},
		{"//klebvet:allow walltime maporder -- both", []string{"walltime", "maporder"}, true},
		{"//klebvet:allow", nil, false},
		{"//klebvet:allowance walltime", nil, false},
		{"// klebvet:allow walltime", nil, false},
		{"//klebvet:nilsafe", nil, false},
		{"// plain comment", nil, false},
	}
	for _, c := range cases {
		names, ok := parseAllow(c.text)
		if ok != c.ok {
			t.Errorf("parseAllow(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(names) != len(c.names) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, names, c.names)
			continue
		}
		for _, n := range c.names {
			if !names[n] {
				t.Errorf("parseAllow(%q) missing %q", c.text, n)
			}
		}
	}
}

// TestAllowStatementSpan pins the statement-span behaviour of allow
// comments: a trailing //klebvet:allow on the last line of a multi-line
// call chain suppresses findings on every line of that statement, while
// an identical chain without the allow stays unsuppressed — and the
// suppression never leaks past the statement's own lines.
func TestAllowStatementSpan(t *testing.T) {
	const src = `package p

import "time"

func suppressed() time.Duration {
	d := time.Since(
		time.
			Now(),
	) //klebvet:allow walltime -- covers the whole chain
	return d
}

func unsuppressed() time.Duration {
	d := time.Since(
		time.
			Now(),
	)
	return d
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "span.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ai := buildAllowIndex(fset, []*ast.File{f}, "walltime")
	// The allow trails line 9; the chain it closes spans lines 6-9.
	for line := 6; line <= 9; line++ {
		if !ai.suppresses(token.Position{Filename: "span.go", Line: line}) {
			t.Errorf("line %d of the allowed multi-line chain not suppressed", line)
		}
	}
	// The twin without an allow (lines 14-17) and the surrounding
	// returns must stay live.
	for _, line := range []int{5, 11, 14, 15, 16, 17, 18} {
		if ai.suppresses(token.Position{Filename: "span.go", Line: line}) {
			t.Errorf("line %d suppressed without an allow covering it", line)
		}
	}
}
