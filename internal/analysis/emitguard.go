package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// EmitGuard keeps the telemetry layer's ~1.9ns disabled path honest.
// Observability is threaded through the simulator as nil-able hooks: the
// *telemetry.Sink whose every method tolerates a nil receiver, and
// func-valued callback fields (PMU overflow observers, PMI delivery,
// completion callbacks). Two invariants are enforced:
//
//  1. Types marked //klebvet:nilsafe must actually be nil-safe: every
//     method that touches a receiver field must do so behind a
//     nil-receiver guard, and methods must use pointer receivers. This
//     is what lets call sites emit unconditionally (k.tel.CtxSwitch(…))
//     at the cost of one predicted branch.
//
//  2. Calls through func-valued struct fields (and locals copied from
//     them) must be nil-guarded at the call site — a disabled hook is a
//     nil field, and an unguarded call is a panic the first time
//     telemetry is off.
var EmitGuard = &Analyzer{
	Name: "emitguard",
	Doc: "telemetry emit hooks must be nil-guarded: //klebvet:nilsafe types " +
		"guard every receiver field access, and func-valued hook fields are " +
		"only called behind a nil check",
	Run: runEmitGuard,
}

// nilsafeMarker on a type declaration opts the type into invariant 1.
const nilsafeMarker = "//klebvet:nilsafe"

func runEmitGuard(pass *Pass) error {
	nilsafe := nilsafeTypes(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkNilsafeMethod(pass, nilsafe, fd)
			checkHookCalls(pass, fd)
		}
	}
	return nil
}

// nilsafeTypes collects the type names in this package whose
// declarations carry the //klebvet:nilsafe marker.
func nilsafeTypes(pass *Pass) map[string]bool {
	out := make(map[string]bool)
	mark := func(doc *ast.CommentGroup, name string) {
		if doc == nil {
			return
		}
		for _, c := range doc.List {
			if strings.HasPrefix(c.Text, nilsafeMarker) {
				out[name] = true
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				mark(gd.Doc, ts.Name.Name)
				mark(ts.Doc, ts.Name.Name)
				mark(ts.Comment, ts.Name.Name)
			}
		}
	}
	return out
}

// checkNilsafeMethod enforces invariant 1 on one method declaration.
func checkNilsafeMethod(pass *Pass, nilsafe map[string]bool, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return
	}
	recvField := fd.Recv.List[0]
	recvType := recvField.Type
	ptr, isPtr := recvType.(*ast.StarExpr)
	var typeName string
	if isPtr {
		typeName = baseTypeName(ptr.X)
	} else {
		typeName = baseTypeName(recvType)
	}
	if !nilsafe[typeName] {
		return
	}
	if !isPtr {
		pass.Reportf(fd.Pos(),
			"method %s of nilsafe type %s has a value receiver: a nil *%s call site would dereference before the guard; use a pointer receiver",
			fd.Name.Name, typeName, typeName)
		return
	}
	if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
		return // receiver unused: trivially nil-safe
	}
	recvName := recvField.Names[0].Name
	recvObj := pass.TypesInfo.Defs[recvField.Names[0]]
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recvObj {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		if !nilGuarded(sel, stack, recvName) {
			pass.Reportf(sel.Pos(),
				"%s.%s is accessed without a nil-receiver guard in method %s of nilsafe type %s; start with `if %s == nil { return }` (the disabled-path contract)",
				recvName, sel.Sel.Name, fd.Name.Name, typeName, recvName)
		}
		return true
	})
}

// baseTypeName unwraps a receiver type expression to its named type.
func baseTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return baseTypeName(e.X)
	case *ast.IndexListExpr:
		return baseTypeName(e.X)
	}
	return ""
}

// checkHookCalls enforces invariant 2 across one function body: every
// call through a func-valued struct field — directly (p.onPMI(...)) or
// via a local copy (done := w.onDone; done(...)) — is nil-guarded.
func checkHookCalls(pass *Pass, fd *ast.FuncDecl) {
	aliases := hookAliases(pass, fd.Body)
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if !isFuncField(pass, fun) {
				return true
			}
			key := exprKey(fun)
			if !nilGuarded(call, stack, key) {
				pass.Reportf(call.Pos(),
					"call through func-valued field %s is not nil-guarded: a disabled hook is nil; wrap in `if %s != nil`",
					key, key)
			}
		case *ast.Ident:
			obj, _ := pass.TypesInfo.Uses[fun].(*types.Var)
			if obj == nil || !aliases[obj] {
				return true
			}
			if !nilGuarded(call, stack, fun.Name) {
				pass.Reportf(call.Pos(),
					"call through %s (copied from a func-valued hook field) is not nil-guarded: wrap in `if %s != nil`",
					fun.Name, fun.Name)
			}
		}
		return true
	})
}

// hookAliases finds local variables assigned from func-valued struct
// fields within body (the `done := w.onDone` copy idiom).
func hookAliases(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr)
			if !ok || !isFuncField(pass, sel) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
					out[v] = true
				}
			}
		}
		return true
	})
	return out
}

// isFuncField reports whether sel selects a struct field of function
// type (a hook slot).
func isFuncField(pass *Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	_, isSig := s.Type().Underlying().(*types.Signature)
	return isSig
}
