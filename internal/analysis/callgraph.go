package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file builds the Program's conservative call graph and collects
// each function's intrinsic allocation facts in the same pass. Three
// call shapes produce edges:
//
//   - static calls — a resolved function or method object; one callee;
//   - interface method calls — every source type whose method set
//     satisfies the interface contributes its method;
//   - calls through func values — every function value that escapes
//     into a variable, field, argument or return (stored func) with an
//     identical signature is a candidate callee.
//
// Callees without source (standard library) are invisible to taint
// (they cannot read the repo's banned clocks on its behalf) but are
// assumed to allocate unless explicitly allowlisted — the conservative
// direction for each fact.

// gcSizes fixes the size model to gc/amd64 so boxing verdicts (and with
// them whole-program facts) are identical on every host.
var gcSizes = types.SizesFor("gc", "amd64")

// allocFreeFuncs are sourceless callees known not to allocate.
var allocFreeFuncs = map[string]bool{
	"container/heap.Init": true, "container/heap.Push": true,
	"container/heap.Pop": true, "container/heap.Remove": true,
	"container/heap.Fix": true,
	"sort.Search":        true, "sort.SearchInts": true,
	"(*sync.Mutex).Lock": true, "(*sync.Mutex).Unlock": true,
	"(*sync.RWMutex).RLock": true, "(*sync.RWMutex).RUnlock": true,
	"(*sync.RWMutex).Lock": true, "(*sync.RWMutex).Unlock": true,
	"(*sync.Once).Do":   true,
	"(*sync.Cond).Wait": true, "(*sync.Cond).Signal": true,
	"(*sync.Cond).Broadcast": true,
	"(*sync.WaitGroup).Add":  true, "(*sync.WaitGroup).Done": true,
	"(*sync.WaitGroup).Wait": true,
}

// allocFreePkgs are packages whose every member is allocation-free.
var allocFreePkgs = map[string]bool{
	"math": true, "math/bits": true, "sync/atomic": true, "unsafe": true,
}

// heapDispatch are the container/heap entry points that call back into
// the concrete heap.Interface argument; the resolver adds dispatch edges
// to that type's method set so heap-backed hot paths stay analyzable.
var heapDispatch = map[string]bool{
	"Init": true, "Push": true, "Pop": true, "Remove": true, "Fix": true,
}

var heapInterfaceMethods = []string{"Len", "Less", "Swap", "Push", "Pop"}

type resolver struct {
	prog *Program

	allowCache map[*SourcePackage]allowIndex

	ifaceCalls []deferredIface
	sigCalls   []deferredSig
}

type deferredIface struct {
	site   *CallSite
	method *types.Func
}

type deferredSig struct {
	site *CallSite
	key  string
}

// allowHot returns the cached hotalloc allow index for sp: allocation
// facts under a //klebvet:allow hotalloc span never become facts, which
// is how audited cold branches inside hot functions are sanctioned.
func (r *resolver) allowHot(sp *SourcePackage) allowIndex {
	if r.allowCache == nil {
		r.allowCache = make(map[*SourcePackage]allowIndex)
	}
	ai, ok := r.allowCache[sp]
	if !ok {
		ai = buildAllowIndex(r.prog.Fset, sp.Files, HotAlloc.Name)
		r.allowCache[sp] = ai
	}
	return ai
}

func (r *resolver) allocFact(n *FuncNode, pos token.Pos, desc string) {
	if r.allowHot(n.Pkg).suppresses(r.prog.Fset.Position(pos)) {
		return
	}
	n.AllocSrc = append(n.AllocSrc, Fact{Pos: pos, Desc: desc})
}

func (r *resolver) staticEdge(n *FuncNode, pos token.Pos, callee *FuncNode, desc string) {
	n.Calls = append(n.Calls, &CallSite{Pos: pos, Desc: desc, Callees: []*FuncNode{callee}})
}

func (r *resolver) dynamicSite(n *FuncNode, pos token.Pos, desc string) *CallSite {
	cs := &CallSite{Pos: pos, Desc: desc, Dynamic: true}
	n.Calls = append(n.Calls, cs)
	return cs
}

// scanBody walks one function body, resolving calls and collecting
// allocation intrinsics. Nested function literals are not descended
// into — each literal is its own FuncNode with its own scan — but
// creating one adds a static edge (the literal's code is reachable from
// its creator) and, when it escapes, registers it as a stored func.
func (r *resolver) scanBody(n *FuncNode) {
	info := n.Pkg.Info
	body := n.body()

	// Call-position expressions: their identifiers are calls, not
	// stored function values.
	callFuns := make(map[ast.Expr]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	walkStack(body, func(x ast.Node, stack []ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if x == n.Lit {
				return true // the root literal itself
			}
			lit := r.prog.byLit[x]
			if lit == nil {
				return false
			}
			r.staticEdge(n, x.Pos(), lit, "func literal")
			if !callFuns[ast.Expr(x)] {
				r.store(sigKey(info.TypeOf(x)), lit)
				r.allocFact(n, x.Pos(), "func literal allocates a closure")
			}
			return false // the literal's own scan covers its body
		case *ast.CallExpr:
			r.call(n, x)
		case *ast.Ident:
			r.identValue(n, x, stack, callFuns)
		case *ast.SelectorExpr:
			if !callFuns[ast.Expr(x)] {
				r.selectorValue(n, x)
			}
		case *ast.CompositeLit:
			r.compositeAlloc(n, x, stack)
		case *ast.AssignStmt:
			r.assignAlloc(n, x)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.TypeOf(x)) {
				r.allocFact(n, x.Pos(), "string concatenation allocates")
			}
		case *ast.GoStmt:
			r.allocFact(n, x.Pos(), "go statement allocates a goroutine")
		case *ast.ReturnStmt:
			r.returnAlloc(n, x)
		case *ast.ValueSpec:
			if x.Type != nil {
				dst := info.TypeOf(x.Type)
				for _, v := range x.Values {
					r.boxCheck(n, v.Pos(), dst, v)
				}
			}
		}
		return true
	})
}

// store registers a stored function value under its signature key.
func (r *resolver) store(key string, node *FuncNode) {
	if key == "" {
		return
	}
	for _, existing := range r.prog.stored[key] {
		if existing == node {
			return
		}
	}
	r.prog.stored[key] = append(r.prog.stored[key], node)
}

// identValue records a package-level function referenced as a value
// (telemetry hooks, Analyzer.Run fields, sort less functions).
func (r *resolver) identValue(n *FuncNode, id *ast.Ident, stack []ast.Node, callFuns map[ast.Expr]bool) {
	if callFuns[ast.Expr(id)] {
		return
	}
	if len(stack) > 0 {
		if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == id {
			return // handled at the selector level
		}
	}
	obj, ok := n.Pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if node := r.prog.byObj[obj]; node != nil {
		r.store(sigKey(n.Pkg.Info.TypeOf(id)), node)
	}
}

// selectorValue records method values (m.onTimer — binds its receiver,
// which allocates), method expressions (T.M) and cross-package function
// references used as values.
func (r *resolver) selectorValue(n *FuncNode, sel *ast.SelectorExpr) {
	info := n.Pkg.Info
	if s, ok := info.Selections[sel]; ok {
		obj, ok := s.Obj().(*types.Func)
		if !ok {
			return
		}
		switch s.Kind() {
		case types.MethodVal:
			if node := r.prog.byObj[obj]; node != nil {
				r.store(sigKey(info.TypeOf(sel)), node)
			}
			r.allocFact(n, sel.Pos(), "method value "+exprKey(sel)+" binds its receiver")
		case types.MethodExpr:
			if node := r.prog.byObj[obj]; node != nil {
				r.store(sigKey(info.TypeOf(sel)), node)
			}
		}
		return
	}
	if obj, ok := info.Uses[sel.Sel].(*types.Func); ok {
		if node := r.prog.byObj[obj]; node != nil {
			r.store(sigKey(info.TypeOf(sel)), node)
		}
	}
}

// call resolves one call expression into edges and/or allocation facts.
func (r *resolver) call(n *FuncNode, call *ast.CallExpr) {
	info := n.Pkg.Info
	fun := ast.Unparen(call.Fun)

	// Generic instantiation: unwrap to the underlying func object.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if funcObjOf(info, ix.X) != nil {
			fun = ast.Unparen(ix.X)
		}
	case *ast.IndexListExpr:
		if funcObjOf(info, ix.X) != nil {
			fun = ast.Unparen(ix.X)
		}
	}

	// Type conversion, not a call.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		r.conversionAlloc(n, call, tv.Type)
		return
	}

	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Builtin:
			r.builtinCall(n, call, obj.Name())
			return
		case *types.Func:
			r.resolveStatic(n, call, obj)
			return
		}
		// A local func value (variable, parameter).
		r.resolveFuncValue(n, call, info.TypeOf(f))
	case *ast.SelectorExpr:
		if s, ok := info.Selections[f]; ok {
			switch s.Kind() {
			case types.MethodVal:
				obj := s.Obj().(*types.Func)
				if types.IsInterface(s.Recv()) {
					site := r.dynamicSite(n, call.Pos(), "interface call "+ifaceCallDesc(s.Recv(), obj))
					r.ifaceCalls = append(r.ifaceCalls, deferredIface{site: site, method: obj})
					return
				}
				r.resolveStatic(n, call, obj)
			case types.FieldVal:
				// Calling a func-typed field: m.hook(...).
				r.resolveFuncValue(n, call, info.TypeOf(f))
			case types.MethodExpr:
				obj := s.Obj().(*types.Func)
				r.resolveStatic(n, call, obj)
			}
			return
		}
		switch obj := info.Uses[f.Sel].(type) {
		case *types.Func:
			r.resolveStatic(n, call, obj)
		case *types.Var:
			// Package-level func variable.
			r.resolveFuncValue(n, call, info.TypeOf(f))
		}
	case *ast.FuncLit:
		// Immediately invoked literal; the edge was added at the
		// FuncLit visit.
	default:
		// f()() and friends: a call through an arbitrary func-typed
		// expression.
		r.resolveFuncValue(n, call, info.TypeOf(fun))
	}
}

func funcObjOf(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// resolveStatic adds the edge for a resolved function object, or for a
// sourceless callee the conservative allocation fact (plus container/
// heap dispatch edges so intrusive heaps stay analyzable).
func (r *resolver) resolveStatic(n *FuncNode, call *ast.CallExpr, obj *types.Func) {
	if node := r.prog.byObj[obj]; node != nil {
		r.staticEdge(n, call.Pos(), node, node.Short)
		r.boxArgs(n, call, obj.Type())
		return
	}
	name := sourcelessName(obj)
	if obj.Pkg() != nil && obj.Pkg().Path() == "container/heap" && heapDispatch[obj.Name()] && len(call.Args) > 0 {
		r.heapDispatchEdges(n, call)
	} else if !allocFree(obj, name) {
		r.allocFact(n, call.Pos(), "calls "+name+" (no source here; assumed to allocate)")
	}
	r.boxArgs(n, call, obj.Type())
}

// heapDispatchEdges models container/heap calling back into the
// concrete heap.Interface argument's methods.
func (r *resolver) heapDispatchEdges(n *FuncNode, call *ast.CallExpr) {
	t := n.Pkg.Info.TypeOf(call.Args[0])
	if t == nil {
		return
	}
	site := r.dynamicSite(n, call.Pos(), "container/heap dispatch")
	ms := types.NewMethodSet(t)
	for _, name := range heapInterfaceMethods {
		for i := 0; i < ms.Len(); i++ {
			obj, ok := ms.At(i).Obj().(*types.Func)
			if !ok || obj.Name() != name {
				continue
			}
			if node := r.prog.byObj[obj]; node != nil {
				site.Callees = append(site.Callees, node)
			}
		}
	}
}

// resolveFuncValue adds a dynamic edge matched against every stored
// function value with an identical signature.
func (r *resolver) resolveFuncValue(n *FuncNode, call *ast.CallExpr, t types.Type) {
	key := sigKey(t)
	if key == "" {
		return
	}
	site := r.dynamicSite(n, call.Pos(), "call through func value")
	r.sigCalls = append(r.sigCalls, deferredSig{site: site, key: key})
	if sig, ok := t.Underlying().(*types.Signature); ok {
		r.boxArgs(n, call, sig)
	}
}

// resolveDeferred fills in the callee sets of interface and func-value
// calls once every package has been indexed — a later package may
// implement an earlier package's interface, which is exactly the blind
// spot per-package analysis has.
func (r *resolver) resolveDeferred() {
	for _, d := range r.ifaceCalls {
		d.site.Callees = r.implementers(d.method)
	}
	for _, d := range r.sigCalls {
		d.site.Callees = append(d.site.Callees, r.prog.stored[d.key]...)
	}
}

// implementers returns the source methods that an interface method call
// could dispatch to, in deterministic (type index) order.
func (r *resolver) implementers(method *types.Func) []*FuncNode {
	recv := method.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*FuncNode
	for _, named := range r.prog.named {
		if named.TypeParams().Len() > 0 {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		sel := types.NewMethodSet(ptr).Lookup(method.Pkg(), method.Name())
		if sel == nil {
			continue
		}
		obj, ok := sel.Obj().(*types.Func)
		if !ok {
			continue
		}
		if node := r.prog.byObj[obj]; node != nil {
			out = append(out, node)
		}
	}
	return out
}

// builtinCall handles the builtins with allocation behavior.
func (r *resolver) builtinCall(n *FuncNode, call *ast.CallExpr, name string) {
	switch name {
	case "make":
		r.allocFact(n, call.Pos(), "make allocates")
	case "new":
		r.allocFact(n, call.Pos(), "new allocates")
	case "append":
		if len(call.Args) > 0 && !r.scratchBacked(n, call.Args[0]) {
			r.allocFact(n, call.Pos(), "append to "+appendDstName(call.Args[0])+" may grow the backing array")
		}
	case "panic":
		if len(call.Args) == 1 {
			r.boxCheck(n, call.Pos(), anyInterface, call.Args[0])
		}
	case "print", "println":
		r.allocFact(n, call.Pos(), name+" allocates")
	}
}

var anyInterface = types.NewInterfaceType(nil, nil)

func appendDstName(e ast.Expr) string {
	if k := exprKey(e); k != "" {
		return k
	}
	return "slice"
}

// scratchBacked reports whether an append destination is backed by
// pre-sized storage the function does not own growing: a field, a
// dereference, an indexed slot, a parameter, or a local initialized by
// reslicing a field or parameter (the `woken := k.woken[:0]` scratch
// idiom). Appends to such destinations are amortized-free and the
// runtime alloc gates keep them honest.
func (r *resolver) scratchBacked(n *FuncNode, dst ast.Expr) bool {
	switch d := ast.Unparen(dst).(type) {
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	case *ast.Ident:
		if r.isParam(n, d.Name) {
			return true
		}
		return r.initializedFromState(n, d.Name)
	}
	return false
}

func (r *resolver) isParam(n *FuncNode, name string) bool {
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
	} else {
		ft = n.Lit.Type
	}
	if ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		for _, id := range f.Names {
			if id.Name == name {
				return true
			}
		}
	}
	return false
}

// initializedFromState reports whether some assignment to name inside
// the function derives from a field or parameter (contains a selector
// or a parameter identifier).
func (r *resolver) initializedFromState(n *FuncNode, name string) bool {
	found := false
	ast.Inspect(n.body(), func(x ast.Node) bool {
		if found {
			return false
		}
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name != name {
				continue
			}
			rhs := as.Rhs[i]
			ast.Inspect(rhs, func(y ast.Node) bool {
				switch y := y.(type) {
				case *ast.SelectorExpr:
					found = true
					return false
				case *ast.Ident:
					if r.isParam(n, y.Name) {
						found = true
						return false
					}
				}
				return true
			})
		}
		return true
	})
	return found
}

// compositeAlloc flags composite literals that allocate: address-taken
// literals and slice/map literals. Struct and array literals used by
// value are free.
func (r *resolver) compositeAlloc(n *FuncNode, lit *ast.CompositeLit, stack []ast.Node) {
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND && ast.Unparen(u.X) == ast.Expr(lit) {
			r.allocFact(n, u.Pos(), "&"+typeName(n.Pkg.Info.TypeOf(lit))+"{} literal escapes to the heap")
			return
		}
	}
	t := n.Pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		r.allocFact(n, lit.Pos(), "slice literal allocates")
	case *types.Map:
		r.allocFact(n, lit.Pos(), "map literal allocates")
	}
}

// assignAlloc checks assignments for interface boxing and string
// concatenation compounds.
func (r *resolver) assignAlloc(n *FuncNode, as *ast.AssignStmt) {
	info := n.Pkg.Info
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isStringType(info.TypeOf(as.Lhs[0])) {
		r.allocFact(n, as.Pos(), "string concatenation allocates")
		return
	}
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		dst := info.TypeOf(lhs)
		if dst == nil {
			continue
		}
		r.boxCheck(n, as.Rhs[i].Pos(), dst, as.Rhs[i])
	}
}

// returnAlloc checks returned values against the function's interface
// results.
func (r *resolver) returnAlloc(n *FuncNode, ret *ast.ReturnStmt) {
	sig := n.signature()
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, v := range ret.Results {
		r.boxCheck(n, v.Pos(), sig.Results().At(i).Type(), v)
	}
}

func (n *FuncNode) signature() *types.Signature {
	if n.Obj != nil {
		sig, _ := n.Obj.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		sig, _ := n.Pkg.Info.TypeOf(n.Lit).(*types.Signature)
		return sig
	}
	return nil
}

// boxArgs checks a call's arguments against interface parameters.
func (r *resolver) boxArgs(n *FuncNode, call *ast.CallExpr, t types.Type) {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt != nil {
			r.boxCheck(n, arg.Pos(), pt, arg)
		}
	}
}

// boxCheck flags a conversion of a concrete value into an interface
// when the value is not pointer-shaped and not zero-sized — the cases
// the runtime must heap-allocate for.
func (r *resolver) boxCheck(n *FuncNode, pos token.Pos, dst types.Type, src ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	st := n.Pkg.Info.TypeOf(src)
	if st == nil || types.IsInterface(st) {
		return
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if pointerShaped(st) || gcSizes.Sizeof(st) == 0 {
		return
	}
	r.allocFact(n, pos, "boxing "+typeName(st)+" into an interface allocates")
}

// conversionAlloc flags allocating conversions: string↔[]byte/[]rune
// and conversions straight into an interface type.
func (r *resolver) conversionAlloc(n *FuncNode, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	if types.IsInterface(target) {
		r.boxCheck(n, call.Pos(), target, call.Args[0])
		return
	}
	src := n.Pkg.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if isStringType(target) && isByteOrRuneSlice(src) || isStringType(src) && isByteOrRuneSlice(target) {
		r.allocFact(n, call.Pos(), "string conversion allocates")
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t fit in an interface word
// without allocating.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Basic:
		b, ok := t.Underlying().(*types.Basic)
		if ok {
			return b.Kind() == types.UnsafePointer
		}
		return true
	}
	return false
}

func typeName(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// sourcelessName renders a callee without source for diagnostics:
// "fmt.Sprintf", "(*sync.Mutex).Lock", "time.Time.Add".
func sourcelessName(obj *types.Func) string {
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		q := func(p *types.Package) string { return p.Name() }
		if p, ok := rt.(*types.Pointer); ok {
			return "(*" + types.TypeString(p.Elem(), q) + ")." + obj.Name()
		}
		return types.TypeString(rt, q) + "." + obj.Name()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// allocFree reports whether a sourceless callee is known not to
// allocate.
func allocFree(obj *types.Func, name string) bool {
	if obj.Pkg() == nil {
		// Universe-scope methods (error.Error): the call itself is free.
		return true
	}
	if allocFreePkgs[obj.Pkg().Path()] {
		return true
	}
	// Map the display name onto the allowlist's package-path form.
	sig, _ := obj.Type().(*types.Signature)
	q := func(p *types.Package) string { return p.Path() }
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			return allocFreeFuncs["(*"+types.TypeString(p.Elem(), q)+")."+obj.Name()]
		}
		return allocFreeFuncs[types.TypeString(rt, q)+"."+obj.Name()]
	}
	return allocFreeFuncs[obj.Pkg().Path()+"."+obj.Name()]
}

// ifaceCallDesc renders "Program.Next" for an interface method call.
func ifaceCallDesc(recv types.Type, m *types.Func) string {
	name := typeName(recv)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	return name + "." + m.Name()
}

// sigKey canonicalizes a signature (receiver excluded — method values
// are matched by their bound shape) with full package paths, the
// identity used to match calls through func values to stored functions.
func sigKey(t types.Type) string {
	if t == nil {
		return ""
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return ""
	}
	q := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), q))
	}
	b.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), q))
	}
	b.WriteByte(')')
	if sig.Variadic() {
		b.WriteString("...")
	}
	return b.String()
}
