package analysis_test

import (
	"testing"

	"kleb/internal/analysis"
	"kleb/internal/analysis/analysistest"
)

// The whole-program analyzers run over multi-package trees under
// testdata/src: each subdirectory is one package importable by its
// tree-relative path, and each tree pins the engine's propagated facts
// in a facts.golden (regenerate with KLEBVET_UPDATE_FACTS=1).

func TestDeterTaintTree(t *testing.T) {
	analysistest.RunTree(t, []*analysis.Analyzer{analysis.DeterTaint}, "detertaint")
}

func TestHotAllocTree(t *testing.T) {
	analysistest.RunTree(t, []*analysis.Analyzer{analysis.HotAlloc}, "hotalloc")
}

func TestLedgerGuardTree(t *testing.T) {
	analysistest.RunTree(t, []*analysis.Analyzer{analysis.LedgerGuard}, "ledgerguard")
}
