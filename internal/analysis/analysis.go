// Package analysis is the simulator's static-analysis suite: the
// klebvet analyzers that machine-check the determinism and telemetry
// invariants the reproduction's bit-identical-artifacts guarantee rests
// on (DESIGN.md §7). The API deliberately mirrors a subset of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — but is
// built only on the standard library's go/ast and go/types so the module
// stays dependency-free; if the repo ever vendors x/tools the analyzers
// port mechanically.
//
// Findings are suppressed per line with an allow comment:
//
//	t0 := time.Now() //klebvet:allow walltime -- real benchmark timing
//
// The comment names one or more analyzers (comma-separated) and applies
// to its own line and the line directly below, so it also works as a
// standalone comment above the offending statement. Everything after
// " -- " is a free-form reason.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named, self-contained check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the check to one package, reporting findings via
	// pass.Report (or pass.Reportf).
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records one finding. Findings on lines carrying a matching
// //klebvet:allow comment are filtered before they reach the caller.
func (p *Pass) Report(d Diagnostic) {
	p.report(d) //klebvet:allow emitguard -- Run installs report on every Pass it builds
}

// Reportf records a formatted finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full klebvet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Walltime, SeededRand, MapOrder, EmitGuard, LockDiscipline, DroppedErr, HTTPGuard}
}

// ByName resolves an analyzer by its Name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies a to one type-checked package and returns the surviving
// (non-allowlisted) diagnostics sorted by position.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	allow := buildAllowIndex(fset, files, a.Name)
	var out []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report: func(d Diagnostic) {
			if !allow.suppresses(fset.Position(d.Pos)) {
				out = append(out, d)
			}
		},
	}
	//klebvet:allow emitguard -- Run is a required field of every Analyzer
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// allowPrefix introduces a suppression comment.
const allowPrefix = "//klebvet:allow"

// allowIndex records, per file, the lines on which one analyzer's
// findings are suppressed.
type allowIndex map[string]map[int]bool

func (ai allowIndex) suppresses(pos token.Position) bool {
	return ai[pos.Filename][pos.Line]
}

// buildAllowIndex scans every comment for //klebvet:allow directives
// naming the analyzer and marks the comment's line plus the next line.
func buildAllowIndex(fset *token.FileSet, files []*ast.File, name string) allowIndex {
	ai := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok || !names[name] {
					continue
				}
				p := fset.Position(c.Pos())
				lines := ai[p.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					ai[p.Filename] = lines
				}
				lines[p.Line] = true
				lines[p.Line+1] = true
			}
		}
	}
	return ai
}

// parseAllow extracts the analyzer names from one allow comment.
// Accepted shape: //klebvet:allow name1,name2 [-- reason].
func parseAllow(text string) (map[string]bool, bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return nil, false
	}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	names := make(map[string]bool)
	for _, field := range strings.Fields(rest) {
		for _, n := range strings.Split(field, ",") {
			if n != "" {
				names[n] = true
			}
		}
	}
	return names, len(names) > 0
}
