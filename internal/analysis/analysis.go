// Package analysis is the simulator's static-analysis suite: the
// klebvet analyzers that machine-check the determinism and telemetry
// invariants the reproduction's bit-identical-artifacts guarantee rests
// on (DESIGN.md §7). The API deliberately mirrors a subset of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — but is
// built only on the standard library's go/ast and go/types so the module
// stays dependency-free; if the repo ever vendors x/tools the analyzers
// port mechanically.
//
// Findings are suppressed with an allow comment:
//
//	t0 := time.Now() //klebvet:allow walltime -- real benchmark timing
//
// The comment names one or more analyzers (comma-separated) and applies
// to the full span of its enclosing statement (so a trailing comment on
// any line of a multi-line call chain covers the whole chain), to the
// statement directly below when written standalone, and — as a
// conservative floor — always to its own line and the next. Everything
// after " -- " is a free-form reason.
//
// Two analyzer shapes share the suite: per-package analyzers implement
// Run and see one type-checked package at a time; whole-program
// analyzers implement RunProgram and see a Program — every loaded
// package in dependency order plus the cross-package call graph and the
// per-function facts propagated over it (see program.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named, self-contained check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the check to one package, reporting findings via
	// pass.Report (or pass.Reportf). Exactly one of Run and RunProgram
	// is set.
	Run func(*Pass) error
	// RunProgram applies a whole-program check to a Program (every
	// loaded package plus call graph and propagated facts), reporting
	// findings via pass.Report. Exactly one of Run and RunProgram is
	// set.
	RunProgram func(*ProgramPass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records one finding. Findings on lines carrying a matching
// //klebvet:allow comment are filtered before they reach the caller.
func (p *Pass) Report(d Diagnostic) {
	p.report(d) //klebvet:allow emitguard -- Run installs report on every Pass it builds
}

// Reportf records a formatted finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full klebvet suite in stable order: the seven
// per-package analyzers first, then the three whole-program facts
// analyzers (detertaint, hotalloc, ledgerguard).
func All() []*Analyzer {
	return []*Analyzer{
		Walltime, SeededRand, MapOrder, EmitGuard, LockDiscipline, DroppedErr, HTTPGuard,
		DeterTaint, HotAlloc, LedgerGuard,
	}
}

// ByName resolves an analyzer by its Name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies a to one type-checked package and returns the surviving
// (non-allowlisted) diagnostics sorted by position.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	if a.Run == nil {
		return nil, fmt.Errorf("analysis: %s is a whole-program analyzer; drive it with RunProgram", a.Name)
	}
	allow := buildAllowIndex(fset, files, a.Name)
	var out []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report: func(d Diagnostic) {
			if !allow.suppresses(fset.Position(d.Pos)) {
				out = append(out, d)
			}
		},
	}
	//klebvet:allow emitguard -- Run is a required field of every Analyzer
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// allowPrefix introduces a suppression comment.
const allowPrefix = "//klebvet:allow"

// allowIndex records, per file, the lines on which one analyzer's
// findings are suppressed.
type allowIndex map[string]map[int]bool

func (ai allowIndex) suppresses(pos token.Position) bool {
	return ai[pos.Filename][pos.Line]
}

// buildAllowIndex scans every comment for //klebvet:allow directives
// naming the analyzer and marks the full line span of the statement the
// comment belongs to: the innermost simple statement whose lines include
// the comment (so a trailing comment on the last line of a multi-line
// call chain covers the whole chain), or the statement starting on the
// next line for a standalone comment. The comment's own line and the
// line below are always marked, preserving the original floor.
func buildAllowIndex(fset *token.FileSet, files []*ast.File, name string) allowIndex {
	ai := make(allowIndex)
	for _, f := range files {
		var spans []stmtSpan
		haveSpans := false
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok || !names[name] {
					continue
				}
				p := fset.Position(c.Pos())
				lines := ai[p.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					ai[p.Filename] = lines
				}
				lines[p.Line] = true
				lines[p.Line+1] = true
				if !haveSpans {
					spans = fileStmtSpans(fset, f)
					haveSpans = true
				}
				if start, end, ok := spanForAllow(spans, p.Line); ok {
					for l := start; l <= end; l++ {
						lines[l] = true
					}
				}
			}
		}
	}
	return ai
}

// stmtSpan is the line extent of one statement-like node. simple marks
// nodes safe to use for containing-line matches: a trailing allow
// comment inside an if/for/switch body must suppress only the simple
// statement it trails, never the whole compound construct around it.
type stmtSpan struct {
	start, end int
	simple     bool
}

// fileStmtSpans collects the line spans of every statement, declaration,
// spec and field in f, classifying compound statements (whose bodies
// contain other statements) separately from simple ones.
func fileStmtSpans(fset *token.FileSet, f *ast.File) []stmtSpan {
	var spans []stmtSpan
	add := func(n ast.Node, simple bool) {
		spans = append(spans, stmtSpan{
			start:  fset.Position(n.Pos()).Line,
			end:    fset.Position(n.End()).Line,
			simple: simple,
		})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.GoStmt,
			*ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.BranchStmt,
			*ast.ValueSpec, *ast.TypeSpec, *ast.ImportSpec, *ast.Field:
			add(n, true)
		case *ast.GenDecl:
			add(n, !n.Lparen.IsValid())
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt,
			*ast.FuncDecl, *ast.CaseClause, *ast.CommClause:
			add(n, false)
		}
		return true
	})
	return spans
}

// spanForAllow resolves the statement span an allow comment on `line`
// suppresses: the narrowest simple statement whose lines contain the
// comment, else the narrowest statement starting on the next line.
func spanForAllow(spans []stmtSpan, line int) (start, end int, ok bool) {
	best := -1
	for i, s := range spans {
		if !s.simple || s.start > line || line > s.end {
			continue
		}
		if best < 0 || s.end-s.start < spans[best].end-spans[best].start {
			best = i
		}
	}
	if best < 0 {
		// Standalone comment: suppress the statement starting directly
		// below (compound statements included — the comment names its
		// target explicitly).
		for i, s := range spans {
			if s.start != line+1 {
				continue
			}
			if best < 0 || s.end-s.start < spans[best].end-spans[best].start {
				best = i
			}
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return spans[best].start, spans[best].end, true
}

// parseAllow extracts the analyzer names from one allow comment.
// Accepted shape: //klebvet:allow name1,name2 [-- reason].
func parseAllow(text string) (map[string]bool, bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return nil, false
	}
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	names := make(map[string]bool)
	for _, field := range strings.Fields(rest) {
		for _, n := range strings.Split(field, ",") {
			if n != "" {
				names[n] = true
			}
		}
	}
	return names, len(names) > 0
}
