package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LockDiscipline enforces `// guarded by <mutex>` annotations: a struct
// field or package-level variable carrying the annotation may only be
// read or written while the named mutex is held in the enclosing
// function. The check is intra-procedural and position-based: the
// nearest preceding Lock/RLock/Unlock/RUnlock event on the named mutex
// within the same function must be a lock acquisition (deferred unlocks,
// which run at function exit, do not count as releases). Helper
// functions that are documented to run with the lock already held opt
// out by ending their name in "Locked".
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "fields and vars annotated `// guarded by <mutex>` must only be " +
		"accessed with that mutex held in the enclosing function " +
		"(…Locked-suffixed helpers are assumed to be called under the lock)",
	Run: runLockDiscipline,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardAnnotation records one annotated object and the mutex name that
// guards it.
type guardAnnotation struct {
	mutex string
	field bool // struct field (mutex is a sibling on the same base) vs package var
}

func runLockDiscipline(pass *Pass) error {
	guarded := collectGuards(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkFuncLocks(pass, guarded, fd)
		}
	}
	return nil
}

// collectGuards finds every `// guarded by <mutex>` annotation on struct
// fields and package-level vars in the package.
func collectGuards(pass *Pass) map[types.Object]guardAnnotation {
	out := make(map[types.Object]guardAnnotation)
	mutexFrom := func(groups ...*ast.CommentGroup) string {
		for _, g := range groups {
			if g == nil {
				continue
			}
			if m := guardedByRe.FindStringSubmatch(g.Text()); m != nil {
				return m[1]
			}
		}
		return ""
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.TypeSpec:
					st, ok := spec.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						mu := mutexFrom(field.Doc, field.Comment)
						if mu == "" {
							continue
						}
						for _, name := range field.Names {
							if obj := pass.TypesInfo.Defs[name]; obj != nil {
								out[obj] = guardAnnotation{mutex: mu, field: true}
							}
						}
					}
				case *ast.ValueSpec:
					mu := mutexFrom(spec.Doc, spec.Comment)
					if mu == "" && len(gd.Specs) == 1 {
						mu = mutexFrom(gd.Doc)
					}
					if mu == "" {
						continue
					}
					for _, name := range spec.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							out[obj] = guardAnnotation{mutex: mu, field: false}
						}
					}
				}
			}
		}
	}
	return out
}

// lockEvent is one mutex operation at a position in a function body.
type lockEvent struct {
	pos     token.Pos
	acquire bool
}

// checkFuncLocks verifies every guarded access in fd against the lock
// events on the relevant mutex within the same body.
func checkFuncLocks(pass *Pass, guarded map[types.Object]guardAnnotation, fd *ast.FuncDecl) {
	type access struct {
		pos      token.Pos
		name     string
		mutexKey string
	}
	var accesses []access
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := pass.TypesInfo.Uses[n.Sel]
			g, ok := guarded[obj]
			if !ok || !g.field {
				return true
			}
			base := exprKey(n.X)
			if base == "" {
				return true // unverifiable base expression; stay quiet
			}
			accesses = append(accesses, access{n.Pos(), exprKey(n), base + "." + g.mutex})
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			g, ok := guarded[obj]
			if !ok || g.field {
				return true
			}
			// Skip the qualifier position of a selector (handled above) —
			// a package var is a bare ident, never a Sel.
			accesses = append(accesses, access{n.Pos(), n.Name, g.mutex})
		}
		return true
	})
	if len(accesses) == 0 {
		return
	}
	events := map[string][]lockEvent{} // mutexKey → ordered events
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var acquire bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			acquire = true
		case "Unlock", "RUnlock":
			acquire = false
		default:
			return true
		}
		key := exprKey(sel.X)
		if key == "" {
			return true
		}
		if !acquire && len(stack) > 0 {
			if _, deferred := stack[len(stack)-1].(*ast.DeferStmt); deferred {
				return true // runs at exit; the lock is held until return
			}
		}
		events[key] = append(events[key], lockEvent{call.Pos(), acquire})
		return true
	})
	for _, evs := range events {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	}
	for _, acc := range accesses {
		held := false
		for _, ev := range events[acc.mutexKey] {
			if ev.pos >= acc.pos {
				break
			}
			held = ev.acquire
		}
		if !held {
			pass.Reportf(acc.pos,
				"%s is annotated `guarded by %s` but %s is accessed without holding %s in %s; lock around the access or rename the helper …Locked",
				acc.name, lastSegment(acc.mutexKey), acc.name, acc.mutexKey, fd.Name.Name)
		}
	}
}

func lastSegment(key string) string {
	if i := strings.LastIndex(key, "."); i >= 0 {
		return key[i+1:]
	}
	return key
}
