package experiments

import (
	"fmt"
	"io"

	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/session"
	"kleb/internal/workload"
)

// The placement study extends the pairwise matrix to the scheduler's actual
// decision: four containers, two cores, two ways to split them. It
// validates the paper's §IV-B placement rule — "the scheduler can colocate
// computation-intensive programs or containers with the memory-intensive
// ones on the same core, while scheduling the programs that require the
// same type of resources on different cores" — with measured makespans:
// stacking both LLC-resident containers on one core serializes them AND
// still thrashes the socket's shared LLC (two working sets cannot both stay
// resident), while pairing each with a compute job spreads the LLC demand
// and halves the makespan.

// PlacementJob is one container instance in the study.
type PlacementJob struct {
	Image string
	// Core is the core index the placement assigns.
	Core int
	// Runtime is the measured execution time.
	Runtime ktime.Duration
}

// Placement is one assignment of the four jobs.
type Placement struct {
	Name string
	Jobs []PlacementJob
	// Makespan is when the last job finished.
	Makespan ktime.Duration
}

// PlacementResult compares the assignments.
type PlacementResult struct {
	// Images are the four job images (two LLC-resident, two compute).
	Images     [4]string
	Placements []Placement
}

// Find returns a placement by name.
func (r *PlacementResult) Find(name string) (Placement, bool) {
	for _, p := range r.Placements {
		if p.Name == name {
			return p, true
		}
	}
	return Placement{}, false
}

// RunPlacement runs {mem, mem, comp, comp} under both assignments on a
// two-core shared-LLC socket:
//
//   - "serialize-memory": both memory jobs on core 0, both compute jobs on
//     core 1 — the LLC-hungry pair time-shares, never running concurrently;
//   - "mixed-pairs": one memory + one compute job per core — the memory
//     jobs overlap on the shared LLC about half the time.
func RunPlacement(seed uint64, workers int) (*PlacementResult, error) {
	const memImage, compImage = "mysql", "ruby"
	res := &PlacementResult{Images: [4]string{memImage, memImage, compImage, compImage}}

	run := func(name string, assignment [4]int) (Placement, error) {
		placed := Placement{Name: name}
		var procs []*kernel.Process
		_, err := session.RunCluster(session.ClusterSpec{
			Profile: ProfileFor(KLEB),
			Seed:    seed,
			Cores:   2,
			Place: func(cores []*machine.Machine) error {
				for slot, coreIdx := range assignment {
					image := memImage
					if slot >= 2 {
						image = compImage
					}
					img, ok := workload.ImageByName(image)
					if !ok {
						return fmt.Errorf("placement: unknown image %q", image)
					}
					p := cores[coreIdx].Kernel().Spawn(
						fmt.Sprintf("%s-%d", image, slot), img.ScriptAt(slot).Program())
					procs = append(procs, p)
					placed.Jobs = append(placed.Jobs, PlacementJob{Image: image, Core: coreIdx})
				}
				return nil
			},
		})
		if err != nil {
			return Placement{}, err
		}
		for i, p := range procs {
			placed.Jobs[i].Runtime = p.Runtime()
			if end := p.ExitTime(); ktime.Duration(end) > placed.Makespan {
				placed.Makespan = ktime.Duration(end)
			}
		}
		return placed, nil
	}

	// The two assignments are independent socket runs; fan them out.
	assignments := []struct {
		name string
		at   [4]int
	}{
		// serialize-memory: mem jobs share core 0; compute jobs share core 1.
		{"serialize-memory", [4]int{0, 0, 1, 1}},
		// mixed-pairs: each core gets one memory and one compute job.
		{"mixed-pairs", [4]int{0, 1, 0, 1}},
	}
	placements := make([]Placement, len(assignments))
	errs := make([]error, len(assignments))
	session.Scheduler{Workers: workers}.ForEach(len(assignments), func(i int) {
		placements[i], errs[i] = run(assignments[i].name, assignments[i].at)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.Placements = placements
	return res, nil
}

// MemoryRuntime sums the memory-class jobs' runtimes in a placement.
func (p Placement) MemoryRuntime(memImage string) ktime.Duration {
	var total ktime.Duration
	for _, j := range p.Jobs {
		if j.Image == memImage {
			total += j.Runtime
		}
	}
	return total
}

// Render writes the comparison.
func (r *PlacementResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Placement study — 4 containers on a 2-core shared-LLC socket")
	for _, p := range r.Placements {
		fmt.Fprintf(w, "\n%s (makespan %v):\n", p.Name, p.Makespan)
		for _, j := range p.Jobs {
			fmt.Fprintf(w, "  core %d: %-8s runtime %v\n", j.Core, j.Image, j.Runtime)
		}
	}
	fmt.Fprintln(w, "\nThe paper's §IV-B placement rule, measured: pairing each memory-")
	fmt.Fprintln(w, "intensive container with a computation-intensive one on a core beats")
	fmt.Fprintln(w, "stacking the memory-intensive pair — they would serialize on the CPU")
	fmt.Fprintln(w, "and still evict each other from the shared LLC.")
}
