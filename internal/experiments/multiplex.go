package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"kleb/internal/isa"
	"kleb/internal/kleb"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/session"
)

// The multiplexing-error study quantifies the cost of perf_events time
// multiplexing (the paper's §II-B objection to perf): sweep the requested
// event count past the PMU's four programmable counters and compare perf
// stat's enabled/running-scaled estimates against exact ground truth. The
// ground truth comes from K-LEB itself, which refuses to multiplex: the
// same mix is split into counter-sized chunks and each chunk is counted
// exactly in its own run. Under the budget the two agree; past it, perf's
// totals become extrapolations and drift from the true counts.

// MultiplexConfig parameterizes the event-count sweep.
type MultiplexConfig struct {
	// Workload is the monitored program (default WorkloadTriple).
	Workload Workload
	// Counts are the programmable-event counts to sweep (default 2,4,6,8 —
	// two under the 4-counter budget, two past it).
	Counts []int
	// Seed roots the per-mix seed derivation.
	Seed uint64
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS).
	Workers int
	// Period is the sampling interval handed to both tools (default 10ms;
	// only totals matter here, not the series).
	Period ktime.Duration
}

func (c *MultiplexConfig) defaults() {
	if c.Workload == "" {
		c.Workload = WorkloadTriple
	}
	if len(c.Counts) == 0 {
		c.Counts = []int{2, 4, 6, 8}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Period == 0 {
		c.Period = 10 * ktime.Millisecond
	}
}

// multiplexPool is the sweep's event pool, ordered so the under-budget
// prefixes are unconstrained and the oversubscribed mixes pull in
// counter-constrained events (ARITH.MUL only schedules on PMC0-1),
// exercising the constraint-aware rotation, not just round counting.
func multiplexPool() []isa.Event {
	return []isa.Event{
		isa.EvLoads,
		isa.EvStores,
		isa.EvBranches,
		isa.EvLLCMisses,
		isa.EvBranchMisses,
		isa.EvLLCRefs,
		isa.EvMulOps,
		isa.EvDTLBMisses,
	}
}

// MultiplexCell is one event's comparison within a mix.
type MultiplexCell struct {
	Event isa.Event
	// Reported is perf stat's total (enabled/running-scaled when the mix
	// multiplexes); Scale is the extrapolation factor it applied.
	Reported uint64
	Scale    float64
	// Exact is the K-LEB chunk run's directly counted total.
	Exact uint64
	// ErrPct is the signed relative error of Reported against Exact.
	ErrPct float64
}

// MultiplexRow is one mix's outcome.
type MultiplexRow struct {
	// N is the requested programmable-event count.
	N int
	// Rounds is what the PMU event scheduler needs for this mix (1 = the
	// whole mix counts simultaneously, >1 = time multiplexed).
	Rounds int
	// Estimated reports whether perf stat flagged its totals as scaled.
	Estimated bool
	Cells     []MultiplexCell
}

// MaxAbsErrPct is the row's worst-event absolute error.
func (r MultiplexRow) MaxAbsErrPct() float64 {
	worst := 0.0
	for _, c := range r.Cells {
		if e := math.Abs(c.ErrPct); e > worst {
			worst = e
		}
	}
	return worst
}

// MultiplexResult is the sweep output.
type MultiplexResult struct {
	Workload Workload
	Rows     []MultiplexRow
}

// RunMultiplex sweeps the event-count mixes. Each mix runs perf stat once
// over the full mix plus K-LEB over each 4-event chunk of it, all fanned
// over one scheduler batch; results are bit-identical at any worker count.
func RunMultiplex(cfg MultiplexConfig) (*MultiplexResult, error) {
	cfg.defaults()
	script, err := scriptFor(cfg.Workload)
	if err != nil {
		return nil, err
	}
	pool := multiplexPool()
	prof := ProfileFor(PerfStat)

	// Spec layout per mix: one perf-stat run over the whole mix, then one
	// K-LEB run per 4-event chunk for the exact counts.
	type mixPlan struct {
		n      int
		events []isa.Event
		perf   int   // spec index of the perf-stat run
		chunks []int // spec indices of the K-LEB chunk runs
	}
	var specs []session.Spec
	plans := make([]mixPlan, 0, len(cfg.Counts))
	for i, n := range cfg.Counts {
		if n < 1 || n > len(pool) {
			return nil, fmt.Errorf("experiments: multiplex count %d out of range 1..%d", n, len(pool))
		}
		seed := session.DeriveSeed(cfg.Seed, i)
		events := pool[:n]
		plan := mixPlan{n: n, events: events, perf: len(specs)}
		specs = append(specs, session.Spec{
			Profile:   prof,
			Seed:      seed,
			NewTarget: targetFactory(script),
			NewTool:   toolFactory(PerfStat, 0),
			Config:    monitor.Config{Events: events, Period: cfg.Period, ExcludeKernel: true},
		})
		for lo := 0; lo < n; lo += 4 {
			hi := lo + 4
			if hi > n {
				hi = n
			}
			plan.chunks = append(plan.chunks, len(specs))
			specs = append(specs, session.Spec{
				Profile:   prof,
				Seed:      seed,
				NewTarget: targetFactory(script),
				NewTool: func() (monitor.Tool, error) {
					return kleb.New(), nil
				},
				Config: monitor.Config{Events: events[lo:hi], Period: cfg.Period, ExcludeKernel: true},
			})
		}
		plans = append(plans, plan)
	}

	runs, err := runAll(cfg.Workers, specs)
	if err != nil {
		return nil, err
	}

	res := &MultiplexResult{Workload: cfg.Workload}
	for _, plan := range plans {
		perf := runs[plan.perf].Result
		exact := make(map[isa.Event]uint64, plan.n)
		for _, ci := range plan.chunks {
			for ev, v := range runs[ci].Result.Totals {
				exact[ev] = v
			}
		}
		sched, err := prof.Events.Schedule(plan.events)
		if err != nil {
			return nil, fmt.Errorf("experiments: multiplex mix of %d: %w", plan.n, err)
		}
		row := MultiplexRow{N: plan.n, Rounds: len(sched.Rounds), Estimated: perf.Estimated}
		for _, ev := range plan.events {
			cell := MultiplexCell{
				Event:    ev,
				Reported: perf.Totals[ev],
				Scale:    1.0,
				Exact:    exact[ev],
			}
			if s, ok := perf.Scale[ev]; ok {
				cell.Scale = s
			}
			if cell.Exact > 0 {
				cell.ErrPct = (float64(cell.Reported) - float64(cell.Exact)) / float64(cell.Exact) * 100
			}
			row.Cells = append(row.Cells, cell)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Check asserts the sweep's physics: mixes within the counter budget count
// exactly (single round, no scaling), and every oversubscribed mix both
// rotates and shows real extrapolation error against the exact counts.
func (r *MultiplexResult) Check() error {
	var bad []string
	for _, row := range r.Rows {
		over := row.N > 4
		if !over {
			if row.Rounds != 1 {
				bad = append(bad, fmt.Sprintf("mix of %d: %d rounds, want 1", row.N, row.Rounds))
			}
			if row.Estimated {
				bad = append(bad, fmt.Sprintf("mix of %d: perf stat scaled a mix that fits the counters", row.N))
			}
			for _, c := range row.Cells {
				if c.Scale != 1.0 {
					bad = append(bad, fmt.Sprintf("mix of %d: %v scaled x%.3f without multiplexing", row.N, c.Event, c.Scale))
				}
			}
			continue
		}
		if row.Rounds < 2 {
			bad = append(bad, fmt.Sprintf("mix of %d: only %d round for >4 programmable events", row.N, row.Rounds))
		}
		if !row.Estimated {
			bad = append(bad, fmt.Sprintf("mix of %d: perf stat did not flag its totals as estimates", row.N))
		}
		scaled := false
		for _, c := range row.Cells {
			if c.Scale > 1.0 {
				scaled = true
			}
		}
		if !scaled {
			bad = append(bad, fmt.Sprintf("mix of %d: no event carries an enabled/running scale factor", row.N))
		}
		if row.MaxAbsErrPct() == 0 {
			bad = append(bad, fmt.Sprintf("mix of %d: scaled estimates match exact counts exactly (implausible)", row.N))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("multiplex sweep: %d violations:\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}

// Render writes the comparison table plus a pass/fail summary line.
func (r *MultiplexResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Multiplexing error — perf stat scaled estimates vs exact K-LEB counts (%s, 4 programmable counters)\n", r.Workload)
	fmt.Fprintf(w, "%3s %6s  %-31s %15s %8s %15s %9s\n",
		"N", "rounds", "event", "perf-stat", "scale", "exact", "err%")
	for _, row := range r.Rows {
		for i, c := range row.Cells {
			nCol, rCol := "", ""
			if i == 0 {
				nCol = fmt.Sprintf("%d", row.N)
				rCol = fmt.Sprintf("%d", row.Rounds)
			}
			fmt.Fprintf(w, "%3s %6s  %-31s %15d %8.3f %15d %+9.3f\n",
				nCol, rCol, c.Event, c.Reported, c.Scale, c.Exact, c.ErrPct)
		}
	}
	if err := r.Check(); err != nil {
		fmt.Fprintf(w, "FAIL: %v\n", err)
		return
	}
	fmt.Fprintf(w, "PASS: mixes within the counter budget count exactly; oversubscribed mixes rotate and carry estimation error\n")
}
