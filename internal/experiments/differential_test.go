package experiments

import (
	"bytes"
	"testing"

	"kleb/internal/ktime"
	"kleb/internal/workload"
)

// This file is the compiled-execution equivalence gate (DESIGN.md §13): the
// batched block-stream path must render every paper artifact byte-identical
// to the legacy per-step interpreter, at every worker count. The experiment
// set mirrors the BENCH_experiments.json representative set (table2, fig6,
// sweep) plus multiplex, each scaled down so the legacy runs stay CI-sized;
// equality of the *rendered* artifacts covers totals, per-tool sample
// counts, time series and the derived statistics in one comparison.

// differentialCases names each artifact and how to render it.
var differentialCases = []struct {
	name   string
	render func(t *testing.T, workers int) []byte
}{
	{"table2", func(t *testing.T, workers int) []byte {
		t.Helper()
		res, err := RunOverhead(OverheadConfig{Workload: WorkloadTriple, Trials: 2, Seed: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Render(&buf)
		return buf.Bytes()
	}},
	{"fig6", func(t *testing.T, workers int) []byte {
		t.Helper()
		res, err := RunMeltdown(MeltdownConfig{Rounds: 5, Seed: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Render(&buf)
		return buf.Bytes()
	}},
	{"sweep", func(t *testing.T, workers int) []byte {
		t.Helper()
		res, err := RunSweep(SweepConfig{
			Periods: []ktime.Duration{100 * ktime.Microsecond, ktime.Millisecond, 10 * ktime.Millisecond},
			Trials:  2, Seed: 1, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Render(&buf)
		return buf.Bytes()
	}},
	{"multiplex", func(t *testing.T, workers int) []byte {
		t.Helper()
		res, err := RunMultiplex(MultiplexConfig{Seed: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		res.Render(&buf)
		return buf.Bytes()
	}},
}

// TestCompiledMatchesLegacyExec renders each artifact once under the legacy
// interpreter (serial: the reference) and then under the compiled path at
// 1, 2 and 8 workers, requiring byte equality throughout. This is the proof
// obligation behind every batching shortcut the compiled path takes: memo
// replays, run-length pricing and idle fast-forward may only ever change
// wall-clock time, never a simulated observable.
func TestCompiledMatchesLegacyExec(t *testing.T) {
	if testing.Short() {
		t.Skip("legacy interpreter runs in -short mode")
	}
	if workload.LegacyExec() {
		t.Fatal("legacy exec already on at test entry")
	}
	for _, tc := range differentialCases {
		t.Run(tc.name, func(t *testing.T) {
			workload.SetLegacyExec(true)
			ref := tc.render(t, 1) //klebvet:allow emitguard -- every differentialCases entry sets render
			workload.SetLegacyExec(false)
			for _, workers := range []int{1, 2, 8} {
				if got := tc.render(t, workers); !bytes.Equal(got, ref) { //klebvet:allow emitguard -- every differentialCases entry sets render
					t.Errorf("compiled artifact (%d workers) differs from legacy interpreter.\n--- compiled ---\n%s--- legacy ---\n%s",
						workers, got, ref)
				}
			}
		})
	}
	workload.SetLegacyExec(false)
}
