package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// renderTailLat runs the default study at the given worker count and
// returns the rendered artifact.
func renderTailLat(t *testing.T, workers int) []byte {
	t.Helper()
	res, err := RunTailLat(TailLatConfig{Workers: workers})
	if err != nil {
		t.Fatalf("RunTailLat(workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	return buf.Bytes()
}

// TestTailLatGolden pins the study's rendered artifact byte for byte and
// requires every run at 1, 2 and 8 workers to reproduce it — the
// worker-count determinism contract every experiment in this package makes.
func TestTailLatGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full serve study in -short mode")
	}
	serial := renderTailLat(t, 1)

	path := filepath.Join("testdata", "taillat.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, serial, 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (regenerate with go test -run TailLat -update): %v", err)
		}
		if !bytes.Equal(serial, want) {
			t.Errorf("taillat artifact drifted from golden.\n--- got ---\n%s--- want ---\n%s", serial, want)
		}
	}

	for _, workers := range []int{2, 8} {
		if got := renderTailLat(t, workers); !bytes.Equal(got, serial) {
			t.Errorf("%d-worker artifact differs from serial run.\n--- got ---\n%s--- want ---\n%s", workers, got, serial)
		}
	}
}

// TestTailLatCheck asserts the study's own gate holds on the default
// configuration: requests conserved, nothing rejected, and K-LEB's p99
// inflation strictly below perf stat's and PAPI's in both scenarios.
func TestTailLatCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full serve study in -short mode")
	}
	res, err := RunTailLat(TailLatConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 2 {
		t.Fatalf("scenarios = %d, want open- and closed-loop", len(res.Scenarios))
	}
	for _, sc := range res.Scenarios {
		kleb, ok := sc.row("kleb")
		if !ok {
			t.Fatalf("%s: no kleb row", sc.Name)
		}
		if kleb.DeltaP99 <= 0 {
			t.Errorf("%s: K-LEB Δp99 = %dns, want positive (monitoring is never free)", sc.Name, kleb.DeltaP99)
		}
		bare, ok := sc.row("bare")
		if !ok || bare.Completed == 0 {
			t.Fatalf("%s: missing or empty bare baseline", sc.Name)
		}
	}
}
