package experiments

import (
	"fmt"
	"io"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/session"
	"kleb/internal/trace"
)

// busyBlock keeps the core busy so timer interrupts have something to
// preempt, as in real sampling.
func busyBlock() isa.Block {
	return isa.Block{
		Instr: 100_000, Loads: 25_000, Stores: 8_000, Branches: 10_000,
		Mem:  isa.MemPattern{Base: 0x9_0000_0000, Footprint: 64 << 10, Stride: 8},
		Priv: isa.User,
	}
}

// TimerRow reports the achieved period for one requested period on one
// timer facility.
type TimerRow struct {
	Facility    string // "user-timer" or "hrtimer"
	Requested   ktime.Duration
	AchievedAvg ktime.Duration
	JitterStd   ktime.Duration // standard deviation of inter-fire gaps
}

// TimerResult is the §II-C/§III timer-granularity study: user-space timers
// cannot beat the 10ms jiffy; the in-kernel HRTimer holds 100µs with
// microsecond jitter (and the jitter fraction grows as periods shrink).
type TimerResult struct {
	Rows []TimerRow
}

// RunTimers measures both facilities across a period sweep, fanning the
// independent measurements over the scheduler's pool.
func RunTimers(seed uint64, workers int) (*TimerResult, error) {
	periods := []ktime.Duration{
		100 * ktime.Microsecond,
		ktime.Millisecond,
		10 * ktime.Millisecond,
		50 * ktime.Millisecond,
	}
	type job struct {
		facility string
		period   ktime.Duration
	}
	var jobs []job
	for _, period := range periods {
		jobs = append(jobs, job{"user-timer", period})
	}
	for _, period := range periods {
		jobs = append(jobs, job{"hrtimer", period})
	}
	rows := make([]TimerRow, len(jobs))
	errs := make([]error, len(jobs))
	session.Scheduler{Workers: workers}.ForEach(len(jobs), func(i int) {
		switch jobs[i].facility {
		case "user-timer":
			rows[i], errs[i] = measureUserTimer(seed, jobs[i].period)
		default:
			rows[i], errs[i] = measureHRTimer(seed, jobs[i].period)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &TimerResult{Rows: rows}, nil
}

// measureUserTimer runs a process on a user-space interval timer
// (setitimer-style absolute arming, the best user space can do without a
// kernel module) and measures the achieved gaps: anything below the jiffy
// is silently degraded to 10ms.
func measureUserTimer(seed uint64, period ktime.Duration) (TimerRow, error) {
	const iterations = 60
	var fires []ktime.Time
	_, err := session.Run(session.Spec{
		Profile:    machine.Nehalem(),
		Seed:       seed,
		TargetName: "timer-loop",
		NewTarget: func() kernel.Program {
			n := 0
			return kernel.ProgramFunc(func(k *kernel.Kernel, p *kernel.Process) kernel.Op {
				if n > 0 {
					fires = append(fires, k.Now())
				}
				if n >= iterations {
					return kernel.OpExit{}
				}
				n++
				next := (uint64(k.Now())/uint64(period) + 1) * uint64(period)
				return kernel.OpSleep{Until: ktime.Time(next)}
			})
		},
	})
	if err != nil {
		return TimerRow{}, err
	}
	avg, std := gapStats(fires)
	return TimerRow{Facility: "user-timer", Requested: period, AchievedAvg: avg, JitterStd: std}, nil
}

// measureHRTimer arms an in-kernel periodic HRTimer while a busy process
// keeps the CPU non-idle, and measures handler-invocation gaps.
func measureHRTimer(seed uint64, period ktime.Duration) (TimerRow, error) {
	const iterations = 60
	var fires []ktime.Time
	done := false
	_, err := session.Run(session.Spec{
		Profile:    machine.Nehalem(),
		Seed:       seed,
		TargetName: "busy",
		OnBoot: func(m *machine.Machine) {
			m.Kernel().StartHRTimer(period, period, func(k *kernel.Kernel, t *kernel.HRTimer) bool {
				fires = append(fires, k.Now())
				if len(fires) >= iterations {
					done = true
					return false
				}
				return true
			})
		},
		NewTarget: func() kernel.Program {
			return kernel.ProgramFunc(func(k *kernel.Kernel, p *kernel.Process) kernel.Op {
				if done {
					return kernel.OpExit{}
				}
				return kernel.OpExec{Block: busyBlock()}
			})
		},
	})
	if err != nil {
		return TimerRow{}, err
	}
	avg, std := gapStats(fires)
	return TimerRow{Facility: "hrtimer", Requested: period, AchievedAvg: avg, JitterStd: std}, nil
}

func gapStats(fires []ktime.Time) (avg, std ktime.Duration) {
	if len(fires) < 2 {
		return 0, 0
	}
	gaps := make([]float64, 0, len(fires)-1)
	for i := 1; i < len(fires); i++ {
		gaps = append(gaps, float64(fires[i].Sub(fires[i-1])))
	}
	s := trace.Summarize(gaps)
	return ktime.Duration(s.Mean), ktime.Duration(s.Stddev)
}

// Render writes the timer study.
func (r *TimerResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Timer granularity — requested vs achieved period (jiffy=10ms, HRTimer=ns-class)")
	fmt.Fprintf(w, "%-12s %12s %12s %12s\n", "facility", "requested", "achieved", "jitter-std")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %12v %12v %12v\n", row.Facility, row.Requested, row.AchievedAvg, row.JitterStd)
	}
}
