package experiments

import (
	"fmt"
	"io"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/trace"
	"kleb/internal/workload"
)

// MeltdownConfig parameterizes Fig 6 and Fig 7.
type MeltdownConfig struct {
	// Rounds averages the per-run counts (the paper uses 100).
	Rounds int
	// Period is K-LEB's sampling interval — 100µs, the headline rate a
	// 10ms tool cannot approach.
	Period ktime.Duration
	// Seed bases the round seeds.
	Seed uint64
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS).
	Workers int
}

func (c *MeltdownConfig) defaults() {
	if c.Rounds == 0 {
		c.Rounds = 100
	}
	if c.Period == 0 {
		c.Period = 100 * ktime.Microsecond
	}
}

// MeltdownSide is the victim-only or victim+attack measurement.
type MeltdownSide struct {
	Name          string
	LLCRefs       float64 // mean per run
	LLCMisses     float64
	Instructions  float64
	MPKI          float64
	MeanSamples   float64 // K-LEB samples per run at 100µs
	MeanElapsed   ktime.Duration
	PerfStatSmpls float64 // samples a 10ms tool gets for the same run
	// Series is one representative run's 100µs time series (Fig 7).
	SeriesEvents []isa.Event
	Series       map[isa.Event][]uint64
}

// MeltdownResult holds both sides.
type MeltdownResult struct {
	Victim MeltdownSide
	Attack MeltdownSide
}

// RunMeltdown regenerates Fig 6 (average LLC references/misses with and
// without the attack) and Fig 7 (the 100µs time series localizing the
// attack window), plus the §IV-C observation that a 10ms tool collects at
// most one sample of the victim.
func RunMeltdown(cfg MeltdownConfig) (*MeltdownResult, error) {
	cfg.defaults()
	m := workload.NewMeltdown()
	res := &MeltdownResult{}
	var err error
	res.Victim, err = runMeltdownSide(cfg, "victim", m.VictimScript())
	if err != nil {
		return nil, err
	}
	res.Attack, err = runMeltdownSide(cfg, "victim+meltdown", m.AttackScript())
	if err != nil {
		return nil, err
	}
	return res, nil
}

func runMeltdownSide(cfg MeltdownConfig, name string, script workload.Script) (MeltdownSide, error) {
	events := []isa.Event{isa.EvLLCRefs, isa.EvLLCMisses, isa.EvInstructions}
	side := MeltdownSide{Name: name, SeriesEvents: events, Series: map[isa.Event][]uint64{}}
	specs := make([]session.Spec, cfg.Rounds)
	for round := range specs {
		specs[round] = session.Spec{
			Profile:    ProfileFor(KLEB),
			Seed:       cfg.Seed + uint64(round)*31337,
			TargetName: name,
			NewTarget:  targetFactory(script),
			NewTool:    toolFactory(KLEB, 0),
			Config:     monitor.Config{Events: events, Period: cfg.Period, ExcludeKernel: true},
		}
	}
	runs, err := runAll(cfg.Workers, specs)
	if err != nil {
		return side, err
	}
	for round := 0; round < cfg.Rounds; round++ {
		run := runs[round]
		side.LLCRefs += float64(run.Result.Totals[isa.EvLLCRefs])
		side.LLCMisses += float64(run.Result.Totals[isa.EvLLCMisses])
		side.Instructions += float64(run.Result.Totals[isa.EvInstructions])
		side.MeanSamples += float64(len(run.Result.Samples))
		side.MeanElapsed += run.Elapsed
		if round == 0 {
			for _, ev := range events {
				side.Series[ev] = run.Result.SeriesFor(ev)
			}
		}
	}
	n := float64(cfg.Rounds)
	side.LLCRefs /= n
	side.LLCMisses /= n
	side.Instructions /= n
	side.MeanSamples /= n
	side.MeanElapsed = ktime.Duration(float64(side.MeanElapsed) / n)
	side.MPKI = side.LLCMisses / (side.Instructions / 1000)
	side.PerfStatSmpls = side.MeanElapsed.Seconds() / (10 * ktime.Millisecond).Seconds()
	return side, nil
}

// Render writes Fig 6/Fig 7 in text form.
func (r *MeltdownResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 6 — Meltdown comparison (means per run, K-LEB @100µs)")
	fmt.Fprintf(w, "%-18s %14s %14s %10s %10s %12s %14s\n",
		"program", "LLC refs", "LLC misses", "MPKI", "samples", "elapsed", "10ms samples")
	for _, s := range []MeltdownSide{r.Victim, r.Attack} {
		fmt.Fprintf(w, "%-18s %14.0f %14.0f %10.2f %10.1f %12v %14.1f\n",
			s.Name, s.LLCRefs, s.LLCMisses, s.MPKI, s.MeanSamples, s.MeanElapsed, s.PerfStatSmpls)
	}
	fmt.Fprintln(w, "\nFig 7 — 100µs LLC time series (sparklines over sample index)")
	for _, s := range []MeltdownSide{r.Victim, r.Attack} {
		for _, ev := range s.SeriesEvents[:2] {
			fmt.Fprintf(w, "%-18s %-16s |%s|\n", s.Name, ev, trace.Sparkline(s.Series[ev], 64))
		}
	}
}
