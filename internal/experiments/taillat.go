package experiments

import (
	"fmt"
	"io"
	"strings"

	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/telemetry"
	"kleb/internal/workload"
)

// The tail-latency study measures what each monitoring mechanism does to a
// *served* workload rather than a batch one: the request-serving model
// (internal/workload serve.go) couples its queueing capacity to the
// instructions the target actually retires per unit of virtual time, so a
// tool's overhead — timer IRQs, strategic-point syscalls, competing
// processes, cache pollution — surfaces as lost capacity, higher
// utilization, and an inflated latency tail. Arrivals are paired across
// runs (per-request randomness is reseeded from the request index), so for
// one trial seed every tool serves the identical offered load and the p99
// differences are attributable to the monitor alone. Percentiles are exact
// (telemetry.ExactQuantiles), not log2-bucketed: the effects of interest
// are far below the Histogram's factor-of-two resolution.

// TailLatConfig parameterizes the study.
type TailLatConfig struct {
	// Tools are the monitors to compare (default all five).
	Tools []ToolKind
	// Period is the sampling interval (default 10ms, the user-tool floor).
	Period ktime.Duration
	// Trials is the number of seeds per tool (default 3).
	Trials int
	// Seed roots the per-trial seed derivation.
	Seed uint64
	// Users is the closed-loop scenario's population (default 2 million —
	// the generator keeps only an aggregate think count, so the population
	// is free).
	Users uint64
	// Think is the closed-loop mean think time (default 5300s, sized so
	// the offered rate matches the open-loop scenario's).
	Think ktime.Duration
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS).
	Workers int
}

func (c *TailLatConfig) defaults() {
	if len(c.Tools) == 0 {
		c.Tools = AllTools()
	}
	if c.Period == 0 {
		c.Period = 10 * ktime.Millisecond
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Users == 0 {
		c.Users = 2_000_000
	}
	if c.Think == 0 {
		c.Think = 5300 * ktime.Second
	}
}

// TailLatRow is one monitor's (or baseline's) aggregated outcome within a
// scenario: percentiles over the merged per-trial latency populations.
type TailLatRow struct {
	// Tool is the monitor, or "bare" for an unmonitored baseline.
	Tool string
	// Machine is the profile the runs used (LiMiT needs the patched one).
	Machine string
	// Unsupported carries the attach error when the tool cannot run.
	Unsupported string

	P50, P99, P999, Max ktime.Duration
	// DeltaP99 is P99 minus the same-machine bare P99 (signed: a negative
	// value would mean monitoring shortened the tail, which Check rejects).
	DeltaP99 int64
	// Throughput is completed requests per virtual second, mean of trials.
	Throughput float64

	// Conservation totals, summed over trials.
	Arrivals, Completed, Rejected, InFlightAtEnd, ClonesCancelled uint64
}

// TailLatScenario is one traffic shape's table.
type TailLatScenario struct {
	// Name is "open-loop" or "closed-loop".
	Name string
	// Load describes the generator configuration.
	Load string
	// Rows: the bare baseline(s) first, then one row per tool.
	Rows []TailLatRow
}

// TailLatResult is the complete study output.
type TailLatResult struct {
	Period    ktime.Duration
	Trials    int
	Scenarios []TailLatScenario
}

// RunTailLat runs both traffic scenarios: for each trial seed, one bare run
// per machine profile and one monitored run per tool on the same seed, all
// serving the identical (paired) request sequence. Baselines run as the
// first scheduler batch because the instrumented tools' strategic-point
// counts are sized from the bare elapsed time (as in RunOverhead).
func RunTailLat(cfg TailLatConfig) (*TailLatResult, error) {
	cfg.defaults()
	res := &TailLatResult{Period: cfg.Period, Trials: cfg.Trials}

	open := workload.NewServe()
	closed := workload.NewServe().ClosedLoop(cfg.Users, cfg.Think)
	scenarios := []struct {
		name  string
		load  string
		model workload.Serve
	}{
		{"open-loop", fmt.Sprintf("Poisson %g req/s", open.ArrivalsPerSec), open},
		{"closed-loop", fmt.Sprintf("%d users, %v mean think", cfg.Users, cfg.Think), closed},
	}
	for _, sc := range scenarios {
		table, err := runTailLatScenario(cfg, sc.model)
		if err != nil {
			return nil, fmt.Errorf("experiments: taillat %s: %w", sc.name, err)
		}
		table.Name, table.Load = sc.name, sc.load
		res.Scenarios = append(res.Scenarios, *table)
	}
	return res, nil
}

// tailTarget wraps a Serve model into a program factory that also exposes
// the per-run serving stats: specs run concurrently, so each run writes its
// program pointer to its own slot.
func tailTarget(model workload.Serve, seed uint64, slot *[]*workload.ServeProgram, ix int) func() kernel.Program {
	return func() kernel.Program {
		p := model.Program(seed)
		(*slot)[ix] = p
		return p
	}
}

func runTailLatScenario(cfg TailLatConfig, model workload.Serve) (*TailLatScenario, error) {
	// The profiles in play: Nehalem, plus LiMiT's patched machine if LiMiT
	// runs (its kernel is slower, so it gets its own baseline).
	var profiles []machine.Profile
	seen := map[string]bool{}
	for _, kind := range cfg.Tools {
		if p := ProfileFor(kind); !seen[p.Name] {
			seen[p.Name] = true
			profiles = append(profiles, p)
		}
	}

	// Batch 1: bare baselines, one per (profile, trial).
	baseProgs := make([]*workload.ServeProgram, len(profiles)*cfg.Trials)
	var baseSpecs []session.Spec
	for pi, prof := range profiles {
		for trial := 0; trial < cfg.Trials; trial++ {
			ix := pi*cfg.Trials + trial
			baseSpecs = append(baseSpecs, session.Spec{
				Profile:    prof,
				Seed:       session.DeriveSeed(cfg.Seed, trial),
				TargetName: model.Name,
				NewTarget:  tailTarget(model, session.DeriveSeed(cfg.Seed, trial), &baseProgs, ix),
			})
		}
	}
	baseRuns, err := runAll(cfg.Workers, baseSpecs)
	if err != nil {
		return nil, err
	}

	table := &TailLatScenario{}
	bareP99 := map[string]ktime.Duration{}
	for pi, prof := range profiles {
		row := TailLatRow{Tool: "bare", Machine: prof.Name}
		var lat telemetry.ExactQuantiles
		var tput float64
		for trial := 0; trial < cfg.Trials; trial++ {
			st := baseProgs[pi*cfg.Trials+trial].Stats()
			foldStats(&row, &lat, st)
			tput += st.Throughput()
		}
		fillRow(&row, &lat, tput, cfg.Trials)
		bareP99[prof.Name] = row.P99
		table.Rows = append(table.Rows, row)
	}

	// Batch 2: one monitored run per (tool, trial), paired on the trial
	// seed. Strategic-point counts match what a timer tool at Period
	// collects over the same-profile bare elapsed time.
	toolProgs := make([]*workload.ServeProgram, len(cfg.Tools)*cfg.Trials)
	profIx := map[string]int{}
	for pi, prof := range profiles {
		profIx[prof.Name] = pi
	}
	var specs []session.Spec
	for ki, kind := range cfg.Tools {
		prof := ProfileFor(kind)
		for trial := 0; trial < cfg.Trials; trial++ {
			base := baseRuns[profIx[prof.Name]*cfg.Trials+trial].Elapsed
			ix := ki*cfg.Trials + trial
			specs = append(specs, session.Spec{
				Profile:    prof,
				Seed:       session.DeriveSeed(cfg.Seed, trial),
				TargetName: model.Name,
				NewTarget:  tailTarget(model, session.DeriveSeed(cfg.Seed, trial), &toolProgs, ix),
				NewTool:    toolFactory(kind, pointsFor(base, cfg.Period)),
				Config:     monitor.Config{Events: defaultEvents(), Period: cfg.Period, ExcludeKernel: true},
			})
		}
	}
	outs := session.Scheduler{Workers: cfg.Workers}.Run(specs)

	for ki, kind := range cfg.Tools {
		prof := ProfileFor(kind)
		row := TailLatRow{Tool: string(kind), Machine: prof.Name}
		var lat telemetry.ExactQuantiles
		var tput float64
		for trial := 0; trial < cfg.Trials; trial++ {
			o := outs[ki*cfg.Trials+trial]
			if o.Err != nil {
				// A tool that cannot run this configuration fails on its
				// first trial; any later failure is a real error.
				if trial == 0 {
					row.Unsupported = o.Err.Error()
					break
				}
				return nil, o.Err
			}
			st := toolProgs[ki*cfg.Trials+trial].Stats()
			foldStats(&row, &lat, st)
			tput += st.Throughput()
		}
		if row.Unsupported == "" {
			fillRow(&row, &lat, tput, cfg.Trials)
			row.DeltaP99 = int64(row.P99) - int64(bareP99[prof.Name])
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// foldStats accumulates one run's serving outcome into a row.
func foldStats(row *TailLatRow, lat *telemetry.ExactQuantiles, st *workload.ServeStats) {
	row.Arrivals += st.Arrivals
	row.Completed += st.Completed
	row.Rejected += st.Rejected
	row.InFlightAtEnd += st.InFlightAtEnd
	row.ClonesCancelled += st.ClonesCancelled
	lat.Merge(&st.Latency)
}

// fillRow computes the row's percentile and throughput summary.
func fillRow(row *TailLatRow, lat *telemetry.ExactQuantiles, tputSum float64, trials int) {
	row.P50 = ktime.Duration(lat.Quantile(0.5))
	row.P99 = ktime.Duration(lat.Quantile(0.99))
	row.P999 = ktime.Duration(lat.Quantile(0.999))
	row.Max = ktime.Duration(lat.Max())
	row.Throughput = tputSum / float64(trials)
}

// row looks up a tool's row within a scenario.
func (s *TailLatScenario) row(tool string) (TailLatRow, bool) {
	for _, r := range s.Rows {
		if r.Tool == tool {
			return r, true
		}
	}
	return TailLatRow{}, false
}

// Check asserts the study's invariants: request conservation with no
// admission rejections, monotone percentiles, no tool *shortening* the
// tail, and the paper's headline ordering — K-LEB's p99 inflation strictly
// below perf stat's and PAPI's.
func (r *TailLatResult) Check() error {
	var bad []string
	for _, sc := range r.Scenarios {
		for _, row := range sc.Rows {
			if row.Unsupported != "" {
				continue
			}
			if row.Arrivals != row.Completed+row.Rejected+row.InFlightAtEnd {
				bad = append(bad, fmt.Sprintf("%s/%s: %d arrivals != %d completed + %d rejected + %d in flight",
					sc.Name, row.Tool, row.Arrivals, row.Completed, row.Rejected, row.InFlightAtEnd))
			}
			if row.Rejected != 0 {
				bad = append(bad, fmt.Sprintf("%s/%s: %d admission rejections (load is miscalibrated)", sc.Name, row.Tool, row.Rejected))
			}
			if row.P50 > row.P99 || row.P99 > row.P999 || row.P999 > row.Max {
				bad = append(bad, fmt.Sprintf("%s/%s: percentiles not monotone: p50=%v p99=%v p999=%v max=%v",
					sc.Name, row.Tool, row.P50, row.P99, row.P999, row.Max))
			}
			if row.Tool != "bare" && row.DeltaP99 < 0 {
				bad = append(bad, fmt.Sprintf("%s/%s: monitoring shortened the tail (Δp99 = %dns)", sc.Name, row.Tool, row.DeltaP99))
			}
		}
		kleb, haveK := sc.row(string(KLEB))
		if !haveK || kleb.Unsupported != "" {
			continue
		}
		for _, other := range []ToolKind{PerfStat, PAPI} {
			o, ok := sc.row(string(other))
			if !ok || o.Unsupported != "" {
				continue
			}
			if kleb.DeltaP99 >= o.DeltaP99 {
				bad = append(bad, fmt.Sprintf("%s: K-LEB Δp99 (%dns) not strictly below %s's (%dns)",
					sc.Name, kleb.DeltaP99, other, o.DeltaP99))
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("tail-latency study: %d violations:\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}

// Render writes the per-scenario tables plus a pass/fail summary line.
func (r *TailLatResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Tail latency under monitoring — 3-tier serve workload, exact percentiles (period %v, %d trials)\n",
		r.Period, r.Trials)
	for _, sc := range r.Scenarios {
		fmt.Fprintf(w, "== %s (%s) ==\n", sc.Name, sc.Load)
		fmt.Fprintf(w, "%-11s %-20s %11s %11s %11s %11s %11s %9s %9s %9s\n",
			"tool", "machine", "p50(ms)", "p99(ms)", "p999(ms)", "max(ms)", "Δp99", "req/s", "completed", "cancelled")
		for _, row := range sc.Rows {
			if row.Unsupported != "" {
				fmt.Fprintf(w, "%-11s %-20s n/a — %s\n", row.Tool, row.Machine, row.Unsupported)
				continue
			}
			delta := "—"
			if row.Tool != "bare" {
				delta = fmt.Sprintf("%+.3fms", float64(row.DeltaP99)/1e6)
			}
			fmt.Fprintf(w, "%-11s %-20s %11.3f %11.3f %11.3f %11.3f %11s %9.1f %9d %9d\n",
				row.Tool, row.Machine,
				row.P50.Milliseconds(), row.P99.Milliseconds(),
				row.P999.Milliseconds(), row.Max.Milliseconds(),
				delta, row.Throughput, row.Completed, row.ClonesCancelled)
		}
	}
	if err := r.Check(); err != nil {
		fmt.Fprintf(w, "FAIL: %v\n", err)
		return
	}
	fmt.Fprintf(w, "PASS: requests conserved with no rejections; K-LEB inflates p99 strictly less than perf stat and PAPI in both scenarios\n")
}
