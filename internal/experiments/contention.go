package experiments

import (
	"fmt"
	"io"

	"kleb/internal/anomaly"
	"kleb/internal/isa"
	"kleb/internal/kleb"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/workload"
)

// Online contention detection across cores: K-LEB watches an LLC-resident
// container on core 0 while, mid-run, a streaming neighbour starts on
// core 1 of the same socket. The victim's MPKI series jumps the moment the
// neighbour begins evicting its working set — the live signal a
// contention-aware scheduler (§IV-B) would act on, observable only because
// the sampling is fast enough to catch it in flight.

// ContentionResult is the study's outcome.
type ContentionResult struct {
	// VictimSamples is the victim's collected series (MPKI derivable).
	Events []isa.Event
	// BeforeMPKI and AfterMPKI are the victim's mean MPKI before and after
	// the neighbour starts.
	BeforeMPKI, AfterMPKI float64
	// NeighbourStart is when the stream began.
	NeighbourStart ktime.Time
	// DetectedAt is when a CUSUM detector over the victim's LLC misses
	// first flags (zero = never).
	DetectedAt ktime.Time
	// Latency is DetectedAt - NeighbourStart.
	Latency ktime.Duration
}

// RunContention performs the study at a 1ms sampling period.
func RunContention(seed uint64) (*ContentionResult, error) {
	events := []isa.Event{isa.EvLLCMisses, isa.EvInstructions}
	tool := kleb.New()
	start := ktime.Time(700 * ktime.Millisecond)
	_, err := session.RunCluster(session.ClusterSpec{
		Profile: ProfileFor(KLEB),
		Seed:    seed,
		Cores:   2,
		Place: func(cores []*machine.Machine) error {
			// Victim: the LLC-resident container, monitored by K-LEB on
			// core 0.
			img, _ := workload.ImageByName("mysql")
			_, err := session.StartTarget(cores[0], "mysql", img.ScriptAt(0).Program(), tool, monitor.Config{
				Events: events, Period: ktime.Millisecond, ExcludeKernel: true,
			})
			return err
		},
		Drive: func(c *machine.Cluster) error {
			// Run the socket until the victim is half done, then unleash
			// the streaming neighbour on core 1.
			if err := c.Run(0, ktime.Duration(start)); err != nil {
				return err
			}
			stream := workload.Synthetic{
				Name:       "stream",
				TotalInstr: 2_500_000_000,
				BlockInstr: 400_000,
				LoadsPerK:  350,
				Footprint:  64 << 20,
			}.Script()
			c.Cores()[1].Kernel().Spawn("stream", stream.Program())
			return c.Run(0, 0)
		},
	})
	if err != nil {
		return nil, err
	}

	result := tool.Collect()
	res := &ContentionResult{Events: events, NeighbourStart: start}

	// Split the victim's MPKI series at the neighbour start.
	var bMiss, bInstr, aMiss, aInstr float64
	for _, s := range result.Samples {
		if s.Time < start {
			bMiss += float64(s.Deltas[0])
			bInstr += float64(s.Deltas[1])
		} else {
			aMiss += float64(s.Deltas[0])
			aInstr += float64(s.Deltas[1])
		}
	}
	if bInstr > 0 {
		res.BeforeMPKI = bMiss / (bInstr / 1000)
	}
	if aInstr > 0 {
		res.AfterMPKI = aMiss / (aInstr / 1000)
	}

	// Online detection with a CUSUM over the LLC miss rate.
	det, err := anomaly.NewCUSUMDetector(events, isa.EvLLCMisses)
	if err != nil {
		return nil, err
	}
	// Warm-up must cover the victim's cold start so only the neighbour's
	// arrival registers as a change.
	det.Warmup = 400
	rep := anomaly.Scan(det, result.Samples)
	res.DetectedAt = rep.FirstFlag
	if res.DetectedAt > res.NeighbourStart {
		res.Latency = res.DetectedAt.Sub(res.NeighbourStart)
	}
	return res, nil
}

// Render writes the study summary.
func (r *ContentionResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Cross-core contention detection — K-LEB on the victim, stream on the sibling core")
	fmt.Fprintf(w, "victim MPKI before neighbour: %8.2f\n", r.BeforeMPKI)
	fmt.Fprintf(w, "victim MPKI after neighbour:  %8.2f\n", r.AfterMPKI)
	fmt.Fprintf(w, "neighbour started at %v; CUSUM flagged at %v (latency %v)\n",
		r.NeighbourStart, r.DetectedAt, r.Latency)
}
