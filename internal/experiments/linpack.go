package experiments

import (
	"fmt"
	"io"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/trace"
	"kleb/internal/workload"
)

// LinpackConfig parameterizes Table I and Fig 4.
type LinpackConfig struct {
	// N is the LINPACK problem size (the paper uses 5000).
	N uint64
	// Trials averages the runs (the paper uses 10).
	Trials int
	// Period is the sampling interval (10ms, to accommodate the long run).
	Period ktime.Duration
	// Seed bases the trial seeds.
	Seed uint64
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS).
	Workers int
}

func (c *LinpackConfig) defaults() {
	if c.N == 0 {
		c.N = 5000
	}
	if c.Trials == 0 {
		c.Trials = 10
	}
	if c.Period == 0 {
		c.Period = 10 * ktime.Millisecond
	}
}

// LinpackRow is one profiling configuration's Table I entry.
type LinpackRow struct {
	Tool    string // "none" for the unprofiled run
	GFLOPS  float64
	LossPct float64
}

// LinpackResult holds Table I plus the Fig 4 time series.
type LinpackResult struct {
	N      uint64
	Trials int
	Rows   []LinpackRow
	// Series is the Fig 4 data: per-event sample deltas averaged across
	// trials (from the K-LEB runs), in sample order.
	SeriesEvents []isa.Event
	Series       map[isa.Event][]float64
}

// RunLinpack regenerates Table I (GFLOPS under {none, K-LEB, perf stat,
// perf record}) and Fig 4 (the ARITH.MUL / LOAD / STORE phase series
// collected by K-LEB).
func RunLinpack(cfg LinpackConfig) (*LinpackResult, error) {
	cfg.defaults()
	lp := workload.NewLinpack(cfg.N)
	script := lp.Script()
	flops := float64(lp.Flops())

	events := []isa.Event{isa.EvMulOps, isa.EvLoads, isa.EvStores}
	res := &LinpackResult{
		N: cfg.N, Trials: cfg.Trials,
		SeriesEvents: events,
		Series:       make(map[isa.Event][]float64),
	}

	// One batch covers every configuration: the unprofiled baseline plus one
	// block of trials per tool, all independent runs.
	kinds := []ToolKind{KLEB, PerfStat, PerfRecord}
	var specs []session.Spec
	addBlock := func(kind ToolKind, withTool bool) {
		for trial := 0; trial < cfg.Trials; trial++ {
			spec := session.Spec{
				Profile:    ProfileFor(KLEB),
				Seed:       cfg.Seed + uint64(trial)*104729,
				NewTarget:  targetFactory(script),
				TargetName: "linpack",
			}
			if withTool {
				spec.NewTool = toolFactory(kind, 0)
				spec.Config = monitor.Config{Events: events, Period: cfg.Period, ExcludeKernel: true}
			}
			specs = append(specs, spec)
		}
	}
	addBlock("", false)
	for _, kind := range kinds {
		addBlock(kind, true)
	}
	runs, err := runAll(cfg.Workers, specs)
	if err != nil {
		return nil, err
	}

	gflopsFor := func(block int) float64 {
		var total float64
		for trial := 0; trial < cfg.Trials; trial++ {
			total += flops / 1e9 / runs[block*cfg.Trials+trial].Elapsed.Seconds()
		}
		return total / float64(cfg.Trials)
	}
	baseGF := gflopsFor(0)
	res.Rows = append(res.Rows, LinpackRow{Tool: "none", GFLOPS: baseGF})
	for ki, kind := range kinds {
		if kind == KLEB {
			for trial := 0; trial < cfg.Trials; trial++ {
				res.accumulateSeries(runs[(ki+1)*cfg.Trials+trial].Result)
			}
		}
		gf := gflopsFor(ki + 1)
		res.Rows = append(res.Rows, LinpackRow{
			Tool:    string(kind),
			GFLOPS:  gf,
			LossPct: 100 * (baseGF - gf) / baseGF,
		})
	}
	// Average the accumulated series over the K-LEB trials.
	for _, ev := range events {
		for i := range res.Series[ev] {
			res.Series[ev][i] /= float64(cfg.Trials)
		}
	}
	return res, nil
}

// accumulateSeries folds one K-LEB run's sample series into the average.
func (r *LinpackResult) accumulateSeries(result monitor.Result) {
	for _, ev := range r.SeriesEvents {
		series := result.SeriesFor(ev)
		acc := r.Series[ev]
		for len(acc) < len(series) {
			acc = append(acc, 0)
		}
		for i, v := range series {
			acc[i] += float64(v)
		}
		r.Series[ev] = acc
	}
}

// Row looks up a Table I row by tool name.
func (r *LinpackResult) Row(tool string) (LinpackRow, bool) {
	for _, row := range r.Rows {
		if row.Tool == tool {
			return row, true
		}
	}
	return LinpackRow{}, false
}

// Render writes Table I and a sparkline rendering of Fig 4.
func (r *LinpackResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Table I — LINPACK (N=%d, %d trials) GFLOPS across profiling tools\n", r.N, r.Trials)
	fmt.Fprintf(w, "%-12s %10s %10s\n", "tool", "GFLOPS", "loss%")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %10.2f %10.2f\n", row.Tool, row.GFLOPS, row.LossPct)
	}
	fmt.Fprintf(w, "\nFig 4 — LINPACK phase behaviour via K-LEB (one char ≈ %d samples)\n",
		maxInt(1, seriesLen(r)/72))
	for _, ev := range r.SeriesEvents {
		ser := make([]uint64, len(r.Series[ev]))
		for i, v := range r.Series[ev] {
			ser[i] = uint64(v)
		}
		fmt.Fprintf(w, "%-24s |%s|\n", ev, trace.Sparkline(ser, 72))
	}
}

func seriesLen(r *LinpackResult) int {
	for _, s := range r.Series {
		return len(s)
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
