package experiments

import (
	"reflect"
	"testing"
)

// TestChaosInvariant is the fault layer's core proof: across seeded fault
// plans every run terminates and conserves its sampling periods.
func TestChaosInvariant(t *testing.T) {
	res, err := RunChaos(ChaosConfig{Seeds: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	// The sweep must actually exercise the fault paths, not pass vacuously:
	// across 8 plans at least one run loses periods to faults and at least
	// one degrades.
	lost, degraded := uint64(0), 0
	for _, row := range res.Rows {
		lost += row.LostFault
		if row.Degraded {
			degraded++
		}
	}
	if lost == 0 {
		t.Error("no run lost a single period to faults — plans not injecting")
	}
	if degraded == 0 {
		t.Error("no run degraded — hard-fault paths not exercised")
	}
}

// TestChaosDeterministicAcrossWorkers locks the sweep's scheduling
// independence: per-run fault plans and seeds are private, so the rows must
// be bit-identical at any worker count.
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	cfg := ChaosConfig{Seeds: 6}
	sweep := func(workers int) []ChaosRow {
		c := cfg
		c.Workers = workers
		res, err := RunChaos(c)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows
	}
	one := sweep(1)
	for _, workers := range []int{2, 8} {
		if got := sweep(workers); !reflect.DeepEqual(one, got) {
			t.Errorf("sweep diverged between 1 and %d workers:\n1: %+v\n%d: %+v",
				workers, one, workers, got)
		}
	}
}
