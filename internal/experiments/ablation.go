package experiments

import (
	"fmt"
	"io"

	"kleb/internal/kleb"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/trace"
	"kleb/internal/workload"
)

// The design-choice ablations DESIGN.md §6 calls out: how large the kernel
// ring buffer must be, and how often the controller should drain it, for
// the safety mechanism to stay dormant at the 100µs headline rate.

// BufferAblationConfig parameterizes the ring-size sweep.
type BufferAblationConfig struct {
	// Sizes are the ring capacities to sweep (defaults: 64 → 8192).
	Sizes []int
	// Period is the sampling interval (default 100µs).
	Period ktime.Duration
	// DrainInterval fixes the controller cadence (default 50ms).
	DrainInterval ktime.Duration
	// Seed drives the runs.
	Seed uint64
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS).
	Workers int
}

func (c *BufferAblationConfig) defaults() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{64, 128, 256, 512, 1024, 4096}
	}
	if c.Period == 0 {
		c.Period = 100 * ktime.Microsecond
	}
	if c.DrainInterval == 0 {
		c.DrainInterval = 50 * ktime.Millisecond
	}
}

// BufferAblationRow is one ring size's outcome.
type BufferAblationRow struct {
	Size int
	// Collected counts samples kept; Dropped counts sampling periods lost
	// to the buffer-full safety pause (collection suspends until the next
	// drain but the period clock keeps running).
	Collected int
	Dropped   uint64
	// CoveragePct is collected samples over the periods the run offered
	// (elapsed/period) — what the safety pauses cost in visibility.
	CoveragePct float64
	// OverheadPct is the run-time overhead at this configuration.
	OverheadPct float64
}

// BufferAblationResult is the sweep output.
type BufferAblationResult struct {
	Period        ktime.Duration
	DrainInterval ktime.Duration
	Rows          []BufferAblationRow
}

// RunBufferAblation sweeps the kernel ring size at a fixed drain cadence.
// Undersized rings trip the buffer-full safety pause (losing coverage, not
// correctness); the default 8192-sample ring keeps the pause dormant at
// 100µs with 50ms drains, which is the design point the module ships with.
func RunBufferAblation(cfg BufferAblationConfig) (*BufferAblationResult, error) {
	cfg.defaults()
	script := workload.Synthetic{
		Name:       "ablation-target",
		TotalInstr: 1_500_000_000, // ~330ms
		BlockInstr: 100_000,
		Footprint:  256 << 10,
	}.Script()
	res := &BufferAblationResult{Period: cfg.Period, DrainInterval: cfg.DrainInterval}

	// One batch: the unmonitored baseline plus one run per ring size.
	specs := []session.Spec{baselineSpec(ProfileFor(KLEB), cfg.Seed, script)}
	for _, size := range cfg.Sizes {
		specs = append(specs, session.Spec{
			Profile:   ProfileFor(KLEB),
			Seed:      cfg.Seed,
			NewTarget: targetFactory(script),
			NewTool: func() (monitor.Tool, error) {
				tool := kleb.New()
				tool.BufferSamples = size
				tool.DrainInterval = cfg.DrainInterval
				return tool, nil
			},
			Config: monitor.Config{Events: defaultEvents(), Period: cfg.Period, ExcludeKernel: true},
		})
	}
	runs, err := runAll(cfg.Workers, specs)
	if err != nil {
		return nil, err
	}
	base := runs[0]

	for i, size := range cfg.Sizes {
		run := runs[i+1]
		row := BufferAblationRow{
			Size:        size,
			Collected:   len(run.Result.Samples),
			Dropped:     run.Result.Dropped,
			OverheadPct: trace.OverheadPct(base.Elapsed.Seconds(), run.Elapsed.Seconds()),
		}
		if expected := float64(run.Elapsed) / float64(cfg.Period); expected > 0 {
			row.CoveragePct = 100 * float64(row.Collected) / expected
			if row.CoveragePct > 100 {
				row.CoveragePct = 100
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the buffer ablation table.
func (r *BufferAblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Buffer-size ablation — %v sampling, %v drains (safety-pause behaviour)\n",
		r.Period, r.DrainInterval)
	fmt.Fprintf(w, "%10s %10s %10s %10s %10s\n", "ring", "collected", "dropped", "coverage%", "overhead%")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%10d %10d %10d %10.1f %10.2f\n",
			row.Size, row.Collected, row.Dropped, row.CoveragePct, row.OverheadPct)
	}
}

// DrainAblationConfig parameterizes the controller-cadence sweep.
type DrainAblationConfig struct {
	// Intervals are the controller drain cadences to sweep.
	Intervals []ktime.Duration
	// Period is the sampling interval (default 100µs).
	Period ktime.Duration
	// Seed drives the runs.
	Seed uint64
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS).
	Workers int
}

func (c *DrainAblationConfig) defaults() {
	if len(c.Intervals) == 0 {
		c.Intervals = []ktime.Duration{
			10 * ktime.Millisecond,
			50 * ktime.Millisecond,
			100 * ktime.Millisecond,
			400 * ktime.Millisecond,
		}
	}
	if c.Period == 0 {
		c.Period = 100 * ktime.Microsecond
	}
}

// DrainAblationRow is one cadence's outcome.
type DrainAblationRow struct {
	Interval    ktime.Duration
	Collected   int
	Dropped     uint64
	OverheadPct float64
}

// DrainAblationResult is the sweep output.
type DrainAblationResult struct {
	Period ktime.Duration
	Rows   []DrainAblationRow
}

// RunDrainAblation sweeps the controller's drain cadence at the default
// ring size: draining too eagerly wastes cycles on wakeups, draining too
// lazily risks the safety pause once the cadence outruns the ring.
func RunDrainAblation(cfg DrainAblationConfig) (*DrainAblationResult, error) {
	cfg.defaults()
	script := workload.Synthetic{
		Name:       "ablation-target",
		TotalInstr: 1_500_000_000,
		BlockInstr: 100_000,
		Footprint:  256 << 10,
	}.Script()
	res := &DrainAblationResult{Period: cfg.Period}

	// One batch: the unmonitored baseline plus one run per drain cadence.
	specs := []session.Spec{baselineSpec(ProfileFor(KLEB), cfg.Seed, script)}
	for _, interval := range cfg.Intervals {
		specs = append(specs, session.Spec{
			Profile:   ProfileFor(KLEB),
			Seed:      cfg.Seed,
			NewTarget: targetFactory(script),
			NewTool: func() (monitor.Tool, error) {
				tool := kleb.New()
				tool.DrainInterval = interval
				return tool, nil
			},
			Config: monitor.Config{Events: defaultEvents(), Period: cfg.Period, ExcludeKernel: true},
		})
	}
	runs, err := runAll(cfg.Workers, specs)
	if err != nil {
		return nil, err
	}
	base := runs[0]
	for i, interval := range cfg.Intervals {
		run := runs[i+1]
		res.Rows = append(res.Rows, DrainAblationRow{
			Interval:    interval,
			Collected:   len(run.Result.Samples),
			Dropped:     run.Result.Dropped,
			OverheadPct: trace.OverheadPct(base.Elapsed.Seconds(), run.Elapsed.Seconds()),
		})
	}
	return res, nil
}

// Render writes the drain ablation table.
func (r *DrainAblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Drain-interval ablation — %v sampling, default ring\n", r.Period)
	fmt.Fprintf(w, "%12s %10s %10s %10s\n", "drain", "collected", "dropped", "overhead%")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%12v %10d %10d %10.2f\n",
			row.Interval, row.Collected, row.Dropped, row.OverheadPct)
	}
}
