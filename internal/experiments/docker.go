package experiments

import (
	"fmt"
	"io"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/trace"
	"kleb/internal/workload"
)

// DockerConfig parameterizes Fig 5.
type DockerConfig struct {
	// Period is the sampling interval.
	Period ktime.Duration
	// Seed drives the runs.
	Seed uint64
	// BothMachines also runs the Cascade Lake profile to reproduce the
	// paper's cross-platform trend check.
	BothMachines bool
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS).
	Workers int
}

func (c *DockerConfig) defaults() {
	if c.Period == 0 {
		c.Period = 10 * ktime.Millisecond
	}
}

// DockerRow is one image's MPKI measurement on one machine.
type DockerRow struct {
	Image     string
	Machine   string
	LLCMisses uint64
	Instr     uint64
	MPKI      float64
	Class     workload.WorkloadClass // classification from the measurement
	Expected  workload.WorkloadClass // the paper's classification
}

// DockerResult is the Fig 5 dataset.
type DockerResult struct {
	Rows []DockerRow
}

// RunDocker regenerates Fig 5: K-LEB attaches to the Docker engine process
// for each image, follows the container child via lineage tracking, and
// the LLC-miss/instruction totals classify the image by MPKI. With
// BothMachines it repeats on the Cascade Lake profile and the MPKI *trend*
// must match even though absolute counts differ (§IV-B).
func RunDocker(cfg DockerConfig) (*DockerResult, error) {
	cfg.defaults()
	profiles := []machine.Profile{machine.Nehalem()}
	if cfg.BothMachines {
		profiles = append(profiles, machine.CascadeLake())
	}
	res := &DockerResult{}
	type job struct {
		prof machine.Profile
		img  workload.ContainerImage
	}
	var jobs []job
	var specs []session.Spec
	for _, prof := range profiles {
		for _, img := range workload.Images() {
			jobs = append(jobs, job{prof, img})
			specs = append(specs, session.Spec{
				Profile:    prof,
				Seed:       cfg.Seed + uint64(workload.ClassSeed(img.Name)),
				TargetName: "dockerd-" + img.Name,
				NewTarget:  func() kernel.Program { return workload.DockerRun(img) },
				NewTool:    toolFactory(KLEB, 0),
				Config: monitor.Config{
					Events:        []isa.Event{isa.EvLLCMisses, isa.EvInstructions},
					Period:        cfg.Period,
					ExcludeKernel: true,
				},
			})
		}
	}
	runs, err := runAll(cfg.Workers, specs)
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		misses := runs[i].Result.Totals[isa.EvLLCMisses]
		instr := runs[i].Result.Totals[isa.EvInstructions]
		mpki := trace.MPKI(misses, instr)
		res.Rows = append(res.Rows, DockerRow{
			Image:     j.img.Name,
			Machine:   j.prof.Name,
			LLCMisses: misses,
			Instr:     instr,
			MPKI:      mpki,
			Class:     workload.ClassifyMPKI(mpki),
			Expected:  j.img.Class,
		})
	}
	return res, nil
}

// RowsFor returns the rows measured on one machine profile.
func (r *DockerResult) RowsFor(machineName string) []DockerRow {
	var out []DockerRow
	for _, row := range r.Rows {
		if row.Machine == machineName {
			out = append(out, row)
		}
	}
	return out
}

// Render writes the Fig 5 table.
func (r *DockerResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 5 — LLC misses per kilo-instruction for Docker images (via K-LEB lineage tracking)")
	fmt.Fprintf(w, "%-10s %-22s %12s %14s %8s  %-24s %s\n",
		"image", "machine", "LLC misses", "instructions", "MPKI", "classified", "matches paper")
	for _, row := range r.Rows {
		match := "yes"
		if row.Class != row.Expected {
			match = "NO"
		}
		fmt.Fprintf(w, "%-10s %-22s %12d %14d %8.2f  %-24s %s\n",
			row.Image, row.Machine, row.LLCMisses, row.Instr, row.MPKI, row.Class, match)
	}
}
