package experiments

import (
	"fmt"
	"io"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/trace"
)

// AccuracyConfig parameterizes Fig 9.
type AccuracyConfig struct {
	// Workload is the monitored program (the paper uses the matmul).
	Workload Workload
	// Period is the sampling interval.
	Period ktime.Duration
	// Seed selects the run.
	Seed uint64
}

func (c *AccuracyConfig) defaults() {
	if c.Workload == "" {
		c.Workload = WorkloadTriple
	}
	if c.Period == 0 {
		c.Period = 10 * ktime.Millisecond
	}
}

// AccuracyRow compares one tool's per-event totals against K-LEB's.
type AccuracyRow struct {
	Tool        ToolKind
	Unsupported string
	// DiffPct maps each deterministic event to the percent difference in
	// whole-run count versus K-LEB (the paper's Fig 9 metric).
	DiffPct map[isa.Event]float64
	MaxPct  float64
}

// AccuracyResult is the Fig 9 dataset.
type AccuracyResult struct {
	Events []isa.Event
	KLEB   map[isa.Event]uint64
	Rows   []AccuracyRow
}

// RunAccuracy regenerates Fig 9: every tool monitors the same workload on
// the same seed; whole-run counts of the deterministic architectural
// events (branches, loads, stores, instructions) are compared pairwise
// against K-LEB. Differences come from gating edges, multiplexing and
// sampling quantization — nothing is hard-coded.
func RunAccuracy(cfg AccuracyConfig) (*AccuracyResult, error) {
	cfg.defaults()
	script, err := scriptFor(cfg.Workload)
	if err != nil {
		return nil, err
	}
	events := []isa.Event{isa.EvBranches, isa.EvLoads, isa.EvStores, isa.EvInstructions}
	mcfg := monitor.Config{Events: events, Period: cfg.Period, ExcludeKernel: true}

	totalsFor := func(kind ToolKind) (map[isa.Event]uint64, error) {
		// Instrumented tools need a point count; use a baseline estimate.
		base, err := monitor.Run(monitor.RunSpec{
			Profile:   ProfileFor(kind),
			Seed:      cfg.Seed,
			NewTarget: targetFactory(script),
		})
		if err != nil {
			return nil, err
		}
		tool, err := NewTool(kind, pointsFor(base.Elapsed, cfg.Period))
		if err != nil {
			return nil, err
		}
		run, err := monitor.Run(monitor.RunSpec{
			Profile:    ProfileFor(kind),
			Seed:       cfg.Seed,
			NewTarget:  targetFactory(script),
			TargetName: string(cfg.Workload),
			Tool:       tool,
			Config:     mcfg,
		})
		if err != nil {
			return nil, err
		}
		return run.Result.Totals, nil
	}

	kt, err := totalsFor(KLEB)
	if err != nil {
		return nil, err
	}
	res := &AccuracyResult{Events: events, KLEB: kt}
	for _, kind := range []ToolKind{PerfStat, PerfRecord, PAPI, LiMiT} {
		row := AccuracyRow{Tool: kind, DiffPct: map[isa.Event]float64{}}
		totals, err := totalsFor(kind)
		if err != nil {
			row.Unsupported = err.Error()
			res.Rows = append(res.Rows, row)
			continue
		}
		for _, ev := range events {
			d := trace.PercentDiff(kt[ev], totals[ev])
			row.DiffPct[ev] = d
			if d > row.MaxPct {
				row.MaxPct = d
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the Fig 9 table.
func (r *AccuracyResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 9 — % difference in whole-run event counts vs K-LEB (deterministic events)")
	fmt.Fprintf(w, "%-12s", "tool")
	for _, ev := range r.Events {
		fmt.Fprintf(w, " %22s", ev)
	}
	fmt.Fprintf(w, " %9s\n", "max")
	for _, row := range r.Rows {
		if row.Unsupported != "" {
			fmt.Fprintf(w, "%-12s  n/a (%s)\n", row.Tool, row.Unsupported)
			continue
		}
		fmt.Fprintf(w, "%-12s", row.Tool)
		for _, ev := range r.Events {
			fmt.Fprintf(w, " %22.5f", row.DiffPct[ev])
		}
		fmt.Fprintf(w, " %9.5f\n", row.MaxPct)
	}
}
