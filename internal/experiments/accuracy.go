package experiments

import (
	"fmt"
	"io"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/trace"
)

// AccuracyConfig parameterizes Fig 9.
type AccuracyConfig struct {
	// Workload is the monitored program (the paper uses the matmul).
	Workload Workload
	// Period is the sampling interval.
	Period ktime.Duration
	// Seed selects the run.
	Seed uint64
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS).
	Workers int
}

func (c *AccuracyConfig) defaults() {
	if c.Workload == "" {
		c.Workload = WorkloadTriple
	}
	if c.Period == 0 {
		c.Period = 10 * ktime.Millisecond
	}
}

// AccuracyRow compares one tool's per-event totals against K-LEB's.
type AccuracyRow struct {
	Tool        ToolKind
	Unsupported string
	// DiffPct maps each deterministic event to the percent difference in
	// whole-run count versus K-LEB (the paper's Fig 9 metric).
	DiffPct map[isa.Event]float64
	MaxPct  float64
}

// AccuracyResult is the Fig 9 dataset.
type AccuracyResult struct {
	Events []isa.Event
	KLEB   map[isa.Event]uint64
	Rows   []AccuracyRow
}

// RunAccuracy regenerates Fig 9: every tool monitors the same workload on
// the same seed; whole-run counts of the deterministic architectural
// events (branches, loads, stores, instructions) are compared pairwise
// against K-LEB. Differences come from gating edges, multiplexing and
// sampling quantization — nothing is hard-coded.
func RunAccuracy(cfg AccuracyConfig) (*AccuracyResult, error) {
	cfg.defaults()
	script, err := scriptFor(cfg.Workload)
	if err != nil {
		return nil, err
	}
	events := []isa.Event{isa.EvBranches, isa.EvLoads, isa.EvStores, isa.EvInstructions}
	mcfg := monitor.Config{Events: events, Period: cfg.Period, ExcludeKernel: true}

	// Batch 1: a baseline per tool's machine profile — the instrumented
	// tools size their point counts from the baseline's elapsed time.
	kinds := []ToolKind{KLEB, PerfStat, PerfRecord, PAPI, LiMiT}
	baseSpecs := make([]session.Spec, len(kinds))
	for i, kind := range kinds {
		baseSpecs[i] = baselineSpec(ProfileFor(kind), cfg.Seed, script)
	}
	baseOuts := session.Scheduler{Workers: cfg.Workers}.Run(baseSpecs)

	// Batch 2: the monitored runs, all on the same seed.
	runSpecs := make([]session.Spec, len(kinds))
	for i, kind := range kinds {
		if baseOuts[i].Err != nil {
			continue // surfaces as the row's Unsupported reason below
		}
		runSpecs[i] = session.Spec{
			Profile:    ProfileFor(kind),
			Seed:       cfg.Seed,
			NewTarget:  targetFactory(script),
			TargetName: string(cfg.Workload),
			NewTool:    toolFactory(kind, pointsFor(baseOuts[i].Run.Elapsed, cfg.Period)),
			Config:     mcfg,
		}
	}
	runOuts := session.Scheduler{Workers: cfg.Workers}.Run(runSpecs)

	totalsFor := func(i int) (map[isa.Event]uint64, error) {
		if baseOuts[i].Err != nil {
			return nil, baseOuts[i].Err
		}
		if runOuts[i].Err != nil {
			return nil, runOuts[i].Err
		}
		return runOuts[i].Run.Result.Totals, nil
	}

	kt, err := totalsFor(0)
	if err != nil {
		return nil, err
	}
	res := &AccuracyResult{Events: events, KLEB: kt}
	for i, kind := range kinds[1:] {
		row := AccuracyRow{Tool: kind, DiffPct: map[isa.Event]float64{}}
		totals, err := totalsFor(i + 1)
		if err != nil {
			row.Unsupported = err.Error()
			res.Rows = append(res.Rows, row)
			continue
		}
		for _, ev := range events {
			d := trace.PercentDiff(kt[ev], totals[ev])
			row.DiffPct[ev] = d
			if d > row.MaxPct {
				row.MaxPct = d
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the Fig 9 table.
func (r *AccuracyResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 9 — % difference in whole-run event counts vs K-LEB (deterministic events)")
	fmt.Fprintf(w, "%-12s", "tool")
	for _, ev := range r.Events {
		fmt.Fprintf(w, " %22s", ev)
	}
	fmt.Fprintf(w, " %9s\n", "max")
	for _, row := range r.Rows {
		if row.Unsupported != "" {
			fmt.Fprintf(w, "%-12s  n/a (%s)\n", row.Tool, row.Unsupported)
			continue
		}
		fmt.Fprintf(w, "%-12s", row.Tool)
		for _, ev := range r.Events {
			fmt.Fprintf(w, " %22.5f", row.DiffPct[ev])
		}
		fmt.Fprintf(w, " %9.5f\n", row.MaxPct)
	}
}
