package experiments

import (
	"fmt"
	"io"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/trace"
	"kleb/internal/workload"
)

// Workload characterization of the synthetic suite via K-LEB — the
// bread-and-butter IISWC exercise the tool exists for: one pass per
// benchmark collecting {instructions, cycles, LLC misses, branches, branch
// misses} and deriving the standard fingerprint metrics.

// CharacterizeConfig parameterizes the suite run.
type CharacterizeConfig struct {
	// Period is the sampling interval (default 1ms).
	Period ktime.Duration
	// Seed drives the runs.
	Seed uint64
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS).
	Workers int
}

func (c *CharacterizeConfig) defaults() {
	if c.Period == 0 {
		c.Period = ktime.Millisecond
	}
}

// CharacterizeRow is one benchmark's fingerprint.
type CharacterizeRow struct {
	Name, Family string
	Elapsed      ktime.Duration
	IPC          float64 // instructions per cycle
	MPKI         float64 // LLC misses per kilo-instruction
	BranchPct    float64 // branches per 100 instructions
	MissPer1KBr  float64 // mispredicts per kilo-branch
	Samples      int
}

// CharacterizeResult is the suite table.
type CharacterizeResult struct {
	Rows []CharacterizeRow
}

// Row looks up one benchmark.
func (r *CharacterizeResult) Row(name string) (CharacterizeRow, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row, true
		}
	}
	return CharacterizeRow{}, false
}

// RunCharacterize profiles every suite member under K-LEB.
func RunCharacterize(cfg CharacterizeConfig) (*CharacterizeResult, error) {
	cfg.defaults()
	events := []isa.Event{
		isa.EvInstructions, isa.EvCycles,
		isa.EvLLCMisses, isa.EvBranches, isa.EvBranchMisses,
	}
	res := &CharacterizeResult{}
	suite := workload.Suite()
	specs := make([]session.Spec, len(suite))
	for i, b := range suite {
		specs[i] = session.Spec{
			Profile:    ProfileFor(KLEB),
			Seed:       cfg.Seed + uint64(workload.ClassSeed(b.Name)),
			TargetName: b.Name,
			NewTarget:  targetFactory(b.Script()),
			NewTool:    toolFactory(KLEB, 0),
			Config:     monitor.Config{Events: events, Period: cfg.Period, ExcludeKernel: true},
		}
	}
	runs, err := runAll(cfg.Workers, specs)
	if err != nil {
		return nil, err
	}
	for i, b := range suite {
		run := runs[i]
		tot := run.Result.Totals
		row := CharacterizeRow{
			Name: b.Name, Family: b.Family,
			Elapsed: run.Elapsed,
			MPKI:    trace.MPKI(tot[isa.EvLLCMisses], tot[isa.EvInstructions]),
			Samples: len(run.Result.Samples),
		}
		if cyc := tot[isa.EvCycles]; cyc > 0 {
			row.IPC = float64(tot[isa.EvInstructions]) / float64(cyc)
		}
		if in := tot[isa.EvInstructions]; in > 0 {
			row.BranchPct = 100 * float64(tot[isa.EvBranches]) / float64(in)
		}
		if br := tot[isa.EvBranches]; br > 0 {
			row.MissPer1KBr = 1000 * float64(tot[isa.EvBranchMisses]) / float64(br)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the characterization table.
func (r *CharacterizeResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Workload characterization via K-LEB (per-benchmark fingerprints)")
	fmt.Fprintf(w, "%-15s %10s %7s %7s %8s %10s  %s\n",
		"benchmark", "elapsed", "IPC", "MPKI", "branch%", "miss/KBr", "family")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-15s %10v %7.2f %7.2f %8.1f %10.1f  %s\n",
			row.Name, row.Elapsed, row.IPC, row.MPKI, row.BranchPct, row.MissPer1KBr, row.Family)
	}
}
