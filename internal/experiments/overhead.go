package experiments

import (
	"fmt"
	"io"
	"sort"

	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/trace"
)

// OverheadConfig parameterizes the Table II / Table III / Fig 8 study.
type OverheadConfig struct {
	// Workload is the monitored program.
	Workload Workload
	// Tools are the monitors to compare.
	Tools []ToolKind
	// Period is the sampling interval (the paper uses 10ms).
	Period ktime.Duration
	// Trials is the number of repetitions per tool (the paper runs 100;
	// the default regeneration uses fewer for runtime, same statistics).
	Trials int
	// Seed bases the per-trial seeds.
	Seed uint64
	// Noise adds the background OS-noise daemon to every run.
	Noise bool
	// StockKernelOnly forces every tool onto the stock (unpatched) kernel.
	// Table III requires it: the MKL workload needs the modern OS, so
	// LiMiT — which only exists as a patch to the legacy kernel — comes
	// out "n/a" exactly as in the paper.
	StockKernelOnly bool
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS).
	Workers int
}

func (c *OverheadConfig) defaults() {
	if c.Period == 0 {
		c.Period = 10 * ktime.Millisecond
	}
	if c.Trials == 0 {
		c.Trials = 15
	}
	if len(c.Tools) == 0 {
		c.Tools = AllTools()
	}
	if c.Workload == "" {
		c.Workload = WorkloadTriple
	}
}

// ToolOverhead is one tool's row in the overhead table.
type ToolOverhead struct {
	Tool ToolKind
	// Unsupported is set (with a reason) when the tool cannot run this
	// configuration at all — LiMiT on an unpatched kernel (Table III).
	Unsupported string
	// OverheadPct are per-trial overhead percentages vs the same-seed
	// baseline; Mean/Box summarize them.
	OverheadPct []float64
	Mean        float64
	Box         trace.Box
	// Normalized are per-trial execution times normalized to the baseline
	// mean — the paper's Fig 8 y-axis.
	Normalized []float64
	// Samples is the mean number of samples collected per trial.
	Samples float64
}

// OverheadResult is the complete study output.
type OverheadResult struct {
	Workload     Workload
	Period       ktime.Duration
	Trials       int
	BaselineMean ktime.Duration
	BaselineRuns []ktime.Duration
	Rows         []ToolOverhead
}

// RunOverhead measures per-tool run-time overhead: for each trial seed it
// runs an unmonitored baseline and one run per tool on the *same* seed and
// machine profile, then compares execution times. This regenerates
// Table II (triple loop), Table III (dgemm) and the Fig 8 distributions.
// The baselines run as one scheduler batch and the monitored trials as a
// second (tool construction needs the baseline elapsed time to size the
// instrumented tools' point counts).
func RunOverhead(cfg OverheadConfig) (*OverheadResult, error) {
	cfg.defaults()
	script, err := scriptFor(cfg.Workload)
	if err != nil {
		return nil, err
	}
	res := &OverheadResult{Workload: cfg.Workload, Period: cfg.Period, Trials: cfg.Trials}

	profileFor := func(kind ToolKind) machine.Profile {
		if cfg.StockKernelOnly {
			return machine.Nehalem()
		}
		return ProfileFor(kind)
	}

	// Batch 1: baselines per profile (LiMiT's patched machine has its own
	// timing), one run per trial seed.
	var profiles []machine.Profile
	seenProf := map[string]bool{}
	for _, kind := range cfg.Tools {
		if p := profileFor(kind); !seenProf[p.Name] {
			seenProf[p.Name] = true
			profiles = append(profiles, p)
		}
	}
	var baseSpecs []session.Spec
	for _, prof := range profiles {
		for trial := 0; trial < cfg.Trials; trial++ {
			spec := baselineSpec(prof, cfg.Seed+uint64(trial)*7919, script)
			spec.Noise = cfg.Noise
			baseSpecs = append(baseSpecs, spec)
		}
	}
	baseRuns, err := runAll(cfg.Workers, baseSpecs)
	if err != nil {
		return nil, err
	}
	baselines := map[string][]ktime.Duration{}
	for pi, prof := range profiles {
		for trial := 0; trial < cfg.Trials; trial++ {
			baselines[prof.Name] = append(baselines[prof.Name], baseRuns[pi*cfg.Trials+trial].Elapsed)
		}
	}

	// Batch 2: one monitored run per (tool, trial).
	var specs []session.Spec
	for _, kind := range cfg.Tools {
		for trial := 0; trial < cfg.Trials; trial++ {
			base := baselines[profileFor(kind).Name][trial]
			specs = append(specs, session.Spec{
				Profile:    profileFor(kind),
				Seed:       cfg.Seed + uint64(trial)*7919,
				NewTarget:  targetFactory(script),
				NewTool:    toolFactory(kind, pointsFor(base, cfg.Period)),
				Config:     monitor.Config{Events: defaultEvents(), Period: cfg.Period, ExcludeKernel: true},
				Noise:      cfg.Noise,
				TargetName: string(cfg.Workload),
			})
		}
	}
	outs := session.Scheduler{Workers: cfg.Workers}.Run(specs)

	for ki, kind := range cfg.Tools {
		row := ToolOverhead{Tool: kind}
		var sampleSum float64
		for trial := 0; trial < cfg.Trials; trial++ {
			o := outs[ki*cfg.Trials+trial]
			if o.Err != nil {
				// A tool that cannot run this configuration at all fails on
				// its first trial; any later failure is a real error.
				if trial == 0 {
					row.Unsupported = o.Err.Error()
					break
				}
				return nil, o.Err
			}
			base := baselines[profileFor(kind).Name][trial]
			run := o.Run
			row.OverheadPct = append(row.OverheadPct,
				trace.OverheadPct(base.Seconds(), run.Elapsed.Seconds()))
			row.Normalized = append(row.Normalized,
				run.Elapsed.Seconds()/base.Seconds())
			n := len(run.Result.Samples)
			if kind == PerfRecord {
				if rt, ok := run.Tool.(interface{ SampleCount() int }); ok {
					n = rt.SampleCount()
				}
			}
			sampleSum += float64(n)
		}
		if row.Unsupported == "" {
			row.Mean = trace.Summarize(row.OverheadPct).Mean
			row.Box = trace.BoxPlot(row.Normalized)
			row.Samples = sampleSum / float64(len(row.OverheadPct))
		}
		res.Rows = append(res.Rows, row)
	}

	// The Nehalem baseline is the headline number.
	nb := baselines[profileFor(KLEB).Name]
	if len(nb) == 0 {
		for _, runs := range baselines {
			nb = runs
			break
		}
	}
	res.BaselineRuns = nb
	var sum float64
	for _, d := range nb {
		sum += d.Seconds()
	}
	if len(nb) > 0 {
		res.BaselineMean = ktime.Duration(sum / float64(len(nb)) * float64(ktime.Second))
	}
	return res, nil
}

// SortedByOverhead returns the supported rows ordered best-first.
func (r *OverheadResult) SortedByOverhead() []ToolOverhead {
	rows := make([]ToolOverhead, 0, len(r.Rows))
	for _, row := range r.Rows {
		if row.Unsupported == "" {
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Mean < rows[j].Mean })
	return rows
}

// Row looks up one tool's row.
func (r *OverheadResult) Row(kind ToolKind) (ToolOverhead, bool) {
	for _, row := range r.Rows {
		if row.Tool == kind {
			return row, true
		}
	}
	return ToolOverhead{}, false
}

// Render writes the study as a table in the paper's format.
func (r *OverheadResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Overhead study — workload %s, period %v, %d trials, baseline %v\n",
		r.Workload, r.Period, r.Trials, r.BaselineMean)
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %9s\n", "tool", "mean%", "median%", "norm-Q1", "norm-Q3", "samples")
	for _, row := range r.Rows {
		if row.Unsupported != "" {
			fmt.Fprintf(w, "%-12s %10s  (%s)\n", row.Tool, "n/a", row.Unsupported)
			continue
		}
		fmt.Fprintf(w, "%-12s %10.2f %10.2f %10.4f %10.4f %9.0f\n",
			row.Tool, row.Mean, trace.Median(row.OverheadPct), row.Box.Q1, row.Box.Q3, row.Samples)
	}
}

// RenderBoxes writes Fig 8's box-and-whisker description per tool.
func (r *OverheadResult) RenderBoxes(w io.Writer) {
	fmt.Fprintf(w, "Fig 8 — normalized execution time distribution (%d trials)\n", r.Trials)
	fmt.Fprintf(w, "%-12s %9s %9s %9s %9s %9s %9s\n", "tool", "whisk-lo", "Q1", "median", "Q3", "whisk-hi", "spread")
	for _, row := range r.Rows {
		if row.Unsupported != "" {
			continue
		}
		b := row.Box
		fmt.Fprintf(w, "%-12s %9.4f %9.4f %9.4f %9.4f %9.4f %9.4f\n",
			row.Tool, b.WhiskerLow, b.Q1, b.Median, b.Q3, b.WhiskerHigh, b.Spread())
	}
}
