package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite experiment golden files")

// renderMultiplex runs the default sweep at the given worker count and
// returns the rendered artifact.
func renderMultiplex(t *testing.T, workers int) []byte {
	t.Helper()
	res, err := RunMultiplex(MultiplexConfig{Workers: workers})
	if err != nil {
		t.Fatalf("RunMultiplex(workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	return buf.Bytes()
}

// TestMultiplexGolden pins the sweep's rendered artifact byte for byte and
// requires every run at 1, 2 and 8 workers to reproduce it — the
// worker-count determinism contract every experiment in this package makes.
func TestMultiplexGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full matmul sweep in -short mode")
	}
	serial := renderMultiplex(t, 1)

	path := filepath.Join("testdata", "multiplex.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, serial, 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (regenerate with go test -run Multiplex -update): %v", err)
		}
		if !bytes.Equal(serial, want) {
			t.Errorf("multiplex artifact drifted from golden.\n--- got ---\n%s--- want ---\n%s", serial, want)
		}
	}

	for _, workers := range []int{2, 8} {
		if got := renderMultiplex(t, workers); !bytes.Equal(got, serial) {
			t.Errorf("%d-worker artifact differs from serial run.\n--- got ---\n%s--- want ---\n%s", workers, got, serial)
		}
	}
}

// TestMultiplexCheck asserts the sweep's own gate holds: under-budget mixes
// exact, oversubscribed mixes rotated and measurably scaled.
func TestMultiplexCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full matmul sweep in -short mode")
	}
	res, err := RunMultiplex(MultiplexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	var sawOver bool
	for _, row := range res.Rows {
		if row.N > 4 {
			sawOver = true
			if row.MaxAbsErrPct() == 0 {
				t.Errorf("mix of %d: no estimation error on an oversubscribed mix", row.N)
			}
		}
	}
	if !sawOver {
		t.Fatal("default sweep has no oversubscribed mix")
	}
}
