package experiments

import (
	"fmt"
	"io"

	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/trace"
	"kleb/internal/workload"
)

// SweepConfig parameterizes the sampling-rate ablation (§V/§VI: overhead
// grows with rate; the recommended floor is 100µs).
type SweepConfig struct {
	// Periods to sweep (defaults: 100µs → 100ms).
	Periods []ktime.Duration
	// Trials per point.
	Trials int
	// Seed bases the trial seeds.
	Seed uint64
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS).
	Workers int
}

func (c *SweepConfig) defaults() {
	if len(c.Periods) == 0 {
		c.Periods = []ktime.Duration{
			100 * ktime.Microsecond,
			250 * ktime.Microsecond,
			ktime.Millisecond,
			10 * ktime.Millisecond,
			100 * ktime.Millisecond,
		}
	}
	if c.Trials == 0 {
		c.Trials = 5
	}
}

// SweepRow is one (tool, period) measurement.
type SweepRow struct {
	Tool            ToolKind
	RequestedPeriod ktime.Duration
	// EffectivePeriod differs for perf stat below the jiffy.
	EffectivePeriod ktime.Duration
	OverheadPct     float64
	Samples         float64
}

// SweepResult is the rate-sweep dataset.
type SweepResult struct {
	Rows []SweepRow
}

// RunSweep measures K-LEB and perf stat overhead across sampling periods
// on a mid-length workload. K-LEB's overhead rises smoothly as the period
// shrinks (interrupt cost amortization); perf stat silently clamps to the
// 10ms jiffy, so its sample count stops growing.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	cfg.defaults()
	script := workload.Synthetic{
		Name:       "sweep-target",
		TotalInstr: 1_000_000_000, // ~200ms
		Footprint:  256 << 10,
	}.Script()
	res := &SweepResult{}
	kinds := []ToolKind{KLEB, PerfStat}

	// Batch 1: per-trial baselines (both tools run the stock machine, so one
	// baseline per trial seed serves every sweep point).
	baseSpecs := make([]session.Spec, cfg.Trials)
	for trial := range baseSpecs {
		baseSpecs[trial] = baselineSpec(ProfileFor(KLEB), cfg.Seed+uint64(trial)*613, script)
	}
	baseRuns, err := runAll(cfg.Workers, baseSpecs)
	if err != nil {
		return nil, err
	}

	// Batch 2: the (tool, period, trial) grid.
	var specs []session.Spec
	for _, kind := range kinds {
		for _, period := range cfg.Periods {
			for trial := 0; trial < cfg.Trials; trial++ {
				specs = append(specs, session.Spec{
					Profile:   ProfileFor(kind),
					Seed:      cfg.Seed + uint64(trial)*613,
					NewTarget: targetFactory(script),
					NewTool:   toolFactory(kind, 0),
					Config:    monitor.Config{Events: defaultEvents(), Period: period, ExcludeKernel: true},
				})
			}
		}
	}
	runs, err := runAll(cfg.Workers, specs)
	if err != nil {
		return nil, err
	}

	i := 0
	for _, kind := range kinds {
		for _, period := range cfg.Periods {
			var overheads []float64
			var samples float64
			var effective ktime.Duration
			for trial := 0; trial < cfg.Trials; trial++ {
				run := runs[i]
				i++
				overheads = append(overheads,
					trace.OverheadPct(baseRuns[trial].Elapsed.Seconds(), run.Elapsed.Seconds()))
				samples += float64(len(run.Result.Samples))
				effective = period
				if ps, ok := run.Tool.(interface{ EffectivePeriod() ktime.Duration }); ok {
					effective = ps.EffectivePeriod()
				}
			}
			res.Rows = append(res.Rows, SweepRow{
				Tool:            kind,
				RequestedPeriod: period,
				EffectivePeriod: effective,
				OverheadPct:     trace.Summarize(overheads).Mean,
				Samples:         samples / float64(cfg.Trials),
			})
		}
	}
	return res, nil
}

// Render writes the sweep table.
func (r *SweepResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Rate sweep — overhead vs sampling period (K-LEB vs perf stat)")
	fmt.Fprintf(w, "%-12s %12s %12s %12s %10s\n", "tool", "requested", "effective", "overhead%", "samples")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %12v %12v %12.2f %10.0f\n",
			row.Tool, row.RequestedPeriod, row.EffectivePeriod, row.OverheadPct, row.Samples)
	}
}
