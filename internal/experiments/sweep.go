package experiments

import (
	"fmt"
	"io"

	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/trace"
	"kleb/internal/workload"
)

// SweepConfig parameterizes the sampling-rate ablation (§V/§VI: overhead
// grows with rate; the recommended floor is 100µs).
type SweepConfig struct {
	// Periods to sweep (defaults: 100µs → 100ms).
	Periods []ktime.Duration
	// Trials per point.
	Trials int
	// Seed bases the trial seeds.
	Seed uint64
}

func (c *SweepConfig) defaults() {
	if len(c.Periods) == 0 {
		c.Periods = []ktime.Duration{
			100 * ktime.Microsecond,
			250 * ktime.Microsecond,
			ktime.Millisecond,
			10 * ktime.Millisecond,
			100 * ktime.Millisecond,
		}
	}
	if c.Trials == 0 {
		c.Trials = 5
	}
}

// SweepRow is one (tool, period) measurement.
type SweepRow struct {
	Tool            ToolKind
	RequestedPeriod ktime.Duration
	// EffectivePeriod differs for perf stat below the jiffy.
	EffectivePeriod ktime.Duration
	OverheadPct     float64
	Samples         float64
}

// SweepResult is the rate-sweep dataset.
type SweepResult struct {
	Rows []SweepRow
}

// RunSweep measures K-LEB and perf stat overhead across sampling periods
// on a mid-length workload. K-LEB's overhead rises smoothly as the period
// shrinks (interrupt cost amortization); perf stat silently clamps to the
// 10ms jiffy, so its sample count stops growing.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	cfg.defaults()
	script := workload.Synthetic{
		Name:       "sweep-target",
		TotalInstr: 1_000_000_000, // ~200ms
		Footprint:  256 << 10,
	}.Script()
	res := &SweepResult{}
	for _, kind := range []ToolKind{KLEB, PerfStat} {
		for _, period := range cfg.Periods {
			var overheads []float64
			var samples float64
			var effective ktime.Duration
			for trial := 0; trial < cfg.Trials; trial++ {
				seed := cfg.Seed + uint64(trial)*613
				base, err := monitor.Run(monitor.RunSpec{
					Profile:   ProfileFor(kind),
					Seed:      seed,
					NewTarget: targetFactory(script),
				})
				if err != nil {
					return nil, err
				}
				tool, err := NewTool(kind, 0)
				if err != nil {
					return nil, err
				}
				run, err := monitor.Run(monitor.RunSpec{
					Profile:   ProfileFor(kind),
					Seed:      seed,
					NewTarget: targetFactory(script),
					Tool:      tool,
					Config:    monitor.Config{Events: defaultEvents(), Period: period, ExcludeKernel: true},
				})
				if err != nil {
					return nil, err
				}
				overheads = append(overheads,
					trace.OverheadPct(base.Elapsed.Seconds(), run.Elapsed.Seconds()))
				samples += float64(len(run.Result.Samples))
				effective = period
				if ps, ok := tool.(interface{ EffectivePeriod() ktime.Duration }); ok {
					effective = ps.EffectivePeriod()
				}
			}
			res.Rows = append(res.Rows, SweepRow{
				Tool:            kind,
				RequestedPeriod: period,
				EffectivePeriod: effective,
				OverheadPct:     trace.Summarize(overheads).Mean,
				Samples:         samples / float64(cfg.Trials),
			})
		}
	}
	return res, nil
}

// Render writes the sweep table.
func (r *SweepResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Rate sweep — overhead vs sampling period (K-LEB vs perf stat)")
	fmt.Fprintf(w, "%-12s %12s %12s %12s %10s\n", "tool", "requested", "effective", "overhead%", "samples")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %12v %12v %12.2f %10.0f\n",
			row.Tool, row.RequestedPeriod, row.EffectivePeriod, row.OverheadPct, row.Samples)
	}
}
