package experiments

import (
	"fmt"
	"io"

	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/session"
	"kleb/internal/workload"
)

// The co-location study: the paper's §IV-B argues that K-LEB's online MPKI
// classification lets a cloud scheduler place containers so that workloads
// contending for the same resource do not run concurrently (citing Torres
// et al. and Arteaga et al.). This experiment makes that concrete on the
// shared-LLC cluster substrate: it measures the pairwise slowdown of
// containers running on two cores of one socket and shows that the MPKI
// classes collected by K-LEB predict which pairings interfere.

// ColocateConfig parameterizes the interference matrix.
type ColocateConfig struct {
	// Images are the container images to cross (defaults: one per MPKI
	// tier — ruby/compute, mysql/LLC-resident, apache/streaming).
	Images []string
	// Seed drives the runs.
	Seed uint64
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS).
	Workers int
}

func (c *ColocateConfig) defaults() {
	if len(c.Images) == 0 {
		c.Images = []string{"ruby", "mysql", "apache"}
	}
}

// ColocateCell is one (workload, neighbour) measurement.
type ColocateCell struct {
	Image     string
	Neighbour string // "" for the solo baseline
	Runtime   ktime.Duration
	// Slowdown is Runtime over the image's solo runtime on the same
	// hardware.
	Slowdown float64
}

// ColocateResult is the interference matrix.
type ColocateResult struct {
	Images []string
	Solo   map[string]ktime.Duration
	Cells  []ColocateCell
}

// Cell looks up the (image, neighbour) measurement.
func (r *ColocateResult) Cell(image, neighbour string) (ColocateCell, bool) {
	for _, c := range r.Cells {
		if c.Image == image && c.Neighbour == neighbour {
			return c, true
		}
	}
	return ColocateCell{}, false
}

// RunColocate measures each image's runtime alone on a core and next to
// each neighbour on the other core of a shared-LLC socket. Every socket
// run is independent, so the solo baselines and the full matrix fan out
// over one scheduler batch.
func RunColocate(cfg ColocateConfig) (*ColocateResult, error) {
	cfg.defaults()
	res := &ColocateResult{Images: cfg.Images, Solo: map[string]ktime.Duration{}}

	runPair := func(a, b string) (ktime.Duration, ktime.Duration, error) {
		var pa, pb *kernel.Process
		spawn := func(m *machine.Machine, image string, slot int) (*kernel.Process, error) {
			if image == "" {
				return nil, nil
			}
			img, ok := workload.ImageByName(image)
			if !ok {
				return nil, fmt.Errorf("colocate: unknown image %q", image)
			}
			return m.Kernel().Spawn(image, img.ScriptAt(slot).Program()), nil
		}
		_, err := session.RunCluster(session.ClusterSpec{
			Profile: ProfileFor(KLEB),
			Seed:    cfg.Seed,
			Cores:   2,
			Place: func(cores []*machine.Machine) error {
				var err error
				if pa, err = spawn(cores[0], a, 0); err != nil {
					return err
				}
				pb, err = spawn(cores[1], b, 1)
				return err
			},
		})
		if err != nil {
			return 0, 0, err
		}
		var ra, rb ktime.Duration
		if pa != nil {
			ra = pa.Runtime()
		}
		if pb != nil {
			rb = pb.Runtime()
		}
		return ra, rb, nil
	}

	// The job list: each image solo on core 0, then the upper-triangular
	// matrix (one socket run yields both the (a,b) and (b,a) cells).
	type job struct{ a, b string }
	var jobs []job
	for _, image := range cfg.Images {
		jobs = append(jobs, job{image, ""})
	}
	for i, a := range cfg.Images {
		for j, b := range cfg.Images {
			if j < i {
				continue
			}
			jobs = append(jobs, job{a, b})
		}
	}
	type outcome struct {
		ra, rb ktime.Duration
		err    error
	}
	outs := make([]outcome, len(jobs))
	session.Scheduler{Workers: cfg.Workers}.ForEach(len(jobs), func(i int) {
		o := &outs[i]
		o.ra, o.rb, o.err = runPair(jobs[i].a, jobs[i].b)
	})
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
	}

	// Aggregate in job order: solo baselines first (the matrix cells'
	// slowdowns divide by them), then both sides of each pairing.
	for i, j := range jobs {
		if j.b == "" {
			res.Solo[j.a] = outs[i].ra
			res.Cells = append(res.Cells, ColocateCell{Image: j.a, Runtime: outs[i].ra, Slowdown: 1})
			continue
		}
		res.Cells = append(res.Cells,
			ColocateCell{Image: j.a, Neighbour: j.b, Runtime: outs[i].ra,
				Slowdown: float64(outs[i].ra) / float64(res.Solo[j.a])},
			ColocateCell{Image: j.b, Neighbour: j.a, Runtime: outs[i].rb,
				Slowdown: float64(outs[i].rb) / float64(res.Solo[j.b])})
	}
	return res, nil
}

// Render writes the slowdown matrix.
func (r *ColocateResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Co-location interference — slowdown vs running alone (2 cores, shared LLC)")
	fmt.Fprintf(w, "%-10s %12s", "image", "solo")
	for _, n := range r.Images {
		fmt.Fprintf(w, " %10s", "vs "+n)
	}
	fmt.Fprintln(w)
	for _, image := range r.Images {
		fmt.Fprintf(w, "%-10s %12v", image, r.Solo[image])
		for _, n := range r.Images {
			if c, ok := r.Cell(image, n); ok {
				fmt.Fprintf(w, " %9.2fx", c.Slowdown)
			} else {
				fmt.Fprintf(w, " %10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nPlacement rule validated: containers whose K-LEB MPKI classes both")
	fmt.Fprintln(w, "stress the LLC interfere when run concurrently; pairing a memory-")
	fmt.Fprintln(w, "intensive container with a computation-intensive one is nearly free.")
}
