// These tests assert the *shape* of every reproduced table and figure: who
// wins, by roughly what factor, and where the qualitative crossovers fall —
// the reproduction contract stated in DESIGN.md. Absolute numbers are
// checked only against generous bands.
package experiments

import (
	"strings"
	"testing"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/trace"
	"kleb/internal/workload"
)

// tableII is computed once and shared by the Table II / Fig 8 tests.
var tableII *OverheadResult

func getTableII(t *testing.T) *OverheadResult {
	t.Helper()
	if tableII == nil {
		res, err := RunOverhead(OverheadConfig{Workload: WorkloadTriple, Trials: 5, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		tableII = res
	}
	return tableII
}

func TestTableIIOverheadOrdering(t *testing.T) {
	res := getTableII(t)
	get := func(kind ToolKind) float64 {
		row, ok := res.Row(kind)
		if !ok || row.Unsupported != "" {
			t.Fatalf("%s missing from Table II", kind)
		}
		return row.Mean
	}
	kleb, stat, rec, papi, limit := get(KLEB), get(PerfStat), get(PerfRecord), get(PAPI), get(LiMiT)

	// Paper Table II: K-LEB 0.68 < perf record ~1.65 < LiMiT 4.08 <
	// perf stat 6.01 < PAPI 6.43.
	if !(kleb < rec && rec < limit && limit < stat && stat < papi) {
		t.Errorf("overhead ordering broken: kleb=%.2f rec=%.2f limit=%.2f stat=%.2f papi=%.2f",
			kleb, rec, limit, stat, papi)
	}
	if kleb < 0.1 || kleb > 2.0 {
		t.Errorf("K-LEB overhead %.2f%% outside the paper's band (~0.68%%)", kleb)
	}
	if papi < 4 || papi > 11 {
		t.Errorf("PAPI overhead %.2f%% outside the paper's band (~6.43%%)", papi)
	}
	// The headline: K-LEB cuts overhead vs the next best tool by >50%
	// (paper: 58.8% vs perf record).
	if reduction := 100 * (1 - kleb/rec); reduction < 40 {
		t.Errorf("K-LEB reduction vs perf record only %.1f%% (paper: 58.8%%)", reduction)
	}
}

func TestTableIIBaselineAboutTwoSeconds(t *testing.T) {
	res := getTableII(t)
	if res.BaselineMean < ktime.Duration(1.5*float64(ktime.Second)) ||
		res.BaselineMean > ktime.Duration(3*float64(ktime.Second)) {
		t.Errorf("triple-loop baseline %v, paper says ≈2s", res.BaselineMean)
	}
}

func TestTableIISampleCountsComparable(t *testing.T) {
	// The paper matches the tools' sample counts (~200 at 10ms over ~2s).
	res := getTableII(t)
	for _, kind := range []ToolKind{KLEB, PerfStat, PAPI, LiMiT} {
		row, _ := res.Row(kind)
		if row.Samples < 150 || row.Samples > 260 {
			t.Errorf("%s collected %.0f samples, want ≈200", kind, row.Samples)
		}
	}
}

func TestFig8KLEBHasSmallestSpread(t *testing.T) {
	res := getTableII(t)
	kleb, _ := res.Row(KLEB)
	klebStd := trace.Summarize(kleb.Normalized).Stddev
	for _, kind := range []ToolKind{PerfStat, PerfRecord, PAPI, LiMiT} {
		row, _ := res.Row(kind)
		// K-LEB's run-to-run variation is the smallest (paper Fig 8: "the
		// least interference ... the most consistent tool"); allow a small
		// statistical margin at this trial count.
		std := trace.Summarize(row.Normalized).Stddev
		if klebStd > std*1.2 {
			t.Errorf("K-LEB normalized-time stddev %.6f exceeds %s's %.6f",
				klebStd, kind, std)
		}
		// And its whole distribution sits below the other tool's median.
		if kleb.Box.Median >= row.Box.Median {
			t.Errorf("K-LEB median %.4f not below %s median %.4f",
				kleb.Box.Median, kind, row.Box.Median)
		}
	}
}

func TestTableIIIShortWorkload(t *testing.T) {
	res, err := RunOverhead(OverheadConfig{
		Workload: WorkloadDgemm, Trials: 3, Seed: 1, StockKernelOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// dgemm runs in under 100ms (the Table III premise).
	if res.BaselineMean > ktime.Duration(100*ktime.Millisecond) {
		t.Errorf("dgemm baseline %v, paper says <100ms", res.BaselineMean)
	}
	// LiMiT is n/a on the stock kernel.
	limitRow, ok := res.Row(LiMiT)
	if !ok || limitRow.Unsupported == "" || !strings.Contains(limitRow.Unsupported, "patch") {
		t.Errorf("LiMiT should be n/a in Table III: %+v", limitRow.Unsupported)
	}
	kleb, _ := res.Row(KLEB)
	papi, _ := res.Row(PAPI)
	stat, _ := res.Row(PerfStat)
	rec, _ := res.Row(PerfRecord)
	// PAPI's fixed init cost blows up on the short run (paper: 21.4%).
	if papi.Mean < 12 {
		t.Errorf("PAPI dgemm overhead %.2f%% too small (paper 21.4%%)", papi.Mean)
	}
	if papi.Mean < 2*stat.Mean {
		t.Errorf("PAPI (%.1f%%) should dwarf perf stat (%.1f%%) on the short run", papi.Mean, stat.Mean)
	}
	if !(kleb.Mean < rec.Mean && rec.Mean < stat.Mean && stat.Mean < papi.Mean) {
		t.Errorf("Table III ordering: kleb=%.2f rec=%.2f stat=%.2f papi=%.2f",
			kleb.Mean, rec.Mean, stat.Mean, papi.Mean)
	}
	if kleb.Mean > 3 {
		t.Errorf("K-LEB dgemm overhead %.2f%% (paper 1.13%%)", kleb.Mean)
	}
}

func TestTableILinpackGFLOPS(t *testing.T) {
	res, err := RunLinpack(LinpackConfig{Trials: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := res.Row("none")
	kleb, _ := res.Row("kleb")
	stat, _ := res.Row("perf-stat")
	rec, _ := res.Row("perf-record")

	// Paper Table I: 37.24 GFLOPS unprofiled.
	if base.GFLOPS < 34 || base.GFLOPS > 41 {
		t.Errorf("baseline GFLOPS %.2f (paper 37.24)", base.GFLOPS)
	}
	// Loss ordering: K-LEB ≈ perf record ≪ perf stat.
	if kleb.LossPct > 2 {
		t.Errorf("K-LEB loss %.2f%% (paper 0.64%%)", kleb.LossPct)
	}
	if stat.LossPct < 2.5 {
		t.Errorf("perf stat loss %.2f%% (paper 7.08%%)", stat.LossPct)
	}
	if kleb.LossPct >= stat.LossPct || rec.LossPct >= stat.LossPct {
		t.Errorf("loss ordering: kleb=%.2f rec=%.2f stat=%.2f", kleb.LossPct, rec.LossPct, stat.LossPct)
	}
	for _, row := range res.Rows[1:] {
		if row.LossPct < 0 {
			t.Errorf("%s shows negative loss %.2f%%", row.Tool, row.LossPct)
		}
	}
}

func TestFig4LinpackPhases(t *testing.T) {
	res, err := RunLinpack(LinpackConfig{Trials: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	muls := res.Series[isa.EvMulOps]
	stores := res.Series[isa.EvStores]
	if len(muls) < 100 {
		t.Fatalf("series too short: %d samples", len(muls))
	}
	// Fig 4 phase structure: the first ~10% of samples (init + setup) show
	// essentially no multiplications while stores are already active...
	tenth := len(muls) / 10
	var mulHead, mulTail, storeHead float64
	for i := 0; i < tenth; i++ {
		mulHead += muls[i]
		storeHead += stores[i]
	}
	for i := tenth; i < len(muls); i++ {
		mulTail += muls[i]
	}
	mulHeadRate := mulHead / float64(tenth)
	mulTailRate := mulTail / float64(len(muls)-tenth)
	if mulHeadRate > 0.05*mulTailRate {
		t.Errorf("ARITH.MUL should be flat before the solve: head=%.0f/sample tail=%.0f/sample",
			mulHeadRate, mulTailRate)
	}
	if storeHead == 0 {
		t.Error("STOREs should be active during setup")
	}
	// ...and the solve region repeats load/compute/store cycles: stores
	// keep appearing throughout.
	var storeTail float64
	for i := len(stores) - tenth; i < len(stores); i++ {
		storeTail += stores[i]
	}
	if storeTail == 0 {
		t.Error("solve-store phases missing at the end of the run")
	}
}

func TestFig5DockerMPKIClasses(t *testing.T) {
	res, err := RunDocker(DockerConfig{Seed: 1, BothMachines: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Class != row.Expected {
			t.Errorf("%s on %s: classified %s (MPKI %.2f), paper says %s",
				row.Image, row.Machine, row.Class, row.MPKI, row.Expected)
		}
	}
	// Interpreters under 1 MPKI (paper: "less than 1 on average").
	for _, name := range []string{"ruby", "golang", "python"} {
		for _, row := range res.Rows {
			if row.Image == name && row.MPKI >= 1 {
				t.Errorf("%s MPKI %.2f, paper says <1", name, row.MPKI)
			}
		}
	}
	// Cross-machine trend: the MPKI ordering of images is identical on
	// both processors even though absolute values differ (§IV-B).
	rank := func(machineName string) []string {
		rows := res.RowsFor(machineName)
		order := make([]string, len(rows))
		for i := range rows {
			order[i] = rows[i].Image
		}
		// insertion sort by MPKI
		for i := 1; i < len(rows); i++ {
			for j := i; j > 0 && rows[j-1].MPKI > rows[j].MPKI; j-- {
				rows[j-1], rows[j] = rows[j], rows[j-1]
				order[j-1], order[j] = order[j], order[j-1]
			}
		}
		return order
	}
	n := rank(machine.Nehalem().Name)
	c := rank(machine.CascadeLake().Name)
	// Compare the class-tier ordering rather than exact positions: every
	// interpreter ranks below every middleware image, which ranks below
	// every web server, on both machines.
	tier := func(img string) int {
		w, _ := workload.ImageByName(img)
		switch {
		case w.Class == workload.MemoryIntensive:
			return 2
		case w.Name == "mysql" || w.Name == "traefik" || w.Name == "ghost":
			return 1
		default:
			return 0
		}
	}
	for _, order := range [][]string{n, c} {
		for i := 1; i < len(order); i++ {
			if tier(order[i-1]) > tier(order[i]) {
				t.Errorf("MPKI tier ordering violated: %v", order)
				break
			}
		}
	}
}

func TestFig6And7Meltdown(t *testing.T) {
	res, err := RunMeltdown(MeltdownConfig{Rounds: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, a := res.Victim, res.Attack

	// Fig 6: the attack raises LLC references and misses substantially.
	if a.LLCRefs < 1.4*v.LLCRefs {
		t.Errorf("LLC refs: attack %.0f vs victim %.0f", a.LLCRefs, v.LLCRefs)
	}
	if a.LLCMisses < 1.5*v.LLCMisses {
		t.Errorf("LLC misses: attack %.0f vs victim %.0f", a.LLCMisses, v.LLCMisses)
	}
	// §IV-C: MPKI jumps (paper: 7.52 → 27.53).
	if v.MPKI > 15 {
		t.Errorf("victim MPKI %.2f (paper 7.52)", v.MPKI)
	}
	if a.MPKI < 1.8*v.MPKI {
		t.Errorf("MPKI jump too small: %.2f -> %.2f", v.MPKI, a.MPKI)
	}
	// The victim finishes in under 10ms, so a 10ms tool gets ≤1 sample
	// while K-LEB at 100µs gets a real series.
	if v.MeanElapsed >= 10*ktime.Millisecond {
		t.Errorf("victim elapsed %v, must be <10ms", v.MeanElapsed)
	}
	if v.PerfStatSmpls >= 1.5 {
		t.Errorf("a 10ms tool should get ≈≤1 victim sample, got %.1f", v.PerfStatSmpls)
	}
	if v.MeanSamples < 30 {
		t.Errorf("K-LEB 100µs victim series too short: %.0f", v.MeanSamples)
	}
	// The attack run takes longer and yields more samples (paper Fig 7).
	if a.MeanSamples <= v.MeanSamples || a.MeanElapsed <= v.MeanElapsed {
		t.Error("attack should lengthen the run and the series")
	}
	if len(a.Series[isa.EvLLCMisses]) == 0 {
		t.Error("Fig 7 series missing")
	}
}

func TestFig9CountAccuracy(t *testing.T) {
	res, err := RunAccuracy(AccuracyConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Unsupported != "" {
			t.Fatalf("%s unsupported: %s", row.Tool, row.Unsupported)
		}
		switch row.Tool {
		case PerfStat:
			// Paper: <0.0008% on deterministic events vs perf stat.
			if row.MaxPct > 0.01 {
				t.Errorf("perf stat max diff %.5f%% (paper <0.0008%%)", row.MaxPct)
			}
		case PerfRecord:
			// Paper: <0.15% vs perf record; allow some slack for the
			// shorter simulated run (fewer samples → larger residue).
			if row.MaxPct > 0.6 {
				t.Errorf("perf record max diff %.3f%% (paper <0.15%%)", row.MaxPct)
			}
		default:
			// Paper: <0.3% across all tools.
			if row.MaxPct > 0.3 {
				t.Errorf("%s max diff %.3f%% (paper <0.3%%)", row.Tool, row.MaxPct)
			}
		}
	}
	if res.KLEB[isa.EvInstructions] == 0 {
		t.Error("K-LEB reference totals missing")
	}
}

func TestTimerGranularity(t *testing.T) {
	res, err := RunTimers(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	find := func(fac string, period ktime.Duration) TimerRow {
		for _, row := range res.Rows {
			if row.Facility == fac && row.Requested == period {
				return row
			}
		}
		t.Fatalf("row %s/%v missing", fac, period)
		return TimerRow{}
	}
	// User timers cannot beat the 10ms jiffy (§II-C).
	for _, period := range []ktime.Duration{100 * ktime.Microsecond, ktime.Millisecond} {
		row := find("user-timer", period)
		if row.AchievedAvg < 9*ktime.Millisecond {
			t.Errorf("user timer honored %v (achieved %v); the jiffy floor is gone",
				period, row.AchievedAvg)
		}
	}
	// At 10ms the user timer is fine.
	tenMs := find("user-timer", 10*ktime.Millisecond)
	if tenMs.AchievedAvg < 9*ktime.Millisecond || tenMs.AchievedAvg > 11*ktime.Millisecond {
		t.Errorf("user timer at its native rate: %v", tenMs.AchievedAvg)
	}
	// The HRTimer sustains 100µs — the paper's 100× claim.
	hr := find("hrtimer", 100*ktime.Microsecond)
	if hr.AchievedAvg < 90*ktime.Microsecond || hr.AchievedAvg > 120*ktime.Microsecond {
		t.Errorf("hrtimer at 100µs achieved %v", hr.AchievedAvg)
	}
	// Jitter is microsecond-class, i.e. nonzero but well under the period.
	if hr.JitterStd == 0 || hr.JitterStd > 20*ktime.Microsecond {
		t.Errorf("hrtimer jitter %v", hr.JitterStd)
	}
}

func TestRateSweep(t *testing.T) {
	res, err := RunSweep(SweepConfig{
		Periods: []ktime.Duration{100 * ktime.Microsecond, ktime.Millisecond, 10 * ktime.Millisecond},
		Trials:  2,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(kind ToolKind, period ktime.Duration) SweepRow {
		for _, row := range res.Rows {
			if row.Tool == kind && row.RequestedPeriod == period {
				return row
			}
		}
		t.Fatalf("missing row %s/%v", kind, period)
		return SweepRow{}
	}
	// §V: finer granularity → more samples → more overhead, for K-LEB.
	k100us := get(KLEB, 100*ktime.Microsecond)
	k1ms := get(KLEB, ktime.Millisecond)
	k10ms := get(KLEB, 10*ktime.Millisecond)
	if !(k100us.OverheadPct > k1ms.OverheadPct && k1ms.OverheadPct > k10ms.OverheadPct) {
		t.Errorf("K-LEB overhead should rise with rate: %.2f / %.2f / %.2f",
			k100us.OverheadPct, k1ms.OverheadPct, k10ms.OverheadPct)
	}
	if k100us.Samples < 5*k1ms.Samples {
		t.Errorf("sample scaling: %f at 100µs vs %f at 1ms", k100us.Samples, k1ms.Samples)
	}
	// perf stat silently clamps to the jiffy: same samples at 100µs and 10ms.
	s100us := get(PerfStat, 100*ktime.Microsecond)
	s10ms := get(PerfStat, 10*ktime.Millisecond)
	if s100us.EffectivePeriod != 10*ktime.Millisecond {
		t.Errorf("perf stat effective period %v", s100us.EffectivePeriod)
	}
	ratio := s100us.Samples / s10ms.Samples
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("perf stat sample count should not scale below the jiffy: %f vs %f",
			s100us.Samples, s10ms.Samples)
	}
}

func TestBufferAblation(t *testing.T) {
	res, err := RunBufferAblation(BufferAblationConfig{
		Sizes: []int{64, 1024, 8192}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	small, big := res.Rows[0], res.Rows[2]
	if small.Dropped == 0 {
		t.Error("a 64-sample ring at 100µs with 50ms drains must trip the safety pause")
	}
	if big.Dropped != 0 {
		t.Errorf("the shipped ring size must keep the pause dormant, dropped %d periods", big.Dropped)
	}
	if big.CoveragePct < 85 {
		t.Errorf("full-ring coverage %.1f%%", big.CoveragePct)
	}
	if small.CoveragePct >= big.CoveragePct {
		t.Error("coverage should grow with ring size")
	}
	// Correctness is never sacrificed: collected+dropped accounts for the
	// whole run at the sampling rate.
	for _, row := range res.Rows {
		if row.Collected == 0 {
			t.Errorf("ring %d collected nothing", row.Size)
		}
	}
}

func TestDrainAblation(t *testing.T) {
	res, err := RunDrainAblation(DrainAblationConfig{
		Intervals: []ktime.Duration{10 * ktime.Millisecond, 100 * ktime.Millisecond, 400 * ktime.Millisecond},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	eager, mid, lazy := res.Rows[0], res.Rows[1], res.Rows[2]
	// Draining every 10ms costs more than every 100ms (wakeup tax).
	if eager.OverheadPct <= mid.OverheadPct {
		t.Errorf("eager drains should cost more: 10ms=%.2f%% vs 100ms=%.2f%%",
			eager.OverheadPct, mid.OverheadPct)
	}
	// A 400ms cadence outruns the 8192-sample ring at 100µs (4000 samples
	// per drain < capacity — actually fits; assert no drops for cadences
	// that fit and that all cadences keep collecting).
	for _, row := range res.Rows {
		if row.Collected == 0 {
			t.Errorf("cadence %v collected nothing", row.Interval)
		}
	}
	_ = lazy
}

func TestColocationInterference(t *testing.T) {
	res, err := RunColocate(ColocateConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	slow := func(image, neighbour string) float64 {
		c, ok := res.Cell(image, neighbour)
		if !ok {
			t.Fatalf("missing cell %s|%s", image, neighbour)
		}
		return c.Slowdown
	}
	// The compute-intensive container is immune to any neighbour.
	for _, n := range res.Images {
		if s := slow("ruby", n); s > 1.05 {
			t.Errorf("ruby slowed %.2fx by %s; compute workloads should not care", s, n)
		}
	}
	// The LLC-resident container is fine next to compute, hurt next to
	// anything that fights for the LLC — the placement rule K-LEB's MPKI
	// classification exists to drive.
	if s := slow("mysql", "ruby"); s > 1.08 {
		t.Errorf("mysql|ruby %.2fx; different classes should co-run freely", s)
	}
	if s := slow("mysql", "mysql"); s < 1.12 {
		t.Errorf("mysql|mysql %.2fx; two LLC-resident sets must thrash a shared LLC", s)
	}
	if s := slow("mysql", "apache"); s < 1.3 {
		t.Errorf("mysql|apache %.2fx; a streaming neighbour should evict the resident set", s)
	}
	// Interference is asymmetric: the stream barely notices the victim.
	if s := slow("apache", "mysql"); s > 1.15 {
		t.Errorf("apache|mysql %.2fx; DRAM-bound streams should be mostly immune", s)
	}
	// And bad pairings hurt more than good ones, in order.
	if !(slow("mysql", "ruby") < slow("mysql", "mysql") &&
		slow("mysql", "mysql") < slow("mysql", "apache")) {
		t.Error("interference ordering broken")
	}
}

func TestCharacterizationFingerprints(t *testing.T) {
	res, err := RunCharacterize(CharacterizeConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("suite rows: %d", len(res.Rows))
	}
	get := func(name string) CharacterizeRow {
		row, ok := res.Row(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		return row
	}
	crypto := get("crypto")
	chaser := get("pointer-chaser")
	interp := get("interpreter")
	stencil := get("stencil")
	compressor := get("compressor")

	// Compute-bound vs memory-bound: order of magnitude apart in IPC.
	if crypto.IPC < 10*chaser.IPC {
		t.Errorf("IPC separation: crypto %.2f vs pointer-chaser %.2f", crypto.IPC, chaser.IPC)
	}
	if crypto.MPKI > 0.1 {
		t.Errorf("crypto MPKI %.2f; its tables fit in L1", crypto.MPKI)
	}
	if chaser.MPKI < 30 {
		t.Errorf("pointer-chaser MPKI %.2f; it should live in DRAM", chaser.MPKI)
	}
	// Branch behaviour: the interpreter's dispatch loop mispredicts far
	// more per branch than the stencil's trip-count loops.
	if interp.MissPer1KBr < 10*stencil.MissPer1KBr {
		t.Errorf("branch separation: interpreter %.1f vs stencil %.1f",
			interp.MissPer1KBr, stencil.MissPer1KBr)
	}
	// Streaming with prefetch beats random chasing per miss: the stencil
	// has high MPKI yet much better IPC than the chaser.
	if stencil.MPKI < 10 || stencil.IPC < 2*chaser.IPC {
		t.Errorf("prefetch effect missing: stencil IPC %.2f MPKI %.1f vs chaser IPC %.2f",
			stencil.IPC, stencil.MPKI, chaser.IPC)
	}
	// The branchy integer code is branch-dominated but cache-friendly.
	if compressor.BranchPct < 15 || compressor.MPKI > 1 {
		t.Errorf("compressor fingerprint: branch%%=%.1f MPKI=%.2f", compressor.BranchPct, compressor.MPKI)
	}
	for _, row := range res.Rows {
		if row.Samples == 0 || row.Elapsed == 0 {
			t.Errorf("%s: degenerate run", row.Name)
		}
	}
}

func TestPlacementRule(t *testing.T) {
	res, err := RunPlacement(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	mixed, ok := res.Find("mixed-pairs")
	if !ok {
		t.Fatal("mixed-pairs missing")
	}
	stacked, ok := res.Find("serialize-memory")
	if !ok {
		t.Fatal("serialize-memory missing")
	}
	// The paper's §IV-B advice, measured: mixing classes per core wins.
	if float64(mixed.Makespan) > 0.8*float64(stacked.Makespan) {
		t.Errorf("mixed pairing should clearly win: mixed=%v stacked=%v",
			mixed.Makespan, stacked.Makespan)
	}
	// The compute jobs are insensitive to where they land.
	for _, p := range res.Placements {
		for _, j := range p.Jobs {
			if j.Image == "ruby" && j.Runtime > 2*ktime.Duration(1500*ktime.Millisecond) {
				t.Errorf("%s: ruby runtime %v implausible", p.Name, j.Runtime)
			}
		}
	}
	// And the memory jobs are the ones paying for the bad placement.
	if stacked.MemoryRuntime("mysql") < mixed.MemoryRuntime("mysql") {
		t.Error("stacking should hurt the memory jobs most")
	}
}

func TestContentionDetection(t *testing.T) {
	res, err := RunContention(1)
	if err != nil {
		t.Fatal(err)
	}
	// The sibling stream must visibly raise the victim's miss rate.
	if res.AfterMPKI < 1.4*res.BeforeMPKI {
		t.Errorf("no contention visible: before %.2f after %.2f", res.BeforeMPKI, res.AfterMPKI)
	}
	// The online detector flags it shortly after the neighbour starts —
	// not before, and quickly enough for a scheduler to react.
	if res.DetectedAt <= res.NeighbourStart {
		t.Fatalf("flag at %v precedes the neighbour at %v", res.DetectedAt, res.NeighbourStart)
	}
	if res.Latency > 100*ktime.Millisecond {
		t.Errorf("detection latency %v too slow to act on", res.Latency)
	}
}
