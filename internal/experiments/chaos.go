package experiments

import (
	"fmt"
	"io"
	"strings"

	"kleb/internal/fault"
	"kleb/internal/kleb"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/session"
)

// The chaos sweep is the fault layer's proof obligation (DESIGN.md §9): run
// a real workload under many seeded fault plans and assert that (a) the
// hardened controller terminates every run, clean or degraded, and (b) the
// module's period ledger stays conserved — every timer firing is accounted
// as captured, dropped or lost-to-fault, and every captured sample is
// either drained or still buffered. A fault layer that only sometimes
// loses data silently would fail (b); a controller that can still be hung
// by a fault would fail (a).

// ChaosConfig parameterizes the fault-plan sweep.
type ChaosConfig struct {
	// Workload is the monitored program (default WorkloadTriple, the
	// table-2 headline workload).
	Workload Workload
	// Seeds is how many derived fault plans to sweep (default 32).
	Seeds int
	// BaseSeed roots the per-run seed derivation.
	BaseSeed uint64
	// Workers sizes the scheduler's pool (0 = GOMAXPROCS).
	Workers int
	// Period is the sampling interval (default 100µs).
	Period ktime.Duration
	// Buffer is the kernel ring size (default 512 — deliberately small so
	// plans that slow draining actually exercise the safety pause).
	Buffer int
	// Drain is the controller cadence (default 50ms).
	Drain ktime.Duration
	// Limit caps each run's simulated time (default 5s) so even a
	// hypothetical controller hang cannot stall the sweep.
	Limit ktime.Duration
}

func (c *ChaosConfig) defaults() {
	if c.Workload == "" {
		c.Workload = WorkloadTriple
	}
	if c.Seeds <= 0 {
		c.Seeds = 32
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Period == 0 {
		c.Period = 100 * ktime.Microsecond
	}
	if c.Buffer == 0 {
		c.Buffer = 512
	}
	if c.Drain == 0 {
		c.Drain = 50 * ktime.Millisecond
	}
	if c.Limit == 0 {
		c.Limit = 5 * ktime.Second
	}
}

// ChaosRow is one fault plan's outcome.
type ChaosRow struct {
	Index int
	Seed  uint64
	// The module's period ledger (see kleb.Accounting).
	Fires     uint64
	Captured  uint64
	Dropped   uint64
	LostFault uint64
	// Drained is how many samples reached the controller; Buffered is what
	// was still in the ring when the run ended.
	Drained  int
	Buffered int
	// Degraded marks partial-data runs; Fault is the first unrecoverable
	// fault ("" when clean); Retries counts transient-retry recoveries.
	Degraded bool
	Fault    string
	Retries  uint64
	// CtlExited reports the controller process reached an exit.
	CtlExited bool
	// Err is a run-infrastructure failure (target never exited); always ""
	// when the hardening holds.
	Err string
}

// Balanced reports the period-conservation invariant: every timer firing
// landed in exactly one bucket.
func (r ChaosRow) Balanced() bool {
	return r.Fires == r.Captured+r.Dropped+r.LostFault
}

// OK reports the row passed every chaos assertion.
func (r ChaosRow) OK() bool {
	return r.Err == "" && r.CtlExited && r.Balanced() &&
		uint64(r.Drained+r.Buffered) == r.Captured
}

// ChaosResult is the sweep output.
type ChaosResult struct {
	Workload Workload
	Rows     []ChaosRow
}

// RunChaos sweeps Seeds derived fault plans over the workload. Every run
// gets a private plan (plans carry mutable decision state) and a private
// seed, so the sweep is deterministic for a given config at any worker
// count.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg.defaults()
	script, err := scriptFor(cfg.Workload)
	if err != nil {
		return nil, err
	}
	specs := make([]session.Spec, cfg.Seeds)
	seeds := make([]uint64, cfg.Seeds)
	for i := range specs {
		seed := session.DeriveSeed(cfg.BaseSeed, i)
		seeds[i] = seed
		specs[i] = session.Spec{
			Profile:   ProfileFor(KLEB),
			Seed:      seed,
			NewTarget: targetFactory(script),
			NewTool: func() (monitor.Tool, error) {
				tool := kleb.New()
				tool.BufferSamples = cfg.Buffer
				tool.DrainInterval = cfg.Drain
				return tool, nil
			},
			Config: monitor.Config{Events: defaultEvents(), Period: cfg.Period, ExcludeKernel: true},
			Limit:  cfg.Limit,
			Faults: fault.FromSeed(seed),
		}
	}
	outs := session.Scheduler{Workers: cfg.Workers}.Run(specs)

	res := &ChaosResult{Workload: cfg.Workload}
	for i, out := range outs {
		row := ChaosRow{Index: i, Seed: seeds[i]}
		if out.Err != nil {
			// Not fatal for the sweep: the row records the failure and
			// Check reports it, preserving the other rows' evidence.
			row.Err = out.Err.Error()
			res.Rows = append(res.Rows, row)
			continue
		}
		run := out.Run
		tool, ok := run.Tool.(*kleb.Tool)
		if !ok {
			row.Err = fmt.Sprintf("run %d tool is %T, want *kleb.Tool", i, run.Tool)
			res.Rows = append(res.Rows, row)
			continue
		}
		acc := tool.Accounting()
		row.Fires = acc.Fires
		row.Captured = acc.Captured
		row.Dropped = acc.Dropped
		row.LostFault = acc.LostFault
		row.Buffered = acc.Buffered
		row.Drained = len(run.Result.Samples)
		row.Degraded = run.Result.Degraded
		row.Fault = run.Result.Fault
		row.Retries = tool.Retries()
		row.CtlExited = tool.ControllerExited()
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Check returns an error describing every row that violated a chaos
// assertion, or nil when the sweep is clean.
func (r *ChaosResult) Check() error {
	var bad []string
	for _, row := range r.Rows {
		if row.OK() {
			continue
		}
		switch {
		case row.Err != "":
			bad = append(bad, fmt.Sprintf("seed %#x: run failed: %s", row.Seed, row.Err))
		case !row.CtlExited:
			bad = append(bad, fmt.Sprintf("seed %#x: controller never exited", row.Seed))
		case !row.Balanced():
			bad = append(bad, fmt.Sprintf("seed %#x: ledger unbalanced: fires=%d captured=%d dropped=%d lost=%d",
				row.Seed, row.Fires, row.Captured, row.Dropped, row.LostFault))
		default:
			bad = append(bad, fmt.Sprintf("seed %#x: samples leaked: drained=%d buffered=%d captured=%d",
				row.Seed, row.Drained, row.Buffered, row.Captured))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("chaos sweep: %d/%d runs violated invariants:\n  %s",
			len(bad), len(r.Rows), strings.Join(bad, "\n  "))
	}
	return nil
}

// Degraded counts rows that finished with partial data.
func (r *ChaosResult) Degraded() int {
	n := 0
	for _, row := range r.Rows {
		if row.Degraded {
			n++
		}
	}
	return n
}

// Render writes the sweep table plus a pass/fail summary line.
func (r *ChaosResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Chaos sweep — %s under %d seeded fault plans (invariant: fires = captured + dropped + lost)\n",
		r.Workload, len(r.Rows))
	fmt.Fprintf(w, "%4s %18s %8s %9s %8s %6s %8s %9s %8s %5s  %s\n",
		"run", "seed", "fires", "captured", "dropped", "lost", "drained", "buffered", "retries", "ok", "fault")
	for _, row := range r.Rows {
		fault := row.Fault
		if row.Err != "" {
			fault = "RUN: " + row.Err
		}
		fmt.Fprintf(w, "%4d %#18x %8d %9d %8d %6d %8d %9d %8d %5v  %s\n",
			row.Index, row.Seed, row.Fires, row.Captured, row.Dropped, row.LostFault,
			row.Drained, row.Buffered, row.Retries, row.OK(), fault)
	}
	if err := r.Check(); err != nil {
		fmt.Fprintf(w, "FAIL: %v\n", err)
		return
	}
	fmt.Fprintf(w, "PASS: %d/%d runs conserved all periods (%d degraded, data still accounted)\n",
		len(r.Rows), len(r.Rows), r.Degraded())
}
