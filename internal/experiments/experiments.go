// Package experiments contains one runner per table and figure of the
// paper's evaluation (see DESIGN.md §3 for the index). Each runner is a
// pure function from a configuration to a typed result with a text
// renderer, shared by the cmd/experiments binary and the root benchmark
// harness. All runners describe their trials as internal/session Specs and
// fan them out over session.Scheduler, so every experiment parallelizes
// across a worker pool while staying bit-identical to a serial run.
package experiments

import (
	"fmt"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/kleb"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/tools/limit"
	"kleb/internal/tools/papi"
	"kleb/internal/tools/perfrecord"
	"kleb/internal/tools/perfstat"
	"kleb/internal/workload"
)

// ToolKind names one of the five monitoring mechanisms.
type ToolKind string

// The five tools of the paper's comparison.
const (
	KLEB       ToolKind = "kleb"
	PerfStat   ToolKind = "perf-stat"
	PerfRecord ToolKind = "perf-record"
	PAPI       ToolKind = "papi"
	LiMiT      ToolKind = "limit"
)

// AllTools lists the tools in the paper's presentation order.
func AllTools() []ToolKind {
	return []ToolKind{KLEB, PerfStat, PerfRecord, PAPI, LiMiT}
}

// NewTool builds a fresh tool instance. points configures the strategic-
// point count for the source-instrumenting tools (0 = their default); the
// other tools ignore it.
func NewTool(kind ToolKind, points int) (monitor.Tool, error) {
	switch kind {
	case KLEB:
		return kleb.New(), nil
	case PerfStat:
		return perfstat.New(), nil
	case PerfRecord:
		return perfrecord.New(), nil
	case PAPI:
		t := papi.New()
		t.Points = points
		return t, nil
	case LiMiT:
		t := limit.New()
		t.Points = points
		return t, nil
	}
	return nil, fmt.Errorf("experiments: unknown tool %q", kind)
}

// ProfileFor returns the machine a tool runs on: LiMiT needs the patched
// legacy kernel (the paper's Ubuntu 12.04 / 2.6.32 box); everything else
// runs the stock Nehalem machine.
func ProfileFor(kind ToolKind) machine.Profile {
	if kind == LiMiT {
		return machine.LiMiTKernel()
	}
	return machine.Nehalem()
}

// Workload identifies a monitored program for the overhead studies.
type Workload string

// The overhead-study workloads.
const (
	WorkloadTriple Workload = "matmul-triple"
	WorkloadDgemm  Workload = "matmul-dgemm"
)

// scriptFor materializes a workload's script.
func scriptFor(w Workload) (workload.Script, error) {
	switch w {
	case WorkloadTriple:
		return workload.NewTripleLoopMatmul().Script(), nil
	case WorkloadDgemm:
		return workload.NewDgemmMatmul().Script(), nil
	}
	return workload.Script{}, fmt.Errorf("experiments: unknown workload %q", w)
}

// targetFactory wraps a script into a fresh-program factory.
func targetFactory(s workload.Script) func() kernel.Program {
	return func() kernel.Program { return s.Program() }
}

// defaultEvents is the paper's overhead-study event set: the four
// programmable events of Fig 9 (deterministic architectural events) — the
// three fixed counters ride along for free on tools that program them.
func defaultEvents() []isa.Event {
	return []isa.Event{
		isa.EvLoads,
		isa.EvStores,
		isa.EvBranches,
		isa.EvLLCMisses,
		isa.EvInstructions,
	}
}

// pointsFor matches the instrumented tools' sample count to what a
// timer-based tool at period would collect over baseline.
func pointsFor(baseline, period ktime.Duration) int {
	if period == 0 {
		return 0
	}
	n := int(baseline / period)
	if n < 1 {
		n = 1
	}
	return n
}

// toolFactory adapts NewTool into the fresh-instance factory a Spec
// carries, so each run in a batch gets its own stateful tool.
func toolFactory(kind ToolKind, points int) func() (monitor.Tool, error) {
	return func() (monitor.Tool, error) { return NewTool(kind, points) }
}

// baselineSpec describes an unmonitored run of script on prof.
func baselineSpec(prof machine.Profile, seed uint64, script workload.Script) session.Spec {
	return session.Spec{Profile: prof, Seed: seed, NewTarget: targetFactory(script)}
}

// runAll fans specs out over the scheduler's worker pool and returns the
// results in spec order, treating any failure as fatal.
func runAll(workers int, specs []session.Spec) ([]*session.Result, error) {
	outs := session.Scheduler{Workers: workers}.Run(specs)
	if err := session.FirstErr(outs); err != nil {
		return nil, err
	}
	res := make([]*session.Result, len(outs))
	for i, o := range outs {
		res[i] = o.Run
	}
	return res, nil
}
