package anomaly

import (
	"testing"

	"kleb/internal/ktime"
	"kleb/internal/monitor"
)

// flagAbove is a trivial detector for ensemble tests: flags when the first
// delta exceeds a threshold.
type flagAbove struct {
	limit  uint64
	resets int
}

func (f *flagAbove) Observe(s monitor.Sample) Verdict {
	v := Verdict{Time: s.Time}
	if len(s.Deltas) > 0 && s.Deltas[0] > f.limit {
		v.Anomalous = true
		v.Score = 1
	}
	return v
}
func (f *flagAbove) Reset() { f.resets++ }

func TestEnsembleMajorityVote(t *testing.T) {
	e := NewEnsemble(&flagAbove{limit: 10}, &flagAbove{limit: 20}, &flagAbove{limit: 1000})
	if e.Quorum != 2 {
		t.Fatalf("majority quorum %d", e.Quorum)
	}
	// Value 15: one vote — clean. Value 25: two votes — flagged.
	if e.Observe(monitor.Sample{Deltas: []uint64{15}}).Anomalous {
		t.Error("single vote should not flag")
	}
	v := e.Observe(monitor.Sample{Deltas: []uint64{25}})
	if !v.Anomalous || v.Score != 2 {
		t.Errorf("two votes should flag: %+v", v)
	}
}

func TestEnsembleResetPropagates(t *testing.T) {
	a := &flagAbove{limit: 1}
	b := &flagAbove{limit: 2}
	NewEnsemble(a, b).Reset()
	if a.resets != 1 || b.resets != 1 {
		t.Error("reset not propagated")
	}
}

func TestEnsembleCutsFalsePositives(t *testing.T) {
	// A controlled stream: 40 clean windows (ratio 0.33, low MPKI) then 20
	// attack windows (ratio ~1, 20× MPKI). A deliberately twitchy member
	// would flag half the clean windows on its own; requiring agreement
	// with real detectors suppresses every one of its false positives
	// while the true attack windows still carry the quorum.
	clean := synthSamples(40, 100, 1_000_000)
	var hot []monitor.Sample
	for i := 0; i < 20; i++ {
		hot = append(hot, monitor.Sample{
			Time:   clean[len(clean)-1].Time + ktimeMs(i+1),
			Deltas: []uint64{2100, 2000, 1_000_000}, // refs≈misses, 20× MPKI
		})
	}
	stream := append(clean, hot...)

	newReal := func() []Detector {
		r, err := NewRatioDetector(meltdownEvents)
		if err != nil {
			t.Fatal(err)
		}
		r.Skip = 5
		m, err := NewMPKIDetector(meltdownEvents)
		if err != nil {
			t.Fatal(err)
		}
		return []Detector{r, m}
	}

	twitchy := &everyOther{}
	solo := Scan(twitchy, stream)
	if solo.Flagged < 20 {
		t.Fatalf("twitchy member should misfire often alone: %d", solo.Flagged)
	}

	members := append(newReal(), &everyOther{})
	ens := NewEnsemble(members...)
	rep := Scan(ens, stream)

	if rep.Flagged == 0 {
		t.Fatal("ensemble missed the attack entirely")
	}
	// No clean window may carry the quorum.
	for i, v := range rep.Verdicts[:40] {
		if v.Anomalous {
			t.Fatalf("false positive survived the vote at window %d", i)
		}
	}
	// Most attack windows are flagged.
	flaggedHot := 0
	for _, v := range rep.Verdicts[40:] {
		if v.Anomalous {
			flaggedHot++
		}
	}
	if flaggedHot < 15 {
		t.Errorf("only %d of 20 attack windows flagged", flaggedHot)
	}
}

// everyOther is a noisy detector: flags every second window unconditionally.
type everyOther struct{ n int }

func (e *everyOther) Observe(s monitor.Sample) Verdict {
	e.n++
	return Verdict{Time: s.Time, Anomalous: e.n%2 == 0, Score: 1}
}
func (e *everyOther) Reset() { e.n = 0 }

func ktimeMs(i int) ktime.Time { return ktime.Time(i) * ktime.Time(ktime.Millisecond) }
