// Package anomaly implements online anomaly detection over hardware event
// sample streams — the application the paper names as K-LEB's purpose
// (§IV-C: "this gives K-LEB the potential to be used for hardware event
// based anomaly detection"; building the detector was "outside the scope"
// of the paper, so it is implemented here as the repository's future-work
// extension).
//
// Detectors consume per-period samples as they arrive (the K-LEB
// controller's drain cadence) and flag windows whose cache behaviour
// departs from a self-calibrated baseline. Three detectors are provided:
//
//   - MPKIDetector — misses per kilo-instruction against an EWMA baseline,
//     the metric the paper uses to separate Meltdown from clean runs;
//   - RatioDetector — LLC miss/reference ratio, the "abnormally high ...
//     ratio during the point of attack" signal of Fig 7;
//   - CUSUMDetector — a cumulative-sum change detector over any single
//     event rate, for drifts too gentle for threshold rules.
package anomaly

import (
	"fmt"
	"math"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
)

// Verdict is a detector's judgement of one sample window.
type Verdict struct {
	// Time is the window's sample timestamp.
	Time ktime.Time
	// Score is the detector-specific anomaly score (z-score, ratio, or
	// CUSUM statistic).
	Score float64
	// Anomalous is set when the score crosses the detector's threshold
	// after the warm-up period.
	Anomalous bool
}

// Detector consumes samples one at a time and judges each.
type Detector interface {
	// Observe ingests the next sample and returns its verdict.
	Observe(s monitor.Sample) Verdict
	// Reset clears learned state.
	Reset()
}

// indexOf locates an event's column in the sample layout.
func indexOf(events []isa.Event, ev isa.Event) (int, error) {
	for i, e := range events {
		if e == ev {
			return i, nil
		}
	}
	return 0, fmt.Errorf("anomaly: event %v not in the collected set %v", ev, events)
}

func delta(s monitor.Sample, idx int) float64 {
	if idx < len(s.Deltas) {
		return float64(s.Deltas[idx])
	}
	return 0
}

// --- MPKI detector ---

// MPKIDetector flags windows whose misses-per-kilo-instruction exceed a
// multiple of a self-learned EWMA baseline. It needs LLC misses and
// instructions in the collected event set.
type MPKIDetector struct {
	missIdx, instrIdx int

	// Threshold is the multiple of the baseline MPKI that flags a window
	// (default 3).
	Threshold float64
	// Warmup is the number of samples used purely for baseline learning
	// (default 10).
	Warmup int
	// Alpha is the EWMA smoothing factor (default 0.05).
	Alpha float64

	seen     int
	baseline float64
}

// NewMPKIDetector builds a detector for the given sample layout.
func NewMPKIDetector(events []isa.Event) (*MPKIDetector, error) {
	mi, err := indexOf(events, isa.EvLLCMisses)
	if err != nil {
		return nil, err
	}
	ii, err := indexOf(events, isa.EvInstructions)
	if err != nil {
		return nil, err
	}
	return &MPKIDetector{
		missIdx: mi, instrIdx: ii,
		Threshold: 3, Warmup: 10, Alpha: 0.05,
	}, nil
}

// Observe implements Detector.
func (d *MPKIDetector) Observe(s monitor.Sample) Verdict {
	instr := delta(s, d.instrIdx)
	if instr == 0 {
		return Verdict{Time: s.Time}
	}
	mpki := delta(s, d.missIdx) / (instr / 1000)
	d.seen++
	v := Verdict{Time: s.Time}
	if d.seen <= d.Warmup {
		// Pure learning: fold everything into the baseline.
		if d.baseline == 0 {
			d.baseline = mpki
		} else {
			d.baseline += d.Alpha * (mpki - d.baseline)
		}
		return v
	}
	if d.baseline > 0 {
		v.Score = mpki / d.baseline
	}
	v.Anomalous = v.Score > d.Threshold
	if !v.Anomalous {
		// Only clean windows update the baseline, so a sustained attack
		// cannot teach the detector that attacks are normal.
		d.baseline += d.Alpha * (mpki - d.baseline)
	}
	return v
}

// Reset implements Detector.
func (d *MPKIDetector) Reset() { d.seen, d.baseline = 0, 0 }

// --- LLC ratio detector ---

// RatioDetector flags windows whose LLC miss/reference ratio exceeds an
// absolute threshold — Flush+Reload drives the ratio toward 1 because every
// probe reference misses by construction.
type RatioDetector struct {
	missIdx, refIdx int

	// Threshold is the miss/ref ratio that flags a window (default 0.6 —
	// a Flush+Reload probe drives most references to misses, while a warm
	// working set keeps the ratio near zero).
	Threshold float64
	// MinRefs skips windows with too few references to judge (default 100).
	MinRefs float64
	// Skip is a startup grace period in windows: cold-start compulsory
	// misses also drive the ratio toward 1, so the first Skip windows are
	// observed but never flagged (default 20, i.e. 2ms at the 100µs rate).
	Skip int

	seen int
}

// NewRatioDetector builds a detector for the given sample layout.
func NewRatioDetector(events []isa.Event) (*RatioDetector, error) {
	mi, err := indexOf(events, isa.EvLLCMisses)
	if err != nil {
		return nil, err
	}
	ri, err := indexOf(events, isa.EvLLCRefs)
	if err != nil {
		return nil, err
	}
	return &RatioDetector{missIdx: mi, refIdx: ri, Threshold: 0.6, MinRefs: 100, Skip: 20}, nil
}

// Observe implements Detector.
func (d *RatioDetector) Observe(s monitor.Sample) Verdict {
	refs := delta(s, d.refIdx)
	v := Verdict{Time: s.Time}
	d.seen++
	if refs < d.MinRefs {
		return v
	}
	v.Score = delta(s, d.missIdx) / refs
	v.Anomalous = d.seen > d.Skip && v.Score > d.Threshold
	return v
}

// Reset implements Detector.
func (d *RatioDetector) Reset() { d.seen = 0 }

// --- CUSUM detector ---

// CUSUMDetector runs a one-sided cumulative-sum change detector on a single
// event's per-window rate: it accumulates standardized exceedances over a
// drift allowance and flags when the sum crosses a decision threshold. It
// catches sustained shifts that individual-window thresholds miss.
type CUSUMDetector struct {
	idx int

	// Drift is the slack (in baseline standard deviations) tolerated per
	// window before exceedance accumulates (default 0.5).
	Drift float64
	// Decision is the accumulated threshold that flags (default 5).
	Decision float64
	// Warmup windows learn the baseline mean/variance (default 10).
	Warmup int

	seen  int
	mean  float64
	m2    float64
	cusum float64
}

// NewCUSUMDetector builds a detector for one event in the sample layout.
func NewCUSUMDetector(events []isa.Event, ev isa.Event) (*CUSUMDetector, error) {
	idx, err := indexOf(events, ev)
	if err != nil {
		return nil, err
	}
	return &CUSUMDetector{idx: idx, Drift: 0.5, Decision: 5, Warmup: 10}, nil
}

// Observe implements Detector.
func (d *CUSUMDetector) Observe(s monitor.Sample) Verdict {
	x := delta(s, d.idx)
	d.seen++
	v := Verdict{Time: s.Time}
	if d.seen <= d.Warmup {
		// Welford online mean/variance.
		dm := x - d.mean
		d.mean += dm / float64(d.seen)
		d.m2 += dm * (x - d.mean)
		return v
	}
	std := math.Sqrt(d.m2 / float64(d.Warmup))
	if std == 0 {
		std = math.Max(1, d.mean*0.05)
	}
	z := (x - d.mean) / std
	d.cusum = math.Max(0, d.cusum+z-d.Drift)
	v.Score = d.cusum
	v.Anomalous = d.cusum > d.Decision
	return v
}

// Reset implements Detector.
func (d *CUSUMDetector) Reset() { d.seen, d.mean, d.m2, d.cusum = 0, 0, 0, 0 }

// --- stream analysis ---

// Report summarizes a detector's pass over a sample stream.
type Report struct {
	// Verdicts holds the per-window judgements in order.
	Verdicts []Verdict
	// Flagged counts anomalous windows.
	Flagged int
	// FirstFlag is the timestamp of the first anomalous window (zero if
	// none) — the detection latency measured from program start.
	FirstFlag ktime.Time
}

// FlagFraction returns flagged/total.
func (r Report) FlagFraction() float64 {
	if len(r.Verdicts) == 0 {
		return 0
	}
	return float64(r.Flagged) / float64(len(r.Verdicts))
}

// Scan runs a detector over an entire collected stream, as the controller
// would during live operation (samples arrive in capture order).
func Scan(d Detector, samples []monitor.Sample) Report {
	var rep Report
	for _, s := range samples {
		v := d.Observe(s)
		rep.Verdicts = append(rep.Verdicts, v)
		if v.Anomalous {
			if rep.Flagged == 0 {
				rep.FirstFlag = v.Time
			}
			rep.Flagged++
		}
	}
	return rep
}
