package anomaly

import "kleb/internal/monitor"

// Ensemble combines several detectors by vote: a window is anomalous when
// at least Quorum members flag it. Diverse detectors (a threshold rule, a
// ratio rule, a CUSUM) fail in different ways; requiring agreement trades a
// little detection latency for a much lower false-positive rate — the
// operating point an online responder needs.
type Ensemble struct {
	// Members are the voting detectors.
	Members []Detector
	// Quorum is the minimum number of votes to flag (default: majority).
	Quorum int
}

var _ Detector = (*Ensemble)(nil)

// NewEnsemble builds a majority-vote ensemble.
func NewEnsemble(members ...Detector) *Ensemble {
	return &Ensemble{Members: members, Quorum: len(members)/2 + 1}
}

// Observe implements Detector: the ensemble's score is the vote count.
func (e *Ensemble) Observe(s monitor.Sample) Verdict {
	votes := 0
	var t = s.Time
	for _, d := range e.Members {
		if d.Observe(s).Anomalous {
			votes++
		}
	}
	q := e.Quorum
	if q <= 0 {
		q = len(e.Members)/2 + 1
	}
	return Verdict{Time: t, Score: float64(votes), Anomalous: votes >= q}
}

// Reset implements Detector.
func (e *Ensemble) Reset() {
	for _, d := range e.Members {
		d.Reset()
	}
}
