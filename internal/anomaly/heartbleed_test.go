package anomaly

import (
	"testing"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/workload"
)

// The paper's reference [26] (Torres & Liu) asks whether data-only exploits
// — no control-flow change at all — are detectable from hardware events at
// runtime. With K-LEB-rate sampling and a CUSUM detector on LLC misses the
// answer here is yes: the Heartbleed over-read burst is flagged inside the
// attack window while the server keeps serving.
func TestDetectsHeartbleedOverRead(t *testing.T) {
	hb := workload.NewHeartbleed()

	clean := collect(t, hb.ServerScript(), 9)
	attacked := collect(t, hb.AttackScript(), 9)

	newDetector := func() *CUSUMDetector {
		d, err := NewCUSUMDetector(meltdownEvents, isa.EvLLCMisses)
		if err != nil {
			t.Fatal(err)
		}
		d.Warmup = 30
		return d
	}

	cleanRep := Scan(newDetector(), clean)
	attackRep := Scan(newDetector(), attacked)

	if cleanRep.Flagged > len(cleanRep.Verdicts)/20 {
		t.Errorf("false positives on the clean server: %d of %d windows",
			cleanRep.Flagged, len(cleanRep.Verdicts))
	}
	if attackRep.Flagged == 0 {
		t.Fatal("the over-read burst was not detected")
	}

	// The first flag lands inside the attack window, not after it: the
	// burst occupies the middle fifth of the run, so detection must come
	// before the final quarter.
	end := attacked[len(attacked)-1].Time
	if attackRep.FirstFlag > end-ktime.Time(uint64(end)/4) {
		t.Errorf("detection too late: first flag %v of %v", attackRep.FirstFlag, end)
	}
	// And not before the attack plausibly started. The benign prefix is 150
	// of 300 requests, but benign heartbeats are cheap (their 192KB working
	// set stays L2-resident) while over-reads sweep 24MB, so the burst
	// begins near a third of the run's wall time.
	if attackRep.FirstFlag < ktime.Time(uint64(end)*30/100) {
		t.Errorf("flag before the burst began: %v of %v", attackRep.FirstFlag, end)
	}
}

func TestHeartbleedScriptsShape(t *testing.T) {
	hb := workload.NewHeartbleed()
	server := hb.ServerScript()
	attack := hb.AttackScript()
	if len(server.Phases) != hb.Requests {
		t.Errorf("server phases %d", len(server.Phases))
	}
	want := hb.Requests + (hb.AttackEnd - hb.AttackStart)
	if len(attack.Phases) != want {
		t.Errorf("attack phases %d want %d", len(attack.Phases), want)
	}
	if attack.TotalInstr() <= server.TotalInstr() {
		t.Error("the exploit adds work")
	}
}
