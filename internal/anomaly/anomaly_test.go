package anomaly

import (
	"testing"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/kleb"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/workload"
)

var meltdownEvents = []isa.Event{isa.EvLLCRefs, isa.EvLLCMisses, isa.EvInstructions}

// collect runs a workload under K-LEB at 100µs and returns the stream.
func collect(t *testing.T, script workload.Script, seed uint64) []monitor.Sample {
	t.Helper()
	prof := machine.Nehalem()
	prof.Costs.NoiseRel = 0
	prof.Costs.TimerJitterRel = 0
	prof.Costs.RunNoiseRel = 0
	res, err := session.Run(session.Spec{
		Profile:   prof,
		Seed:      seed,
		NewTarget: func() kernel.Program { return script.Program() },
		NewTool:   func() (monitor.Tool, error) { return kleb.New(), nil },
		Config: monitor.Config{
			Events: meltdownEvents, Period: 100 * ktime.Microsecond, ExcludeKernel: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Result.Samples
}

func synthSamples(n int, misses, instr uint64) []monitor.Sample {
	out := make([]monitor.Sample, n)
	for i := range out {
		out[i] = monitor.Sample{
			Time:   ktime.Time(i+1) * ktime.Time(100*ktime.Microsecond),
			Deltas: []uint64{misses * 3, misses, instr},
		}
	}
	return out
}

func TestMPKIDetectorFlagsStep(t *testing.T) {
	d, err := NewMPKIDetector(meltdownEvents)
	if err != nil {
		t.Fatal(err)
	}
	stream := append(synthSamples(40, 100, 1_000_000), synthSamples(20, 2000, 1_000_000)...)
	rep := Scan(d, stream)
	if rep.Flagged == 0 {
		t.Fatal("20× MPKI step not flagged")
	}
	// Nothing flagged before the step.
	for i, v := range rep.Verdicts[:40] {
		if v.Anomalous {
			t.Fatalf("false positive at clean window %d", i)
		}
	}
	// Detection latency: within a few windows of the change at sample 40.
	changeAt := stream[40].Time
	if rep.FirstFlag.Sub(changeAt) > 300*ktime.Microsecond {
		t.Errorf("detection latency %v", rep.FirstFlag.Sub(changeAt))
	}
}

func TestMPKIDetectorBaselineNotPoisoned(t *testing.T) {
	d, _ := NewMPKIDetector(meltdownEvents)
	// Long sustained attack after a short clean prefix: the detector must
	// keep flagging to the end (anomalous windows don't train the baseline).
	stream := append(synthSamples(20, 100, 1_000_000), synthSamples(200, 2000, 1_000_000)...)
	rep := Scan(d, stream)
	tail := rep.Verdicts[len(rep.Verdicts)-10:]
	for _, v := range tail {
		if !v.Anomalous {
			t.Fatal("sustained attack stopped being flagged: baseline poisoned")
		}
	}
}

func TestMPKIDetectorNeedsEvents(t *testing.T) {
	if _, err := NewMPKIDetector([]isa.Event{isa.EvLoads}); err == nil {
		t.Error("missing events should be rejected")
	}
}

func TestRatioDetector(t *testing.T) {
	d, err := NewRatioDetector(meltdownEvents)
	if err != nil {
		t.Fatal(err)
	}
	d.Skip = 1
	// refs=3×misses → ratio 0.33: clean.
	d.Observe(monitor.Sample{Deltas: []uint64{3000, 1000, 1_000_000}}) // grace window
	clean := d.Observe(monitor.Sample{Deltas: []uint64{3000, 1000, 1_000_000}})
	if clean.Anomalous {
		t.Error("ratio 0.33 flagged")
	}
	// Flush+Reload-like: every reference misses.
	hot := d.Observe(monitor.Sample{Deltas: []uint64{1000, 950, 100_000}})
	if !hot.Anomalous {
		t.Errorf("ratio %.2f not flagged", hot.Score)
	}
	// Windows with too few references are skipped.
	idle := d.Observe(monitor.Sample{Deltas: []uint64{10, 10, 1000}})
	if idle.Anomalous {
		t.Error("idle window should be skipped")
	}
}

func TestCUSUMDetectsGentleDrift(t *testing.T) {
	d, err := NewCUSUMDetector(meltdownEvents, isa.EvLLCMisses)
	if err != nil {
		t.Fatal(err)
	}
	// A +40% shift — too small for a 3× threshold rule, caught by CUSUM
	// accumulation.
	stream := append(synthSamples(30, 1000, 1_000_000), synthSamples(40, 1400, 1_000_000)...)
	rep := Scan(d, stream)
	if rep.Flagged == 0 {
		t.Fatal("CUSUM missed a sustained 1.4× shift")
	}
	for i, v := range rep.Verdicts[:30] {
		if v.Anomalous {
			t.Fatalf("false positive at clean window %d", i)
		}
	}
	// An MPKI threshold detector at 3× would (correctly, per its contract)
	// stay silent on the same stream.
	md, _ := NewMPKIDetector(meltdownEvents)
	if mrep := Scan(md, stream); mrep.Flagged != 0 {
		t.Error("threshold detector unexpectedly fired on a 1.4× shift")
	}
}

func TestCUSUMReset(t *testing.T) {
	d, _ := NewCUSUMDetector(meltdownEvents, isa.EvLLCMisses)
	Scan(d, synthSamples(50, 1000, 1_000_000))
	d.Reset()
	rep := Scan(d, synthSamples(20, 1000, 1_000_000))
	if rep.Flagged != 0 {
		t.Error("reset detector fired on its own baseline")
	}
}

func TestDetectsMeltdownEndToEnd(t *testing.T) {
	// The paper's scenario on the full stack: learn on the clean victim,
	// then judge the attack run. The attack must be flagged while the
	// victim alone stays clean.
	m := workload.NewMeltdown()

	victim := collect(t, m.VictimScript(), 3)
	attack := collect(t, m.AttackScript(), 3)

	ratio, err := NewRatioDetector(meltdownEvents)
	if err != nil {
		t.Fatal(err)
	}
	vrep := Scan(ratio, victim)
	ratio.Reset()
	arep := Scan(ratio, attack)

	if arep.Flagged == 0 {
		t.Fatal("Flush+Reload not flagged by the miss/ref ratio detector")
	}
	if arep.FlagFraction() <= 2*vrep.FlagFraction() {
		t.Errorf("attack flag fraction %.2f vs victim %.2f — no separation",
			arep.FlagFraction(), vrep.FlagFraction())
	}
	// Online detection: the first flag lands while the program is still
	// running (well before its exit), which is only possible at 100µs.
	last := attack[len(attack)-1].Time
	if arep.FirstFlag == 0 || arep.FirstFlag >= last {
		t.Errorf("no in-flight detection: first flag %v, run end %v", arep.FirstFlag, last)
	}
}

func TestScanEmptyStream(t *testing.T) {
	d, _ := NewRatioDetector(meltdownEvents)
	rep := Scan(d, nil)
	if rep.Flagged != 0 || len(rep.Verdicts) != 0 || rep.FlagFraction() != 0 {
		t.Error("empty stream should produce an empty report")
	}
}

func TestEvaluateSeparatesMeltdown(t *testing.T) {
	m := workload.NewMeltdown()
	clean := collect(t, m.VictimScript(), 3)
	attack := collect(t, m.AttackScript(), 3)

	ratio, err := NewRatioDetector(meltdownEvents)
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(ratio, clean, attack)
	if ev.FalsePositiveRate > 0.05 {
		t.Errorf("FPR %.2f on the clean victim", ev.FalsePositiveRate)
	}
	if ev.TruePositiveRate < 0.3 {
		t.Errorf("TPR %.2f on the attack stream", ev.TruePositiveRate)
	}
	if ev.Separation() < 0.3 {
		t.Errorf("separation %.2f", ev.Separation())
	}
	// Evaluate must reset state between streams: running it twice gives
	// identical numbers.
	again := Evaluate(ratio, clean, attack)
	if again.FalsePositiveRate != ev.FalsePositiveRate ||
		again.TruePositiveRate != ev.TruePositiveRate {
		t.Error("Evaluate is stateful across calls")
	}
}

func TestEvaluateEmptyStreams(t *testing.T) {
	d, _ := NewRatioDetector(meltdownEvents)
	ev := Evaluate(d, nil, nil)
	if ev.FalsePositiveRate != 0 || ev.TruePositiveRate != 0 || ev.Separation() != 0 {
		t.Errorf("empty evaluation: %+v", ev)
	}
}

func TestWindowedEvaluation(t *testing.T) {
	// Synthetic stream: windows 0-39 clean, 40-59 attack, 60-79 clean,
	// with the attack interval labeled as ground truth.
	stream := synthSamples(40, 100, 1_000_000)
	attackStart := stream[len(stream)-1].Time
	for i := 0; i < 20; i++ {
		stream = append(stream, monitor.Sample{
			Time:   attackStart + ktime.Time(i+1)*ktime.Time(100*ktime.Microsecond),
			Deltas: []uint64{6000, 2000, 1_000_000},
		})
	}
	attackEnd := stream[len(stream)-1].Time + 1
	for i := 0; i < 20; i++ {
		stream = append(stream, monitor.Sample{
			Time:   attackEnd + ktime.Time(i+1)*ktime.Time(100*ktime.Microsecond),
			Deltas: []uint64{300, 100, 1_000_000},
		})
	}

	d, _ := NewMPKIDetector(meltdownEvents)
	ev := EvaluateWindowed(d, stream, Window{Start: attackStart, End: attackEnd})
	if !ev.Detected {
		t.Fatal("attack window not detected")
	}
	if ev.InWindowRate < 0.5 {
		t.Errorf("in-window rate %.2f", ev.InWindowRate)
	}
	if ev.OutWindowRate > 0.05 {
		t.Errorf("out-window rate %.2f", ev.OutWindowRate)
	}
	if ev.DetectionLatency > 500*ktime.Microsecond {
		t.Errorf("latency %v", ev.DetectionLatency)
	}
}

func TestWindowedEvaluationHeartbleedGroundTruth(t *testing.T) {
	// The Heartbleed workload knows exactly which requests were malicious;
	// score the CUSUM detector against that ground truth on the real
	// collected stream. The burst occupies requests [150,210) of 300, i.e.
	// roughly the middle of the run in time.
	hb := workload.NewHeartbleed()
	stream := collect(t, hb.AttackScript(), 9)
	clean := collect(t, hb.ServerScript(), 9)

	// Derive the burst's time window from the benign request cost: the
	// first AttackStart requests of the attack run are identical to the
	// clean run's, and the trailing (Requests-AttackEnd) requests follow
	// the burst.
	cleanEnd := clean[len(clean)-1].Time
	perReq := uint64(cleanEnd) / uint64(hb.Requests)
	attackEnd := stream[len(stream)-1].Time
	win := Window{
		Start: ktime.Time(uint64(hb.AttackStart) * perReq),
		End:   attackEnd - ktime.Time(uint64(hb.Requests-hb.AttackEnd)*perReq),
	}

	d, err := NewCUSUMDetector(meltdownEvents, isa.EvLLCMisses)
	if err != nil {
		t.Fatal(err)
	}
	d.Warmup = 30
	ev := EvaluateWindowed(d, stream, win)
	if !ev.Detected {
		t.Fatal("burst not detected inside its ground-truth window")
	}
	// A CUSUM alarm is sticky by design (it decays, not resets, after the
	// shift ends), so some post-window spill is expected — but the
	// in-window rate must dominate and detection must come early in the
	// window.
	if ev.InWindowRate <= ev.OutWindowRate {
		t.Errorf("no separation: in %.2f out %.2f", ev.InWindowRate, ev.OutWindowRate)
	}
	if ev.InWindowRate < 0.5 {
		t.Errorf("in-window rate %.2f", ev.InWindowRate)
	}
	winSpan := win.End.Sub(win.Start)
	if ev.DetectionLatency > winSpan/2 {
		t.Errorf("detected at %v into a %v window", ev.DetectionLatency, winSpan)
	}
}
