package anomaly

import (
	"kleb/internal/ktime"
	"kleb/internal/monitor"
)

// Evaluation summarizes a detector's quality on a labeled pair of streams:
// one known-clean, one known-under-attack. This is how the repository's
// detection experiments quantify the usual trade-off (flag more of the
// attack vs. stay quiet on clean runs) instead of eyeballing it.
type Evaluation struct {
	// FalsePositiveRate is the fraction of clean windows flagged.
	FalsePositiveRate float64
	// TruePositiveRate is the fraction of attack-stream windows flagged.
	// (The whole attack stream is labeled positive; detectors that only
	// fire inside the true attack window therefore report a conservative
	// TPR.)
	TruePositiveRate float64
	// CleanReport and AttackReport carry the raw scan results.
	CleanReport, AttackReport Report
}

// Separation returns TPR − FPR (Youden's J): 0 is a useless detector, 1 a
// perfect one.
func (e Evaluation) Separation() float64 {
	return e.TruePositiveRate - e.FalsePositiveRate
}

// Evaluate runs the detector over the clean stream, resets it, then runs it
// over the attack stream, and summarizes both.
func Evaluate(d Detector, clean, attack []monitor.Sample) Evaluation {
	d.Reset()
	cr := Scan(d, clean)
	d.Reset()
	ar := Scan(d, attack)
	ev := Evaluation{CleanReport: cr, AttackReport: ar}
	if n := len(cr.Verdicts); n > 0 {
		ev.FalsePositiveRate = float64(cr.Flagged) / float64(n)
	}
	if n := len(ar.Verdicts); n > 0 {
		ev.TruePositiveRate = float64(ar.Flagged) / float64(n)
	}
	return ev
}

// Window is a ground-truth labeled interval of virtual time.
type Window struct {
	Start, End ktime.Time
}

// Contains reports whether t lies in [Start, End).
func (w Window) Contains(t ktime.Time) bool { return t >= w.Start && t < w.End }

// WindowedEvaluation refines the stream-level rates with a ground-truth
// attack window: flags inside the window are true positives, flags outside
// it are false positives — the precise scoring for workloads (like the
// Heartbleed server) that are benign for most of their run.
type WindowedEvaluation struct {
	// InWindowRate is the fraction of ground-truth attack windows flagged.
	InWindowRate float64
	// OutWindowRate is the fraction of benign windows (of the same run)
	// flagged.
	OutWindowRate float64
	// DetectionLatency is first in-window flag minus window start (zero if
	// never detected inside the window).
	DetectionLatency ktime.Duration
	// Detected reports whether any in-window flag occurred.
	Detected bool
}

// EvaluateWindowed scans the stream and scores verdicts against the
// labeled attack window.
func EvaluateWindowed(d Detector, stream []monitor.Sample, attack Window) WindowedEvaluation {
	d.Reset()
	rep := Scan(d, stream)
	var ev WindowedEvaluation
	var in, out, inFlag, outFlag int
	for _, v := range rep.Verdicts {
		if attack.Contains(v.Time) {
			in++
			if v.Anomalous {
				inFlag++
				if !ev.Detected {
					ev.Detected = true
					ev.DetectionLatency = v.Time.Sub(attack.Start)
				}
			}
		} else {
			out++
			if v.Anomalous {
				outFlag++
			}
		}
	}
	if in > 0 {
		ev.InWindowRate = float64(inFlag) / float64(in)
	}
	if out > 0 {
		ev.OutWindowRate = float64(outFlag) / float64(out)
	}
	return ev
}
