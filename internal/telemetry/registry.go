package telemetry

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing count.
type Counter struct{ n uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Gauge is a high-water-mark gauge (the only gauge shape the simulator
// needs: ring occupancy peaks).
type Gauge struct{ v uint64 }

// SetMax raises the gauge to v if v is higher.
func (g *Gauge) SetMax(v uint64) {
	if v > g.v {
		g.v = v
	}
}

// Value returns the high-water mark.
func (g *Gauge) Value() uint64 { return g.v }

// histBuckets is the number of log2 buckets: bits.Len64 of any uint64 fits
// in [0, 64], so 65 buckets cover the full range.
const histBuckets = 65

// Histogram aggregates observations into log2 buckets: bucket i holds
// values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Log-bucketing
// keeps timer-jitter and PMI-latency distributions cheap to record (one
// increment) while preserving the order-of-magnitude shape that matters at
// sub-100µs sampling.
type Histogram struct {
	count   uint64
	sum     uint64
	buckets [histBuckets]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count++
	h.sum += v
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the average observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// observation (q in [0,1]). Log2 bucketing means the answer is exact only
// to a factor of two — the right resolution for "is jitter ~1µs or ~10µs".
// The quantile observation itself is selected by the nearest-rank rule
// (see nearestRank); tail-latency percentiles that must be exact use
// ExactQuantiles instead.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := nearestRank(q, h.count)
	var seen uint64
	for i, b := range h.buckets {
		seen += b
		if seen > rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// nearestRank maps a quantile q in [0,1] over n ≥ 1 ordered observations to
// the 0-indexed rank of the nearest-rank quantile observation: ceil(q·n)−1,
// clamped into [0, n-1]. Using floor(q·n) instead — the classic off-by-one —
// selects one observation too high whenever q·n is integral (the p50 of
// {1, 1000} would come out 1000, not 1).
func nearestRank(q float64, n uint64) uint64 {
	r := uint64(math.Ceil(q * float64(n)))
	if r > 0 {
		r--
	}
	if r >= n {
		r = n - 1
	}
	return r
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// maxBucket returns the index of the highest non-empty bucket, or -1.
func (h *Histogram) maxBucket() int {
	for i := histBuckets - 1; i >= 0; i-- {
		if h.buckets[i] != 0 {
			return i
		}
	}
	return -1
}

// merge adds o's observations into h.
func (h *Histogram) merge(o *Histogram) {
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// CounterVec is a family of counters keyed by one label value (syscall
// name, probe point, stage...). Exports iterate labels sorted, so output
// is deterministic regardless of insertion order.
//
// A vec additionally remembers which label dimension it counts under —
// "point", "name", "device", "stage" — stamped by the first AddKeyed.
// Mixing dimensions in one vec (a programming error: two emit paths
// writing the same field with different meanings) is tracked rather than
// panicking on the hot path, and surfaces as an error from Merge and the
// exporters, which would otherwise silently blend unrelated label sets.
type CounterVec struct {
	key      string // label dimension; "" until the first keyed add or merge
	conflict string // first disagreeing dimension observed, "" if none
	m        map[string]uint64
}

// Add increments the counter for label by d.
func (v *CounterVec) Add(label string, d uint64) {
	if v.m == nil {
		v.m = make(map[string]uint64) //klebvet:allow hotalloc -- one-time lazy init so the zero CounterVec stays usable; every later add reuses the map
	}
	v.m[label] += d
}

// AddKeyed increments the counter for label by d and stamps the vec's
// label dimension. The first keyed add fixes the dimension; a later add
// under a different key marks the vec conflicted (see Err).
func (v *CounterVec) AddKeyed(key, label string, d uint64) {
	v.stampKey(key)
	v.Add(label, d)
}

// Key returns the vec's label dimension ("" until stamped).
func (v *CounterVec) Key() string { return v.key }

// Err reports a label-dimension conflict recorded by AddKeyed or merge.
func (v *CounterVec) Err() error {
	if v.conflict == "" {
		return nil
	}
	return fmt.Errorf("telemetry: counter vec mixes label dimensions %q and %q", v.key, v.conflict)
}

// stampKey fixes (or checks) the vec's label dimension.
func (v *CounterVec) stampKey(key string) {
	switch {
	case key == "" || v.key == key:
	case v.key == "":
		v.key = key
	case v.conflict == "":
		v.conflict = key
	}
}

// Get returns the count for label.
func (v *CounterVec) Get(label string) uint64 { return v.m[label] }

// Labels returns all labels, sorted.
func (v *CounterVec) Labels() []string {
	out := make([]string, 0, len(v.m))
	for l := range v.m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// merge adds o's counts into v. Merging vecs stamped with different
// label dimensions is refused: the counts would be meaningless blended.
func (v *CounterVec) merge(o *CounterVec) error {
	if err := v.Err(); err != nil {
		return err
	}
	if err := o.Err(); err != nil {
		return err
	}
	if v.key != "" && o.key != "" && v.key != o.key {
		return fmt.Errorf("telemetry: cannot merge %q-keyed counters into %q-keyed vec", o.key, v.key)
	}
	v.stampKey(o.key)
	for l, n := range o.m {
		v.Add(l, n)
	}
	return nil
}

// Registry aggregates the simulator's metrics. The taxonomy is fixed — a
// struct of named metrics rather than a dynamic lookup table — so the hot
// emit paths touch fields directly and exports walk a stable order.
type Registry struct {
	// Kernel scheduler activity.
	CtxSwitches Counter
	KprobeHits  CounterVec // by probe point: switch / fork / exit
	Syscalls    CounterVec // by syscall name

	// HRTimer behaviour: arm/fire/cancel counts and the per-fire jitter
	// distribution (effective minus nominal expiry, ns).
	TimerArms    Counter
	TimerFires   Counter
	TimerCancels Counter
	TimerJitter  Histogram

	// Interrupt and PMU activity.
	PMIs         Counter
	PMILatency   Histogram // raise-to-delivery, ns
	PMUOverflows Counter
	MuxRotations Counter // perf_events multiplexing round rotations

	// Module traffic.
	Ioctls CounterVec // by device

	// K-LEB kernel ring behaviour.
	Samples       Counter
	RingHighWater Gauge
	RingPauses    Counter // buffer-full safety stops
	RingDrained   Counter // samples drained by the controller

	// Session lifecycle: cumulative virtual ns per stage.
	StageNs CounterVec

	// Scheduler batch activity (batch-level sinks only). Deliberately
	// worker-count independent; per-slot occupancy lives in the trace.
	Runs        Counter
	RunFailures Counter

	// Fault-injection layer activity (internal/fault). All three stay zero
	// on uninjected runs, and the exporters render them only when nonzero,
	// so fault-free artifacts are unchanged by the layer's existence.
	FaultsInjected CounterVec // by fault kind
	CtlRetries     Counter    // controller transient-ioctl retries
	RunsDegraded   Counter    // runs that finished with partial data

	// Fleet aggregation activity (internal/fleet, klebd). All stay zero
	// outside a fleet aggregate and are rendered only when rounds folded,
	// so single-run expositions never mention the fleet layer. The four
	// Ledger counters generalize the module's period-conservation
	// invariant fleet-wide: LedgerFires == LedgerCaptured + LedgerDropped
	// + LedgerLost at every fold boundary.
	FleetRounds    Counter // rounds folded into the aggregate
	FleetNodes     Counter // per-node round completions
	FleetSamples   Counter // K-LEB samples ingested from nodes
	FleetDegraded  Counter // node rounds that finished degraded
	LedgerFires    Counter
	LedgerCaptured Counter
	LedgerDropped  Counter
	LedgerLost     Counter
}

// Clone returns a deep copy of the registry, safe to render or merge after
// the source moves on. Implemented as a merge into a fresh registry so a
// new metric field added to Merge is automatically covered here too.
func (r *Registry) Clone() (*Registry, error) {
	out := &Registry{}
	if err := out.Merge(r); err != nil {
		return nil, err
	}
	return out, nil
}

// Merge folds o into r. All merges are commutative and associative, so a
// batch registry assembled from per-run registries is independent of
// completion order and worker count. The error (nil in any healthy
// process) reports vec fields whose label dimensions conflict; scalar
// metrics are merged regardless, so a conflict loses no counts — only
// the guarantee that vec labels mean one thing.
func (r *Registry) Merge(o *Registry) error {
	if o == nil {
		return nil
	}
	r.CtxSwitches.Add(o.CtxSwitches.n)
	err := errors.Join(
		mergeVec("KprobeHits", &r.KprobeHits, &o.KprobeHits),
		mergeVec("Syscalls", &r.Syscalls, &o.Syscalls),
		mergeVec("Ioctls", &r.Ioctls, &o.Ioctls),
		mergeVec("StageNs", &r.StageNs, &o.StageNs),
		mergeVec("FaultsInjected", &r.FaultsInjected, &o.FaultsInjected),
	)
	r.TimerArms.Add(o.TimerArms.n)
	r.TimerFires.Add(o.TimerFires.n)
	r.TimerCancels.Add(o.TimerCancels.n)
	r.TimerJitter.merge(&o.TimerJitter)
	r.PMIs.Add(o.PMIs.n)
	r.PMILatency.merge(&o.PMILatency)
	r.PMUOverflows.Add(o.PMUOverflows.n)
	r.MuxRotations.Add(o.MuxRotations.n)
	r.Samples.Add(o.Samples.n)
	r.RingHighWater.SetMax(o.RingHighWater.v)
	r.RingPauses.Add(o.RingPauses.n)
	r.RingDrained.Add(o.RingDrained.n)
	r.Runs.Add(o.Runs.n)
	r.RunFailures.Add(o.RunFailures.n)
	r.CtlRetries.Add(o.CtlRetries.n)
	r.RunsDegraded.Add(o.RunsDegraded.n)
	r.FleetRounds.Add(o.FleetRounds.n)
	r.FleetNodes.Add(o.FleetNodes.n)
	r.FleetSamples.Add(o.FleetSamples.n)
	r.FleetDegraded.Add(o.FleetDegraded.n)
	r.LedgerFires.Add(o.LedgerFires.n)
	r.LedgerCaptured.Add(o.LedgerCaptured.n)
	r.LedgerDropped.Add(o.LedgerDropped.n)
	r.LedgerLost.Add(o.LedgerLost.n)
	return err
}

// mergeVec merges one vec field, naming it in any conflict error.
func mergeVec(field string, dst, src *CounterVec) error {
	if err := dst.merge(src); err != nil {
		return fmt.Errorf("%s: %w", field, err)
	}
	return nil
}
