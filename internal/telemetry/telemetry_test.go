package telemetry

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"kleb/internal/ktime"
)

// emitOneOfEach drives every emit method once, with distinct arguments.
func emitOneOfEach(s *Sink) {
	s.ProcessName(1, "target")
	s.CtxSwitch(10, 0, 1)
	s.TimerArm(20, 7, 120)
	s.TimerFire(125, 7, 120, 125)
	s.TimerCancel(130, 7)
	s.Kprobe(140, "switch", 1)
	s.SyscallEnter(150, "nanosleep", 1)
	s.SyscallExit(160, "nanosleep", 1)
	s.PMI(170, 2, false, 9)
	s.PMUOverflow(180, 1, true)
	s.Ioctl(190, "kleb", 4, 2)
	s.Stage(200, "drive", 180)
	s.SampleCaptured(210, 3, 8192)
	s.BufferPause(220, 1)
	s.BufferDrain(230, 3, 0)
	s.RunDone(0, 0, false)
}

func TestNilSinkIsSafeAndEmpty(t *testing.T) {
	var s *Sink
	emitOneOfEach(s) // must not panic
	if err := s.Merge(New()); err != nil {
		t.Errorf("nil sink Merge: %v", err)
	}
	if s.Enabled() {
		t.Error("nil sink reports Enabled")
	}
	if got := s.Events(); got != nil {
		t.Errorf("nil sink Events = %v, want nil", got)
	}
	if s.Registry() != nil {
		t.Error("nil sink Registry non-nil")
	}
	if s.Truncated() != 0 {
		t.Error("nil sink Truncated non-zero")
	}
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil sink trace is invalid JSON: %v", err)
	}
	buf.Reset()
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil sink Prometheus output non-empty: %q", buf.String())
	}
}

func TestRecorderDropsOldestWhenFull(t *testing.T) {
	s := NewWithCapacity(4)
	for i := 0; i < 6; i++ {
		s.CtxSwitch(ktime.Time(i), int32(i), int32(i+1))
	}
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if s.Truncated() != 2 {
		t.Errorf("Truncated = %d, want 2", s.Truncated())
	}
	for i, e := range evs {
		if want := ktime.Time(i + 2); e.Time != want {
			t.Errorf("event %d time = %d, want %d (oldest-first window)", i, e.Time, want)
		}
	}
	// Metrics still count everything, including dropped events.
	if got := s.Registry().CtxSwitches.Value(); got != 6 {
		t.Errorf("CtxSwitches = %d, want 6", got)
	}
}

func TestMetricsOnlyRecordsNoEvents(t *testing.T) {
	s := MetricsOnly()
	emitOneOfEach(s)
	if len(s.Events()) != 0 {
		t.Errorf("metrics-only sink recorded %d events", len(s.Events()))
	}
	if s.Registry().TimerFires.Value() != 1 {
		t.Error("metrics-only sink did not aggregate metrics")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 500, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 1506 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	if got := h.Mean(); got != 251 {
		t.Errorf("Mean = %v, want 251", got)
	}
	// bits.Len64 buckets: 0→0, 1→1, 2,3→2, 500→9, 1000→10.
	for i, want := range map[int]uint64{0: 1, 1: 1, 2: 2, 9: 1, 10: 1} {
		if h.buckets[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, h.buckets[i], want)
		}
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("p0 = %d, want 0", got)
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %d, want 3 (upper bound of bucket 2)", got)
	}
	if got := h.Quantile(1); got != 1023 {
		t.Errorf("p100 = %d, want 1023", got)
	}
}

func TestBucketUpperBounds(t *testing.T) {
	cases := map[int]uint64{0: 0, 1: 1, 2: 3, 10: 1023, 64: ^uint64(0), 70: ^uint64(0)}
	for i, want := range cases {
		if got := bucketUpper(i); got != want {
			t.Errorf("bucketUpper(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestRegistryMergeIsCommutative(t *testing.T) {
	mk := func(order []int) *Sink {
		sinks := []*Sink{MetricsOnly(), MetricsOnly(), MetricsOnly()}
		sinks[0].CtxSwitch(1, 0, 1)
		sinks[0].Kprobe(2, "switch", 1)
		sinks[1].TimerFire(3, 1, 2, 5)
		sinks[1].Kprobe(4, "fork", 2)
		sinks[2].TimerFire(5, 1, 6, 7)
		sinks[2].SampleCaptured(6, 9, 16)
		total := MetricsOnly()
		for _, i := range order {
			if err := total.Merge(sinks[i]); err != nil {
				t.Fatalf("merge %d: %v", i, err)
			}
		}
		return total
	}
	var a, b bytes.Buffer
	if err := mk([]int{0, 1, 2}).WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk([]int{2, 0, 1}).WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("merge order changed the exported metrics:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestCounterVecLabelsSorted(t *testing.T) {
	var v CounterVec
	for _, l := range []string{"zeta", "alpha", "mid"} {
		v.Add(l, 1)
	}
	got := v.Labels()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", got, want)
		}
	}
}

func TestChromeTraceIsValidAndComplete(t *testing.T) {
	s := New()
	emitOneOfEach(s)
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		seen[e.Name] = true
		if e.Name == "hrtimer-fire" {
			if e.Args["jitter_ns"] != float64(5) {
				t.Errorf("hrtimer-fire jitter_ns = %v, want 5", e.Args["jitter_ns"])
			}
		}
	}
	for _, name := range []string{
		"ctx-switch", "hrtimer-arm", "hrtimer-fire", "hrtimer-cancel",
		"kprobe:switch", "sys:nanosleep", "pmi", "pmu-overflow", "ioctl:kleb",
		"stage:drive", "kleb-ring", "kleb-pause", "kleb-drain", "run",
		"process_name", "thread_name",
	} {
		if !seen[name] {
			t.Errorf("trace is missing %q events", name)
		}
	}
}

func TestTimestampRendering(t *testing.T) {
	cases := map[uint64]string{0: "0.000", 999: "0.999", 1000: "1.000", 1234567: "1234.567"}
	for ns, want := range cases {
		if got := ts(ns); got != want {
			t.Errorf("ts(%d) = %q, want %q", ns, got, want)
		}
	}
}

// TestPrometheusShape line-checks the exposition: HELP/TYPE pairs, integer
// samples, and cumulative non-decreasing histogram buckets ending in +Inf.
func TestPrometheusShape(t *testing.T) {
	s := New()
	emitOneOfEach(s)
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var lastBucket uint64
	inHist := false
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad sample line %q", line)
		}
		val, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			t.Fatalf("non-integer sample %q: %v", line, err)
		}
		switch {
		case strings.Contains(fields[0], `_bucket{le="+Inf"}`):
			if val < lastBucket {
				t.Errorf("+Inf bucket %d below last bucket %d", val, lastBucket)
			}
			inHist, lastBucket = false, 0
		case strings.Contains(fields[0], "_bucket{"):
			if inHist && val < lastBucket {
				t.Errorf("bucket sequence decreases at %q", line)
			}
			inHist, lastBucket = true, val
		}
	}
	for _, family := range []string{
		"kleb_ctx_switches_total", "kleb_hrtimer_jitter_ns_bucket",
		"kleb_hrtimer_jitter_ns_sum", "kleb_hrtimer_jitter_ns_count",
		"kleb_pmi_latency_ns_count", "kleb_ring_high_water",
		"kleb_stage_ns_total", "kleb_runs_total",
	} {
		if !strings.Contains(buf.String(), family) {
			t.Errorf("exposition is missing %s", family)
		}
	}
}

// The satellite requirement: the disabled path must be a branch, nothing
// more. The benchmark pair quantifies it (see BENCH_telemetry.json).
func BenchmarkEmitDisabled(b *testing.B) {
	var s *Sink
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.CtxSwitch(ktime.Time(i), 1, 2)
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	s := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.CtxSwitch(ktime.Time(i), 1, 2)
	}
}

func BenchmarkEmitMetricsOnly(b *testing.B) {
	s := MetricsOnly()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.TimerFire(ktime.Time(i), 1, ktime.Time(i), ktime.Time(i+3))
	}
}
