package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"kleb/internal/ktime"
)

// TestSharedSinkConcurrentIngest hammers a SharedSink from many goroutines
// (the shard shape klebd uses) and checks no counts are lost. Run with
// -race this doubles as the data-race proof for the snapshot/merge path.
func TestSharedSinkConcurrentIngest(t *testing.T) {
	const producers, rounds = 8, 50
	sh := NewShared(1024)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				run := MetricsOnly()
				run.CtxSwitch(ktime.Time(r), 0, 1)
				run.SampleCaptured(ktime.Time(r), 1, 16)
				if err := sh.Ingest(run); err != nil {
					t.Errorf("ingest: %v", err)
				}
				sh.Emit(func(s *Sink) {
					s.FleetNode(ktime.Time(r), int32(p), 1, 1, 0, 0, false, "")
				})
			}
		}(p)
	}
	// Concurrent scrapes while producers run.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				snap, err := sh.Snapshot()
				if err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				var buf bytes.Buffer
				if err := snap.WritePrometheus(&buf); err != nil {
					t.Errorf("snapshot render: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Registry.CtxSwitches.Value(); got != producers*rounds {
		t.Errorf("CtxSwitches = %d, want %d", got, producers*rounds)
	}
	if got := snap.Registry.FleetNodes.Value(); got != producers*rounds {
		t.Errorf("FleetNodes = %d, want %d", got, producers*rounds)
	}
	if got := snap.Registry.FleetSamples.Value(); got != producers*rounds {
		t.Errorf("FleetSamples = %d, want %d", got, producers*rounds)
	}
}

// TestSnapshotIsolation checks a snapshot is a true copy: the shared sink
// moving on does not change an already-taken snapshot.
func TestSnapshotIsolation(t *testing.T) {
	sh := NewShared(16)
	run := MetricsOnly()
	run.CtxSwitch(1, 0, 1)
	if err := sh.Ingest(run); err != nil {
		t.Fatal(err)
	}
	sh.Emit(func(s *Sink) { s.FleetRound(2, 0, 1, 0) })

	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	before := snap.Registry.CtxSwitches.Value()
	nbefore := len(snap.Events)

	more := MetricsOnly()
	more.CtxSwitch(3, 1, 2)
	if err := sh.Ingest(more); err != nil {
		t.Fatal(err)
	}
	sh.Emit(func(s *Sink) { s.FleetRound(4, 1, 1, 0) })

	if got := snap.Registry.CtxSwitches.Value(); got != before {
		t.Errorf("snapshot registry mutated after ingest: %d -> %d", before, got)
	}
	if got := len(snap.Events); got != nbefore {
		t.Errorf("snapshot events mutated after emit: %d -> %d", nbefore, got)
	}
	snap2, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap2.Registry.CtxSwitches.Value(); got != before+1 {
		t.Errorf("second snapshot CtxSwitches = %d, want %d", got, before+1)
	}
}

// TestRegistryClone checks Clone is deep: mutating the clone leaves the
// source alone, and all fleet/ledger counters survive the copy.
func TestRegistryClone(t *testing.T) {
	s := MetricsOnly()
	s.Kprobe(1, "switch", 1)
	s.FleetNode(2, 3, 10, 7, 2, 1, true, "ioctl-error")
	s.FleetRound(3, 0, 1, 1)
	src := s.Registry()
	c, err := src.Clone()
	if err != nil {
		t.Fatal(err)
	}
	c.CtxSwitches.Add(5)
	c.KprobeHits.Add("switch", 5)
	if src.CtxSwitches.Value() != 0 || src.KprobeHits.Get("switch") != 1 {
		t.Error("mutating the clone changed the source registry")
	}
	for name, pair := range map[string][2]uint64{
		"FleetRounds":    {c.FleetRounds.Value(), 1},
		"FleetNodes":     {c.FleetNodes.Value(), 1},
		"FleetSamples":   {c.FleetSamples.Value(), 7},
		"FleetDegraded":  {c.FleetDegraded.Value(), 1},
		"LedgerFires":    {c.LedgerFires.Value(), 10},
		"LedgerCaptured": {c.LedgerCaptured.Value(), 7},
		"LedgerDropped":  {c.LedgerDropped.Value(), 2},
		"LedgerLost":     {c.LedgerLost.Value(), 1},
	} {
		if pair[0] != pair[1] {
			t.Errorf("clone %s = %d, want %d", name, pair[0], pair[1])
		}
	}
	// The fleet emit kept the period-conservation ledger balanced.
	if c.LedgerFires.Value() != c.LedgerCaptured.Value()+c.LedgerDropped.Value()+c.LedgerLost.Value() {
		t.Error("ledger does not balance after clone")
	}
}

// TestFleetEventsInChromeTrace checks fleet events render on their own
// process with the lazy metadata line, and that traces without fleet
// activity do not mention the fleet process at all (golden stability).
func TestFleetEventsInChromeTrace(t *testing.T) {
	s := New()
	s.CtxSwitch(1, 0, 1)
	var plain bytes.Buffer
	if err := s.WriteChromeTrace(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "fleet") {
		t.Errorf("fleet process leaked into a fleet-free trace:\n%s", plain.String())
	}

	s.FleetNode(10, 42, 5, 4, 1, 0, true, "")
	s.FleetNode(11, 43, 5, 5, 0, 0, false, "ioctl-error")
	s.FleetRound(12, 0, 2, 1)
	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	var fleetMeta, node, faulted, round int
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name" && e.Pid == chromePidFleet:
			fleetMeta++
			if e.Args["name"] != "fleet" {
				t.Errorf("fleet process named %v", e.Args["name"])
			}
		case e.Name == "fleet-node":
			node++
			if e.Tid != 42 {
				t.Errorf("fleet-node tid = %d, want node index 42", e.Tid)
			}
			if e.Args["degraded"] != true || e.Args["samples"] != float64(4) {
				t.Errorf("fleet-node args = %v", e.Args)
			}
		case e.Name == "fleet-node:ioctl-error":
			faulted++
			if e.Args["faulted"] != true {
				t.Errorf("faulted fleet-node args = %v", e.Args)
			}
		case e.Name == "fleet-round":
			round++
			if e.Args["nodes"] != float64(2) || e.Args["degraded"] != float64(1) {
				t.Errorf("fleet-round args = %v", e.Args)
			}
		}
	}
	if fleetMeta != 1 {
		t.Errorf("fleet process_name emitted %d times, want exactly 1", fleetMeta)
	}
	if node != 1 || faulted != 1 || round != 1 {
		t.Errorf("fleet events rendered: node=%d faulted=%d round=%d, want 1 each", node, faulted, round)
	}
}

// TestFleetMetricsRenderOnlyWhenFolded checks the exposition of a fleet-
// free registry never mentions the fleet families, and a folded one
// carries them all.
func TestFleetMetricsRenderOnlyWhenFolded(t *testing.T) {
	s := MetricsOnly()
	s.CtxSwitch(1, 0, 1)
	var plain strings.Builder
	if err := s.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "kleb_fleet_") {
		t.Errorf("fleet families leaked into a fleet-free exposition:\n%s", plain.String())
	}

	s.FleetNode(2, 0, 3, 2, 1, 0, false, "")
	s.FleetRound(3, 0, 1, 0)
	var buf strings.Builder
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"kleb_fleet_rounds_total 1",
		"kleb_fleet_node_rounds_total 1",
		"kleb_fleet_samples_total 2",
		"kleb_fleet_ledger_fires_total 3",
		"kleb_fleet_ledger_captured_total 2",
		"kleb_fleet_ledger_dropped_total 1",
		"kleb_fleet_ledger_lost_total 0",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("folded exposition missing %q:\n%s", want, buf.String())
		}
	}
}

// TestPromEncoderEnforcesCounterSuffix checks the encoder refuses counters
// without _total and renders conformant families otherwise.
func TestPromEncoderEnforcesCounterSuffix(t *testing.T) {
	var bad strings.Builder
	e := NewPromEncoder(&bad)
	e.Counter("klebd_ingested", "Runs ingested.", 3)
	if e.Err() == nil {
		t.Fatal("encoder accepted a counter without _total")
	}

	var buf strings.Builder
	e = NewPromEncoder(&buf)
	e.Counter("klebd_ingested_total", "Runs ingested.", 3)
	e.Gauge("klebd_fleet_watermark", "Lowest fully folded round.", 7)
	e.GaugeVec("klebd_shard_lag", "Rounds each shard runs ahead of the watermark.", "shard",
		[]string{"0", "1"}, []uint64{2, 0})
	var h Histogram
	h.Observe(100)
	h.Observe(900)
	e.Histogram("klebd_merge_ns", "Merge latency, wall ns.", &h)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if err := LintExposition(strings.NewReader(buf.String())); err != nil {
		t.Errorf("encoder output fails the exposition lint: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"klebd_ingested_total 3",
		"klebd_fleet_watermark 7",
		`klebd_shard_lag{shard="0"} 2`,
		"klebd_merge_ns_count 2",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("encoder output missing %q:\n%s", want, buf.String())
		}
	}
}
