package telemetry

import (
	"strings"
	"testing"

	"kleb/internal/ktime"
)

// TestMergeCompatibleKeys checks the normal path: vecs stamped with the
// same dimension merge silently and an unstamped vec adopts the donor's.
func TestMergeCompatibleKeys(t *testing.T) {
	a, b := MetricsOnly(), MetricsOnly()
	a.Kprobe(ktime.Time(1), "switch", 1)
	b.Kprobe(ktime.Time(2), "fork", 2)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merging same-keyed sinks: %v", err)
	}
	reg := a.Registry()
	if got := reg.KprobeHits.Get("switch") + reg.KprobeHits.Get("fork"); got != 2 {
		t.Fatalf("merged kprobe hits = %d, want 2", got)
	}
	if key := reg.KprobeHits.Key(); key != "point" {
		t.Fatalf("merged vec key = %q, want %q", key, "point")
	}

	var empty Registry
	if err := empty.Merge(reg); err != nil {
		t.Fatalf("merging into empty registry: %v", err)
	}
	if key := empty.KprobeHits.Key(); key != "point" {
		t.Fatalf("empty registry did not adopt key: got %q", key)
	}
}

// TestMergeConflictingKeys checks that folding a registry whose vec was
// stamped with a different label dimension is refused with an error that
// names the field, while scalar counters still merge.
func TestMergeConflictingKeys(t *testing.T) {
	var dst, src Registry
	dst.KprobeHits.AddKeyed("point", "switch", 1)
	src.KprobeHits.AddKeyed("name", "write", 1)
	src.CtxSwitches.Add(7)

	err := dst.Merge(&src)
	if err == nil {
		t.Fatal("merging conflicting label dimensions succeeded")
	}
	for _, want := range []string{"KprobeHits", `"name"`, `"point"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
	if got := dst.CtxSwitches.Value(); got != 7 {
		t.Errorf("scalar counters should merge despite the vec conflict; ctx switches = %d, want 7", got)
	}
}

// TestAddKeyedConflictSurfaces checks a vec poisoned by two dimensions
// reports through Err, Merge and WritePrometheus.
func TestAddKeyedConflictSurfaces(t *testing.T) {
	var v CounterVec
	v.AddKeyed("point", "switch", 1)
	v.AddKeyed("name", "write", 1)
	if v.Err() == nil {
		t.Fatal("conflicted vec reports no error")
	}
	if got := v.Get("switch") + v.Get("write"); got != 2 {
		t.Fatalf("counts lost on conflict: %d, want 2", got)
	}

	var dst CounterVec
	if err := dst.merge(&v); err == nil {
		t.Fatal("merging a conflicted vec succeeded")
	}

	s := MetricsOnly()
	s.Registry().KprobeHits.AddKeyed("name", "write", 1)
	var sb strings.Builder
	err := s.WritePrometheus(&sb)
	if err == nil {
		t.Fatal("WritePrometheus accepted a vec keyed under the wrong dimension")
	}
	if !strings.Contains(err.Error(), "kleb_kprobe_hits_total") {
		t.Errorf("exporter error %q does not name the metric family", err)
	}
}

// TestWritePrometheusKeyedOutput checks a healthy keyed registry still
// renders, with the stamped dimension matching the exposition labels.
func TestWritePrometheusKeyedOutput(t *testing.T) {
	s := MetricsOnly()
	s.Kprobe(ktime.Time(1), "switch", 1)
	s.SyscallEnter(ktime.Time(2), "write", 1)
	s.Ioctl(ktime.Time(3), "kleb", 7, 1)
	s.Stage(ktime.Time(4), "boot", ktime.Duration(100))
	var sb strings.Builder
	if err := s.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus on a healthy sink: %v", err)
	}
	for _, want := range []string{
		`kleb_kprobe_hits_total{point="switch"} 1`,
		`kleb_syscalls_total{name="write"} 1`,
		`kleb_ioctls_total{device="kleb"} 1`,
		`kleb_stage_ns_total{stage="boot"} 100`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}
