package telemetry

import (
	"testing"
)

// TestNearestRank pins the nearest-rank definition both quantile
// implementations share: 0-indexed rank ceil(q·n)−1, clamped to [0, n−1].
func TestNearestRank(t *testing.T) {
	cases := []struct {
		q    float64
		n    uint64
		want uint64
	}{
		{0, 1, 0},
		{0, 10, 0},
		{1, 1, 0},
		{1, 10, 9},
		{0.5, 1, 0},
		{0.5, 2, 0},  // q·n integral: ceil(1)−1 = 0, not 1
		{0.5, 3, 1},  // ceil(1.5)−1 = 1
		{0.5, 4, 1},  // q·n integral again
		{0.5, 5, 2},  // ceil(2.5)−1 = 2
		{0.25, 4, 0}, // q·n integral
		{0.75, 4, 2},
		{0.99, 100, 98}, // q·n integral: the 99th of 100, 0-indexed 98
		{0.99, 101, 99}, // ceil(99.99)−1
		{0.999, 1000, 998},
	}
	for _, c := range cases {
		if got := nearestRank(c.q, c.n); got != c.want {
			t.Errorf("nearestRank(%v, %d) = %d, want %d", c.q, c.n, got, c.want)
		}
	}
}

// TestHistogramQuantileBoundaries drives the log2 histogram through the
// boundary semantics the nearest-rank fix pins: empty, single observation,
// exact-boundary q, and q = 0 / 1.
func TestHistogramQuantileBoundaries(t *testing.T) {
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}

	var one Histogram
	one.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 63 { // bucket of 42: [32,64) → upper 63
			t.Errorf("single-observation q=%v = %d, want 63", q, got)
		}
	}

	// The ISSUE's motivating case: p50 of {1, 1000} must land in 1's bucket
	// (upper bound 1), not 1000's (upper bound 1023).
	var two Histogram
	two.Observe(1)
	two.Observe(1000)
	if got := two.Quantile(0.5); got != 1 {
		t.Errorf("p50 of {1,1000} = %d, want 1", got)
	}
	if got := two.Quantile(0); got != 1 {
		t.Errorf("p0 of {1,1000} = %d, want 1", got)
	}
	if got := two.Quantile(1); got != 1023 {
		t.Errorf("p100 of {1,1000} = %d, want 1023", got)
	}

	// Exact-boundary q on a larger set: 4 observations in distinct buckets.
	var h Histogram
	for _, v := range []uint64{1, 10, 100, 1000} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want uint64
	}{
		{0.25, 1},   // rank 0 → bucket of 1
		{0.5, 15},   // rank 1 → bucket of 10: [8,16)
		{0.75, 127}, // rank 2 → bucket of 100: [64,128)
		{1, 1023},   // rank 3 → bucket of 1000
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

// TestExactQuantiles pins the exact accumulator's nearest-rank semantics on
// the same boundary table.
func TestExactQuantiles(t *testing.T) {
	var empty ExactQuantiles
	if empty.Quantile(0.5) != 0 || empty.Count() != 0 || empty.Mean() != 0 || empty.Max() != 0 {
		t.Error("empty accumulator must read as zero")
	}

	var one ExactQuantiles
	one.Observe(42)
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := one.Quantile(q); got != 42 {
			t.Errorf("single-observation q=%v = %d, want 42", q, got)
		}
	}

	var e ExactQuantiles
	for _, v := range []uint64{1000, 1, 100, 10} { // insertion order must not matter
		e.Observe(v)
	}
	if e.Count() != 4 || e.Sum() != 1111 {
		t.Fatalf("Count=%d Sum=%d", e.Count(), e.Sum())
	}
	cases := []struct {
		q    float64
		want uint64
	}{
		{0, 1},
		{0.25, 1},   // q·n integral: rank 0
		{0.5, 10},   // q·n integral: rank 1 — the fixed off-by-one
		{0.75, 100}, // rank 2
		{0.9, 1000}, // ceil(3.6)−1 = 3
		{1, 1000},
	}
	for _, c := range cases {
		if got := e.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if got := e.Max(); got != 1000 {
		t.Errorf("Max = %d, want 1000", got)
	}
	// Observing after a quantile read must keep the accumulator coherent.
	e.Observe(5)
	if got := e.Quantile(0.5); got != 10 { // sorted {1,5,10,100,1000}: rank ceil(2.5)−1 = 2
		t.Errorf("post-observe p50 = %d, want 10", got)
	}
}

// TestExactQuantilesMergeCommutative asserts the worker-pool contract: a
// batch accumulator built by merging per-run accumulators in any order
// reads identically, including against one flat accumulator of the union.
func TestExactQuantilesMergeCommutative(t *testing.T) {
	parts := [][]uint64{
		{900, 30, 4},
		{1, 2, 3, 4, 5},
		{},
		{1000000},
		{77, 77, 77},
	}
	var flat ExactQuantiles
	for _, p := range parts {
		for _, v := range p {
			flat.Observe(v)
		}
	}
	build := func(order []int) *ExactQuantiles {
		var acc ExactQuantiles
		for _, i := range order {
			var part ExactQuantiles
			for _, v := range parts[i] {
				part.Observe(v)
			}
			acc.Merge(&part)
		}
		return &acc
	}
	orders := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}}
	qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	for _, order := range orders {
		acc := build(order)
		if acc.Count() != flat.Count() || acc.Sum() != flat.Sum() {
			t.Fatalf("order %v: Count/Sum diverge", order)
		}
		for _, q := range qs {
			if got, want := acc.Quantile(q), flat.Quantile(q); got != want {
				t.Errorf("order %v: Quantile(%v) = %d, want %d", order, q, got, want)
			}
		}
	}
	// Merging a nil accumulator is a no-op.
	acc := build(orders[0])
	n := acc.Count()
	acc.Merge(nil)
	if acc.Count() != n {
		t.Error("Merge(nil) changed the accumulator")
	}
}
