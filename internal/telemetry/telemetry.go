// Package telemetry is the simulator's cross-layer observability subsystem
// (DESIGN.md S24): a deterministic trace recorder plus a metrics registry,
// threaded as a single *Sink through the kernel, the PMU, the K-LEB module
// and the session layer.
//
// Two properties drive the design:
//
//   - Zero overhead when disabled. Every emit method is safe on a nil
//     *Sink and returns immediately, so an uninstrumented run pays one
//     predicted branch per call site — no allocation, no formatting, no
//     locks. BENCH_telemetry.json records the measured cost.
//
//   - Reproducible observability. Events are stamped with virtual ktime,
//     never wall-clock, and a Sink is owned by exactly one simulated run,
//     so the exported trace and metrics are byte-identical for the same
//     Spec at any scheduler worker count and across repeated runs with
//     the same seed. The observability layer never perturbs the
//     simulation: emitting costs no virtual time and consumes no
//     randomness.
//
// Exporters render the captured data three ways: Chrome trace-event JSON
// (WriteChromeTrace, loadable in Perfetto or chrome://tracing), Prometheus
// text exposition (WritePrometheus), and a human Markdown summary
// (report.Writer.Telemetry).
package telemetry

import "kleb/internal/ktime"

// DefaultEvents is the Recorder ring capacity when New is used. At K-LEB's
// 100µs sampling a 2-second run emits on the order of 100k events; the
// default keeps the most recent window of a long run instead of growing
// without bound.
const DefaultEvents = 1 << 17

// Sink bundles the trace Recorder and the metrics Registry for one
// simulated run (or one scheduler batch). A Sink is single-owner: it must
// only be written by the goroutine executing its run. The nil *Sink is the
// disabled state; every method below tolerates it — the marker makes
// klebvet's emitguard analyzer enforce that contract on every method.
//
//klebvet:nilsafe
type Sink struct {
	rec Recorder
	reg Registry
}

// New returns a Sink recording up to DefaultEvents trace events.
func New() *Sink { return NewWithCapacity(DefaultEvents) }

// NewWithCapacity returns a Sink whose Recorder holds up to n events.
// n <= 0 yields a metrics-only Sink (no event recording), the cheap shape
// the batch scheduler injects per run when aggregating registries.
func NewWithCapacity(n int) *Sink {
	s := &Sink{}
	if n > 0 {
		s.rec.buf = make([]Event, n)
	}
	return s
}

// MetricsOnly returns a Sink that aggregates metrics but records no trace
// events.
func MetricsOnly() *Sink { return NewWithCapacity(0) }

// Enabled reports whether the sink is live (non-nil).
func (s *Sink) Enabled() bool { return s != nil }

// Events returns the recorded trace in capture order (oldest first).
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	return s.rec.Events()
}

// Truncated returns how many events the bounded ring discarded (oldest
// first) to stay within capacity.
func (s *Sink) Truncated() uint64 {
	if s == nil {
		return 0
	}
	return s.rec.truncated
}

// Registry returns the sink's metrics for inspection and merging. Nil for
// a disabled sink.
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return &s.reg
}

// Merge folds another sink's metrics into this one. Counter, gauge and
// histogram merges are commutative, so a batch registry assembled from
// per-run sinks is identical for any completion order or worker count.
// Trace events are not merged — a trace belongs to one run. The error
// reports label-dimension conflicts between the two registries (see
// Registry.Merge); it is nil whenever both sinks were fed through the
// emit API.
func (s *Sink) Merge(o *Sink) error {
	if s == nil || o == nil {
		return nil
	}
	return s.reg.Merge(&o.reg)
}

// --- Emit API -------------------------------------------------------------
//
// One method per event class in the taxonomy. Each is nil-receiver safe and
// records the event (if the ring is enabled) plus the derived metrics.

// CtxSwitch records a context switch from prev to next (0 = idle).
func (s *Sink) CtxSwitch(now ktime.Time, prev, next int32) {
	if s == nil {
		return
	}
	s.reg.CtxSwitches.Add(1)
	s.rec.record(Event{Time: now, Kind: KindCtxSwitch, PID: next, Arg1: uint64(uint32(prev))})
}

// TimerArm records an HRTimer being armed (or re-armed) for nominal expiry.
func (s *Sink) TimerArm(now ktime.Time, id uint64, nominal ktime.Time) {
	if s == nil {
		return
	}
	s.reg.TimerArms.Add(1)
	s.rec.record(Event{Time: now, Kind: KindTimerArm, Arg1: id, Arg2: uint64(nominal)})
}

// TimerFire records an HRTimer expiry. nominal is the drift-free grid
// position, effective the jittered instant the interrupt actually fired;
// their difference is the per-fire timer jitter the paper warns about.
func (s *Sink) TimerFire(now ktime.Time, id uint64, nominal, effective ktime.Time) {
	if s == nil {
		return
	}
	s.reg.TimerFires.Add(1)
	s.reg.TimerJitter.Observe(uint64(effective.Sub(nominal)))
	s.rec.record(Event{Time: now, Kind: KindTimerFire, Arg1: uint64(nominal), Arg2: uint64(effective)})
}

// TimerCancel records an HRTimer being disarmed.
func (s *Sink) TimerCancel(now ktime.Time, id uint64) {
	if s == nil {
		return
	}
	s.reg.TimerCancels.Add(1)
	s.rec.record(Event{Time: now, Kind: KindTimerCancel, Arg1: id})
}

// Kprobe records one probe invocation at a probe point ("switch", "fork",
// "exit"). pid is the process the probe observed.
func (s *Sink) Kprobe(now ktime.Time, point string, pid int32) {
	if s == nil {
		return
	}
	s.reg.KprobeHits.AddKeyed("point", point, 1)
	s.rec.record(Event{Time: now, Kind: KindKprobe, PID: pid, Name: point})
}

// SyscallEnter records a process entering a syscall.
func (s *Sink) SyscallEnter(now ktime.Time, name string, pid int32) {
	if s == nil {
		return
	}
	s.reg.Syscalls.AddKeyed("name", name, 1)
	s.rec.record(Event{Time: now, Kind: KindSyscallEnter, PID: pid, Name: name})
}

// SyscallExit records the matching syscall return.
func (s *Sink) SyscallExit(now ktime.Time, name string, pid int32) {
	if s == nil {
		return
	}
	s.rec.record(Event{Time: now, Kind: KindSyscallExit, PID: pid, Name: name})
}

// PMI records a performance-monitoring interrupt delivery. latency is the
// raise-to-delivery delay (the interrupt was raised by a counter overflow,
// possibly mid-instruction-block).
func (s *Sink) PMI(now ktime.Time, counter int, fixed bool, latency ktime.Duration) {
	if s == nil {
		return
	}
	s.reg.PMIs.Add(1)
	s.reg.PMILatency.Observe(uint64(latency))
	s.rec.record(Event{Time: now, Kind: KindPMI, Arg1: counterArg(counter, fixed), Arg2: uint64(latency)})
}

// PMUOverflow records a hardware counter wrapping its 48-bit width.
func (s *Sink) PMUOverflow(now ktime.Time, counter int, fixed bool) {
	if s == nil {
		return
	}
	s.reg.PMUOverflows.Add(1)
	s.rec.record(Event{Time: now, Kind: KindOverflow, Arg1: counterArg(counter, fixed)})
}

// MuxRotate records perf_events rotating a multiplexed context to its next
// scheduling round: the target pid, the round index within the rotation
// cycle, the cycle length and how many requested events got counters.
func (s *Sink) MuxRotate(now ktime.Time, pid int32, round, rounds, placed int) {
	if s == nil {
		return
	}
	s.reg.MuxRotations.Add(1)
	s.rec.record(Event{Time: now, Kind: KindMuxRotate, PID: pid,
		Arg1: uint64(round), Arg2: uint64(rounds)<<32 | uint64(uint32(placed))})
}

// counterArg packs a counter index with its fixed/programmable class.
func counterArg(counter int, fixed bool) uint64 {
	v := uint64(uint32(counter))
	if fixed {
		v |= 1 << 32
	}
	return v
}

// Ioctl records a module ioctl on a device.
func (s *Sink) Ioctl(now ktime.Time, device string, cmd uint32, pid int32) {
	if s == nil {
		return
	}
	s.reg.Ioctls.AddKeyed("device", device, 1)
	s.rec.record(Event{Time: now, Kind: KindIoctl, PID: pid, Name: device, Arg1: uint64(cmd)})
}

// Stage records the completion of a session lifecycle stage ("boot",
// "attach", "drive", "drain") that spanned the dur ending at now.
func (s *Sink) Stage(now ktime.Time, stage string, dur ktime.Duration) {
	if s == nil {
		return
	}
	s.reg.StageNs.AddKeyed("stage", stage, uint64(dur))
	s.rec.record(Event{Time: now, Kind: KindStage, Name: stage, Arg1: uint64(dur)})
}

// SampleCaptured records the K-LEB module appending one sample to its
// kernel ring, which then holds depth of capacity samples.
func (s *Sink) SampleCaptured(now ktime.Time, depth, capacity int) {
	if s == nil {
		return
	}
	s.reg.Samples.Add(1)
	s.reg.RingHighWater.SetMax(uint64(depth))
	s.rec.record(Event{Time: now, Kind: KindSample, Arg1: uint64(depth), Arg2: uint64(capacity)})
}

// BufferPause records a buffer-full safety-pause engagement; dropped is
// the module's cumulative count of sampling periods lost so far (periods
// keep elapsing, and being counted, while the pause holds).
func (s *Sink) BufferPause(now ktime.Time, dropped uint64) {
	if s == nil {
		return
	}
	s.reg.RingPauses.Add(1)
	s.rec.record(Event{Time: now, Kind: KindPause, Arg1: dropped})
}

// BufferDrain records the controller draining n samples, leaving remaining
// in the ring.
func (s *Sink) BufferDrain(now ktime.Time, n, remaining int) {
	if s == nil {
		return
	}
	s.reg.RingDrained.Add(uint64(n))
	s.rec.record(Event{Time: now, Kind: KindDrain, Arg1: uint64(n), Arg2: uint64(remaining)})
}

// FaultInjected records the fault layer injecting one failure of the given
// kind (internal/fault's Kind* strings). Every injection is observable:
// the chaos invariant is only checkable because nothing fails silently.
func (s *Sink) FaultInjected(now ktime.Time, kind string) {
	if s == nil {
		return
	}
	s.reg.FaultsInjected.AddKeyed("kind", kind, 1)
	s.rec.record(Event{Time: now, Kind: KindFault, Name: kind})
}

// CtlRetry records the K-LEB controller retrying op after a transient
// failure; attempt is the consecutive-failure count for this op.
func (s *Sink) CtlRetry(now ktime.Time, op string, attempt uint64) {
	if s == nil {
		return
	}
	s.reg.CtlRetries.Add(1)
	s.rec.record(Event{Time: now, Kind: KindCtlRetry, Name: op, Arg1: attempt})
}

// RunDegraded records a run finishing with partial data (controller abort
// or unrecoverable write failures). Emitted at most once per run.
func (s *Sink) RunDegraded(now ktime.Time, reason string) {
	if s == nil {
		return
	}
	s.reg.RunsDegraded.Add(1)
	s.rec.record(Event{Time: now, Kind: KindDegraded, Name: reason})
}

// ProcessName records pid's human name for trace viewers (Perfetto thread
// labels). Emitted at spawn; carries no metric.
func (s *Sink) ProcessName(pid int32, name string) {
	if s == nil {
		return
	}
	s.rec.record(Event{Kind: KindMeta, PID: pid, Name: name})
}

// FleetNode records one fleet node finishing its monitoring round under
// klebd: the samples it captured plus its period-conservation ledger for
// the round (fires = captured + dropped + lost). degraded marks a run that
// finished with partial data; fault names the first unrecoverable fault
// ("" for a clean round).
func (s *Sink) FleetNode(now ktime.Time, node int32, fires, captured, dropped, lost uint64, degraded bool, fault string) {
	if s == nil {
		return
	}
	s.reg.FleetNodes.Add(1)
	s.reg.FleetSamples.Add(captured)
	s.reg.LedgerFires.Add(fires)
	s.reg.LedgerCaptured.Add(captured)
	s.reg.LedgerDropped.Add(dropped)
	s.reg.LedgerLost.Add(lost)
	var flags uint64
	if degraded {
		s.reg.FleetDegraded.Add(1)
		flags |= 1
	}
	if fault != "" {
		flags |= 2
	}
	s.rec.record(Event{Time: now, Kind: KindFleetNode, PID: node, Name: fault, Arg1: captured, Arg2: flags})
}

// FleetRound records one whole fleet round folding into the aggregate:
// every node of the round has completed and been ingested.
func (s *Sink) FleetRound(now ktime.Time, round uint64, nodes, degraded int) {
	if s == nil {
		return
	}
	s.reg.FleetRounds.Add(1)
	s.rec.record(Event{Time: now, Kind: KindFleetRound,
		Arg1: round, Arg2: uint64(nodes)<<32 | uint64(uint32(degraded))})
}

// RunDone records one batch run finishing on a logical scheduler slot
// (worker index under the pool's deterministic striped assignment). Only
// batch-level sinks receive these; the counters deliberately omit the slot
// so batch metrics stay identical across worker counts.
func (s *Sink) RunDone(index, slot int, failed bool) {
	if s == nil {
		return
	}
	s.reg.Runs.Add(1)
	if failed {
		s.reg.RunFailures.Add(1)
	}
	var f uint64
	if failed {
		f = 1
	}
	s.rec.record(Event{Kind: KindRun, PID: int32(slot), Arg1: uint64(index), Arg2: f})
}
