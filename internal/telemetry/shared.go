package telemetry

import (
	"io"
	"sync"
)

// SharedSink wraps a Sink for concurrent use: many shard goroutines folding
// finished runs in while HTTP scrape handlers take consistent snapshots
// out. The plain Sink stays lock-free (its single-owner emit path is the
// ~8.5 ns one the bench gate protects); the daemon pays for synchronization
// only at the aggregation boundary, where merges are coarse-grained.
type SharedSink struct {
	mu sync.Mutex
	// sink is the wrapped aggregate. guarded by mu
	sink *Sink
}

// NewShared returns a shared sink whose trace ring retains up to capacity
// events (capacity <= 0 selects DefaultEvents).
func NewShared(capacity int) *SharedSink {
	if capacity <= 0 {
		capacity = DefaultEvents
	}
	return &SharedSink{sink: NewWithCapacity(capacity)}
}

// Ingest folds one finished run's metrics into the aggregate. Per-run
// trace events are not ingested (a trace belongs to one run); the shared
// ring retains fleet-level events recorded through Emit.
func (s *SharedSink) Ingest(o *Sink) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sink.Merge(o)
}

// Emit runs fn against the wrapped sink under the lock. It is the write
// path for fleet-level events (FleetNode, FleetRound) that belong to the
// aggregate itself rather than to any one run.
func (s *SharedSink) Emit(fn func(*Sink)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.sink)
}

// Snapshot returns a consistent point-in-time copy of the aggregate:
// a cloned registry plus the retained event window. Rendering happens on
// the copy, so a scrape never holds the ingest lock while formatting.
func (s *SharedSink) Snapshot() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, err := s.sink.Registry().Clone()
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Registry:  reg,
		Events:    s.sink.Events(),
		Truncated: s.sink.Truncated(),
	}, nil
}

// Snapshot is a point-in-time copy of a SharedSink, safe to render or
// inspect after the source moves on.
type Snapshot struct {
	Registry *Registry
	// Events is the retained trace window, oldest-first.
	Events []Event
	// Truncated counts events evicted from the retention ring before this
	// snapshot was taken.
	Truncated uint64
}

// WritePrometheus renders the snapshot's registry as text exposition.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	return s.Registry.WritePrometheus(w)
}

// WriteChromeTrace renders the snapshot's event window as Chrome trace-
// event JSON.
func (s *Snapshot) WriteChromeTrace(w io.Writer) error {
	return WriteChromeEvents(w, s.Events)
}
