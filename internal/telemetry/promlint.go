package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// LintExposition validates Prometheus text exposition (version 0.0.4) the
// way a strict scraper would, plus the naming conventions real servers
// expect: every family declares HELP then TYPE before its samples, samples
// are grouped under their family, counter names carry the _total suffix
// (and gauges don't), metric and label names are well-formed, values
// parse, and histogram families are complete — cumulative non-decreasing
// buckets ending in +Inf, with _sum and _count agreeing. It backs both the
// exposition conformance tests and the klebd smoke scrape.
func LintExposition(r io.Reader) error {
	l := &expoLint{families: map[string]*expoFamily{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if err := l.line(sc.Text()); err != nil {
			return fmt.Errorf("exposition line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return l.finish()
}

// expoFamily tracks one declared metric family while linting.
type expoFamily struct {
	typ     string
	hasHelp bool
	samples int
	// Histogram shape tracking.
	buckets  int
	lastLE   float64
	lastCum  float64
	infSeen  bool
	infCum   float64
	sumSeen  bool
	cntSeen  bool
	cntValue float64
}

type expoLint struct {
	families map[string]*expoFamily
	order    []string
	current  string // family owning the current sample group
}

func (l *expoLint) line(s string) error {
	switch {
	case strings.TrimSpace(s) == "":
		return nil
	case strings.HasPrefix(s, "# HELP "):
		return l.help(strings.TrimPrefix(s, "# HELP "))
	case strings.HasPrefix(s, "# TYPE "):
		return l.typ(strings.TrimPrefix(s, "# TYPE "))
	case strings.HasPrefix(s, "#"):
		return nil // free-form comment
	}
	return l.sample(s)
}

func (l *expoLint) help(rest string) error {
	name, _, ok := strings.Cut(rest, " ")
	if !ok || !validMetricName(name) {
		return fmt.Errorf("malformed HELP line for %q", name)
	}
	f := l.families[name]
	if f == nil {
		f = &expoFamily{}
		l.families[name] = f
		l.order = append(l.order, name)
	}
	if f.hasHelp {
		return fmt.Errorf("duplicate HELP for %s", name)
	}
	if f.samples > 0 {
		return fmt.Errorf("HELP for %s after its samples", name)
	}
	f.hasHelp = true
	return nil
}

func (l *expoLint) typ(rest string) error {
	name, typ, ok := strings.Cut(rest, " ")
	if !ok || !validMetricName(name) {
		return fmt.Errorf("malformed TYPE line for %q", name)
	}
	switch typ {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return fmt.Errorf("%s: unknown type %q", name, typ)
	}
	f := l.families[name]
	if f == nil {
		f = &expoFamily{}
		l.families[name] = f
		l.order = append(l.order, name)
	}
	if f.typ != "" {
		return fmt.Errorf("duplicate TYPE for %s", name)
	}
	if !f.hasHelp {
		return fmt.Errorf("%s: TYPE must follow HELP", name)
	}
	if f.samples > 0 {
		return fmt.Errorf("TYPE for %s after its samples", name)
	}
	switch {
	case typ == "counter" && !strings.HasSuffix(name, "_total"):
		return fmt.Errorf("counter %s must carry the _total suffix", name)
	case typ == "gauge" && strings.HasSuffix(name, "_total"):
		return fmt.Errorf("gauge %s must not carry the _total suffix", name)
	}
	f.typ = typ
	l.current = name
	return nil
}

func (l *expoLint) sample(s string) error {
	name, labels, value, err := splitSample(s)
	if err != nil {
		return err
	}
	fam, base := l.owner(name)
	if fam == nil {
		return fmt.Errorf("sample %s has no declared family", name)
	}
	if base != l.current {
		return fmt.Errorf("sample %s interleaved outside its %s family group", name, base)
	}
	v, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return fmt.Errorf("sample %s: bad value %q", name, value)
	}
	if (fam.typ == "counter" || fam.typ == "histogram") && v < 0 {
		return fmt.Errorf("sample %s: negative %s value %s", name, fam.typ, value)
	}
	fam.samples++
	if fam.typ == "histogram" {
		return l.histSample(base, fam, name, labels, v)
	}
	if name != base {
		return fmt.Errorf("%s: suffixed sample in non-histogram family %s", name, base)
	}
	return nil
}

// histSample checks one sample of a histogram family: cumulative buckets,
// then _sum and _count.
func (l *expoLint) histSample(base string, f *expoFamily, name string, labels map[string]string, v float64) error {
	switch name {
	case base + "_bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("%s: bucket without le label", name)
		}
		bound, err := parseLE(le)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if f.infSeen {
			return fmt.Errorf("%s: bucket after le=\"+Inf\"", name)
		}
		if v < f.lastCum {
			return fmt.Errorf("%s: cumulative bucket counts decrease at le=%q", name, le)
		}
		if math.IsInf(bound, 1) {
			f.infSeen, f.infCum = true, v
		} else {
			if f.buckets > 0 && bound <= f.lastLE {
				return fmt.Errorf("%s: bucket bounds not increasing at le=%q", name, le)
			}
			f.lastLE = bound
		}
		f.buckets++
		f.lastCum = v
	case base + "_sum":
		f.sumSeen = true
	case base + "_count":
		f.cntSeen, f.cntValue = true, v
	default:
		return fmt.Errorf("%s: unexpected sample in histogram family %s", name, base)
	}
	return nil
}

// finish runs the whole-family checks once the stream ends.
func (l *expoLint) finish() error {
	for _, name := range l.order {
		f := l.families[name]
		if f.typ == "" {
			return fmt.Errorf("family %s: HELP without TYPE", name)
		}
		// A declared family with zero samples is legal (an empty vec renders
		// its header only) — except for histograms, whose shape checks below
		// require the full _bucket/_sum/_count triad.
		if f.typ != "histogram" {
			continue
		}
		switch {
		case !f.infSeen:
			return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", name)
		case !f.sumSeen:
			return fmt.Errorf("histogram %s: missing _sum", name)
		case !f.cntSeen:
			return fmt.Errorf("histogram %s: missing _count", name)
		case f.cntValue != f.infCum:
			return fmt.Errorf("histogram %s: _count %g disagrees with +Inf bucket %g", name, f.cntValue, f.infCum)
		}
	}
	return nil
}

// owner resolves a sample name to its declared family, honouring the
// histogram _bucket/_sum/_count suffixes.
func (l *expoLint) owner(name string) (*expoFamily, string) {
	if f := l.families[name]; f != nil {
		return f, name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if f := l.families[base]; f != nil && f.typ == "histogram" {
			return f, base
		}
	}
	return nil, ""
}

// parseLE parses a bucket boundary.
func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q", s)
	}
	return v, nil
}

// splitSample parses `name{label="v",...} value` into its parts. The label
// set may be absent. Escapes inside label values follow the exposition
// rules (\\, \", \n).
func splitSample(s string) (name string, labels map[string]string, value string, err error) {
	i := strings.IndexAny(s, "{ ")
	if i < 0 {
		return "", nil, "", fmt.Errorf("malformed sample %q", s)
	}
	name = s[:i]
	if !validMetricName(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	rest := s[i:]
	if rest[0] == '{' {
		labels = map[string]string{}
		rest = rest[1:]
		for {
			if rest == "" {
				return "", nil, "", fmt.Errorf("sample %s: unterminated label set", name)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, "", fmt.Errorf("sample %s: malformed label pair", name)
			}
			lname := rest[:eq]
			if !validLabelName(lname) {
				return "", nil, "", fmt.Errorf("sample %s: invalid label name %q", name, lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, "", fmt.Errorf("sample %s: label %s value not quoted", name, lname)
			}
			lval, tail, verr := scanQuoted(rest)
			if verr != nil {
				return "", nil, "", fmt.Errorf("sample %s: label %s: %w", name, lname, verr)
			}
			labels[lname] = lval
			rest = tail
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	value = strings.TrimSpace(rest)
	if value == "" || strings.ContainsAny(value, " \t") {
		return "", nil, "", fmt.Errorf("sample %s: malformed value %q", name, value)
	}
	return name, labels, value, nil
}

// scanQuoted consumes a double-quoted label value (with \\, \" and \n
// escapes) from the front of s, returning the decoded value and the tail.
func scanQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("truncated escape")
			}
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
