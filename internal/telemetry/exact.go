package telemetry

import "sort"

// ExactQuantiles is an exact-percentile accumulator: it retains every
// observation, so Quantile answers with the actual q-quantile observation
// rather than a bucket bound. The log2 Histogram is the right tool for
// order-of-magnitude shapes (timer jitter, PMI latency); it is the wrong
// tool for tail-latency reporting, where a factor-of-two bucket swallows
// the very p99/p999 differences an overhead study exists to measure.
//
// Memory is one uint64 per observation, which is fine for the request
// populations the workload experiments produce (thousands to low millions);
// it is not a streaming sketch and should not be wired into unbounded
// hot-path telemetry.
//
// The zero value is ready to use. Not safe for concurrent use; like the
// rest of the registry types, one accumulator belongs to one run, and
// cross-run aggregation goes through Merge.
type ExactQuantiles struct {
	vals   []uint64
	sum    uint64
	sorted bool
}

// Observe records one value.
func (e *ExactQuantiles) Observe(v uint64) {
	e.vals = append(e.vals, v)
	e.sum += v
	e.sorted = false
}

// Count returns the number of observations.
func (e *ExactQuantiles) Count() uint64 { return uint64(len(e.vals)) }

// Sum returns the sum of all observed values.
func (e *ExactQuantiles) Sum() uint64 { return e.sum }

// Mean returns the average observed value (0 with no observations).
func (e *ExactQuantiles) Mean() float64 {
	if len(e.vals) == 0 {
		return 0
	}
	return float64(e.sum) / float64(len(e.vals))
}

// Quantile returns the exact q-quantile observation (q in [0,1]) under the
// same nearest-rank rule the log2 Histogram uses: the observation at
// 0-indexed rank ceil(q·n)−1 of the sorted values. q=0 selects the minimum,
// q=1 the maximum. Returns 0 with no observations.
func (e *ExactQuantiles) Quantile(q float64) uint64 {
	n := uint64(len(e.vals))
	if n == 0 {
		return 0
	}
	e.ensureSorted()
	return e.vals[nearestRank(q, n)]
}

// Max returns the largest observation (0 with none).
func (e *ExactQuantiles) Max() uint64 {
	if len(e.vals) == 0 {
		return 0
	}
	e.ensureSorted()
	return e.vals[len(e.vals)-1]
}

// Merge folds o's observations into e. Because quantiles are computed over
// the sorted union, Merge is commutative and associative — a batch
// accumulator assembled from per-run accumulators reads identically
// regardless of completion order or worker count.
func (e *ExactQuantiles) Merge(o *ExactQuantiles) {
	if o == nil || len(o.vals) == 0 {
		return
	}
	e.vals = append(e.vals, o.vals...)
	e.sum += o.sum
	e.sorted = false
}

func (e *ExactQuantiles) ensureSorted() {
	if e.sorted {
		return
	}
	sort.Slice(e.vals, func(i, j int) bool { return e.vals[i] < e.vals[j] })
	e.sorted = true
}
