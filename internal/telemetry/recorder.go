package telemetry

import "kleb/internal/ktime"

// Kind classifies a trace event.
type Kind uint8

// The event taxonomy. Every class the ISSUE's observability layer captures
// has a distinct kind; exporters switch on it to pick the right rendering
// (instant, span, counter track or metadata).
const (
	// KindCtxSwitch: a context switch. PID = incoming process (0 = idle),
	// Arg1 = outgoing pid.
	KindCtxSwitch Kind = iota
	// KindTimerArm: an HRTimer armed/re-armed. Arg1 = timer id,
	// Arg2 = nominal expiry.
	KindTimerArm
	// KindTimerFire: an HRTimer expiry. Arg1 = nominal expiry,
	// Arg2 = effective (jittered) expiry; Arg2-Arg1 is the per-fire jitter.
	KindTimerFire
	// KindTimerCancel: an HRTimer disarmed. Arg1 = timer id.
	KindTimerCancel
	// KindKprobe: a probe invocation. Name = probe point, PID = observed
	// process.
	KindKprobe
	// KindSyscallEnter / KindSyscallExit: syscall boundaries. Name =
	// syscall, PID = caller.
	KindSyscallEnter
	KindSyscallExit
	// KindPMI: a performance-monitoring interrupt delivery. Arg1 = packed
	// counter id, Arg2 = raise-to-delivery latency in ns.
	KindPMI
	// KindOverflow: a 48-bit hardware counter wrap. Arg1 = packed counter.
	KindOverflow
	// KindIoctl: a module ioctl. Name = device, Arg1 = command, PID =
	// caller.
	KindIoctl
	// KindStage: a session lifecycle stage completion. Name = stage,
	// Arg1 = stage duration in ns.
	KindStage
	// KindSample: the K-LEB module captured a sample. Arg1 = ring depth
	// after the push, Arg2 = ring capacity.
	KindSample
	// KindPause: a buffer-full safety stop. Arg1 = cumulative stops.
	KindPause
	// KindDrain: a controller drain. Arg1 = samples drained, Arg2 = left.
	KindDrain
	// KindMeta: process-name metadata for trace viewers. PID + Name.
	KindMeta
	// KindRun: one scheduler batch run completed. PID = logical worker
	// slot, Arg1 = batch index, Arg2 = 1 on failure.
	KindRun
	// KindFault: the fault layer injected one failure. Name = fault kind
	// (see internal/fault's Kind* strings).
	KindFault
	// KindCtlRetry: the K-LEB controller retried a transient ioctl failure.
	// Name = operation, Arg1 = consecutive attempt number.
	KindCtlRetry
	// KindDegraded: a run finished degraded (partial data). Name = reason.
	KindDegraded
	// KindMuxRotate: perf_events rotated a multiplexed context to its next
	// scheduling round. PID = target, Arg1 = round index, Arg2 = packed
	// (rounds << 32) | events placed this round.
	KindMuxRotate
	// KindFleetNode: one fleet node finished its monitoring round (klebd).
	// PID = node index, Arg1 = samples captured this round, Arg2 = bit 0
	// degraded, bit 1 faulted.
	KindFleetNode
	// KindFleetRound: a whole fleet round folded into the aggregate.
	// Arg1 = round index, Arg2 = packed (nodes << 32) | degraded nodes.
	KindFleetRound

	numKinds
)

var kindNames = [numKinds]string{
	KindCtxSwitch:    "ctx-switch",
	KindTimerArm:     "hrtimer-arm",
	KindTimerFire:    "hrtimer-fire",
	KindTimerCancel:  "hrtimer-cancel",
	KindKprobe:       "kprobe",
	KindSyscallEnter: "syscall-enter",
	KindSyscallExit:  "syscall-exit",
	KindPMI:          "pmi",
	KindOverflow:     "pmu-overflow",
	KindIoctl:        "ioctl",
	KindStage:        "stage",
	KindSample:       "kleb-sample",
	KindPause:        "kleb-pause",
	KindDrain:        "kleb-drain",
	KindMeta:         "meta",
	KindRun:          "run",
	KindFault:        "fault",
	KindCtlRetry:     "ctl-retry",
	KindDegraded:     "run-degraded",
	KindMuxRotate:    "mux-rotate",
	KindFleetNode:    "fleet-node",
	KindFleetRound:   "fleet-round",
}

// String returns the kind's stable wire name (used in both exporters).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one typed trace record stamped with virtual time. The Arg
// fields are kind-specific (see the Kind constants); keeping them as plain
// integers makes an Event allocation-free to construct.
type Event struct {
	Time ktime.Time
	Kind Kind
	PID  int32
	Name string
	Arg1 uint64
	Arg2 uint64
}

// Recorder is a bounded ring buffer of Events. When full it discards the
// oldest event (flight-recorder semantics: a trace of a long run keeps its
// most recent window) and counts the loss in truncated. The drop policy is
// deterministic, so a truncated trace is still byte-identical across
// replays.
type Recorder struct {
	buf       []Event
	head      int // index of the oldest event
	count     int
	truncated uint64
}

// record appends e, evicting the oldest event if the ring is full. A
// Recorder with no buffer (metrics-only sink) records nothing.
func (r *Recorder) record(e Event) {
	if len(r.buf) == 0 {
		return
	}
	if r.count == len(r.buf) {
		r.buf[r.head] = e
		r.head = (r.head + 1) % len(r.buf)
		r.truncated++
		return
	}
	r.buf[(r.head+r.count)%len(r.buf)] = e
	r.count++
}

// Events returns the buffered events oldest-first.
func (r *Recorder) Events() []Event {
	out := make([]Event, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// Len returns the number of buffered events.
func (r *Recorder) Len() int { return r.count }
