package telemetry

import (
	"fmt"
	"io"
)

// Chrome trace-event pid values. The trace models the simulated machine as
// one "process" whose threads are the simulated PIDs, plus a separate
// scheduler process for batch-level occupancy events.
const (
	chromePidMachine   = 1
	chromePidScheduler = 2
	chromePidFleet     = 3
)

// WriteChromeTrace renders the recorded events as Chrome trace-event JSON
// (the JSON Array Format wrapped in an object), loadable in Perfetto or
// chrome://tracing. Timestamps are virtual microseconds with nanosecond
// decimals; the output is byte-deterministic for a given event stream.
//
//klebvet:artifact
func (s *Sink) WriteChromeTrace(w io.Writer) error {
	if s == nil {
		return WriteChromeEvents(w, nil)
	}
	return WriteChromeEvents(w, s.rec.Events())
}

// WriteChromeEvents renders an arbitrary event slice (oldest-first) in the
// same trace shape Sink.WriteChromeTrace produces. A live server renders a
// Snapshot's copied ring this way without holding the owning lock while
// formatting.
//
//klebvet:artifact
func WriteChromeEvents(w io.Writer, events []Event) error {
	cw := &chromeWriter{w: w}
	cw.printf("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	cw.printf("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"machine\"}}", chromePidMachine)
	cw.printf(",\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"scheduler\"}}", chromePidScheduler)
	for _, e := range events {
		cw.event(e)
	}
	cw.printf("\n]}\n")
	return cw.err
}

type chromeWriter struct {
	w   io.Writer
	err error
	// fleetMeta records that the fleet process_name metadata line has been
	// emitted. It is written lazily before the first fleet event so traces
	// without fleet activity stay byte-identical to pre-fleet output.
	fleetMeta bool
}

// fleetProcess emits the fleet process metadata once per trace.
func (c *chromeWriter) fleetProcess() {
	if c.fleetMeta {
		return
	}
	c.fleetMeta = true
	c.printf(",\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"fleet\"}}", chromePidFleet)
}

func (c *chromeWriter) printf(format string, args ...any) {
	if c.err != nil {
		return
	}
	_, c.err = fmt.Fprintf(c.w, format, args...)
}

// ts renders a virtual-ns instant as the trace format's microsecond
// timestamp, exactly (integer math only).
func ts(ns uint64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// head opens one event object with the common fields.
func (c *chromeWriter) head(ph, name string, pid int, tid int32, ns uint64) {
	c.printf(",\n{\"ph\":%q,\"name\":%q,\"pid\":%d,\"tid\":%d,\"ts\":%s", ph, name, pid, tid, ts(ns))
}

// instant emits a thread-scoped instant event; close with args or end.
func (c *chromeWriter) instant(name string, tid int32, ns uint64) {
	c.head("i", name, chromePidMachine, tid, ns)
	c.printf(",\"s\":\"t\"")
}

func (c *chromeWriter) end() { c.printf("}") }

func boolStr(b uint64) string {
	if b != 0 {
		return "true"
	}
	return "false"
}

// event renders one recorded event as one (occasionally two) trace events.
func (c *chromeWriter) event(e Event) {
	ns := uint64(e.Time)
	switch e.Kind {
	case KindMeta:
		c.printf(",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%q}}",
			chromePidMachine, e.PID, e.Name)
	case KindCtxSwitch:
		c.instant("ctx-switch", e.PID, ns)
		c.printf(",\"args\":{\"prev\":%d,\"next\":%d}", int32(uint32(e.Arg1)), e.PID)
		c.end()
	case KindTimerArm:
		c.instant("hrtimer-arm", 0, ns)
		c.printf(",\"args\":{\"timer\":%d,\"nominal_ns\":%d}", e.Arg1, e.Arg2)
		c.end()
	case KindTimerFire:
		c.instant("hrtimer-fire", 0, ns)
		c.printf(",\"args\":{\"nominal_ns\":%d,\"effective_ns\":%d,\"jitter_ns\":%d}",
			e.Arg1, e.Arg2, e.Arg2-e.Arg1)
		c.end()
	case KindTimerCancel:
		c.instant("hrtimer-cancel", 0, ns)
		c.printf(",\"args\":{\"timer\":%d}", e.Arg1)
		c.end()
	case KindKprobe:
		c.instant("kprobe:"+e.Name, e.PID, ns)
		c.end()
	case KindSyscallEnter:
		c.head("B", "sys:"+e.Name, chromePidMachine, e.PID, ns)
		c.end()
	case KindSyscallExit:
		c.head("E", "sys:"+e.Name, chromePidMachine, e.PID, ns)
		c.end()
	case KindPMI:
		c.instant("pmi", 0, ns)
		c.printf(",\"args\":{\"counter\":%d,\"fixed\":%s,\"latency_ns\":%d}",
			uint32(e.Arg1), boolStr(e.Arg1>>32), e.Arg2)
		c.end()
	case KindOverflow:
		c.instant("pmu-overflow", 0, ns)
		c.printf(",\"args\":{\"counter\":%d,\"fixed\":%s}", uint32(e.Arg1), boolStr(e.Arg1>>32))
		c.end()
	case KindIoctl:
		c.instant("ioctl:"+e.Name, e.PID, ns)
		c.printf(",\"args\":{\"cmd\":%d}", e.Arg1)
		c.end()
	case KindStage:
		// A completed span: ts is the stage start, dur its virtual length.
		c.head("X", "stage:"+e.Name, chromePidMachine, 0, ns-e.Arg1)
		c.printf(",\"dur\":%s", ts(e.Arg1))
		c.end()
	case KindSample:
		// Counter track: Perfetto draws ring occupancy over time.
		c.head("C", "kleb-ring", chromePidMachine, 0, ns)
		c.printf(",\"args\":{\"depth\":%d}", e.Arg1)
		c.end()
	case KindPause:
		c.instant("kleb-pause", 0, ns)
		c.printf(",\"args\":{\"stops\":%d}", e.Arg1)
		c.end()
	case KindDrain:
		c.instant("kleb-drain", 0, ns)
		c.printf(",\"args\":{\"drained\":%d,\"remaining\":%d}", e.Arg1, e.Arg2)
		c.end()
		c.head("C", "kleb-ring", chromePidMachine, 0, ns)
		c.printf(",\"args\":{\"depth\":%d}", e.Arg2)
		c.end()
	case KindRun:
		c.head("i", "run", chromePidScheduler, e.PID, ns)
		c.printf(",\"s\":\"t\",\"args\":{\"index\":%d,\"failed\":%s}", e.Arg1, boolStr(e.Arg2))
		c.end()
	case KindFault:
		c.instant("fault:"+e.Name, 0, ns)
		c.end()
	case KindCtlRetry:
		c.instant("ctl-retry:"+e.Name, 0, ns)
		c.printf(",\"args\":{\"attempt\":%d}", e.Arg1)
		c.end()
	case KindDegraded:
		c.instant("run-degraded", 0, ns)
		c.printf(",\"args\":{\"reason\":%q}", e.Name)
		c.end()
	case KindMuxRotate:
		c.instant("mux-rotate", e.PID, ns)
		c.printf(",\"args\":{\"round\":%d,\"rounds\":%d,\"placed\":%d}",
			e.Arg1, e.Arg2>>32, uint32(e.Arg2))
		c.end()
	case KindFleetNode:
		c.fleetProcess()
		name := "fleet-node"
		if e.Arg2&2 != 0 {
			name = "fleet-node:" + e.Name
		}
		c.head("i", name, chromePidFleet, e.PID, ns)
		c.printf(",\"s\":\"t\",\"args\":{\"samples\":%d,\"degraded\":%s,\"faulted\":%s}",
			e.Arg1, boolStr(e.Arg2&1), boolStr(e.Arg2&2))
		c.end()
	case KindFleetRound:
		c.fleetProcess()
		c.head("i", "fleet-round", chromePidFleet, 0, ns)
		c.printf(",\"s\":\"p\",\"args\":{\"round\":%d,\"nodes\":%d,\"degraded\":%d}",
			e.Arg1, e.Arg2>>32, uint32(e.Arg2))
		c.end()
	}
}
