package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the sink's registry in the Prometheus text
// exposition format (version 0.0.4). See Registry.WritePrometheus.
//
//klebvet:artifact
func (s *Sink) WritePrometheus(w io.Writer) error {
	if s == nil {
		return nil
	}
	return s.reg.WritePrometheus(w)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Metric families appear in a fixed order and
// vector labels are sorted, so the output is byte-deterministic for a
// given registry state. Durations are exported in virtual nanoseconds.
// Rendering a Snapshot's cloned registry lets a live server serve scrapes
// without holding the owning lock while formatting.
//
//klebvet:artifact
func (r *Registry) WritePrometheus(w io.Writer) error {
	pw := &promWriter{w: w}
	pw.counter("kleb_ctx_switches_total", "Context switches performed by the simulated scheduler.", &r.CtxSwitches)
	pw.vec("kleb_kprobe_hits_total", "Kprobe invocations by probe point.", "point", &r.KprobeHits)
	pw.vec("kleb_syscalls_total", "Syscalls entered, by name.", "name", &r.Syscalls)
	pw.counter("kleb_hrtimer_arms_total", "HRTimer arm/re-arm operations.", &r.TimerArms)
	pw.counter("kleb_hrtimer_fires_total", "HRTimer expiries delivered.", &r.TimerFires)
	pw.counter("kleb_hrtimer_cancels_total", "HRTimer cancellations.", &r.TimerCancels)
	pw.histogram("kleb_hrtimer_jitter_ns", "Per-fire timer jitter: effective minus nominal expiry, ns.", &r.TimerJitter)
	pw.counter("kleb_pmis_total", "Performance-monitoring interrupts delivered.", &r.PMIs)
	pw.histogram("kleb_pmi_latency_ns", "PMI raise-to-delivery latency, ns.", &r.PMILatency)
	pw.counter("kleb_pmu_overflows_total", "Hardware counter 48-bit overflows.", &r.PMUOverflows)
	pw.vec("kleb_ioctls_total", "Module ioctls, by device.", "device", &r.Ioctls)
	pw.counter("kleb_samples_total", "Samples captured into the K-LEB kernel ring.", &r.Samples)
	pw.gauge("kleb_ring_high_water", "Peak K-LEB kernel ring occupancy, samples.", &r.RingHighWater)
	pw.counter("kleb_ring_pauses_total", "Buffer-full safety-pause engagements (dropped periods are counted per run).", &r.RingPauses)
	pw.counter("kleb_ring_drained_total", "Samples drained from the kernel ring by the controller.", &r.RingDrained)
	pw.vec("kleb_stage_ns_total", "Cumulative virtual ns per session lifecycle stage.", "stage", &r.StageNs)
	pw.counter("kleb_runs_total", "Scheduler batch runs completed.", &r.Runs)
	pw.counter("kleb_run_failures_total", "Scheduler batch runs that failed.", &r.RunFailures)
	// The fault families appear only when the fault layer actually fired, so
	// the exposition of an uninjected run has no trace of the layer.
	if len(r.FaultsInjected.Labels()) > 0 {
		pw.vec("kleb_faults_injected_total", "Injected faults, by kind (internal/fault).", "kind", &r.FaultsInjected)
	}
	if r.CtlRetries.Value() > 0 {
		pw.counter("kleb_ctl_retries_total", "K-LEB controller retries of transient ioctl failures.", &r.CtlRetries)
	}
	if r.RunsDegraded.Value() > 0 {
		pw.counter("kleb_runs_degraded_total", "Runs that finished degraded (partial data).", &r.RunsDegraded)
	}
	// Multiplexing rotations appear only when a context actually rotated, so
	// non-multiplexed runs keep their exposition unchanged.
	if r.MuxRotations.Value() > 0 {
		pw.counter("kleb_mux_rotations_total", "perf_events multiplexing round rotations.", &r.MuxRotations)
	}
	// The fleet families appear only when a fleet aggregator actually folded
	// rounds (klebd), so single-run expositions are unchanged by their
	// existence.
	if r.FleetRounds.Value() > 0 {
		pw.counter("kleb_fleet_rounds_total", "Fleet monitoring rounds folded into the aggregate.", &r.FleetRounds)
		pw.counter("kleb_fleet_node_rounds_total", "Per-node round completions folded into the aggregate.", &r.FleetNodes)
		pw.counter("kleb_fleet_samples_total", "K-LEB samples ingested from fleet nodes.", &r.FleetSamples)
		pw.counter("kleb_fleet_degraded_rounds_total", "Node rounds that finished degraded (partial data).", &r.FleetDegraded)
		pw.counter("kleb_fleet_ledger_fires_total", "Period-conservation ledger: timer-handler fires across the fleet.", &r.LedgerFires)
		pw.counter("kleb_fleet_ledger_captured_total", "Period-conservation ledger: samples captured across the fleet.", &r.LedgerCaptured)
		pw.counter("kleb_fleet_ledger_dropped_total", "Period-conservation ledger: periods lost to buffer-full pauses across the fleet.", &r.LedgerDropped)
		pw.counter("kleb_fleet_ledger_lost_total", "Period-conservation ledger: periods lost to faults across the fleet.", &r.LedgerLost)
	}
	return pw.err
}

// A PromEncoder renders ad-hoc metric families in the same conformant text
// exposition shape Registry.WritePrometheus produces. The fleet daemon uses
// it for its self-telemetry group (merge latency, scrape durations, shard
// lag), which lives outside the deterministic Registry taxonomy.
type PromEncoder struct{ pw promWriter }

// NewPromEncoder returns an encoder writing to w.
func NewPromEncoder(w io.Writer) *PromEncoder {
	return &PromEncoder{pw: promWriter{w: w}}
}

// Counter emits one unlabelled counter family. Counter names must end in
// _total per the exposition conventions; violations surface in Err.
func (e *PromEncoder) Counter(name, help string, v uint64) {
	if !strings.HasSuffix(name, "_total") && e.pw.err == nil {
		e.pw.err = fmt.Errorf("telemetry: counter %s must carry the _total suffix", name)
		return
	}
	e.pw.header(name, help, "counter")
	e.pw.printf("%s %d\n", name, v)
}

// Gauge emits one unlabelled gauge sample.
func (e *PromEncoder) Gauge(name, help string, v uint64) {
	e.pw.header(name, help, "gauge")
	e.pw.printf("%s %d\n", name, v)
}

// GaugeVec emits one gauge family with one sample per (label value, value)
// pair, in the given order (callers sort for determinism).
func (e *PromEncoder) GaugeVec(name, help, label string, labels []string, values []uint64) {
	e.pw.header(name, help, "gauge")
	for i, l := range labels {
		e.pw.printf("%s{%s=%q} %d\n", name, label, l, values[i])
	}
}

// CounterVec emits one counter family with one sample per label value.
func (e *PromEncoder) CounterVec(name, help, label string, labels []string, values []uint64) {
	if !strings.HasSuffix(name, "_total") && e.pw.err == nil {
		e.pw.err = fmt.Errorf("telemetry: counter %s must carry the _total suffix", name)
		return
	}
	e.pw.header(name, help, "counter")
	for i, l := range labels {
		e.pw.printf("%s{%s=%q} %d\n", name, label, l, values[i])
	}
}

// Histogram emits one histogram family from a telemetry Histogram.
func (e *PromEncoder) Histogram(name, help string, h *Histogram) {
	e.pw.histogram(name, help, h)
}

// Err returns the first write or naming error.
func (e *PromEncoder) Err() error { return e.pw.err }

type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) counter(name, help string, c *Counter) {
	p.header(name, help, "counter")
	p.printf("%s %d\n", name, c.Value())
}

func (p *promWriter) gauge(name, help string, g *Gauge) {
	p.header(name, help, "gauge")
	p.printf("%s %d\n", name, g.Value())
}

// vec renders one counter family after verifying the vec really counts
// under the label dimension the exposition claims: a stamped key that
// disagrees with label (or an internally conflicted vec) turns into an
// error instead of publishing counts under the wrong label name.
func (p *promWriter) vec(name, help, label string, v *CounterVec) {
	if p.err != nil {
		return
	}
	if err := v.Err(); err != nil {
		p.err = fmt.Errorf("%s: %w", name, err)
		return
	}
	if key := v.Key(); key != "" && key != label {
		p.err = fmt.Errorf("%s: vec counts label dimension %q, exposition asks for %q", name, key, label)
		return
	}
	p.header(name, help, "counter")
	for _, l := range v.Labels() {
		p.printf("%s{%s=%q} %d\n", name, label, l, v.Get(l))
	}
}

// histogram renders cumulative log2 buckets up to the highest non-empty
// one, then +Inf, sum and count — the standard Prometheus histogram shape.
func (p *promWriter) histogram(name, help string, h *Histogram) {
	p.header(name, help, "histogram")
	var cum uint64
	top := h.maxBucket()
	for i := 0; i <= top; i++ {
		cum += h.buckets[i]
		p.printf("%s_bucket{le=\"%d\"} %d\n", name, bucketUpper(i), cum)
	}
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, h.count)
	p.printf("%s_sum %d\n", name, h.sum)
	p.printf("%s_count %d\n", name, h.count)
}
