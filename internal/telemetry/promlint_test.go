package telemetry

import (
	"strings"
	"testing"
)

// TestLintAcceptsOwnExposition is the conformance lock: everything the
// registry exporter produces — including the fault and fleet families —
// must satisfy the strict exposition lint, so a real Prometheus server
// ingests it cleanly.
func TestLintAcceptsOwnExposition(t *testing.T) {
	s := New()
	emitOneOfEach(s)
	s.FaultInjected(300, "ioctl-error")
	s.CtlRetry(310, "start", 1)
	s.RunDegraded(320, "drain-starved")
	s.MuxRotate(330, 1, 2, 3, 2)
	s.FleetNode(340, 0, 3, 2, 1, 0, true, "")
	s.FleetRound(350, 0, 1, 1)
	var buf strings.Builder
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := LintExposition(strings.NewReader(buf.String())); err != nil {
		t.Errorf("own exposition fails lint: %v\n%s", err, buf.String())
	}
}

// TestLintRejections feeds the lint malformed or non-conformant
// expositions and checks each is refused for the right reason.
func TestLintRejections(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{
			"counter without _total",
			"# HELP x_count Things.\n# TYPE x_count counter\nx_count 1\n",
			"_total suffix",
		},
		{
			"gauge with _total",
			"# HELP x_total Things.\n# TYPE x_total gauge\nx_total 1\n",
			"must not carry",
		},
		{
			"sample without family",
			"stray_metric 1\n",
			"no declared family",
		},
		{
			"TYPE before HELP",
			"# TYPE x_total counter\n",
			"must follow HELP",
		},
		{
			"duplicate TYPE",
			"# HELP x_total X.\n# TYPE x_total counter\nx_total 1\n# TYPE x_total counter\n",
			"duplicate TYPE",
		},
		{
			"interleaved families",
			"# HELP a_total A.\n# TYPE a_total counter\n# HELP b_total B.\n# TYPE b_total counter\na_total 1\n",
			"interleaved",
		},
		{
			"bad value",
			"# HELP x_total X.\n# TYPE x_total counter\nx_total one\n",
			"bad value",
		},
		{
			"negative counter",
			"# HELP x_total X.\n# TYPE x_total counter\nx_total -4\n",
			"negative counter",
		},
		{
			"invalid label name",
			"# HELP x_total X.\n# TYPE x_total counter\nx_total{9bad=\"v\"} 1\n",
			"invalid label name",
		},
		{
			"unterminated label value",
			"# HELP x_total X.\n# TYPE x_total counter\nx_total{l=\"v} 1\n",
			"unterminated",
		},
		{
			"histogram missing +Inf",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			"+Inf",
		},
		{
			"histogram buckets decrease",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n",
			"decrease",
		},
		{
			"histogram bounds out of order",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"2\"} 2\n",
			"not increasing",
		},
		{
			"histogram count disagrees",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n",
			"disagrees",
		},
		{
			"histogram without samples",
			"# HELP h H.\n# TYPE h histogram\n",
			"+Inf",
		},
		{
			"HELP without TYPE",
			"# HELP lone Lone.\n",
			"without TYPE",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := LintExposition(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("lint accepted:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestLintAcceptsEscapedLabels checks quoted label values with the
// exposition escapes parse.
func TestLintAcceptsEscapedLabels(t *testing.T) {
	in := "# HELP x_total X.\n# TYPE x_total counter\n" +
		"x_total{l=\"a\\\\b\\\"c\\nd\",m=\"plain\"} 2\n"
	if err := LintExposition(strings.NewReader(in)); err != nil {
		t.Errorf("escaped labels rejected: %v", err)
	}
}

// TestLintEmptyExposition: an empty body is valid (a daemon that has not
// folded anything yet still answers scrapes).
func TestLintEmptyExposition(t *testing.T) {
	if err := LintExposition(strings.NewReader("")); err != nil {
		t.Errorf("empty exposition rejected: %v", err)
	}
}
