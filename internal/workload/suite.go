package workload

import "kleb/internal/isa"

// Benchmark is one member of the characterization suite: a synthetic
// program whose instruction mix and memory behaviour are shaped after a
// familiar workload family. The suite exists for workload characterization
// (this is an IISWC paper, after all): run each member under K-LEB and
// derive its IPC / MPKI / branch-behaviour fingerprint.
type Benchmark struct {
	// Name identifies the benchmark; Family is the behaviour it is shaped
	// after.
	Name, Family string

	totalInstr   uint64
	loadsPerK    uint64
	storesPerK   uint64
	branchesPerK uint64
	mulsPerK     uint64
	fpsPerK      uint64
	mispredict   float64
	footprint    uint64
	randomFrac   float64
}

// Suite returns the characterization suite, one member per behaviour
// archetype.
func Suite() []Benchmark {
	return []Benchmark{
		{
			Name: "compressor", Family: "bzip2-like (integer, branchy, L2-resident)",
			totalInstr: 400_000_000,
			loadsPerK:  280, storesPerK: 140, branchesPerK: 190, mulsPerK: 8,
			mispredict: 0.08, footprint: 192 << 10, randomFrac: 0.04,
		},
		{
			Name: "pointer-chaser", Family: "mcf-like (sparse graph, DRAM-bound)",
			totalInstr: 150_000_000,
			loadsPerK:  280, storesPerK: 60, branchesPerK: 160, mulsPerK: 2,
			mispredict: 0.06, footprint: 96 << 20, randomFrac: 0.22,
		},
		{
			Name: "compiler", Family: "gcc-like (mixed, mid-size working set)",
			totalInstr: 350_000_000,
			loadsPerK:  300, storesPerK: 130, branchesPerK: 210, mulsPerK: 10,
			mispredict: 0.05, footprint: 1536 << 10, randomFrac: 0.06,
		},
		{
			Name: "stencil", Family: "hpc-stream-like (FP, streaming, prefetch-friendly)",
			totalInstr: 300_000_000,
			loadsPerK:  340, storesPerK: 170, branchesPerK: 40,
			mulsPerK: 120, fpsPerK: 380,
			mispredict: 0.004, footprint: 128 << 20, randomFrac: 0,
		},
		{
			Name: "crypto", Family: "aes-like (compute, tiny tables, no misses)",
			totalInstr: 450_000_000,
			loadsPerK:  220, storesPerK: 60, branchesPerK: 50, mulsPerK: 160,
			mispredict: 0.002, footprint: 16 << 10, randomFrac: 0.02,
		},
		{
			Name: "interpreter", Family: "python-like (dispatch loop, unpredictable branches)",
			totalInstr: 380_000_000,
			loadsPerK:  330, storesPerK: 120, branchesPerK: 230, mulsPerK: 15,
			mispredict: 0.12, footprint: 224 << 10, randomFrac: 0.08,
		},
	}
}

// BenchmarkByName finds a suite member.
func BenchmarkByName(name string) (Benchmark, bool) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Script materializes the benchmark.
func (b Benchmark) Script() Script {
	return Script{
		Name: b.Name,
		Phases: []Phase{{
			Name:       "main",
			TotalInstr: b.totalInstr,
			BlockInstr: 400_000,
			LoadsPerK:  b.loadsPerK, StoresPerK: b.storesPerK,
			BranchesPerK: b.branchesPerK, MulsPerK: b.mulsPerK, FPsPerK: b.fpsPerK,
			MispredictRate: b.mispredict,
			Mem: isa.MemPattern{
				Base:       regionSynth + 8<<32 + uint64(fnv(b.Name))<<20,
				Footprint:  b.footprint,
				Stride:     8,
				RandomFrac: b.randomFrac,
			},
			Priv: isa.User,
		}},
	}
}
