package workload

import (
	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
)

// Synthetic builds a single-phase uniform workload, useful for tests,
// examples and calibration sweeps.
type Synthetic struct {
	// Name labels the workload.
	Name string
	// TotalInstr is the instruction budget.
	TotalInstr uint64
	// BlockInstr is the emission granularity.
	BlockInstr uint64
	// LoadsPerK/StoresPerK set memory intensity.
	LoadsPerK, StoresPerK uint64
	// Footprint and RandomFrac set cache behaviour.
	Footprint  uint64
	RandomFrac float64
}

// Script materializes the synthetic workload.
func (s Synthetic) Script() Script {
	name := s.Name
	if name == "" {
		name = "synthetic"
	}
	loads := s.LoadsPerK
	if loads == 0 {
		loads = 250
	}
	stores := s.StoresPerK
	if stores == 0 {
		stores = 100
	}
	fp := s.Footprint
	if fp == 0 {
		fp = 1 << 20
	}
	bi := s.BlockInstr
	if bi == 0 {
		bi = 200_000
	}
	return Script{
		Name: name,
		Phases: []Phase{{
			Name:       "steady",
			TotalInstr: s.TotalInstr,
			BlockInstr: bi,
			LoadsPerK:  loads, StoresPerK: stores, BranchesPerK: 120,
			MispredictRate: 0.02,
			Mem: isa.MemPattern{
				Base: regionSynth, Footprint: fp, Stride: 8, RandomFrac: s.RandomFrac,
			},
			Priv: isa.User,
		}},
	}
}

// OSNoise returns a background daemon that wakes at pseudo-random moments
// and does a little work — scheduler noise for spread studies. Spawn it
// with Kernel.SpawnDaemon; it never exits.
func OSNoise(seed uint64) kernel.Program {
	rng := ktime.NewRand(seed)
	working := false
	return kernel.ProgramFunc(func(k *kernel.Kernel, p *kernel.Process) kernel.Op {
		if working {
			working = false
			return kernel.OpExec{Block: isa.Block{
				Instr:    100_000 + rng.Uint64n(400_000),
				Loads:    60_000,
				Stores:   25_000,
				Branches: 12_000,
				Mem:      isa.MemPattern{Base: regionNoise, Footprint: 512 << 10, Stride: 8, RandomFrac: 0.05},
				Priv:     isa.User,
			}}
		}
		working = true
		return kernel.OpSleep{D: ktime.Duration(20+rng.Uint64n(60)) * ktime.Millisecond}
	})
}
