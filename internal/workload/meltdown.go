package workload

import "kleb/internal/isa"

// This file models the paper's third case study: a short secret-printing
// victim program, run with and without the Meltdown exploit attached
// (the IAIK proof of concept). The exploit's Flush+Reload covert channel
// dominates its cache signature: the attacker repeatedly CLFLUSHes a
// 256-page probe array and reloads it to find the one line the speculative
// access warmed, producing abnormal LLC reference and miss rates and a
// sharp MPKI increase — which is what K-LEB's 100µs series can localize in
// time and a 10ms tool cannot.

// Meltdown configures the victim/attacker pair.
type Meltdown struct {
	// SecretLen is the number of secret bytes the attack leaks; each byte
	// needs one Flush+Reload round over the probe array.
	SecretLen int
}

// NewMeltdown returns the configuration of the paper's experiment.
func NewMeltdown() Meltdown { return Meltdown{SecretLen: 24} }

// VictimScript is the plain secret-printing program: a brief start-up, a
// formatting/printing stretch, and exit — well under 10 ms of execution, so
// a 10 ms-resolution tool sees at most one sample of it.
func (m Meltdown) VictimScript() Script {
	return Script{
		Name: "victim",
		Phases: []Phase{
			{
				Name:       "startup",
				TotalInstr: 600_000,
				BlockInstr: 40_000,
				LoadsPerK:  330, StoresPerK: 140, BranchesPerK: 90,
				MispredictRate: 0.02,
				Mem: isa.MemPattern{
					Base: regionMeltdown, Footprint: 256 << 10, Stride: 8, RandomFrac: 0.05,
				},
				Priv: isa.User,
			},
			{
				Name:       "print-secret",
				TotalInstr: 2_500_000,
				BlockInstr: 40_000,
				LoadsPerK:  250, StoresPerK: 110, BranchesPerK: 120,
				MispredictRate: 0.03,
				Mem: isa.MemPattern{
					Base: regionMeltdown, Footprint: 640 << 10, Stride: 8, RandomFrac: 0.03,
				},
				Priv: isa.User,
			},
		},
	}
}

// AttackScript is the same program with the Meltdown exploit attached: the
// printing work is preceded by per-byte Flush+Reload rounds. Each round
// flushes the probe array (256 lines, one per possible byte value), fires
// the transient access, then reloads every line timing it — so the phase
// mixes heavy CLFLUSH traffic with loads that miss by construction.
func (m Meltdown) AttackScript() Script {
	v := m.VictimScript()
	phases := []Phase{v.Phases[0]}
	probe := isa.MemPattern{
		Base:      regionMeltdown + 1<<30,
		Footprint: 256 * 4096, // one line probed per 4KB page
		Stride:    4096,
	}
	for i := 0; i < m.SecretLen; i++ {
		phases = append(phases, Phase{
			Name:       "flush-reload",
			TotalInstr: 50_000,
			BlockInstr: 25_000,
			// The reload loop is load- and flush-dominated with a timing
			// branch per line.
			LoadsPerK: 80, StoresPerK: 10, BranchesPerK: 180, FlushesPerK: 60,
			MispredictRate: 0.10,
			Mem:            probe,
			Priv:           isa.User,
		})
	}
	phases = append(phases, v.Phases[1])
	return Script{Name: "victim+meltdown", Phases: phases}
}
