package workload

import "kleb/internal/isa"

// TripleLoopMatmul models the paper's overhead-study workload: a naive
// triple-nested-loop matrix multiplication (Intel's teaching sample). Its
// column-major B accesses have poor locality, so the working set streams
// through the whole hierarchy and the program runs for roughly two seconds
// — long enough for timer-based tools to take ~200 samples at 10ms.
type TripleLoopMatmul struct {
	// N is the matrix dimension.
	N uint64
}

// NewTripleLoopMatmul returns the configuration used by Tables II and
// Fig 8/9: a run of about two virtual seconds on the Nehalem profile.
func NewTripleLoopMatmul() TripleLoopMatmul { return TripleLoopMatmul{N: 1200} }

// Flops returns the nominal 2·n³ flop count.
func (m TripleLoopMatmul) Flops() uint64 { return 2 * m.N * m.N * m.N }

// Script builds the phase script: a brief allocation/initialization phase
// followed by one long uniform multiplication phase whose cache behaviour
// (footprint ≈ 3n²·8 bytes, slight irregularity from the strided column
// walk) dominates runtime.
func (m TripleLoopMatmul) Script() Script {
	cube := float64(m.N) / 1200
	cube = cube * cube * cube
	footprint := clampFootprint(3*m.N*m.N*8, 64<<20)
	return Script{
		Name: "matmul-triple",
		Phases: []Phase{
			{
				Name:       "init",
				TotalInstr: 40_000_000,
				BlockInstr: 400_000,
				LoadsPerK:  150, StoresPerK: 340, BranchesPerK: 60,
				MispredictRate: 0.01,
				Mem:            isa.MemPattern{Base: regionMatmul, Footprint: footprint, Stride: 8},
				Priv:           isa.User,
			},
			{
				Name:       "multiply",
				TotalInstr: uint64(1_380_000_000 * cube),
				BlockInstr: 600_000,
				LoadsPerK:  300, StoresPerK: 25, BranchesPerK: 70,
				MulsPerK: 130, FPsPerK: 260,
				MispredictRate: 0.008,
				Mem: isa.MemPattern{
					Base:      regionMatmul,
					Footprint: footprint,
					Stride:    8,
					// The strided column walk of B shows up as a random
					// admixture at line granularity.
					RandomFrac: 0.008,
				},
				Priv: isa.User,
			},
		},
	}
}

// DgemmMatmul models the Intel MKL dgemm routine on the same problem: a
// blocked, vectorized kernel whose active tiles live in L1 and which
// retires far fewer instructions for the same flops. It finishes in under
// 100ms — the paper's short-workload stress test (Table III), where
// fixed attach costs and per-sample syscalls hurt most.
type DgemmMatmul struct {
	N uint64
}

// NewDgemmMatmul returns the Table III configuration.
func NewDgemmMatmul() DgemmMatmul { return DgemmMatmul{N: 1200} }

// Flops returns the nominal 2·n³ flop count.
func (m DgemmMatmul) Flops() uint64 { return 2 * m.N * m.N * m.N }

// Script builds the phase script.
func (m DgemmMatmul) Script() Script {
	cube := float64(m.N) / 1200
	cube = cube * cube * cube
	return Script{
		Name: "matmul-dgemm",
		Phases: []Phase{
			{
				Name:       "pack",
				TotalInstr: 12_000_000,
				BlockInstr: 300_000,
				LoadsPerK:  380, StoresPerK: 320, BranchesPerK: 40,
				MispredictRate: 0.005,
				Mem: isa.MemPattern{
					Base:      regionMatmul + 1<<30,
					Footprint: clampFootprint(3*m.N*m.N*8, 64<<20),
					Stride:    8,
				},
				Priv: isa.User,
			},
			{
				Name:       "kernel",
				TotalInstr: uint64(280_000_000 * cube),
				BlockInstr: 500_000,
				LoadsPerK:  300, StoresPerK: 40, BranchesPerK: 30,
				MulsPerK: 240, FPsPerK: 900, // vectorized: many flops/instr
				MispredictRate: 0.003,
				Mem: isa.MemPattern{
					Base:      regionMatmul + 2<<30,
					Footprint: 24 << 10, // L1-resident tiles
					Stride:    8,
				},
				Priv: isa.User,
			},
		},
	}
}
