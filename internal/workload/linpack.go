package workload

import "kleb/internal/isa"

// Linpack models the Intel MKL LINPACK binary the paper profiles: solving a
// dense n×n linear system. Its event signature has the paper's Fig 4
// structure:
//
//  1. an initialization stretch executing in the kernel (configuration
//     extraction) during which user-mode counters stay flat;
//  2. a setup burst with heavy LOAD/STORE traffic and almost no
//     multiplications (building the benchmark matrices);
//  3. the solve loop: repeating cycles of panel load → multiply-dominated
//     computation → result store.
//
// The canonical LINPACK flop count 2/3·n³ + 2·n² is returned by Flops; the
// experiment converts measured runtime into GFLOPS with it, exactly as the
// real benchmark converts time into a rate.
type Linpack struct {
	// N is the problem size (the paper uses 5000).
	N uint64
	// Cycles is the number of load/compute/store solve iterations.
	Cycles int
}

// NewLinpack returns the standard configuration for problem size n.
func NewLinpack(n uint64) Linpack {
	return Linpack{N: n, Cycles: 40}
}

// Flops returns the nominal floating point operation count.
func (l Linpack) Flops() uint64 {
	return 2*l.N*l.N*l.N/3 + 2*l.N*l.N
}

// Script builds the phase script. Instruction budgets scale with N so a
// smaller problem runs proportionally faster.
func (l Linpack) Script() Script {
	// Budgets are expressed relative to N=5000 and scaled cubically for the
	// solve phases (O(n³) work) and quadratically for setup (O(n²) data).
	cube := float64(l.N) / 5000
	cube = cube * cube * cube
	sq := float64(l.N) / 5000 * float64(l.N) / 5000
	scaleC := func(v uint64) uint64 { return uint64(float64(v) * cube) }
	scaleQ := func(v uint64) uint64 { return uint64(float64(v) * sq) }

	matrixBytes := l.N * l.N * 8 // one n×n float64 matrix

	phases := []Phase{
		{
			Name:       "init-kernel",
			TotalInstr: 120_000_000,
			BlockInstr: 400_000,
			LoadsPerK:  120, StoresPerK: 60, BranchesPerK: 180,
			MispredictRate: 0.04,
			Mem:            isa.MemPattern{Base: regionLinpack, Footprint: 64 << 10, Stride: 8},
			Priv:           isa.Kernel,
		},
		{
			Name:       "setup",
			TotalInstr: scaleQ(520_000_000),
			BlockInstr: 500_000,
			LoadsPerK:  430, StoresPerK: 360, BranchesPerK: 60, MulsPerK: 4,
			MispredictRate: 0.01,
			Mem: isa.MemPattern{
				// Matrix generation works through an L2-resident buffer
				// before the non-temporal stream out, so its LOAD/STORE
				// burst retires at full speed (the sharp rise of Fig 4).
				Base:      regionLinpack + 1<<30,
				Footprint: 192 << 10,
				Stride:    8,
			},
			Priv: isa.User,
		},
	}
	for i := 0; i < l.Cycles; i++ {
		phases = append(phases,
			Phase{
				Name:       "solve-load",
				TotalInstr: scaleC(2_000_000),
				BlockInstr: 200_000,
				LoadsPerK:  430, StoresPerK: 20, BranchesPerK: 40, MulsPerK: 2,
				MispredictRate: 0.01,
				Mem: isa.MemPattern{
					Base:      regionLinpack + 1<<30,
					Footprint: clampFootprint(matrixBytes, 256<<20),
					Stride:    8,
				},
				Priv: isa.User,
			},
			Phase{
				Name:       "solve-compute",
				TotalInstr: scaleC(245_000_000),
				BlockInstr: 1_000_000,
				LoadsPerK:  240, StoresPerK: 30, BranchesPerK: 50,
				MulsPerK: 210, FPsPerK: 460,
				MispredictRate: 0.005,
				Mem: isa.MemPattern{
					// Blocked kernel: the active tile lives in L1.
					Base:      regionLinpack + 2<<30,
					Footprint: 28 << 10,
					Stride:    8,
				},
				Priv: isa.User,
			},
			Phase{
				Name:       "solve-store",
				TotalInstr: scaleC(1_000_000),
				BlockInstr: 200_000,
				LoadsPerK:  40, StoresPerK: 420, BranchesPerK: 40, MulsPerK: 2,
				MispredictRate: 0.01,
				Mem: isa.MemPattern{
					Base:      regionLinpack + 1<<30,
					Footprint: clampFootprint(matrixBytes, 256<<20),
					Stride:    8,
				},
				Priv: isa.User,
			},
		)
	}
	return Script{Name: "linpack", Phases: phases}
}

func clampFootprint(v, max uint64) uint64 {
	if v == 0 {
		return 4096
	}
	if v > max {
		return max
	}
	return v
}
