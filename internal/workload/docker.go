package workload

import (
	"kleb/internal/isa"
	"kleb/internal/kernel"
)

// ContainerImage describes one of the Docker Hub images the paper profiles
// (Fig 5). The memory parameters are calibrated so the cache simulation
// classifies each image the way the paper's measurements do: interpreters
// land below 1 LLC MPKI, the mid tier below 10, and the web servers above
// 10 — on both machine profiles, since the web-server footprints exceed
// even Cascade Lake's LLC.
type ContainerImage struct {
	// Name is the Docker Hub image name.
	Name string
	// Class is the paper's classification for the image.
	Class WorkloadClass

	totalInstr uint64
	loadsPerK  uint64
	storesPerK uint64
	footprint  uint64
	randomFrac float64
	mulsPerK   uint64
}

// WorkloadClass is the memory/computation intensity classification of
// Muralidhara et al. that the paper applies: MPKI > 10 is memory-intensive.
type WorkloadClass string

// Classifications.
const (
	ComputeIntensive WorkloadClass = "computation-intensive"
	MemoryIntensive  WorkloadClass = "memory-intensive"
)

// ClassifyMPKI applies the MPKI-10 rule from the paper (§IV-B).
func ClassifyMPKI(mpki float64) WorkloadClass {
	if mpki > 10 {
		return MemoryIntensive
	}
	return ComputeIntensive
}

// Images returns the nine images of Fig 5 in the paper's presentation
// groups: interpreters, middleware, web servers.
func Images() []ContainerImage {
	return []ContainerImage{
		// Interpreter images: tight bytecode loops over small heaps.
		{Name: "ruby", Class: ComputeIntensive, totalInstr: 900_000_000,
			loadsPerK: 300, storesPerK: 110, footprint: 192 << 10, randomFrac: 0.02, mulsPerK: 30},
		{Name: "golang", Class: ComputeIntensive, totalInstr: 1_000_000_000,
			loadsPerK: 260, storesPerK: 90, footprint: 256 << 10, randomFrac: 0.015, mulsPerK: 45},
		{Name: "python", Class: ComputeIntensive, totalInstr: 850_000_000,
			loadsPerK: 320, storesPerK: 120, footprint: 224 << 10, randomFrac: 0.025, mulsPerK: 25},
		// Middleware: larger heaps with pointer chasing, still mostly
		// LLC-resident.
		{Name: "mysql", Class: ComputeIntensive, totalInstr: 800_000_000,
			loadsPerK: 330, storesPerK: 140, footprint: 5 << 20, randomFrac: 0.09, mulsPerK: 10},
		{Name: "traefik", Class: ComputeIntensive, totalInstr: 750_000_000,
			loadsPerK: 280, storesPerK: 100, footprint: 4 << 20, randomFrac: 0.06, mulsPerK: 12},
		{Name: "ghost", Class: ComputeIntensive, totalInstr: 700_000_000,
			loadsPerK: 310, storesPerK: 120, footprint: 6 << 20, randomFrac: 0.12, mulsPerK: 8},
		// Web servers: request/response buffers streaming through working
		// sets far larger than any LLC.
		{Name: "apache", Class: MemoryIntensive, totalInstr: 600_000_000,
			loadsPerK: 200, storesPerK: 90, footprint: 96 << 20, randomFrac: 0.10, mulsPerK: 4},
		{Name: "nginx", Class: MemoryIntensive, totalInstr: 650_000_000,
			loadsPerK: 180, storesPerK: 80, footprint: 64 << 20, randomFrac: 0.08, mulsPerK: 5},
		{Name: "tomcat", Class: MemoryIntensive, totalInstr: 550_000_000,
			loadsPerK: 230, storesPerK: 100, footprint: 128 << 20, randomFrac: 0.14, mulsPerK: 6},
	}
}

// ImageByName finds an image spec.
func ImageByName(name string) (ContainerImage, bool) {
	for _, img := range Images() {
		if img.Name == name {
			return img, true
		}
	}
	return ContainerImage{}, false
}

// Script builds the container workload's phase script: an image unpack /
// startup phase followed by steady-state service work.
func (c ContainerImage) Script() Script { return c.ScriptAt(0) }

// ScriptAt builds the script for the slot-th concurrent instance of the
// image: each instance gets a disjoint address region, as separate
// containers have separate memory (without this, two co-located copies of
// one image would constructively share cache lines).
func (c ContainerImage) ScriptAt(slot int) Script {
	region := regionDocker + uint64(fnv(c.Name))<<24 + uint64(slot)<<40
	return Script{
		Name: "docker-" + c.Name,
		Phases: []Phase{
			{
				Name:       "startup",
				TotalInstr: c.totalInstr / 20,
				BlockInstr: 300_000,
				LoadsPerK:  340, StoresPerK: 280, BranchesPerK: 70,
				MispredictRate: 0.02,
				Mem:            isa.MemPattern{Base: region, Footprint: c.footprint, Stride: 8},
				Priv:           isa.User,
			},
			{
				Name:       "service",
				TotalInstr: c.totalInstr,
				BlockInstr: 400_000,
				LoadsPerK:  c.loadsPerK, StoresPerK: c.storesPerK,
				BranchesPerK: 140, MulsPerK: c.mulsPerK,
				MispredictRate: 0.03,
				Mem: isa.MemPattern{
					Base:       region,
					Footprint:  c.footprint,
					Stride:     8,
					RandomFrac: c.randomFrac,
				},
				Priv: isa.User,
			},
		},
	}
}

// DockerRun returns the program of the Docker engine process launching the
// image: it forks a containerd-shim child that runs the container workload
// and waits for it. Monitoring the engine process therefore only observes
// the container's activity through process-lineage tracking — the paper's
// "profile Docker containers natively, given only a binary container".
func DockerRun(img ContainerImage) kernel.Program {
	var child kernel.PID
	stage := 0
	return kernel.ProgramFunc(func(k *kernel.Kernel, p *kernel.Process) kernel.Op {
		switch stage {
		case 0: // engine bookkeeping before the container starts
			stage = 1
			return kernel.OpExec{Block: isa.Block{
				Instr: 4_000_000, Loads: 1_200_000, Stores: 500_000, Branches: 300_000,
				Mem:  isa.MemPattern{Base: regionDocker, Footprint: 1 << 20, Stride: 8},
				Priv: isa.User,
			}}
		case 1: // fork the containerd-shim / container process
			stage = 2
			return kernel.OpSpawn{Name: "containerd-shim-" + img.Name, Prog: img.Script().Program()}
		case 2: // block in waitpid until the container finishes
			if pid, ok := p.SyscallResult.(kernel.PID); ok {
				child = pid
			}
			stage = 3
			return kernel.OpWait{PID: child}
		}
		return kernel.OpExit{}
	})
}

// ClassSeed derives a stable per-image seed offset for experiments.
func ClassSeed(name string) uint64 { return uint64(fnv(name)) }

// fnv is a tiny string hash for region placement.
func fnv(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}
