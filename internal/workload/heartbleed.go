package workload

import "kleb/internal/isa"

// Heartbleed models the data-only exploit case study the paper cites from
// Torres & Liu ("Can data-only exploits be detected at runtime using
// hardware events?", reference [26]): a TLS server answering heartbeat
// requests, with an attack variant in which malicious heartbeats carry a
// fake payload length and the response copies tens of kilobytes of
// adjacent heap memory per request. The exploit never diverts control
// flow — only the *data* behaviour changes — so the observable is a burst
// of extra load traffic sweeping heap the server normally never touches.
type Heartbleed struct {
	// Requests is the number of heartbeats served.
	Requests int
	// AttackStart/AttackEnd bracket the malicious request burst
	// [AttackStart, AttackEnd) within the request stream.
	AttackStart, AttackEnd int
}

// NewHeartbleed returns the standard configuration: 300 requests with a
// mid-stream attack burst.
func NewHeartbleed() Heartbleed {
	return Heartbleed{Requests: 300, AttackStart: 150, AttackEnd: 210}
}

// request is one benign heartbeat: parse, touch the session state, echo the
// small payload.
func (h Heartbleed) request() Phase {
	return Phase{
		Name:       "heartbeat",
		TotalInstr: 120_000,
		BlockInstr: 40_000,
		LoadsPerK:  220, StoresPerK: 90, BranchesPerK: 140,
		MispredictRate: 0.02,
		Mem: isa.MemPattern{
			Base: regionSynth + 1<<32, Footprint: 192 << 10, Stride: 8, RandomFrac: 0.05,
		},
		Priv: isa.User,
	}
}

// exfil is the over-read a malicious heartbeat triggers: memcpy of ~64KB of
// adjacent heap per request — a pure load burst over memory outside the
// request path's working set.
func (h Heartbleed) exfil() Phase {
	return Phase{
		Name:       "over-read",
		TotalInstr: 30_000,
		BlockInstr: 30_000,
		LoadsPerK:  650, StoresPerK: 300, BranchesPerK: 20,
		MispredictRate: 0.005,
		Mem: isa.MemPattern{
			// The victim heap: far larger than the request working set and
			// never warm, so the sweep misses its way through the LLC.
			Base: regionSynth + 2<<32, Footprint: 24 << 20, Stride: 8,
		},
		Priv: isa.User,
	}
}

// ServerScript is the benign request stream.
func (h Heartbleed) ServerScript() Script {
	phases := make([]Phase, 0, h.Requests)
	for i := 0; i < h.Requests; i++ {
		phases = append(phases, h.request())
	}
	return Script{Name: "tls-server", Phases: phases}
}

// AttackScript is the same stream with the malicious burst: requests in
// [AttackStart, AttackEnd) each trigger the over-read.
func (h Heartbleed) AttackScript() Script {
	phases := make([]Phase, 0, h.Requests+(h.AttackEnd-h.AttackStart))
	for i := 0; i < h.Requests; i++ {
		phases = append(phases, h.request())
		if i >= h.AttackStart && i < h.AttackEnd {
			phases = append(phases, h.exfil())
		}
	}
	return Script{Name: "tls-server+heartbleed", Phases: phases}
}
