package workload

import (
	"math"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/telemetry"
)

// This file is the request-serving cloud workload (ROADMAP item 2): a
// multi-tier service with processor-sharing replicas, open- and closed-loop
// traffic generation, and request cloning with cancel-on-first-complete.
//
// The model couples queueing to the simulated machine through capacity, not
// through per-request instruction blocks: the served instruction stream is
// an ordinary compiled phase script (so it rides the batched block executor
// and looks like a busy server to the cache and PMU models), and every
// CheckpointInstr retired service instructions the program checkpoints the
// virtual clock. Each checkpoint window's service capacity is the rate
// instructions-retired / virtual-time-elapsed — so anything that steals
// time or slows the target (timer IRQs, strategic-point syscalls, a tool's
// competing process, cache pollution from log formatting) lowers the
// window's capacity while open-loop arrivals keep coming at the same
// virtual-time rate. Utilization rises, queues lengthen, and the tail of
// the latency distribution inflates — the mechanism by which monitoring
// overhead becomes tail latency, which is what the taillat experiment
// measures. Latencies land in a telemetry.ExactQuantiles because log2
// histogram buckets cannot resolve p99 shifts smaller than 2x.

// Tier is one stage of the served request path.
type Tier struct {
	// Name labels the tier in reports.
	Name string
	// Share is the tier's fraction of the server's instruction capacity.
	// Shares across tiers should sum to ~1.
	Share float64
	// Replicas is how many processor-sharing replicas the tier's capacity
	// is split into. Requests are placed on replicas per-request-randomly,
	// so replica imbalance contributes tail latency.
	Replicas int
	// Clones is how many replicas each request is dispatched to at this
	// tier (cancel-on-first-complete hedging). 0 or 1 means no cloning;
	// values above Replicas are capped.
	Clones int
	// DemandInstr is the mean per-clone service demand in instructions.
	// Actual demands are exponential, sampled per request.
	DemandInstr uint64
}

// clones returns the effective clone count.
func (t Tier) clones() int {
	d := t.Clones
	if d < 1 {
		d = 1
	}
	if d > t.Replicas {
		d = t.Replicas
	}
	return d
}

// Serve is the request-serving workload model.
type Serve struct {
	// Name identifies the workload.
	Name string
	// Tiers run in order for every request.
	Tiers []Tier

	// ArrivalsPerSec is the open-loop Poisson arrival rate (virtual time).
	// Ignored when Users is nonzero.
	ArrivalsPerSec float64
	// Users switches to a closed loop: this many simulated users cycle
	// between an exponential think period of mean Think and one request.
	// Users is an aggregate count, not per-user state, so populations in
	// the millions cost nothing.
	Users uint64
	// Think is the closed loop's mean think time.
	Think ktime.Duration

	// MaxInFlight bounds admitted requests; arrivals beyond it are
	// rejected and counted (0 = unlimited).
	MaxInFlight int

	// TotalInstr is the server's instruction budget — the run length.
	TotalInstr uint64
	// BlockInstr is the emission granularity (0 = the package default).
	BlockInstr uint64
	// CheckpointInstr is the capacity-checkpoint cadence in service
	// instructions (0 = 1_000_000). It bounds how stale a window's
	// capacity estimate can be; completions within a window are
	// interpolated at the window's rate, so latency resolution is much
	// finer than the checkpoint itself.
	CheckpointInstr uint64
	// Footprint is the served working set in bytes.
	Footprint uint64
}

// NewServe returns the default three-tier service: a thin web tier, a
// hedged (2-clone) application tier, and a database tier that is the
// designed bottleneck. Defaults are calibrated for the Nehalem profile so
// the bare bottleneck runs hot enough that monitoring overhead visibly
// inflates the tail without saturating.
func NewServe() Serve {
	return Serve{
		Name: "serve",
		Tiers: []Tier{
			{Name: "web", Share: 0.25, Replicas: 2, Clones: 1, DemandInstr: 30_000},
			{Name: "app", Share: 0.35, Replicas: 3, Clones: 2, DemandInstr: 65_000},
			{Name: "db", Share: 0.40, Replicas: 2, Clones: 1, DemandInstr: 105_000},
		},
		ArrivalsPerSec:  380,
		MaxInFlight:     4096,
		TotalInstr:      1_200_000_000,
		CheckpointInstr: 1_000_000,
		Footprint:       4 << 20,
	}
}

// ClosedLoop converts s to a closed loop of users cycling through think
// times of mean think.
func (s Serve) ClosedLoop(users uint64, think ktime.Duration) Serve {
	s.Users = users
	s.Think = think
	return s
}

// Script returns the server's instruction stream: one steady phase whose
// signature is a cache-resident mix with enough random accesses that a
// competing tool process measurably pollutes it.
func (s Serve) Script() Script {
	return Script{
		Name: s.Name,
		Phases: []Phase{{
			Name:           "serve",
			TotalInstr:     s.TotalInstr,
			BlockInstr:     s.BlockInstr,
			LoadsPerK:      280,
			StoresPerK:     110,
			BranchesPerK:   170,
			MispredictRate: 0.015,
			Mem:            isa.MemPattern{Base: regionServe, Footprint: s.Footprint, Stride: 64, RandomFrac: 0.15},
			Priv:           isa.User,
		}},
	}
}

// Program returns a fresh serving program. seed drives every stochastic
// element (arrivals, demands, replica placement); per-request draws are
// reseeded from (seed, request index), so two runs with equal seeds see an
// identical offered load even when their capacities diverge — the pairing
// that makes cross-tool tail comparisons meaningful.
func (s Serve) Program(seed uint64) *ServeProgram {
	every := s.CheckpointInstr
	if every == 0 {
		every = 1_000_000
	}
	return &ServeProgram{
		inner: s.Script().Program(),
		sim:   newServeSim(s, seed),
		every: every,
	}
}

// ServeProgram drives a Serve as a kernel process: it executes the script's
// compiled stream (delegating the block walk, batching and the PAPI/LiMiT
// instrumentation seam to the inner ScriptProgram) and checkpoints the
// queueing simulation on the way through.
type ServeProgram struct {
	inner *ScriptProgram
	sim   *serveSim

	every   uint64 // checkpoint cadence, service instructions
	sinceCk uint64 // service instructions since the last checkpoint
	done    bool
}

var _ kernel.Program = (*ServeProgram)(nil)
var _ kernel.BlockStream = (*ServeProgram)(nil)
var _ Instrumentable = (*ServeProgram)(nil)

// Script implements Instrumentable.
func (sp *ServeProgram) Script() Script { return sp.inner.Script() }

// Instrument implements Instrumentable by instrumenting the inner walk.
func (sp *ServeProgram) Instrument(prelude []kernel.Op, every uint64, hook func(k *kernel.Kernel, p *kernel.Process) []kernel.Op) {
	sp.inner.Instrument(prelude, every, hook)
}

// PhaseName returns the executing phase's name.
func (sp *ServeProgram) PhaseName() string { return sp.inner.PhaseName() }

// Stats exposes the run's serving statistics; read it after the run.
func (sp *ServeProgram) Stats() *ServeStats { return &sp.sim.stats }

// Next implements kernel.Program. The checkpoint happens at the top of the
// call, when k.Now() reflects everything previously emitted — including
// tool-injected syscalls and the blocks that tripped the threshold.
func (sp *ServeProgram) Next(k *kernel.Kernel, p *kernel.Process) kernel.Op {
	if !sp.sim.started {
		sp.sim.start(k.Now())
	}
	if sp.sinceCk >= sp.every {
		sp.sim.advance(k.Now(), sp.sinceCk)
		sp.sinceCk = 0
	}
	op := sp.inner.Next(k, p)
	switch o := op.(type) {
	case kernel.OpExec:
		if o.Block.Mem.Base == regionServe {
			sp.sinceCk += o.Block.Instr
		}
	case kernel.OpExit:
		if !sp.done {
			sp.done = true
			sp.sim.finish(k.Now(), sp.sinceCk)
			sp.sinceCk = 0
		}
	}
	return op
}

// PeekRun implements kernel.BlockStream: the inner stream's batchable run,
// additionally capped so no batch crosses a capacity checkpoint — the
// crossing block and the checkpoint after it must flow through Next.
func (sp *ServeProgram) PeekRun() (isa.Block, uint64) {
	blk, avail := sp.inner.PeekRun()
	if avail == 0 || blk.Mem.Base != regionServe {
		return blk, avail
	}
	if sp.sinceCk >= sp.every {
		return blk, 0
	}
	// Copies emittable before one crosses the checkpoint threshold:
	// largest c with sinceCk + c·Instr < every.
	if ckCap := (sp.every - sp.sinceCk - 1) / blk.Instr; ckCap < avail {
		avail = ckCap
	}
	return blk, avail
}

// ConsumeRun implements kernel.BlockStream.
func (sp *ServeProgram) ConsumeRun(n uint64) {
	if n == 0 {
		return
	}
	blk, _ := sp.inner.PeekRun()
	sp.inner.ConsumeRun(n)
	if blk.Mem.Base == regionServe {
		sp.sinceCk += n * blk.Instr
	}
}

// ServeStats is one run's serving outcome. Latencies are virtual
// nanoseconds from arrival to last-tier completion, over completed requests
// only; requests still in flight when the budget ran out are reported in
// InFlightAtEnd (Arrivals = Completed + Rejected + InFlightAtEnd always).
type ServeStats struct {
	Arrivals        uint64
	Completed       uint64
	Rejected        uint64
	InFlightAtEnd   uint64
	PeakInFlight    uint64
	ClonesCancelled uint64
	Start, End      ktime.Time
	Latency         telemetry.ExactQuantiles
}

// Throughput returns completed requests per virtual second.
func (st *ServeStats) Throughput() float64 {
	span := st.End.Sub(st.Start)
	if span == 0 {
		return 0
	}
	return float64(st.Completed) / span.Seconds()
}

// psJob is one clone of one request in service at one replica.
type psJob struct {
	req       *request
	remaining float64 // instructions
}

// psReplica is one processor-sharing server: all resident jobs progress at
// replicaRate / len(jobs).
type psReplica struct {
	jobs []psJob
}

// simTier is one tier's runtime state.
type simTier struct {
	spec     Tier
	replicas []psReplica
}

// request is one in-flight request. All of its randomness — per-tier,
// per-clone demands and replica placements — is drawn at admission from a
// stream reseeded with the request's index, so it is identical across runs
// of equal seed regardless of what the capacity does.
type request struct {
	id         uint64
	arrival    ktime.Time
	tier       int
	demands    [][]float64
	placements [][]int
}

// serveSim is the queueing simulation, advanced in capacity windows.
type serveSim struct {
	model Serve
	seed  uint64

	arrRng *ktime.Rand // interarrival stream
	reqRng *ktime.Rand // per-request scratch, reseeded per request

	started bool
	lastCk  ktime.Time
	carry   uint64 // instructions credited to a zero-width window

	nextArr  ktime.Time
	haveArr  bool
	thinking uint64 // closed loop: users currently thinking

	tiers    []simTier
	inflight int
	nextID   uint64

	stats ServeStats
}

func newServeSim(model Serve, seed uint64) *serveSim {
	s := &serveSim{
		model:  model,
		seed:   seed,
		arrRng: ktime.NewRand(seed),
		reqRng: ktime.NewRand(seed + 1),
	}
	s.tiers = make([]simTier, len(model.Tiers))
	for i, t := range model.Tiers {
		s.tiers[i] = simTier{spec: t, replicas: make([]psReplica, t.Replicas)}
	}
	return s
}

func (s *serveSim) closed() bool { return s.model.Users > 0 }

// start opens the measurement span and schedules the first arrival.
func (s *serveSim) start(now ktime.Time) {
	s.started = true
	s.lastCk = now
	s.stats.Start = now
	s.thinking = s.model.Users
	s.scheduleArrival(now)
}

// advance folds one capacity window [lastCk, now) with instr service
// instructions retired into the queueing state.
func (s *serveSim) advance(now ktime.Time, instr uint64) {
	if now <= s.lastCk {
		s.carry += instr
		return
	}
	s.window(now, instr+s.carry)
	s.carry = 0
	s.lastCk = now
}

// finish flushes the final partial window and closes the measurement span.
func (s *serveSim) finish(now ktime.Time, instr uint64) {
	if !s.started {
		return
	}
	s.advance(now, instr)
	s.stats.End = now
	s.stats.InFlightAtEnd = uint64(s.inflight)
	s.haveArr = false
}

// window runs the event loop over [lastCk, until) at the window's capacity
// rate (instructions per virtual nanosecond). Completions are earliest-first
// with deterministic tie-breaks (tier, then replica, then job order);
// completions at an instant precede arrivals at the same instant.
func (s *serveSim) window(until ktime.Time, instr uint64) {
	rate := float64(instr) / float64(until.Sub(s.lastCk))
	cur := s.lastCk
	for {
		tc, ti, ri, ji, haveC := s.earliestCompletion(cur, rate)
		haveA := s.haveArr && s.nextArr <= until
		switch {
		case haveC && tc <= until && (!haveA || tc <= s.nextArr):
			s.age(tc.Sub(cur), rate)
			cur = tc
			s.complete(ti, ri, ji, cur)
		case haveA:
			s.age(s.nextArr.Sub(cur), rate)
			cur = s.nextArr
			s.arrive(cur)
		default:
			s.age(until.Sub(cur), rate)
			return
		}
	}
}

// replicaRate is one replica's service rate under the window rate.
func (s *serveSim) replicaRate(ti int, rate float64) float64 {
	t := s.tiers[ti].spec
	return t.Share * rate / float64(t.Replicas)
}

// earliestCompletion scans for the next job to finish at the window rate.
func (s *serveSim) earliestCompletion(cur ktime.Time, rate float64) (t ktime.Time, ti, ri, ji int, ok bool) {
	for i := range s.tiers {
		rrep := s.replicaRate(i, rate)
		if rrep <= 0 {
			continue
		}
		for r := range s.tiers[i].replicas {
			jobs := s.tiers[i].replicas[r].jobs
			if len(jobs) == 0 {
				continue
			}
			minJ := 0
			for j := 1; j < len(jobs); j++ {
				if jobs[j].remaining < jobs[minJ].remaining {
					minJ = j
				}
			}
			// Time for the min job to drain at rate rrep/len(jobs), rounded
			// up so aging by it always retires the job.
			d := ktime.Duration(math.Ceil(jobs[minJ].remaining * float64(len(jobs)) / rrep))
			ft := cur.Add(d)
			if !ok || ft.Before(t) {
				t, ti, ri, ji, ok = ft, i, r, minJ, true
			}
		}
	}
	return t, ti, ri, ji, ok
}

// age progresses every resident job by d of processor sharing.
func (s *serveSim) age(d ktime.Duration, rate float64) {
	if d == 0 {
		return
	}
	for i := range s.tiers {
		rrep := s.replicaRate(i, rate)
		if rrep <= 0 {
			continue
		}
		for r := range s.tiers[i].replicas {
			jobs := s.tiers[i].replicas[r].jobs
			if len(jobs) == 0 {
				continue
			}
			per := rrep / float64(len(jobs)) * float64(d)
			for j := range jobs {
				jobs[j].remaining -= per
				if jobs[j].remaining < 0 {
					jobs[j].remaining = 0
				}
			}
		}
	}
}

// complete retires the job at (ti, ri, ji): cancels its sibling clones,
// moves the request to the next tier or records its latency.
func (s *serveSim) complete(ti, ri, ji int, now ktime.Time) {
	rep := &s.tiers[ti].replicas[ri]
	req := rep.jobs[ji].req
	rep.jobs = append(rep.jobs[:ji], rep.jobs[ji+1:]...)
	// Cancel-on-first-complete: the winning clone kills its siblings.
	for r := range s.tiers[ti].replicas {
		sib := &s.tiers[ti].replicas[r]
		kept := sib.jobs[:0]
		for _, j := range sib.jobs {
			if j.req == req {
				s.stats.ClonesCancelled++
				continue
			}
			kept = append(kept, j)
		}
		sib.jobs = kept
	}
	req.tier++
	if req.tier < len(s.tiers) {
		s.dispatch(req)
		return
	}
	s.stats.Latency.Observe(uint64(now.Sub(req.arrival)))
	s.stats.Completed++
	s.inflight--
	if s.closed() {
		s.thinking++
		if !s.haveArr {
			s.scheduleArrival(now)
		}
	}
}

// arrive processes one arrival instant.
func (s *serveSim) arrive(now ktime.Time) {
	s.stats.Arrivals++
	if s.closed() {
		s.thinking--
	}
	if s.model.MaxInFlight > 0 && s.inflight >= s.model.MaxInFlight {
		s.stats.Rejected++
		if s.closed() {
			s.thinking++ // bounced straight back to thinking
		}
	} else {
		s.admit(now)
	}
	s.scheduleArrival(now)
}

// admit creates the request, draws all of its randomness, and dispatches
// it to the first tier.
func (s *serveSim) admit(now ktime.Time) {
	req := &request{id: s.nextID, arrival: now}
	s.nextID++
	s.reqRng.Reseed(s.seed + (req.id+1)*0x6c62272e07bb0142)
	req.demands = make([][]float64, len(s.tiers))
	req.placements = make([][]int, len(s.tiers))
	for i := range s.tiers {
		t := s.tiers[i].spec
		d := t.clones()
		dem := make([]float64, d)
		for c := range dem {
			dem[c] = expSample(s.reqRng) * float64(t.DemandInstr)
		}
		req.demands[i] = dem
		// d distinct replicas via partial Fisher–Yates.
		perm := make([]int, t.Replicas)
		for p := range perm {
			perm[p] = p
		}
		for p := 0; p < d; p++ {
			q := p + s.reqRng.Intn(t.Replicas-p)
			perm[p], perm[q] = perm[q], perm[p]
		}
		req.placements[i] = perm[:d]
	}
	s.inflight++
	if uint64(s.inflight) > s.stats.PeakInFlight {
		s.stats.PeakInFlight = uint64(s.inflight)
	}
	s.dispatch(req)
}

// dispatch places the request's clones at its current tier.
func (s *serveSim) dispatch(req *request) {
	ti := req.tier
	for c, r := range req.placements[ti] {
		rep := &s.tiers[ti].replicas[r]
		rep.jobs = append(rep.jobs, psJob{req: req, remaining: req.demands[ti][c]})
	}
}

// scheduleArrival draws the next arrival after from. In the closed loop the
// aggregate think population behaves as a Poisson source of rate
// thinking/Think; with nobody thinking, arrivals pause until a completion.
func (s *serveSim) scheduleArrival(from ktime.Time) {
	var mean float64 // ns
	if s.closed() {
		if s.thinking == 0 {
			s.haveArr = false
			return
		}
		mean = float64(s.model.Think) / float64(s.thinking)
	} else {
		if s.model.ArrivalsPerSec <= 0 {
			s.haveArr = false
			return
		}
		mean = float64(ktime.Second) / s.model.ArrivalsPerSec
	}
	d := ktime.Duration(mean * expSample(s.arrRng))
	if d == 0 {
		d = 1 // strictly-later arrivals guarantee event-loop progress
	}
	s.nextArr = from.Add(d)
	s.haveArr = true
}

// expSample draws a unit-mean exponential variate, clamped to [0.05, 8] so
// a single unlucky draw cannot distort a run (the same policy as
// Rand.Jitter).
func expSample(r *ktime.Rand) float64 {
	x := -math.Log1p(-r.Float64())
	if x < 0.05 {
		x = 0.05
	}
	if x > 8 {
		x = 8
	}
	return x
}
