package workload

import (
	"testing"

	"kleb/internal/cache"
	"kleb/internal/cpu"
	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/pmu"
)

func testKernel(seed uint64) *kernel.Kernel {
	cfg := cpu.Config{
		Freq:              ktime.MHz(2000),
		BaseCPI:           0.5,
		BranchMissPenalty: 15,
		FlushCycles:       50,
		Hierarchy: cache.HierarchyConfig{
			L1D:              cache.Config{Name: "L1D", Size: 32 << 10, LineSize: 64, Ways: 8, LatencyCycles: 4},
			L2:               cache.Config{Name: "L2", Size: 256 << 10, LineSize: 64, Ways: 8, LatencyCycles: 10},
			LLC:              cache.Config{Name: "LLC", Size: 4 << 20, LineSize: 64, Ways: 16, LatencyCycles: 38},
			MemLatencyCycles: 200,
		},
		MaxSimAccesses: 128,
	}
	core := cpu.New(cfg, pmu.New(nil), ktime.NewRand(seed))
	costs := kernel.DefaultCosts()
	costs.NoiseRel = 0
	costs.RunNoiseRel = 0
	return kernel.New(core, costs, ktime.NewRand(seed), kernel.Options{})
}

func TestScriptTotals(t *testing.T) {
	s := Script{Phases: []Phase{
		{TotalInstr: 1000, FPsPerK: 100},
		{TotalInstr: 2000, FPsPerK: 50},
	}}
	if s.TotalInstr() != 3000 {
		t.Errorf("TotalInstr %d", s.TotalInstr())
	}
	if s.TotalFPOps() != 200 {
		t.Errorf("TotalFPOps %d", s.TotalFPOps())
	}
}

func TestScriptProgramExecutesAllInstructions(t *testing.T) {
	s := Script{Name: "two-phase", Phases: []Phase{
		{Name: "a", TotalInstr: 950_000, BlockInstr: 300_000, LoadsPerK: 100,
			Mem: isa.MemPattern{Base: 0x1000, Footprint: 4096, Stride: 8}},
		{Name: "b", TotalInstr: 450_000, BlockInstr: 200_000, StoresPerK: 50,
			Mem: isa.MemPattern{Base: 0x2000, Footprint: 4096, Stride: 8}},
	}}
	k := testKernel(1)
	prog := s.Program()
	var instr uint64
	wrapped := kernel.ProgramFunc(func(k *kernel.Kernel, p *kernel.Process) kernel.Op {
		op := prog.Next(k, p)
		if ex, ok := op.(kernel.OpExec); ok {
			instr += ex.Block.Instr
		}
		return op
	})
	proc := k.Spawn("w", wrapped)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !proc.Exited() {
		t.Fatal("program did not exit")
	}
	if instr != s.TotalInstr() {
		t.Errorf("emitted %d instructions, script declares %d", instr, s.TotalInstr())
	}
}

func TestScriptProgramPhaseNames(t *testing.T) {
	s := Script{Phases: []Phase{
		{Name: "first", TotalInstr: 100, BlockInstr: 100},
		{Name: "second", TotalInstr: 100, BlockInstr: 100},
	}}
	sp := s.Program()
	if sp.PhaseName() != "first" {
		t.Errorf("initial phase %q", sp.PhaseName())
	}
	if sp.Script().TotalInstr() != 200 {
		t.Error("Script accessor broken")
	}
}

func TestHooksFireAtStrategicPoints(t *testing.T) {
	s := Script{Phases: []Phase{{
		TotalInstr: 1_000_000, BlockInstr: 50_000, LoadsPerK: 10,
		Mem: isa.MemPattern{Base: 0x1000, Footprint: 4096, Stride: 8},
	}}}
	sp := s.Program()
	hooks := 0
	sp.HookEvery = 100_000
	sp.Hook = func(k *kernel.Kernel, p *kernel.Process) []kernel.Op {
		hooks++
		return nil
	}
	k := testKernel(2)
	k.Spawn("w", sp)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	// 10 in-run points plus the final end-of-program hook.
	if hooks < 10 || hooks > 12 {
		t.Errorf("hooks fired %d times, want ≈11", hooks)
	}
}

func TestHookOpsAreExecuted(t *testing.T) {
	s := Script{Phases: []Phase{{
		TotalInstr: 400_000, BlockInstr: 100_000,
		Mem: isa.MemPattern{Base: 0x1000, Footprint: 4096, Stride: 8},
	}}}
	sp := s.Program()
	sp.HookEvery = 200_000
	executed := 0
	sp.Hook = func(k *kernel.Kernel, p *kernel.Process) []kernel.Op {
		return []kernel.Op{kernel.OpSyscall{Name: "mark", Fn: func(*kernel.Kernel, *kernel.Process) any {
			executed++
			return nil
		}}}
	}
	k := testKernel(3)
	k.Spawn("w", sp)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if executed < 2 {
		t.Errorf("hook ops executed %d times", executed)
	}
}

func TestPreludeRunsFirst(t *testing.T) {
	s := Script{Phases: []Phase{{
		TotalInstr: 100_000, BlockInstr: 100_000,
		Mem: isa.MemPattern{Base: 0x1000, Footprint: 4096, Stride: 8},
	}}}
	sp := s.Program()
	var order []string
	sp.Prelude = []kernel.Op{kernel.OpSyscall{Name: "init", Fn: func(*kernel.Kernel, *kernel.Process) any {
		order = append(order, "prelude")
		return nil
	}}}
	sp.HookEvery = 100_000
	sp.Hook = func(k *kernel.Kernel, p *kernel.Process) []kernel.Op {
		order = append(order, "hook")
		return nil
	}
	k := testKernel(4)
	k.Spawn("w", sp)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) < 2 || order[0] != "prelude" {
		t.Errorf("order: %v", order)
	}
}

func TestLinpackFlops(t *testing.T) {
	lp := NewLinpack(5000)
	want := uint64(2)*5000*5000*5000/3 + 2*5000*5000
	if lp.Flops() != want {
		t.Errorf("flops %d want %d", lp.Flops(), want)
	}
	s := lp.Script()
	if len(s.Phases) != 2+lp.Cycles*3 {
		t.Errorf("phase count %d, want init+setup+%d solve cycles", len(s.Phases), lp.Cycles)
	}
	if s.Phases[0].Priv != isa.Kernel {
		t.Error("LINPACK init must run in kernel mode (flat user counters in Fig 4)")
	}
	// Smaller problems run proportionally less work.
	small := NewLinpack(2500).Script()
	if small.TotalInstr() >= s.TotalInstr() {
		t.Error("problem size scaling broken")
	}
}

func TestMatmulScripts(t *testing.T) {
	tl := NewTripleLoopMatmul()
	dg := NewDgemmMatmul()
	if tl.Flops() != dg.Flops() {
		t.Error("both matmuls should do the same nominal flops")
	}
	if tl.Script().TotalInstr() <= dg.Script().TotalInstr() {
		t.Error("the naive loop should retire more instructions than dgemm")
	}
	// dgemm's kernel tile must be cache-resident (that is the point).
	kern := dg.Script().Phases[1]
	if kern.Mem.Footprint > 64<<10 {
		t.Errorf("dgemm tile footprint %d too large", kern.Mem.Footprint)
	}
}

func TestImagesCatalog(t *testing.T) {
	imgs := Images()
	if len(imgs) != 9 {
		t.Fatalf("expected 9 images, got %d", len(imgs))
	}
	classes := map[WorkloadClass]int{}
	for _, img := range imgs {
		classes[img.Class]++
		s := img.Script()
		if s.TotalInstr() == 0 {
			t.Errorf("%s: empty script", img.Name)
		}
		if _, ok := ImageByName(img.Name); !ok {
			t.Errorf("%s: lookup failed", img.Name)
		}
	}
	if classes[MemoryIntensive] != 3 || classes[ComputeIntensive] != 6 {
		t.Errorf("class split: %v", classes)
	}
	if _, ok := ImageByName("no-such-image"); ok {
		t.Error("bogus image resolved")
	}
}

func TestClassifyMPKI(t *testing.T) {
	if ClassifyMPKI(9.99) != ComputeIntensive {
		t.Error("below threshold should be compute")
	}
	if ClassifyMPKI(10.01) != MemoryIntensive {
		t.Error("above threshold should be memory")
	}
}

func TestDockerRunSpawnsChildAndWaits(t *testing.T) {
	img, _ := ImageByName("ruby")
	k := testKernel(5)
	engine := k.Spawn("dockerd", DockerRun(img))
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	if !engine.Exited() {
		t.Fatal("engine did not exit")
	}
	var child *kernel.Process
	for _, p := range k.Processes() {
		if p.PPID() == engine.PID() {
			child = p
		}
	}
	if child == nil {
		t.Fatal("no container child spawned")
	}
	if !child.Exited() {
		t.Error("child still alive")
	}
	if engine.ExitTime() < child.ExitTime() {
		t.Error("engine exited before its container")
	}
	if child.UserTime() <= engine.UserTime() {
		t.Error("the container should do the bulk of the work")
	}
}

func TestMeltdownScripts(t *testing.T) {
	m := NewMeltdown()
	v, a := m.VictimScript(), m.AttackScript()
	if a.TotalInstr() <= v.TotalInstr() {
		t.Error("attack adds work")
	}
	var flushes uint64
	for _, ph := range a.Phases {
		flushes += ph.TotalInstr * ph.FlushesPerK / 1000
	}
	if flushes == 0 {
		t.Error("attack must issue CLFLUSHes")
	}
	for _, ph := range v.Phases {
		if ph.FlushesPerK != 0 {
			t.Error("victim must not flush")
		}
	}
	// Attack preserves the victim's phases around the exploit.
	if a.Phases[0].Name != v.Phases[0].Name ||
		a.Phases[len(a.Phases)-1].Name != v.Phases[len(v.Phases)-1].Name {
		t.Error("attack should wrap the victim program")
	}
}

func TestOSNoiseIsADaemonFriendlyLoop(t *testing.T) {
	k := testKernel(6)
	k.SpawnDaemon("noise", OSNoise(1))
	k.Spawn("main", Synthetic{TotalInstr: 10_000_000}.Script().Program())
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticDefaults(t *testing.T) {
	s := Synthetic{TotalInstr: 1000}.Script()
	if s.Name != "synthetic" || len(s.Phases) != 1 {
		t.Error("defaults not applied")
	}
	ph := s.Phases[0]
	if ph.LoadsPerK == 0 || ph.Mem.Footprint == 0 || ph.BlockInstr == 0 {
		t.Error("zero defaults leaked")
	}
}

func TestSuiteCatalog(t *testing.T) {
	suite := Suite()
	if len(suite) != 6 {
		t.Fatalf("suite size %d", len(suite))
	}
	seen := map[string]bool{}
	for _, b := range suite {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		seen[b.Name] = true
		if b.Family == "" {
			t.Errorf("%s: no family", b.Name)
		}
		s := b.Script()
		if s.TotalInstr() == 0 || s.Name != b.Name {
			t.Errorf("%s: bad script", b.Name)
		}
		if _, ok := BenchmarkByName(b.Name); !ok {
			t.Errorf("%s: lookup failed", b.Name)
		}
	}
	if _, ok := BenchmarkByName("no-such-bench"); ok {
		t.Error("bogus benchmark resolved")
	}
}

func TestSuiteRegionsDisjoint(t *testing.T) {
	// Each member gets a private address region so characterization runs
	// (and any co-located use) never share lines.
	bases := map[uint64]string{}
	for _, b := range Suite() {
		base := b.Script().Phases[0].Mem.Base
		if prev, dup := bases[base]; dup {
			t.Errorf("%s and %s share region base %#x", b.Name, prev, base)
		}
		bases[base] = b.Name
	}
}
