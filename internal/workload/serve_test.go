package workload

import (
	"testing"

	"kleb/internal/ktime"
)

// testModel is a small, fast-arriving service for direct simulator drives.
func testModel() Serve {
	return Serve{
		Name: "serve-test",
		Tiers: []Tier{
			{Name: "web", Share: 0.3, Replicas: 2, Clones: 1, DemandInstr: 20_000},
			{Name: "app", Share: 0.3, Replicas: 3, Clones: 2, DemandInstr: 30_000},
			{Name: "db", Share: 0.4, Replicas: 2, Clones: 1, DemandInstr: 50_000},
		},
		ArrivalsPerSec: 5000,
		MaxInFlight:    1024,
	}
}

// drive advances the simulation through n capacity windows of the given
// width and per-window service instructions, then closes it.
func drive(s *serveSim, n int, width ktime.Duration, instr uint64) {
	t := ktime.Time(1000)
	s.start(t)
	for i := 0; i < n; i++ {
		t = t.Add(width)
		s.advance(t, instr)
	}
	s.finish(t, 0)
}

// TestServeSimConservation pins the request-accounting invariant: every
// arrival is completed, rejected, or still in flight at the end.
func TestServeSimConservation(t *testing.T) {
	s := newServeSim(testModel(), 7)
	drive(s, 400, 500*ktime.Microsecond, 1_000_000) // 2 instr/ns capacity
	st := &s.stats
	if st.Arrivals == 0 || st.Completed == 0 {
		t.Fatalf("degenerate run: arrivals=%d completed=%d", st.Arrivals, st.Completed)
	}
	if st.Arrivals != st.Completed+st.Rejected+st.InFlightAtEnd {
		t.Errorf("conservation: %d arrivals != %d completed + %d rejected + %d in flight",
			st.Arrivals, st.Completed, st.Rejected, st.InFlightAtEnd)
	}
	if st.Latency.Count() != st.Completed {
		t.Errorf("latency population %d != completed %d", st.Latency.Count(), st.Completed)
	}
}

// TestServeSimDeterminism requires two identical drives to produce
// bit-identical statistics.
func TestServeSimDeterminism(t *testing.T) {
	run := func() *ServeStats {
		s := newServeSim(testModel(), 42)
		drive(s, 300, 500*ktime.Microsecond, 1_000_000)
		return &s.stats
	}
	a, b := run(), run()
	if a.Arrivals != b.Arrivals || a.Completed != b.Completed ||
		a.ClonesCancelled != b.ClonesCancelled || a.PeakInFlight != b.PeakInFlight {
		t.Fatalf("replays diverge: %+v vs %+v", a, b)
	}
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if a.Latency.Quantile(q) != b.Latency.Quantile(q) {
			t.Errorf("Quantile(%v) diverges: %d vs %d", q, a.Latency.Quantile(q), b.Latency.Quantile(q))
		}
	}
}

// TestServeSimCapacityCoupling is the model's core property: the identical
// offered load served with less capacity per unit time must show a longer
// tail — this is the channel through which monitoring overhead becomes
// tail latency.
func TestServeSimCapacityCoupling(t *testing.T) {
	fast := newServeSim(testModel(), 11)
	drive(fast, 400, 500*ktime.Microsecond, 1_000_000)
	slow := newServeSim(testModel(), 11)
	drive(slow, 400, 500*ktime.Microsecond, 700_000) // 30% less capacity
	// Paired seeds: both saw the same arrival instants and demands.
	if fast.stats.Arrivals != slow.stats.Arrivals {
		t.Fatalf("offered load not paired: %d vs %d arrivals", fast.stats.Arrivals, slow.stats.Arrivals)
	}
	fp99 := fast.stats.Latency.Quantile(0.99)
	sp99 := slow.stats.Latency.Quantile(0.99)
	if sp99 <= fp99 {
		t.Errorf("slow capacity p99 %d <= fast p99 %d; capacity is not coupled to latency", sp99, fp99)
	}
}

// TestServeSimCloneCancellation checks cancel-on-first-complete accounting:
// with one 2-clone tier, every completion kills exactly one sibling.
func TestServeSimCloneCancellation(t *testing.T) {
	m := Serve{
		Name:           "hedged",
		Tiers:          []Tier{{Name: "only", Share: 1, Replicas: 3, Clones: 2, DemandInstr: 30_000}},
		ArrivalsPerSec: 4000,
		MaxInFlight:    1024,
	}
	s := newServeSim(m, 3)
	drive(s, 200, 500*ktime.Microsecond, 1_000_000)
	st := &s.stats
	if st.Completed == 0 {
		t.Fatal("no completions")
	}
	if st.ClonesCancelled != st.Completed {
		t.Errorf("cancelled %d != completed %d: each hedged completion must cancel exactly one sibling",
			st.ClonesCancelled, st.Completed)
	}
	// Clones above Replicas are capped there.
	over := Tier{Replicas: 2, Clones: 5}
	if got := over.clones(); got != 2 {
		t.Errorf("clones() = %d, want capped at 2 replicas", got)
	}
}

// TestServeSimAdmissionControl drives an overloaded tiny-cap service and
// requires rejections to be counted, not dropped.
func TestServeSimAdmissionControl(t *testing.T) {
	m := testModel()
	m.MaxInFlight = 2
	m.ArrivalsPerSec = 50_000
	s := newServeSim(m, 5)
	drive(s, 100, 500*ktime.Microsecond, 200_000)
	st := &s.stats
	if st.Rejected == 0 {
		t.Fatal("overloaded 2-slot service rejected nothing")
	}
	if st.Arrivals != st.Completed+st.Rejected+st.InFlightAtEnd {
		t.Errorf("conservation under rejection: %d != %d+%d+%d",
			st.Arrivals, st.Completed, st.Rejected, st.InFlightAtEnd)
	}
	if st.PeakInFlight > 2 {
		t.Errorf("peak in flight %d exceeds the cap of 2", st.PeakInFlight)
	}
}

// TestServeSimClosedLoop checks the aggregate think-population generator: a
// one-user loop never holds more than one request in flight, and a large
// population behaves like an open source without per-user state.
func TestServeSimClosedLoop(t *testing.T) {
	m := testModel().ClosedLoop(1, 100*ktime.Microsecond)
	s := newServeSim(m, 9)
	drive(s, 300, 500*ktime.Microsecond, 1_000_000)
	if s.stats.PeakInFlight > 1 {
		t.Errorf("single-user loop reached %d in flight", s.stats.PeakInFlight)
	}
	if s.stats.Completed == 0 {
		t.Error("single-user loop completed nothing")
	}

	big := testModel().ClosedLoop(3_000_000, 600*ktime.Second) // 5000 req/s offered
	b := newServeSim(big, 9)
	drive(b, 300, 500*ktime.Microsecond, 1_000_000)
	if b.stats.Arrivals == 0 || b.stats.Completed == 0 {
		t.Fatalf("3M-user loop degenerate: %+v", b.stats)
	}
	if b.stats.Arrivals != b.stats.Completed+b.stats.Rejected+b.stats.InFlightAtEnd {
		t.Error("conservation fails for the closed loop")
	}
}

// TestServeProgramSeam checks the wrapper's program plumbing: the serve
// script lives in its own memory region, and PAPI/LiMiT-style Instrument
// calls reach the inner walk.
func TestServeProgramSeam(t *testing.T) {
	sv := NewServe()
	script := sv.Script()
	if script.TotalInstr() != sv.TotalInstr {
		t.Errorf("script budget %d != model budget %d", script.TotalInstr(), sv.TotalInstr)
	}
	for _, ph := range script.Phases {
		if ph.Mem.Base != regionServe {
			t.Errorf("phase %q in region %#x, want the serve region", ph.Name, ph.Mem.Base)
		}
	}
	sp := sv.Program(1)
	sp.Instrument(nil, 12345, nil)
	if sp.inner.HookEvery != 12345 {
		t.Error("Instrument did not reach the inner script walk")
	}
	if got := sp.Script().TotalInstr(); got != sv.TotalInstr {
		t.Errorf("Script() through the wrapper reports %d instructions", got)
	}
}
