// Package workload provides the synthetic programs the experiments monitor:
// a phase-structured LINPACK model, triple-nested-loop and MKL-dgemm matrix
// multiplication, Docker container images with calibrated memory
// intensities, a Meltdown victim/attacker pair, and generic mix generators.
//
// Workloads are expressed as phase scripts: each phase emits instruction
// blocks with a fixed class mix and memory pattern until its instruction
// budget is exhausted. The paper's case studies only observe workloads
// through their hardware event signatures, so a synthetic program with the
// right signature exercises the identical monitoring code paths (DESIGN.md
// §1).
package workload

import (
	"kleb/internal/isa"
	"kleb/internal/kernel"
)

// Phase is one homogeneous stretch of a workload.
type Phase struct {
	// Name labels the phase for tracing.
	Name string
	// TotalInstr is the phase's instruction budget.
	TotalInstr uint64
	// BlockInstr is the emission granularity: how many instructions per
	// block. Smaller blocks let high-frequency sampling resolve the phase.
	BlockInstr uint64
	// Per-1000-instruction class mix.
	LoadsPerK, StoresPerK, BranchesPerK, MulsPerK, FPsPerK, FlushesPerK uint64
	// MispredictRate is the fraction of hard-to-predict branches.
	MispredictRate float64
	// Mem is the data access pattern.
	Mem isa.MemPattern
	// Priv is the privilege level (LINPACK's init runs in the kernel).
	Priv isa.Priv
}

// defaultBlockInstr is the emission granularity of a phase that declares
// none; blockAt and the stream compiler must agree on it.
const defaultBlockInstr = 100_000

// blockAt returns the phase's block for the given remaining budget.
func (ph Phase) blockAt(remaining uint64) isa.Block {
	n := ph.BlockInstr
	if n == 0 {
		n = defaultBlockInstr
	}
	if n > remaining {
		n = remaining
	}
	return isa.Block{
		Instr:                n,
		Loads:                n * ph.LoadsPerK / 1000,
		Stores:               n * ph.StoresPerK / 1000,
		Branches:             n * ph.BranchesPerK / 1000,
		MulOps:               n * ph.MulsPerK / 1000,
		FPOps:                n * ph.FPsPerK / 1000,
		Flushes:              n * ph.FlushesPerK / 1000,
		BranchMispredictRate: ph.MispredictRate,
		Mem:                  ph.Mem,
		Priv:                 ph.Priv,
	}
}

// Script is a complete workload: an ordered list of phases.
type Script struct {
	// Name identifies the workload.
	Name string
	// Phases run in order; the program exits after the last one.
	Phases []Phase
}

// TotalInstr sums the phases' instruction budgets.
func (s Script) TotalInstr() uint64 {
	var t uint64
	for _, ph := range s.Phases {
		t += ph.TotalInstr
	}
	return t
}

// TotalFPOps sums the floating point operations the script performs, for
// GFLOPS computations.
func (s Script) TotalFPOps() uint64 {
	var t uint64
	for _, ph := range s.Phases {
		t += ph.TotalInstr * ph.FPsPerK / 1000
	}
	return t
}

// legacyExec selects the per-step interpreter instead of compiled streams
// for every Program built after the switch (the -legacy-exec flag). Both
// modes produce byte-identical artifacts — the legacy interpreter exists as
// the differential-testing oracle for the compiled path (DESIGN.md §13).
var legacyExec bool

// SetLegacyExec switches subsequently built ScriptPrograms between the
// compiled-stream executor (false, the default) and the legacy per-step
// interpreter (true). Programs already built keep their mode. Not safe to
// call concurrently with Program; flip it between runs.
func SetLegacyExec(v bool) { legacyExec = v }

// LegacyExec reports the current executor mode.
func LegacyExec() bool { return legacyExec }

// Program returns a fresh kernel program executing the script once. Unless
// SetLegacyExec(true) is in effect the script is lowered to its compiled
// stream, which lets the kernel batch steady-phase blocks (it implements
// kernel.BlockStream).
func (s Script) Program() *ScriptProgram {
	sp := &ScriptProgram{script: s}
	if !legacyExec {
		sp.stream, sp.phaseOf = s.compile()
	}
	return sp
}

// Compile lowers the script to its flat run-length block stream: per phase,
// one Run of identical full blocks plus one single-copy Run for the
// remainder. The emission order is exactly the per-step interpreter's.
func (s Script) Compile() isa.CompiledStream {
	cs, _ := s.compile()
	return cs
}

func (s Script) compile() (isa.CompiledStream, []int) {
	var runs []isa.Run
	var phaseOf []int
	for pi, ph := range s.Phases {
		if ph.TotalInstr == 0 {
			continue
		}
		n := ph.BlockInstr
		if n == 0 {
			n = defaultBlockInstr
		}
		if full := ph.TotalInstr / n; full > 0 {
			runs = append(runs, isa.Run{Block: ph.blockAt(ph.TotalInstr), Count: full})
			phaseOf = append(phaseOf, pi)
		}
		if rem := ph.TotalInstr % n; rem > 0 {
			runs = append(runs, isa.Run{Block: ph.blockAt(rem), Count: 1})
			phaseOf = append(phaseOf, pi)
		}
	}
	return isa.CompiledStream{Runs: runs}, phaseOf
}

// ScriptProgram drives a Script as a kernel process. It also implements the
// instrumentation seam PAPI/LiMiT need: an optional hook invoked every
// HookEvery retired instructions (a "strategic point" in the paper's
// terminology) may inject operations such as counter-read syscalls.
type ScriptProgram struct {
	script Script

	// Compiled mode (the default): the script lowered to a run-length block
	// stream, with phaseOf mapping each run back to its phase for tracing.
	// An empty stream selects the legacy per-step interpreter.
	stream  isa.CompiledStream
	phaseOf []int
	runIx   int
	runLeft uint64 // unemitted copies of the current run

	// Legacy-interpreter walk state.
	phase     int
	remaining uint64

	started bool

	// Prelude operations run once before the first phase — where
	// instrumenting tools put their library initialization (e.g.
	// PAPI_library_init).
	Prelude []kernel.Op
	// HookEvery inserts Hook's operations every so many instructions.
	HookEvery uint64
	// Hook returns the operations to run at a strategic point. It may
	// return nil.
	Hook func(k *kernel.Kernel, p *kernel.Process) []kernel.Op

	sinceHook uint64
	queue     []kernel.Op
	done      bool
}

var _ kernel.Program = (*ScriptProgram)(nil)
var _ kernel.BlockStream = (*ScriptProgram)(nil)

// Script returns the underlying script.
func (sp *ScriptProgram) Script() Script { return sp.script }

// compiled reports whether the program runs its compiled stream.
func (sp *ScriptProgram) compiled() bool { return len(sp.stream.Runs) > 0 }

// PhaseName returns the name of the phase currently executing.
func (sp *ScriptProgram) PhaseName() string {
	ix := sp.phase
	if sp.compiled() {
		if sp.runIx >= len(sp.phaseOf) {
			return ""
		}
		ix = sp.phaseOf[sp.runIx]
	}
	if ix < len(sp.script.Phases) {
		return sp.script.Phases[ix].Name
	}
	return ""
}

// Next implements kernel.Program.
func (sp *ScriptProgram) Next(k *kernel.Kernel, p *kernel.Process) kernel.Op {
	if len(sp.queue) > 0 {
		op := sp.queue[0]
		sp.queue = sp.queue[1:]
		return op
	}
	if sp.done {
		return kernel.OpExit{}
	}
	if !sp.started {
		sp.started = true
		if sp.compiled() {
			sp.runLeft = sp.stream.Runs[0].Count
		} else if len(sp.script.Phases) > 0 {
			sp.remaining = sp.script.Phases[0].TotalInstr
		}
		if len(sp.Prelude) > 0 {
			sp.queue = append(sp.queue, sp.Prelude...)
			return sp.nextQueued()
		}
	}
	if sp.compiled() {
		return sp.nextCompiled(k, p)
	}
	for sp.phase < len(sp.script.Phases) && sp.remaining == 0 {
		sp.phase++
		if sp.phase < len(sp.script.Phases) {
			sp.remaining = sp.script.Phases[sp.phase].TotalInstr
		}
	}
	if sp.phase >= len(sp.script.Phases) {
		return sp.finish(k, p)
	}
	ph := sp.script.Phases[sp.phase]
	blk := ph.blockAt(sp.remaining)
	sp.remaining -= blk.Instr
	return sp.emit(k, p, blk)
}

// nextCompiled is Next's compiled-stream walk: identical emission order to
// the interpreter above, but positioned by (run, copies-left) so PeekRun
// can answer "how many identical blocks follow?" in O(1).
func (sp *ScriptProgram) nextCompiled(k *kernel.Kernel, p *kernel.Process) kernel.Op {
	for sp.runIx < len(sp.stream.Runs) && sp.runLeft == 0 {
		sp.runIx++
		if sp.runIx < len(sp.stream.Runs) {
			sp.runLeft = sp.stream.Runs[sp.runIx].Count
		}
	}
	if sp.runIx >= len(sp.stream.Runs) {
		return sp.finish(k, p)
	}
	sp.runLeft--
	return sp.emit(k, p, sp.stream.Runs[sp.runIx].Block)
}

// emit accounts one block emission against the hook cadence and wraps it.
func (sp *ScriptProgram) emit(k *kernel.Kernel, p *kernel.Process, blk isa.Block) kernel.Op {
	sp.sinceHook += blk.Instr
	if sp.HookEvery > 0 && sp.sinceHook >= sp.HookEvery {
		sp.sinceHook = 0
		if ops := sp.fireHook(k, p); len(ops) > 0 {
			sp.queue = append(sp.queue, ops...)
		}
	}
	return kernel.OpExec{Block: blk}
}

// finish marks the script drained and fires the final hook.
func (sp *ScriptProgram) finish(k *kernel.Kernel, p *kernel.Process) kernel.Op {
	sp.done = true
	if ops := sp.fireHook(k, p); len(ops) > 0 {
		sp.queue = append(sp.queue, ops...)
		return sp.nextQueued()
	}
	return kernel.OpExit{}
}

// PeekRun implements kernel.BlockStream: it reports the block the next Next
// call would emit and how many consecutive identical copies are available
// without a side effect — excluding queued hook/prelude ops, run (phase)
// boundaries, and the copy whose emission would trip the periodic hook,
// all of which must flow through a real Next call.
func (sp *ScriptProgram) PeekRun() (isa.Block, uint64) {
	if !sp.compiled() || !sp.started || sp.done || len(sp.queue) > 0 ||
		sp.runIx >= len(sp.stream.Runs) || sp.runLeft == 0 {
		return isa.Block{}, 0
	}
	blk := sp.stream.Runs[sp.runIx].Block
	avail := sp.runLeft
	if sp.HookEvery > 0 {
		if sp.sinceHook >= sp.HookEvery {
			return blk, 0
		}
		// Copies emittable before one trips the hook: largest c with
		// sinceHook + c·Instr < HookEvery.
		if hookCap := (sp.HookEvery - sp.sinceHook - 1) / blk.Instr; hookCap < avail {
			avail = hookCap
		}
	}
	return blk, avail
}

// ConsumeRun implements kernel.BlockStream: it advances past n copies the
// caller batched, exactly as n Next calls would have (n must not exceed the
// last PeekRun's count, so no hook or boundary is skipped).
func (sp *ScriptProgram) ConsumeRun(n uint64) {
	if n == 0 {
		return
	}
	sp.runLeft -= n
	sp.sinceHook += n * sp.stream.Runs[sp.runIx].Block.Instr
}

func (sp *ScriptProgram) fireHook(k *kernel.Kernel, p *kernel.Process) []kernel.Op {
	if sp.Hook == nil {
		return nil
	}
	return sp.Hook(k, p)
}

func (sp *ScriptProgram) nextQueued() kernel.Op {
	op := sp.queue[0]
	sp.queue = sp.queue[1:]
	return op
}

// Instrumentable is the source-instrumentation seam: a program whose
// "source" can be modified to run setup code at the top of main and to
// insert operations at strategic points every so many retired instructions.
// PAPI- and LiMiT-style tools require it — they cannot observe a program
// they cannot recompile — and assert this interface rather than a concrete
// program type, so wrapper programs (the request-serving model) stay
// instrumentable by delegating to their inner script walk.
type Instrumentable interface {
	// Script returns the underlying phase script (for sizing the hook
	// cadence against the total instruction budget).
	Script() Script
	// Instrument installs the tool's prelude and strategic-point hook.
	Instrument(prelude []kernel.Op, every uint64, hook func(k *kernel.Kernel, p *kernel.Process) []kernel.Op)
}

// Instrument implements Instrumentable.
func (sp *ScriptProgram) Instrument(prelude []kernel.Op, every uint64, hook func(k *kernel.Kernel, p *kernel.Process) []kernel.Op) {
	sp.Prelude = prelude
	sp.HookEvery = every
	sp.Hook = hook
}

var _ Instrumentable = (*ScriptProgram)(nil)

// Region bases keep workloads' footprints disjoint in the shared hierarchy.
const (
	regionLinpack  uint64 = 0x1_0000_0000
	regionMatmul   uint64 = 0x2_0000_0000
	regionDocker   uint64 = 0x3_0000_0000
	regionMeltdown uint64 = 0x4_0000_0000
	regionSynth    uint64 = 0x5_0000_0000
	regionNoise    uint64 = 0x6_0000_0000
	regionTool     uint64 = 0x7_0000_0000
	regionServe    uint64 = 0x8_0000_0000
)

// ToolRegion is the memory region tool-side user work (log formatting)
// runs in, so tool activity pollutes the monitored process's cache the way
// a competing process would.
func ToolRegion() uint64 { return regionTool }
