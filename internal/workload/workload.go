// Package workload provides the synthetic programs the experiments monitor:
// a phase-structured LINPACK model, triple-nested-loop and MKL-dgemm matrix
// multiplication, Docker container images with calibrated memory
// intensities, a Meltdown victim/attacker pair, and generic mix generators.
//
// Workloads are expressed as phase scripts: each phase emits instruction
// blocks with a fixed class mix and memory pattern until its instruction
// budget is exhausted. The paper's case studies only observe workloads
// through their hardware event signatures, so a synthetic program with the
// right signature exercises the identical monitoring code paths (DESIGN.md
// §1).
package workload

import (
	"kleb/internal/isa"
	"kleb/internal/kernel"
)

// Phase is one homogeneous stretch of a workload.
type Phase struct {
	// Name labels the phase for tracing.
	Name string
	// TotalInstr is the phase's instruction budget.
	TotalInstr uint64
	// BlockInstr is the emission granularity: how many instructions per
	// block. Smaller blocks let high-frequency sampling resolve the phase.
	BlockInstr uint64
	// Per-1000-instruction class mix.
	LoadsPerK, StoresPerK, BranchesPerK, MulsPerK, FPsPerK, FlushesPerK uint64
	// MispredictRate is the fraction of hard-to-predict branches.
	MispredictRate float64
	// Mem is the data access pattern.
	Mem isa.MemPattern
	// Priv is the privilege level (LINPACK's init runs in the kernel).
	Priv isa.Priv
}

// blockAt returns the phase's block for the given remaining budget.
func (ph Phase) blockAt(remaining uint64) isa.Block {
	n := ph.BlockInstr
	if n == 0 {
		n = 100_000
	}
	if n > remaining {
		n = remaining
	}
	return isa.Block{
		Instr:                n,
		Loads:                n * ph.LoadsPerK / 1000,
		Stores:               n * ph.StoresPerK / 1000,
		Branches:             n * ph.BranchesPerK / 1000,
		MulOps:               n * ph.MulsPerK / 1000,
		FPOps:                n * ph.FPsPerK / 1000,
		Flushes:              n * ph.FlushesPerK / 1000,
		BranchMispredictRate: ph.MispredictRate,
		Mem:                  ph.Mem,
		Priv:                 ph.Priv,
	}
}

// Script is a complete workload: an ordered list of phases.
type Script struct {
	// Name identifies the workload.
	Name string
	// Phases run in order; the program exits after the last one.
	Phases []Phase
}

// TotalInstr sums the phases' instruction budgets.
func (s Script) TotalInstr() uint64 {
	var t uint64
	for _, ph := range s.Phases {
		t += ph.TotalInstr
	}
	return t
}

// TotalFPOps sums the floating point operations the script performs, for
// GFLOPS computations.
func (s Script) TotalFPOps() uint64 {
	var t uint64
	for _, ph := range s.Phases {
		t += ph.TotalInstr * ph.FPsPerK / 1000
	}
	return t
}

// Program returns a fresh kernel program executing the script once.
func (s Script) Program() *ScriptProgram {
	return &ScriptProgram{script: s}
}

// ScriptProgram drives a Script as a kernel process. It also implements the
// instrumentation seam PAPI/LiMiT need: an optional hook invoked every
// HookEvery retired instructions (a "strategic point" in the paper's
// terminology) may inject operations such as counter-read syscalls.
type ScriptProgram struct {
	script Script

	phase     int
	remaining uint64
	started   bool

	// Prelude operations run once before the first phase — where
	// instrumenting tools put their library initialization (e.g.
	// PAPI_library_init).
	Prelude []kernel.Op
	// HookEvery inserts Hook's operations every so many instructions.
	HookEvery uint64
	// Hook returns the operations to run at a strategic point. It may
	// return nil.
	Hook func(k *kernel.Kernel, p *kernel.Process) []kernel.Op

	sinceHook uint64
	queue     []kernel.Op
	done      bool
}

var _ kernel.Program = (*ScriptProgram)(nil)

// Script returns the underlying script.
func (sp *ScriptProgram) Script() Script { return sp.script }

// PhaseName returns the name of the phase currently executing.
func (sp *ScriptProgram) PhaseName() string {
	if sp.phase < len(sp.script.Phases) {
		return sp.script.Phases[sp.phase].Name
	}
	return ""
}

// Next implements kernel.Program.
func (sp *ScriptProgram) Next(k *kernel.Kernel, p *kernel.Process) kernel.Op {
	if len(sp.queue) > 0 {
		op := sp.queue[0]
		sp.queue = sp.queue[1:]
		return op
	}
	if sp.done {
		return kernel.OpExit{}
	}
	if !sp.started {
		sp.started = true
		if len(sp.script.Phases) > 0 {
			sp.remaining = sp.script.Phases[0].TotalInstr
		}
		if len(sp.Prelude) > 0 {
			sp.queue = append(sp.queue, sp.Prelude...)
			return sp.nextQueued()
		}
	}
	for sp.phase < len(sp.script.Phases) && sp.remaining == 0 {
		sp.phase++
		if sp.phase < len(sp.script.Phases) {
			sp.remaining = sp.script.Phases[sp.phase].TotalInstr
		}
	}
	if sp.phase >= len(sp.script.Phases) {
		sp.done = true
		if ops := sp.fireHook(k, p); len(ops) > 0 {
			sp.queue = append(sp.queue, ops...)
			return sp.nextQueued()
		}
		return kernel.OpExit{}
	}
	ph := sp.script.Phases[sp.phase]
	blk := ph.blockAt(sp.remaining)
	sp.remaining -= blk.Instr
	sp.sinceHook += blk.Instr
	if sp.HookEvery > 0 && sp.sinceHook >= sp.HookEvery {
		sp.sinceHook = 0
		if ops := sp.fireHook(k, p); len(ops) > 0 {
			sp.queue = append(sp.queue, ops...)
		}
	}
	return kernel.OpExec{Block: blk}
}

func (sp *ScriptProgram) fireHook(k *kernel.Kernel, p *kernel.Process) []kernel.Op {
	if sp.Hook == nil {
		return nil
	}
	return sp.Hook(k, p)
}

func (sp *ScriptProgram) nextQueued() kernel.Op {
	op := sp.queue[0]
	sp.queue = sp.queue[1:]
	return op
}

// Region bases keep workloads' footprints disjoint in the shared hierarchy.
const (
	regionLinpack  uint64 = 0x1_0000_0000
	regionMatmul   uint64 = 0x2_0000_0000
	regionDocker   uint64 = 0x3_0000_0000
	regionMeltdown uint64 = 0x4_0000_0000
	regionSynth    uint64 = 0x5_0000_0000
	regionNoise    uint64 = 0x6_0000_0000
	regionTool     uint64 = 0x7_0000_0000
)

// ToolRegion is the memory region tool-side user work (log formatting)
// runs in, so tool activity pollutes the monitored process's cache the way
// a competing process would.
func ToolRegion() uint64 { return regionTool }
