//go:build race

package fleet

// raceEnabled reports whether the race detector is active; the fleet
// sustain test scales its node count down under it (the detector makes
// each simulated node run ~10x slower).
const raceEnabled = true
