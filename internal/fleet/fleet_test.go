package fleet

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"kleb/internal/ktime"
	"kleb/internal/telemetry"
)

// testConfig is a small fleet exercising every node flavour: monitored
// singles, fault-injected runs and 2-core cluster nodes.
func testConfig(shards int) Config {
	return Config{
		Nodes:        8,
		Shards:       shards,
		Seed:         42,
		Rounds:       2,
		TargetInstr:  300_000,
		FaultEvery:   3,
		ClusterEvery: 5,
		Retention:    1 << 12,
	}
}

// fleetArtifacts runs cfg to completion and returns the deterministic
// aggregate rendered both ways.
func fleetArtifacts(t *testing.T, cfg Config) (metrics, trace []byte) {
	t.Helper()
	f := New(cfg)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var m, tr bytes.Buffer
	if err := snap.WritePrometheus(&m); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteChromeTrace(&tr); err != nil {
		t.Fatal(err)
	}
	return m.Bytes(), tr.Bytes()
}

// TestFleetAggregateDeterminism is the tentpole invariant: the fleet-level
// exposition AND the fleet trace window are byte-identical at 1, 2 and 8
// shards (extending the TelemetryDeterminism suite to the daemon layer).
func TestFleetAggregateDeterminism(t *testing.T) {
	baseM, baseT := fleetArtifacts(t, testConfig(1))
	if !strings.Contains(string(baseM), "kleb_fleet_rounds_total 2") {
		t.Fatalf("baseline did not fold 2 rounds:\n%s", baseM)
	}
	for _, shards := range []int{2, 8} {
		m, tr := fleetArtifacts(t, testConfig(shards))
		if !bytes.Equal(baseM, m) {
			t.Errorf("fleet exposition differs between 1 and %d shards:\n--- 1 shard\n%s\n--- %d shards\n%s",
				shards, baseM, shards, m)
		}
		if !bytes.Equal(baseT, tr) {
			t.Errorf("fleet trace differs between 1 and %d shards", shards)
		}
	}
}

// TestFleetExpositionConformance: whatever the fleet serves must pass the
// strict exposition lint, fleet section and self section alike.
func TestFleetExpositionConformance(t *testing.T) {
	f := New(testConfig(4))
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	st := f.Status()
	if err := f.self.writePrometheus(&buf, st.ShardLag, st.TraceEvicted); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.LintExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("served exposition fails lint: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "klebd_merge_latency_ns_count") {
		t.Error("self section missing merge latency histogram")
	}
}

// TestFleetLedgerConservation: the fleet-wide period-conservation ledger
// balances even with the background fault rate injecting losses.
func TestFleetLedgerConservation(t *testing.T) {
	f := New(testConfig(4))
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	st := f.Status()
	if !st.LedgerBalanced {
		t.Errorf("ledger unbalanced: fires %d != captured %d + dropped %d + lost %d",
			st.LedgerFires, st.LedgerCaptured, st.LedgerDropped, st.LedgerLost)
	}
	if st.LedgerFires == 0 {
		t.Error("no timer fires folded; fleet did not monitor anything")
	}
	if st.NodeRounds != uint64(f.cfg.Nodes)*f.cfg.Rounds {
		t.Errorf("NodeRounds = %d, want %d", st.NodeRounds, uint64(f.cfg.Nodes)*f.cfg.Rounds)
	}
	if st.Watermark != f.cfg.Rounds {
		t.Errorf("watermark = %d, want %d (all rounds folded)", st.Watermark, f.cfg.Rounds)
	}
	// Faults were actually injected (FaultEvery: 3 over 8 nodes x 2 rounds).
	if st.FaultedRounds == 0 && st.DegradedRounds == 0 {
		t.Log("note: no node round degraded this seed; fault knobs may be too gentle")
	}
}

// TestFleetMaxLeadBoundsShards: with MaxLead 1 a shard can never be more
// than one round past the watermark, whatever the delivery interleaving.
func TestFleetMaxLeadBoundsShards(t *testing.T) {
	cfg := testConfig(4)
	cfg.Rounds = 4
	cfg.MaxLead = 1
	f := New(cfg)
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	st := f.Status()
	if st.Watermark != cfg.Rounds {
		t.Errorf("watermark = %d, want %d", st.Watermark, cfg.Rounds)
	}
	for i, lag := range st.ShardLag {
		if lag > 0 {
			t.Errorf("shard %d still ahead of the watermark after drain: lag %d", i, lag)
		}
	}
}

// TestFleetStopDrains: daemon mode (Rounds 0) runs until Stop, then Wait
// returns with every delivered round folded and no error.
func TestFleetStopDrains(t *testing.T) {
	cfg := testConfig(2)
	cfg.Rounds = 0
	cfg.Nodes = 4
	f := New(cfg)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	// Let it make progress, then drain.
	for f.Status().Watermark < 1 {
		runtime.Gosched()
	}
	f.Stop()
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	st := f.Status()
	if !st.Draining {
		t.Error("status does not report draining after Stop")
	}
	if st.Watermark == 0 {
		t.Error("nothing folded before drain")
	}
	if st.LedgerFires > 0 && !st.LedgerBalanced {
		t.Error("drained fleet left an unbalanced ledger")
	}
}

// TestFleetStartTwice: a second Start is refused, and Run without Rounds
// is refused.
func TestFleetLifecycleErrors(t *testing.T) {
	f := New(testConfig(2))
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err == nil {
		t.Error("second Start accepted")
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := New(Config{Rounds: 0}).Run(); err == nil {
		t.Error("Run without Rounds accepted")
	}
}

// TestFleetVirtualClockAdvances: the fleet trace stamps rounds on a
// monotonically advancing virtual clock (one span per round), so the
// rolling window reads as a timeline, not a pile-up at t=0.
func TestFleetVirtualClockAdvances(t *testing.T) {
	f := New(testConfig(2))
	if err := f.Run(); err != nil {
		t.Fatal(err)
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var roundTimes []ktime.Time
	for _, e := range snap.Events {
		if e.Kind == telemetry.KindFleetRound {
			roundTimes = append(roundTimes, e.Time)
		}
	}
	if len(roundTimes) != int(f.cfg.Rounds) {
		t.Fatalf("trace has %d fleet-round events, want %d", len(roundTimes), f.cfg.Rounds)
	}
	if !(roundTimes[0] > 0 && roundTimes[1] > roundTimes[0]) {
		t.Errorf("fleet clock not advancing: round times %v", roundTimes)
	}
}
