package fleet

import (
	"fmt"

	"kleb/internal/fault"
	"kleb/internal/isa"
	"kleb/internal/kernel"
	klebtool "kleb/internal/kleb"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/session"
	"kleb/internal/telemetry"
	"kleb/internal/workload"
)

// fleetEvents is the per-node monitoring request: the paper's core trio.
var fleetEvents = []isa.Event{isa.EvInstructions, isa.EvCycles, isa.EvLLCMisses}

// nodeSeed derives node (i, round)'s run seed from the fleet seed alone —
// never from shard count — which is what makes the aggregate byte-identical
// at any Shards setting.
func nodeSeed(base uint64, node int, round uint64) uint64 {
	return session.DeriveSeed(session.DeriveSeed(base, node), int(round))
}

// runNode executes one node's monitoring round and returns its result.
// Infrastructure failures (a spec that cannot run) stop the fleet via
// f.fail; node-level faults merely degrade the result.
func (f *Fleet) runNode(node int, round uint64) nodeResult {
	seed := nodeSeed(f.cfg.Seed, node, round)
	if f.cfg.ClusterEvery > 0 && node%f.cfg.ClusterEvery == 0 {
		return f.runClusterNode(node, seed)
	}
	return f.runMonitoredNode(node, round, seed)
}

// runMonitoredNode boots one machine, runs a seeded workload under the
// full K-LEB stack and collects the run's telemetry plus its ledger.
func (f *Fleet) runMonitoredNode(node int, round uint64, seed uint64) nodeResult {
	script := nodeWorkload(seed, f.cfg.TargetInstr)
	var plan *fault.Plan
	if f.cfg.FaultEvery > 0 && (node+int(round))%f.cfg.FaultEvery == 0 {
		plan = fault.FromSeed(seed)
	}
	sink := telemetry.MetricsOnly()
	res, err := session.Run(session.Spec{
		Profile:   f.cfg.Profile,
		Seed:      seed,
		NewTarget: func() kernel.Program { return script.Program() },
		NewTool:   func() (monitor.Tool, error) { return klebtool.New(), nil },
		Config:    monitor.Config{Events: fleetEvents, Period: f.cfg.Period},
		Limit:     f.cfg.Limit,
		Telemetry: sink,
		Faults:    plan,
	})
	if err != nil {
		f.fail(fmt.Errorf("fleet: node %d round %d: %w", node, round, err))
		return nodeResult{node: node, sink: sink, degraded: true, fault: err.Error()}
	}
	r := res.Result
	return nodeResult{
		node:     node,
		sink:     sink,
		elapsed:  res.Elapsed,
		fires:    r.Fires,
		captured: r.Captured,
		dropped:  r.Dropped,
		lost:     r.LostToFault,
		degraded: r.Degraded,
		fault:    r.Fault,
	}
}

// runClusterNode co-simulates a 2-core shared-LLC cluster with one
// telemetry sink per core and folds the cores into the node's sink — the
// commutative per-core merge the cluster tests pin. Cluster nodes carry no
// K-LEB ledger (no module attached); their contribution is kernel- and
// cache-level telemetry.
func (f *Fleet) runClusterNode(node int, seed uint64) nodeResult {
	c := machine.BootCluster(f.cfg.Profile, seed, 2)
	sinks := []*telemetry.Sink{telemetry.MetricsOnly(), telemetry.MetricsOnly()}
	c.SetTelemetry(sinks)
	for core, m := range c.Cores() {
		s := nodeWorkload(session.DeriveSeed(seed, core), f.cfg.TargetInstr)
		m.Kernel().Spawn(fmt.Sprintf("n%d-c%d", node, core), s.Program())
	}
	out := nodeResult{node: node, sink: telemetry.MetricsOnly()}
	if err := c.Run(0, f.cfg.Limit); err != nil {
		out.degraded, out.fault = true, err.Error()
	}
	var elapsed ktime.Duration
	for core, s := range sinks {
		if err := out.sink.Merge(s); err != nil {
			out.degraded, out.fault = true, err.Error()
		}
		now := ktime.Duration(c.Cores()[core].Kernel().Now())
		if now > elapsed {
			elapsed = now
		}
	}
	out.elapsed = elapsed
	return out
}

// nodeWorkload derives a node run's workload from its seed: the same
// instruction budget everywhere, with seed-decorrelated memory footprints
// and access randomness so the fleet exercises a spread of cache
// behaviours.
func nodeWorkload(seed uint64, instr uint64) workload.Script {
	fp := uint64(1) << (16 + seed%6) // 64KiB .. 2MiB
	return workload.Synthetic{
		Name:       "fleet-node",
		TotalInstr: instr,
		BlockInstr: 100_000,
		Footprint:  fp,
		RandomFrac: 0.1 * float64(seed%5),
	}.Script()
}
