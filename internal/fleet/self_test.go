package fleet

import (
	"testing"
	"time"
)

// TestSinceNsClampsBackwardSteps pins the clock-step regression: a start
// instant that reads *later* than the end (a backward wall step on
// monotonic-stripped instants, or a caller bug) must clamp to 0 instead of
// wrapping to a huge uint64.
func TestSinceNsClampsBackwardSteps(t *testing.T) {
	// Wall-only instants (no monotonic reading) going backwards: the shape
	// the old uint64(wallNs()-startNs) arithmetic wrapped on.
	later := time.Date(2026, 8, 7, 12, 0, 1, 0, time.UTC)
	earlier := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	if got := sinceNs(later, earlier); got != 0 {
		t.Errorf("sinceNs(later, earlier) = %d, want 0", got)
	}
	if got := sinceNs(earlier, later); got != uint64(time.Second) {
		t.Errorf("sinceNs(earlier, later) = %d, want 1s", got)
	}
	// Monotonic instants from the sanctioned seam never go backwards.
	a := wallNs()
	b := wallNs()
	if got := sinceNs(b, a); got != 0 && got > uint64(time.Second) {
		t.Errorf("monotonic reversed pair produced %d ns", got)
	}
}

// TestSelfMetricsSurviveBackwardClockStep feeds merge/scrape timings whose
// start instant post-dates the observation (the effect of a backward wall
// step mid-measurement) and requires the p99s to stay sane — the old code
// wrapped one delta to ~1.8e19 ns and permanently poisoned MergeP99Ns and
// ScrapeP99Ns.
func TestSelfMetricsSurviveBackwardClockStep(t *testing.T) {
	m := newSelfMetrics(1)

	// A healthy fold first, so the histogram has a real shape to poison.
	m.mergeDone(wallNs(), nil)
	// Now a fold whose start is an hour in the future: monotonic
	// subtraction yields a negative span; the clamp records it as 0.
	m.mergeDone(wallNs().Add(time.Hour), nil)
	// Same through the scrape path.
	m.scrapeDone(wallNs(), "/metrics")
	m.scrapeDone(wallNs().Add(time.Hour), "/metrics")

	var st Status
	m.fill(&st)
	// Anything under a minute is "sane"; the wrapped value was ~585 years.
	const sane = uint64(time.Minute)
	if st.MergeP99Ns >= sane {
		t.Errorf("MergeP99Ns = %d, poisoned by a backward clock step", st.MergeP99Ns)
	}
	if st.ScrapeP99Ns >= sane {
		t.Errorf("ScrapeP99Ns = %d, poisoned by a backward clock step", st.ScrapeP99Ns)
	}
	if st.UptimeSeconds < 0 {
		t.Errorf("UptimeSeconds = %v, negative", st.UptimeSeconds)
	}
	if st.Scrapes != 2 {
		t.Errorf("Scrapes = %d, want 2", st.Scrapes)
	}
}
