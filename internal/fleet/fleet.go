// Package fleet is the aggregation core of klebd: it runs K-LEB across a
// (simulated) fleet of thousands of machines, sharded over long-lived
// workers, and folds every node's telemetry into one live, bounded-memory
// aggregate that HTTP handlers serve mid-run.
//
// The layer preserves the repo's determinism contract under concurrency.
// Shards free-run up to MaxLead rounds ahead of a fold watermark; a round
// is folded only once every shard has delivered it, and folding walks the
// round's nodes in ascending node order. Node seeds derive from (Seed,
// node, round) alone — never from shard count — so the fleet-level
// registry, exposition and trace window are byte-identical at any Shards
// setting (TestFleetAggregateDeterminism pins 1/2/8). Everything
// nondeterministic (wall-clock merge latency, scrape durations, shard lag)
// lives in a separate self-telemetry group rendered as its own `klebd_*`
// exposition section.
//
// Memory stays bounded no matter how long the daemon runs: machines are
// booted per node-round and discarded (peak live machines == Shards), the
// trace ring holds at most Retention events, and the watermark backpressure
// caps buffered undelivered rounds at Shards x MaxLead x nodes-per-shard
// results.
package fleet

import (
	"fmt"
	"sync"

	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/session"
	"kleb/internal/telemetry"
)

// Config sizes and seeds a fleet.
type Config struct {
	// Nodes is the number of simulated machines (default 16).
	Nodes int
	// Shards is the number of long-lived shard workers; node i is owned by
	// shard i mod Shards (session.Stripe). Default 4. The fleet aggregate
	// is byte-identical at any value.
	Shards int
	// Seed drives every node run; node (i, round) runs with
	// DeriveSeed(DeriveSeed(Seed, i), round), independent of sharding.
	Seed uint64
	// Rounds bounds the run: each node executes this many monitoring
	// rounds, then the fleet drains. 0 = run until Stop (daemon mode).
	Rounds uint64
	// Period is each node's K-LEB sampling period (default 1ms).
	Period ktime.Duration
	// Limit caps each node run's virtual time (default 50ms).
	Limit ktime.Duration
	// TargetInstr is each node's per-round workload size in instructions
	// (default 2M; nodes vary memory behaviour by seed).
	TargetInstr uint64
	// Retention is the aggregate trace ring capacity in events (default
	// 1<<14). The /trace endpoint serves this rolling window.
	Retention int
	// MaxLead is how many rounds a shard may run ahead of the fold
	// watermark before blocking (default 4). Bounds pending-result memory.
	MaxLead int
	// FaultEvery, when non-zero, injects a seeded fault plan into every
	// node run where (node + round) % FaultEvery == 0 — the fleet's
	// background failure rate. 0 disables injection.
	FaultEvery int
	// ClusterEvery, when non-zero, makes every ClusterEvery-th node a
	// 2-core shared-LLC cluster (machine.Cluster) instead of a monitored
	// single machine, exercising per-core telemetry merge in the fleet
	// path. 0 disables.
	ClusterEvery int
	// Profile is the machine profile to boot (zero value selects Nehalem
	// with deterministic-noise defaults left intact).
	Profile machine.Profile
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 16
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Shards > c.Nodes {
		c.Shards = c.Nodes
	}
	if c.Period == 0 {
		c.Period = ktime.Millisecond
	}
	if c.Limit == 0 {
		c.Limit = 50 * ktime.Millisecond
	}
	if c.TargetInstr == 0 {
		c.TargetInstr = 2_000_000
	}
	if c.Retention <= 0 {
		c.Retention = 1 << 14
	}
	if c.MaxLead <= 0 {
		c.MaxLead = 4
	}
	if c.Profile.Name == "" {
		c.Profile = machine.Nehalem()
	}
	return c
}

// Fleet is one running (or runnable) fleet instance.
type Fleet struct {
	cfg  Config
	agg  *aggregator
	self *selfMetrics

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu      sync.Mutex
	started bool
	runErr  error // guarded by mu
}

// New builds a fleet from cfg (zero fields defaulted, see Config).
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	return &Fleet{
		cfg:  cfg,
		agg:  newAggregator(cfg.Shards, cfg.Retention, cfg.MaxLead),
		self: newSelfMetrics(cfg.Shards),
		stop: make(chan struct{}),
	}
}

// Config returns the resolved configuration.
func (f *Fleet) Config() Config { return f.cfg }

// Start launches the shard workers. It returns immediately; use Wait for
// completion (bounded runs) or Stop + Wait for daemon-mode drain.
func (f *Fleet) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return fmt.Errorf("fleet: already started")
	}
	f.started = true
	for s := 0; s < f.cfg.Shards; s++ {
		nodes := session.Stripe(f.cfg.Nodes, f.cfg.Shards, s)
		f.wg.Add(1)
		go f.runShard(s, nodes)
	}
	return nil
}

// Stop asks every shard to finish its current round and exit. Delivered
// complete rounds keep folding during the drain; partially delivered
// trailing rounds are discarded (they were never part of the aggregate).
// Safe to call multiple times and before Start.
func (f *Fleet) Stop() {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.agg.closeFleet()
	})
}

// Wait blocks until every shard has exited and all complete rounds are
// folded, then returns the first node-run infrastructure error (nil in any
// healthy run — node-level faults degrade, they do not error).
func (f *Fleet) Wait() error {
	f.wg.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runErr
}

// Run is Start + Wait for bounded (Rounds > 0) runs.
func (f *Fleet) Run() error {
	if f.cfg.Rounds == 0 {
		return fmt.Errorf("fleet: Run needs Rounds > 0; use Start/Stop/Wait for daemon mode")
	}
	if err := f.Start(); err != nil {
		return err
	}
	return f.Wait()
}

// fail records the first infrastructure error and stops the fleet.
func (f *Fleet) fail(err error) {
	f.mu.Lock()
	if f.runErr == nil {
		f.runErr = err
	}
	f.mu.Unlock()
	f.Stop()
}

// stopping reports whether Stop has been called.
func (f *Fleet) stopping() bool {
	select {
	case <-f.stop:
		return true
	default:
		return false
	}
}

// runShard is one long-lived shard worker: it owns the nodes of its
// stripe and runs them in ascending order every round, delivering each
// completed round to the aggregator.
func (f *Fleet) runShard(shard int, nodes []int) {
	defer f.wg.Done()
	for round := uint64(0); ; round++ {
		if f.cfg.Rounds > 0 && round >= f.cfg.Rounds {
			return
		}
		// Backpressure: never run more than MaxLead rounds ahead of the
		// fold watermark. Returns false once the fleet is stopping.
		if !f.agg.waitTurn(round) {
			return
		}
		if f.stopping() {
			return
		}
		results := make([]nodeResult, 0, len(nodes))
		for _, node := range nodes {
			results = append(results, f.runNode(node, round))
		}
		f.agg.deliver(shard, round, results, f.self)
	}
}

// Snapshot returns a consistent copy of the deterministic fleet aggregate.
func (f *Fleet) Snapshot() (*telemetry.Snapshot, error) {
	return f.agg.snapshot()
}

// Status returns the nondeterministic operational view (/fleetz).
func (f *Fleet) Status() Status {
	st := f.agg.status()
	st.Nodes = f.cfg.Nodes
	st.Rounds = f.cfg.Rounds
	st.Draining = f.stopping()
	f.self.fill(&st)
	return st
}

// Status is the operational state served by /fleetz.
type Status struct {
	Nodes    int    `json:"nodes"`
	Shards   int    `json:"shards"`
	Rounds   uint64 `json:"rounds,omitempty"`
	Draining bool   `json:"draining"`

	// Watermark is the number of fully folded rounds; ShardRounds the
	// rounds each shard has delivered; ShardLag each shard's lead over the
	// watermark (delivered - folded).
	Watermark   uint64   `json:"watermark"`
	ShardRounds []uint64 `json:"shard_rounds"`
	ShardLag    []uint64 `json:"shard_lag"`

	// Fleet accounting folded so far (deterministic).
	NodeRounds     uint64 `json:"node_rounds"`
	DegradedRounds uint64 `json:"degraded_rounds"`
	FaultedRounds  uint64 `json:"faulted_rounds"`
	LedgerFires    uint64 `json:"ledger_fires"`
	LedgerCaptured uint64 `json:"ledger_captured"`
	LedgerDropped  uint64 `json:"ledger_dropped"`
	LedgerLost     uint64 `json:"ledger_lost"`
	LedgerBalanced bool   `json:"ledger_balanced"`
	TraceEvents    int    `json:"trace_events"`
	TraceEvicted   uint64 `json:"trace_evicted"`

	// Self-telemetry (wall-clock, nondeterministic).
	UptimeSeconds   float64 `json:"uptime_seconds"`
	RunsIngested    uint64  `json:"runs_ingested"`
	SamplesIngested uint64  `json:"samples_ingested"`
	SamplesPerSec   float64 `json:"samples_per_sec"`
	MergeP50Ns      uint64  `json:"merge_p50_ns"`
	MergeP99Ns      uint64  `json:"merge_p99_ns"`
	Scrapes         uint64  `json:"scrapes"`
	ScrapeP99Ns     uint64  `json:"scrape_p99_ns"`
}
