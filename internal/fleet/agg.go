package fleet

import (
	"sync"

	"kleb/internal/ktime"
	"kleb/internal/telemetry"
)

// nodeResult is one node's completed monitoring round, as handed from a
// shard to the aggregator. Everything in it is a pure function of (seed,
// node, round), so folding is deterministic however shards interleave.
//
//klebvet:ledger fires = captured + dropped + lost
type nodeResult struct {
	node    int
	sink    *telemetry.Sink // the run's private metrics-only sink
	elapsed ktime.Duration  // the run's virtual duration

	// Period-conservation ledger (monitor.Result).
	fires, captured, dropped, lost uint64

	degraded bool
	fault    string
}

// aggregator folds shard-delivered rounds into one SharedSink behind a
// fold watermark: round r folds only once every shard has delivered it,
// and always in ascending node order, so the aggregate is independent of
// shard count and delivery interleaving.
type aggregator struct {
	shared *telemetry.SharedSink

	mu   sync.Mutex
	cond *sync.Cond
	// pending holds delivered-but-not-folded rounds. guarded by mu
	pending map[uint64][]nodeResult
	// deliveredShards counts shards that delivered each pending round. guarded by mu
	deliveredShards map[uint64]int
	// shardRounds is how many rounds each shard has delivered. guarded by mu
	shardRounds []uint64
	// watermark is the number of fully folded rounds. guarded by mu
	watermark uint64
	// clock is the fleet's virtual time: each folded round advances it by
	// the round's longest node run. guarded by mu
	clock ktime.Time
	// closed marks the fleet stopping; it releases waitTurn blockers. guarded by mu
	closed bool

	// Deterministic fold accounting for /fleetz. guarded by mu
	degradedTotal uint64
	faultedTotal  uint64
	nodeRounds    uint64

	shards  int
	maxLead int
}

func newAggregator(shards, retention, maxLead int) *aggregator {
	a := &aggregator{
		shared:          telemetry.NewShared(retention),
		pending:         make(map[uint64][]nodeResult),
		deliveredShards: make(map[uint64]int),
		shardRounds:     make([]uint64, shards),
		shards:          shards,
		maxLead:         maxLead,
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// waitTurn blocks the caller until round is within MaxLead of the fold
// watermark, bounding how much undelivered work can pile up. It returns
// false once the fleet is stopping.
func (a *aggregator) waitTurn(round uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for !a.closed && round >= a.watermark+uint64(a.maxLead) {
		a.cond.Wait()
	}
	return !a.closed
}

// closeFleet releases every waitTurn blocker.
func (a *aggregator) closeFleet() {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	a.cond.Broadcast()
}

// deliver hands one shard's completed round to the aggregator and folds
// every round that just became complete. self (non-nil in the daemon)
// observes wall-clock merge latency per fold.
//
//klebvet:artifact
func (a *aggregator) deliver(shard int, round uint64, results []nodeResult, self *selfMetrics) {
	a.mu.Lock()
	a.pending[round] = append(a.pending[round], results...)
	a.deliveredShards[round]++
	a.shardRounds[shard] = round + 1
	for a.deliveredShards[a.watermark] == a.shards {
		r := a.watermark
		start := self.mergeStart()
		a.foldLocked(r, a.pending[r])
		self.mergeDone(start, a.pending[r])
		delete(a.pending, r)
		delete(a.deliveredShards, r)
		a.watermark++
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// foldLocked merges one complete round in ascending node order and stamps the
// fleet-level trace events on the fleet's virtual clock: each node event
// at roundStart + that node's elapsed time, the round event at roundStart
// + the round's span (its longest node run). Called with mu held.
//
//klebvet:artifact
func (a *aggregator) foldLocked(round uint64, results []nodeResult) {
	// Shards deliver their stripes in ascending node order; interleave them
	// into global node order without assuming anything about slice order.
	byNode := make(map[int]nodeResult, len(results))
	min, max := -1, -1
	var span ktime.Duration
	for _, r := range results {
		byNode[r.node] = r
		if min < 0 || r.node < min {
			min = r.node
		}
		if r.node > max {
			max = r.node
		}
		if r.elapsed > span {
			span = r.elapsed
		}
	}
	start := a.clock
	degraded := 0
	for node := min; node <= max; node++ {
		r, ok := byNode[node]
		if !ok {
			continue
		}
		if err := a.shared.Ingest(r.sink); err != nil {
			// A label-dimension conflict cannot arise from the emit API; if
			// it ever does, surface it as a degraded fold rather than
			// dropping the round.
			r.degraded = true
			if r.fault == "" {
				r.fault = err.Error()
			}
		}
		if r.degraded {
			degraded++
			a.degradedTotal++
		}
		if r.fault != "" {
			a.faultedTotal++
		}
		a.nodeRounds++
		a.shared.Emit(func(s *telemetry.Sink) {
			s.FleetNode(start.Add(r.elapsed), int32(r.node),
				r.fires, r.captured, r.dropped, r.lost, r.degraded, r.fault)
		})
	}
	a.shared.Emit(func(s *telemetry.Sink) {
		s.FleetRound(start.Add(span), round, len(results), degraded)
	})
	a.clock = start.Add(span)
}

// snapshot returns a consistent copy of the fleet aggregate.
func (a *aggregator) snapshot() (*telemetry.Snapshot, error) {
	return a.shared.Snapshot()
}

// status reports the aggregator's operational counters.
func (a *aggregator) status() Status {
	a.mu.Lock()
	st := Status{
		Shards:         a.shards,
		Watermark:      a.watermark,
		ShardRounds:    append([]uint64(nil), a.shardRounds...),
		ShardLag:       make([]uint64, a.shards),
		NodeRounds:     a.nodeRounds,
		DegradedRounds: a.degradedTotal,
		FaultedRounds:  a.faultedTotal,
	}
	for i, r := range st.ShardRounds {
		if r > st.Watermark {
			st.ShardLag[i] = r - st.Watermark
		}
	}
	a.mu.Unlock()
	snap, err := a.shared.Snapshot()
	if err != nil {
		return st
	}
	reg := snap.Registry
	st.LedgerFires = reg.LedgerFires.Value()
	st.LedgerCaptured = reg.LedgerCaptured.Value()
	st.LedgerDropped = reg.LedgerDropped.Value()
	st.LedgerLost = reg.LedgerLost.Value()
	st.LedgerBalanced = st.LedgerFires == st.LedgerCaptured+st.LedgerDropped+st.LedgerLost
	st.TraceEvents = len(snap.Events)
	st.TraceEvicted = snap.Truncated
	return st
}
