package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"kleb/internal/telemetry"
)

// get fetches one endpoint and returns status + body.
func get(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// counterValue extracts one unlabelled sample's integer value from an
// exposition body ("" if absent).
func counterValue(body, name string) string {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest
		}
	}
	return ""
}

// TestFleetLiveScrapeMidRun is the acceptance path: a daemon-mode fleet
// serves correct, lint-clean /metrics mid-run, the counters grow between
// scrapes, the daemon reports its own scrape overhead, /trace is valid
// Chrome trace JSON, and SIGTERM-style drain flips /healthz before Wait
// returns a still-servable aggregate.
func TestFleetLiveScrapeMidRun(t *testing.T) {
	cfg := testConfig(2)
	cfg.Rounds = 0 // daemon mode
	f := New(cfg)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	if code, body := get(t, srv.URL, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	// Wait for the first fold, then scrape mid-run.
	for f.Status().Watermark < 1 {
		runtime.Gosched()
	}
	code, body1 := get(t, srv.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if err := telemetry.LintExposition(strings.NewReader(body1)); err != nil {
		t.Fatalf("mid-run /metrics fails lint: %v", err)
	}
	if counterValue(body1, "kleb_fleet_rounds_total") == "" {
		t.Error("mid-run scrape missing fleet section")
	}

	// A later scrape must see monotonically grown counters and its own
	// overhead reported in the self section.
	start := f.Status().Watermark
	for f.Status().Watermark <= start {
		runtime.Gosched()
	}
	_, body2 := get(t, srv.URL, "/metrics")
	v1, v2 := counterValue(body1, "kleb_fleet_node_rounds_total"), counterValue(body2, "kleb_fleet_node_rounds_total")
	if v1 == "" || v2 == "" || v1 == v2 {
		t.Errorf("node rounds did not grow between scrapes: %q -> %q", v1, v2)
	}
	if !strings.Contains(body2, `klebd_scrapes_total{endpoint="/metrics"}`) {
		t.Error("self section does not report scrape counts")
	}
	if !strings.Contains(body2, "klebd_scrape_duration_ns_count") {
		t.Error("self section does not report scrape durations")
	}

	code, traceBody := get(t, srv.URL, "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace = %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(traceBody), &doc); err != nil {
		t.Fatalf("/trace invalid JSON: %v", err)
	}
	var sawNode bool
	for _, e := range doc.TraceEvents {
		if strings.HasPrefix(e.Name, "fleet-node") {
			sawNode = true
			break
		}
	}
	if !sawNode {
		t.Error("/trace window has no fleet-node events")
	}

	code, fz := get(t, srv.URL, "/fleetz")
	if code != http.StatusOK {
		t.Fatalf("/fleetz = %d", code)
	}
	var st Status
	if err := json.Unmarshal([]byte(fz), &st); err != nil {
		t.Fatalf("/fleetz invalid JSON: %v\n%s", err, fz)
	}
	if st.Watermark == 0 || len(st.ShardLag) != cfg.Shards {
		t.Errorf("/fleetz inconsistent: %+v", st)
	}
	if st.LedgerFires > 0 && !st.LedgerBalanced {
		t.Error("/fleetz reports unbalanced ledger")
	}

	// Drain: healthz flips, Wait returns, the aggregate stays servable.
	f.Stop()
	if code, _ := get(t, srv.URL, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz = %d, want 503", code)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	code, final := get(t, srv.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("post-drain /metrics = %d", code)
	}
	if err := telemetry.LintExposition(strings.NewReader(final)); err != nil {
		t.Errorf("post-drain /metrics fails lint: %v", err)
	}
}
