package fleet

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestFleetSustain10kBoundedMemory is the scale acceptance test: a
// 10,000-machine fleet completes a full monitoring round with bounded
// memory. Machines are transient (booted per node-round, peak live ==
// shard count) and retention is ring-bounded, so heap stays within a fixed
// envelope however many nodes stream through — unbounded growth would need
// ~2.5 MB x 10k = ~25 GB. Under the race detector the node count scales
// down tenfold; the memory bound is what matters, not the count.
func TestFleetSustain10kBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node sustain run skipped in -short mode")
	}
	nodes := 10_000
	if raceEnabled {
		nodes = 1_000
	}
	cfg := Config{
		Nodes:        nodes,
		Shards:       8,
		Seed:         7,
		Rounds:       1,
		TargetInstr:  150_000,
		Retention:    1 << 12,
		FaultEvery:   97,
		ClusterEvery: 512,
	}
	f := New(cfg)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}

	// Sample the heap while the fleet streams through.
	var peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			select {
			case <-f.stop:
				return
			default:
				// ReadMemStats stops the world; sample sparsely so the
				// sampler does not distort the run it is bounding. Host
				// time, not ktime: this measures the real process heap.
				time.Sleep(5 * time.Millisecond) //klebvet:allow walltime -- host-side heap sampling cadence
			}
		}
	}()
	err := f.Wait()
	f.Stop() // release the sampler
	<-done
	if err != nil {
		t.Fatal(err)
	}

	st := f.Status()
	if st.NodeRounds != uint64(nodes) {
		t.Errorf("folded %d node rounds, want %d", st.NodeRounds, nodes)
	}
	if !st.LedgerBalanced {
		t.Errorf("fleet ledger unbalanced at scale: fires %d != %d + %d + %d",
			st.LedgerFires, st.LedgerCaptured, st.LedgerDropped, st.LedgerLost)
	}
	if st.TraceEvents > cfg.Retention {
		t.Errorf("trace window %d exceeds retention %d", st.TraceEvents, cfg.Retention)
	}
	if nodes > cfg.Retention && st.TraceEvicted == 0 {
		t.Error("ring never evicted despite nodes >> retention; eviction accounting broken")
	}
	// The bound: transient machines + ring retention keep peak heap in a
	// fixed envelope. 1 GiB is ~25x headroom over observed (~40 MB) while
	// still catching accumulate-everything regressions by an order of
	// magnitude.
	const heapBound = 1 << 30
	if p := peak.Load(); p > heapBound {
		t.Errorf("peak heap %d MB exceeds the %d MB bound: fleet memory is not bounded",
			p>>20, heapBound>>20)
	}
	t.Logf("sustained %d nodes: peak heap %d MB, %d trace events retained, %d evicted",
		nodes, peak.Load()>>20, st.TraceEvents, st.TraceEvicted)
}
