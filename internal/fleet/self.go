package fleet

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"kleb/internal/telemetry"
)

// selfMetrics is klebd's monitoring-the-monitor group: wall-clock costs of
// the daemon's own work (merge latency, scrape duration, ingest rates).
// It is deliberately separate from the deterministic fleet aggregate —
// everything here depends on the host — and renders as its own `klebd_*`
// exposition section after the `kleb_*` fleet section.
//
// All wall-clock reads live in this file, behind mergeStart/scrapeStart;
// the HTTP handlers and the deterministic aggregation path never touch
// time directly (klebvet's walltime and httpguard passes enforce this).
type selfMetrics struct {
	start  time.Time // process start (immutable after newSelfMetrics)
	shards int

	mu sync.Mutex
	// runsIngested / samplesIngested count folded node runs and their
	// captured samples. guarded by mu
	runsIngested    uint64
	samplesIngested uint64
	// mergeNs observes per-fold wall latency. guarded by mu
	mergeNs telemetry.Histogram
	// scrapeNs observes per-scrape wall latency, by endpoint counters
	// below. guarded by mu
	scrapeNs      telemetry.Histogram
	scrapes       uint64
	traceScrapes  uint64
	statusScrapes uint64
}

func newSelfMetrics(shards int) *selfMetrics {
	return &selfMetrics{start: wallNs(), shards: shards}
}

// wallNs reads the host clock. The single sanctioned wall-clock seam in
// the daemon: self-telemetry is *about* host time, so virtual time cannot
// stand in for it. It returns the full time.Time — which carries Go's
// monotonic reading alongside the wall reading — so every duration below
// subtracts monotonically and a wall-clock step (NTP slew, manual reset)
// cannot produce a negative span. The name predates the time.Time return:
// it stays because klebvet's detertaint audit keys the one sanctioned
// wall-clock source as fleet.wallNs.
func wallNs() time.Time {
	return time.Now() //klebvet:allow walltime -- self-telemetry measures real daemon overhead
}

// sinceNs returns the nanoseconds elapsed from start to end, clamped to 0.
// When both instants carry monotonic readings (everything wallNs returns)
// the subtraction is monotonic already; the clamp additionally covers
// wall-only instants, so a backward step can never wrap the uint64 delta
// and permanently poison the latency histograms' p99.
func sinceNs(start, end time.Time) uint64 {
	d := end.Sub(start)
	if d < 0 {
		return 0
	}
	return uint64(d)
}

// mergeStart begins timing one fold.
func (m *selfMetrics) mergeStart() time.Time { return wallNs() }

// mergeDone records one fold's wall latency and the ingested volume.
func (m *selfMetrics) mergeDone(start time.Time, results []nodeResult) {
	d := sinceNs(start, wallNs())
	m.mu.Lock()
	m.mergeNs.Observe(d)
	for _, r := range results {
		m.runsIngested++
		m.samplesIngested += r.captured
	}
	m.mu.Unlock()
}

// scrapeStart begins timing one scrape.
func (m *selfMetrics) scrapeStart() time.Time { return wallNs() }

// scrapeDone records one scrape's wall latency under its endpoint.
func (m *selfMetrics) scrapeDone(start time.Time, endpoint string) {
	d := sinceNs(start, wallNs())
	m.mu.Lock()
	m.scrapeNs.Observe(d)
	switch endpoint {
	case "/metrics":
		m.scrapes++
	case "/trace":
		m.traceScrapes++
	default:
		m.statusScrapes++
	}
	m.mu.Unlock()
}

// fill copies the self-telemetry view into a Status.
func (m *selfMetrics) fill(st *Status) {
	up := float64(sinceNs(m.start, wallNs())) / 1e9
	m.mu.Lock()
	st.UptimeSeconds = up
	st.RunsIngested = m.runsIngested
	st.SamplesIngested = m.samplesIngested
	if up > 0 {
		st.SamplesPerSec = float64(m.samplesIngested) / up
	}
	st.MergeP50Ns = m.mergeNs.Quantile(0.5)
	st.MergeP99Ns = m.mergeNs.Quantile(0.99)
	st.Scrapes = m.scrapes
	st.ScrapeP99Ns = m.scrapeNs.Quantile(0.99)
	m.mu.Unlock()
}

// writePrometheus renders the self section with the conformance-enforcing
// encoder, including per-shard lag as a gauge vec. lag and evictions come
// from the caller (aggregator state) so this method holds only its own
// lock.
func (m *selfMetrics) writePrometheus(w io.Writer, lag []uint64, evicted uint64) error {
	e := telemetry.NewPromEncoder(w)
	m.mu.Lock()
	runs, samples := m.runsIngested, m.samplesIngested
	mergeNs := m.mergeNs
	scrapeNs := m.scrapeNs
	scrapes, traces, statuses := m.scrapes, m.traceScrapes, m.statusScrapes
	m.mu.Unlock()

	e.Counter("klebd_runs_ingested_total", "Node runs folded into the fleet aggregate.", runs)
	e.Counter("klebd_samples_ingested_total", "K-LEB samples folded into the fleet aggregate.", samples)
	e.Histogram("klebd_merge_latency_ns", "Wall-clock latency of one round fold, ns.", &mergeNs)
	e.Histogram("klebd_scrape_duration_ns", "Wall-clock duration of one HTTP scrape, ns.", &scrapeNs)
	e.CounterVec("klebd_scrapes_total", "HTTP scrapes served, by endpoint.", "endpoint",
		[]string{"/fleetz", "/metrics", "/trace"}, []uint64{statuses, scrapes, traces})
	e.Counter("klebd_trace_evictions_total", "Events evicted from the rolling trace retention ring.", evicted)
	labels := make([]string, len(lag))
	for i := range lag {
		labels[i] = strconv.Itoa(i)
	}
	sort.Strings(labels) // label order must be sorted for determinism of shape
	values := make([]uint64, len(labels))
	for i, l := range labels {
		idx, _ := strconv.Atoi(l)
		values[i] = lag[idx]
	}
	e.GaugeVec("klebd_shard_lag_rounds", "Rounds each shard has delivered beyond the fold watermark.", "shard", labels, values)
	return e.Err()
}
