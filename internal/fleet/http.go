package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Handler returns klebd's HTTP surface:
//
//	/metrics  Prometheus text exposition: the deterministic kleb_* fleet
//	          section followed by the klebd_* self-telemetry section.
//	/trace    the rolling Chrome-trace window (ring-buffered retention).
//	/healthz  liveness ("ok", or "draining" with 503 after SIGTERM).
//	/fleetz   operational JSON: per-shard lag, degraded/faulted counts,
//	          ledger totals, self-telemetry summary.
//
// Handlers operate exclusively on point-in-time snapshots (Fleet.Snapshot,
// Fleet.Status) — never on live sinks — so a scrape can never block or
// race aggregation; klebvet's httpguard pass enforces exactly that.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", f.handleMetrics)
	mux.HandleFunc("/trace", f.handleTrace)
	mux.HandleFunc("/healthz", f.handleHealthz)
	mux.HandleFunc("/fleetz", f.handleFleetz)
	return mux
}

// handleMetrics serves the Prometheus exposition.
func (f *Fleet) handleMetrics(w http.ResponseWriter, req *http.Request) {
	t0 := f.self.scrapeStart()
	defer f.self.scrapeDone(t0, "/metrics")
	snap, err := f.Snapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	st := f.Status()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := snap.WritePrometheus(w); err != nil {
		return // headers already sent; nothing recoverable
	}
	_ = f.self.writePrometheus(w, st.ShardLag, st.TraceEvicted)
}

// handleTrace serves the rolling Chrome-trace window.
func (f *Fleet) handleTrace(w http.ResponseWriter, req *http.Request) {
	t0 := f.self.scrapeStart()
	defer f.self.scrapeDone(t0, "/trace")
	snap, err := f.Snapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = snap.WriteChromeTrace(w)
}

// handleHealthz reports liveness; a draining daemon answers 503 so load
// balancers stop routing scrapes to it during SIGTERM drain.
func (f *Fleet) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if f.stopping() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleFleetz serves the operational JSON view.
func (f *Fleet) handleFleetz(w http.ResponseWriter, req *http.Request) {
	t0 := f.self.scrapeStart()
	defer f.self.scrapeDone(t0, "/fleetz")
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(f.Status())
}
