// Package monitor defines the common interface all performance-counter
// collection tools implement (K-LEB and the perf stat / perf record / PAPI
// / LiMiT baselines) and the harness that runs a workload under a tool on a
// simulated machine.
package monitor

import (
	"fmt"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/workload"
)

// Config is the monitoring request: which events, how often, and at what
// privilege.
type Config struct {
	// Events are the hardware events to collect. The three fixed-function
	// events never consume programmable counters; requesting more
	// programmable events than the PMU has counters forces tools that
	// support it (perf stat) into time multiplexing, and is an error for
	// tools that do not.
	Events []isa.Event
	// Period is the sampling interval for periodic tools. Tools built on
	// user-space timers cannot honor periods below the 10ms jiffy.
	Period ktime.Duration
	// ExcludeKernel restricts counting to user-mode execution (the paper's
	// configuration: LINPACK's in-kernel init shows up as flat lines).
	ExcludeKernel bool
}

// Validate checks basic sanity.
func (c Config) Validate() error {
	if len(c.Events) == 0 {
		return fmt.Errorf("monitor: no events requested")
	}
	if c.Period == 0 {
		return fmt.Errorf("monitor: zero sampling period")
	}
	seen := map[isa.Event]bool{}
	for _, ev := range c.Events {
		if seen[ev] {
			return fmt.Errorf("monitor: duplicate event %v", ev)
		}
		seen[ev] = true
	}
	return nil
}

// ProgrammableEvents returns the subset of Events needing programmable
// counters.
func (c Config) ProgrammableEvents() []isa.Event {
	var out []isa.Event
	for _, ev := range c.Events {
		switch ev {
		case isa.EvInstructions, isa.EvCycles, isa.EvRefCycles:
		default:
			out = append(out, ev)
		}
	}
	return out
}

// Sample is one periodic record: per-event deltas since the previous
// sample, in Config.Events order.
type Sample struct {
	Time   ktime.Time
	Deltas []uint64
}

// Result is what a tool hands back after a run.
type Result struct {
	// Tool is the producing tool's name.
	Tool string
	// Events gives the meaning of sample/total columns.
	Events []isa.Event
	// Samples is the time series (empty for pure counting tools).
	Samples []Sample
	// Totals are the whole-run per-event counts as the tool reports them.
	Totals map[isa.Event]uint64
	// Estimated marks totals derived from sampling/multiplexing estimation
	// rather than direct counting.
	Estimated bool
	// Dropped counts buffer-full safety stops (each stop suspends
	// collection until the controller frees space).
	Dropped uint64
}

// SeriesFor extracts one event's delta series.
func (r Result) SeriesFor(ev isa.Event) []uint64 {
	idx := -1
	for i, e := range r.Events {
		if e == ev {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]uint64, len(r.Samples))
	for i, s := range r.Samples {
		if idx < len(s.Deltas) {
			out[i] = s.Deltas[idx]
		}
	}
	return out
}

// TargetResumer is implemented by tools that launch the target themselves
// (the `tool ./program` fork/exec pattern with enable-on-exec counters):
// Run leaves the target stopped and the tool resumes it once its event
// setup is complete, so no target instruction escapes the counters.
type TargetResumer interface {
	ResumesTarget() bool
}

// Tool is a performance counter collection mechanism.
type Tool interface {
	// Name identifies the tool ("kleb", "perf-stat", ...).
	Name() string
	// Attach installs the tool on m, monitoring target. prog is the
	// target's program, already created but not yet run; source-level tools
	// (PAPI, LiMiT) instrument it and fail if it is not instrumentable.
	Attach(m *machine.Machine, target *kernel.Process, prog kernel.Program, cfg Config) error
	// Collect returns results after the machine's run completes.
	Collect() Result
}

// RunSpec describes one monitored (or baseline) run.
type RunSpec struct {
	// Profile is the machine to boot.
	Profile machine.Profile
	// Seed drives all simulation noise; identical seeds replay identically.
	Seed uint64
	// TargetName names the monitored process.
	TargetName string
	// NewTarget creates the target's program.
	NewTarget func() kernel.Program
	// Tool is the monitor under test; nil runs an unmonitored baseline.
	Tool Tool
	// Config is the monitoring request (ignored when Tool is nil).
	Config Config
	// Noise adds the background OS-noise daemon.
	Noise bool
	// Limit caps simulated time as a runaway guard (0 = none).
	Limit ktime.Duration
	// OnBoot, when set, runs right after the machine boots and before any
	// process is spawned — the hook for attaching debug instrumentation
	// (syscall tracing, state dumps).
	OnBoot func(*machine.Machine)
}

// RunResult is the outcome of one run.
type RunResult struct {
	// Result is the tool's collected data (zero value for baselines).
	Result Result
	// Elapsed is the target's wall-clock lifetime.
	Elapsed ktime.Duration
	// TargetUser/TargetKern are the target's CPU time split.
	TargetUser ktime.Duration
	TargetKern ktime.Duration
	// Machine is the booted machine, for post-run inspection.
	Machine *machine.Machine
	// Target is the monitored process.
	Target *kernel.Process
}

// Run boots the machine, spawns the target, attaches the tool, drives the
// kernel until all processes exit, and collects results.
func Run(spec RunSpec) (*RunResult, error) {
	if spec.NewTarget == nil {
		return nil, fmt.Errorf("monitor: RunSpec.NewTarget is nil")
	}
	if spec.Tool != nil {
		if err := spec.Config.Validate(); err != nil {
			return nil, err
		}
	}
	m := machine.Boot(spec.Profile, spec.Seed)
	k := m.Kernel()
	if spec.OnBoot != nil {
		spec.OnBoot(m)
	}
	if spec.Noise {
		k.SpawnDaemon("os-noise", workload.OSNoise(spec.Seed^0x9e37))
	}
	name := spec.TargetName
	if name == "" {
		name = "target"
	}
	// The target is created stopped so the tool can arm itself before the
	// target's first instruction (the `tool ./program` launch pattern),
	// then resumed behind any tool processes already in the run queue.
	prog := spec.NewTarget()
	target := k.SpawnStopped(name, prog)
	if spec.Tool != nil {
		if err := spec.Tool.Attach(m, target, prog, spec.Config); err != nil {
			return nil, fmt.Errorf("monitor: attach %s: %w", spec.Tool.Name(), err)
		}
	}
	if tr, ok := spec.Tool.(TargetResumer); !ok || !tr.ResumesTarget() {
		k.Resume(target)
	}
	if err := k.Run(spec.Limit); err != nil {
		return nil, fmt.Errorf("monitor: run under %s: %w", toolName(spec.Tool), err)
	}
	if !target.Exited() {
		return nil, fmt.Errorf("monitor: target %q did not exit (state %v)", name, target.State())
	}
	res := &RunResult{
		Elapsed:    target.Runtime(),
		TargetUser: target.UserTime(),
		TargetKern: target.KernelTime(),
		Machine:    m,
		Target:     target,
	}
	if spec.Tool != nil {
		res.Result = spec.Tool.Collect()
	}
	return res, nil
}

func toolName(t Tool) string {
	if t == nil {
		return "baseline"
	}
	return t.Name()
}
