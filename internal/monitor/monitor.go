// Package monitor defines the common interface all performance-counter
// collection tools implement (K-LEB and the perf stat / perf record / PAPI
// / LiMiT baselines) and the sample/result records they produce. The
// harness that actually boots a machine and runs a workload under a tool
// lives one layer up, in internal/session.
package monitor

import (
	"fmt"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/pmu"
)

// Config is the monitoring request: which events, how often, and at what
// privilege.
type Config struct {
	// Events are the hardware events to collect. The three fixed-function
	// events never consume programmable counters; requesting more
	// programmable events than the PMU has counters forces tools that
	// support it (perf stat) into time multiplexing, and is an error for
	// tools that do not.
	Events []isa.Event
	// Raw requests events by architectural encoding (perf's rUUEE syntax)
	// instead of by class name. The session layer resolves each encoding
	// against the booted machine's event table and appends the resolved
	// classes to Events before the tool attaches; an encoding the machine
	// does not expose is an error at attach time.
	Raw []pmu.Encoding
	// Period is the sampling interval for periodic tools. Tools built on
	// user-space timers cannot honor periods below the 10ms jiffy.
	Period ktime.Duration
	// ExcludeKernel restricts counting to user-mode execution (the paper's
	// configuration: LINPACK's in-kernel init shows up as flat lines).
	ExcludeKernel bool
}

// Validate checks basic sanity.
func (c Config) Validate() error {
	if len(c.Events) == 0 && len(c.Raw) == 0 {
		return fmt.Errorf("monitor: no events requested")
	}
	if c.Period == 0 {
		return fmt.Errorf("monitor: zero sampling period")
	}
	// Duration is unsigned, so a negative period (e.g. a -5ms CLI flag
	// converted from time.Duration) arrives wrapped into the top half of
	// the range; report it as the signed value the caller wrote.
	if int64(c.Period) < 0 {
		return fmt.Errorf("monitor: negative sampling period -%v", ktime.Duration(-int64(c.Period)))
	}
	seen := map[isa.Event]bool{}
	for _, ev := range c.Events {
		if seen[ev] {
			return fmt.Errorf("monitor: duplicate event %v", ev)
		}
		seen[ev] = true
	}
	return nil
}

// ProgrammableEvents returns the subset of Events needing core programmable
// counters: fixed-function events ride on their dedicated counters and
// uncore events count in the separate IMC pool, so neither competes here.
func (c Config) ProgrammableEvents() []isa.Event {
	var out []isa.Event
	for _, ev := range c.Events {
		switch {
		case ev == isa.EvInstructions, ev == isa.EvCycles, ev == isa.EvRefCycles:
		case ev.Uncore():
		default:
			out = append(out, ev)
		}
	}
	return out
}

// UncoreEvents returns the subset of Events counting in the uncore pool.
func (c Config) UncoreEvents() []isa.Event {
	var out []isa.Event
	for _, ev := range c.Events {
		if ev.Uncore() {
			out = append(out, ev)
		}
	}
	return out
}

// ResolveRaw resolves the Raw encodings against a machine's event table and
// returns the config with the resolved classes appended to Events (Raw
// cleared). Duplicate resolution against an already-requested class is an
// error, as is an encoding the table does not expose on any unit.
func (c Config) ResolveRaw(table *pmu.EventTable) (Config, error) {
	if len(c.Raw) == 0 {
		return c, nil
	}
	out := c
	out.Events = append([]isa.Event(nil), c.Events...)
	out.Raw = nil
	seen := map[isa.Event]bool{}
	for _, ev := range c.Events {
		seen[ev] = true
	}
	for _, enc := range c.Raw {
		ev, ok := table.Lookup(enc.Sel(0))
		if !ok {
			ev, ok = table.LookupUncore(enc.Sel(0))
		}
		if !ok {
			return Config{}, fmt.Errorf("monitor: raw event %v is not in the %s event table", enc, table.Arch())
		}
		if seen[ev] {
			return Config{}, fmt.Errorf("monitor: raw event %v duplicates event %v", enc, ev)
		}
		seen[ev] = true
		out.Events = append(out.Events, ev)
	}
	return out, nil
}

// Sample is one periodic record: per-event deltas since the previous
// sample, in Config.Events order.
type Sample struct {
	Time   ktime.Time
	Deltas []uint64
}

// RecordLedger installs a tool's period-conservation ledger into the
// result. Tool implementations must use it instead of assigning the four
// fields directly: it is the single audited write path ledgerguard
// recognizes from outside this package, and it keeps the equation's terms
// from being set piecemeal (a half-copied ledger cannot balance).
func (r *Result) RecordLedger(fires, captured, dropped, lostToFault uint64) {
	r.Fires = fires
	r.Captured = captured
	r.Dropped = dropped
	r.LostToFault = lostToFault
}

// Result is what a tool hands back after a run. The ledger fields obey the
// period-conservation equation below; tools install them through
// RecordLedger, the one audited writer outside this package (enforced by
// klebvet/ledgerguard).
//
//klebvet:ledger Fires = Captured + Dropped + LostToFault
type Result struct {
	// Tool is the producing tool's name.
	Tool string
	// Events gives the meaning of sample/total columns.
	Events []isa.Event
	// Samples is the time series (empty for pure counting tools).
	Samples []Sample
	// Totals are the whole-run per-event counts as the tool reports them.
	Totals map[isa.Event]uint64
	// Estimated marks totals derived from sampling/multiplexing estimation
	// rather than direct counting.
	Estimated bool
	// Scale records, per event, the enabled/running extrapolation factor a
	// multiplexing tool applied to its total (1.0 = the event held a counter
	// for the whole run, so the count is exact). Nil for tools that never
	// scale (K-LEB, PAPI, LiMiT).
	Scale map[isa.Event]float64
	// Fires counts timer-handler invocations over the run, and Captured the
	// samples actually pushed into the tool's buffer. Tools with a period-
	// conservation ledger (K-LEB) keep Fires == Captured + Dropped +
	// LostToFault; both stay zero for tools without one, and fleet
	// aggregation totals them without reaching into tool internals.
	Fires    uint64
	Captured uint64
	// Dropped counts sampling periods lost to the buffer-full safety pause
	// (the pause suspends counting, not the period clock, so every elapsed
	// period while paused is one dropped period).
	Dropped uint64
	// LostToFault counts sampling periods lost to injected faults (timer
	// misfires, corrupted counter reads). Zero on uninjected runs.
	LostToFault uint64
	// Degraded marks a run that finished with partial data: the collector
	// aborted on an unrecoverable fault or recorded log-write failures.
	// The samples present are still trustworthy.
	Degraded bool
	// Fault describes the first unrecoverable fault of a degraded run (""
	// when the run was clean).
	Fault string
}

// SeriesFor extracts one event's delta series.
func (r Result) SeriesFor(ev isa.Event) []uint64 {
	idx := -1
	for i, e := range r.Events {
		if e == ev {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	out := make([]uint64, len(r.Samples))
	for i, s := range r.Samples {
		if idx < len(s.Deltas) {
			out[i] = s.Deltas[idx]
		}
	}
	return out
}

// TargetResumer is implemented by tools that launch the target themselves
// (the `tool ./program` fork/exec pattern with enable-on-exec counters):
// Run leaves the target stopped and the tool resumes it once its event
// setup is complete, so no target instruction escapes the counters.
type TargetResumer interface {
	ResumesTarget() bool
}

// Tool is a performance counter collection mechanism.
type Tool interface {
	// Name identifies the tool ("kleb", "perf-stat", ...).
	Name() string
	// Attach installs the tool on m, monitoring target. prog is the
	// target's program, already created but not yet run; source-level tools
	// (PAPI, LiMiT) instrument it and fail if it is not instrumentable.
	Attach(m *machine.Machine, target *kernel.Process, prog kernel.Program, cfg Config) error
	// Collect returns results after the machine's run completes.
	Collect() Result
}
