package monitor_test

import (
	"testing"

	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/kleb"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
	"kleb/internal/workload"
)

func smallWorkload() workload.Script {
	return workload.Synthetic{
		Name:       "small",
		TotalInstr: 300_000_000, // ~60ms at CPI≈0.5
		Footprint:  512 << 10,
	}.Script()
}

func newTargetFactory(s workload.Script) func() kernel.Program {
	return func() kernel.Program { return s.Program() }
}

func TestBaselineRunCompletes(t *testing.T) {
	res, err := monitor.Run(monitor.RunSpec{
		Profile:    machine.Nehalem(),
		Seed:       1,
		TargetName: "small",
		NewTarget:  newTargetFactory(smallWorkload()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed == 0 {
		t.Fatal("zero elapsed time")
	}
	if res.TargetUser == 0 {
		t.Error("no user time accumulated")
	}
	t.Logf("baseline elapsed=%v user=%v kern=%v", res.Elapsed, res.TargetUser, res.TargetKern)
}

func TestBaselineDeterministicAcrossRuns(t *testing.T) {
	run := func() ktime.Duration {
		res, err := monitor.Run(monitor.RunSpec{
			Profile:   machine.Nehalem(),
			Seed:      42,
			NewTarget: newTargetFactory(smallWorkload()),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different elapsed: %v vs %v", a, b)
	}
}

func TestKlebRunProducesSamples(t *testing.T) {
	res, err := monitor.Run(monitor.RunSpec{
		Profile:   machine.Nehalem(),
		Seed:      7,
		NewTarget: newTargetFactory(smallWorkload()),
		Tool:      kleb.New(),
		Config: monitor.Config{
			Events:        []isa.Event{isa.EvInstructions, isa.EvLLCMisses, isa.EvLoads, isa.EvStores},
			Period:        ktime.Millisecond,
			ExcludeKernel: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Samples) < 10 {
		t.Fatalf("expected a healthy sample series, got %d samples", len(res.Result.Samples))
	}
	instr := res.Result.Totals[isa.EvInstructions]
	if instr < 290_000_000 || instr > 310_000_000 {
		t.Errorf("instruction total %d not within 3%% of 300M", instr)
	}
	t.Logf("kleb samples=%d elapsed=%v instr=%d", len(res.Result.Samples), res.Elapsed, instr)
}

func TestKlebOverheadIsSmall(t *testing.T) {
	base, err := monitor.Run(monitor.RunSpec{
		Profile:   machine.Nehalem(),
		Seed:      9,
		NewTarget: newTargetFactory(smallWorkload()),
	})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := monitor.Run(monitor.RunSpec{
		Profile:   machine.Nehalem(),
		Seed:      9,
		NewTarget: newTargetFactory(smallWorkload()),
		Tool:      kleb.New(),
		Config: monitor.Config{
			Events:        []isa.Event{isa.EvInstructions, isa.EvLLCMisses},
			Period:        10 * ktime.Millisecond,
			ExcludeKernel: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	overhead := 100 * (float64(mon.Elapsed) - float64(base.Elapsed)) / float64(base.Elapsed)
	if overhead < 0 {
		t.Errorf("negative overhead %f%%", overhead)
	}
	if overhead > 5 {
		t.Errorf("K-LEB overhead %f%% unreasonably high at 10ms", overhead)
	}
	t.Logf("kleb overhead at 10ms: %.3f%% (base=%v mon=%v)", overhead, base.Elapsed, mon.Elapsed)
}
