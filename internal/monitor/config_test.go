package monitor_test

import (
	"strings"
	"testing"

	"kleb/internal/isa"
	"kleb/internal/kleb"
	"kleb/internal/ktime"
	"kleb/internal/machine"
	"kleb/internal/monitor"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  monitor.Config
		want string
	}{
		{"no-events", monitor.Config{Period: ktime.Millisecond}, "no events"},
		{"no-period", monitor.Config{Events: []isa.Event{isa.EvLoads}}, "zero"},
		{"dup", monitor.Config{Events: []isa.Event{isa.EvLoads, isa.EvLoads}, Period: 1}, "duplicate"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v", c.name, err)
		}
	}
	good := monitor.Config{Events: []isa.Event{isa.EvLoads}, Period: ktime.Millisecond}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestProgrammableEvents(t *testing.T) {
	cfg := monitor.Config{Events: []isa.Event{
		isa.EvInstructions, isa.EvCycles, isa.EvRefCycles, isa.EvLoads, isa.EvLLCMisses,
	}}
	prog := cfg.ProgrammableEvents()
	if len(prog) != 2 {
		t.Fatalf("programmable: %v", prog)
	}
	if prog[0] != isa.EvLoads || prog[1] != isa.EvLLCMisses {
		t.Errorf("wrong split: %v", prog)
	}
}

func TestRunRejectsMissingTarget(t *testing.T) {
	_, err := monitor.Run(monitor.RunSpec{Profile: machine.Nehalem()})
	if err == nil || !strings.Contains(err.Error(), "NewTarget") {
		t.Errorf("got %v", err)
	}
}

func TestRunRejectsBadConfigWithTool(t *testing.T) {
	_, err := monitor.Run(monitor.RunSpec{
		Profile:   machine.Nehalem(),
		NewTarget: newTargetFactory(smallWorkload()),
		Tool:      kleb.New(),
		Config:    monitor.Config{}, // invalid
	})
	if err == nil {
		t.Error("invalid config with a tool should fail")
	}
}

func TestResultSeriesFor(t *testing.T) {
	r := monitor.Result{
		Events: []isa.Event{isa.EvLoads, isa.EvStores},
		Samples: []monitor.Sample{
			{Time: 1, Deltas: []uint64{10, 20}},
			{Time: 2, Deltas: []uint64{30, 40}},
			{Time: 3, Deltas: []uint64{50}}, // ragged row
		},
	}
	loads := r.SeriesFor(isa.EvLoads)
	if len(loads) != 3 || loads[0] != 10 || loads[2] != 50 {
		t.Errorf("loads series: %v", loads)
	}
	stores := r.SeriesFor(isa.EvStores)
	if stores[2] != 0 {
		t.Error("ragged rows should zero-fill")
	}
	if r.SeriesFor(isa.EvBranches) != nil {
		t.Error("missing event should return nil")
	}
}

func TestRunWithLimit(t *testing.T) {
	// A run whose target never exits must stop at the Limit rather than
	// hang; it then errors because the target is still alive.
	s := smallWorkload()
	_, err := monitor.Run(monitor.RunSpec{
		Profile:   machine.Nehalem(),
		NewTarget: newTargetFactory(s),
		Limit:     ktime.Millisecond, // far too short for the workload
	})
	if err == nil || !strings.Contains(err.Error(), "did not exit") {
		t.Errorf("got %v", err)
	}
}

func TestNoiseChangesTiming(t *testing.T) {
	base, err := monitor.Run(monitor.RunSpec{
		Profile: machine.Nehalem(), Seed: 5, NewTarget: newTargetFactory(smallWorkload()),
	})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := monitor.Run(monitor.RunSpec{
		Profile: machine.Nehalem(), Seed: 5, NewTarget: newTargetFactory(smallWorkload()),
		Noise: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Elapsed <= base.Elapsed {
		t.Errorf("OS noise should lengthen the run: %v vs %v", noisy.Elapsed, base.Elapsed)
	}
	if noisy.Target.Switches() <= base.Target.Switches() {
		t.Error("noise should force extra context switches")
	}
}
