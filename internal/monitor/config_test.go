package monitor_test

import (
	"strings"
	"testing"

	"kleb/internal/isa"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
)

// negativePeriod is what a negative time.Duration becomes when converted
// to the unsigned ktime.Duration (e.g. by a CLI flag).
func negativePeriod(d ktime.Duration) ktime.Duration {
	return ktime.Duration(-int64(d))
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  monitor.Config
		want string
	}{
		{"no-events", monitor.Config{Period: ktime.Millisecond}, "no events"},
		{"no-period", monitor.Config{Events: []isa.Event{isa.EvLoads}}, "zero"},
		{"negative-period", monitor.Config{Events: []isa.Event{isa.EvLoads}, Period: negativePeriod(ktime.Millisecond)}, "negative"},
		{"dup", monitor.Config{Events: []isa.Event{isa.EvLoads, isa.EvLoads}, Period: 1}, "duplicate"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v", c.name, err)
		}
	}
	// The negative-period error must report the offending value as the
	// signed duration the caller wrote (e.g. a -5ms CLI flag).
	err := monitor.Config{Events: []isa.Event{isa.EvLoads}, Period: negativePeriod(5 * ktime.Millisecond)}.Validate()
	if err == nil || !strings.Contains(err.Error(), "-"+(5*ktime.Millisecond).String()) {
		t.Errorf("negative period error should name the value: %v", err)
	}
	good := monitor.Config{Events: []isa.Event{isa.EvLoads}, Period: ktime.Millisecond}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestProgrammableEvents(t *testing.T) {
	cfg := monitor.Config{Events: []isa.Event{
		isa.EvInstructions, isa.EvCycles, isa.EvRefCycles, isa.EvLoads, isa.EvLLCMisses,
	}}
	prog := cfg.ProgrammableEvents()
	if len(prog) != 2 {
		t.Fatalf("programmable: %v", prog)
	}
	if prog[0] != isa.EvLoads || prog[1] != isa.EvLLCMisses {
		t.Errorf("wrong split: %v", prog)
	}
}

func TestResultSeriesFor(t *testing.T) {
	r := monitor.Result{
		Events: []isa.Event{isa.EvLoads, isa.EvStores},
		Samples: []monitor.Sample{
			{Time: 1, Deltas: []uint64{10, 20}},
			{Time: 2, Deltas: []uint64{30, 40}},
			{Time: 3, Deltas: []uint64{50}}, // ragged row
		},
	}
	loads := r.SeriesFor(isa.EvLoads)
	if len(loads) != 3 || loads[0] != 10 || loads[2] != 50 {
		t.Errorf("loads series: %v", loads)
	}
	stores := r.SeriesFor(isa.EvStores)
	if stores[2] != 0 {
		t.Error("ragged rows should zero-fill")
	}
	if r.SeriesFor(isa.EvBranches) != nil {
		t.Error("missing event should return nil")
	}
}
