package kleb

import "kleb/internal/monitor"

// ring is the fixed-capacity sample buffer the K-LEB module keeps in kernel
// memory. The module fills it from the HRTimer interrupt handler; the
// controller drains it with periodic read syscalls. When it fills up, the
// module pauses collection (the paper's safety mechanism) instead of
// overwriting data.
type ring struct {
	buf   []monitor.Sample
	head  int // next slot to pop
	count int
}

func newRing(capacity int) *ring {
	if capacity <= 0 {
		capacity = DefaultBufferSamples
	}
	return &ring{buf: make([]monitor.Sample, capacity)}
}

// push appends a sample; it reports false (and stores nothing) when full.
func (r *ring) push(s monitor.Sample) bool {
	if r.count == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = s
	r.count++
	return true
}

// popN removes and returns up to n samples in FIFO order.
func (r *ring) popN(n int) []monitor.Sample {
	if n > r.count {
		n = r.count
	}
	if n <= 0 {
		return nil
	}
	out := make([]monitor.Sample, n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.head = (r.head + n) % len(r.buf)
	r.count -= n
	return out
}

// len returns the number of buffered samples.
func (r *ring) len() int { return r.count }

// free returns the remaining capacity.
func (r *ring) free() int { return len(r.buf) - r.count }
