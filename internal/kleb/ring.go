package kleb

import (
	"kleb/internal/ktime"
	"kleb/internal/monitor"
)

// ring is the fixed-capacity sample buffer the K-LEB module keeps in kernel
// memory. The module fills it from the HRTimer interrupt handler; the
// controller drains it with periodic read syscalls. When it fills up, the
// module pauses collection (the paper's safety mechanism) instead of
// overwriting data.
//
// The interrupt handler must not allocate (PR 4's zero-alloc discipline),
// so every slot's delta slice is carved out of one slab allocated at
// configure time and push copies into it; only popN — the controller's
// cold syscall path — allocates, because drained samples outlive the slot
// they came from.
type ring struct {
	buf     []monitor.Sample
	backing []uint64 // one slab, width deltas per slot
	head    int      // next slot to pop
	count   int
}

// newRing builds a ring of capacity slots, each able to hold width deltas.
func newRing(capacity, width int) *ring {
	if capacity <= 0 {
		capacity = DefaultBufferSamples
	}
	r := &ring{buf: make([]monitor.Sample, capacity)}
	if width > 0 {
		r.backing = make([]uint64, capacity*width)
		for i := range r.buf {
			// Three-index slice: len 0, cap width — append stays in place.
			r.buf[i].Deltas = r.backing[i*width : i*width : (i+1)*width]
		}
	}
	return r
}

// push appends one sample, copying deltas into the slot's preallocated
// backing; it reports false (and stores nothing) when full. len(deltas)
// must not exceed the configured width.
//
//klebvet:hotpath
func (r *ring) push(t ktime.Time, deltas []uint64) bool {
	if r.count == len(r.buf) {
		return false
	}
	s := &r.buf[(r.head+r.count)%len(r.buf)]
	s.Time = t
	s.Deltas = append(s.Deltas[:0], deltas...) //klebvet:allow hotalloc -- slot backing is reserved at newRing with cap == width and len(deltas) <= width, so this append can never grow
	r.count++
	return true
}

// popN removes and returns up to n samples in FIFO order. The returned
// samples own fresh delta storage (one batched allocation), so they stay
// valid after the slots are reused.
func (r *ring) popN(n int) []monitor.Sample {
	if n > r.count {
		n = r.count
	}
	if n <= 0 {
		return nil
	}
	total := 0
	for i := 0; i < n; i++ {
		total += len(r.buf[(r.head+i)%len(r.buf)].Deltas)
	}
	out := make([]monitor.Sample, n)
	flat := make([]uint64, 0, total)
	for i := 0; i < n; i++ {
		s := &r.buf[(r.head+i)%len(r.buf)]
		start := len(flat)
		flat = append(flat, s.Deltas...)
		out[i] = monitor.Sample{Time: s.Time, Deltas: flat[start:len(flat):len(flat)]}
		s.Deltas = s.Deltas[:0] // slot keeps its slab segment for reuse
	}
	r.head = (r.head + n) % len(r.buf)
	r.count -= n
	return out
}

// len returns the number of buffered samples.
func (r *ring) len() int { return r.count }

// free returns the remaining capacity.
func (r *ring) free() int { return len(r.buf) - r.count }
