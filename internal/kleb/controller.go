package kleb

import (
	"bytes"
	"fmt"
	"io"

	"kleb/internal/fault"
	"kleb/internal/isa"
	"kleb/internal/kernel"
	"kleb/internal/ktime"
	"kleb/internal/monitor"
	"kleb/internal/workload"
)

// DefaultDrainInterval is how often the controller wakes to pull samples
// out of the kernel buffer. The paper's design leaves this to the
// scheduler's natural cadence; 100ms keeps the buffer comfortably ahead of
// a 100µs sampling rate with the default ring size.
const DefaultDrainInterval = 50 * ktime.Millisecond

// ReadMax bounds one drain; large enough to empty the default ring.
const ReadMax = DefaultBufferSamples

// DefaultLogPath is where the controller writes its CSV sample log unless
// Controller.LogPath overrides it.
const DefaultLogPath = "/var/log/kleb.csv"

// MaxRetries bounds consecutive retries of one transiently-failing ioctl
// before the controller gives up and aborts the run as degraded.
const MaxRetries = 5

// maxStatusFailures bounds consecutive KLEB_STATUS failures: status is the
// controller's only view of module liveness, so a module that cannot even
// report status is treated as gone after this many attempts.
const maxStatusFailures = 8

// maxFutileDrains bounds consecutive empty final drains while the module
// claims samples are still available — the guard against a starvation fault
// (or a module bug) turning the final-drain loop into an infinite poll.
const maxFutileDrains = 64

// DefaultPollDeadline is how long the controller tolerates a running module
// making no sampling progress before aborting; Controller.PollDeadline
// overrides it.
const DefaultPollDeadline = 10 * ktime.Second

// retryBackoff is the sleep before retry number attempt (1-based):
// exponential from 1ms, capped at 32ms so retries stay well inside one
// drain interval.
func retryBackoff(attempt int) ktime.Duration {
	if attempt > 5 {
		attempt = 5
	}
	return ktime.Millisecond << uint(attempt)
}

// Controller is the user-space half of K-LEB (Fig 1's "Controller
// Process"): it configures the module over ioctl, starts collection, wakes
// periodically to drain the kernel buffer, logs the samples, and stops the
// module when the monitored lineage has exited.
//
// The controller is hardened against a faulty module: transient ioctl
// failures are retried with exponential backoff (bounded by MaxRetries),
// permanent failures abort the run with Err set, a module making no
// sampling progress trips PollDeadline, and log-write failures are recorded
// without being allowed to kill collection. Any of these marks the run
// degraded — finished with partial but trustworthy data.
type Controller struct {
	Cfg           ModuleConfig
	DrainInterval ktime.Duration

	// PollDeadline bounds how long the controller waits for sampling
	// progress while the module reports itself running (0 =
	// DefaultPollDeadline).
	PollDeadline ktime.Duration

	// LogPath overrides where the CSV log lands in the simulated filesystem
	// ("" = DefaultLogPath).
	LogPath string
	// LogWriter, if set, additionally receives every CSV chunk as it is
	// written — the injectable sink that frees callers from fishing the log
	// back out of the simulated FS.
	LogWriter io.Writer

	// Samples accumulates everything drained, in capture order.
	Samples []monitor.Sample
	// Err records the fatal error that aborted the run (permanent ioctl
	// failure, retry exhaustion, poll deadline); nil for a clean run.
	Err error
	// Retries counts transient-failure retries across all ops.
	Retries uint64
	// WriteFailures counts log writes that failed (FS or LogWriter); the
	// samples stay in Samples, only the log copy is incomplete.
	WriteFailures uint64
	// WriteErr is the first write failure (nil if none).
	WriteErr error

	state       int
	pending     []monitor.Sample // drained but not yet logged
	wroteHeader bool
	done        bool
	finishing   bool // module reported Done; draining the tail
	degraded    bool
	attempts    int // consecutive transient failures of the current op
	statusCount int // consecutive KLEB_STATUS failures
	futile      int // consecutive empty final drains
	lastSeen    uint64
	lastSeenAt  ktime.Time
}

// Controller states. The *Retry states exist so a backoff sleep can resume
// by re-issuing the failed ioctl without re-reading the stale SyscallResult
// the sleep left behind.
const (
	ctlConfigure = iota
	ctlStart
	ctlStartRetry
	ctlSleep
	ctlDrain
	ctlLog
	ctlWrite
	ctlCheck
	ctlFinal
	ctlStop
	ctlStopRetry
	ctlDone
)

var _ kernel.Program = (*Controller)(nil)

// NewController builds a controller for cfg.
func NewController(cfg ModuleConfig) *Controller {
	return &Controller{Cfg: cfg, DrainInterval: DefaultDrainInterval}
}

// Degraded reports whether the run finished with partial data (abort or
// write failures).
func (c *Controller) Degraded() bool { return c.degraded }

// FaultError returns the first unrecoverable fault of the run: the abort
// error if the controller aborted, else the first write failure, else nil.
func (c *Controller) FaultError() error {
	if c.Err != nil {
		return c.Err
	}
	return c.WriteErr
}

func (c *Controller) pollDeadline() ktime.Duration {
	if c.PollDeadline > 0 {
		return c.PollDeadline
	}
	return DefaultPollDeadline
}

// markDegraded flags the run as partial-data, emitting the telemetry event
// once.
func (c *Controller) markDegraded(k *kernel.Kernel, reason string) {
	if c.degraded {
		return
	}
	c.degraded = true
	k.Telemetry().RunDegraded(k.Now(), reason)
}

// abort ends the run: record the error, mark it degraded and exit non-zero.
func (c *Controller) abort(k *kernel.Kernel, err error) kernel.Op {
	if c.Err == nil {
		c.Err = err
	}
	c.markDegraded(k, "abort")
	c.state = ctlDone
	return kernel.OpExit{Code: 1}
}

// retryOrAbort handles an ioctl failure: transient errors are retried with
// backoff (resuming in resumeState, which re-issues the op); permanent
// errors and exhausted retries abort.
func (c *Controller) retryOrAbort(k *kernel.Kernel, op string, err error, resumeState int) kernel.Op {
	if !fault.IsTransient(err) || c.attempts >= MaxRetries {
		return c.abort(k, fmt.Errorf("%s: %w", op, err))
	}
	c.attempts++
	c.Retries++
	k.Telemetry().CtlRetry(k.Now(), op, uint64(c.attempts))
	c.state = resumeState
	return kernel.OpSleep{D: retryBackoff(c.attempts)}
}

// noteWriteFailure records a failed log write without aborting: sample data
// is already safe in Samples, only the log copy is degraded.
func (c *Controller) noteWriteFailure(k *kernel.Kernel, err error) {
	c.WriteFailures++
	if c.WriteErr == nil {
		c.WriteErr = err
	}
	c.markDegraded(k, "log-write")
}

// Next implements kernel.Program as the controller's event loop.
func (c *Controller) Next(k *kernel.Kernel, p *kernel.Process) kernel.Op {
	switch c.state {
	case ctlConfigure:
		c.state = ctlStart
		return ioctlOp("KLEB_CONFIG", CmdConfig, c.Cfg)
	case ctlStart:
		if err, bad := p.SyscallResult.(error); bad {
			return c.retryOrAbort(k, "KLEB_CONFIG", err, ctlConfigure)
		}
		c.attempts = 0
		c.state = ctlSleep
		return ioctlOp("KLEB_START", CmdStart, nil)
	case ctlStartRetry:
		c.state = ctlSleep
		return ioctlOp("KLEB_START", CmdStart, nil)
	case ctlSleep:
		if err, bad := p.SyscallResult.(error); bad {
			return c.retryOrAbort(k, "KLEB_START", err, ctlStartRetry)
		}
		c.attempts = 0
		c.lastSeenAt = k.Now()
		c.state = ctlDrain
		return kernel.OpSleep{D: c.DrainInterval}
	case ctlDrain:
		c.state = ctlLog
		return ioctlOp("KLEB_READ", CmdRead, ReadRequest{Max: ReadMax})
	case ctlLog:
		if err, bad := p.SyscallResult.(error); bad {
			// A failed read is an error, not an empty buffer: retry it
			// rather than silently dropping the drain.
			return c.retryOrAbort(k, "KLEB_READ", err, ctlDrain)
		}
		c.attempts = 0
		if got, ok := p.SyscallResult.([]monitor.Sample); ok && len(got) > 0 {
			c.pending = got
			c.Samples = append(c.Samples, got...)
			c.lastSeenAt = k.Now()
			c.futile = 0
			c.state = ctlWrite
			return c.logOp(k, len(c.pending))
		}
		c.pending = nil
		if c.finishing {
			// Final-drain loop: the module says samples remain but the
			// read yielded none (drain starvation). Bound the loop so a
			// stuck module cannot poll us forever.
			c.futile++
			if c.futile >= maxFutileDrains {
				return c.abort(k, fmt.Errorf(
					"kleb: module reports samples available but %d consecutive drains returned none", c.futile))
			}
		}
		c.state = ctlCheck
		return c.Next(k, p)
	case ctlWrite:
		c.state = ctlCheck
		return c.writeOp(len(c.pending))
	case ctlCheck:
		c.state = ctlFinal
		return ioctlOp("KLEB_STATUS", CmdStatus, nil)
	case ctlFinal:
		if err, bad := p.SyscallResult.(error); bad {
			// Status is the liveness probe; a module that cannot answer it
			// after maxStatusFailures attempts is treated as dead.
			c.statusCount++
			if !fault.IsTransient(err) || c.statusCount >= maxStatusFailures {
				return c.abort(k, fmt.Errorf("KLEB_STATUS: %w", err))
			}
			c.Retries++
			k.Telemetry().CtlRetry(k.Now(), "KLEB_STATUS", uint64(c.statusCount))
			c.state = ctlCheck
			return kernel.OpSleep{D: retryBackoff(c.statusCount)}
		}
		st, ok := p.SyscallResult.(Status)
		if !ok {
			// The old controller zero-valued this and polled a dead module
			// forever; an unexpected reply type is a fatal protocol error.
			return c.abort(k, fmt.Errorf("KLEB_STATUS returned %T, want kleb.Status", p.SyscallResult))
		}
		c.statusCount = 0
		if st.Done {
			c.finishing = true
			if st.Available > 0 {
				// Final drain until the buffer is empty.
				c.state = ctlLog
				return ioctlOp("KLEB_READ", CmdRead, ReadRequest{Max: ReadMax})
			}
			c.state = ctlStop
			return ioctlOp("KLEB_STOP", CmdStop, nil)
		}
		if st.Samples > c.lastSeen {
			c.lastSeen = st.Samples
			c.lastSeenAt = k.Now()
		} else if k.Now().Sub(c.lastSeenAt) > c.pollDeadline() {
			return c.abort(k, fmt.Errorf(
				"kleb: module running but no sampling progress for %v", c.pollDeadline()))
		}
		c.state = ctlDrain
		return kernel.OpSleep{D: c.DrainInterval}
	case ctlStop:
		if err, bad := p.SyscallResult.(error); bad {
			return c.retryOrAbort(k, "KLEB_STOP", err, ctlStopRetry)
		}
		c.done = true
		c.state = ctlDone
		return kernel.OpExit{}
	case ctlStopRetry:
		c.state = ctlStop
		return ioctlOp("KLEB_STOP", CmdStop, nil)
	}
	return kernel.OpExit{}
}

// logOp models writing n samples to the log file: a short user-space
// formatting stretch plus a write syscall whose kernel side (page-cache
// copy, VFS) dominates the cost.
func (c *Controller) logOp(k *kernel.Kernel, n int) kernel.Op {
	return kernel.OpExec{Block: isa.Block{
		Instr:    20_000 + uint64(n)*1_500,
		Loads:    6_000 + uint64(n)*400,
		Stores:   3_000 + uint64(n)*300,
		Branches: 2_000 + uint64(n)*120,
		Mem: isa.MemPattern{
			Base:      workload.ToolRegion(),
			Footprint: 256 << 10,
			Stride:    8,
		},
		Priv: isa.User,
	}}
}

// writeOp is the log write syscall (issued after the format block): the
// pending samples are rendered as CSV rows and appended to the log file in
// the kernel's filesystem, paying the journal/flush cost plus the VFS
// per-byte copy price. Write failures are recorded, never fatal: the
// drained samples are already safe in c.Samples.
//
//klebvet:artifact
func (c *Controller) writeOp(n int) kernel.Op {
	return kernel.OpSyscall{Name: "write", Fn: func(k *kernel.Kernel, p *kernel.Process) any {
		k.ChargeKernel(350 * ktime.Microsecond) // journal + page-cache flush
		var buf bytes.Buffer
		if !c.wroteHeader {
			c.wroteHeader = true
			buf.WriteString("time_us")
			for _, ev := range c.Cfg.Events {
				buf.WriteByte(',')
				buf.WriteString(ev.String())
			}
			buf.WriteByte('\n')
		}
		for _, s := range c.pending {
			fmt.Fprintf(&buf, "%.1f", float64(s.Time)/1000)
			for i := range c.Cfg.Events {
				var v uint64
				if i < len(s.Deltas) {
					v = s.Deltas[i]
				}
				fmt.Fprintf(&buf, ",%d", v)
			}
			buf.WriteByte('\n')
		}
		if err := k.FS().Append(c.logPath(), buf.Bytes()); err != nil {
			c.noteWriteFailure(k, err)
		}
		if c.LogWriter != nil {
			if _, err := c.LogWriter.Write(buf.Bytes()); err != nil {
				c.noteWriteFailure(k, err)
			}
		}
		return nil
	}}
}

// logPath returns the effective CSV log location.
func (c *Controller) logPath() string {
	if c.LogPath != "" {
		return c.LogPath
	}
	return DefaultLogPath
}

// ioctlOp wraps a module ioctl in a syscall op.
func ioctlOp(name string, cmd uint32, arg any) kernel.Op {
	return kernel.OpSyscall{Name: name, Fn: func(k *kernel.Kernel, p *kernel.Process) any {
		res, err := k.Ioctl(p, DeviceName, cmd, arg)
		if err != nil {
			return err
		}
		return res
	}}
}
